(* Command-line driver: compile a MiniC source file (or assemble a .s
   file) and execute it on the simulated HardBound machine.

     dune exec bin/hardbound_run.exe -- prog.c
     dune exec bin/hardbound_run.exe -- prog.c --mode softfat --stats
     dune exec bin/hardbound_run.exe -- prog.s --asm --mode malloc-only
     dune exec bin/hardbound_run.exe -- prog.c --emit-asm   # print assembly
     dune exec bin/hardbound_run.exe -- prog.c --profile --trace t.jsonl

   Fault injection (see EXPERIMENTS.md, "Fault campaigns"):

     hardbound_run --workload power --inject all:0:7 --campaign 200 \
       --campaign-json report.json
     hardbound_run prog.c --inject mem,tag:1e-6:42 *)

open Cmdliner

module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Encoding = Hardbound.Encoding
module Stats = Hb_cpu.Stats
module Json = Hb_obs.Json
module Trace = Hb_obs.Trace
module Metrics = Hb_obs.Metrics
module Profile = Hb_obs.Profile
module Attr = Hb_obs.Attr
module Diff = Hb_obs.Diff
module Timeline = Hb_obs.Timeline
module Policy = Hb_recover.Policy
module Recover = Hb_recover.Recover
module Deadline = Hb_recover.Deadline
module Host = Hb_obs.Host
module Progress = Hb_obs.Progress
module Serve = Hb_obs.Serve
module Fleet = Hb_obs.Fleet
module Interrupt = Hb_recover.Interrupt
module Daemon = Hb_serve.Daemon
module Admission = Hb_serve.Admission

let mode_conv =
  let parse s =
    match s with
    | "nochecks" | "none" -> Ok Codegen.Nochecks
    | "hardbound" | "full" -> Ok Codegen.Hardbound
    | "malloc-only" -> Ok Codegen.Hardbound_malloc_only
    | "softfat" | "ccured" -> Ok Codegen.Softfat
    | "objtable" | "jk" -> Ok Codegen.Objtable
    | _ -> Error (`Msg ("unknown mode: " ^ s))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Codegen.mode_name m))

let scheme_conv =
  let parse s =
    match Encoding.scheme_of_name s with
    | Some x -> Ok x
    | None -> Error (`Msg ("unknown encoding: " ^ s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Encoding.scheme_name s))

let file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"MiniC source file (or assembly with --asm); omit when using \
               --workload")

let workload =
  Arg.(value & opt (some string) None
       & info [ "workload" ] ~docv:"NAME"
           ~doc:"Run a named Olden workload instead of a source FILE")

let mode =
  Arg.(value & opt mode_conv Codegen.Hardbound
       & info [ "mode" ] ~docv:"MODE"
           ~doc:"Protection scheme: nochecks | hardbound | malloc-only | \
                 softfat | objtable")

let scheme =
  Arg.(value & opt scheme_conv Encoding.Extern4
       & info [ "scheme" ] ~docv:"ENC"
           ~doc:"Pointer encoding: uncompressed | extern-4 | intern-4 | \
                 intern-11")

let temporal =
  Arg.(value & flag
       & info [ "temporal" ] ~doc:"Enable the Section 6.2 temporal extension")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print execution statistics")

let stats_format =
  Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "stats-format" ] ~docv:"FMT"
           ~doc:"Format for --stats output: text | json")

let asm =
  Arg.(value & flag
       & info [ "asm" ] ~doc:"Input is textual assembly, not MiniC")

let emit_asm =
  Arg.(value & flag
       & info [ "emit-asm" ] ~doc:"Print generated assembly instead of running")

let fuel =
  Arg.(value & opt int 400_000_000
       & info [ "fuel" ] ~docv:"N" ~doc:"Maximum instructions to execute")

let trace_instrs =
  Arg.(value & opt int 0
       & info [ "trace-instrs" ] ~docv:"N"
           ~doc:"Print an execution trace of the first N instructions")

let trace_file =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Stream structured trace events to FILE (see --trace-format)")

let trace_format =
  Arg.(value
       & opt (enum [ ("jsonl", Trace.Jsonl); ("chrome", Trace.Chrome) ])
           Trace.Jsonl
       & info [ "trace-format" ] ~docv:"FMT"
           ~doc:"Event file format: jsonl (one JSON object per line) | \
                 chrome (trace_event array for chrome://tracing / Perfetto)")

let trace_events =
  Arg.(value & opt int 0
       & info [ "trace-events" ] ~docv:"N"
           ~doc:"Keep the last N trace events in memory for violation \
                 reports (attaches a tracer even without --trace)")

let trace_retires =
  Arg.(value & flag
       & info [ "trace-retires" ]
           ~doc:"Also emit one trace event per retired instruction \
                 (verbose; off by default)")

let profile =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Print a per-function flat profile (cycles, stall \
                 decomposition, check micro-ops)")

let metrics_json =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:"Write a JSON snapshot of every metric (stats, caches, \
                 checker tally, profile) to FILE")

let metrics_prom =
  Arg.(value & opt (some string) None
       & info [ "metrics-prom" ] ~docv:"FILE"
           ~doc:"Write the same metric snapshot in Prometheus/OpenMetrics \
                 text exposition format to FILE")

let attr_flag =
  Arg.(value & flag
       & info [ "attr" ]
           ~doc:"Print a per-PC cost attribution table (cycles, Figure-5 \
                 stall decomposition, check/metadata micro-ops per source \
                 line)")

let attr_json =
  Arg.(value & opt (some string) None
       & info [ "attr-json" ] ~docv:"FILE"
           ~doc:"Write the full per-PC attribution dump to FILE (implies \
                 attribution; feed two dumps to --diff)")

(* Validated through the shared [Attr.parse_top] so the two CLIs cannot
   drift: zero/negative counts are a typed error with a usage hint, the
   same contract --sample-interval has. *)
let attr_top_conv =
  let parse s =
    match Attr.parse_top s with
    | n -> Ok n
    | exception Hb_error.Hb_error (ctx, msg) ->
      Error (`Msg (Hb_error.to_string (ctx, msg)))
  in
  Arg.conv (parse, Format.pp_print_int)

let attr_top =
  Arg.(value & opt attr_top_conv 10
       & info [ "attr-top" ] ~docv:"N"
           ~doc:"Rows shown in the --attr, --diff and --flame tables (must \
                 be positive)")

let timeline_flag =
  Arg.(value & flag
       & info [ "timeline" ]
           ~doc:"Print the windowed timeline phase report (per-window \
                 counter sparklines, windows x counters heatmap, shadow \
                 census evolution)")

let timeline_jsonl =
  Arg.(value & opt (some string) None
       & info [ "timeline-jsonl" ] ~docv:"FILE"
           ~doc:"Stream one JSON object per timeline window to FILE \
                 (implies sampling)")

let timeline_csv =
  Arg.(value & opt (some string) None
       & info [ "timeline-csv" ] ~docv:"FILE"
           ~doc:"Write the timeline windows as CSV to FILE (implies \
                 sampling)")

let sample_interval =
  Arg.(value & opt int 10_000
       & info [ "sample-interval" ] ~docv:"CYCLES"
           ~doc:"Timeline window width in simulated cycles (must be \
                 positive)")

let flame_flag =
  Arg.(value & flag
       & info [ "flame" ]
           ~doc:"Print a calling-context (flame) profile: the hottest call \
                 paths by exclusive simulated cycles, with check/metadata \
                 micro-ops, stalls and hierarchy misses per context")

let flame_folded =
  Arg.(value & opt (some string) None
       & info [ "flame-folded" ] ~docv:"FILE"
           ~doc:"Write FlameGraph folded stacks ('a;b;c cycles' lines, \
                 deterministic) to FILE; under --campaign the stacks are \
                 aggregated per outcome bucket (one flamegraph per outcome)")

let flame_chrome =
  Arg.(value & opt (some string) None
       & info [ "flame-chrome" ] ~docv:"FILE"
           ~doc:"Write the calling-context profile as speedscope JSON \
                 (loads in speedscope.app and Chrome-trace viewers) to \
                 FILE")

let heatmap_flag =
  Arg.(value & flag
       & info [ "heatmap" ]
           ~doc:"Print a per-page address-space heat map (program vs \
                 tag/shadow metadata access and bounds-check counts, per \
                 region)")

let heatmap_json =
  Arg.(value & opt (some string) None
       & info [ "heatmap-json" ] ~docv:"FILE"
           ~doc:"Write the per-page address-space heat map as JSON to FILE")

let diff_arg =
  Arg.(value & opt (some (pair ~sep:',' file file)) None
       & info [ "diff" ] ~docv:"A.json,B.json"
           ~doc:"Standalone mode: load two --attr-json dumps, print the \
                 ranked per-source-line overhead delta (B minus A) and the \
                 Figure-5 decomposition, and exit")

let inject_conv =
  let parse s =
    match Hb_fault.Injector.spec_of_string s with
    | spec -> Ok spec
    | exception Hb_error.Hb_error (ctx, msg) ->
      Error (`Msg (Hb_error.to_string (ctx, msg)))
  in
  Arg.conv
    ( parse,
      fun fmt (s : Hb_fault.Injector.spec) ->
        Format.fprintf fmt "%s:%g:%d"
          (String.concat ","
             (List.map Hb_fault.Injector.site_name s.Hb_fault.Injector.sites))
          s.Hb_fault.Injector.rate s.Hb_fault.Injector.seed )

let inject =
  Arg.(value & opt (some inject_conv) None
       & info [ "inject" ] ~docv:"SITES:RATE:SEED"
           ~doc:"Inject faults: SITES is a comma list of mem | tag | shadow \
                 | reg | regbounds (or 'all'); RATE is the per-instruction \
                 injection probability (single-run mode; campaigns inject \
                 exactly once per run and ignore it); SEED drives the \
                 deterministic PRNG")

let campaign =
  Arg.(value & opt int 0
       & info [ "campaign" ] ~docv:"N"
           ~doc:"Run a fault campaign of N single-injection runs against a \
                 golden reference and print the outcome taxonomy (requires \
                 a cleanly exiting program; use --inject to pick sites and \
                 seed)")

let campaign_json =
  Arg.(value & opt (some string) None
       & info [ "campaign-json" ] ~docv:"FILE"
           ~doc:"Write the deterministic campaign report (same seed in, \
                 byte-identical JSON out) to FILE")

let campaign_checkpoints =
  Arg.(value & opt int Hb_fault.Campaign.default.Hb_fault.Campaign.checkpoints
       & info [ "campaign-checkpoints" ] ~docv:"K"
           ~doc:"Golden-divergence checkpoints per run")

let policy_conv =
  let parse s =
    match Policy.of_name s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg (Printf.sprintf "unknown violation policy %S (have: %s)" s
                 Policy.known))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Policy.name p))

let on_violation =
  Arg.(value & opt policy_conv Policy.Abort
       & info [ "on-violation" ] ~docv:"POLICY"
           ~doc:"What a bounds-violation trap does: abort (stop, the \
                 default) | report (log it, retire the access unchecked) \
                 | null-guard (squash it: loads read 0, stores drop) | \
                 rollback (restore the latest checkpoint and re-execute \
                 with the access suppressed)")

let violation_budget =
  Arg.(value & opt int Policy.default.Policy.violation_budget
       & info [ "violation-budget" ] ~docv:"N"
           ~doc:"Traps a continuing --on-violation policy may absorb \
                 before the run aborts anyway")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Write a crash-resilient campaign journal to FILE (one \
                 fsync'd JSON record per completed run); an interrupted \
                 campaign resumes from it with --resume")

let resume_arg =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"FILE"
           ~doc:"Resume an interrupted campaign from its journal, \
                 executing only the runs it never recorded; give the same \
                 workload and campaign flags as the original invocation \
                 (the journal header is checked).  The final report is \
                 byte-identical to an uninterrupted campaign's")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SECS"
           ~doc:"Wall-clock budget: campaigns stop between runs and \
                 report the completed (resumable) prefix; single runs \
                 stop at the next instruction boundary with a partial \
                 report")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Partition the campaign plan across N forked worker \
                 processes (one crash-resilient journal shard each, at \
                 FILE.shardK when --journal/--resume give a FILE), \
                 supervised with a heartbeat watchdog and bounded respawn. \
                 The merged report is byte-identical to the serial run's; \
                 a resume must use the same N")

let max_worker_restarts_arg =
  Arg.(value & opt int Hb_shard.Supervisor.default.Hb_shard.Supervisor.max_worker_restarts
       & info [ "max-worker-restarts" ] ~docv:"K"
           ~doc:"Respawns a crashed or hung shard worker gets before the \
                 parent adopts its remaining slice inline (graceful \
                 degradation to fewer workers)")

let serve_conv =
  let parse s =
    match Serve.parse_port s with
    | p -> Ok p
    | exception Hb_error.Hb_error (ctx, msg) ->
      Error (`Msg (Hb_error.to_string (ctx, msg)))
  in
  Arg.conv (parse, Format.pp_print_int)

let serve_arg =
  Arg.(value & opt (some serve_conv) None
       & info [ "serve" ] ~docv:"PORT"
           ~doc:"Serve a live status endpoint on 127.0.0.1:PORT for the \
                 duration of the run: GET /metrics (OpenMetrics \
                 exposition, hb_host_* gauges included), GET /progress \
                 (live campaign JSON) and GET /healthz.  Read-only: \
                 reports and journals stay byte-identical")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Print a live one-line campaign progress ticker \
                 (injection index, outcome tally, ETA) to stderr")

let fleet_arg =
  Arg.(value & flag
       & info [ "fleet" ]
           ~doc:"With --jobs N: every shard worker appends crash-tolerant \
                 telemetry snapshots (metrics dump, span tree, GC deltas, \
                 per-injection wall latencies) to a sidecar next to its \
                 journal shard, and the live endpoints serve the \
                 aggregated fleet view (worker-labeled hb_fleet_* series \
                 plus rollups on /metrics, a per-worker block on \
                 /progress).  Read-only: reports and journals stay \
                 byte-identical")

let fleet_chrome_arg =
  Arg.(value & opt (some string) None
       & info [ "fleet-chrome" ] ~docv:"FILE"
           ~doc:"With --jobs N: write one unified Chrome trace to FILE \
                 after the campaign — supervisor and worker tracks keyed \
                 by pid, with instant events for respawns, watchdog \
                 SIGKILLs and shard adoptions.  Implies --fleet")

let host_spans_arg =
  Arg.(value & opt (some string) None
       & info [ "host-spans" ] ~docv:"FILE"
           ~doc:"Write the hierarchical host wall-clock span profile \
                 (per-phase wall time, GC deltas, RSS checkpoints, \
                 simulated-throughput annotations) to FILE as JSON")

let host_chrome_arg =
  Arg.(value & opt (some string) None
       & info [ "host-chrome" ] ~docv:"FILE"
           ~doc:"Write the host span profile as a Chrome trace_event \
                 array to FILE (chrome://tracing / Perfetto)")

(* ---------------------------------------------------------------- *)
(* Daemon mode: hardbound_run --daemon PORT --queue-dir DIR          *)

let daemon_arg =
  Arg.(value & opt (some serve_conv) None
       & info [ "daemon" ] ~docv:"PORT"
           ~doc:"Run as a persistent simulation service on 127.0.0.1:PORT \
                 instead of a one-shot run: POST /jobs accepts campaign \
                 specs (see hb_client), acknowledged jobs are journaled \
                 under --queue-dir and survive a daemon crash, and the \
                 usual /metrics and /progress endpoints stay live.  Job \
                 reports are byte-identical to the serial CLI's")

let queue_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "queue-dir" ] ~docv:"DIR"
           ~doc:"Daemon queue root: the fsync'd queue journal plus one \
                 jN/ artifact directory per job (required with --daemon)")

let daemon_workers_arg =
  Arg.(value & opt int 2
       & info [ "daemon-workers" ] ~docv:"N"
           ~doc:"Concurrent forked job workers (--daemon)")

let max_queued_arg =
  Arg.(value & opt int 64
       & info [ "max-queued" ] ~docv:"N"
           ~doc:"Admission bound on jobs queued or running; beyond it \
                 submissions get a typed 503 overloaded response with a \
                 Retry-After hint (--daemon)")

let max_per_tenant_arg =
  Arg.(value & opt int 32
       & info [ "max-per-tenant" ] ~docv:"N"
           ~doc:"Per-tenant fairness quota on jobs queued or running \
                 (--daemon)")

let job_deadline_arg =
  Arg.(value & opt float 300.
       & info [ "job-deadline" ] ~docv:"SECS"
           ~doc:"Default per-job wall budget; a spec's deadline_s \
                 overrides it (--daemon)")

let job_attempts_arg =
  Arg.(value & opt int 3
       & info [ "job-attempts" ] ~docv:"K"
           ~doc:"Started attempts (with capped exponential backoff \
                 between them) before a crashing or stuck job is marked \
                 poisoned (--daemon)")

let watchdog_grace_arg =
  Arg.(value & opt float 5.
       & info [ "watchdog-grace" ] ~docv:"SECS"
           ~doc:"SIGKILL a worker this long after its job deadline should \
                 have made it exit on its own (--daemon)")

let mem_soft_kb_arg =
  Arg.(value & opt int 0
       & info [ "mem-soft-kb" ] ~docv:"KB"
           ~doc:"Shrink the worker pool when the daemon's resident set \
                 reaches KB; 0 disables (--daemon)")

let mem_hard_kb_arg =
  Arg.(value & opt int 0
       & info [ "mem-hard-kb" ] ~docv:"KB"
           ~doc:"Refuse new work when the daemon's resident set reaches \
                 KB; 0 disables (--daemon)")

let run_daemon ~port ~queue_dir ~workers ~max_queued ~max_per_tenant
    ~job_deadline ~job_attempts ~watchdog_grace ~mem_soft_kb ~mem_hard_kb =
  let dir =
    match queue_dir with
    | Some d -> d
    | None ->
      Printf.eprintf "error: --daemon needs --queue-dir DIR (the queue \
                      journal is the crash-recovery source of truth)\n";
      exit 2
  in
  let admission =
    { (Admission.default ~workers) with
      Admission.max_queued; max_per_tenant; mem_soft_kb; mem_hard_kb }
  in
  let cfg =
    { (Daemon.default ~port ~dir) with
      Daemon.admission;
      job_deadline_s = job_deadline;
      max_attempts = job_attempts;
      watchdog_grace_s = watchdog_grace;
      log = Some (fun s -> Printf.eprintf "%s\n%!" s) }
  in
  Daemon.run cfg;
  0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Write [s] to [path], closing the channel even when the write raises
   (partial files on a full disk still get their descriptor back). *)
let write_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Attach the requested observability hooks to a freshly-created machine.
   Returns the finalizer that flushes/closes the trace sink. *)
let setup_obs m ~trace_file ~trace_format ~trace_events ~trace_retires
    ~profile =
  let capacity = if trace_events > 0 then trace_events else 32 in
  let close =
    match trace_file with
    | Some path ->
      let sink = Trace.file_sink trace_format path in
      Machine.attach_tracer m
        (Trace.create ~sink:sink.Trace.write ~retires:trace_retires ~capacity
           ());
      sink.Trace.close
    | None ->
      if trace_events > 0 || trace_retires then
        Machine.attach_tracer m
          (Trace.create ~retires:trace_retires ~capacity ());
      fun () -> ()
  in
  if profile then Machine.enable_profile m;
  close

(* Everything printed after the run: status, violation report, stats,
   profile, attribution, metrics snapshots.  [Machine.metrics] builds a
   fresh registry per call, so supervisor counters (hb.traps_total &c.)
   arrive via [extra_metrics], applied to each registry being dumped. *)
let report m status ~label ~mode ~scheme ~stats ~stats_format ~profile
    ~attr_show ~attr_json ~attr_top ~timeline_show ~metrics_json
    ~metrics_prom ~flame_show ~flame_folded ~flame_chrome ~heatmap_show
    ~heatmap_json ?(extra_metrics = fun (_ : Metrics.t) -> ()) () =
  print_string (Machine.output m);
  Printf.printf "\n[%s] (mode=%s, encoding=%s)\n"
    (Machine.status_name status) (Codegen.mode_name mode)
    (Encoding.scheme_name scheme);
  (match Machine.violation_report m with
   | Some r -> print_string r
   | None -> ());
  if stats then
    (match stats_format with
     | `Text -> print_endline (Stats.to_string m.Machine.stats)
     | `Json -> print_endline (Json.to_string_pretty (Stats.to_json m.Machine.stats)));
  if profile then
    (match Machine.profile m with
     | Some p -> print_string (Profile.to_table p)
     | None -> ());
  (* Per-PC attribution: table, dump, and the accounting identity — the
     per-PC sums must equal the global counters or the instrumentation
     itself is lying. *)
  let attr_leak =
    match Machine.attr m with
    | None -> None
    | Some a ->
      if attr_show then print_string (Attr.to_table ~top:attr_top a);
      (match attr_json with
       | None -> ()
       | Some path ->
         let meta =
           [
             ("label", Json.String label);
             ("mode", Json.String (Codegen.mode_name mode));
             ("scheme", Json.String (Encoding.scheme_name scheme));
             ("status", Json.String (Machine.status_name status));
           ]
         in
         write_file path
           (Json.to_string_pretty (Attr.to_json ~meta a) ^ "\n"));
      (match Attr.check a ~expect:(Stats.fields m.Machine.stats) with
       | Ok () -> None
       | Error msg -> Some msg)
  in
  (* Timeline: flush the final partial window, print the phase report,
     and enforce the same accounting identity the per-PC attribution
     enjoys — the window deltas must sum to the global totals. *)
  let timeline_leak =
    match Machine.timeline m with
    | None -> None
    | Some tl ->
      Machine.timeline_flush m;
      if timeline_show then print_string (Timeline.report tl);
      (match Timeline.check tl ~expect:(Machine.timeline_fields m) with
       | Ok () -> None
       | Error msg -> Some msg)
  in
  (* Calling-context profile: table, folded stacks, speedscope dump, the
     address-space heat map — and the exclusive-sum identity, enforced
     exactly like the attribution and timeline planes'. *)
  let flame_leak =
    match Machine.flame m with
    | None -> None
    | Some cct ->
      if flame_show then print_string (Hb_obs.Flame.report ~top:attr_top cct);
      (match flame_folded with
       | None -> ()
       | Some path -> write_file path (Hb_obs.Flame.folded cct));
      (match flame_chrome with
       | None -> ()
       | Some path ->
         write_file path
           (Json.to_string_pretty (Hb_obs.Flame.speedscope ~name:label cct)
            ^ "\n"));
      let rows = Machine.heat_rows m in
      if heatmap_show then print_string (Hb_obs.Flame.heatmap_render rows);
      (match heatmap_json with
       | None -> ()
       | Some path ->
         let meta =
           [
             ("label", Json.String label);
             ("mode", Json.String (Codegen.mode_name mode));
             ("scheme", Json.String (Encoding.scheme_name scheme));
           ]
         in
         write_file path
           (Json.to_string_pretty
              (Hb_obs.Flame.heatmap_json ~meta
                 ~page_size:Hb_mem.Layout.page_size rows)
            ^ "\n"));
      (match Hb_obs.Flame.check cct ~expect:(Stats.fields m.Machine.stats) with
       | Ok () -> None
       | Error msg -> Some msg)
  in
  let registry () =
    let reg = Machine.metrics m in
    extra_metrics reg;
    reg
  in
  (match metrics_json with
   | None -> ()
   | Some path ->
     write_file path
       (Json.to_string_pretty (Metrics.snapshot (registry ())) ^ "\n"));
  (match metrics_prom with
   | None -> ()
   | Some path -> write_file path (Metrics.to_prometheus (registry ())));
  let code = match status with Machine.Exited n -> n | _ -> 42 in
  match (attr_leak, timeline_leak, flame_leak) with
  | None, None, None -> code
  | _ ->
    List.iter
      (function
        | Some msg -> Printf.eprintf "error: %s\n" msg
        | None -> ())
      [ attr_leak; timeline_leak; flame_leak ];
    if code = 0 then 3 else code

(* The host observability plane, wrapped around a whole invocation: the
   ambient span profiler (when a sink or the status endpoint wants it),
   the live HTTP endpoint, and the stderr ticker.  Everything here is a
   read-only side channel — the simulated artifacts cannot see it — and
   every piece is torn down through Fun.protect even when the run dies
   with Hb_error.  [live_reg] lets the single-run path publish the
   machine's own registry to /metrics once a machine exists. *)
let with_host_plane ~serve_port ~tick ~host_spans ~host_chrome ~fleet_on
    ~(pr : Progress.t) ~(live_reg : (unit -> Metrics.t) option ref) f =
  let want_profiler =
    host_spans <> None || host_chrome <> None || serve_port <> None
    (* the unified fleet trace wants a supervisor track even when no
       host sink was asked for *)
    || fleet_on
  in
  let prof = if want_profiler then Some (Host.install ()) else None in
  let server =
    match serve_port with
    | None -> None
    | Some port ->
      let metrics () =
        let reg =
          match !live_reg with Some mk -> mk () | None -> Metrics.create ()
        in
        Progress.export pr reg;
        Host.export_live reg;
        (* aggregated fleet view: worker-labeled series from the
           telemetry sidecars, once a sharded campaign installs the
           collector (a no-op before/without one) *)
        Fleet.export_live reg;
        Metrics.to_prometheus reg
      in
      let progress_json () =
        match (Progress.to_json pr, Fleet.live_json ()) with
        | Json.Obj fields, Some fleet ->
          Json.Obj (fields @ [ ("fleet", fleet) ])
        | j, _ -> j
      in
      let s = Serve.start ~port ~metrics ~progress:progress_json () in
      Printf.eprintf
        "serving /metrics /progress /healthz on http://127.0.0.1:%d\n%!"
        (Serve.port s);
      Some s
  in
  let stop_tick = if tick then Some (Progress.ticker pr) else None in
  Fun.protect
    ~finally:(fun () ->
      (match stop_tick with Some stop -> stop () | None -> ());
      (match server with Some s -> Serve.stop s | None -> ());
      match prof with
      | None -> ()
      | Some t ->
        Host.finish t;
        (match Host.check t with
         | Ok () -> ()
         | Error msg ->
           Printf.eprintf "host profile accounting: %s\n" msg);
        (match host_spans with
         | Some path -> Host.write_json path t
         | None -> ());
        (match host_chrome with
         | Some path -> Host.write_chrome path t
         | None -> ());
        Host.uninstall ())
    f

(* Fault-injection entry points: campaign mode (N single-fault runs
   classified against a golden reference) and stochastic single-run mode.
   Both need a machine *factory* rather than one machine; when --trace is
   given, every machine streams into the same sink. *)
let run_fault ~mk_plain ~label ~inject ~campaign ~campaign_json
    ~campaign_checkpoints ~policy ~violation_budget ~journal ~resume
    ~deadline ~jobs ~max_worker_restarts ~fleet ~trace_file ~trace_format
    ~trace_retires ~metrics_json ~progress ~flame_folded =
  let module Campaign = Hb_fault.Campaign in
  let module Injector = Hb_fault.Injector in
  let want_flame = flame_folded <> None in
  if want_flame && jobs > 1 then begin
    Printf.eprintf
      "error: --flame-folded aggregates in-process and cannot cross \
       --jobs worker forks; run the campaign with --jobs 1\n";
    exit 2
  end;
  if want_flame && campaign = 0 then begin
    Printf.eprintf
      "error: --flame-folded with --inject needs --campaign N (stochastic \
       single runs have no outcome buckets to aggregate)\n";
    exit 2
  end;
  let sink = ref None in
  let mk () =
    let m = mk_plain () in
    if want_flame then Machine.enable_flame m;
    (match trace_file with
     | None -> ()
     | Some path ->
       let s =
         match !sink with
         | Some s -> s
         | None ->
           let s = Trace.file_sink trace_format path in
           sink := Some s;
           s
       in
       Machine.attach_tracer m
         (Trace.create ~sink:s.Trace.write ~retires:trace_retires
            ~capacity:64 ()));
    m
  in
  let body () =
    if campaign > 0 then begin
    (* Graceful SIGTERM/SIGINT: the campaign loop polls the flag at its
       run boundaries and winds down through the deadline-partial path,
       so the journal is fsync'd/closed and the report below is a
       well-formed resumable partial. *)
    Interrupt.install ();
    let spec =
      match inject with
      | Some s -> s
      | None ->
        { Injector.sites = Injector.all_sites; rate = 0.;
          seed = Campaign.default.Campaign.seed }
    in
    let cfg =
      { Campaign.default with
        Campaign.label;
        runs = campaign;
        seed = spec.Injector.seed;
        sites = spec.Injector.sites;
        checkpoints = campaign_checkpoints;
        policy;
        violation_budget }
    in
    (* Per-outcome folded-stack aggregation: each fresh run's
       calling-context tree folds into its outcome's bucket (then resets
       for the next run, which restores over the same machine), so one
       campaign yields one flamegraph per outcome.  The observe hook is
       read-only — report and journal stay byte-identical with and
       without it (CI cmp-enforces this). *)
    let flame_buckets : (string, (string, int) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 8
    in
    let observe =
      if not want_flame then None
      else
        Some
          (fun (r : Campaign.record) (m : Machine.t) ->
            match Machine.flame m with
            | None -> ()
            | Some cct ->
              let bucket_name = Hb_fault.Outcome.name r.Campaign.outcome in
              let bucket =
                match Hashtbl.find_opt flame_buckets bucket_name with
                | Some b -> b
                | None ->
                  let b = Hashtbl.create 64 in
                  Hashtbl.replace flame_buckets bucket_name b;
                  b
              in
              List.iter
                (fun (stack, cycles) ->
                  let prev =
                    match Hashtbl.find_opt bucket stack with
                    | Some n -> n
                    | None -> 0
                  in
                  Hashtbl.replace bucket stack (prev + cycles))
                (Hb_obs.Flame.folded_lines cct);
              Hb_obs.Flame.reset cct)
    in
    let report =
      if jobs > 1 then
        (* sharded: fork [jobs] workers, one journal shard each,
           supervised; the merged report is byte-identical to serial *)
        let scfg =
          { Hb_shard.Supervisor.default with
            Hb_shard.Supervisor.jobs;
            max_worker_restarts;
            log = Some (fun s -> Printf.eprintf "%s\n%!" s) }
        in
        Hb_shard.Shard.run ?journal ?resume
          ~deadline:(Deadline.of_secs deadline) ~progress ~cfg:scfg ~fleet
          ~mk cfg
      else
        Campaign.run ?journal ?resume ~deadline:(Deadline.of_secs deadline)
          ~progress ?observe ~mk cfg
    in
    (match flame_folded with
     | None -> ()
     | Some path ->
       (* outcome bucket as the root frame: 'detected;main;f;g 123' —
          sorted, so the file is byte-identical for identical campaigns *)
       let lines =
         List.sort compare
           (Hashtbl.fold
              (fun outcome bucket acc ->
                Hashtbl.fold
                  (fun stack cycles acc ->
                    (outcome ^ ";" ^ stack, cycles) :: acc)
                  bucket acc)
              flame_buckets [])
       in
       let b = Buffer.create 1024 in
       List.iter
         (fun (stack, cycles) -> Printf.bprintf b "%s %d\n" stack cycles)
         lines;
       write_file path (Buffer.contents b));
    Printf.printf
      "campaign %s: %d runs, seed %d, golden %s (%d instrs, %d output \
       bytes)\n\n"
      label campaign cfg.Campaign.seed report.Campaign.golden_status
      report.Campaign.golden_instrs report.Campaign.golden_output_bytes;
    print_string (Campaign.coverage_table report);
    let interrupted =
      Interrupt.requested () && report.Campaign.deadline_expired
    in
    let resume_hint =
      match (journal, resume) with
      | Some p, _ | _, Some p -> Printf.sprintf " (resume with --resume %s)" p
      | None, None -> ""
    in
    if interrupted then
      Printf.printf "interrupted by %s: %d of %d runs completed%s\n"
        (Interrupt.signal_name ())
        (List.length report.Campaign.records)
        cfg.Campaign.runs resume_hint
    else if report.Campaign.deadline_expired then
      Printf.printf "deadline expired: %d of %d runs completed%s\n"
        (List.length report.Campaign.records)
        cfg.Campaign.runs resume_hint;
    (match campaign_json with
     | None -> ()
     | Some path ->
       write_file path
         (Json.to_string_pretty (Campaign.to_json report) ^ "\n"));
    (match metrics_json with
     | None -> ()
     | Some path ->
       let reg = Metrics.create () in
       Campaign.export_metrics report reg;
       write_file path (Json.to_string_pretty (Metrics.snapshot reg) ^ "\n"));
    if interrupted then Interrupt.exit_code else 0
  end
  else begin
    let spec = Option.get inject in
    let s = Campaign.stochastic_run ~mk spec in
    List.iter
      (fun (at, i) ->
        Printf.printf "injected @%-10d %s\n" at (Injector.describe i))
      s.Campaign.injections;
    Printf.printf "%d injections over %d instrs: %s (%s)\n"
      (List.length s.Campaign.injections)
      s.Campaign.s_instrs
      (Hb_fault.Outcome.name s.Campaign.s_outcome)
      s.Campaign.s_status;
    0
  end
  in
  (* Close the trace sink (Chrome traces need their closing bracket) even
     when a run aborts through [Hb_error]. *)
  Fun.protect
    ~finally:(fun () ->
      match !sink with Some s -> s.Trace.close () | None -> ())
    body

let run file workload mode scheme temporal stats stats_format asm emit_asm
    fuel trace_instrs trace_file trace_format trace_events trace_retires
    profile metrics_json metrics_prom attr_flag attr_json attr_top
    timeline_flag timeline_jsonl timeline_csv sample_interval
    flame_flag flame_folded flame_chrome heatmap_flag heatmap_json diff_pair
    inject campaign campaign_json campaign_checkpoints policy
    violation_budget journal resume deadline jobs max_worker_restarts
    fleet_flag fleet_chrome serve_port progress_flag host_spans host_chrome
    daemon_port queue_dir daemon_workers max_queued max_per_tenant
    job_deadline job_attempts watchdog_grace mem_soft_kb mem_hard_kb =
  try
    match daemon_port with
    | Some port ->
      run_daemon ~port ~queue_dir ~workers:daemon_workers ~max_queued
        ~max_per_tenant ~job_deadline ~job_attempts ~watchdog_grace
        ~mem_soft_kb ~mem_hard_kb
    | None ->
    match diff_pair with
    | Some (a_path, b_path) ->
      (* Standalone differential report: no program runs. *)
      let r = Diff.diff (Diff.load a_path) (Diff.load b_path) in
      print_string (Diff.to_table ~top:attr_top r);
      0
    | None ->
    let pr = Progress.create () in
    let live_reg : (unit -> Metrics.t) option ref = ref None in
    let fleet =
      { Fleet.sidecars = fleet_flag || fleet_chrome <> None;
        chrome = fleet_chrome }
    in
    with_host_plane ~serve_port ~tick:progress_flag ~host_spans
      ~host_chrome ~fleet_on:(Fleet.active fleet) ~pr ~live_reg
    @@ fun () ->
    let want_attr = attr_flag || attr_json <> None in
    let source, label, asm =
      match (file, workload) with
      | Some _, Some _ ->
        Printf.eprintf "error: give either FILE or --workload, not both\n";
        exit 2
      | None, None ->
        Printf.eprintf "error: need a FILE argument or --workload NAME\n";
        exit 2
      | Some f, None -> (read_file f, Filename.basename f, asm)
      | None, Some w ->
        ((Hb_workloads.Workloads.find w).Hb_workloads.Workloads.source, w,
         false)
    in
    if emit_asm then begin
      if asm then
        print_string
          (Hb_isa.Printer.program_str (Hb_isa.Parser.parse_program source))
      else begin
        let compiled = Hb_minic.Driver.compile_source ~mode source in
        print_string (Hb_isa.Printer.program_str compiled.Codegen.program)
      end;
      0
    end
    else begin
      let image, globals, config, line_base =
        if asm then
          ( Hb_isa.Program.link (Hb_isa.Parser.parse_program source),
            "",
            { Machine.scheme; mode = Codegen.machine_mode mode;
              checked_deref_uop = false; temporal; tripwire = false;
              max_instrs = fuel },
            0 )
        else
          Host.span "compile" @@ fun () ->
          let image, globals = Hb_runtime.Build.compile ~mode source in
          ( image, globals,
            Hb_runtime.Build.config_for ~scheme ~temporal ~max_instrs:fuel
              mode,
            Hb_runtime.Build.runtime_lines )
      in
      Hardbound.Checker.reset_tally ();
      if resume <> None && campaign <= 0 then begin
        Printf.eprintf
          "error: --resume needs the original campaign flags (at least \
           --campaign N) so the journal header can be checked\n";
        exit 2
      end;
      if jobs > 1 && campaign <= 0 then begin
        Printf.eprintf "error: --jobs needs a campaign (--campaign N)\n";
        exit 2
      end;
      if jobs > 1 && trace_file <> None then begin
        Printf.eprintf
          "error: --trace is not supported with --jobs > 1 (forked \
           workers would interleave writes into one sink)\n";
        exit 2
      end;
      if Fleet.active fleet && jobs <= 1 then begin
        Printf.eprintf
          "error: --fleet/--fleet-chrome need a sharded campaign \
           (--jobs N with N > 1); the single-process plane is \
           --host-spans/--host-chrome/--serve\n";
        exit 2
      end;
      if campaign > 0 || inject <> None then begin
        if
          flame_flag || flame_chrome <> None || heatmap_flag
          || heatmap_json <> None
        then begin
          Printf.eprintf
            "error: fault campaigns support --flame-folded only (one \
             aggregated flamegraph per outcome bucket); --flame, \
             --flame-chrome and the heat map are single-run reports\n";
          exit 2
        end;
        run_fault
          ~mk_plain:(fun () -> Machine.create ~config ~globals image)
          ~label ~inject ~campaign ~campaign_json ~campaign_checkpoints
          ~policy ~violation_budget ~journal ~resume ~deadline ~jobs
          ~max_worker_restarts ~fleet ~trace_file ~trace_format
          ~trace_retires ~metrics_json ~progress:pr ~flame_folded
      end
      else begin
      let m = Machine.create ~config ~globals image in
      (* publish this machine to the live endpoint: /metrics scrapes its
         registry, /progress reads its instruction/cycle counters *)
      live_reg := Some (fun () -> Machine.metrics m);
      Progress.set_poll pr (fun () ->
          let s = m.Machine.stats in
          (s.Stats.instructions, Stats.cycles s));
      let close_trace =
        setup_obs m ~trace_file ~trace_format ~trace_events ~trace_retires
          ~profile
      in
      if want_attr then Machine.enable_attr ~line_base m;
      let want_flame =
        flame_flag || flame_folded <> None || flame_chrome <> None
        || heatmap_flag || heatmap_json <> None
      in
      if want_flame then Machine.enable_flame m;
      let want_timeline =
        timeline_flag || timeline_jsonl <> None || timeline_csv <> None
      in
      if want_timeline then begin
        Machine.enable_timeline ~interval:sample_interval m;
        match Machine.timeline m with
        | None -> ()
        | Some tl ->
          (match timeline_jsonl with
           | Some path -> Timeline.add_sink tl (Timeline.jsonl_sink path)
           | None -> ());
          (match timeline_csv with
           | Some path -> Timeline.add_sink tl (Timeline.csv_sink path)
           | None -> ())
      end;
      (* The trace sink must be closed (Chrome traces need their closing
         bracket) even when the run dies with Hb_error / Sys_error — and
         the timeline's JSONL/CSV writers get the same guarantee. *)
      let finalize () =
        close_trace ();
        match Machine.timeline m with
        | Some tl -> Timeline.close_sinks tl
        | None -> ()
      in
      Fun.protect ~finally:finalize (fun () ->
          let supervisor = ref (fun (_ : Metrics.t) -> ()) in
          let status =
            Host.span "run" @@ fun () ->
            let st =
            (* a non-abort policy (or a wall-clock budget) routes the run
               through the trap supervisor; it is bit-identical to
               [Machine.run] until a trap fires or the deadline hits *)
            if policy <> Policy.Abort || deadline <> None then begin
              let rcfg =
                { Policy.default with Policy.policy; violation_budget }
              in
              let o =
                Recover.run ~deadline:(Deadline.of_secs deadline) ~line_base
                  ~config:rcfg m
              in
              List.iter
                (fun h ->
                  Printf.printf "trap: %s\n" (Recover.describe_handled h))
                o.Recover.traps;
              if o.Recover.traps <> [] || o.Recover.deadline_expired then
                print_endline (Recover.summary o);
              supervisor := Recover.export_metrics o;
              o.Recover.status
            end
            else if trace_instrs > 0 then
              match
                Machine.run_traced m ~n:trace_instrs ~out:print_endline
              with
              | Some st -> st
              | None -> Machine.run m
            else Machine.run m
            in
            let s = m.Machine.stats in
            Host.annotate_live "instrs" s.Stats.instructions;
            Host.annotate_live "cycles" (Stats.cycles s);
            st
          in
          report m status ~label ~mode ~scheme ~stats ~stats_format ~profile
            ~attr_show:attr_flag ~attr_json ~attr_top
            ~timeline_show:timeline_flag ~metrics_json ~metrics_prom
            ~flame_show:flame_flag ~flame_folded ~flame_chrome
            ~heatmap_show:heatmap_flag ~heatmap_json
            ~extra_metrics:(fun reg -> !supervisor reg) ())
      end
    end
  with
  | Hb_minic.Driver.Compile_error msg ->
    Printf.eprintf "compile error: %s\n" msg;
    1
  | Hb_isa.Parser.Parse_error (line, msg) ->
    Printf.eprintf "assembly parse error at line %d: %s\n" line msg;
    1
  | Hb_error.Hb_error (ctx, msg) ->
    (* typed simulator error: unknown workload, bad address, campaign
       preconditions, ... — rendered with its pc/instr/addr context *)
    Printf.eprintf "error: %s\n" (Hb_error.to_string (ctx, msg));
    1
  | Json.Parse_error msg ->
    (* --diff fed something that is not an attribution dump *)
    Printf.eprintf "error: %s\n" msg;
    1
  | Sys_error msg ->
    (* unreadable input, unwritable --trace / --metrics-json path, ... *)
    Printf.eprintf "error: %s\n" msg;
    1

let cmd =
  let doc = "compile and run a program on the simulated HardBound machine" in
  Cmd.v
    (Cmd.info "hardbound_run" ~doc)
    Term.(const run $ file $ workload $ mode $ scheme $ temporal $ stats
          $ stats_format $ asm $ emit_asm $ fuel $ trace_instrs $ trace_file
          $ trace_format $ trace_events $ trace_retires $ profile
          $ metrics_json $ metrics_prom $ attr_flag $ attr_json $ attr_top
          $ timeline_flag $ timeline_jsonl $ timeline_csv $ sample_interval
          $ flame_flag $ flame_folded $ flame_chrome $ heatmap_flag
          $ heatmap_json $ diff_arg $ inject $ campaign $ campaign_json
          $ campaign_checkpoints $ on_violation $ violation_budget
          $ journal_arg $ resume_arg $ deadline_arg $ jobs_arg
          $ max_worker_restarts_arg $ fleet_arg $ fleet_chrome_arg
          $ serve_arg $ progress_arg $ host_spans_arg $ host_chrome_arg
          $ daemon_arg $ queue_dir_arg $ daemon_workers_arg $ max_queued_arg
          $ max_per_tenant_arg $ job_deadline_arg $ job_attempts_arg
          $ watchdog_grace_arg $ mem_soft_kb_arg $ mem_hard_kb_arg)

let () = exit (Cmd.eval' cmd)
