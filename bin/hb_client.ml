(* Client for the hb_serve simulation daemon (hardbound_run --daemon):
   submit campaign jobs, poll their status, fetch reports, drain the
   queue, or ask the daemon to shut down.

     hb_client --port 9290 submit --workload treeadd --runs 50 --seed 7
     hb_client --port 9290 status j3
     hb_client --port 9290 report j3 > report.json
     hb_client --port 9290 wait j3 --timeout 120
     hb_client --port 9290 drain --timeout 600

   Exit codes: 0 ok; 1 transport/protocol error; 2 usage; 3 the daemon
   shed the submission with a typed `overloaded` response (retry later);
   wait/drain add 4 poisoned, 5 failed, 6 timed out. *)

open Cmdliner

module Json = Hb_obs.Json
module Clock = Hb_obs.Clock
module Proto = Hb_serve.Proto

let die fmt = Printf.ksprintf (fun s -> Printf.eprintf "error: %s\n" s; exit 1) fmt

(* ------------------------------------------------------------------ *)
(* Minimal HTTP/1.1 client over loopback TCP                           *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* (status code, body) for one request; transport failures exit 1 with
   a reconnect hint rather than a raw Unix_error backtrace *)
let request ~port ~meth ~path ?(body = "") () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      (try Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       with Unix.Unix_error (e, _, _) ->
         die "cannot reach the daemon on 127.0.0.1:%d: %s (is it running? \
              start one with: hardbound_run --daemon %d --queue-dir DIR)"
           port (Unix.error_message e) port);
      write_all sock
        (Printf.sprintf
           "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Type: \
            application/json\r\nContent-Length: %d\r\nConnection: \
            close\r\n\r\n%s"
           meth path (String.length body) body);
      let raw = read_all sock in
      let code =
        match String.split_on_char ' ' raw with
        | _http :: code :: _ -> (
          match int_of_string_opt code with Some c -> c | None -> 0)
        | _ -> 0
      in
      let body =
        (* body starts after the first blank line *)
        let n = String.length raw in
        let rec find i =
          if i + 3 >= n then n
          else if
            raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
            && raw.[i + 3] = '\n'
          then i + 4
          else find (i + 1)
        in
        let b = find 0 in
        String.sub raw b (n - b)
      in
      if code = 0 then die "malformed response from 127.0.0.1:%d" port;
      (code, body))

let member_string key body =
  match Json.member key (Json.of_string body) with
  | Some (Json.String s) -> Some s
  | _ -> None
  | exception Json.Parse_error _ -> None

let member_int key body =
  match Option.bind (Json.member key (Json.of_string body)) Json.to_int with
  | v -> v
  | exception Json.Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)

let port_arg =
  Arg.(required & opt (some int) None
       & info [ "port"; "p" ] ~docv:"PORT"
           ~doc:"Daemon port (hardbound_run --daemon PORT)")

let submit port tenant workload mode scheme runs seed sites checkpoints
    policy violation_budget deadline jobs chaos quiet =
  (* build the spec JSON from the provided flags only, then validate it
     client-side with the daemon's own codec: typos die here with a
     typed message instead of a 400 round trip *)
  let opt k v f = match v with Some x -> [ (k, f x) ] | None -> [] in
  let spec_json =
    Json.Obj
      ([ ("workload", Json.String workload) ]
      @ opt "tenant" tenant (fun s -> Json.String s)
      @ opt "mode" mode (fun s -> Json.String s)
      @ opt "scheme" scheme (fun s -> Json.String s)
      @ opt "runs" runs (fun n -> Json.Int n)
      @ opt "seed" seed (fun n -> Json.Int n)
      @ opt "sites" sites (fun s -> Json.String s)
      @ opt "checkpoints" checkpoints (fun n -> Json.Int n)
      @ opt "policy" policy (fun s -> Json.String s)
      @ opt "violation_budget" violation_budget (fun n -> Json.Int n)
      @ opt "deadline_s" deadline (fun d -> Json.Float d)
      @ opt "jobs" jobs (fun n -> Json.Int n)
      @ opt "chaos" chaos (fun s -> Json.String s))
  in
  let spec =
    try Proto.spec_of_json spec_json
    with Hb_error.Hb_error (ctx, msg) ->
      Printf.eprintf "error: %s\n" (Hb_error.to_string (ctx, msg));
      exit 2
  in
  let body = Json.to_string (Proto.spec_to_json spec) in
  match request ~port ~meth:"POST" ~path:"/jobs" ~body () with
  | 202, reply -> (
    match member_string "job" reply with
    | Some id ->
      if quiet then print_endline id
      else Printf.printf "%s accepted (poll with: hb_client --port %d \
                          status %s)\n" id port id;
      0
    | None -> die "daemon accepted the job but sent no id: %s" reply)
  | 503, reply ->
    Printf.eprintf "overloaded: %s\n"
      (Option.value (member_string "reason" reply) ~default:reply);
    3
  | code, reply ->
    Printf.eprintf "submit rejected (HTTP %d): %s" code reply;
    1

let parse_job_id s =
  let s = String.trim s in
  let num =
    if String.length s > 1 && s.[0] = 'j' then
      String.sub s 1 (String.length s - 1)
    else s
  in
  match int_of_string_opt num with
  | Some n -> n
  | None ->
    Printf.eprintf "error: %S is not a job id (expected jN)\n" s;
    exit 2

let job_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB"
         ~doc:"Job id as printed by submit (jN)")

let status port job =
  let id = parse_job_id job in
  match request ~port ~meth:"GET" ~path:(Printf.sprintf "/jobs/j%d" id) () with
  | 200, body ->
    print_string body;
    0
  | 404, _ ->
    Printf.eprintf "no job j%d\n" id;
    1
  | code, body ->
    Printf.eprintf "HTTP %d: %s" code body;
    1

let report port job =
  let id = parse_job_id job in
  match
    request ~port ~meth:"GET" ~path:(Printf.sprintf "/jobs/j%d/report" id) ()
  with
  | 200, body ->
    print_string body;
    0
  | 409, body ->
    Printf.eprintf "job j%d has no report yet (state %s)\n" id
      (Option.value (member_string "state" body) ~default:"unknown");
    1
  | 404, _ ->
    Printf.eprintf "no job j%d\n" id;
    1
  | code, body ->
    Printf.eprintf "HTTP %d: %s" code body;
    1

let list_jobs port =
  match request ~port ~meth:"GET" ~path:"/jobs" () with
  | 200, body ->
    print_string body;
    0
  | code, body ->
    Printf.eprintf "HTTP %d: %s" code body;
    1

let wait port job timeout poll =
  let id = parse_job_id job in
  let t0 = Clock.now_ns () in
  let rec go () =
    match
      request ~port ~meth:"GET" ~path:(Printf.sprintf "/jobs/j%d" id) ()
    with
    | 200, body -> (
      match member_string "state" body with
      | Some "done" -> 0
      | Some "poisoned" ->
        Printf.eprintf "job j%d poisoned: %s\n" id
          (Option.value (member_string "note" body) ~default:"");
        4
      | Some "failed" ->
        Printf.eprintf "job j%d failed: %s\n" id
          (Option.value (member_string "note" body) ~default:"");
        5
      | _ ->
        if Clock.elapsed_s ~t0 > timeout then begin
          Printf.eprintf "timed out after %.0fs waiting for job j%d\n"
            timeout id;
          6
        end
        else begin
          Unix.sleepf poll;
          go ()
        end)
    | 404, _ ->
      Printf.eprintf "no job j%d\n" id;
      1
    | code, body ->
      Printf.eprintf "HTTP %d: %s" code body;
      1
  in
  go ()

let drain port timeout poll =
  let t0 = Clock.now_ns () in
  let rec go () =
    match request ~port ~meth:"GET" ~path:"/progress" () with
    | 200, body -> (
      match (member_int "queued" body, member_int "running" body) with
      | Some 0, Some 0 -> 0
      | Some q, Some r ->
        if Clock.elapsed_s ~t0 > timeout then begin
          Printf.eprintf
            "timed out after %.0fs with %d queued, %d running\n" timeout q r;
          6
        end
        else begin
          Unix.sleepf poll;
          go ()
        end
      | _ -> die "unexpected /progress document: %s" body)
    | code, body ->
      Printf.eprintf "HTTP %d: %s" code body;
      1
  in
  go ()

let shutdown port =
  match request ~port ~meth:"POST" ~path:"/shutdown" () with
  | 200, _ ->
    print_endline "daemon draining";
    0
  | code, body ->
    Printf.eprintf "HTTP %d: %s" code body;
    1

(* ------------------------------------------------------------------ *)

let timeout_arg default =
  Arg.(value & opt float default
       & info [ "timeout" ] ~docv:"SECS" ~doc:"Give up after SECS")

let poll_arg =
  Arg.(value & opt float 0.2
       & info [ "poll" ] ~docv:"SECS" ~doc:"Poll interval")

let submit_cmd =
  let tenant =
    Arg.(value & opt (some string) None
         & info [ "tenant" ] ~docv:"NAME" ~doc:"Fairness/quota bucket")
  in
  let workload =
    Arg.(required & opt (some string) None
         & info [ "workload" ] ~docv:"NAME" ~doc:"Olden workload name")
  in
  let mode =
    Arg.(value & opt (some string) None
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"nochecks | hardbound | malloc-only | softfat | objtable")
  in
  let scheme =
    Arg.(value & opt (some string) None
         & info [ "scheme" ] ~docv:"ENC"
             ~doc:"uncompressed | extern-4 | intern-4 | intern-11")
  in
  let runs =
    Arg.(value & opt (some int) None
         & info [ "runs" ] ~docv:"N" ~doc:"Campaign runs")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed")
  in
  let sites =
    Arg.(value & opt (some string) None
         & info [ "sites" ] ~docv:"SITES"
             ~doc:"Comma list of mem|tag|shadow|reg|regbounds, or 'all'")
  in
  let checkpoints =
    Arg.(value & opt (some int) None
         & info [ "checkpoints" ] ~docv:"K"
             ~doc:"Golden-divergence checkpoints per run")
  in
  let policy =
    Arg.(value & opt (some string) None
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"abort | report | null-guard | rollback")
  in
  let violation_budget =
    Arg.(value & opt (some int) None
         & info [ "violation-budget" ] ~docv:"N"
             ~doc:"Traps a continuing policy may absorb")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECS"
             ~doc:"Per-job wall budget (daemon default applies if absent)")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ] ~docv:"N" ~doc:"Shard workers inside the job")
  in
  let chaos =
    Arg.(value & opt (some string) None
         & info [ "chaos" ] ~docv:"SPEC"
             ~doc:"Deliberate misbehavior for robustness tests: 'hang' or \
                   'crash:K'")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet"; "q" ] ~doc:"Print only the job id")
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a campaign job")
    Term.(const submit $ port_arg $ tenant $ workload $ mode $ scheme $ runs
          $ seed $ sites $ checkpoints $ policy $ violation_budget $ deadline
          $ jobs $ chaos $ quiet)

let status_cmd =
  Cmd.v (Cmd.info "status" ~doc:"Print a job's status document")
    Term.(const status $ port_arg $ job_arg)

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Print a finished job's campaign report \
                             (byte-identical to the serial CLI's)")
    Term.(const report $ port_arg $ job_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List all jobs the daemon knows")
    Term.(const list_jobs $ port_arg)

let wait_cmd =
  Cmd.v
    (Cmd.info "wait"
       ~doc:"Block until a job reaches a terminal state (exit 0 done, 4 \
             poisoned, 5 failed, 6 timeout)")
    Term.(const wait $ port_arg $ job_arg $ timeout_arg 300. $ poll_arg)

let drain_cmd =
  Cmd.v
    (Cmd.info "drain"
       ~doc:"Block until nothing is queued or running (exit 6 on timeout)")
    Term.(const drain $ port_arg $ timeout_arg 600. $ poll_arg)

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Ask the daemon to stop accepting work, finish its running \
             attempts and exit; queued jobs stay journaled for the next \
             start")
    Term.(const shutdown $ port_arg)

let cmd =
  Cmd.group
    (Cmd.info "hb_client" ~doc:"client for the hb_serve simulation daemon")
    [
      submit_cmd; status_cmd; report_cmd; list_cmd; wait_cmd; drain_cmd;
      shutdown_cmd;
    ]

let () = exit (Cmd.eval' cmd)
