(* Run a named Olden benchmark under a chosen protection scheme and print
   its output plus the measurement record the figures are built from.

     dune exec bin/olden.exe -- list
     dune exec bin/olden.exe -- treeadd
     dune exec bin/olden.exe -- em3d --mode softfat
     dune exec bin/olden.exe -- bh --scheme intern-11 *)

module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Encoding = Hardbound.Encoding
module Run = Hb_harness.Run
module Policy = Hb_recover.Policy
module Recover = Hb_recover.Recover
module Host = Hb_obs.Host
module Attr = Hb_obs.Attr
module Flame = Hb_obs.Flame
module Layout = Hb_mem.Layout
module Physmem = Hb_mem.Physmem

let usage () =
  prerr_endline
    "usage: olden <name|list> [--mode MODE] [--scheme ENC]\n\
     \             [--on-violation POLICY] [--violation-budget N]\n\
     \             [--host-spans FILE] [--host-chrome FILE]\n\
     \             [--campaign N] [--seed S] [--jobs J]\n\
     \             [--max-worker-restarts K] [--journal FILE]\n\
     \             [--resume FILE] [--campaign-json FILE]\n\
     \             [--fleet] [--fleet-chrome FILE]\n\
     \             [--attr] [--attr-top N]\n\
     \             [--flame] [--flame-folded FILE] [--flame-chrome FILE]\n\
     \             [--heatmap] [--heatmap-json FILE]\n\
     modes: nochecks hardbound malloc-only softfat objtable\n\
     encodings: uncompressed extern-4 intern-4 intern-11\n\
     policies: abort report null-guard rollback";
  exit 1

(* host span profile sinks, parsed alongside the benchmark flags *)
let spans_file = ref None
let chrome_file = ref None

(* fault-campaign mode: N single-injection runs against the golden
   reference, optionally sharded across forked workers *)
let campaign_runs = ref 0
let campaign_seed = ref Hb_fault.Campaign.default.Hb_fault.Campaign.seed
let jobs = ref 1
let max_worker_restarts =
  ref Hb_shard.Supervisor.default.Hb_shard.Supervisor.max_worker_restarts
let journal_file = ref None
let resume_file = ref None
let campaign_json = ref None

(* fleet telemetry plane for sharded campaigns: worker sidecars plus an
   optional post-run unified Chrome trace *)
let fleet_flag = ref false
let fleet_chrome = ref None

(* per-run observability: per-PC attribution and the calling-context
   (flame) profiler with its artifact sinks *)
let attr_flag = ref false
let attr_top = ref 10
let flame_flag = ref false
let flame_folded = ref None
let flame_chrome = ref None
let heatmap_flag = ref false
let heatmap_json = ref None

let want_obs () =
  !attr_flag || !flame_flag || !flame_folded <> None || !flame_chrome <> None
  || !heatmap_flag || !heatmap_json <> None

let want_flame () =
  !flame_flag || !flame_folded <> None || !flame_chrome <> None
  || !heatmap_flag || !heatmap_json <> None

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let enable_obs m =
  if !attr_flag then
    Machine.enable_attr ~line_base:Hb_runtime.Build.runtime_lines m;
  if want_flame () then Machine.enable_flame m

(* Post-run observability report: attribution table, flame report and
   artifact sinks, heat map — plus their accounting identities (per-PC
   sums and per-context exclusive sums must both equal the global
   counters).  Returns true when an identity leaked so the caller can
   exit non-zero, exactly like hardbound_run. *)
let obs_report ~label m =
  let leaked = ref false in
  let complain = function
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      leaked := true
  in
  (match Machine.attr m with
   | None -> ()
   | Some a ->
     if !attr_flag then print_string (Attr.to_table ~top:!attr_top a);
     complain (Attr.check a ~expect:(Stats.fields m.Machine.stats)));
  (match Machine.flame m with
   | None -> ()
   | Some cct ->
     if !flame_flag then print_string (Flame.report ~top:!attr_top cct);
     (match !flame_folded with
      | Some p -> write_file p (Flame.folded cct)
      | None -> ());
     (match !flame_chrome with
      | Some p ->
        write_file p
          (Hb_obs.Json.to_string_pretty (Flame.speedscope ~name:label cct)
           ^ "\n")
      | None -> ());
     let rows = Machine.heat_rows m in
     if !heatmap_flag then print_string (Flame.heatmap_render rows);
     (match !heatmap_json with
      | Some p ->
        write_file p
          (Hb_obs.Json.to_string_pretty
             (Flame.heatmap_json
                ~meta:[ ("label", Hb_obs.Json.String label) ]
                ~page_size:Layout.page_size rows)
           ^ "\n")
      | None -> ());
     complain (Flame.check cct ~expect:(Stats.fields m.Machine.stats)));
  !leaked

let main () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse name mode scheme policy budget = function
    | [] -> (name, mode, scheme, policy, budget)
    | "--mode" :: m :: rest ->
      let mode =
        match m with
        | "nochecks" -> Codegen.Nochecks
        | "hardbound" -> Codegen.Hardbound
        | "malloc-only" -> Codegen.Hardbound_malloc_only
        | "softfat" -> Codegen.Softfat
        | "objtable" -> Codegen.Objtable
        | _ -> usage ()
      in
      parse name mode scheme policy budget rest
    | "--scheme" :: s :: rest -> (
      match Encoding.scheme_of_name s with
      | Some sc -> parse name mode sc policy budget rest
      | None -> usage ())
    | "--on-violation" :: p :: rest -> (
      match Policy.of_name p with
      | Some pol -> parse name mode scheme pol budget rest
      | None -> usage ())
    | "--violation-budget" :: n :: rest -> (
      match int_of_string_opt n with
      | Some b when b >= 0 -> parse name mode scheme policy b rest
      | _ -> usage ())
    | "--host-spans" :: f :: rest ->
      spans_file := Some f;
      parse name mode scheme policy budget rest
    | "--host-chrome" :: f :: rest ->
      chrome_file := Some f;
      parse name mode scheme policy budget rest
    | "--campaign" :: n :: rest -> (
      match int_of_string_opt n with
      | Some r when r > 0 ->
        campaign_runs := r;
        parse name mode scheme policy budget rest
      | _ -> usage ())
    | "--seed" :: n :: rest -> (
      match int_of_string_opt n with
      | Some s ->
        campaign_seed := s;
        parse name mode scheme policy budget rest
      | None -> usage ())
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 ->
        jobs := j;
        parse name mode scheme policy budget rest
      | _ -> usage ())
    | "--max-worker-restarts" :: n :: rest -> (
      match int_of_string_opt n with
      | Some k when k >= 0 ->
        max_worker_restarts := k;
        parse name mode scheme policy budget rest
      | _ -> usage ())
    | "--journal" :: f :: rest ->
      journal_file := Some f;
      parse name mode scheme policy budget rest
    | "--resume" :: f :: rest ->
      resume_file := Some f;
      parse name mode scheme policy budget rest
    | "--campaign-json" :: f :: rest ->
      campaign_json := Some f;
      parse name mode scheme policy budget rest
    | "--fleet" :: rest ->
      fleet_flag := true;
      parse name mode scheme policy budget rest
    | "--fleet-chrome" :: f :: rest ->
      fleet_chrome := Some f;
      parse name mode scheme policy budget rest
    | "--attr" :: rest ->
      attr_flag := true;
      parse name mode scheme policy budget rest
    | "--attr-top" :: n :: rest ->
      (* shared validator: zero/negative is a typed error with a usage
         hint, same as hardbound_run's --attr-top *)
      attr_top :=
        (try Hb_obs.Attr.parse_top n
         with Hb_error.Hb_error (ctx, msg) ->
           Printf.eprintf "error: %s\n" (Hb_error.to_string (ctx, msg));
           exit 1);
      parse name mode scheme policy budget rest
    | "--flame" :: rest ->
      flame_flag := true;
      parse name mode scheme policy budget rest
    | "--flame-folded" :: f :: rest ->
      flame_folded := Some f;
      parse name mode scheme policy budget rest
    | "--flame-chrome" :: f :: rest ->
      flame_chrome := Some f;
      parse name mode scheme policy budget rest
    | "--heatmap" :: rest ->
      heatmap_flag := true;
      parse name mode scheme policy budget rest
    | "--heatmap-json" :: f :: rest ->
      heatmap_json := Some f;
      parse name mode scheme policy budget rest
    | n :: rest when name = None -> parse (Some n) mode scheme policy budget rest
    | _ -> usage ()
  in
  let name, mode, scheme, policy, budget =
    parse None Codegen.Hardbound Encoding.Extern4 Policy.Abort
      Policy.default.Policy.violation_budget args
  in
  let fleet =
    { Hb_obs.Fleet.sidecars = !fleet_flag || !fleet_chrome <> None;
      chrome = !fleet_chrome }
  in
  if Hb_obs.Fleet.active fleet && !jobs <= 1 then begin
    prerr_endline
      "error: --fleet/--fleet-chrome need a sharded campaign (--jobs J \
       with J > 1)";
    exit 1
  end;
  if
    !spans_file <> None || !chrome_file <> None
    (* the unified fleet trace wants a supervisor track *)
    || Hb_obs.Fleet.active fleet
  then begin
    let t = Host.install () in
    (* the supervised path leaves via [exit]; at_exit still dumps *)
    at_exit (fun () ->
        Host.finish t;
        (match Host.check t with
         | Ok () -> ()
         | Error msg -> Printf.eprintf "host profile accounting: %s\n" msg);
        (match !spans_file with Some p -> Host.write_json p t | None -> ());
        (match !chrome_file with
         | Some p -> Host.write_chrome p t
         | None -> ()))
  end;
  match name with
  | None -> usage ()
  | Some "list" ->
    List.iter
      (fun (w : Hb_workloads.Workloads.t) ->
        Printf.printf "%-10s %s\n" w.name w.description)
      Hb_workloads.Workloads.all
  | Some n ->
    let w =
      try Hb_workloads.Workloads.find n
      with Hb_error.Hb_error (ctx, msg) ->
        Printf.eprintf "error: %s\n" (Hb_error.to_string (ctx, msg));
        exit 1
    in
    if !campaign_runs > 0 && want_obs () then begin
      prerr_endline
        "error: --attr/--flame/--heatmap are single-run reports; for \
         campaign flamegraphs use hardbound_run --campaign with \
         --flame-folded";
      exit 1
    end;
    if !campaign_runs > 0 then begin
      (* fault-campaign mode: deterministic report, optionally sharded
         across forked supervised workers *)
      let module Campaign = Hb_fault.Campaign in
      let module Interrupt = Hb_recover.Interrupt in
      (* SIGTERM/SIGINT wind down through the deadline-partial path: the
         journal is closed well-formed and the report below is the
         completed, resumable prefix *)
      Interrupt.install ();
      let cfg =
        { Campaign.default with
          Campaign.runs = !campaign_runs;
          seed = !campaign_seed;
          policy;
          violation_budget = budget }
      in
      let report =
        try
          if !jobs > 1 then
            let shard_cfg =
              { Hb_shard.Supervisor.default with
                Hb_shard.Supervisor.jobs = !jobs;
                max_worker_restarts = !max_worker_restarts;
                log = Some (fun s -> Printf.eprintf "%s\n%!" s) }
            in
            Hb_harness.Resilience.sharded_campaign ~scheme ~mode
              ?journal:!journal_file ?resume:!resume_file ~shard_cfg ~fleet
              cfg n
          else
            Hb_harness.Resilience.campaign ~scheme ~mode
              ?journal:!journal_file ?resume:!resume_file cfg n
        with Hb_error.Hb_error (ctx, msg) ->
          Printf.eprintf "error: %s\n" (Hb_error.to_string (ctx, msg));
          exit 1
      in
      Printf.printf "campaign %s: %d runs, seed %d, jobs %d\n\n" n
        !campaign_runs !campaign_seed !jobs;
      print_string (Campaign.coverage_table report);
      let interrupted =
        Interrupt.requested () && report.Campaign.deadline_expired
      in
      if interrupted then
        Printf.printf "interrupted by %s: %d of %d runs completed%s\n"
          (Interrupt.signal_name ())
          (List.length report.Campaign.records)
          !campaign_runs
          (match (!journal_file, !resume_file) with
           | Some p, _ | _, Some p ->
             Printf.sprintf " (resume with --resume %s)" p
           | None, None -> "");
      (match !campaign_json with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc
          (Hb_obs.Json.to_string_pretty (Campaign.to_json report) ^ "\n");
        close_out oc);
      exit (if interrupted then Interrupt.exit_code else 0)
    end;
    if policy <> Policy.Abort then begin
      (* supervised run: traps route through the recovery policy instead
         of terminating the benchmark *)
      let image, globals =
        Host.span "compile" @@ fun () ->
        Hb_runtime.Build.compile ~mode w.source
      in
      let config = Hb_runtime.Build.config_for ~scheme mode in
      let m = Machine.create ~config ~globals image in
      enable_obs m;
      let rcfg =
        { Policy.default with Policy.policy; violation_budget = budget }
      in
      let o =
        Host.span "run" @@ fun () ->
        Recover.run ~line_base:Hb_runtime.Build.runtime_lines ~config:rcfg m
      in
      print_string (Machine.output m);
      List.iter
        (fun h -> Printf.printf "trap: %s\n" (Recover.describe_handled h))
        o.Recover.traps;
      print_endline (Recover.summary o);
      Printf.printf "mode=%s encoding=%s policy=%s [%s]\n"
        (Codegen.mode_name mode) (Encoding.scheme_name scheme)
        (Policy.name policy) (Machine.status_name o.Recover.status);
      let leaked = obs_report ~label:n m in
      let code =
        match o.Recover.status with Machine.Exited c -> c | _ -> 42
      in
      exit (if leaked && code = 0 then 3 else code)
    end;
    if want_obs () then begin
      (* Observability run: [Run.measure] never exposes its machine, so
         build one inline (same compile / config / fuel) and report from
         it — the stats lines below match the measured path's exactly. *)
      let image, globals =
        Host.span "compile" @@ fun () ->
        Hb_runtime.Build.compile ~mode w.source
      in
      let config = Hb_runtime.Build.config_for ~scheme mode in
      let m = Machine.create ~config ~globals image in
      enable_obs m;
      let status = Host.span "run" @@ fun () -> Machine.run m in
      (match status with
       | Machine.Exited 0 -> ()
       | st ->
         Hb_error.fail ~component:"olden" "%s [%s/%s]: %s" n
           (Codegen.mode_name mode) (Encoding.scheme_name scheme)
           (Machine.status_name st));
      let s = m.Machine.stats in
      let pages r = Physmem.pages_touched_in m.Machine.mem r in
      print_string (Machine.output m);
      Printf.printf
        "\nmode=%s encoding=%s\ninstructions  %d\nuops          %d\n\
         cycles        %d\nsetbounds     %d\nmetadata uops %d\n\
         stalls        data %d / tag %d / base-bound %d\n\
         pages         data %d / tag %d / shadow %d\n"
        (Codegen.mode_name mode)
        (Encoding.scheme_name scheme)
        s.Stats.instructions s.Stats.uops (Stats.cycles s)
        s.Stats.setbound_instrs s.Stats.metadata_uops
        s.Stats.charged_data_stalls s.Stats.charged_tag_stalls
        s.Stats.charged_bb_stalls
        (pages Layout.Globals + pages Layout.Heap + pages Layout.Stack)
        (pages Layout.Tag_space) (pages Layout.Shadow_space);
      if obs_report ~label:n m then exit 3
    end
    else begin
      let r = Run.measure ~scheme ~mode w in
      print_string r.Run.output;
      Printf.printf
        "\nmode=%s encoding=%s\ninstructions  %d\nuops          %d\n\
         cycles        %d\nsetbounds     %d\nmetadata uops %d\n\
         stalls        data %d / tag %d / base-bound %d\n\
         pages         data %d / tag %d / shadow %d\n"
        (Codegen.mode_name mode)
        (Encoding.scheme_name scheme)
        r.Run.instructions r.Run.uops r.Run.cycles r.Run.setbound_instrs
        r.Run.metadata_uops r.Run.data_stalls r.Run.tag_stalls r.Run.bb_stalls
        r.Run.data_pages r.Run.tag_pages r.Run.shadow_pages
    end

let () = main ()
