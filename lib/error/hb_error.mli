(** Typed error for failures reachable from user input, carrying machine
    context (component, pc, instruction, faulting address).  Rendered
    uniformly by the CLI front ends with a non-zero exit code instead of a
    raw backtrace. *)

type context = {
  component : string;
  pc : int option;
  instr : string option;
  addr : int option;
}

exception Hb_error of context * string

val fail :
  ?pc:int ->
  ?instr:string ->
  ?addr:int ->
  component:string ->
  ('a, unit, string, 'b) format4 ->
  'a
(** [fail ~component fmt ...] raises {!Hb_error} with a formatted message. *)

val to_string : context * string -> string
(** One-line rendering: [component: message (pc=…, addr=0x…)]. *)
