(** Typed error reporting for failures reachable from user input.

    Libraries historically raised bare [Failure]/[Invalid_argument], which
    the CLI could only surface as a raw backtrace.  [Hb_error] carries the
    machine context a user needs to act on the report — which component
    failed, and where (pc, instruction, faulting address) — and is rendered
    uniformly by the front ends with a non-zero exit code.

    Internal invariant violations (programming errors) should keep using
    [assert]/[invalid_arg]; this exception is for conditions a user can
    trigger with their own program, assembly, or command line. *)

type context = {
  component : string;     (** which subsystem raised: "physmem", "encoding", ... *)
  pc : int option;        (** linked code index, when executing *)
  instr : string option;  (** disassembled faulting instruction *)
  addr : int option;      (** faulting address or pointer value *)
}

exception Hb_error of context * string

let fail ?pc ?instr ?addr ~component fmt =
  Printf.ksprintf
    (fun msg -> raise (Hb_error ({ component; pc; instr; addr }, msg)))
    fmt

(** One-line rendering: [component: message (pc=…, instr=…, addr=0x…)]. *)
let to_string (ctx, msg) =
  let extras =
    List.filter_map
      (fun x -> x)
      [
        Option.map (Printf.sprintf "pc=%d") ctx.pc;
        Option.map (Printf.sprintf "instr=%s") ctx.instr;
        Option.map (Printf.sprintf "addr=0x%x") ctx.addr;
      ]
  in
  match extras with
  | [] -> Printf.sprintf "%s: %s" ctx.component msg
  | xs -> Printf.sprintf "%s: %s (%s)" ctx.component msg (String.concat ", " xs)
