(** Type checker and lowering to {!Tast}.

    Besides ordinary C-subset checking, this pass decides where bounded
    pointers are *created* — the paper's instrumentation points
    (Section 3.2) — and marks them with [Bound] nodes:

    - decay of an array (local, global, or struct field) narrows to the
      array's extent (sub-object protection: the [node.str] example);
    - [&x] of a local/global/field narrows to the object's extent;
    - [&p[i]] and [&*p] keep the pointer's existing bounds (the paper's
      deliberately conservative treatment of the ambiguous [&q[3]] case);
    - string literals are bounded to their storage. *)

open Ast
open Tast

exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

type struct_layout = {
  sl_size : int;
  sl_align : int;
  sl_fields : (string * (int * ty)) list;
}

type env = {
  structs : (string, struct_layout) Hashtbl.t;
  struct_defs : (string, (ty * string) list) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;
  funcs : (string, ty * ty list) Hashtbl.t;
  mutable scopes : (string * (string * ty)) list;
      (* source name -> (unique name, ty); innermost first *)
  mutable n_locals : int;
  mutable ret_ty : ty;
  mutable addressable : (string * int) list;
  mutable in_progress : string list; (* struct layout cycle detection *)
}

(* ---- sizes and layouts ------------------------------------------------ *)

let rec sizeof env = function
  | Tvoid -> err "sizeof(void)"
  | Tint | Tfloat | Tptr _ -> 4
  | Tchar -> 1
  | Tarray (t, n) ->
    if n < 0 then err "array size not resolved" else n * sizeof env t
  | Tstruct s -> (layout env s).sl_size

and alignof env = function
  | Tvoid -> err "alignof(void)"
  | Tint | Tfloat | Tptr _ -> 4
  | Tchar -> 1
  | Tarray (t, _) -> alignof env t
  | Tstruct s -> (layout env s).sl_align

and layout env name =
  match Hashtbl.find_opt env.structs name with
  | Some l -> l
  | None ->
    if List.mem name env.in_progress then
      err "recursive struct %s (use a pointer)" name;
    let fields =
      match Hashtbl.find_opt env.struct_defs name with
      | Some f -> f
      | None -> err "undefined struct %s" name
    in
    env.in_progress <- name :: env.in_progress;
    let align = ref 1 in
    let off = ref 0 in
    let placed =
      List.map
        (fun (fty, fname) ->
          let a = alignof env fty in
          align := max !align a;
          off := (!off + a - 1) / a * a;
          let o = !off in
          off := !off + sizeof env fty;
          (fname, (o, fty)))
        fields
    in
    let size = (!off + !align - 1) / !align * !align in
    let size = max size 1 in
    env.in_progress <- List.tl env.in_progress;
    let l = { sl_size = size; sl_align = !align; sl_fields = placed } in
    Hashtbl.replace env.structs name l;
    l

let field_of env sname fname =
  match List.assoc_opt fname (layout env sname).sl_fields with
  | Some x -> x
  | None -> err "struct %s has no field %s" sname fname

(* ---- type predicates --------------------------------------------------- *)

let is_integer = function Tint | Tchar -> true | _ -> false

let is_scalar = function
  | Tint | Tchar | Tfloat | Tptr _ -> true
  | _ -> false

let rec compatible a b =
  match (a, b) with
  | Tint, Tint | Tchar, Tchar | Tfloat, Tfloat | Tvoid, Tvoid -> true
  | Tint, Tchar | Tchar, Tint -> true
  | Tptr _, Tptr _ -> true (* lax, as in pre-ANSI C; casts are no-ops *)
  | Tarray (t, n), Tarray (u, m) -> n = m && compatible t u
  | Tstruct s, Tstruct t -> s = t
  | _ -> false

(* Implicit conversion of [te] to type [want] (assignment, argument,
   return).  Follows the paper's Section 6.1 semantics: pointer<->integer
   conversions move the raw value; an integer turned into a pointer is a
   non-pointer that fails checks when dereferenced. *)
let convert env want te =
  ignore env;
  match (want, te.ty) with
  | w, t when compatible w t -> { te with ty = w }
  | Tfloat, t when is_integer t -> { desc = Float_of_int te; ty = Tfloat }
  | t, Tfloat when is_integer t -> { desc = Int_of_float te; ty = t }
  | Tptr _, t when is_integer t -> { te with ty = want }
  | t, Tptr _ when is_integer t -> { te with ty = t }
  | Tvoid, _ -> te
  | w, t -> err "cannot convert %s to %s" (ty_str t) (ty_str w)

(* ---- scopes ------------------------------------------------------------ *)

let push_scope env = env.scopes

let pop_scope env saved = env.scopes <- saved

let declare_local env name ty =
  env.n_locals <- env.n_locals + 1;
  let unique = Printf.sprintf "%s$%d" name env.n_locals in
  env.scopes <- (name, (unique, ty)) :: env.scopes;
  unique

let lookup_var env name =
  match List.assoc_opt name env.scopes with
  | Some (unique, ty) -> `Local (unique, ty)
  | None -> (
    match Hashtbl.find_opt env.globals name with
    | Some ty -> `Global ty
    | None -> err "undefined variable %s" name)

(* ---- builtins ---------------------------------------------------------- *)

(* name -> (return type of {A}rgument-0 / fixed, arg types) where Tvoid in
   arg position accepts any pointer. *)
let builtin_sigs =
  [
    ("__setbound", 2);
    ("__setbound_unsafe", 1);
    ("__register_object", 2);
    ("__unregister_object", 2);
    ("__mark_alloc", 2);
    ("__mark_free", 2);
    ("print_int", 1);
    ("print_char", 1);
    ("print_float", 1);
    ("sbrk", 1);
    ("__abort", 1);
    ("sqrtf", 1);
    ("fabsf", 1);
  ]

let is_builtin name = List.mem_assoc name builtin_sigs

(* ---- constant expressions (global initializers) ------------------------ *)

let rec const_int env e =
  match e with
  | Eint n -> n
  | Eunop (Neg, e) -> -const_int env e
  | Eunop (Bnot, e) -> lnot (const_int env e)
  | Ebinop (Add, a, b) -> const_int env a + const_int env b
  | Ebinop (Sub, a, b) -> const_int env a - const_int env b
  | Ebinop (Mul, a, b) -> const_int env a * const_int env b
  | Ebinop (Shl, a, b) -> const_int env a lsl const_int env b
  | Esizeof t -> sizeof env t
  | _ -> err "global initializer must be a constant expression"

let rec const_float env e =
  match e with
  | Efloat f -> f
  | Eint n -> float_of_int n
  | Eunop (Neg, e) -> -.const_float env e
  | _ -> err "global float initializer must be constant"

(* ---- expression checking ----------------------------------------------- *)

let is_lval_expr = function
  | Evar _ | Ederef _ | Eindex _ | Efield _ | Earrow _ -> true
  | _ -> false

(* Narrowing hint carried by lvalue paths: (delta_back, object_size) means
   the most specific enclosing object starts [delta_back] bytes before the
   lvalue's address and is [object_size] bytes long. *)
type hint = (int * int) option

let rec check_expr env (e : expr) : texpr =
  match e with
  | Eint n -> { desc = Cint n; ty = Tint }
  | Efloat f -> { desc = Cfloat f; ty = Tfloat }
  | Estr s ->
    (* a string literal is a bounded pointer to its storage *)
    {
      desc =
        Bound ({ desc = Cstr s; ty = Tptr Tchar }, String.length s + 1);
      ty = Tptr Tchar;
    }
  | Evar _ | Ederef _ | Eindex _ | Efield _ | Earrow _ ->
    let lv, _hint = check_lval env e in
    rvalue_of_lval env lv
  | Eunop (op, e1) -> (
    let t1 = check_expr env e1 in
    match op with
    | Neg ->
      if t1.ty = Tfloat then { desc = Unop (Neg, t1); ty = Tfloat }
      else if is_integer t1.ty then { desc = Unop (Neg, t1); ty = Tint }
      else err "bad operand to unary -"
    | Lnot ->
      if is_scalar t1.ty then { desc = Unop (Lnot, t1); ty = Tint }
      else err "bad operand to !"
    | Bnot ->
      if is_integer t1.ty then { desc = Unop (Bnot, t1); ty = Tint }
      else err "bad operand to ~")
  | Ebinop (op, a, b) -> check_binop env op a b
  | Eassign (l, r) ->
    let lv, _ = check_lval env l in
    let lty = lval_ty lv in
    (match lty with
     | Tarray _ | Tstruct _ ->
       err "cannot assign aggregate %s" (ty_str lty)
     | _ -> ());
    let tr = convert env lty (check_expr env r) in
    { desc = Assign (lv, tr); ty = lty }
  | Ecall (name, args) -> check_call env name args
  | Eaddr e1 -> (
    if not (is_lval_expr e1) then err "& of non-lvalue";
    let lv, hint = check_lval env e1 in
    let pty = Tptr (lval_ty lv) in
    let addr = { desc = AddrOf lv; ty = pty } in
    match hint with
    | Some (0, size) -> { desc = Bound (addr, size); ty = pty }
    | Some (delta, size) ->
      (* &a[3]: bound the pointer over the whole enclosing object *)
      let base =
        { desc = Ptr_add (addr, { desc = Cint (-delta); ty = Tint }, 1);
          ty = pty }
      in
      let bounded = { desc = Bound (base, size); ty = pty } in
      { desc = Ptr_add (bounded, { desc = Cint delta; ty = Tint }, 1);
        ty = pty }
    | None -> addr)
  | Ecast (t, e1) -> (
    let t1 = check_expr env e1 in
    match (t, t1.ty) with
    | Tfloat, ty1 when is_integer ty1 -> { desc = Float_of_int t1; ty = Tfloat }
    | (Tint | Tchar), Tfloat ->
      let conv = { desc = Int_of_float t1; ty = Tint } in
      if t = Tchar then
        { desc = Binop (Band, conv, { desc = Cint 0xFF; ty = Tint });
          ty = Tchar }
      else conv
    | Tfloat, Tfloat -> t1
    | Tchar, ty1 when is_integer ty1 ->
      { desc = Binop (Band, t1, { desc = Cint 0xFF; ty = Tint }); ty = Tchar }
    | t, _ when is_scalar t || t = Tvoid ->
      (* pointer/integer casts are no-ops: metadata flows through
         unchanged (Section 6.1) *)
      { t1 with ty = t }
    | t, _ -> err "unsupported cast to %s" (ty_str t))
  | Esizeof t -> { desc = Cint (sizeof env t); ty = Tint }
  | Econd (c, a, b) ->
    let tc = check_expr env c in
    if not (is_scalar tc.ty) then err "condition must be scalar";
    let ta = check_expr env a in
    let tb = check_expr env b in
    let ty = if ta.ty = Tvoid then Tvoid else ta.ty in
    let tb = if ty = Tvoid then tb else convert env ty tb in
    { desc = Cond (tc, ta, tb); ty }
  | Eincr (k, e1) -> (
    let lv, _ = check_lval env e1 in
    match lval_ty lv with
    | Tint | Tchar -> { desc = Incr (k, lv, 1); ty = lval_ty lv }
    | Tptr t -> { desc = Incr (k, lv, sizeof env t); ty = lval_ty lv }
    | t -> err "cannot increment %s" (ty_str t))

and rvalue_of_lval env lv =
  match lval_ty lv with
  | Tarray (elem, _) as aty ->
    (* decay: a fresh bounded pointer narrowed to the array's extent *)
    let size = sizeof env aty in
    let addr = { desc = AddrOf lv; ty = Tptr elem } in
    { desc = Bound (addr, size); ty = Tptr elem }
  | Tstruct _ -> err "struct value used directly (take a field or address)"
  | t -> { desc = Load lv; ty = t }

and check_binop env op a b =
  match op with
  | Land | Lor ->
    let ta = check_expr env a and tb = check_expr env b in
    if not (is_scalar ta.ty && is_scalar tb.ty) then err "bad &&/|| operands";
    { desc = And_or (op = Land, ta, tb); ty = Tint }
  | _ ->
    let ta = check_expr env a and tb = check_expr env b in
    let is_ptr t = match t with Tptr _ -> true | _ -> false in
    (match (op, ta.ty, tb.ty) with
     (* pointer arithmetic *)
     | Add, Tptr t, i when is_integer i ->
       { desc = Ptr_add (ta, tb, sizeof env t); ty = ta.ty }
     | Add, i, Tptr t when is_integer i ->
       { desc = Ptr_add (tb, ta, sizeof env t); ty = tb.ty }
     | Sub, Tptr t, i when is_integer i ->
       let neg = { desc = Unop (Neg, tb); ty = Tint } in
       { desc = Ptr_add (ta, neg, sizeof env t); ty = ta.ty }
     | Sub, Tptr t, Tptr _ ->
       { desc = Ptr_diff (ta, tb, sizeof env t); ty = Tint }
     (* pointer comparisons *)
     | (Eq | Ne | Lt | Le | Gt | Ge), pa, pb
       when is_ptr pa || is_ptr pb ->
       { desc = Binop (op, ta, tb); ty = Tint }
     (* float arithmetic: promote integers *)
     | _, Tfloat, _ | _, _, Tfloat ->
       let fa = convert env Tfloat ta and fb = convert env Tfloat tb in
       (match op with
        | Add | Sub | Mul | Div -> { desc = Fbinop (op, fa, fb); ty = Tfloat }
        | Lt | Le | Gt | Ge | Eq | Ne ->
          { desc = Fbinop (op, fa, fb); ty = Tint }
        | _ -> err "operator %s not defined on float" (binop_str op))
     (* integer arithmetic *)
     | _, x, y when is_integer x && is_integer y ->
       { desc = Binop (op, ta, tb); ty = Tint }
     | _, x, y ->
       err "bad operands to %s: %s, %s" (binop_str op) (ty_str x) (ty_str y))

and check_call env name args =
  let targs = List.map (check_expr env) args in
  if is_builtin name then begin
    let arity = List.assoc name builtin_sigs in
    if List.length targs <> arity then
      err "%s expects %d argument(s)" name arity;
    match (name, targs) with
    | "__setbound", [ p; n ] ->
      (match p.ty with
       | Tptr _ -> { desc = Bound_dyn (p, convert env Tint n); ty = p.ty }
       | _ -> err "__setbound expects a pointer")
    | "__setbound_unsafe", [ p ] -> { desc = Bound_unsafe p; ty = p.ty }
    | "sbrk", [ n ] ->
      { desc = Builtin ("sbrk", [ convert env Tint n ]); ty = Tptr Tchar }
    | ("sqrtf" | "fabsf"), [ f ] ->
      { desc = Builtin (name, [ convert env Tfloat f ]); ty = Tfloat }
    | "print_float", [ f ] ->
      { desc = Builtin (name, [ convert env Tfloat f ]); ty = Tvoid }
    | ("print_int" | "print_char" | "__abort"), [ n ] ->
      { desc = Builtin (name, [ convert env Tint n ]); ty = Tvoid }
    | ( ("__register_object" | "__unregister_object" | "__mark_alloc"
        | "__mark_free"),
        [ p; n ] ) ->
      { desc = Builtin (name, [ p; convert env Tint n ]); ty = Tvoid }
    | _ -> err "bad builtin call %s" name
  end
  else
    match Hashtbl.find_opt env.funcs name with
    | None -> err "undefined function %s" name
    | Some (ret, params) ->
      if List.length params <> List.length targs then
        err "%s expects %d argument(s), got %d" name (List.length params)
          (List.length targs);
      let targs = List.map2 (fun p a -> convert env p a) params targs in
      { desc = Call (name, targs); ty = ret }

(* lvalue checking: returns the lvalue and its narrowing hint *)
and check_lval env (e : expr) : tlval * hint =
  match e with
  | Evar name -> (
    match lookup_var env name with
    | `Local (unique, ty) ->
      (Lframe (unique, 0, ty), Some (0, sizeof env ty))
    | `Global ty -> (Lglob (name, 0, ty), Some (0, sizeof env ty)))
  | Ederef e1 -> (
    let te = check_expr env e1 in
    match te.ty with
    | Tptr t when t <> Tvoid -> (Lmem (te, t), None)
    | Tptr Tvoid -> err "dereference of void*"
    | t -> err "dereference of non-pointer %s" (ty_str t))
  | Efield (e1, f) -> (
    let lv, _ = check_lval env e1 in
    match lval_ty lv with
    | Tstruct s -> (
      let off, fty = field_of env s f in
      let hint = Some (0, sizeof env fty) in
      match lv with
      | Lframe (n, o, _) -> (Lframe (n, o + off, fty), hint)
      | Lglob (n, o, _) -> (Lglob (n, o + off, fty), hint)
      | Lmem (addr, _) ->
        let addr' =
          if off = 0 then { addr with ty = Tptr fty }
          else
            { desc = Ptr_add (addr, { desc = Cint off; ty = Tint }, 1);
              ty = Tptr fty }
        in
        (Lmem (addr', fty), hint))
    | t -> err "field access on non-struct %s" (ty_str t))
  | Earrow (e1, f) -> (
    let te = check_expr env e1 in
    match te.ty with
    | Tptr (Tstruct s) ->
      let off, fty = field_of env s f in
      let addr =
        if off = 0 then { te with ty = Tptr fty }
        else
          { desc = Ptr_add (te, { desc = Cint off; ty = Tint }, 1);
            ty = Tptr fty }
      in
      (Lmem (addr, fty), Some (0, sizeof env fty))
    | t -> err "-> on non-struct-pointer %s" (ty_str t))
  | Eindex (e1, idx) -> (
    let tidx = convert env Tint (check_expr env idx) in
    if is_lval_expr e1 then begin
      let lv, _ = check_lval env e1 in
      match lval_ty lv with
      | Tarray (elem, n) -> (
        let esize = sizeof env elem in
        let whole = n * esize in
        match (tidx.desc, lv) with
        | Cint i, Lframe (nm, o, _) when i >= 0 && i < n ->
          (Lframe (nm, o + (i * esize), elem), Some (i * esize, whole))
        | Cint i, Lglob (nm, o, _) when i >= 0 && i < n ->
          (Lglob (nm, o + (i * esize), elem), Some (i * esize, whole))
        | _ ->
          (* dynamic (or out-of-range constant) index: decay creates the
             bounded pointer, the access is then checked against it *)
          let base = rvalue_of_lval env lv in
          (Lmem ({ desc = Ptr_add (base, tidx, esize); ty = Tptr elem },
                 elem),
           None))
      | Tptr elem ->
        let base = { desc = Load lv; ty = Tptr elem } in
        (Lmem
           ({ desc = Ptr_add (base, tidx, sizeof env elem); ty = Tptr elem },
            elem),
         None)
      | t -> err "index on non-array %s" (ty_str t)
    end
    else
      let te = check_expr env e1 in
      match te.ty with
      | Tptr elem ->
        (Lmem
           ({ desc = Ptr_add (te, tidx, sizeof env elem); ty = Tptr elem },
            elem),
         None)
      | t -> err "index on non-pointer %s" (ty_str t))
  | _ -> err "expression is not an lvalue"

(* ---- statements --------------------------------------------------------- *)

let rec check_stmt env (s : stmt) : tstmt =
  match s with
  | Sexpr e -> Texpr (check_expr env e)
  | Sdecl (ty, name, init) ->
    (match ty with
     | Tvoid -> err "void variable %s" name
     | Tarray (_, n) when n < 0 -> err "unsized local array %s" name
     | _ -> ());
    ignore (sizeof env ty);
    let tinit =
      match init with
      | None -> None
      | Some e -> (
        match ty with
        | Tarray _ | Tstruct _ -> err "aggregate initializer for local %s" name
        | _ ->
          (* initializer is evaluated in the outer scope *)
          Some (convert env ty (check_expr env e)))
    in
    let unique = declare_local env name ty in
    (match ty with
     | Tarray _ | Tstruct _ ->
       env.addressable <- (unique, sizeof env ty) :: env.addressable
     | _ -> ());
    Tdecl (unique, ty, tinit)
  | Sif (c, a, b) ->
    let tc = check_expr env c in
    if not (is_scalar tc.ty) then err "if condition must be scalar";
    Tif (tc, check_block env a, check_block env b)
  | Swhile (c, body) ->
    let tc = check_expr env c in
    if not (is_scalar tc.ty) then err "while condition must be scalar";
    Twhile (tc, check_block env body)
  | Sdo (body, c) ->
    let tbody = check_block env body in
    let tc = check_expr env c in
    Tdo (tbody, tc)
  | Sfor (init, cond, post, body) ->
    let saved = push_scope env in
    let tinit = Option.map (check_stmt env) init in
    let tcond = Option.map (check_expr env) cond in
    let tpost = Option.map (check_expr env) post in
    let tbody = check_block env body in
    pop_scope env saved;
    Tfor (tinit, tcond, tpost, tbody)
  | Sreturn None ->
    if env.ret_ty <> Tvoid then err "return without value";
    Treturn None
  | Sreturn (Some e) ->
    if env.ret_ty = Tvoid then err "return with value in void function";
    Treturn (Some (convert env env.ret_ty (check_expr env e)))
  | Sbreak -> Tbreak
  | Scontinue -> Tcontinue
  | Sblock b -> Tblock (check_block env b)
  | Sline n -> Tline n

and check_block env stmts =
  let saved = push_scope env in
  let out = List.map (check_stmt env) stmts in
  pop_scope env saved;
  out

(* ---- globals ------------------------------------------------------------ *)

let le32 v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (v land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 3 (Char.chr ((v lsr 24) land 0xFF));
  Bytes.to_string b

let float_bits f = Hb_isa.Types.bits_of_float f

let check_global env (g : global) : tglobal =
  (* resolve unsized arrays from their initializer *)
  let gty =
    match (g.gty, g.ginit) with
    | Tarray (t, -1), Some (Init_string s) -> Tarray (t, String.length s + 1)
    | Tarray (t, -1), Some (Init_list l) -> Tarray (t, List.length l)
    | Tarray (_, -1), _ -> err "unsized global array %s" g.gname
    | t, _ -> t
  in
  let size = sizeof env gty in
  let bytes, startup =
    match g.ginit with
    | None -> (None, None)
    | Some (Init_string s) -> (
      match gty with
      | Tarray (Tchar, n) ->
        if String.length s + 1 > n then err "initializer too long for %s" g.gname;
        (Some (s ^ String.make (n - String.length s) '\000'), None)
      | Tptr Tchar ->
        (* pointer global: becomes startup code so it gets bounds *)
        (None,
         Some
           { desc =
               Assign
                 (Lglob (g.gname, 0, gty),
                  check_expr env (Estr s));
             ty = gty })
      | t -> err "string initializer for %s of type %s" g.gname (ty_str t))
    | Some (Init_scalar e) -> (
      match gty with
      | Tint -> (Some (le32 (const_int env e)), None)
      | Tchar -> (Some (String.make 1 (Char.chr (const_int env e land 0xFF))), None)
      | Tfloat -> (Some (le32 (float_bits (const_float env e))), None)
      | Tptr _ ->
        (None,
         Some
           { desc =
               Assign (Lglob (g.gname, 0, gty), convert env gty (check_expr env e));
             ty = gty })
      | t -> err "scalar initializer for %s of type %s" g.gname (ty_str t))
    | Some (Init_list es) -> (
      match gty with
      | Tarray (Tint, _) ->
        (Some (String.concat "" (List.map (fun e -> le32 (const_int env e)) es)),
         None)
      | Tarray (Tfloat, _) ->
        (Some
           (String.concat ""
              (List.map (fun e -> le32 (float_bits (const_float env e))) es)),
         None)
      | Tarray (Tchar, _) ->
        (Some
           (String.concat ""
              (List.map
                 (fun e -> String.make 1 (Char.chr (const_int env e land 0xFF)))
                 es)),
         None)
      | t -> err "list initializer for %s of type %s" g.gname (ty_str t))
  in
  { tg_name = g.gname; tg_ty = gty; tg_size = size; tg_bytes = bytes;
    tg_startup = startup }

(* ---- program ------------------------------------------------------------ *)

let check_fun env (f : fundef) : tfun =
  env.ret_ty <- f.fret;
  env.n_locals <- 0;
  env.scopes <- [];
  env.addressable <- [];
  let params =
    List.map
      (fun (ty, name) ->
        (match ty with
         | Tvoid -> err "void parameter %s in %s" name f.fname
         | Tstruct _ | Tarray _ ->
           err "aggregate parameter %s in %s (pass a pointer)" name f.fname
         | _ -> ());
        let unique = declare_local env name ty in
        (unique, ty))
      f.fparams
  in
  let body = check_block env f.fbody in
  {
    tf_name = f.fname;
    tf_ret = f.fret;
    tf_params = params;
    tf_body = body;
    tf_addressable_arrays = env.addressable;
  }

let check_tunit (decls : tunit) : tprogram =
  let env =
    {
      structs = Hashtbl.create 16;
      struct_defs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      funcs = Hashtbl.create 64;
      scopes = [];
      n_locals = 0;
      ret_ty = Tvoid;
      addressable = [];
      in_progress = [];
    }
  in
  (* pass 1: declarations *)
  List.iter
    (fun d ->
      match d with
      | Dstruct s ->
        if Hashtbl.mem env.struct_defs s.sname then
          err "duplicate struct %s" s.sname;
        Hashtbl.replace env.struct_defs s.sname s.sfields
      | Dglobal g ->
        if Hashtbl.mem env.globals g.gname then err "duplicate global %s" g.gname;
        let gty =
          match (g.gty, g.ginit) with
          | Tarray (t, -1), Some (Init_string s) ->
            Tarray (t, String.length s + 1)
          | Tarray (t, -1), Some (Init_list l) -> Tarray (t, List.length l)
          | t, _ -> t
        in
        Hashtbl.replace env.globals g.gname gty
      | Dfun f ->
        if Hashtbl.mem env.funcs f.fname then err "duplicate function %s" f.fname;
        if is_builtin f.fname then err "%s is a builtin" f.fname;
        let params =
          List.map
            (fun (t, _) -> match t with Tarray (e, _) -> Tptr e | t -> t)
            f.fparams
        in
        Hashtbl.replace env.funcs f.fname (f.fret, params))
    decls;
  (* pass 2: bodies and global images *)
  let globals =
    List.filter_map
      (function Dglobal g -> Some (check_global env g) | _ -> None)
      decls
  in
  let funcs =
    List.filter_map
      (function Dfun f -> Some (check_fun env f) | _ -> None)
      decls
  in
  if not (Hashtbl.mem env.funcs "main") then err "no main function";
  let structs =
    Hashtbl.fold
      (fun name _ acc -> (name, (layout env name).sl_size) :: acc)
      env.struct_defs []
  in
  { tp_globals = globals; tp_funcs = funcs; tp_structs = structs }
