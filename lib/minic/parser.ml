(** Recursive-descent parser for MiniC. *)

open Ast

exception Parse_error of int * string

type t = { lx : Lexer.t }

let error p msg =
  raise (Parse_error (Lexer.token_line p.lx, msg))

let peek p = Lexer.token p.lx
let junk p = Lexer.junk p.lx

let expect_punct p s =
  match peek p with
  | Lexer.PUNCT x when x = s -> junk p
  | t ->
    error p (Printf.sprintf "expected '%s', got '%s'" s (Lexer.token_str t))

let accept_punct p s =
  match peek p with
  | Lexer.PUNCT x when x = s ->
    junk p;
    true
  | _ -> false

let expect_ident p =
  match peek p with
  | Lexer.IDENT s ->
    junk p;
    s
  | t -> error p ("expected identifier, got '" ^ Lexer.token_str t ^ "'")

(* ---- types ----------------------------------------------------------- *)

let is_type_start p =
  match peek p with
  | Lexer.KW ("int" | "char" | "float" | "void" | "struct") -> true
  | _ -> false

(* Base type: int / char / float / void / struct S *)
let parse_base_ty p =
  match peek p with
  | Lexer.KW "int" -> junk p; Tint
  | Lexer.KW "char" -> junk p; Tchar
  | Lexer.KW "float" -> junk p; Tfloat
  | Lexer.KW "void" -> junk p; Tvoid
  | Lexer.KW "struct" ->
    junk p;
    let name = expect_ident p in
    Tstruct name
  | t -> error p ("expected type, got '" ^ Lexer.token_str t ^ "'")

let parse_stars p base =
  let t = ref base in
  while accept_punct p "*" do
    t := Tptr !t
  done;
  !t

(* Declarator: stars, name, optional [n] suffixes.  [n] may be empty only
   when an initializer supplies the size (handled by caller). *)
let parse_declarator p base =
  let t = parse_stars p base in
  let name = expect_ident p in
  let rec arrays t =
    if accept_punct p "[" then begin
      match peek p with
      | Lexer.INT_LIT n ->
        junk p;
        expect_punct p "]";
        (* inner-most suffix binds tightest: recurse first *)
        let inner = arrays t in
        Tarray (inner, n)
      | Lexer.PUNCT "]" ->
        junk p;
        let inner = arrays t in
        Tarray (inner, -1) (* size from initializer *)
      | tk -> error p ("expected array size, got '" ^ Lexer.token_str tk ^ "'")
    end
    else t
  in
  (arrays t, name)

(* Abstract type for casts/sizeof: base + stars (+ [n] suffixes). *)
let parse_abstract_ty p =
  let base = parse_base_ty p in
  parse_stars p base

(* ---- expressions ------------------------------------------------------ *)

let rec parse_expr p = parse_assign p

and parse_assign p =
  let lhs = parse_cond p in
  match peek p with
  | Lexer.PUNCT "=" ->
    junk p;
    let rhs = parse_assign p in
    Eassign (lhs, rhs)
  | Lexer.PUNCT ("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^="
                | "<<=" | ">>=" as op) ->
    junk p;
    let rhs = parse_assign p in
    let bop =
      match op with
      | "+=" -> Add | "-=" -> Sub | "*=" -> Mul | "/=" -> Div | "%=" -> Mod
      | "&=" -> Band | "|=" -> Bor | "^=" -> Bxor
      | "<<=" -> Shl | ">>=" -> Shr
      | _ -> assert false
    in
    Eassign (lhs, Ebinop (bop, lhs, rhs))
  | _ -> lhs

and parse_cond p =
  let c = parse_binary p 0 in
  if accept_punct p "?" then begin
    let a = parse_expr p in
    expect_punct p ":";
    let b = parse_cond p in
    Econd (c, a, b)
  end
  else c

(* binary operators by precedence level, low to high *)
and binop_levels =
  [|
    [ ("||", Lor) ];
    [ ("&&", Land) ];
    [ ("|", Bor) ];
    [ ("^", Bxor) ];
    [ ("&", Band) ];
    [ ("==", Eq); ("!=", Ne) ];
    [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ];
    [ ("<<", Shl); (">>", Shr) ];
    [ ("+", Add); ("-", Sub) ];
    [ ("*", Mul); ("/", Div); ("%", Mod) ];
  |]

and parse_binary p level =
  if level >= Array.length binop_levels then parse_unary p
  else begin
    let ops = binop_levels.(level) in
    let lhs = ref (parse_binary p (level + 1)) in
    let continue = ref true in
    while !continue do
      match peek p with
      | Lexer.PUNCT s when List.mem_assoc s ops ->
        junk p;
        let rhs = parse_binary p (level + 1) in
        lhs := Ebinop (List.assoc s ops, !lhs, rhs)
      | _ -> continue := false
    done;
    !lhs
  end

and parse_unary p =
  match peek p with
  | Lexer.PUNCT "-" ->
    junk p;
    Eunop (Neg, parse_unary p)
  | Lexer.PUNCT "!" ->
    junk p;
    Eunop (Lnot, parse_unary p)
  | Lexer.PUNCT "~" ->
    junk p;
    Eunop (Bnot, parse_unary p)
  | Lexer.PUNCT "*" ->
    junk p;
    Ederef (parse_unary p)
  | Lexer.PUNCT "&" ->
    junk p;
    Eaddr (parse_unary p)
  | Lexer.PUNCT "++" ->
    junk p;
    Eincr (Pre_inc, parse_unary p)
  | Lexer.PUNCT "--" ->
    junk p;
    Eincr (Pre_dec, parse_unary p)
  | Lexer.KW "sizeof" ->
    junk p;
    expect_punct p "(";
    let t = parse_abstract_ty p in
    expect_punct p ")";
    Esizeof t
  | Lexer.PUNCT "(" -> (
    (* cast or parenthesized expression *)
    junk p;
    if is_type_start p then begin
      let t = parse_abstract_ty p in
      expect_punct p ")";
      Ecast (t, parse_unary p)
    end
    else begin
      let e = parse_expr p in
      expect_punct p ")";
      parse_postfix p e
    end)
  | _ -> parse_postfix p (parse_primary p)

and parse_primary p =
  match peek p with
  | Lexer.INT_LIT n ->
    junk p;
    Eint n
  | Lexer.FLOAT_LIT f ->
    junk p;
    Efloat f
  | Lexer.STR_LIT s ->
    junk p;
    Estr s
  | Lexer.IDENT name -> (
    junk p;
    match peek p with
    | Lexer.PUNCT "(" ->
      junk p;
      let args = parse_args p in
      Ecall (name, args)
    | _ -> Evar name)
  | t -> error p ("unexpected token '" ^ Lexer.token_str t ^ "'")

and parse_args p =
  if accept_punct p ")" then []
  else begin
    let rec go acc =
      let e = parse_expr p in
      if accept_punct p "," then go (e :: acc)
      else begin
        expect_punct p ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_postfix p e =
  match peek p with
  | Lexer.PUNCT "[" ->
    junk p;
    let i = parse_expr p in
    expect_punct p "]";
    parse_postfix p (Eindex (e, i))
  | Lexer.PUNCT "." ->
    junk p;
    let f = expect_ident p in
    parse_postfix p (Efield (e, f))
  | Lexer.PUNCT "->" ->
    junk p;
    let f = expect_ident p in
    parse_postfix p (Earrow (e, f))
  | Lexer.PUNCT "++" ->
    junk p;
    parse_postfix p (Eincr (Post_inc, e))
  | Lexer.PUNCT "--" ->
    junk p;
    parse_postfix p (Eincr (Post_dec, e))
  | _ -> e

(* ---- statements -------------------------------------------------------- *)

let rec parse_stmt p : stmt =
  match peek p with
  | Lexer.PUNCT "{" -> Sblock (parse_block p)
  | Lexer.KW "if" ->
    junk p;
    expect_punct p "(";
    let c = parse_expr p in
    expect_punct p ")";
    let then_b = parse_stmt_as_block p in
    let else_b =
      match peek p with
      | Lexer.KW "else" ->
        junk p;
        parse_stmt_as_block p
      | _ -> []
    in
    Sif (c, then_b, else_b)
  | Lexer.KW "while" ->
    junk p;
    expect_punct p "(";
    let c = parse_expr p in
    expect_punct p ")";
    Swhile (c, parse_stmt_as_block p)
  | Lexer.KW "do" ->
    junk p;
    let body = parse_stmt_as_block p in
    (match peek p with
     | Lexer.KW "while" -> junk p
     | t -> error p ("expected while, got '" ^ Lexer.token_str t ^ "'"));
    expect_punct p "(";
    let c = parse_expr p in
    expect_punct p ")";
    expect_punct p ";";
    Sdo (body, c)
  | Lexer.KW "for" ->
    junk p;
    expect_punct p "(";
    let init =
      if accept_punct p ";" then None
      else begin
        let s =
          if is_type_start p then parse_decl_stmt p
          else Sexpr (parse_expr p)
        in
        (match s with Sdecl _ -> () | _ -> expect_punct p ";");
        Some s
      end
    in
    let cond = if accept_punct p ";" then None
      else begin
        let e = parse_expr p in
        expect_punct p ";";
        Some e
      end
    in
    let post =
      if accept_punct p ")" then None
      else begin
        let e = parse_expr p in
        expect_punct p ")";
        Some e
      end
    in
    Sfor (init, cond, post, parse_stmt_as_block p)
  | Lexer.KW "return" ->
    junk p;
    if accept_punct p ";" then Sreturn None
    else begin
      let e = parse_expr p in
      expect_punct p ";";
      Sreturn (Some e)
    end
  | Lexer.KW "break" ->
    junk p;
    expect_punct p ";";
    Sbreak
  | Lexer.KW "continue" ->
    junk p;
    expect_punct p ";";
    Scontinue
  | _ when is_type_start p -> parse_decl_stmt p
  | _ ->
    let e = parse_expr p in
    expect_punct p ";";
    Sexpr e

(* local declaration: `ty declarator (= expr)? ;` *)
and parse_decl_stmt p =
  let base = parse_base_ty p in
  let ty, name = parse_declarator p base in
  let init =
    if accept_punct p "=" then Some (parse_expr p) else None
  in
  expect_punct p ";";
  Sdecl (ty, name, init)

and parse_stmt_as_block p =
  (* Interleave a [Sline] marker so the debug map covers single-statement
     bodies as well as braced blocks. *)
  let line = Lexer.token_line p.lx in
  match parse_stmt p with Sblock b -> b | s -> [ Sline line; s ]

and parse_block p =
  expect_punct p "{";
  let rec go acc =
    if accept_punct p "}" then List.rev acc
    else begin
      let line = Lexer.token_line p.lx in
      go (parse_stmt p :: Sline line :: acc)
    end
  in
  go []

(* ---- top level ---------------------------------------------------------- *)

let parse_params p =
  expect_punct p "(";
  if accept_punct p ")" then []
  else if peek p = Lexer.KW "void" then begin
    junk p;
    expect_punct p ")";
    []
  end
  else begin
    let rec go acc =
      let base = parse_base_ty p in
      let ty, name = parse_declarator p base in
      (* array parameters decay to pointers *)
      let ty = match ty with Tarray (t, _) -> Tptr t | t -> t in
      if accept_punct p "," then go ((ty, name) :: acc)
      else begin
        expect_punct p ")";
        List.rev ((ty, name) :: acc)
      end
    in
    go []
  end

let parse_ginit p ty =
  if accept_punct p "=" then
    match peek p with
    | Lexer.STR_LIT s ->
      junk p;
      Some (Init_string s)
    | Lexer.PUNCT "{" ->
      junk p;
      let rec go acc =
        let e = parse_expr p in
        if accept_punct p "," then
          if accept_punct p "}" then List.rev (e :: acc)
          else go (e :: acc)
        else begin
          expect_punct p "}";
          List.rev (e :: acc)
        end
      in
      Some (Init_list (go []))
    | _ ->
      let e = parse_expr p in
      ignore ty;
      Some (Init_scalar e)
  else None

let parse_tunit (src : string) : tunit =
  let p = { lx = Lexer.create src } in
  let rec go acc =
    match peek p with
    | Lexer.EOF -> List.rev acc
    | Lexer.KW "struct" -> (
      (* struct definition or global of struct type: lookahead after name *)
      junk p;
      let name = expect_ident p in
      match peek p with
      | Lexer.PUNCT "{" ->
        junk p;
        let rec fields acc =
          if accept_punct p "}" then List.rev acc
          else begin
            let base = parse_base_ty p in
            let rec decls acc =
              let ty, fname = parse_declarator p base in
              if accept_punct p "," then decls ((ty, fname) :: acc)
              else begin
                expect_punct p ";";
                List.rev ((ty, fname) :: acc)
              end
            in
            fields (List.rev_append (decls []) acc)
          end
        in
        let sfields = fields [] in
        expect_punct p ";";
        go (Dstruct { sname = name; sfields } :: acc)
      | _ ->
        let ty, dname = parse_declarator p (Tstruct name) in
        if peek p = Lexer.PUNCT "(" then begin
          let params = parse_params p in
          let body = parse_block p in
          go (Dfun { fname = dname; fret = ty; fparams = params; fbody = body }
              :: acc)
        end
        else begin
          let init = parse_ginit p ty in
          expect_punct p ";";
          go (Dglobal { gname = dname; gty = ty; ginit = init } :: acc)
        end)
    | _ ->
      let base = parse_base_ty p in
      let ty, name = parse_declarator p base in
      if peek p = Lexer.PUNCT "(" then begin
        let params = parse_params p in
        let body = parse_block p in
        go (Dfun { fname = name; fret = ty; fparams = params; fbody = body }
            :: acc)
      end
      else begin
        let init = parse_ginit p ty in
        expect_punct p ";";
        go (Dglobal { gname = name; gty = ty; ginit = init } :: acc)
      end
  in
  go []
