(** Abstract syntax for MiniC, the C subset the reproduction's compiler
    accepts.  It covers what the Olden benchmarks, the runtime library and
    the violation corpus need: int/char/float scalars, pointers, arrays
    (including arrays inside structs — the case object-table schemes cannot
    protect, Section 2.2 of the paper), structs, the usual operators and
    control flow, casts and sizeof. *)

type ty =
  | Tvoid
  | Tint
  | Tchar
  | Tfloat
  | Tptr of ty
  | Tarray of ty * int
  | Tstruct of string

type unop =
  | Neg   (* -e, integer or float *)
  | Lnot  (* !e *)
  | Bnot  (* ~e *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Band | Bor | Bxor
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type expr =
  | Eint of int
  | Efloat of float
  | Estr of string
  | Evar of string
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eassign of expr * expr
  | Ecall of string * expr list
  | Eindex of expr * expr
  | Ederef of expr
  | Eaddr of expr
  | Efield of expr * string   (* e.f *)
  | Earrow of expr * string   (* e->f *)
  | Ecast of ty * expr
  | Esizeof of ty
  | Econd of expr * expr * expr
  | Eincr of incr_kind * expr (* ++/-- as expression *)

and incr_kind = Pre_inc | Pre_dec | Post_inc | Post_dec

type stmt =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sline of int
      (* parser-inserted marker: the following statement starts on this
         1-based source line.  Flows through to the ISA [Line] directive
         so the linker can build the PC→line debug map. *)

(** Static initializers for globals (written into the data image by the
    loader, except pointer initializers which become startup code). *)
type ginit =
  | Init_scalar of expr      (* constant int/char/float expression *)
  | Init_list of expr list   (* array initializer *)
  | Init_string of string    (* char array initializer *)

type global = { gname : string; gty : ty; ginit : ginit option }

type fundef = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt list;
}

type struct_def = { sname : string; sfields : (ty * string) list }

type decl =
  | Dstruct of struct_def
  | Dglobal of global
  | Dfun of fundef

type tunit = decl list

(* ---- pretty-printing (diagnostics and tests) ------------------------ *)

let rec ty_str = function
  | Tvoid -> "void"
  | Tint -> "int"
  | Tchar -> "char"
  | Tfloat -> "float"
  | Tptr t -> ty_str t ^ "*"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (ty_str t) n
  | Tstruct s -> "struct " ^ s

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"

let rec expr_str = function
  | Eint n -> string_of_int n
  | Efloat f -> Printf.sprintf "%g" f
  | Estr s -> Printf.sprintf "%S" s
  | Evar v -> v
  | Eunop (Neg, e) -> "-(" ^ expr_str e ^ ")"
  | Eunop (Lnot, e) -> "!(" ^ expr_str e ^ ")"
  | Eunop (Bnot, e) -> "~(" ^ expr_str e ^ ")"
  | Ebinop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Eassign (l, r) -> Printf.sprintf "(%s = %s)" (expr_str l) (expr_str r)
  | Ecall (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args))
  | Eindex (e, i) -> Printf.sprintf "%s[%s]" (expr_str e) (expr_str i)
  | Ederef e -> "*(" ^ expr_str e ^ ")"
  | Eaddr e -> "&(" ^ expr_str e ^ ")"
  | Efield (e, f) -> expr_str e ^ "." ^ f
  | Earrow (e, f) -> expr_str e ^ "->" ^ f
  | Ecast (t, e) -> Printf.sprintf "(%s)(%s)" (ty_str t) (expr_str e)
  | Esizeof t -> Printf.sprintf "sizeof(%s)" (ty_str t)
  | Econd (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_str c) (expr_str a) (expr_str b)
  | Eincr (Pre_inc, e) -> "++" ^ expr_str e
  | Eincr (Pre_dec, e) -> "--" ^ expr_str e
  | Eincr (Post_inc, e) -> expr_str e ^ "++"
  | Eincr (Post_dec, e) -> expr_str e ^ "--"
