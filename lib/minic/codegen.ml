(** Code generation from {!Tast} to the HardBound ISA, parameterized by the
    protection scheme under evaluation:

    - [Nochecks]: the uninstrumented baseline binary.
    - [Hardbound]: the paper's full-safety compilation — the only extra
      code emitted is [setbound] at pointer-creation points ([Bound]
      nodes); checking and propagation are done by the hardware.
    - [Hardbound_malloc_only]: only [__setbound] calls (i.e. the
      instrumented allocator) lower to [setbound]; models running legacy
      binaries with an instrumented malloc (Section 3.2).
    - [Softfat]: a CCured/SEQ-style software-only fat-pointer scheme.
      Pointer-typed values are value/base/bound triples kept in registers
      and, for in-memory storage, in a disjoint software shadow space
      (layout-compatible split metadata); dereferences get explicit
      compare-and-branch checks.
    - [Objtable]: a Jones&Kelly-style object-table scheme with the
      Ruwase/Lam / Dhurjati/Adve refinements: a splay tree (written in
      MiniC, in the runtime) consulted on *dynamic* pointer arithmetic;
      constant-offset (struct field) arithmetic is statically elided.

    All modes share this generator, so relative overheads are meaningful. *)

open Hb_isa.Types
open Tast
module Layout = Hb_mem.Layout

type mode = Nochecks | Hardbound | Hardbound_malloc_only | Softfat | Objtable

let mode_name = function
  | Nochecks -> "nochecks"
  | Hardbound -> "hardbound"
  | Hardbound_malloc_only -> "hardbound-malloc-only"
  | Softfat -> "softfat"
  | Objtable -> "objtable"

(** Machine enforcement mode matching a compilation mode. *)
let machine_mode = function
  | Hardbound -> Hardbound.Checker.Full
  | Hardbound_malloc_only -> Hardbound.Checker.Malloc_only
  | Nochecks | Softfat | Objtable -> Hardbound.Checker.Off

exception Codegen_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

(* Softfat register convention: accumulator metadata. *)
let sb0 = 16 (* base of the pointer in t0 *)
let sb1 = 17 (* bound of the pointer in t0 *)
let sb2 = 18 (* base of the pointer in t1/t2 *)
let sb3 = 19 (* bound of the pointer in t1/t2 *)

type slot = Local of int | Param of int

type ctx = {
  mode : mode;
  mutable code : instr list; (* reversed *)
  mutable label_id : int;
  slots : (string, slot * Ast.ty) Hashtbl.t;
  frame_size : int;
  globals : (string, int * Ast.ty) Hashtbl.t; (* name -> offset, ty *)
  strings : (string, int) Hashtbl.t;          (* literal -> offset *)
  sizeof : Ast.ty -> int;
  mutable break_lbl : string list;
  mutable cont_lbl : string list;
  fname : string;
  mutable sf_abort_used : bool;
  trusted : bool; (* runtime internals: no object-table instrumentation *)
}

let emit ctx i = ctx.code <- i :: ctx.code

let new_label ctx prefix =
  ctx.label_id <- ctx.label_id + 1;
  Printf.sprintf "%s_%d" prefix ctx.label_id

let is_ptr = function Ast.Tptr _ -> true | _ -> false

let width_of ctx ty =
  match ty with
  | Ast.Tchar -> W1
  | Ast.Tint | Ast.Tfloat | Ast.Tptr _ -> W4
  | t -> err "%s: load/store of aggregate %s" ctx.fname (Ast.ty_str t)

(* ---- softfat helpers -------------------------------------------------- *)

let sf_on ctx = ctx.mode = Softfat

(* t3 <- software shadow address of the data address in [addr_reg]. *)
let sf_shadow ctx addr_reg =
  emit ctx (Li (t3, Layout.shadow_base));
  emit ctx (Alu (Add, t3, t3, Reg addr_reg));
  emit ctx (Alu (Add, t3, t3, Reg addr_reg))

let sf_abort_label ctx = "__sf_abort_" ^ ctx.fname

(* Explicit software bounds check of the pointer in (reg, breg, bdreg)
   before an access of [width] bytes. *)
let sf_check ctx ~value_reg ~base_reg ~bound_reg ~width =
  ctx.sf_abort_used <- true;
  emit ctx (Alu (Sltu, t4, value_reg, Reg base_reg));
  emit ctx (Branch (Ne, t4, zero, sf_abort_label ctx));
  emit ctx (Alu (Add, t5, value_reg, Imm width));
  emit ctx (Alu (Sltu, t4, bound_reg, Reg t5));
  emit ctx (Branch (Ne, t4, zero, sf_abort_label ctx))

(* Software narrowing: intersect the accumulator triple with
   [t0, t0+size).  A non-pointer source (sb0 = sb1 = 0) gets the fresh
   bounds outright, mirroring setbound.narrow's hardware semantics. *)
let sf_narrow ctx size =
  let lbl_int = new_label ctx "nar_int" in
  let lbl_done = new_label ctx "nar_done" in
  let lbl_hi = new_label ctx "nar_hi" in
  emit ctx (Branch (Ne, sb0, zero, lbl_int));
  emit ctx (Branch (Ne, sb1, zero, lbl_int));
  emit ctx (Mov (sb0, t0));
  emit ctx (Alu (Add, sb1, t0, Imm size));
  emit ctx (Jmp lbl_done);
  emit ctx (Label lbl_int);
  (* sb0 = max(sb0, t0) *)
  emit ctx (Alu (Sltu, t4, sb0, Reg t0));
  emit ctx (Branch (Eq, t4, zero, lbl_hi));
  emit ctx (Mov (sb0, t0));
  emit ctx (Label lbl_hi);
  (* sb1 = min(sb1, t0 + size) *)
  emit ctx (Alu (Add, t5, t0, Imm size));
  emit ctx (Alu (Sltu, t4, t5, Reg sb1));
  emit ctx (Branch (Eq, t4, zero, lbl_done));
  emit ctx (Mov (sb1, t5));
  emit ctx (Label lbl_done)

(* ---- value stack ------------------------------------------------------- *)

(* Push the accumulator (t0, and its softfat metadata if [ptr]). *)
let push ctx ~ptr =
  if sf_on ctx && ptr then begin
    emit ctx (Alu (Sub, sp, sp, Imm 12));
    emit ctx (Store { src = t0; base = sp; off = 0; width = W4 });
    emit ctx (Store { src = sb0; base = sp; off = 4; width = W4 });
    emit ctx (Store { src = sb1; base = sp; off = 8; width = W4 })
  end
  else begin
    emit ctx (Alu (Sub, sp, sp, Imm 4));
    emit ctx (Store { src = t0; base = sp; off = 0; width = W4 })
  end

(* Pop into [t1] (metadata into sb2/sb3). *)
let pop_t1 ctx ~ptr =
  if sf_on ctx && ptr then begin
    emit ctx (Load { dst = t1; base = sp; off = 0; width = W4; signed = true });
    emit ctx (Load { dst = sb2; base = sp; off = 4; width = W4; signed = true });
    emit ctx (Load { dst = sb3; base = sp; off = 8; width = W4; signed = true });
    emit ctx (Alu (Add, sp, sp, Imm 12))
  end
  else begin
    emit ctx (Load { dst = t1; base = sp; off = 0; width = W4; signed = true });
    emit ctx (Alu (Add, sp, sp, Imm 4))
  end

(* ---- lvalue addressing ------------------------------------------------- *)

let slot_offset ctx name =
  match Hashtbl.find_opt ctx.slots name with
  | Some (Local off, ty) -> (off, ty)
  | Some (Param i, ty) -> (ctx.frame_size + 8 + (4 * i), ty)
  | None -> err "%s: unknown local %s" ctx.fname name

let global_offset ctx name =
  match Hashtbl.find_opt ctx.globals name with
  | Some (off, ty) -> (off, ty)
  | None -> err "%s: unknown global %s" ctx.fname name

(* ---- expressions ------------------------------------------------------- *)

(* Evaluate [te] into t0.  In Softfat mode, guarantee that sb0/sb1 hold the
   metadata whenever [te.ty] is a pointer; [eval_desc] reports whether it
   already established them. *)
let rec eval ctx (te : texpr) : unit =
  let meta_ok = eval_desc ctx te in
  if sf_on ctx && is_ptr te.ty && not meta_ok then begin
    emit ctx (Li (sb0, 0));
    emit ctx (Li (sb1, 0))
  end

and eval_desc ctx (te : texpr) : bool =
  match te.desc with
  | Cint n ->
    emit ctx (Li (t0, n));
    false
  | Cfloat f ->
    emit ctx (Li (t0, bits_of_float f));
    false
  | Cstr s -> (
    match Hashtbl.find_opt ctx.strings s with
    | Some off ->
      emit ctx (Li (t0, Layout.globals_base + off));
      false
    | None -> err "%s: unknown string literal" ctx.fname)
  | Load lv -> gen_load ctx lv
  | AddrOf lv -> gen_addr ctx lv
  | Bound (e, size) ->
    (* Compiler-inserted narrowing: only emitted under full compiler
       instrumentation.  The malloc-only mode leaves these out — that is
       precisely what makes it binary-compatible with legacy code.
       Narrowing INTERSECTS with the source pointer's bounds, so a struct
       cast to a larger type cannot manufacture access (Section 1's cast
       example). *)
    eval ctx e;
    (match ctx.mode with
     | Hardbound ->
       emit ctx (Setbound_narrow { dst = t0; src = t0; size = Imm size })
     | Softfat -> sf_narrow ctx size
     | Nochecks | Objtable | Hardbound_malloc_only -> ());
    true
  | Bound_dyn (p, n) ->
    eval ctx n;
    push ctx ~ptr:false;
    eval ctx p;
    pop_t1 ctx ~ptr:false;
    (match ctx.mode with
     | Hardbound | Hardbound_malloc_only ->
       emit ctx (Setbound { dst = t0; src = t0; size = Reg t1 })
     | Softfat ->
       emit ctx (Mov (sb0, t0));
       emit ctx (Alu (Add, sb1, t0, Reg t1))
     | Nochecks | Objtable -> ());
    true
  | Bound_unsafe p ->
    eval ctx p;
    (match ctx.mode with
     | Hardbound | Hardbound_malloc_only ->
       emit ctx (Setbound_unsafe (t0, t0))
     | Softfat ->
       emit ctx (Li (sb0, 0));
       emit ctx (Li (sb1, max_int32u))
     | Nochecks | Objtable -> ());
    true
  | Unop (op, e) ->
    eval ctx e;
    (match op with
     | Ast.Neg ->
       if e.ty = Ast.Tfloat then emit ctx (Fneg (t0, t0))
       else emit ctx (Alu (Sub, t0, zero, Reg t0))
     | Ast.Lnot -> emit ctx (Alu (Seq, t0, t0, Reg zero))
     | Ast.Bnot -> emit ctx (Alu (Xor, t0, t0, Imm (-1))));
    false
  | Binop (op, a, b) ->
    gen_int_binop ctx op a b;
    false
  | Fbinop (op, a, b) ->
    gen_float_binop ctx op a b;
    false
  | Ptr_add (p, i, scale) -> gen_ptr_add ctx p i scale
  | Ptr_diff (p, q, scale) ->
    eval ctx p;
    push ctx ~ptr:false; (* only the raw values are needed *)
    eval ctx q;
    emit ctx (Mov (t1, t0));
    emit ctx (Load { dst = t0; base = sp; off = 0; width = W4; signed = true });
    emit ctx (Alu (Add, sp, sp, Imm 4));
    emit ctx (Alu (Sub, t0, t0, Reg t1));
    if scale > 1 then emit ctx (Alu (Div, t0, t0, Imm scale));
    false
  | Assign (lv, rhs) -> gen_assign ctx lv rhs
  | Call (fname, args) -> gen_call ctx fname args (is_ptr te.ty)
  | Builtin (name, args) -> gen_builtin ctx name args
  | Cond (c, a, b) ->
    let lbl_else = new_label ctx "cond_else" in
    let lbl_end = new_label ctx "cond_end" in
    eval ctx c;
    emit ctx (Branch (Eq, t0, zero, lbl_else));
    eval ctx a;
    emit ctx (Jmp lbl_end);
    emit ctx (Label lbl_else);
    eval ctx b;
    emit ctx (Label lbl_end);
    true (* both branches established metadata through eval *)
  | And_or (is_and, a, b) ->
    let lbl_short = new_label ctx "sc" in
    let lbl_end = new_label ctx "sc_end" in
    eval ctx a;
    if is_and then emit ctx (Branch (Eq, t0, zero, lbl_short))
    else emit ctx (Branch (Ne, t0, zero, lbl_short));
    eval ctx b;
    emit ctx (Alu (Sne, t0, t0, Reg zero));
    emit ctx (Jmp lbl_end);
    emit ctx (Label lbl_short);
    emit ctx (Li (t0, if is_and then 0 else 1));
    emit ctx (Label lbl_end);
    false
  | Int_of_float e ->
    eval ctx e;
    emit ctx (Cvt_i_of_f (t0, t0));
    false
  | Float_of_int e ->
    eval ctx e;
    emit ctx (Cvt_f_of_i (t0, t0));
    false
  | Incr (kind, lv, step) -> gen_incr ctx kind lv step
  | Seq (a, b) ->
    eval ctx a;
    eval ctx b;
    true

(* Load a scalar lvalue into t0.  Returns true if softfat metadata was
   established. *)
and gen_load ctx lv =
  let ty = lval_ty lv in
  let width = width_of ctx ty in
  match lv with
  | Lframe (name, extra, _) ->
    let off, _ = slot_offset ctx name in
    gen_direct_load ctx fp (off + extra) width ty
  | Lglob (name, extra, _) ->
    let off, _ = global_offset ctx name in
    gen_direct_load ctx gp (off + extra) width ty
  | Lmem (addr, _) ->
    eval ctx addr;
    (* pointer to deref is in t0 (softfat meta in sb0/sb1) *)
    if sf_on ctx then
      sf_check ctx ~value_reg:t0 ~base_reg:sb0 ~bound_reg:sb1
        ~width:(bytes_of_width width);
    if sf_on ctx && is_ptr ty then begin
      (* split loads: value plus software shadow metadata *)
      emit ctx (Mov (t2, t0));
      emit ctx (Load { dst = t0; base = t2; off = 0; width; signed = false });
      sf_shadow ctx t2;
      emit ctx (Load { dst = sb0; base = t3; off = 0; width = W4; signed = true });
      emit ctx (Load { dst = sb1; base = t3; off = 4; width = W4; signed = true });
      true
    end
    else begin
      emit ctx (Load { dst = t0; base = t0; off = 0; width; signed = false });
      false
    end

and gen_direct_load ctx basereg off width ty =
  if sf_on ctx && is_ptr ty then begin
    emit ctx (Load { dst = t0; base = basereg; off; width; signed = false });
    emit ctx (Alu (Add, t2, basereg, Imm off));
    sf_shadow ctx t2;
    emit ctx (Load { dst = sb0; base = t3; off = 0; width = W4; signed = true });
    emit ctx (Load { dst = sb1; base = t3; off = 4; width = W4; signed = true });
    true
  end
  else begin
    emit ctx (Load { dst = t0; base = basereg; off; width; signed = false });
    false
  end

(* Address of an lvalue into t0 (inheriting region bounds; narrowing is the
   typechecker's job via Bound nodes). *)
and gen_addr ctx lv =
  match lv with
  | Lframe (name, extra, _) ->
    let off, _ = slot_offset ctx name in
    emit ctx (Alu (Add, t0, fp, Imm (off + extra)));
    if sf_on ctx then begin
      emit ctx (Li (sb0, Layout.stack_base));
      emit ctx (Li (sb1, Layout.stack_top))
    end;
    true
  | Lglob (name, extra, _) ->
    let off, _ = global_offset ctx name in
    emit ctx (Alu (Add, t0, gp, Imm (off + extra)));
    if sf_on ctx then begin
      emit ctx (Li (sb0, Layout.globals_base));
      emit ctx (Li (sb1, Layout.globals_limit))
    end;
    true
  | Lmem (addr, _) ->
    eval ctx addr;
    true

and gen_int_binop ctx op a b =
  let alu_of = function
    | Ast.Add -> Add | Ast.Sub -> Sub | Ast.Mul -> Mul | Ast.Div -> Div
    | Ast.Mod -> Rem | Ast.Shl -> Shl | Ast.Shr -> Sar
    | Ast.Band -> And | Ast.Bor -> Or | Ast.Bxor -> Xor
    | Ast.Lt -> Slt | Ast.Le -> Sle | Ast.Gt -> Sgt | Ast.Ge -> Sge
    | Ast.Eq -> Seq | Ast.Ne -> Sne
    | Ast.Land | Ast.Lor -> err "%s: &&/|| in binop" ctx.fname
  in
  match b.desc with
  | Cint n ->
    eval ctx a;
    emit ctx (Alu (alu_of op, t0, t0, Imm n))
  | _ ->
    eval ctx a;
    push ctx ~ptr:false;
    eval ctx b;
    emit ctx (Mov (t1, t0));
    emit ctx (Load { dst = t0; base = sp; off = 0; width = W4; signed = true });
    emit ctx (Alu (Add, sp, sp, Imm 4));
    emit ctx (Alu (alu_of op, t0, t0, Reg t1))

and gen_float_binop ctx op a b =
  eval ctx a;
  push ctx ~ptr:false;
  eval ctx b;
  emit ctx (Mov (t1, t0));
  emit ctx (Load { dst = t0; base = sp; off = 0; width = W4; signed = true });
  emit ctx (Alu (Add, sp, sp, Imm 4));
  match op with
  | Ast.Add -> emit ctx (Falu (Fadd, t0, t0, t1))
  | Ast.Sub -> emit ctx (Falu (Fsub, t0, t0, t1))
  | Ast.Mul -> emit ctx (Falu (Fmul, t0, t0, t1))
  | Ast.Div -> emit ctx (Falu (Fdiv, t0, t0, t1))
  | Ast.Lt -> emit ctx (Falu (Fslt, t0, t0, t1))
  | Ast.Le -> emit ctx (Falu (Fsle, t0, t0, t1))
  | Ast.Gt -> emit ctx (Falu (Fslt, t0, t1, t0))
  | Ast.Ge -> emit ctx (Falu (Fsle, t0, t1, t0))
  | Ast.Eq -> emit ctx (Falu (Feq, t0, t0, t1))
  | Ast.Ne ->
    emit ctx (Falu (Feq, t0, t0, t1));
    emit ctx (Alu (Seq, t0, t0, Reg zero))
  | op -> err "%s: float operator %s" ctx.fname (Ast.binop_str op)

(* Pointer arithmetic: result = p + i*scale.  Under Objtable, dynamic
   arithmetic consults the object table ([__ot_check_arith]); constant
   offsets (struct fields) are statically elided, as in Dhurjati/Adve. *)
and gen_ptr_add ctx p i scale =
  let instrument =
    ctx.mode = Objtable && (not ctx.trusted)
    && (match i.desc with Cint _ -> false | _ -> true)
  in
  match i.desc with
  | Cint n when not instrument ->
    eval ctx p;
    emit ctx (Alu (Add, t0, t0, Imm (n * scale)));
    sf_on ctx && is_ptr p.ty
  | _ ->
    eval ctx p;
    push ctx ~ptr:(is_ptr p.ty);
    eval ctx i;
    if scale <> 1 then emit ctx (Alu (Mul, t0, t0, Imm scale));
    emit ctx (Mov (t1, t0));
    (* restore p into t0 (meta into sb0/sb1 under softfat) *)
    (if sf_on ctx && is_ptr p.ty then begin
       emit ctx (Load { dst = t0; base = sp; off = 0; width = W4; signed = true });
       emit ctx (Load { dst = sb0; base = sp; off = 4; width = W4; signed = true });
       emit ctx (Load { dst = sb1; base = sp; off = 8; width = W4; signed = true });
       emit ctx (Alu (Add, sp, sp, Imm 12))
     end
     else begin
       emit ctx (Load { dst = t0; base = sp; off = 0; width = W4; signed = true });
       emit ctx (Alu (Add, sp, sp, Imm 4))
     end);
    if instrument then begin
      (* new = __ot_check_arith(old, old + i*scale) *)
      emit ctx (Alu (Add, t1, t0, Reg t1));
      emit ctx (Alu (Sub, sp, sp, Imm 8));
      emit ctx (Store { src = t0; base = sp; off = 0; width = W4 });
      emit ctx (Store { src = t1; base = sp; off = 4; width = W4 });
      emit ctx (Call "__ot_check_arith");
      emit ctx (Alu (Add, sp, sp, Imm 8));
      emit ctx (Mov (t0, a0))
    end
    else emit ctx (Alu (Add, t0, t0, Reg t1));
    sf_on ctx && is_ptr p.ty

and gen_assign ctx lv rhs =
  let ty = lval_ty lv in
  let width = width_of ctx ty in
  match lv with
  | Lframe (name, extra, _) ->
    let off, _ = slot_offset ctx name in
    eval ctx rhs;
    gen_direct_store ctx fp (off + extra) width ty
  | Lglob (name, extra, _) ->
    let off, _ = global_offset ctx name in
    eval ctx rhs;
    gen_direct_store ctx gp (off + extra) width ty
  | Lmem (addr, _) ->
    eval ctx rhs;
    push ctx ~ptr:(sf_on ctx && is_ptr ty);
    eval ctx addr;
    emit ctx (Mov (t2, t0));
    (if sf_on ctx then begin
       (* keep the target pointer's metadata for the check *)
       emit ctx (Mov (sb2, sb0));
       emit ctx (Mov (sb3, sb1))
     end);
    (* restore rhs into t0/sb0/sb1 *)
    (if sf_on ctx && is_ptr ty then begin
       emit ctx (Load { dst = t0; base = sp; off = 0; width = W4; signed = true });
       emit ctx (Load { dst = sb0; base = sp; off = 4; width = W4; signed = true });
       emit ctx (Load { dst = sb1; base = sp; off = 8; width = W4; signed = true });
       emit ctx (Alu (Add, sp, sp, Imm 12))
     end
     else begin
       emit ctx (Load { dst = t0; base = sp; off = 0; width = W4; signed = true });
       emit ctx (Alu (Add, sp, sp, Imm 4))
     end);
    if sf_on ctx then
      sf_check ctx ~value_reg:t2 ~base_reg:sb2 ~bound_reg:sb3
        ~width:(bytes_of_width width);
    emit ctx (Store { src = t0; base = t2; off = 0; width });
    if sf_on ctx && is_ptr ty then begin
      sf_shadow ctx t2;
      emit ctx (Store { src = sb0; base = t3; off = 0; width = W4 });
      emit ctx (Store { src = sb1; base = t3; off = 4; width = W4 })
    end;
    sf_on ctx && is_ptr ty

and gen_direct_store ctx basereg off width ty =
  emit ctx (Store { src = t0; base = basereg; off; width });
  if sf_on ctx && is_ptr ty then begin
    emit ctx (Alu (Add, t2, basereg, Imm off));
    sf_shadow ctx t2;
    emit ctx (Store { src = sb0; base = t3; off = 0; width = W4 });
    emit ctx (Store { src = sb1; base = t3; off = 4; width = W4 });
    true
  end
  else false

and gen_call ctx fname args ret_is_ptr =
  let n = List.length args in
  let area = 4 * n in
  if n > 0 then emit ctx (Alu (Sub, sp, sp, Imm area));
  List.iteri
    (fun idx arg ->
      eval ctx arg;
      emit ctx (Store { src = t0; base = sp; off = 4 * idx; width = W4 });
      if sf_on ctx && is_ptr arg.ty then begin
        emit ctx (Alu (Add, t2, sp, Imm (4 * idx)));
        sf_shadow ctx t2;
        emit ctx (Store { src = sb0; base = t3; off = 0; width = W4 });
        emit ctx (Store { src = sb1; base = t3; off = 4; width = W4 })
      end)
    args;
  emit ctx (Call fname);
  if n > 0 then emit ctx (Alu (Add, sp, sp, Imm area));
  emit ctx (Mov (t0, a0));
  (* softfat pointer returns leave metadata in sb0/sb1 by convention *)
  sf_on ctx && ret_is_ptr

and gen_builtin ctx name args =
  match (name, args) with
  | ("print_int" | "print_char" | "__abort"), [ e ] ->
    eval ctx e;
    emit ctx (Mov (a0, t0));
    emit ctx
      (Syscall
         (match name with
          | "print_int" -> Sys_print_int
          | "print_char" -> Sys_print_char
          | _ -> Sys_abort));
    false
  | "print_float", [ e ] ->
    eval ctx e;
    emit ctx (Mov (a0, t0));
    emit ctx (Syscall Sys_print_float);
    false
  | "sbrk", [ e ] ->
    eval ctx e;
    emit ctx (Mov (a0, t0));
    emit ctx (Syscall Sys_sbrk);
    emit ctx (Mov (t0, a0));
    false
  | "sqrtf", [ e ] ->
    eval ctx e;
    emit ctx (Fsqrt (t0, t0));
    false
  | "fabsf", [ e ] ->
    let skip = new_label ctx "fabs" in
    eval ctx e;
    emit ctx (Falu (Fslt, t4, t0, zero));
    emit ctx (Branch (Eq, t4, zero, skip));
    emit ctx (Fneg (t0, t0));
    emit ctx (Label skip);
    false
  | ("__mark_alloc" | "__mark_free"), [ p; n ] ->
    eval ctx p;
    push ctx ~ptr:false;
    eval ctx n;
    emit ctx (Mov (a1, t0));
    emit ctx (Load { dst = a0; base = sp; off = 0; width = W4; signed = true });
    emit ctx (Alu (Add, sp, sp, Imm 4));
    emit ctx
      (Syscall
         (if name = "__mark_alloc" then Sys_mark_alloc else Sys_mark_free));
    false
  | "__register_object", [ p; n ] ->
    if ctx.mode = Objtable then ignore (gen_call ctx "__ot_insert" [ p; n ] false)
    else begin
      (* evaluate for side effects only *)
      eval ctx p;
      eval ctx n
    end;
    false
  | "__unregister_object", [ p; n ] ->
    if ctx.mode = Objtable then ignore (gen_call ctx "__ot_remove" [ p; n ] false)
    else begin
      eval ctx p;
      eval ctx n
    end;
    false
  | _ -> err "%s: unknown builtin %s/%d" ctx.fname name (List.length args)

and gen_incr ctx kind lv step =
  let ty = lval_ty lv in
  let width = width_of ctx ty in
  let ptr = is_ptr ty in
  let delta =
    match kind with
    | Ast.Pre_inc | Ast.Post_inc -> step
    | Ast.Pre_dec | Ast.Post_dec -> -step
  in
  let is_post =
    match kind with Ast.Post_inc | Ast.Post_dec -> true | _ -> false
  in
  (* Under Objtable, p++ is pointer arithmetic: consult the object table.
     The call clobbers scratch registers; old value and (for Lmem) the slot
     address are saved on the stack around it. *)
  let check_arith ~addr_in_t2 =
    if ctx.mode = Objtable && ptr && not ctx.trusted then begin
      emit ctx (Alu (Sub, sp, sp, Imm 16));
      emit ctx (Store { src = t0; base = sp; off = 0; width = W4 });
      emit ctx (Store { src = t1; base = sp; off = 4; width = W4 });
      emit ctx (Store { src = t0; base = sp; off = 8; width = W4 });
      if addr_in_t2 then
        emit ctx (Store { src = t2; base = sp; off = 12; width = W4 });
      emit ctx (Call "__ot_check_arith");
      emit ctx (Load { dst = t0; base = sp; off = 8; width = W4; signed = true });
      if addr_in_t2 then
        emit ctx
          (Load { dst = t2; base = sp; off = 12; width = W4; signed = true });
      emit ctx (Alu (Add, sp, sp, Imm 16));
      emit ctx (Mov (t1, a0))
    end
  in
  match lv with
  | Lframe (name, extra, _) | Lglob (name, extra, _) ->
    let basereg, off =
      match lv with
      | Lframe _ ->
        let o, _ = slot_offset ctx name in
        (fp, o + extra)
      | _ ->
        let o, _ = global_offset ctx name in
        (gp, o + extra)
    in
    let meta_ok = gen_direct_load ctx basereg off width ty in
    emit ctx (Alu (Add, t1, t0, Imm delta));
    check_arith ~addr_in_t2:false;
    emit ctx (Store { src = t1; base = basereg; off; width });
    (* softfat: metadata in the slot's shadow is unchanged by the
       increment, and sb0/sb1 already hold it after the load *)
    if not is_post then emit ctx (Mov (t0, t1));
    meta_ok
  | Lmem (addr, _) ->
    eval ctx addr;
    emit ctx (Mov (t2, t0));
    (if sf_on ctx then begin
       emit ctx (Mov (sb2, sb0));
       emit ctx (Mov (sb3, sb1));
       sf_check ctx ~value_reg:t2 ~base_reg:sb2 ~bound_reg:sb3
         ~width:(bytes_of_width width)
     end);
    emit ctx (Load { dst = t0; base = t2; off = 0; width; signed = false });
    (if sf_on ctx && ptr then begin
       sf_shadow ctx t2;
       emit ctx (Load { dst = sb0; base = t3; off = 0; width = W4; signed = true });
       emit ctx (Load { dst = sb1; base = t3; off = 4; width = W4; signed = true })
     end);
    emit ctx (Alu (Add, t1, t0, Imm delta));
    check_arith ~addr_in_t2:true;
    emit ctx (Store { src = t1; base = t2; off = 0; width });
    if not is_post then emit ctx (Mov (t0, t1));
    sf_on ctx && ptr

(* ---- statements -------------------------------------------------------- *)

let rec gen_stmt ctx (s : tstmt) =
  match s with
  | Texpr e -> eval ctx e
  | Tdecl (name, ty, init) -> (
    match init with
    | None -> ()
    | Some e ->
      let off, _ = slot_offset ctx name in
      eval ctx e;
      ignore (gen_direct_store ctx fp off (width_of ctx ty) ty))
  | Tif (c, a, b) ->
    let lbl_else = new_label ctx "else" in
    let lbl_end = new_label ctx "endif" in
    eval ctx c;
    emit ctx (Branch (Eq, t0, zero, lbl_else));
    List.iter (gen_stmt ctx) a;
    emit ctx (Jmp lbl_end);
    emit ctx (Label lbl_else);
    List.iter (gen_stmt ctx) b;
    emit ctx (Label lbl_end)
  | Twhile (c, body) ->
    let lbl_cond = new_label ctx "while_cond" in
    let lbl_end = new_label ctx "while_end" in
    emit ctx (Label lbl_cond);
    eval ctx c;
    emit ctx (Branch (Eq, t0, zero, lbl_end));
    ctx.break_lbl <- lbl_end :: ctx.break_lbl;
    ctx.cont_lbl <- lbl_cond :: ctx.cont_lbl;
    List.iter (gen_stmt ctx) body;
    ctx.break_lbl <- List.tl ctx.break_lbl;
    ctx.cont_lbl <- List.tl ctx.cont_lbl;
    emit ctx (Jmp lbl_cond);
    emit ctx (Label lbl_end)
  | Tdo (body, c) ->
    let lbl_body = new_label ctx "do_body" in
    let lbl_cond = new_label ctx "do_cond" in
    let lbl_end = new_label ctx "do_end" in
    emit ctx (Label lbl_body);
    ctx.break_lbl <- lbl_end :: ctx.break_lbl;
    ctx.cont_lbl <- lbl_cond :: ctx.cont_lbl;
    List.iter (gen_stmt ctx) body;
    ctx.break_lbl <- List.tl ctx.break_lbl;
    ctx.cont_lbl <- List.tl ctx.cont_lbl;
    emit ctx (Label lbl_cond);
    eval ctx c;
    emit ctx (Branch (Ne, t0, zero, lbl_body));
    emit ctx (Label lbl_end)
  | Tfor (init, cond, post, body) ->
    let lbl_cond = new_label ctx "for_cond" in
    let lbl_cont = new_label ctx "for_cont" in
    let lbl_end = new_label ctx "for_end" in
    (match init with Some s -> gen_stmt ctx s | None -> ());
    emit ctx (Label lbl_cond);
    (match cond with
     | Some c ->
       eval ctx c;
       emit ctx (Branch (Eq, t0, zero, lbl_end))
     | None -> ());
    ctx.break_lbl <- lbl_end :: ctx.break_lbl;
    ctx.cont_lbl <- lbl_cont :: ctx.cont_lbl;
    List.iter (gen_stmt ctx) body;
    ctx.break_lbl <- List.tl ctx.break_lbl;
    ctx.cont_lbl <- List.tl ctx.cont_lbl;
    emit ctx (Label lbl_cont);
    (match post with Some p -> eval ctx p | None -> ());
    emit ctx (Jmp lbl_cond);
    emit ctx (Label lbl_end)
  | Treturn e ->
    (match e with
     | Some e ->
       eval ctx e;
       emit ctx (Mov (a0, t0))
       (* softfat pointer-return metadata stays in sb0/sb1 by convention *)
     | None -> ());
    emit ctx (Jmp ("__ret_" ^ ctx.fname))
  | Tbreak -> (
    match ctx.break_lbl with
    | l :: _ -> emit ctx (Jmp l)
    | [] -> err "%s: break outside loop" ctx.fname)
  | Tcontinue -> (
    match ctx.cont_lbl with
    | l :: _ -> emit ctx (Jmp l)
    | [] -> err "%s: continue outside loop" ctx.fname)
  | Tblock b -> List.iter (gen_stmt ctx) b
  | Tline n -> emit ctx (Line n)

(* ---- functions --------------------------------------------------------- *)

(* Runtime internals that must not be instrumented by the object-table
   scheme (they implement it, or are the trusted allocator). *)
let trusted_for_objtable name =
  let prefix p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  prefix "__ot_" || name = "malloc" || name = "free"

(* Collect every local declaration in a body (names are unique). *)
let rec collect_decls acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Tdecl (name, ty, _) -> (name, ty) :: acc
      | Tif (_, a, b) -> collect_decls (collect_decls acc a) b
      | Twhile (_, b) | Tdo (b, _) -> collect_decls acc b
      | Tfor (i, _, _, b) ->
        let acc = match i with Some s -> collect_decls acc [ s ] | None -> acc in
        collect_decls acc b
      | Tblock b -> collect_decls acc b
      | Texpr _ | Treturn _ | Tbreak | Tcontinue | Tline _ -> acc)
    acc stmts

let gen_fun ~mode ~globals ~strings ~sizeof (f : tfun) : func =
  let slots = Hashtbl.create 16 in
  List.iteri
    (fun i (name, ty) -> Hashtbl.replace slots name (Param i, ty))
    f.tf_params;
  let frame = ref 0 in
  List.iter
    (fun (name, ty) ->
      let size = (sizeof ty + 3) land lnot 3 in
      Hashtbl.replace slots name (Local !frame, ty);
      frame := !frame + size)
    (List.rev (collect_decls [] f.tf_body));
  let frame_size = !frame in
  let ctx =
    {
      mode;
      code = [];
      label_id = 0;
      slots;
      frame_size;
      globals;
      strings;
      sizeof;
      break_lbl = [];
      cont_lbl = [];
      fname = f.tf_name;
      sf_abort_used = false;
      trusted = trusted_for_objtable f.tf_name;
    }
  in
  (* prologue *)
  emit ctx (Alu (Sub, sp, sp, Imm (frame_size + 8)));
  emit ctx (Store { src = ra; base = sp; off = frame_size + 4; width = W4 });
  emit ctx (Store { src = fp; base = sp; off = frame_size; width = W4 });
  emit ctx (Mov (fp, sp));
  (* object-table registration of addressable locals *)
  (if mode = Objtable && not ctx.trusted then
     List.iter
       (fun (name, size) ->
         let off, _ = slot_offset ctx name in
         emit ctx (Alu (Sub, sp, sp, Imm 8));
         emit ctx (Alu (Add, t0, fp, Imm off));
         emit ctx (Store { src = t0; base = sp; off = 0; width = W4 });
         emit ctx (Li (t0, size));
         emit ctx (Store { src = t0; base = sp; off = 4; width = W4 });
         emit ctx (Call "__ot_insert");
         emit ctx (Alu (Add, sp, sp, Imm 8)))
       f.tf_addressable_arrays);
  List.iter (gen_stmt ctx) f.tf_body;
  (* epilogue *)
  emit ctx (Label ("__ret_" ^ ctx.fname));
  (if mode = Objtable && not ctx.trusted && f.tf_addressable_arrays <> [] then begin
     (* unregistration must preserve the return value *)
     emit ctx (Alu (Sub, sp, sp, Imm 4));
     emit ctx (Store { src = a0; base = sp; off = 0; width = W4 });
     List.iter
       (fun (name, size) ->
         let off, _ = slot_offset ctx name in
         emit ctx (Alu (Sub, sp, sp, Imm 8));
         emit ctx (Alu (Add, t0, fp, Imm off));
         emit ctx (Store { src = t0; base = sp; off = 0; width = W4 });
         emit ctx (Li (t0, size));
         emit ctx (Store { src = t0; base = sp; off = 4; width = W4 });
         emit ctx (Call "__ot_remove");
         emit ctx (Alu (Add, sp, sp, Imm 8)))
       f.tf_addressable_arrays;
     emit ctx (Load { dst = a0; base = sp; off = 0; width = W4; signed = true });
     emit ctx (Alu (Add, sp, sp, Imm 4))
   end);
  emit ctx (Mov (sp, fp));
  emit ctx (Load { dst = ra; base = sp; off = frame_size + 4; width = W4;
                   signed = true });
  emit ctx (Load { dst = fp; base = sp; off = frame_size; width = W4;
                   signed = true });
  emit ctx (Alu (Add, sp, sp, Imm (frame_size + 8)));
  emit ctx Ret;
  (* softfat abort trampoline *)
  if ctx.sf_abort_used then begin
    emit ctx (Label (sf_abort_label ctx));
    emit ctx (Li (a0, 1));
    emit ctx (Syscall Sys_abort)
  end;
  { name = f.tf_name; body = List.rev ctx.code }

(* ---- whole program ------------------------------------------------------ *)

(* Walk the typed program collecting string literals. *)
let collect_strings (p : tprogram) =
  let acc = ref [] in
  let add s = if not (List.mem s !acc) then acc := s :: !acc in
  let rec in_expr (te : texpr) =
    match te.desc with
    | Cstr s -> add s
    | Cint _ | Cfloat _ -> ()
    | Load lv | AddrOf lv -> in_lval lv
    | Bound (e, _) | Bound_unsafe e | Unop (_, e) | Int_of_float e
    | Float_of_int e ->
      in_expr e
    | Bound_dyn (a, b)
    | Binop (_, a, b)
    | Fbinop (_, a, b)
    | Ptr_add (a, b, _)
    | Ptr_diff (a, b, _)
    | And_or (_, a, b)
    | Seq (a, b) ->
      in_expr a;
      in_expr b
    | Assign (lv, e) ->
      in_lval lv;
      in_expr e
    | Call (_, args) | Builtin (_, args) -> List.iter in_expr args
    | Cond (a, b, c) ->
      in_expr a;
      in_expr b;
      in_expr c
    | Incr (_, lv, _) -> in_lval lv
  and in_lval = function
    | Lframe _ | Lglob _ -> ()
    | Lmem (e, _) -> in_expr e
  in
  let rec in_stmt = function
    | Texpr e -> in_expr e
    | Tdecl (_, _, Some e) -> in_expr e
    | Tdecl (_, _, None) | Tbreak | Tcontinue | Treturn None | Tline _ -> ()
    | Treturn (Some e) -> in_expr e
    | Tif (c, a, b) ->
      in_expr c;
      List.iter in_stmt a;
      List.iter in_stmt b
    | Twhile (c, b) | Tdo (b, c) ->
      in_expr c;
      List.iter in_stmt b
    | Tfor (i, c, po, b) ->
      Option.iter in_stmt i;
      Option.iter in_expr c;
      Option.iter in_expr po;
      List.iter in_stmt b
    | Tblock b -> List.iter in_stmt b
  in
  List.iter (fun f -> List.iter in_stmt f.tf_body) p.tp_funcs;
  List.iter
    (fun g -> match g.tg_startup with Some e -> in_expr e | None -> ())
    p.tp_globals;
  List.rev !acc

type compiled = {
  program : Hb_isa.Types.program;
  globals_image : string;
}

let compile ~(mode : mode) (p : tprogram) : compiled =
  let sizeof =
    let rec go = function
      | Ast.Tint | Ast.Tfloat | Ast.Tptr _ -> 4
      | Ast.Tchar -> 1
      | Ast.Tarray (t, n) -> n * go t
      | Ast.Tstruct s -> (
        match List.assoc_opt s p.tp_structs with
        | Some n -> n
        | None -> err "unknown struct %s" s)
      | Ast.Tvoid -> err "sizeof(void)"
    in
    go
  in
  (* lay out globals, then string literals *)
  let globals = Hashtbl.create 64 in
  let offset = ref 0 in
  List.iter
    (fun g ->
      let size = (g.tg_size + 3) land lnot 3 in
      Hashtbl.replace globals g.tg_name (!offset, g.tg_ty);
      offset := !offset + size)
    p.tp_globals;
  let strings = Hashtbl.create 32 in
  List.iter
    (fun s ->
      Hashtbl.replace strings s !offset;
      offset := !offset + ((String.length s + 1 + 3) land lnot 3))
    (collect_strings p);
  let image_size = max !offset 4 in
  if Layout.globals_base + image_size > Layout.globals_limit then
    err "globals do not fit (%d bytes)" image_size;
  let image = Bytes.make image_size '\000' in
  List.iter
    (fun g ->
      match g.tg_bytes with
      | Some b ->
        let off, _ = Hashtbl.find globals g.tg_name in
        Bytes.blit_string b 0 image off (String.length b)
      | None -> ())
    p.tp_globals;
  Hashtbl.iter
    (fun s off -> Bytes.blit_string s 0 image off (String.length s))
    strings;
  (* synthesize _start: startup initializers, object-table global
     registration, call main, exit *)
  let start_ctx =
    {
      mode;
      code = [];
      label_id = 0;
      slots = Hashtbl.create 1;
      frame_size = 0;
      globals;
      strings;
      sizeof;
      break_lbl = [];
      cont_lbl = [];
      fname = "_start";
      sf_abort_used = false;
      trusted = false;
    }
  in
  let sc = start_ctx in
  emit sc (Alu (Sub, sp, sp, Imm 8));
  emit sc (Store { src = ra; base = sp; off = 4; width = W4 });
  emit sc (Store { src = fp; base = sp; off = 0; width = W4 });
  emit sc (Mov (fp, sp));
  (if mode = Objtable then
     List.iter
       (fun g ->
         match g.tg_ty with
         | Ast.Tarray _ | Ast.Tstruct _ ->
           let off, _ = Hashtbl.find globals g.tg_name in
           emit sc (Alu (Sub, sp, sp, Imm 8));
           emit sc (Alu (Add, t0, gp, Imm off));
           emit sc (Store { src = t0; base = sp; off = 0; width = W4 });
           emit sc (Li (t0, g.tg_size));
           emit sc (Store { src = t0; base = sp; off = 4; width = W4 });
           emit sc (Call "__ot_insert");
           emit sc (Alu (Add, sp, sp, Imm 8))
         | _ -> ())
       p.tp_globals);
  List.iter
    (fun g -> match g.tg_startup with Some e -> eval sc e | None -> ())
    p.tp_globals;
  emit sc (Call "main");
  emit sc (Syscall Sys_exit);
  (if sc.sf_abort_used then begin
     emit sc (Label (sf_abort_label sc));
     emit sc (Li (a0, 1));
     emit sc (Syscall Sys_abort)
   end);
  let start_fn = { name = "_start"; body = List.rev sc.code } in
  let funcs =
    start_fn :: List.map (gen_fun ~mode ~globals ~strings ~sizeof) p.tp_funcs
  in
  {
    program = { funcs; entry = "_start" };
    globals_image = Bytes.to_string image;
  }
