(** Typed abstract syntax produced by {!Typecheck} and consumed by
    {!Codegen}.

    The typechecker makes all pointer-creation points explicit as [Bound]
    nodes — exactly the places where the paper's compiler inserts
    [setbound] (Section 3.2): array decay, address-taken locals/globals,
    sub-object (struct-field) narrowing, string literals.  Each
    instrumentation mode then interprets [Bound] its own way (hardware
    setbound, software fat-pointer triple, or nothing). *)

open Ast

type texpr = { desc : tdesc; ty : ty }

and tdesc =
  | Cint of int
  | Cfloat of float
  | Cstr of string           (* address of interned literal, ty char* *)
  | Load of tlval            (* scalar rvalue read *)
  | AddrOf of tlval          (* address, bounds inherited (no narrowing) *)
  | Bound of texpr * int     (* pointer creation: narrow to [e, e+size) *)
  | Bound_dyn of texpr * texpr   (* __setbound(p, n) with runtime size *)
  | Bound_unsafe of texpr        (* __setbound_unsafe: the escape hatch *)
  | Unop of unop * texpr
  | Binop of binop * texpr * texpr    (* integer/pointer-compare ops *)
  | Fbinop of binop * texpr * texpr   (* float arithmetic/comparison *)
  | Ptr_add of texpr * texpr * int    (* ptr + idx * scale *)
  | Ptr_diff of texpr * texpr * int   (* (p - q) / scale *)
  | Assign of tlval * texpr
  | Call of string * texpr list
  | Builtin of string * texpr list
  | Cond of texpr * texpr * texpr
  | And_or of bool * texpr * texpr    (* true = && *)
  | Int_of_float of texpr
  | Float_of_int of texpr
  | Incr of incr_kind * tlval * int   (* step in units (elem size for ptrs) *)
  | Seq of texpr * texpr              (* evaluate both, keep second *)

(** Lvalues.  Frame and global lvalues are accessed directly relative to
    the (whole-region-bounded) stack/global pointers — the paper's model
    where plain accesses to stack objects need no bounded pointer.  [Lmem]
    is an access through a computed (bounded) pointer. *)
and tlval =
  | Lframe of string * int * ty  (* local name, constant byte offset, elem *)
  | Lglob of string * int * ty
  | Lmem of texpr * ty

type tfun = {
  tf_name : string;
  tf_ret : ty;
  tf_params : (string * ty) list;
  tf_body : tstmt list;
  tf_addressable_arrays : (string * int) list;
      (* locals needing object-table registration: (name, size) *)
}

and tstmt =
  | Texpr of texpr
  | Tdecl of string * ty * texpr option
  | Tif of texpr * tstmt list * tstmt list
  | Twhile of texpr * tstmt list
  | Tdo of tstmt list * texpr
  | Tfor of tstmt option * texpr option * texpr option * tstmt list
  | Treturn of texpr option
  | Tbreak
  | Tcontinue
  | Tblock of tstmt list
  | Tline of int  (* source-line marker, becomes the ISA [Line] directive *)

type tglobal = {
  tg_name : string;
  tg_ty : ty;
  tg_size : int;
  tg_bytes : string option;       (* static data image, zero if None *)
  tg_startup : texpr option;      (* pointer initializers run in _start *)
}

type tprogram = {
  tp_globals : tglobal list;
  tp_funcs : tfun list;
  tp_structs : (string * int) list;  (* name, size: for diagnostics *)
}

let ty_of t = t.ty

let lval_ty = function
  | Lframe (_, _, t) | Lglob (_, _, t) | Lmem (_, t) -> t
