(** Sparse paged physical memory.

    Pages are allocated (zero-filled) on first touch; the set of touched
    pages per {!Layout.region} is the raw material for the paper's Figure 6
    (memory overhead measured in distinct 4KB pages). *)

type t = {
  pages : (int, Bytes.t) Hashtbl.t; (* page index -> page bytes *)
  mutable touched_by_region : (Layout.region * int ref) list;
}

let create () =
  {
    pages = Hashtbl.create 1024;
    touched_by_region =
      List.map
        (fun r -> (r, ref 0))
        Layout.[ Code; Globals; Heap; Stack; Tag_space; Shadow_space; Other ];
  }

let page_of t addr =
  let idx = addr / Layout.page_size in
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
    let p = Bytes.make Layout.page_size '\000' in
    Hashtbl.replace t.pages idx p;
    let region = Layout.region_of (idx * Layout.page_size) in
    incr (List.assq region t.touched_by_region);
    p

let check_addr addr =
  if addr < Layout.null_guard_limit || addr > 0xFFFFFFFF then
    Hb_error.fail ~component:"physmem" ~addr "invalid physical address"

let read_u8 t addr =
  check_addr addr;
  let p = page_of t addr in
  Char.code (Bytes.unsafe_get p (addr land (Layout.page_size - 1)))

let write_u8 t addr v =
  check_addr addr;
  let p = page_of t addr in
  Bytes.unsafe_set p (addr land (Layout.page_size - 1)) (Char.chr (v land 0xFF))

let read_u16 t addr = read_u8 t addr lor (read_u8 t (addr + 1) lsl 8)

let write_u16 t addr v =
  write_u8 t addr v;
  write_u8 t (addr + 1) (v lsr 8)

let read_u32 t addr =
  check_addr addr;
  let off = addr land (Layout.page_size - 1) in
  if off <= Layout.page_size - 4 then begin
    let p = page_of t addr in
    Char.code (Bytes.unsafe_get p off)
    lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get p (off + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get p (off + 3)) lsl 24)
  end
  else read_u16 t addr lor (read_u16 t (addr + 2) lsl 16)

let write_u32 t addr v =
  check_addr addr;
  let off = addr land (Layout.page_size - 1) in
  if off <= Layout.page_size - 4 then begin
    let p = page_of t addr in
    Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xFF));
    Bytes.unsafe_set p (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set p (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set p (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))
  end
  else begin
    write_u16 t addr v;
    write_u16 t (addr + 2) (v lsr 16)
  end

(** Read/modify a bit field inside a tag-space byte. *)
let read_bits t addr shift mask = (read_u8 t addr lsr shift) land mask

let write_bits t addr shift mask v =
  let old = read_u8 t addr in
  write_u8 t addr (old land lnot (mask lsl shift) lor ((v land mask) lsl shift))

(* Non-materializing reads: absent pages read as zero and are NOT
   allocated, so observers (the timeline's shadow-space census) never
   inflate the per-region touched-page counts that drive Figure 6. *)
let peek_u8 t addr =
  match Hashtbl.find_opt t.pages (addr / Layout.page_size) with
  | None -> 0
  | Some p -> Char.code (Bytes.unsafe_get p (addr land (Layout.page_size - 1)))

let peek_u32 t addr =
  peek_u8 t addr
  lor (peek_u8 t (addr + 1) lsl 8)
  lor (peek_u8 t (addr + 2) lsl 16)
  lor (peek_u8 t (addr + 3) lsl 24)

let pages_touched t = Hashtbl.length t.pages

let pages_touched_in t region = !(List.assq region t.touched_by_region)

(* ---- Whole-memory access (snapshots, fault injection) ---------------- *)

let sorted_page_indices t =
  Hashtbl.fold (fun idx _ acc -> idx :: acc) t.pages []
  |> List.sort compare

(** Iterate live pages in increasing page-index order (deterministic). *)
let fold_pages t ~init ~f =
  List.fold_left
    (fun acc idx -> f acc idx (Hashtbl.find t.pages idx))
    init (sorted_page_indices t)

let export_pages t =
  Array.of_list
    (List.map (fun idx -> (idx, Bytes.copy (Hashtbl.find t.pages idx)))
       (sorted_page_indices t))

(** Replace the entire memory contents with a previously exported page
    set.  The per-region touched-page counters are recomputed from the
    imported set, so pages that were materialized after the export (e.g.
    zero pages touched by later probing) stop being counted. *)
let import_pages t pages =
  Hashtbl.reset t.pages;
  List.iter (fun (_, r) -> r := 0) t.touched_by_region;
  Array.iter
    (fun (idx, bytes) ->
      Hashtbl.replace t.pages idx (Bytes.copy bytes);
      incr (List.assq (Layout.region_of (idx * Layout.page_size)) t.touched_by_region))
    pages

(** Bulk helpers used by the program loader. *)
let write_bytes t addr (s : string) =
  String.iteri (fun i c -> write_u8 t (addr + i) (Char.code c)) s

let read_string t addr len =
  String.init len (fun i -> Char.chr (read_u8 t (addr + i)))
