(** Sparse paged physical memory.  Pages are allocated (zero-filled) on
    first touch; the per-region touched-page counts drive the paper's
    Figure 6 (memory overhead in distinct 4KB pages). *)

type t

val create : unit -> t

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit

val read_bits : t -> int -> int -> int -> int
(** [read_bits t addr shift mask]: extract a bit field from a byte — used
    for the tag metadata space. *)

val write_bits : t -> int -> int -> int -> int -> unit
(** [write_bits t addr shift mask v]: read-modify-write a bit field. *)

val peek_u8 : t -> int -> int
(** Non-materializing read: an absent page reads as zero and is not
    allocated, so observers (e.g. the shadow-metadata census) never
    perturb the touched-page counts. *)

val peek_u32 : t -> int -> int

val pages_touched : t -> int
(** Distinct pages materialized so far. *)

val pages_touched_in : t -> Layout.region -> int

val fold_pages : t -> init:'a -> f:('a -> int -> Bytes.t -> 'a) -> 'a
(** Iterate live pages as [(page_index, bytes)] in increasing page-index
    order (deterministic).  The callback must not mutate the pages. *)

val export_pages : t -> (int * Bytes.t) array
(** Deep-copied live pages, sorted by page index — the raw material of a
    machine snapshot. *)

val import_pages : t -> (int * Bytes.t) array -> unit
(** Replace the entire memory contents with a previously exported set;
    recomputes the per-region touched-page counters from the imported
    pages. *)

val write_bytes : t -> int -> string -> unit
(** Bulk store (program loader). *)

val read_string : t -> int -> int -> string
