(** Linker: flattens a {!Types.program} into a contiguous code image with
    resolved control-flow targets, suitable for direct interpretation. *)

val code_base : int
(** Base of the code-address region.  Code addresses
    ([code_base + 4*index]) are disjoint from all data regions, so code
    pointers can never pass a data bounds check (Section 6.1). *)

type image = {
  code : Types.instr array;          (** label/line pseudo-instructions
                                         removed *)
  target : int array;                (** resolved branch/jmp/call/licode
                                         target index, or -1 *)
  fn_of_index : string array;        (** enclosing function, diagnostics *)
  line_of_index : int array;         (** source line of the translation
                                         unit ([Types.Line] markers carried
                                         forward), 0 when unknown *)
  entry : int;                       (** first instruction of the entry *)
  fn_entry : (string, int) Hashtbl.t;
}

val addr_of_index : int -> int
val index_of_addr : int -> int option

val link : Types.program -> image
(** Raises {!Types.Invalid_program} on undefined/duplicate labels,
    functions, or entry points. *)

val validate : Types.program -> (unit, string) result
(** Static sanity checks (register ranges, no writes to r0). *)
