(** Binary instruction encoding: 32-bit little-endian words (two words for
    instructions carrying a 32-bit immediate or a code-relative target).

    HardBound's selling point is *binary compatibility*: setbound occupies
    an encoding slot that is a no-op on older processors (Section 4.5,
    "forward compatibility"), so annotated binaries run unmodified — and
    unprotected — on hardware without the extension.  This module makes
    that concrete: {!encode_program}/{!decode_program} give the ISA a real
    binary format, and tests check the setbound-as-nop property.

    Word layout (primary word):
    {v
      bits 31..26  opcode
      bits 25..21  rd / src
      bits 20..16  rs1 / base
      bits 15..11  rs2
      bit  10      has-second-word (immediate / target follows)
      bits  9..4   sub-opcode (ALU op, condition, width, syscall, ...)
      bits  3..0   flags
    v} *)

open Types

exception Encode_error of string
exception Decode_error of int * string

(* opcodes *)
let op_alu = 1       (* sub = alu_op index; flag bit0 = has reg operand *)
let op_falu = 2
let op_li = 3
let op_mov = 4
let op_load = 5      (* sub = width index; flag bit0 = signed *)
let op_store = 6
let op_setbound = 7  (* flag bit0 = reg size operand; flag bit1 = unsafe *)
let op_readbase = 8
let op_readbound = 9
let op_licode = 10
let op_branch = 11   (* sub = condition *)
let op_jmp = 12
let op_call = 13
let op_callr = 14
let op_ret = 15
let op_syscall = 16  (* sub = syscall index *)
let op_nop = 0
let op_fneg = 17
let op_fsqrt = 18
let op_cvt_f_i = 19
let op_cvt_i_f = 20

let alu_ops =
  [| Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sar; Slt; Sle; Seq;
     Sne; Sgt; Sge; Sltu |]

let falu_ops = [| Fadd; Fsub; Fmul; Fdiv; Fslt; Fsle; Feq |]

let conds = [| Eq; Ne; Lt; Ge; Le; Gt |]

let widths = [| W1; W2; W4 |]

let syscalls =
  [| Sys_exit; Sys_print_int; Sys_print_char; Sys_print_float; Sys_sbrk;
     Sys_abort; Sys_mark_alloc; Sys_mark_free |]

let index_of arr x =
  let rec go i =
    if i >= Array.length arr then raise (Encode_error "unknown sub-op")
    else if arr.(i) = x then i
    else go (i + 1)
  in
  go 0

let word ~op ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm = false) ?(sub = 0)
    ?(flags = 0) () =
  (op lsl 26) lor (rd lsl 21) lor (rs1 lsl 16) lor (rs2 lsl 11)
  lor ((if imm then 1 else 0) lsl 10)
  lor (sub lsl 4) lor flags

(** Encode one instruction (with targets already resolved to code indices,
    as in a linked {!Program.image}); [target] supplies the resolved index
    for control transfers.  Returns one or two 32-bit words. *)
let encode_instr ?(target = -1) (i : instr) : int list =
  let imm32 v = mask32 v in
  match i with
  | Nop -> [ word ~op:op_nop () ]
  | Alu (op, rd, rs, Reg rs2) ->
    [ word ~op:op_alu ~rd ~rs1:rs ~rs2 ~sub:(index_of alu_ops op) ~flags:1 () ]
  | Alu (op, rd, rs, Imm v) ->
    [ word ~op:op_alu ~rd ~rs1:rs ~imm:true ~sub:(index_of alu_ops op) ();
      imm32 v ]
  | Falu (op, rd, r1, r2) ->
    [ word ~op:op_falu ~rd ~rs1:r1 ~rs2:r2 ~sub:(index_of falu_ops op) () ]
  | Fneg (rd, rs) -> [ word ~op:op_fneg ~rd ~rs1:rs () ]
  | Fsqrt (rd, rs) -> [ word ~op:op_fsqrt ~rd ~rs1:rs () ]
  | Cvt_f_of_i (rd, rs) -> [ word ~op:op_cvt_f_i ~rd ~rs1:rs () ]
  | Cvt_i_of_f (rd, rs) -> [ word ~op:op_cvt_i_f ~rd ~rs1:rs () ]
  | Li (rd, v) -> [ word ~op:op_li ~rd ~imm:true (); imm32 v ]
  | Mov (rd, rs) -> [ word ~op:op_mov ~rd ~rs1:rs () ]
  | Load { dst; base; off; width; signed } ->
    [ word ~op:op_load ~rd:dst ~rs1:base ~imm:true
        ~sub:(index_of widths width)
        ~flags:(if signed then 1 else 0) ();
      imm32 off ]
  | Store { src; base; off; width } ->
    [ word ~op:op_store ~rd:src ~rs1:base ~imm:true
        ~sub:(index_of widths width) ();
      imm32 off ]
  | Setbound { dst; src; size = Reg r } ->
    [ word ~op:op_setbound ~rd:dst ~rs1:src ~rs2:r ~flags:1 () ]
  | Setbound { dst; src; size = Imm v } ->
    [ word ~op:op_setbound ~rd:dst ~rs1:src ~imm:true (); imm32 v ]
  | Setbound_narrow { dst; src; size = Reg r } ->
    [ word ~op:op_setbound ~rd:dst ~rs1:src ~rs2:r ~flags:5 () ]
  | Setbound_narrow { dst; src; size = Imm v } ->
    [ word ~op:op_setbound ~rd:dst ~rs1:src ~imm:true ~flags:4 (); imm32 v ]
  | Setbound_unsafe (rd, rs) ->
    [ word ~op:op_setbound ~rd ~rs1:rs ~flags:2 () ]
  | Readbase (rd, rs) -> [ word ~op:op_readbase ~rd ~rs1:rs () ]
  | Readbound (rd, rs) -> [ word ~op:op_readbound ~rd ~rs1:rs () ]
  | Licode (rd, _) ->
    if target < 0 then raise (Encode_error "licode needs a resolved target");
    [ word ~op:op_licode ~rd ~imm:true (); imm32 target ]
  | Branch (c, r1, r2, _) ->
    if target < 0 then raise (Encode_error "branch needs a resolved target");
    [ word ~op:op_branch ~rs1:r1 ~rs2:r2 ~imm:true ~sub:(index_of conds c) ();
      imm32 target ]
  | Jmp _ ->
    if target < 0 then raise (Encode_error "jmp needs a resolved target");
    [ word ~op:op_jmp ~imm:true (); imm32 target ]
  | Call _ ->
    if target < 0 then raise (Encode_error "call needs a resolved target");
    [ word ~op:op_call ~imm:true (); imm32 target ]
  | Call_reg r -> [ word ~op:op_callr ~rs1:r () ]
  | Ret -> [ word ~op:op_ret () ]
  | Syscall s -> [ word ~op:op_syscall ~sub:(index_of syscalls s) () ]
  | Label l -> raise (Encode_error ("cannot encode pseudo-label " ^ l))
  | Line n ->
    raise (Encode_error ("cannot encode pseudo-directive .line "
                         ^ string_of_int n))

type decoded = { instr : instr; target : int; words : int }
(** [target] is the resolved code index for control transfers (-1
    otherwise); labels in the decoded instruction are synthesized as
    ["@<index>"]. *)

let field w ~lo ~hi = (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)

let decode_at ~(read : int -> int) (pos : int) : decoded =
  let w = read pos in
  let op = field w ~lo:26 ~hi:31 in
  let rd = field w ~lo:21 ~hi:25 in
  let rs1 = field w ~lo:16 ~hi:20 in
  let rs2 = field w ~lo:11 ~hi:15 in
  let has_imm = field w ~lo:10 ~hi:10 = 1 in
  let sub = field w ~lo:4 ~hi:9 in
  let flags = field w ~lo:0 ~hi:3 in
  let imm = if has_imm then read (pos + 1) else 0 in
  let words = if has_imm then 2 else 1 in
  let simm = to_signed imm in
  let sub_in arr name =
    if sub >= Array.length arr then
      raise (Decode_error (pos, "bad " ^ name ^ " sub-op"))
    else arr.(sub)
  in
  let lbl = "@" ^ string_of_int imm in
  let mk instr = { instr; target = -1; words } in
  let mkt instr = { instr; target = imm; words } in
  match op with
  | o when o = op_nop -> mk Nop
  | o when o = op_alu ->
    if has_imm then mk (Alu (sub_in alu_ops "alu", rd, rs1, Imm simm))
    else mk (Alu (sub_in alu_ops "alu", rd, rs1, Reg rs2))
  | o when o = op_falu -> mk (Falu (sub_in falu_ops "falu", rd, rs1, rs2))
  | o when o = op_fneg -> mk (Fneg (rd, rs1))
  | o when o = op_fsqrt -> mk (Fsqrt (rd, rs1))
  | o when o = op_cvt_f_i -> mk (Cvt_f_of_i (rd, rs1))
  | o when o = op_cvt_i_f -> mk (Cvt_i_of_f (rd, rs1))
  | o when o = op_li -> mk (Li (rd, simm))
  | o when o = op_mov -> mk (Mov (rd, rs1))
  | o when o = op_load ->
    mk
      (Load
         { dst = rd; base = rs1; off = simm; width = sub_in widths "width";
           signed = flags land 1 = 1 })
  | o when o = op_store ->
    mk (Store { src = rd; base = rs1; off = simm;
                width = sub_in widths "width" })
  | o when o = op_setbound ->
    if flags land 2 = 2 then mk (Setbound_unsafe (rd, rs1))
    else if flags land 4 = 4 then
      (if flags land 1 = 1 then
         mk (Setbound_narrow { dst = rd; src = rs1; size = Reg rs2 })
       else mk (Setbound_narrow { dst = rd; src = rs1; size = Imm simm }))
    else if flags land 1 = 1 then
      mk (Setbound { dst = rd; src = rs1; size = Reg rs2 })
    else mk (Setbound { dst = rd; src = rs1; size = Imm simm })
  | o when o = op_readbase -> mk (Readbase (rd, rs1))
  | o when o = op_readbound -> mk (Readbound (rd, rs1))
  | o when o = op_licode -> mkt (Licode (rd, lbl))
  | o when o = op_branch -> mkt (Branch (sub_in conds "cond", rs1, rs2, lbl))
  | o when o = op_jmp -> mkt (Jmp lbl)
  | o when o = op_call -> mkt (Call lbl)
  | o when o = op_callr -> mk (Call_reg rs1)
  | o when o = op_ret -> mk Ret
  | o when o = op_syscall -> mk (Syscall (sub_in syscalls "syscall"))
  | o -> raise (Decode_error (pos, Printf.sprintf "unknown opcode %d" o))

(** Serialize a linked image to a flat byte string (magic, entry, count,
    then a code-index table and instruction words). *)
let magic = 0x48424E44 (* "HBND" *)

let encode_image (img : Program.image) : string =
  let buf = Buffer.create 4096 in
  let w32 v =
    let v = mask32 v in
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))
  in
  w32 magic;
  w32 img.Program.entry;
  w32 (Array.length img.Program.code);
  Array.iteri
    (fun i instr ->
      let ws = encode_instr ~target:img.Program.target.(i) instr in
      w32 (List.length ws);
      List.iter w32 ws)
    img.Program.code;
  Buffer.contents buf

let decode_image (s : string) : Program.image =
  let r32 pos =
    if (pos * 4) + 4 > String.length s then
      raise (Decode_error (pos, "truncated image"));
    let b i = Char.code s.[(pos * 4) + i] in
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  in
  if r32 0 <> magic then raise (Decode_error (0, "bad magic"));
  let entry = r32 1 in
  let count = r32 2 in
  let code = Array.make count Nop in
  let target = Array.make count (-1) in
  let pos = ref 3 in
  for i = 0 to count - 1 do
    let n = r32 !pos in
    incr pos;
    let d = decode_at ~read:r32 !pos in
    if d.words <> n then raise (Decode_error (!pos, "length mismatch"));
    code.(i) <- d.instr;
    target.(i) <- d.target;
    pos := !pos + n
  done;
  let fn_entry = Hashtbl.create 1 in
  Hashtbl.replace fn_entry "binary" entry;
  {
    Program.code;
    target;
    fn_of_index = Array.make count "binary";
    line_of_index = Array.make count 0;
    entry;
    fn_entry;
  }

(** The forward-compatibility story of Section 4.5: reinterpret every
    HardBound-specific instruction as what a legacy core would execute —
    [setbound rd, rs] becomes a plain register move (the pointer keeps
    flowing, unprotected), [readbase]/[readbound] read zeros. *)
let strip_hardbound (img : Program.image) : Program.image =
  let code =
    Array.map
      (fun i ->
        match i with
        | Setbound { dst; src; _ }
        | Setbound_narrow { dst; src; _ }
        | Setbound_unsafe (dst, src) ->
          Mov (dst, src)
        | Readbase (rd, _) | Readbound (rd, _) -> Li (rd, 0)
        | other -> other)
      img.Program.code
  in
  { img with Program.code }
