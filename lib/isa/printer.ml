(** Textual assembly printer for {!Types.instr}.  The format round-trips
    through {!Parser}. *)

open Types

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar"
  | Slt -> "slt" | Sle -> "sle" | Seq -> "seq" | Sne -> "sne"
  | Sgt -> "sgt" | Sge -> "sge" | Sltu -> "sltu"

let falu_name = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fslt -> "fslt" | Fsle -> "fsle" | Feq -> "feq"

let cond_name = function
  | Eq -> "beq" | Ne -> "bne" | Lt -> "blt" | Ge -> "bge"
  | Le -> "ble" | Gt -> "bgt"

let width_suffix = function W1 -> "b" | W2 -> "h" | W4 -> "w"

let syscall_name = function
  | Sys_exit -> "exit"
  | Sys_print_int -> "print_int"
  | Sys_print_char -> "print_char"
  | Sys_print_float -> "print_float"
  | Sys_sbrk -> "sbrk"
  | Sys_abort -> "abort"
  | Sys_mark_alloc -> "mark_alloc"
  | Sys_mark_free -> "mark_free"

let operand_str = function
  | Reg r -> reg_name r
  | Imm i -> string_of_int i

let instr_str = function
  | Alu (op, rd, rs, o) ->
    Printf.sprintf "%s %s, %s, %s" (alu_name op) (reg_name rd) (reg_name rs)
      (operand_str o)
  | Falu (op, rd, rs1, rs2) ->
    Printf.sprintf "%s %s, %s, %s" (falu_name op) (reg_name rd) (reg_name rs1)
      (reg_name rs2)
  | Fneg (rd, rs) -> Printf.sprintf "fneg %s, %s" (reg_name rd) (reg_name rs)
  | Fsqrt (rd, rs) -> Printf.sprintf "fsqrt %s, %s" (reg_name rd) (reg_name rs)
  | Cvt_f_of_i (rd, rs) ->
    Printf.sprintf "cvt.f.i %s, %s" (reg_name rd) (reg_name rs)
  | Cvt_i_of_f (rd, rs) ->
    Printf.sprintf "cvt.i.f %s, %s" (reg_name rd) (reg_name rs)
  | Li (rd, v) -> Printf.sprintf "li %s, %d" (reg_name rd) v
  | Mov (rd, rs) -> Printf.sprintf "mov %s, %s" (reg_name rd) (reg_name rs)
  | Load { dst; base; off; width; signed } ->
    Printf.sprintf "l%s%s %s, %d(%s)" (width_suffix width)
      (if signed && width <> W4 then "s" else "")
      (reg_name dst) off (reg_name base)
  | Store { src; base; off; width } ->
    Printf.sprintf "s%s %s, %d(%s)" (width_suffix width) (reg_name src) off
      (reg_name base)
  | Setbound { dst; src; size } ->
    Printf.sprintf "setbound %s, %s, %s" (reg_name dst) (reg_name src)
      (operand_str size)
  | Setbound_narrow { dst; src; size } ->
    Printf.sprintf "setbound.narrow %s, %s, %s" (reg_name dst) (reg_name src)
      (operand_str size)
  | Setbound_unsafe (rd, rs) ->
    Printf.sprintf "setbound.unsafe %s, %s" (reg_name rd) (reg_name rs)
  | Readbase (rd, rs) ->
    Printf.sprintf "readbase %s, %s" (reg_name rd) (reg_name rs)
  | Readbound (rd, rs) ->
    Printf.sprintf "readbound %s, %s" (reg_name rd) (reg_name rs)
  | Licode (rd, f) -> Printf.sprintf "licode %s, %s" (reg_name rd) f
  | Branch (c, r1, r2, l) ->
    Printf.sprintf "%s %s, %s, %s" (cond_name c) (reg_name r1) (reg_name r2) l
  | Jmp l -> Printf.sprintf "jmp %s" l
  | Call l -> Printf.sprintf "call %s" l
  | Call_reg r -> Printf.sprintf "callr %s" (reg_name r)
  | Ret -> "ret"
  | Syscall s -> Printf.sprintf "syscall %s" (syscall_name s)
  | Label l -> l ^ ":"
  | Line n -> Printf.sprintf ".line %d" n
  | Nop -> "nop"

let func_str (f : func) =
  let b = Buffer.create 256 in
  Buffer.add_string b (".func " ^ f.name ^ "\n");
  List.iter
    (fun i ->
      (match i with Label _ -> () | _ -> Buffer.add_string b "  ");
      Buffer.add_string b (instr_str i);
      Buffer.add_char b '\n')
    f.body;
  Buffer.add_string b ".end\n";
  Buffer.contents b

let program_str (p : program) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (".entry " ^ p.entry ^ "\n");
  List.iter (fun f -> Buffer.add_string b (func_str f)) p.funcs;
  Buffer.contents b

let pp_instr fmt i = Format.pp_print_string fmt (instr_str i)
