(** Linker: flattens a {!Types.program} into a contiguous code image with
    resolved control-flow targets, suitable for direct interpretation.

    Function-local labels are resolved within each function.  Indirect calls
    use "code addresses": [code_base + 4*index], a region disjoint from all
    data regions so that code pointers can never pass a data bounds check
    (the paper gives code pointers base = bound = MAXINT, see Section 6.1). *)

open Types

let code_base = 0x00010000

type image = {
  code : instr array;          (* Label/Line pseudo-instrs removed *)
  target : int array;          (* branch/jmp/call target index, or -1 *)
  fn_of_index : string array;  (* enclosing function name, for diagnostics *)
  line_of_index : int array;   (* source line of the translation unit, 0 if
                                  the compiler emitted no [Line] markers *)
  entry : int;                 (* index of entry function's first instr *)
  fn_entry : (string, int) Hashtbl.t;
}

let addr_of_index i = code_base + (4 * i)

let index_of_addr a =
  if a < code_base || (a - code_base) mod 4 <> 0 then None
  else Some ((a - code_base) / 4)

let link (p : program) : image =
  let fn_entry = Hashtbl.create 64 in
  (* First pass: compute instruction counts (labels/lines are pseudo). *)
  let count f =
    List.fold_left
      (fun n i -> match i with Label _ | Line _ -> n | _ -> n + 1)
      0 f.body
  in
  let total = List.fold_left (fun n f -> n + count f) 0 p.funcs in
  let code = Array.make total Nop in
  let target = Array.make total (-1) in
  let fn_of_index = Array.make total "" in
  let line_of_index = Array.make total 0 in
  (* Second pass: place instructions, record label positions. *)
  let labels = Hashtbl.create 256 in
  let pos = ref 0 in
  List.iter
    (fun f ->
      if Hashtbl.mem fn_entry f.name then
        raise (Invalid_program ("duplicate function: " ^ f.name));
      Hashtbl.replace fn_entry f.name !pos;
      (* the current [Line] marker carries forward within its function *)
      let cur_line = ref 0 in
      List.iter
        (fun i ->
          match i with
          | Label l ->
            let key = f.name ^ "." ^ l in
            if Hashtbl.mem labels key then
              raise (Invalid_program ("duplicate label " ^ l ^ " in " ^ f.name));
            Hashtbl.replace labels key !pos
          | Line n -> cur_line := n
          | _ ->
            code.(!pos) <- i;
            fn_of_index.(!pos) <- f.name;
            line_of_index.(!pos) <- !cur_line;
            incr pos)
        f.body)
    p.funcs;
  (* Third pass: resolve targets. *)
  let local fn l =
    match Hashtbl.find_opt labels (fn ^ "." ^ l) with
    | Some t -> t
    | None ->
      raise (Invalid_program ("undefined label " ^ l ^ " in " ^ fn))
  in
  let global l =
    match Hashtbl.find_opt fn_entry l with
    | Some t -> t
    | None -> raise (Invalid_program ("undefined function: " ^ l))
  in
  Array.iteri
    (fun i instr ->
      match instr with
      | Branch (_, _, _, l) | Jmp l -> target.(i) <- local fn_of_index.(i) l
      | Call l -> target.(i) <- global l
      | Licode (_, l) -> target.(i) <- global l
      | _ -> ())
    code;
  let entry =
    match Hashtbl.find_opt fn_entry p.entry with
    | Some e -> e
    | None -> raise (Invalid_program ("undefined entry: " ^ p.entry))
  in
  { code; target; fn_of_index; line_of_index; entry; fn_entry }

(** Static sanity checks run before linking: register ranges, r0 never
    written, operands in 32-bit range. *)
let validate (p : program) : (unit, string) result =
  let ok = ref (Ok ()) in
  let err m = if !ok = Ok () then ok := Error m in
  let check_reg fn r =
    if r < 0 || r >= num_regs then
      err (Printf.sprintf "%s: register out of range: %d" fn r)
  in
  let check_dst fn r =
    check_reg fn r;
    if r = zero then err (fn ^ ": write to zero register")
  in
  let check_operand fn = function
    | Reg r -> check_reg fn r
    | Imm _ -> ()
  in
  List.iter
    (fun f ->
      List.iter
        (fun i ->
          match i with
          | Alu (_, rd, rs, o) ->
            check_dst f.name rd; check_reg f.name rs; check_operand f.name o
          | Falu (_, rd, r1, r2) ->
            check_dst f.name rd; check_reg f.name r1; check_reg f.name r2
          | Fneg (rd, rs) | Fsqrt (rd, rs)
          | Cvt_f_of_i (rd, rs) | Cvt_i_of_f (rd, rs)
          | Mov (rd, rs) | Readbase (rd, rs) | Readbound (rd, rs)
          | Setbound_unsafe (rd, rs) ->
            check_dst f.name rd; check_reg f.name rs
          | Li (rd, _) | Licode (rd, _) -> check_dst f.name rd
          | Load { dst; base; _ } ->
            check_dst f.name dst; check_reg f.name base
          | Store { src; base; _ } ->
            check_reg f.name src; check_reg f.name base
          | Setbound { dst; src; size }
          | Setbound_narrow { dst; src; size } ->
            check_dst f.name dst; check_reg f.name src;
            check_operand f.name size
          | Branch (_, r1, r2, _) -> check_reg f.name r1; check_reg f.name r2
          | Call_reg r -> check_reg f.name r
          | Line n -> if n < 0 then err (f.name ^ ": negative .line")
          | Jmp _ | Call _ | Ret | Syscall _ | Label _ | Nop -> ())
        f.body)
    p.funcs;
  !ok
