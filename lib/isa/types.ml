(** Instruction-set definition for the HardBound target machine.

    The paper evaluates on a 32-bit x86; per DESIGN.md we substitute a small
    RISC-like ISA with x86-style [reg+imm] addressing.  What matters for the
    reproduction is the set of pointer-manipulating instructions whose
    metadata-propagation semantics Figure 3 of the paper defines ([add],
    [sub], [mov], loads and stores) plus the new HardBound instructions
    ([setbound], [readbase], [readbound]). *)

type reg = int
(** Register number, [0..num_regs-1].  Register 0 is hardwired to zero. *)

let num_regs = 32

(* Conventional register assignments used by the MiniC compiler and the
   runtime.  The hardware itself treats all registers uniformly (except
   [zero]). *)
let zero = 0
let ra = 1 (* return address *)
let sp = 2 (* stack pointer; carries whole-stack bounds in HardBound mode *)
let fp = 3 (* frame pointer *)
let gp = 4 (* global pointer; carries whole-globals bounds *)
let a0 = 5 (* first argument / return value *)
let a1 = 6
let a2 = 7
let a3 = 8
let t0 = 10 (* scratch *)
let t1 = 11
let t2 = 12
let t3 = 13
let t4 = 14
let t5 = 15

let reg_name r =
  match r with
  | 0 -> "zero"
  | 1 -> "ra"
  | 2 -> "sp"
  | 3 -> "fp"
  | 4 -> "gp"
  | 5 -> "a0"
  | 6 -> "a1"
  | 7 -> "a2"
  | 8 -> "a3"
  | 9 -> "a4"
  | n when n >= 10 && n <= 15 -> "t" ^ string_of_int (n - 10)
  | n -> "r" ^ string_of_int n

type operand = Reg of reg | Imm of int

(** Integer ALU operations.  The [S*] family writes 0/1 comparison results.
    Per the paper (Section 3.1), [Add] and [Sub] propagate pointer bounds;
    the multiply/divide/shift/logical family clears them. *)
type alu_op =
  | Add | Sub
  | Mul | Div | Rem
  | And | Or | Xor
  | Shl | Shr | Sar
  | Slt | Sle | Seq | Sne | Sgt | Sge
  | Sltu

(** Float (binary32) operations; registers hold the raw bit pattern. *)
type falu_op = Fadd | Fsub | Fmul | Fdiv | Fslt | Fsle | Feq

type width = W1 | W2 | W4

let bytes_of_width = function W1 -> 1 | W2 -> 2 | W4 -> 4

type cond = Eq | Ne | Lt | Ge | Le | Gt

(** System calls recognized by the simulator.  The paper runs under a full
    OS (Simics); we substitute direct syscalls since HardBound is disabled
    in kernel mode anyway. *)
type syscall =
  | Sys_exit        (* a0 = status *)
  | Sys_print_int   (* a0 = value *)
  | Sys_print_char  (* a0 = byte *)
  | Sys_print_float (* a0 = float bits *)
  | Sys_sbrk        (* a0 = size; returns old break in a0 *)
  | Sys_abort       (* a0 = error code; used by software-check aborts *)
  | Sys_mark_alloc  (* a0 = ptr, a1 = size; temporal-extension tracking *)
  | Sys_mark_free   (* a0 = ptr, a1 = size *)

type label = string

type instr =
  | Alu of alu_op * reg * reg * operand      (* rd <- rs OP operand *)
  | Falu of falu_op * reg * reg * reg        (* rd <- rs1 FOP rs2 *)
  | Fneg of reg * reg
  | Fsqrt of reg * reg
  | Cvt_f_of_i of reg * reg                  (* rd <- float_of_int rs *)
  | Cvt_i_of_f of reg * reg                  (* rd <- int_of_float rs (trunc) *)
  | Li of reg * int                          (* rd <- imm; clears metadata *)
  | Mov of reg * reg                         (* rd <- rs; copies metadata *)
  | Load of { dst : reg; base : reg; off : int; width : width; signed : bool }
  | Store of { src : reg; base : reg; off : int; width : width }
  | Setbound of { dst : reg; src : reg; size : operand }
      (* rd <- {src.value; base=src.value; bound=src.value+size} *)
  | Setbound_narrow of { dst : reg; src : reg; size : operand }
      (* compiler-inserted sub-object narrowing: the new bounds are the
         INTERSECTION of [src.value, src.value+size) with src's existing
         bounds (raw setbound if src is a non-pointer).  Unlike the raw
         setbound -- which the trusted runtime uses and which may widen --
         narrowing can never grant access the source pointer lacked, so a
         struct cast to a larger type cannot manufacture capability. *)
  | Setbound_unsafe of reg * reg
      (* the paper's escape hatch: base=0, bound=MAXINT *)
  | Readbase of reg * reg                    (* rd <- rs.base (non-pointer) *)
  | Readbound of reg * reg                   (* rd <- rs.bound (non-pointer) *)
  | Licode of reg * label
      (* rd <- code address of function; base=bound=MAXINT (code pointer) *)
  | Branch of cond * reg * reg * label
  | Jmp of label
  | Call of label
  | Call_reg of reg                          (* indirect call via code addr *)
  | Ret
  | Syscall of syscall
  | Label of label                           (* pseudo-instruction *)
  | Line of int
      (* pseudo-instruction: subsequent instructions come from this
         1-based source line of the MiniC translation unit.  Stripped by
         the linker into the image's [line_of_index] debug map. *)
  | Nop

(** A function is a named instruction sequence; labels are function-local. *)
type func = { name : string; body : instr list }

type program = { funcs : func list; entry : string }

exception Invalid_program of string

let mask32 v = v land 0xFFFFFFFF

let max_int32u = 0xFFFFFFFF
(** MAXINT of the paper: the all-ones 32-bit value used for code pointers
    (base = bound = MAXINT) and unsafe pointers (base = 0, bound = MAXINT). *)

(* Sign-extend a [w]-byte little-endian value already masked to its width. *)
let sign_extend w v =
  match w with
  | W1 -> if v land 0x80 <> 0 then mask32 (v lor 0xFFFFFF00) else v
  | W2 -> if v land 0x8000 <> 0 then mask32 (v lor 0xFFFF0000) else v
  | W4 -> v

(* Interpret a masked 32-bit value as a signed OCaml int. *)
let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let float_of_bits v = Int32.float_of_bits (Int32.of_int (to_signed v))
let bits_of_float f = mask32 (Int32.to_int (Int32.bits_of_float f))
