(** Assembler: parses the textual format emitted by {!Printer} back into a
    {!Types.program}.  Used by tests (round-trip property) and by the
    [hardbound_run] CLI to execute hand-written assembly files. *)

open Types

exception Parse_error of int * string
(** Line number (1-based) and message. *)

let fail line msg = raise (Parse_error (line, msg))

let reg_of_name line s =
  match s with
  | "zero" -> 0 | "ra" -> 1 | "sp" -> 2 | "fp" -> 3 | "gp" -> 4
  | "a0" -> 5 | "a1" -> 6 | "a2" -> 7 | "a3" -> 8 | "a4" -> 9
  | _ ->
    let num prefix base =
      let n = String.length prefix in
      if String.length s > n && String.sub s 0 n = prefix then
        match int_of_string_opt (String.sub s n (String.length s - n)) with
        | Some v when base + v >= 0 && base + v < num_regs -> Some (base + v)
        | _ -> None
      else None
    in
    (match num "t" 10 with
     | Some r -> r
     | None ->
       (match num "r" 0 with
        | Some r -> r
        | None -> fail line ("unknown register: " ^ s)))

let operand_of line s =
  match int_of_string_opt s with
  | Some i -> Imm i
  | None -> Reg (reg_of_name line s)

(* Split an instruction line into mnemonic and comma-separated operands.
   "lw a0, 4(sp)" -> ("lw", ["a0"; "4(sp)"]). *)
let split_line s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, [])
  | Some i ->
    let m = String.sub s 0 i in
    let rest = String.sub s i (String.length s - i) in
    let ops =
      String.split_on_char ',' rest |> List.map String.trim
      |> List.filter (fun x -> x <> "")
    in
    (m, ops)

(* Parse "off(reg)" memory operand. *)
let mem_operand line s =
  match String.index_opt s '(' with
  | None -> fail line ("expected off(reg): " ^ s)
  | Some i ->
    if s.[String.length s - 1] <> ')' then fail line ("expected ')': " ^ s);
    let off_s = String.sub s 0 i in
    let reg_s = String.sub s (i + 1) (String.length s - i - 2) in
    let off =
      if off_s = "" then 0
      else
        match int_of_string_opt off_s with
        | Some v -> v
        | None -> fail line ("bad offset: " ^ off_s)
    in
    (off, reg_of_name line reg_s)

let alu_ops =
  [ ("add", Add); ("sub", Sub); ("mul", Mul); ("div", Div); ("rem", Rem);
    ("and", And); ("or", Or); ("xor", Xor); ("shl", Shl); ("shr", Shr);
    ("sar", Sar); ("slt", Slt); ("sle", Sle); ("seq", Seq); ("sne", Sne);
    ("sgt", Sgt); ("sge", Sge); ("sltu", Sltu) ]

let falu_ops =
  [ ("fadd", Fadd); ("fsub", Fsub); ("fmul", Fmul); ("fdiv", Fdiv);
    ("fslt", Fslt); ("fsle", Fsle); ("feq", Feq) ]

let branch_conds =
  [ ("beq", Eq); ("bne", Ne); ("blt", Lt); ("bge", Ge); ("ble", Le);
    ("bgt", Gt) ]

let syscalls =
  [ ("exit", Sys_exit); ("print_int", Sys_print_int);
    ("print_char", Sys_print_char); ("print_float", Sys_print_float);
    ("sbrk", Sys_sbrk); ("abort", Sys_abort);
    ("mark_alloc", Sys_mark_alloc); ("mark_free", Sys_mark_free) ]

let loads =
  [ ("lb", (W1, false)); ("lbs", (W1, true)); ("lh", (W2, false));
    ("lhs", (W2, true)); ("lw", (W4, true)) ]

let stores = [ ("sb", W1); ("sh", W2); ("sw", W4) ]

let parse_instr line mnemonic ops =
  let r = reg_of_name line in
  let op1 () = match ops with [ a ] -> a | _ -> fail line "expected 1 operand" in
  let op2 () =
    match ops with [ a; b ] -> (a, b) | _ -> fail line "expected 2 operands"
  in
  let op3 () =
    match ops with
    | [ a; b; c ] -> (a, b, c)
    | _ -> fail line "expected 3 operands"
  in
  match mnemonic with
  | m when List.mem_assoc m alu_ops ->
    let a, b, c = op3 () in
    Alu (List.assoc m alu_ops, r a, r b, operand_of line c)
  | m when List.mem_assoc m falu_ops ->
    let a, b, c = op3 () in
    Falu (List.assoc m falu_ops, r a, r b, r c)
  | m when List.mem_assoc m branch_conds ->
    let a, b, c = op3 () in
    Branch (List.assoc m branch_conds, r a, r b, c)
  | m when List.mem_assoc m loads ->
    let width, signed = List.assoc m loads in
    let a, b = op2 () in
    let off, base = mem_operand line b in
    Load { dst = r a; base; off; width; signed }
  | m when List.mem_assoc m stores ->
    let a, b = op2 () in
    let off, base = mem_operand line b in
    Store { src = r a; base; off; width = List.assoc m stores }
  | "fneg" -> let a, b = op2 () in Fneg (r a, r b)
  | "fsqrt" -> let a, b = op2 () in Fsqrt (r a, r b)
  | "cvt.f.i" -> let a, b = op2 () in Cvt_f_of_i (r a, r b)
  | "cvt.i.f" -> let a, b = op2 () in Cvt_i_of_f (r a, r b)
  | "li" ->
    let a, b = op2 () in
    (match int_of_string_opt b with
     | Some v -> Li (r a, v)
     | None -> fail line ("bad immediate: " ^ b))
  | "mov" -> let a, b = op2 () in Mov (r a, r b)
  | "setbound" ->
    let a, b, c = op3 () in
    Setbound { dst = r a; src = r b; size = operand_of line c }
  | "setbound.narrow" ->
    let a, b, c = op3 () in
    Setbound_narrow { dst = r a; src = r b; size = operand_of line c }
  | "setbound.unsafe" -> let a, b = op2 () in Setbound_unsafe (r a, r b)
  | "readbase" -> let a, b = op2 () in Readbase (r a, r b)
  | "readbound" -> let a, b = op2 () in Readbound (r a, r b)
  | "licode" -> let a, b = op2 () in Licode (r a, b)
  | "jmp" -> Jmp (op1 ())
  | "call" -> Call (op1 ())
  | "callr" -> Call_reg (r (op1 ()))
  | "ret" -> if ops <> [] then fail line "ret takes no operands" else Ret
  | "nop" -> Nop
  | "syscall" ->
    let s = op1 () in
    (match List.assoc_opt s syscalls with
     | Some sc -> Syscall sc
     | None -> fail line ("unknown syscall: " ^ s))
  | ".line" ->
    (match int_of_string_opt (op1 ()) with
     | Some n when n >= 0 -> Line n
     | _ -> fail line "bad .line operand")
  | m -> fail line ("unknown mnemonic: " ^ m)

(* Strip a ';' or '#' comment. *)
let strip_comment s =
  let cut c s =
    match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut ';' (cut '#' s)

let parse_program (src : string) : program =
  let lines = String.split_on_char '\n' src in
  let entry = ref None in
  let funcs = ref [] in
  let cur_name = ref None in
  let cur_body = ref [] in
  let finish line =
    match !cur_name with
    | None -> fail line ".end without .func"
    | Some name ->
      funcs := { name; body = List.rev !cur_body } :: !funcs;
      cur_name := None;
      cur_body := []
  in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let s = String.trim (strip_comment raw) in
      if s = "" then ()
      else if String.length s > 7 && String.sub s 0 7 = ".entry " then
        entry := Some (String.trim (String.sub s 7 (String.length s - 7)))
      else if String.length s > 6 && String.sub s 0 6 = ".func " then begin
        if !cur_name <> None then fail line "nested .func";
        cur_name := Some (String.trim (String.sub s 6 (String.length s - 6)))
      end
      else if s = ".end" then finish line
      else if !cur_name = None then fail line "instruction outside .func"
      else if s.[String.length s - 1] = ':' then
        cur_body := Label (String.sub s 0 (String.length s - 1)) :: !cur_body
      else
        let m, ops = split_line s in
        cur_body := parse_instr line m ops :: !cur_body)
    lines;
  if !cur_name <> None then fail 0 "missing .end";
  let funcs = List.rev !funcs in
  let entry =
    match !entry with
    | Some e -> e
    | None -> (
      match funcs with
      | f :: _ -> f.name
      | [] -> fail 0 "empty program")
  in
  { funcs; entry }
