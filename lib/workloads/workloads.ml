(** Registry of the Olden benchmark suite (Section 5.1 of the paper: "We
    chose the Olden benchmarks ... because they are pointer intensive and
    have been used to evaluate important prior works"). *)

type t = {
  name : string;
  source : string;
  description : string;
}

let all : t list =
  [
    { name = Bh.name; source = Bh.source;
      description = "Barnes-Hut N-body simulation (octree, float-heavy)" };
    { name = Bisort.name; source = Bisort.source;
      description = "bitonic sort over a perfect binary tree" };
    { name = Em3d.name; source = Em3d.source;
      description = "electromagnetic propagation on a bipartite graph" };
    { name = Health.name; source = Health.source;
      description = "health-care simulation (4-ary tree of patient lists)" };
    { name = Mst.name; source = Mst.source;
      description = "minimum spanning tree with per-vertex hash tables" };
    { name = Perimeter.name; source = Perimeter.source;
      description = "quadtree region perimeter (Samet neighbour finding)" };
    { name = Power.name; source = Power.source;
      description = "power-system price optimization tree" };
    { name = Treeadd.name; source = Treeadd.source;
      description = "recursive binary-tree summation" };
    { name = Tsp.name; source = Tsp.source;
      description = "divide-and-conquer travelling salesman" };
  ]

let find name =
  match List.find_opt (fun w -> w.name = name) all with
  | Some w -> w
  | None ->
    Hb_error.fail ~component:"workloads" "unknown workload %S (have: %s)" name
      (String.concat ", " (List.map (fun w -> w.name) all))

let names = List.map (fun w -> w.name) all
