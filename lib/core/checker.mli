(** The implicit bounds check performed by every load and store
    (Figure 3 (C)/(D) of the paper). *)

(** Enforcement mode of the HardBound hardware. *)
type mode =
  | Off          (** Hardware disabled: the baseline machine. *)
  | Malloc_only
      (** Section 3.2's legacy-binary mode: only accesses carrying bounds
          information (seeded by the instrumented allocator) are checked;
          non-pointer dereferences pass. *)
  | Full
      (** Complete spatial safety: dereferencing a value without bounds
          metadata raises a non-pointer exception. *)

val mode_name : mode -> string

(** Everything a trap handler would want to know about a violation. *)
type violation = {
  pc : int;
  addr : int;
  value : int;  (** the faulting pointer's register value *)
  width : int;
  meta : Meta.t;
  is_store : bool;
}

exception Bounds_violation of violation
exception Non_pointer_deref of violation

val describe_violation : violation -> string

(** Process-wide check/violation tally.  The checker itself is stateless,
    so these counters live as module state: they accumulate across every
    machine in the process until {!reset_tally} (reset before a run whose
    metrics snapshot must be reproducible). *)
type tally = {
  mutable checks : int;
  mutable bounds_violations : int;
  mutable non_pointer_derefs : int;
  mutable handled_traps : int;
      (** violations a recovery supervisor turned into precise traps and
          survived (report / null-guard / rollback) instead of aborting —
          bumped by [Hb_recover.Recover], not by the checker itself *)
}

val tally : tally
val reset_tally : unit -> unit

val export_tally : Hb_obs.Metrics.t -> unit
(** Report the tally into a metrics registry as [checker.*] counters. *)

val check :
  mode ->
  Meta.t ->
  pc:int ->
  addr:int ->
  value:int ->
  width:int ->
  is_store:bool ->
  bool
(** Perform the check; raises on violation.  Returns [true] iff the
    access was actually checked (used for statistics). *)
