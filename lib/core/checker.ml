(** Implicit bounds checking (Figure 3 (C)/(D) of the paper).

    Every load and store consults the metadata of the register being
    dereferenced.  Under full safety, dereferencing a non-pointer raises a
    non-pointer exception; under the malloc-only mode of Section 3.2,
    accesses without bounds information are simply not checked (legacy
    binaries only get heap-object protection). *)

(** Enforcement mode. *)
type mode =
  | Off          (** HardBound hardware disabled (baseline machine). *)
  | Malloc_only  (** Check only accesses that carry bounds information. *)
  | Full         (** Complete spatial safety: non-pointer deref is fatal. *)

let mode_name = function
  | Off -> "off"
  | Malloc_only -> "malloc-only"
  | Full -> "full"

type violation = {
  pc : int;           (* linked code index of the faulting instruction *)
  addr : int;         (* effective address of the access *)
  value : int;        (* the faulting pointer's register value *)
  width : int;
  meta : Meta.t;
  is_store : bool;
}

exception Bounds_violation of violation
exception Non_pointer_deref of violation

let describe_violation v =
  Printf.sprintf "%s of %d byte(s) at 0x%x via 0x%x %s (pc=%d)"
    (if v.is_store then "store" else "load")
    v.width v.addr v.value (Meta.to_string v.meta) v.pc

(** Process-wide check/violation tally.  The checker itself is stateless
    (a pure function of mode and metadata), so the counters the metrics
    registry wants live here as module state: they accumulate across
    every machine in the process until {!reset_tally}. *)
type tally = {
  mutable checks : int;
  mutable bounds_violations : int;
  mutable non_pointer_derefs : int;
  mutable handled_traps : int;
      (* violations a recovery supervisor turned into precise traps and
         survived (report / null-guard / rollback) instead of aborting *)
}

let tally =
  { checks = 0; bounds_violations = 0; non_pointer_derefs = 0;
    handled_traps = 0 }

let reset_tally () =
  tally.checks <- 0;
  tally.bounds_violations <- 0;
  tally.non_pointer_derefs <- 0;
  tally.handled_traps <- 0

let export_tally (reg : Hb_obs.Metrics.t) =
  Hb_obs.Metrics.set_counter reg "checker.checks" tally.checks;
  Hb_obs.Metrics.set_counter reg "checker.bounds_violations"
    tally.bounds_violations;
  Hb_obs.Metrics.set_counter reg "checker.non_pointer_derefs"
    tally.non_pointer_derefs;
  Hb_obs.Metrics.set_counter reg "checker.handled_traps" tally.handled_traps

let bounds_fail v =
  tally.bounds_violations <- tally.bounds_violations + 1;
  raise (Bounds_violation v)

let non_pointer_fail v =
  tally.non_pointer_derefs <- tally.non_pointer_derefs + 1;
  raise (Non_pointer_deref v)

(** Raises on violation; returns [true] iff the access was actually
    checked (used to count checked dereferences in statistics). *)
let check mode (m : Meta.t) ~pc ~addr ~value ~width ~is_store =
  match mode with
  | Off -> false
  | Malloc_only ->
    if Meta.is_pointer m then begin
      tally.checks <- tally.checks + 1;
      if not (Meta.in_bounds m ~addr ~width) then
        bounds_fail { pc; addr; value; width; meta = m; is_store };
      true
    end
    else false
  | Full ->
    tally.checks <- tally.checks + 1;
    if not (Meta.is_pointer m) then
      non_pointer_fail { pc; addr; value; width; meta = m; is_store };
    if not (Meta.in_bounds m ~addr ~width) then
      bounds_fail { pc; addr; value; width; meta = m; is_store };
    true
