(** Compressed bounded-pointer encodings (Section 4.3 of the paper).

    The hardware performs all encoding and decoding; software never
    observes compressed representations (Section 4.4).  What an encoding
    buys is fewer accesses to the base/bound shadow space: a pointer whose
    metadata fits the inline form costs nothing beyond its tag bits. *)

type scheme =
  | Uncompressed
      (** 1-bit tag; every pointer's base/bound lives in the shadow
          space. *)
  | Extern4
      (** 4-bit tag: non-pointer, one of 14 sizes (4..56 bytes, multiple
          of 4, [ptr = base]), or non-compressed. *)
  | Intern4
      (** 1-bit tag; 5 upper pointer bits hijacked (flag + size code).
          Pointers into the lowest 128MB only. *)
  | Intern11
      (** 1-bit tag; models the paper's 64-bit variant: 12 stolen bits
          encode objects up to 4*2^11 bytes with [ptr = base]. *)

val all_schemes : scheme list
val scheme_name : scheme -> string
val scheme_of_name : string -> scheme option

val tag_bits : scheme -> int
(** Bits per word in the tag metadata space (1 or 4). *)

val extern4_uncompressed_tag : int
(** The tag value (15) marking a non-compressed pointer under Extern4. *)

(** How a register's [{value, metadata}] is represented in memory. *)
type encoded =
  | Enc_non_pointer of int  (** stored word; tag 0 *)
  | Enc_inline of { word : int; tag : int; aux : int }
      (** compressed: no shadow-space traffic.  [aux] models Intern11's
          stolen upper word bits (0 otherwise). *)
  | Enc_shadow of { word : int; tag : int }
      (** base and bound must also be written to the shadow space. *)

val encode : scheme -> value:int -> Meta.t -> encoded

(** Result of decoding a loaded word given its tag (and side bits). *)
type decoded =
  | Dec_non_pointer of int
  | Dec_inline of int * Meta.t  (** reconstructed value and metadata *)
  | Dec_shadow of int           (** base/bound must be loaded *)

val decode : scheme -> word:int -> tag:int -> aux:int -> decoded

(** Where a register's metadata would live if stored: compressed inline
    ([Narrow]) or in the base/bound shadow space ([Wide]). *)
type kind = Non_pointer | Narrow | Wide

val kind_name : kind -> string

val classify : scheme -> value:int -> Meta.t -> kind
(** Total (never-raising) shape of {!encode}: observes without storing,
    so even addresses [encode] rejects (Intern4 shadow-half pointers)
    classify as [Wide].  Drives the timeline's encoding-transition
    counters. *)

val needs_shadow : scheme -> value:int -> Meta.t -> bool
(** Would storing this register need a shadow-space access (and the
    metadata micro-op of Section 5.4)? *)

val roundtrip_exact : scheme -> value:int -> Meta.t -> bool
(** Test hook: decode (encode x) reproduces x exactly. *)
