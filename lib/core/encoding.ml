(** Compressed bounded-pointer encodings (Section 4.3 of the paper).

    Four schemes:

    - {b Uncompressed}: 1-bit tag (pointer / non-pointer); every pointer's
      base and bound live in the shadow space.
    - {b Extern4}: 4-bit tag.  The 16 tag values encode: non-pointer (0),
      14 compressed sizes (tag t in 1..14 means [base = ptr],
      [bound = ptr + 4*t], i.e. objects of 4..56 bytes whose size is a
      multiple of 4), or non-compressed (15, metadata in shadow space).
    - {b Intern4}: 1-bit tag; 5 upper bits of the pointer word itself are
      hijacked: bit 31 (which selects the shadow-space half of the VA
      space, so no valid data pointer ever has it set) flags "compressed",
      bits 30..27 hold the same 4-bit size code as Extern4.  Only pointers
      into the lowest 128MB are eligible.
    - {b Intern11}: 1-bit tag; models the paper's 64-bit variant where 12
      upper bits are stolen (1 flag + 11 size bits, objects up to 4*2^11
      bytes with [base = ptr]).  On our 32-bit memory the stolen bits are
      held in a side store (see DESIGN.md): they cost no memory traffic and
      no pages, exactly like real upper word bits would.

    Encoding and decoding are performed by the hardware; software never
    observes compressed representations (Section 4.4). *)

type scheme = Uncompressed | Extern4 | Intern4 | Intern11

let all_schemes = [ Uncompressed; Extern4; Intern4; Intern11 ]

let scheme_name = function
  | Uncompressed -> "uncompressed"
  | Extern4 -> "extern-4"
  | Intern4 -> "intern-4"
  | Intern11 -> "intern-11"

let scheme_of_name = function
  | "uncompressed" -> Some Uncompressed
  | "extern-4" | "extern4" -> Some Extern4
  | "intern-4" | "intern4" -> Some Intern4
  | "intern-11" | "intern11" -> Some Intern11
  | _ -> None

(** Bits per word in the tag metadata space. *)
let tag_bits = function Extern4 -> 4 | Uncompressed | Intern4 | Intern11 -> 1

(* Size code shared by Extern4/Intern4: object size 4*c for c in 1..14. *)
let size_code ~value m =
  let size = Meta.size m in
  if
    m.Meta.base = value && size >= 4 && size <= 56 && size mod 4 = 0
  then Some (size / 4)
  else None

let extern4_uncompressed_tag = 15

(** Result of encoding a register's {value, metadata} for a memory store. *)
type encoded =
  | Enc_non_pointer of int
      (** stored word (= value); tag 0. *)
  | Enc_inline of { word : int; tag : int; aux : int }
      (** compressed: no shadow-space write needed.  [aux] models stolen
          upper word bits for Intern11 (0 otherwise). *)
  | Enc_shadow of { word : int; tag : int }
      (** tag marks a non-compressed pointer; base and bound must also be
          written to the shadow space. *)

let encode scheme ~value (m : Meta.t) : encoded =
  if not (Meta.is_pointer m) then Enc_non_pointer value
  else
    match scheme with
    | Uncompressed -> Enc_shadow { word = value; tag = 1 }
    | Extern4 -> (
      match size_code ~value m with
      | Some c -> Enc_inline { word = value; tag = c; aux = 0 }
      | None -> Enc_shadow { word = value; tag = extern4_uncompressed_tag })
    | Intern4 -> (
      if value >= 0x80000000 then
        (* The flag bit doubles as the shadow-space address bit; data
           pointers into that region cannot exist (Section 4.3). *)
        Hb_error.fail ~component:"encoding" ~addr:value
          "intern-4: pointer into shadow half of address space";
      match size_code ~value m with
      | Some c when value < Hb_mem.Layout.internal_region_limit ->
        Enc_inline
          { word = 0x80000000 lor (c lsl 27) lor value; tag = 1; aux = 0 }
      | _ -> Enc_shadow { word = value; tag = 1 })
    | Intern11 ->
      let size = Meta.size m in
      if
        m.Meta.base = value && size >= 4 && size mod 4 = 0 && size / 4 <= 2047
      then Enc_inline { word = value; tag = 1; aux = size / 4 }
      else Enc_shadow { word = value; tag = 1 }

(** Result of decoding a loaded word given its tag (and side bits). *)
type decoded =
  | Dec_non_pointer of int
  | Dec_inline of int * Meta.t  (** reconstructed value and metadata *)
  | Dec_shadow of int           (** value; base/bound must be loaded *)

let decode scheme ~word ~tag ~aux : decoded =
  match scheme with
  | Uncompressed ->
    if tag = 0 then Dec_non_pointer word else Dec_shadow word
  | Extern4 ->
    if tag = 0 then Dec_non_pointer word
    else if tag = extern4_uncompressed_tag then Dec_shadow word
    else Dec_inline (word, Meta.make ~base:word ~size:(4 * tag))
  | Intern4 ->
    if tag = 0 then Dec_non_pointer word
    else if word land 0x80000000 <> 0 then
      let c = (word lsr 27) land 0xF in
      let value = word land 0x07FFFFFF in
      Dec_inline (value, Meta.make ~base:value ~size:(4 * c))
    else Dec_shadow word
  | Intern11 ->
    if tag = 0 then Dec_non_pointer word
    else if aux <> 0 then Dec_inline (word, Meta.make ~base:word ~size:(4 * aux))
    else Dec_shadow word

(** Where a register's metadata would live if stored — the total,
    never-raising shape of {!encode} used by the timeline's
    encoding-transition telemetry.  Unlike [encode], a pointer into the
    shadow half of the address space under Intern4 classifies as [Wide]
    instead of raising: the classifier only observes, it never stores. *)
type kind = Non_pointer | Narrow | Wide

let kind_name = function
  | Non_pointer -> "non_pointer"
  | Narrow -> "narrow"
  | Wide -> "wide"

let classify scheme ~value (m : Meta.t) : kind =
  if not (Meta.is_pointer m) then Non_pointer
  else
    match scheme with
    | Uncompressed -> Wide
    | Extern4 -> (
      match size_code ~value m with Some _ -> Narrow | None -> Wide)
    | Intern4 -> (
      if value >= 0x80000000 then Wide
      else
        match size_code ~value m with
        | Some _ when value < Hb_mem.Layout.internal_region_limit -> Narrow
        | _ -> Wide)
    | Intern11 ->
      let size = Meta.size m in
      if m.Meta.base = value && size >= 4 && size mod 4 = 0 && size / 4 <= 2047
      then Narrow
      else Wide

(** True if storing this register would need a shadow-space access (and the
    extra metadata micro-op of Section 5.4). *)
let needs_shadow scheme ~value m =
  match encode scheme ~value m with
  | Enc_shadow _ -> true
  | Enc_non_pointer _ | Enc_inline _ -> false

(** Round-trip check used by tests: decode (encode x) = x for compressible
    and shadow pointers alike. *)
let roundtrip_exact scheme ~value m =
  match encode scheme ~value m with
  | Enc_non_pointer w -> (
    match decode scheme ~word:w ~tag:0 ~aux:0 with
    | Dec_non_pointer v -> v = value
    | _ -> false)
  | Enc_inline { word; tag; aux } -> (
    match decode scheme ~word ~tag ~aux with
    | Dec_inline (v, m') -> v = value && Meta.equal m m'
    | _ -> false)
  | Enc_shadow { word; tag } -> (
    match decode scheme ~word ~tag ~aux:0 with
    | Dec_shadow v -> v = value
    | _ -> false)
