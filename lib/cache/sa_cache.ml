(** Generic set-associative cache model with LRU replacement.

    Only hit/miss behaviour is modelled (the timing simulator charges a
    fixed fill latency per miss); writeback traffic is not separately
    charged, matching the paper's published hierarchy parameters which give
    miss penalties only. *)

type t = {
  name : string;
  block_bits : int;
  set_bits : int;
  assoc : int;
  tags : int array;     (* sets * assoc; -1 = invalid *)
  stamp : int array;    (* LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "sa_cache: size parameters must be powers of two"
  else go 0 n

let create ~name ~size_bytes ~assoc ~block_bytes =
  let sets = size_bytes / (assoc * block_bytes) in
  if sets < 1 then invalid_arg "sa_cache: too small";
  if sets * assoc * block_bytes <> size_bytes then
    invalid_arg "sa_cache: size must be sets * assoc * block";
  {
    name;
    block_bits = log2 block_bytes;
    set_bits = log2 sets;
    assoc;
    tags = Array.make (sets * assoc) (-1);
    stamp = Array.make (sets * assoc) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let num_sets t = 1 lsl t.set_bits

(** Access a byte address; returns [true] on hit.  A miss installs the
    block, evicting the LRU way. *)
let access t addr =
  t.clock <- t.clock + 1;
  t.accesses <- t.accesses + 1;
  let block = addr lsr t.block_bits in
  let set = block land (num_sets t - 1) in
  let tag = block lsr t.set_bits in
  let base = set * t.assoc in
  let rec find i =
    if i >= t.assoc then None
    else if t.tags.(base + i) = tag then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    t.stamp.(base + i) <- t.clock;
    true
  | None ->
    t.misses <- t.misses + 1;
    (* Evict LRU way. *)
    let victim = ref 0 in
    for i = 1 to t.assoc - 1 do
      if t.stamp.(base + i) < t.stamp.(base + !victim) then victim := i
    done;
    t.tags.(base + !victim) <- tag;
    t.stamp.(base + !victim) <- t.clock;
    false

(** Non-allocating lookup, for tests and introspection. *)
let probe t addr =
  let block = addr lsr t.block_bits in
  let set = block land (num_sets t - 1) in
  let tag = block lsr t.set_bits in
  let base = set * t.assoc in
  let rec find i =
    if i >= t.assoc then false
    else t.tags.(base + i) = tag || find (i + 1)
  in
  find 0

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.clock <- 0

(** Report this cache's counters into a metrics registry, labeled by the
    cache's name. *)
let export t (reg : Hb_obs.Metrics.t) =
  let labels = [ ("cache", t.name) ] in
  Hb_obs.Metrics.set_counter reg ~labels "cache.accesses" t.accesses;
  Hb_obs.Metrics.set_counter reg ~labels "cache.misses" t.misses
