(** The paper's simulated memory hierarchy (Section 5.1): 32KB 4-way L1D
    (12-cycle miss penalty), 4MB 4-way L2 (200 cycles), 256-entry 4-way
    TLBs (12 cycles), and the dedicated tag metadata cache (2KB for 1-bit
    tags, 8KB for the 4-bit external encoding) with its own TLB.
    Base/bound shadow accesses share the L1D and data TLB (Figure 4). *)

type params = {
  l1_size : int;
  l1_assoc : int;
  l2_size : int;
  l2_assoc : int;
  tagc_size : int;
  tagc_assoc : int;
  block : int;
  tlb_entries : int;
  tlb_assoc : int;
  page : int;
  l1_miss_penalty : int;
  l2_miss_penalty : int;
  tlb_miss_penalty : int;
}

val default_params : tag_bits:int -> params
(** The paper's parameters; [tag_bits] selects the tag cache size. *)

(** Access classes, so stall cycles can be attributed to Figure 5's
    overhead segments. *)
type access_class = Data | Base_bound | Tag_meta

type class_stats = {
  mutable accesses : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable tlb_misses : int;
  mutable stall_cycles : int;
}

type t = {
  params : params;
  l1d : Sa_cache.t;
  l2 : Sa_cache.t;
  tagc : Sa_cache.t;
  dtlb : Tlb.t;
  ttlb : Tlb.t;
  data_stats : class_stats;
  bb_stats : class_stats;
  tag_stats : class_stats;
  mutable last_mask : int;
      (** Which levels missed on the most recent access, as a bitmask of
          {!miss_tlb} / {!miss_l1} / {!miss_l2} — lets a tracer expand the
          returned stall cycles into per-level miss events without the
          model paying for event plumbing when tracing is off. *)
}

val miss_tlb : int
val miss_l1 : int
val miss_l2 : int

val create : params -> t

val access : t -> access_class -> int -> int
(** Simulate one access; returns the stall cycles it contributes (0 when
    every level hits). *)

val stats_of : t -> access_class -> class_stats
val total_stalls : t -> int
val reset_stats : t -> unit

val class_name : access_class -> string

val fields : t -> (string * int) list
(** Cumulative miss counters ([l1_misses], [tag_cache_misses],
    [l2_misses], [dtlb_misses], [ttlb_misses], [mem_accesses]) as a flat
    association list for the timeline's per-window deltas. *)

val export : t -> Hb_obs.Metrics.t -> unit
(** Report per-class counters ([hierarchy.*{class=...}]) and the
    underlying cache/TLB structures into a metrics registry. *)
