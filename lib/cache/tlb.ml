(** TLB model: a set-associative cache of virtual page numbers.

    The paper uses 4-way set-associative 256-entry TLBs with 4KB pages and a
    12-cycle miss penalty; the data TLB covers data and base/bound shadow
    accesses, and the tag metadata cache has a TLB of its own. *)

type t = { cache : Sa_cache.t; page_bits : int }

let create ~name ~entries ~assoc ~page_bytes =
  let page_bits = Sa_cache.log2 page_bytes in
  (* Reuse the cache model with 1-byte "blocks" over page numbers. *)
  {
    cache =
      Sa_cache.create ~name ~size_bytes:entries ~assoc ~block_bytes:1;
    page_bits;
  }

(** Returns [true] on TLB hit for the page containing [addr]. *)
let access t addr = Sa_cache.access t.cache (addr lsr t.page_bits)

let accesses t = t.cache.Sa_cache.accesses
let misses t = t.cache.Sa_cache.misses
let reset_stats t = Sa_cache.reset_stats t.cache
let flush t = Sa_cache.flush t.cache

(** Report this TLB's counters into a metrics registry (the underlying
    cache carries the TLB's name). *)
let export t (reg : Hb_obs.Metrics.t) =
  let labels = [ ("tlb", t.cache.Sa_cache.name) ] in
  Hb_obs.Metrics.set_counter reg ~labels "tlb.accesses" (accesses t);
  Hb_obs.Metrics.set_counter reg ~labels "tlb.misses" (misses t)
