(** The paper's simulated memory hierarchy (Section 5.1):

    - 32KB 4-way set-associative L1 data cache, 12-cycle miss penalty,
    - 4MB 4-way set-associative L2, 200-cycle miss penalty,
    - 4-way 256-entry TLBs, 4KB pages, 12-cycle miss penalty,
    - tag metadata cache: 2KB 4-way for 1-bit tag encodings, 8KB 4-way for
      the 4-bit external encoding; misses are serviced by the L2,
    - 32-byte blocks everywhere.

    Base/bound shadow accesses share the L1 data cache and data TLB; tag
    accesses go through the dedicated tag cache and its own TLB (Figure 4). *)

type params = {
  l1_size : int;
  l1_assoc : int;
  l2_size : int;
  l2_assoc : int;
  tagc_size : int;
  tagc_assoc : int;
  block : int;
  tlb_entries : int;
  tlb_assoc : int;
  page : int;
  l1_miss_penalty : int;
  l2_miss_penalty : int;
  tlb_miss_penalty : int;
}

let default_params ~tag_bits =
  {
    l1_size = 32 * 1024;
    l1_assoc = 4;
    l2_size = 4 * 1024 * 1024;
    l2_assoc = 4;
    tagc_size = (if tag_bits = 4 then 8 * 1024 else 2 * 1024);
    tagc_assoc = 4;
    block = 32;
    tlb_entries = 256;
    tlb_assoc = 4;
    page = 4096;
    l1_miss_penalty = 12;
    l2_miss_penalty = 200;
    tlb_miss_penalty = 12;
  }

(** Accesses are classified so Figure 5's overhead segments can attribute
    stall cycles: ordinary program data, base/bound shadow words, and tag
    metadata. *)
type access_class = Data | Base_bound | Tag_meta

type class_stats = {
  mutable accesses : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable tlb_misses : int;
  mutable stall_cycles : int;
}

let fresh_class_stats () =
  { accesses = 0; l1_misses = 0; l2_misses = 0; tlb_misses = 0;
    stall_cycles = 0 }

type t = {
  params : params;
  l1d : Sa_cache.t;
  l2 : Sa_cache.t;
  tagc : Sa_cache.t;
  dtlb : Tlb.t;
  ttlb : Tlb.t;
  data_stats : class_stats;
  bb_stats : class_stats;
  tag_stats : class_stats;
  mutable last_mask : int;
      (* which levels missed on the most recent access: a bitmask of
         [miss_tlb] / [miss_l1] / [miss_l2], so a tracer can turn the
         returned stall cycles into per-level miss events without the
         model paying for event plumbing when tracing is off *)
}

let miss_tlb = 1
let miss_l1 = 2
let miss_l2 = 4

let create params =
  {
    params;
    l1d =
      Sa_cache.create ~name:"L1D" ~size_bytes:params.l1_size
        ~assoc:params.l1_assoc ~block_bytes:params.block;
    l2 =
      Sa_cache.create ~name:"L2" ~size_bytes:params.l2_size
        ~assoc:params.l2_assoc ~block_bytes:params.block;
    tagc =
      Sa_cache.create ~name:"TagC" ~size_bytes:params.tagc_size
        ~assoc:params.tagc_assoc ~block_bytes:params.block;
    dtlb =
      Tlb.create ~name:"DTLB" ~entries:params.tlb_entries
        ~assoc:params.tlb_assoc ~page_bytes:params.page;
    ttlb =
      Tlb.create ~name:"TTLB" ~entries:params.tlb_entries
        ~assoc:params.tlb_assoc ~page_bytes:params.page;
    data_stats = fresh_class_stats ();
    bb_stats = fresh_class_stats ();
    tag_stats = fresh_class_stats ();
    last_mask = 0;
  }

let stats_of t = function
  | Data -> t.data_stats
  | Base_bound -> t.bb_stats
  | Tag_meta -> t.tag_stats

(** Simulate one access of class [cls] to byte address [addr]; returns the
    stall cycles it contributes (0 on an all-hit access). *)
let access t cls addr =
  let s = stats_of t cls in
  s.accesses <- s.accesses + 1;
  let first_level, tlb =
    match cls with
    | Data | Base_bound -> (t.l1d, t.dtlb)
    | Tag_meta -> (t.tagc, t.ttlb)
  in
  (* accumulated in plain ints, with [last_mask] as the scratch word (no
     ref cells or tuples: this is the simulator's hottest function) *)
  t.last_mask <- 0;
  let stall_tlb =
    if Tlb.access tlb addr then 0
    else begin
      s.tlb_misses <- s.tlb_misses + 1;
      t.last_mask <- miss_tlb;
      t.params.tlb_miss_penalty
    end
  in
  let stall_cache =
    if Sa_cache.access first_level addr then 0
    else begin
      s.l1_misses <- s.l1_misses + 1;
      if Sa_cache.access t.l2 addr then begin
        t.last_mask <- t.last_mask lor miss_l1;
        t.params.l1_miss_penalty
      end
      else begin
        s.l2_misses <- s.l2_misses + 1;
        t.last_mask <- t.last_mask lor (miss_l1 lor miss_l2);
        t.params.l1_miss_penalty + t.params.l2_miss_penalty
      end
    end
  in
  let stall = stall_tlb + stall_cache in
  s.stall_cycles <- s.stall_cycles + stall;
  stall

let total_stalls t =
  t.data_stats.stall_cycles + t.bb_stats.stall_cycles
  + t.tag_stats.stall_cycles

let reset_stats t =
  List.iter
    (fun s ->
      s.accesses <- 0;
      s.l1_misses <- 0;
      s.l2_misses <- 0;
      s.tlb_misses <- 0;
      s.stall_cycles <- 0)
    [ t.data_stats; t.bb_stats; t.tag_stats ]

let class_name = function
  | Data -> "data"
  | Base_bound -> "base_bound"
  | Tag_meta -> "tag_meta"

(** Cumulative miss counters as a flat association list — the hierarchy's
    contribution to the timeline's per-window deltas, alongside
    [Stats.fields].  Data and base/bound accesses share the L1D and data
    TLB (Figure 4); the tag metadata cache and its TLB are separate. *)
let fields t =
  let d = t.data_stats and b = t.bb_stats and g = t.tag_stats in
  [
    ("mem_accesses", d.accesses + b.accesses + g.accesses);
    ("l1_misses", d.l1_misses + b.l1_misses);
    ("tag_cache_misses", g.l1_misses);
    ("l2_misses", d.l2_misses + b.l2_misses + g.l2_misses);
    ("dtlb_misses", d.tlb_misses + b.tlb_misses);
    ("ttlb_misses", g.tlb_misses);
  ]

(** Report per-class hierarchy counters (and the underlying cache/TLB
    structures) into a metrics registry. *)
let export t (reg : Hb_obs.Metrics.t) =
  List.iter
    (fun cls ->
      let s = stats_of t cls in
      let labels = [ ("class", class_name cls) ] in
      Hb_obs.Metrics.set_counter reg ~labels "hierarchy.accesses" s.accesses;
      Hb_obs.Metrics.set_counter reg ~labels "hierarchy.l1_misses" s.l1_misses;
      Hb_obs.Metrics.set_counter reg ~labels "hierarchy.l2_misses" s.l2_misses;
      Hb_obs.Metrics.set_counter reg ~labels "hierarchy.tlb_misses"
        s.tlb_misses;
      Hb_obs.Metrics.set_counter reg ~labels "hierarchy.stall_cycles"
        s.stall_cycles)
    [ Data; Base_bound; Tag_meta ];
  List.iter (fun c -> Sa_cache.export c reg) [ t.l1d; t.l2; t.tagc ];
  List.iter (fun tlb -> Tlb.export tlb reg) [ t.dtlb; t.ttlb ]
