(** Generic set-associative cache model with LRU replacement.  Only
    hit/miss behaviour is modelled; the timing simulator charges a fixed
    fill latency per miss. *)

type t = {
  name : string;
  block_bits : int;
  set_bits : int;
  assoc : int;
  tags : int array;
  stamp : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

val log2 : int -> int
(** Exact log2 of a power of two; raises [Invalid_argument] otherwise. *)

val create : name:string -> size_bytes:int -> assoc:int -> block_bytes:int -> t
(** Geometry must be exact: [size_bytes = sets * assoc * block_bytes] with
    power-of-two sets and blocks. *)

val num_sets : t -> int

val access : t -> int -> bool
(** Access a byte address; [true] on hit.  A miss installs the block,
    evicting the LRU way. *)

val probe : t -> int -> bool
(** Non-allocating residency check (tests/introspection). *)

val reset_stats : t -> unit
val flush : t -> unit

val export : t -> Hb_obs.Metrics.t -> unit
(** Report accesses/misses into a metrics registry as
    [cache.*{cache=<name>}] counters. *)
