(** TLB model: a set-associative cache of virtual page numbers (the paper
    uses 4-way, 256 entries, 4KB pages, 12-cycle miss penalty; the tag
    metadata cache has a TLB of its own — Figure 4). *)

type t = { cache : Sa_cache.t; page_bits : int }

val create : name:string -> entries:int -> assoc:int -> page_bytes:int -> t

val access : t -> int -> bool
(** [true] on TLB hit for the page containing the address. *)

val accesses : t -> int
val misses : t -> int
val reset_stats : t -> unit
val flush : t -> unit

val export : t -> Hb_obs.Metrics.t -> unit
(** Report accesses/misses into a metrics registry as
    [tlb.*{tlb=<name>}] counters. *)
