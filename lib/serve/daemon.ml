(** The daemon proper: HTTP front end, fork-per-job scheduler, watchdog,
    retry/backoff, pressure probe.

    Robustness invariants:

    - the fsync'd submit record is the admission acknowledgement; every
      job transition is journaled before it is answered, so a SIGKILL at
      any instant loses at most unacknowledged work;
    - job execution is the library campaign runner on a journal under
      the job's own directory — each retry resumes the acknowledged
      prefix, and the final report is byte-identical to the CLI's for
      the same spec (cmp-enforced in CI);
    - the scheduler holds one mutex for queue + worker state; HTTP
      handlers take the same mutex, and neither ever blocks on a worker
      (children are reaped with [WNOHANG], stuck ones SIGKILLed by the
      watchdog). *)

module Json = Hb_obs.Json
module Clock = Hb_obs.Clock
module Metrics = Hb_obs.Metrics
module Serve = Hb_obs.Serve
module Journal = Hb_recover.Journal
module Deadline = Hb_recover.Deadline
module Interrupt = Hb_recover.Interrupt
module Campaign = Hb_fault.Campaign
module Supervisor = Hb_shard.Supervisor
module Shard = Hb_shard.Shard
module Machine = Hb_cpu.Machine
module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen

type config = {
  port : int;
  dir : string;
  admission : Admission.config;
  job_deadline_s : float;
  max_attempts : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  watchdog_grace_s : float;
  poll_interval_s : float;
  read_timeout_s : float;
  max_request : int;
  log : (string -> unit) option;
}

let default ~port ~dir =
  {
    port;
    dir;
    admission = Admission.default ~workers:2;
    job_deadline_s = 300.;
    max_attempts = 3;
    backoff_base_s = 0.25;
    backoff_cap_s = 5.;
    watchdog_grace_s = 5.;
    poll_interval_s = 0.05;
    read_timeout_s = 5.;
    max_request = 65536;
    log = None;
  }

type running = { job : Queue.job; pid : int; kill_after_ns : int64 }

type t = {
  cfg : config;
  q : Queue.t;
  mutable server : Serve.t option;
  mu : Mutex.t;
  mutable running : running list;
  mutable level : Admission.level;
  mutable stopping : bool;
  mutable disk_failing : bool;
  mutable shed : int;
  mutable alive : bool;
  mutable scheduler : Thread.t option;
  (* compiled images cached per (workload, mode): forked children
     inherit them, so 500 treeadd jobs compile treeadd once *)
  images :
    (string * string, Hb_isa.Program.image * string) Hashtbl.t;
}

let logf t fmt =
  Printf.ksprintf
    (fun s -> match t.cfg.log with Some f -> f s | None -> ())
    fmt

let port t = match t.server with Some s -> Serve.port s | None -> 0
let queue t = t.q

(* The daemon's retry backoff is the supervisor's tested pure schedule,
   with the daemon's own base/cap. *)
let backoff_s t ~attempt =
  Supervisor.backoff_s
    {
      Supervisor.default with
      Supervisor.backoff_base_s = t.cfg.backoff_base_s;
      backoff_cap_s = t.cfg.backoff_cap_s;
    }
    ~restart:attempt

let report_path t (job : Queue.job) =
  Filename.concat (Queue.job_dir t.q job.Queue.id) "report.json"

let error_path t (job : Queue.job) =
  Filename.concat (Queue.job_dir t.q job.Queue.id) "error.txt"

let journal_base t (job : Queue.job) =
  Filename.concat (Queue.job_dir t.q job.Queue.id) "journal.jsonl"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* tmp + fsync + rename: a crash leaves either no report or a complete
   one, never a torn file a later [cmp] would trip over *)
let write_file_atomic path s =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc s;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

let sigkill_reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
  let rec reap () =
    match Unix.waitpid [] pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  reap ()

(* ------------------------------------------------------------------ *)
(* Worker child                                                        *)

(* Worker exit protocol (mirrors Shard.Worker): 0 done, 3 typed error
   (terminal — retrying a bad spec cannot help), 4 resumable partial
   (job deadline expired between runs), anything else a crash the
   scheduler retries. *)
let exit_done = 0
let exit_error = 3
let exit_partial = 4
let exit_crash = 5

let child_run t (job : Queue.job) ~attempt ~image ~globals =
  (match t.server with
  | Some s -> ( try Unix.close (Serve.listen_fd s) with _ -> ())
  | None -> ());
  let spec = job.Queue.spec in
  let code =
    try
      (match spec.Proto.chaos with
      | Some Proto.Hang ->
        (* never journals a byte: only the watchdog can end this *)
        while true do
          Unix.sleepf 3600.
        done
      | Some (Proto.Crash k) when attempt <= k -> Unix._exit exit_crash
      | _ -> ());
      let config =
        Build.config_for ~scheme:spec.Proto.scheme ~temporal:false
          ~max_instrs:Build.default_fuel spec.Proto.mode
      in
      Hardbound.Checker.reset_tally ();
      let mk () = Machine.create ~config ~globals image in
      let ccfg = Proto.campaign_config spec in
      let base = journal_base t job in
      let deadline =
        Deadline.of_secs
          (Some
             (Option.value spec.Proto.deadline_s
                ~default:t.cfg.job_deadline_s))
      in
      (* first attempt journals; every retry resumes the acknowledged
         prefix, so attempts compose into one campaign *)
      let resume_it = Journal.read_or_empty base <> [] in
      let journal = if resume_it then None else Some base in
      let resume = if resume_it then Some base else None in
      let report =
        if spec.Proto.jobs > 1 then
          Shard.run ?journal ?resume ~deadline
            ~cfg:{ Supervisor.default with Supervisor.jobs = spec.Proto.jobs }
            ~mk ccfg
        else Campaign.run ?journal ?resume ~deadline ~mk ccfg
      in
      write_file_atomic (report_path t job)
        (Json.to_string_pretty (Campaign.to_json report) ^ "\n");
      if report.Campaign.deadline_expired then exit_partial else exit_done
    with
    | Hb_error.Hb_error (ctx, msg) ->
      (try
         write_file_atomic (error_path t job) (Hb_error.to_string (ctx, msg))
       with _ -> ());
      exit_error
    | e ->
      (try write_file_atomic (error_path t job) (Printexc.to_string e)
       with _ -> ());
      exit_crash
  in
  Unix._exit code

(* ------------------------------------------------------------------ *)
(* Scheduler (runs under t.mu)                                         *)

let retry_or_poison t (job : Queue.job) reason =
  if job.Queue.attempts >= t.cfg.max_attempts then begin
    let reason =
      Printf.sprintf "%s (attempt budget %d spent)" reason t.cfg.max_attempts
    in
    logf t "[serve] job j%d poisoned: %s" job.Queue.id reason;
    Queue.mark_poisoned t.q job ~reason
  end
  else begin
    let b = backoff_s t ~attempt:job.Queue.attempts in
    logf t "[serve] job j%d requeued (%s); attempt %d/%d, backoff %.2fs"
      job.Queue.id reason job.Queue.attempts t.cfg.max_attempts b;
    Queue.mark_requeue t.q job ~backoff_s:b ~reason
      ~not_before_ns:(Int64.add (Clock.now_ns ()) (Clock.ns_of_s b))
  end

let reap t =
  t.running <-
    List.filter
      (fun r ->
        match Unix.waitpid [ Unix.WNOHANG ] r.pid with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
        | 0, _ -> true
        | _, status ->
          (match status with
          | Unix.WEXITED c when c = exit_done ->
            if Sys.file_exists (report_path t r.job) then begin
              logf t "[serve] job j%d done (attempt %d)" r.job.Queue.id
                r.job.Queue.attempts;
              Queue.mark_done t.q r.job
            end
            else retry_or_poison t r.job "worker exited 0 without a report"
          | Unix.WEXITED c when c = exit_error ->
            let msg =
              match read_file (error_path t r.job) with
              | s -> s
              | exception Sys_error _ ->
                "worker failed with a typed error before it could be \
                 recorded"
            in
            logf t "[serve] job j%d failed: %s" r.job.Queue.id msg;
            Queue.mark_failed t.q r.job ~error:msg
          | Unix.WEXITED c when c = exit_partial ->
            retry_or_poison t r.job
              "job deadline expired (resumable prefix journaled)"
          | Unix.WEXITED c ->
            retry_or_poison t r.job
              (Printf.sprintf "worker crashed (exit code %d)" c)
          | Unix.WSIGNALED sg ->
            retry_or_poison t r.job
              (Printf.sprintf "worker killed by signal %d" sg)
          | Unix.WSTOPPED _ -> ());
          (match status with Unix.WSTOPPED _ -> true | _ -> false))
      t.running

let watchdog t =
  let now = Clock.now_ns () in
  t.running <-
    List.filter
      (fun r ->
        if now >= r.kill_after_ns then begin
          logf t
            "[serve] watchdog: job j%d pid %d stuck past its deadline; \
             SIGKILL"
            r.job.Queue.id r.pid;
          sigkill_reap r.pid;
          retry_or_poison t r.job "stuck past its deadline (watchdog SIGKILL)";
          false
        end
        else true)
      t.running

let image_for t (spec : Proto.spec) =
  let key = (spec.Proto.workload, Codegen.mode_name spec.Proto.mode) in
  match Hashtbl.find_opt t.images key with
  | Some iv -> iv
  | None ->
    let iv = Build.compile ~mode:spec.Proto.mode (Proto.source spec) in
    Hashtbl.replace t.images key iv;
    iv

let spawn t (job : Queue.job) =
  match image_for t job.Queue.spec with
  | exception e ->
    (* a spec that cannot compile is terminal, not retryable *)
    Queue.mark_failed t.q job
      ~error:(Printf.sprintf "workload failed to compile: %s"
                (Printexc.to_string e))
  | image, globals ->
    Queue.mark_start t.q job ~pid:0;
    let attempt = job.Queue.attempts in
    let deadline_s =
      Option.value job.Queue.spec.Proto.deadline_s
        ~default:t.cfg.job_deadline_s
    in
    flush stdout;
    flush stderr;
    (match Unix.fork () with
    | exception Unix.Unix_error (err, _, _) ->
      (* mark_start already journaled the attempt; a swallowed fork
         failure (e.g. EAGAIN) would strand the job Running-but-untracked
         until a restart replays the journal — requeue it with backoff so
         it stays schedulable in this daemon's lifetime *)
      retry_or_poison t job
        (Printf.sprintf "fork failed: %s" (Unix.error_message err))
    | 0 -> child_run t job ~attempt ~image ~globals
    | pid ->
      logf t "[serve] job j%d pid %d spawned (attempt %d/%d)" job.Queue.id
        pid attempt t.cfg.max_attempts;
      job.Queue.state <- Queue.Running pid;
      t.running <-
        {
          job;
          pid;
          kill_after_ns =
            Int64.add (Clock.now_ns ())
              (Clock.ns_of_s (deadline_s +. t.cfg.watchdog_grace_s));
        }
        :: t.running)

let schedule t =
  let target =
    if t.stopping then 0 else Admission.workers_for t.cfg.admission t.level
  in
  let continue = ref true in
  while !continue && List.length t.running < target do
    match Queue.next_eligible t.q ~now_ns:(Clock.now_ns ()) with
    | Some job -> spawn t job
    | None -> continue := false
  done

let tick t ~probe_now =
  reap t;
  watchdog t;
  if probe_now then begin
    let level =
      Admission.probe t.cfg.admission ~rss_kb:(Admission.rss_kb ())
        ~disk_failing:t.disk_failing
    in
    if level <> t.level then
      logf t "[serve] pressure level %s -> %s"
        (Admission.level_name t.level)
        (Admission.level_name level);
    t.level <- level
  end;
  if Interrupt.requested () && not t.stopping then begin
    logf t "[serve] %s received: draining" (Interrupt.signal_name ());
    t.stopping <- true
  end;
  schedule t

(* ------------------------------------------------------------------ *)
(* HTTP plane                                                          *)

let overloaded_response t reason =
  let retry = t.cfg.admission.Admission.retry_after_s in
  Serve.response ~status:"503 Service Unavailable"
    ~content_type:"application/json"
    ~headers:
      [ ("Retry-After", string_of_int (int_of_float (Float.ceil retry))) ]
    (Json.to_string_pretty
       (Json.Obj
          [
            ("error", Json.String "overloaded");
            ("reason", Json.String reason);
            ("retry_after_s", Json.Float retry);
          ])
    ^ "\n")

let bad_request msg =
  Serve.response ~status:"400 Bad Request" ~content_type:"application/json"
    (Json.to_string_pretty
       (Json.Obj
          [
            ("error", Json.String "bad_request"); ("message", Json.String msg);
          ])
    ^ "\n")

let json_response ?(status = "200 OK") j =
  Serve.response ~status ~content_type:"application/json"
    (Json.to_string_pretty j ^ "\n")

let not_found what =
  Serve.response ~status:"404 Not Found" ~content_type:"application/json"
    (Json.to_string_pretty
       (Json.Obj
          [ ("error", Json.String "not_found"); ("message", Json.String what) ])
    ^ "\n")

let job_id_of_path path =
  (* "/jobs/j12" or "/jobs/j12/report" *)
  match String.split_on_char '/' path with
  | [ ""; "jobs"; jid ] | [ ""; "jobs"; jid; "report" ] ->
    if String.length jid > 1 && jid.[0] = 'j' then
      int_of_string_opt (String.sub jid 1 (String.length jid - 1))
    else None
  | _ -> None

let job_json _t (job : Queue.job) =
  match Queue.summary_json job with
  | Json.Obj fields ->
    Json.Obj
      (fields
      @ (match job.Queue.state with
        | Queue.Done ->
          [
            ( "report_url",
              Json.String (Printf.sprintf "/jobs/j%d/report" job.Queue.id) );
          ]
        | _ -> [])
      @ [ ("runs", Json.Int job.Queue.spec.Proto.runs) ])
  | j -> j

let submit_handler t body =
  let spec =
    match Proto.spec_of_json (Json.of_string body) with
    | spec -> Ok spec
    | exception Json.Parse_error msg -> Error msg
    | exception Hb_error.Hb_error (ctx, msg) ->
      Error (Hb_error.to_string (ctx, msg))
  in
  match spec with
  | Error msg -> bad_request msg
  | Ok spec ->
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        if t.stopping then begin
          t.shed <- t.shed + 1;
          overloaded_response t "daemon is draining for shutdown"
        end
        else begin
          let queued, running, _, _, _ = Queue.counts t.q in
          match
            Admission.decide t.cfg.admission ~level:t.level
              ~queued:(queued + running) ~tenant:spec.Proto.tenant
              ~tenant_queued:(Queue.tenant_queued t.q spec.Proto.tenant)
          with
          | Admission.Overloaded reason ->
            t.shed <- t.shed + 1;
            overloaded_response t reason
          | Admission.Admit -> (
            match Queue.submit t.q ~spec with
            | job ->
              json_response ~status:"202 Accepted"
                (Json.Obj
                   [
                     ("job", Json.String ("j" ^ string_of_int job.Queue.id));
                     ("status", Json.String "queued");
                     ( "status_url",
                       Json.String
                         (Printf.sprintf "/jobs/j%d" job.Queue.id) );
                   ])
            | exception (Hb_error.Hb_error _ | Sys_error _
                        | Unix.Unix_error _) ->
              (* a submit we could not journal was never acknowledged;
                 flag the disk so the probe degrades to Refuse *)
              t.disk_failing <- true;
              t.shed <- t.shed + 1;
              overloaded_response t
                "queue journal write failed; refusing unacknowledgeable \
                 work")
        end)

let handler t ~meth ~path ~body =
  match (meth, path) with
  | "POST", "/jobs" -> Some (submit_handler t body)
  | "POST", "/shutdown" ->
    Mutex.lock t.mu;
    t.stopping <- true;
    Mutex.unlock t.mu;
    Some (json_response (Json.Obj [ ("ok", Json.Bool true); ("draining", Json.Bool true) ]))
  | "GET", "/jobs" ->
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        Some
          (json_response
             (Json.Obj
                [ ("jobs", Json.List (List.map (job_json t) (Queue.jobs t.q))) ])))
  | meth_, _ when job_id_of_path path <> None -> (
    let id = Option.get (job_id_of_path path) in
    let want_report =
      String.length path >= 7
      && String.sub path (String.length path - 7) 7 = "/report"
    in
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        let reply =
          match (meth_, Queue.find t.q id) with
          | _, None -> not_found (Printf.sprintf "no job j%d" id)
          | "GET", Some job when want_report -> (
            match job.Queue.state with
            | Queue.Done -> (
              (* a Done job can lack its report file: mark_done is
                 journaled, but the report rename is not
                 directory-fsynced, so an OS crash (or a manual
                 deletion) can lose it — answer typed rather than let
                 the exception escape *)
              match read_file (report_path t job) with
              | body ->
                Serve.response ~status:"200 OK"
                  ~content_type:"application/json" body
              | exception Sys_error _ ->
                json_response ~status:"500 Internal Server Error"
                  (Json.Obj
                     [
                       ("error", Json.String "report_missing");
                       ( "message",
                         Json.String
                           (Printf.sprintf
                              "job j%d is done but its report file is \
                               missing"
                              id) );
                     ]))
            | st ->
              json_response ~status:"409 Conflict"
                (Json.Obj
                   [
                     ("error", Json.String "not_ready");
                     ("state", Json.String (Queue.state_name st));
                   ]))
          | "GET", Some job -> json_response (job_json t job)
          | _, Some _ ->
            Serve.response ~status:"405 Method Not Allowed"
              "method not allowed\n"
        in
        Some reply))
  | _ -> None

let metrics t () =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let reg = Metrics.create () in
      let queued, running, done_, poisoned, failed = Queue.counts t.q in
      Metrics.set_counter reg "hb_serve_up" 1;
      Metrics.set_counter reg "hb_serve_queued" queued;
      Metrics.set_counter reg "hb_serve_running" running;
      Metrics.set_counter reg "hb_serve_done_total" done_;
      Metrics.set_counter reg "hb_serve_poisoned_total" poisoned;
      Metrics.set_counter reg "hb_serve_failed_total" failed;
      Metrics.set_counter reg "hb_serve_shed_total" t.shed;
      Metrics.set_counter reg "hb_serve_level"
        (Admission.level_rank t.level);
      Metrics.set_counter reg "hb_serve_workers_target"
        (if t.stopping then 0
         else Admission.workers_for t.cfg.admission t.level);
      Metrics.set_counter reg "hb_serve_rss_kb" (Admission.rss_kb ());
      (* per-tenant depth, labeled like every other hb_* family *)
      let tenants = Hashtbl.create 8 in
      List.iter
        (fun (j : Queue.job) ->
          match j.Queue.state with
          | Queue.Queued | Queue.Running _ ->
            Hashtbl.replace tenants j.Queue.tenant
              (1
              + Option.value
                  (Hashtbl.find_opt tenants j.Queue.tenant)
                  ~default:0)
          | _ -> ())
        (Queue.jobs t.q);
      Hashtbl.iter
        (fun tenant n ->
          Metrics.set_counter reg
            ~labels:[ ("tenant", tenant) ]
            "hb_serve_tenant_active" n)
        tenants;
      Metrics.to_prometheus reg)

let progress t () =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let queued, running, done_, poisoned, failed = Queue.counts t.q in
      Json.Obj
        [
          ("daemon", Json.String "hb-serve");
          ("version", Json.Int 1);
          ("dir", Json.String t.cfg.dir);
          ("level", Json.String (Admission.level_name t.level));
          ("stopping", Json.Bool t.stopping);
          ( "workers",
            Json.Int
              (if t.stopping then 0
               else Admission.workers_for t.cfg.admission t.level) );
          ("queued", Json.Int queued);
          ("running", Json.Int running);
          ("done", Json.Int done_);
          ("poisoned", Json.Int poisoned);
          ("failed", Json.Int failed);
          ("shed", Json.Int t.shed);
          ("jobs", Json.List (List.map (job_json t) (Queue.jobs t.q)));
        ])

(* ------------------------------------------------------------------ *)

let start cfg =
  let t =
    {
      cfg;
      q = Queue.open_ ~dir:cfg.dir;
      server = None;
      mu = Mutex.create ();
      running = [];
      level = Admission.Normal;
      stopping = false;
      disk_failing = false;
      shed = 0;
      alive = true;
      scheduler = None;
      images = Hashtbl.create 8;
    }
  in
  let server =
    try
      Serve.start ~port:cfg.port ~read_timeout_s:cfg.read_timeout_s
        ~max_request:cfg.max_request ~handler:(handler t)
        ~metrics:(metrics t) ~progress:(progress t) ()
    with e ->
      Queue.close t.q;
      raise e
  in
  t.server <- Some server;
  let probe_every =
    max 1 (int_of_float (Float.round (1. /. cfg.poll_interval_s)))
  in
  let ticks = ref 0 in
  t.scheduler <-
    Some
      (Thread.create
         (fun () ->
           while t.alive do
             incr ticks;
             Mutex.lock t.mu;
             (try tick t ~probe_now:(!ticks mod probe_every = 1)
              with e ->
                logf t "[serve] scheduler error: %s" (Printexc.to_string e));
             Mutex.unlock t.mu;
             Unix.sleepf cfg.poll_interval_s
           done)
         ());
  logf t "[serve] daemon on 127.0.0.1:%d, queue %s" (Serve.port server)
    (Queue.path t.q);
  t

let stop ?(hard = false) t =
  t.alive <- false;
  (match t.scheduler with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ());
  t.scheduler <- None;
  List.iter (fun r -> sigkill_reap r.pid) t.running;
  if not hard then
    (* journal the requeue so a clean shutdown's jobs restart without
       relying on crash replay; a hard stop journals nothing on purpose
       (it simulates SIGKILL for the crash-resilience tests) *)
    List.iter
      (fun r ->
        Queue.mark_requeue t.q r.job ~reason:"daemon stopping"
          ~not_before_ns:0L)
      t.running;
  t.running <- [];
  (match t.server with Some s -> Serve.stop s | None -> ());
  t.server <- None;
  Queue.close t.q

let run cfg =
  Interrupt.install ();
  let t = start cfg in
  let rec wait () =
    if Interrupt.requested () then ()
    else if
      t.stopping
      && (Mutex.lock t.mu;
          let idle = t.running = [] in
          Mutex.unlock t.mu;
          idle)
    then ()
    else begin
      Unix.sleepf 0.2;
      wait ()
    end
  in
  wait ();
  logf t "[serve] shutting down (%s)"
    (if Interrupt.requested () then Interrupt.signal_name () else "drained");
  stop t
