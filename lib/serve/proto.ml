(** Job-spec codec for the simulation daemon.  Strict and canonical: the
    encoded spec is journaled and replayed after a crash, so every field
    must survive a round trip, and a typo must be a typed error rather
    than a silently defaulted knob. *)

module Codegen = Hb_minic.Codegen
module Encoding = Hardbound.Encoding
module Injector = Hb_fault.Injector
module Policy = Hb_recover.Policy
module Campaign = Hb_fault.Campaign
module Json = Hb_obs.Json
module Workloads = Hb_workloads.Workloads

type chaos = Hang | Crash of int

type spec = {
  tenant : string;
  workload : string;
  mode : Codegen.mode;
  scheme : Encoding.scheme;
  runs : int;
  seed : int;
  sites : Injector.site list;
  checkpoints : int;
  policy : Policy.t;
  violation_budget : int;
  deadline_s : float option;
  jobs : int;
  chaos : chaos option;
}

let default =
  {
    tenant = "default";
    workload = "treeadd";
    mode = Codegen.Hardbound;
    scheme = Encoding.Extern4;
    runs = 1;
    seed = Campaign.default.Campaign.seed;
    sites = Injector.all_sites;
    checkpoints = Campaign.default.Campaign.checkpoints;
    policy = Policy.Abort;
    violation_budget = Policy.default.Policy.violation_budget;
    deadline_s = None;
    jobs = 1;
    chaos = None;
  }

let fail fmt = Hb_error.fail ~component:"proto" fmt

(* the same vocabulary [hardbound_run --mode] accepts *)
let mode_of_name = function
  | "nochecks" | "none" -> Some Codegen.Nochecks
  | "hardbound" | "full" -> Some Codegen.Hardbound
  | "malloc-only" | "hardbound-malloc-only" ->
    (* the second spelling is [Codegen.mode_name]'s output: the codec
       must round-trip its own canonical encoding *)
    Some Codegen.Hardbound_malloc_only
  | "softfat" | "ccured" -> Some Codegen.Softfat
  | "objtable" | "jk" -> Some Codegen.Objtable
  | _ -> None

let sites_of_string s =
  if String.trim s = "all" then Injector.all_sites
  else
    List.map
      (fun p ->
        match Injector.site_of_name (String.trim p) with
        | Some site -> site
        | None ->
          fail "unknown injection site %S in %S (have: %s, or \"all\")"
            (String.trim p) s
            (String.concat ", " (List.map Injector.site_name Injector.all_sites)))
      (String.split_on_char ',' s)

let sites_to_string sites = String.concat "," (List.map Injector.site_name sites)

let chaos_of_string s =
  match s with
  | "hang" -> Hang
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "crash" -> (
      let k = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt k with
      | Some n when n >= 1 -> Crash n
      | _ -> fail "chaos \"crash:K\" needs K >= 1, got %S" s)
    | _ -> fail "unknown chaos spec %S (have: \"hang\", \"crash:K\")" s)

let chaos_to_string = function
  | Hang -> "hang"
  | Crash k -> Printf.sprintf "crash:%d" k

(* ------------------------------------------------------------------ *)
(* JSON field accessors: every mismatch is a typed error naming the
   field, because a journaled spec that stops parsing is a poisoned
   queue. *)

let str_field obj key =
  match Json.member key obj with
  | None -> None
  | Some (Json.String s) -> Some s
  | Some _ -> fail "job field %S must be a string" key

let int_field obj key =
  match Json.member key obj with
  | None -> None
  | Some j -> (
    match Json.to_int j with
    | Some n -> Some n
    | None -> fail "job field %S must be an integer" key)

let float_field obj key =
  match Json.member key obj with
  | None -> None
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some _ -> fail "job field %S must be a number" key

let known_fields =
  [
    "tenant"; "workload"; "mode"; "scheme"; "runs"; "seed"; "sites";
    "checkpoints"; "policy"; "violation_budget"; "deadline_s"; "jobs";
    "chaos";
  ]

let spec_of_json j =
  let fields =
    match j with
    | Json.Obj fields -> fields
    | _ -> fail "a job spec must be a JSON object"
  in
  List.iter
    (fun (k, _) ->
      if not (List.mem k known_fields) then
        fail "unknown job field %S (have: %s)" k
          (String.concat ", " known_fields))
    fields;
  let workload =
    match str_field j "workload" with
    | Some w -> w
    | None -> fail "a job spec needs a \"workload\" field"
  in
  (match Workloads.find workload with
  | (_ : Workloads.t) -> ()
  | exception Invalid_argument _ ->
    fail "unknown workload %S (have: %s)" workload
      (String.concat ", " Workloads.names));
  let mode =
    match str_field j "mode" with
    | None -> default.mode
    | Some s -> (
      match mode_of_name s with
      | Some m -> m
      | None ->
        fail
          "unknown mode %S (have: nochecks | hardbound | malloc-only | \
           softfat | objtable)"
          s)
  in
  let scheme =
    match str_field j "scheme" with
    | None -> default.scheme
    | Some s -> (
      match Encoding.scheme_of_name s with
      | Some x -> x
      | None ->
        fail
          "unknown encoding %S (have: uncompressed | extern-4 | intern-4 \
           | intern-11)"
          s)
  in
  let policy =
    match str_field j "policy" with
    | None -> default.policy
    | Some s -> (
      match Policy.of_name s with
      | Some p -> p
      | None -> fail "unknown violation policy %S (have: %s)" s Policy.known)
  in
  let runs = Option.value (int_field j "runs") ~default:default.runs in
  if runs < 1 then fail "\"runs\" must be >= 1, got %d" runs;
  let jobs = Option.value (int_field j "jobs") ~default:1 in
  if jobs < 1 || jobs > 256 then
    fail "\"jobs\" must be in 1-256, got %d" jobs;
  let checkpoints =
    Option.value (int_field j "checkpoints") ~default:default.checkpoints
  in
  if checkpoints < 0 then
    fail "\"checkpoints\" must be >= 0, got %d" checkpoints;
  let violation_budget =
    Option.value
      (int_field j "violation_budget")
      ~default:default.violation_budget
  in
  if violation_budget < 0 then
    fail "\"violation_budget\" must be >= 0, got %d" violation_budget;
  let deadline_s = float_field j "deadline_s" in
  (match deadline_s with
  | Some d when d <= 0. -> fail "\"deadline_s\" must be positive, got %g" d
  | _ -> ());
  {
    tenant = Option.value (str_field j "tenant") ~default:default.tenant;
    workload;
    mode;
    scheme;
    runs;
    seed = Option.value (int_field j "seed") ~default:default.seed;
    sites =
      (match str_field j "sites" with
      | None -> default.sites
      | Some s -> sites_of_string s);
    checkpoints;
    policy;
    violation_budget;
    deadline_s;
    jobs;
    chaos =
      (match str_field j "chaos" with
      | None -> None
      | Some s -> Some (chaos_of_string s));
  }

let spec_to_json s =
  Json.Obj
    ([
       ("tenant", Json.String s.tenant);
       ("workload", Json.String s.workload);
       ("mode", Json.String (Codegen.mode_name s.mode));
       ("scheme", Json.String (Encoding.scheme_name s.scheme));
       ("runs", Json.Int s.runs);
       ("seed", Json.Int s.seed);
       ("sites", Json.String (sites_to_string s.sites));
       ("checkpoints", Json.Int s.checkpoints);
       ("policy", Json.String (Policy.name s.policy));
       ("violation_budget", Json.Int s.violation_budget);
       ("jobs", Json.Int s.jobs);
     ]
    @ (match s.deadline_s with
      | Some d -> [ ("deadline_s", Json.Float d) ]
      | None -> [])
    @
    match s.chaos with
    | Some c -> [ ("chaos", Json.String (chaos_to_string c)) ]
    | None -> [])

(* Field for field what [run_fault] builds from the CLI flags, so the
   daemon's report for a spec is byte-identical to the CLI's for the
   matching invocation. *)
let campaign_config s =
  {
    Campaign.default with
    Campaign.label = s.workload;
    runs = s.runs;
    seed = s.seed;
    sites = s.sites;
    checkpoints = s.checkpoints;
    policy = s.policy;
    violation_budget = s.violation_budget;
  }

let source s = (Workloads.find s.workload).Workloads.source
