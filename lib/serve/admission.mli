(** Admission control and graceful degradation for the simulation
    daemon.

    Two jobs: keep the queue bounded (global depth plus a per-tenant
    quota, so one tenant cannot starve the rest), and track a pressure
    level that degrades service instead of falling over — [Shrink]
    lowers the worker target under memory pressure, [Refuse] stops
    admitting entirely (hard memory pressure or a failing queue disk)
    while the status endpoints keep serving.  A refused submission is a
    typed [overloaded] response with a retry-after hint, never a hang. *)

type level = Normal | Shrink | Refuse

val level_name : level -> string
val level_rank : level -> int
(** 0, 1, 2 — exported as the [hb_serve_level] gauge. *)

type config = {
  max_queued : int;  (** global bound on queued + running jobs *)
  max_per_tenant : int;  (** per-tenant bound on queued + running jobs *)
  retry_after_s : float;  (** hint attached to overloaded rejections *)
  workers : int;  (** worker target under [Normal] *)
  shrink_workers : int;  (** worker target under [Shrink]/[Refuse] *)
  mem_soft_kb : int;  (** RSS above this degrades to [Shrink]; 0 = off *)
  mem_hard_kb : int;  (** RSS above this degrades to [Refuse]; 0 = off *)
}

val default : workers:int -> config
(** 64 queued, 32 per tenant, 2 s retry-after, [workers] normally and
    [max 1 (workers/2)] under pressure, memory thresholds off. *)

type decision = Admit | Overloaded of string

val decide :
  config -> level:level -> queued:int -> tenant:string -> tenant_queued:int ->
  decision
(** Admission verdict for one submission given current queue depth
    (queued + running) and the submitting tenant's share.  [Overloaded]
    carries the reason ([refusing under pressure] / [queue full] /
    [tenant quota]). *)

val rss_kb : unit -> int
(** Current VmRSS of this process from [/proc/self/status]; 0 where
    unavailable (then memory thresholds never trip — a gauge, never an
    error). *)

val probe : config -> rss_kb:int -> disk_failing:bool -> level
(** The pressure level for a live RSS sample and the queue-journal disk
    state.  A failing disk is always [Refuse]: accepting work we cannot
    journal would break the durability acknowledgement. *)

val workers_for : config -> level -> int
(** Worker target at a pressure level ([Refuse] keeps the shrunk target
    so already-admitted jobs still drain). *)
