(** The daemon's wire protocol: job specifications as JSON.

    A job is a fault campaign — the same knobs the CLI's
    [--workload/--mode/--inject/--campaign] flags expose, as one JSON
    object.  The codec is strict (unknown fields and bad names are typed
    errors naming the field, never silent defaults for typos) and
    canonical ([spec_of_json (spec_to_json s) = s]), because the encoded
    spec is what the queue journal persists and replays after a crash. *)

module Codegen := Hb_minic.Codegen
module Encoding := Hardbound.Encoding
module Injector := Hb_fault.Injector
module Policy := Hb_recover.Policy
module Campaign := Hb_fault.Campaign
module Json := Hb_obs.Json

(** Deliberate misbehavior for robustness tests and CI soaks: a [Hang]
    job never journals a byte (the watchdog must kill it); [Crash k]
    dies with an unclean exit on its first [k] attempts, then runs
    normally (retry/backoff must absorb it). *)
type chaos = Hang | Crash of int

type spec = {
  tenant : string;  (** fairness/quota bucket; default ["default"] *)
  workload : string;  (** Olden workload name *)
  mode : Codegen.mode;
  scheme : Encoding.scheme;
  runs : int;
  seed : int;
  sites : Injector.site list;
  checkpoints : int;
  policy : Policy.t;
  violation_budget : int;
  deadline_s : float option;
      (** per-job wall budget; the daemon's default applies when absent *)
  jobs : int;  (** shard workers inside the job (1 = serial) *)
  chaos : chaos option;
}

val default : spec
(** A 1-run hardbound/extern-4 treeadd campaign with the campaign
    defaults (seed 1, all sites, 16 checkpoints, abort policy); the base
    every parsed spec overrides. *)

val mode_of_name : string -> Codegen.mode option
(** Exactly the CLI's [--mode] vocabulary: [nochecks|none],
    [hardbound|full], [malloc-only], [softfat|ccured], [objtable|jk]. *)

val sites_of_string : string -> Injector.site list
(** ["all"] or a comma list of [mem|tag|shadow|reg|regbounds].  Raises a
    typed {!Hb_error.Hb_error} on unknown names. *)

val chaos_of_string : string -> chaos
(** ["hang"] or ["crash:K"].  Raises a typed {!Hb_error.Hb_error}
    otherwise. *)

val chaos_to_string : chaos -> string

val spec_of_json : Json.t -> spec
(** Decode and validate a job spec.  Raises a typed
    {!Hb_error.Hb_error} naming the offending field for: a missing or
    unknown [workload], unknown [mode]/[scheme]/[policy]/[sites] names,
    non-positive [runs]/[deadline_s], [jobs] outside 1-256, and any
    unknown field (a typo must never silently become a default). *)

val spec_to_json : spec -> Json.t
(** Canonical encoding; [spec_of_json] round-trips it exactly. *)

val campaign_config : spec -> Campaign.config
(** The campaign configuration a CLI invocation with the same flags
    builds — field for field, so the daemon's reports are byte-identical
    to [hardbound_run --workload W --inject SITES:0:SEED --campaign N]. *)

val source : spec -> string
(** The workload's MiniC source ({!Hb_workloads.Workloads.find}). *)
