(** The daemon's crash-resilient job table: a write-ahead journal in the
    PR 5 format ({!Hb_recover.Journal}) plus an in-memory index replayed
    from it.

    Every transition is one fsync'd JSONL record — [submit] (the
    admission acknowledgement: once it returns, the job survives any
    crash), [start], [requeue], [done], [poisoned], [failed].  Reopening
    the journal replays the records: terminal jobs stay terminal,
    anything that was running is re-admitted as queued with its attempt
    count intact, and a torn final record is repaired by the journal's
    [append_to] semantics — the acknowledged prefix is exactly what
    comes back. *)

module Json := Hb_obs.Json

type state =
  | Queued
  | Running of int  (** worker pid (0 after a replay: pids do not survive) *)
  | Done
  | Poisoned of string  (** retry budget spent; reason *)
  | Failed of string  (** typed error; retrying cannot help *)

val state_name : state -> string
(** [queued | running | done | poisoned | failed]. *)

type job = {
  id : int;
  tenant : string;
  spec : Proto.spec;
  mutable state : state;
  mutable attempts : int;  (** started attempts so far *)
  mutable not_before_ns : int64;  (** backoff gate (monotonic clock) *)
  mutable note : string;  (** last requeue/poison/failure reason *)
}

type t

val open_ : dir:string -> t
(** Open (or create) the queue rooted at [dir]: the journal lives at
    [dir/queue.jsonl], per-job artifacts under [dir/jobs/jN/].  An
    existing journal is replayed — with its torn tail repaired — before
    the writer reattaches.  Raises a typed {!Hb_error.Hb_error} on a
    corrupt record mid-journal (naming path and line) or a header
    mismatch. *)

val close : t -> unit

val path : t -> string
(** The journal path (tests truncate it to simulate torn tails). *)

val job_dir : t -> int -> string
(** [dir/jobs/jN] — the job's campaign journal and report live here. *)

val submit : t -> spec:Proto.spec -> job
(** Admit a job: assign the next id, create its artifact directory, then
    journal the submit record (fsync — this is the durability
    acknowledgement).  The directory comes first so any failure raises
    before the job is durably acknowledged — a submit that raises was
    never admitted. *)

val find : t -> int -> job option
val jobs : t -> job list
(** All jobs, ascending id. *)

val next_eligible : t -> now_ns:int64 -> job option
(** The queued job to start next, or [None]: round-robin across tenants
    (least-recently-picked tenant first, lowest id within), skipping
    jobs still inside their backoff window ([not_before_ns] in the
    future). *)

val mark_start : t -> job -> pid:int -> unit
(** Journal the start of the next attempt ([attempts] increments). *)

val mark_requeue :
  t -> ?backoff_s:float -> job -> reason:string -> not_before_ns:int64 -> unit
(** Re-admit a job as queued behind the [not_before_ns] backoff gate.
    [backoff_s] (default 0) is the relative delay journaled with the
    record: replay re-applies it from restart time, so a daemon restart
    does not collapse a crash-looping job's gate into an immediate
    retry. *)

val mark_done : t -> job -> unit
val mark_poisoned : t -> job -> reason:string -> unit
val mark_failed : t -> job -> error:string -> unit

val counts : t -> int * int * int * int * int
(** (queued, running, done, poisoned, failed). *)

val tenant_queued : t -> string -> int
(** Queued + running jobs charged to a tenant (its quota usage). *)

val summary_json : job -> Json.t
(** One job as the status endpoints render it: id, tenant, workload,
    state, attempts, note. *)
