(** Crash-resilient job table: a write-ahead journal of state
    transitions plus the in-memory index replayed from it.  The journal
    IS the queue — the daemon can be SIGKILLed between any two machine
    instructions and [open_] rebuilds exactly the acknowledged state:
    terminal jobs stay terminal, running jobs are re-admitted as queued
    (their attempt counts intact, so a crash-looping job still reaches
    its poison threshold), and a torn final record is repaired by
    {!Hb_recover.Journal.append_to} before the writer reattaches. *)

module Json = Hb_obs.Json
module Clock = Hb_obs.Clock
module Journal = Hb_recover.Journal

type state =
  | Queued
  | Running of int
  | Done
  | Poisoned of string
  | Failed of string

let state_name = function
  | Queued -> "queued"
  | Running _ -> "running"
  | Done -> "done"
  | Poisoned _ -> "poisoned"
  | Failed _ -> "failed"

type job = {
  id : int;
  tenant : string;
  spec : Proto.spec;
  mutable state : state;
  mutable attempts : int;
  mutable not_before_ns : int64;
  mutable note : string;
}

type t = {
  dir : string;
  journal_path : string;
  mutable writer : Journal.writer option;
  jobs : (int, job) Hashtbl.t;
  mutable next_id : int;
  (* tenant fairness: round-robin by least-recently-picked tenant *)
  last_pick : (string, int) Hashtbl.t;
  mutable pick_seq : int;
}

let fail fmt = Hb_error.fail ~component:"queue" fmt

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let header_json =
  Json.Obj
    [
      ("type", Json.String "header");
      ("journal", Json.String "hb-serve-queue");
      ("version", Json.Int 1);
    ]

let int_field path j key =
  match Option.bind (Json.member key j) Json.to_int with
  | Some n -> n
  | None -> fail "%s: record is missing integer field %S" path key

let str_field path j key =
  match Json.member key j with
  | Some (Json.String s) -> s
  | _ -> fail "%s: record is missing string field %S" path key

let find t id = Hashtbl.find_opt t.jobs id

let require t path id =
  match find t id with
  | Some j -> j
  | None ->
    fail "%s: record references job %d before its submit record" path id

(* Replay one journaled transition into the in-memory table. *)
let replay t path j =
  match Journal.record_type j with
  | Some "header" -> ()
  | Some "submit" ->
    let id = int_field path j "job" in
    let spec =
      match Json.member "spec" j with
      | Some s -> Proto.spec_of_json s
      | None -> fail "%s: submit record for job %d has no spec" path id
    in
    Hashtbl.replace t.jobs id
      {
        id;
        tenant = spec.Proto.tenant;
        spec;
        state = Queued;
        attempts = 0;
        not_before_ns = 0L;
        note = "";
      };
    if id >= t.next_id then t.next_id <- id + 1
  | Some "start" ->
    let job = require t path (int_field path j "job") in
    job.attempts <- int_field path j "attempt";
    job.state <- Running 0
  | Some "requeue" ->
    let job = require t path (int_field path j "job") in
    job.state <- Queued;
    job.note <- str_field path j "reason";
    (* re-apply the journaled backoff delay from replay time: a restart
       must not turn a crash-looping job's gate into an immediate retry
       stampede (absolute deadlines are monotonic-clock values, so only
       the relative delay is meaningful across processes) *)
    let backoff_s =
      match Json.member "backoff_s" j with
      | Some (Json.Float f) -> f
      | Some (Json.Int n) -> float_of_int n
      | _ -> 0.
    in
    job.not_before_ns <-
      (if backoff_s > 0. then
         Int64.add (Clock.now_ns ()) (Clock.ns_of_s backoff_s)
       else 0L)
  | Some "done" ->
    let job = require t path (int_field path j "job") in
    job.state <- Done
  | Some "poisoned" ->
    let job = require t path (int_field path j "job") in
    job.state <- Poisoned (str_field path j "reason");
    job.note <- str_field path j "reason"
  | Some "failed" ->
    let job = require t path (int_field path j "job") in
    job.state <- Failed (str_field path j "error");
    job.note <- str_field path j "error"
  | Some other -> fail "%s: unknown queue record type %S" path other
  | None -> fail "%s: queue record has no type field" path

let check_header path records =
  match records with
  | [] -> ()
  | first :: _ -> (
    match (Journal.record_type first, Json.member "journal" first) with
    | Some "header", Some (Json.String "hb-serve-queue") -> ()
    | _ ->
      fail
        "%s is not a daemon queue journal (expected an hb-serve-queue \
         header record)"
        path)

let open_ ~dir =
  mkdir_p dir;
  mkdir_p (Filename.concat dir "jobs");
  let journal_path = Filename.concat dir "queue.jsonl" in
  let t =
    {
      dir;
      journal_path;
      writer = None;
      jobs = Hashtbl.create 64;
      next_id = 1;
      last_pick = Hashtbl.create 8;
      pick_seq = 0;
    }
  in
  let existing =
    Sys.file_exists journal_path
    && (Unix.stat journal_path).Unix.st_size > 0
  in
  if existing then begin
    (* torn tails are dropped by [read] and repaired by [append_to];
       a corrupt record mid-file is a typed error naming the line *)
    let records = Journal.read journal_path in
    check_header journal_path records;
    (match records with
    | [] -> fail "%s exists but holds no complete records" journal_path
    | _ :: rest -> List.iter (replay t journal_path) rest);
    (* pids do not survive the daemon: whatever was running when it
       died is re-admitted, attempts intact *)
    Hashtbl.iter
      (fun _ job ->
        match job.state with Running _ -> job.state <- Queued | _ -> ())
      t.jobs;
    t.writer <- Some (Journal.append_to journal_path)
  end
  else begin
    let w = Journal.create journal_path in
    Journal.append w header_json;
    t.writer <- Some w
  end;
  t

let close t =
  match t.writer with
  | Some w ->
    t.writer <- None;
    Journal.close w
  | None -> ()

let path t = t.journal_path

let job_dir t id = Filename.concat (Filename.concat t.dir "jobs") ("j" ^ string_of_int id)

let append t j =
  match t.writer with
  | Some w -> Journal.append w j
  | None -> fail "queue %s is closed" t.journal_path

let submit t ~spec =
  let id = t.next_id in
  t.next_id <- id + 1;
  let job =
    {
      id;
      tenant = spec.Proto.tenant;
      spec;
      state = Queued;
      attempts = 0;
      not_before_ns = 0L;
      note = "";
    }
  in
  (* artifact directory first: a mkdir that fails after the fsync'd
     submit record would leave a durably acknowledged job behind a 500,
     inviting a duplicate resubmit.  An orphan directory from a crash
     before the journal write is harmless (mkdir_p tolerates it on the
     retry).  Then journal — the fsync'd record is the acknowledgement —
     and index. *)
  mkdir_p (job_dir t id);
  append t
    (Json.Obj
       [
         ("type", Json.String "submit");
         ("job", Json.Int id);
         ("spec", Proto.spec_to_json spec);
       ]);
  Hashtbl.replace t.jobs id job;
  job

let jobs t =
  List.sort
    (fun a b -> compare a.id b.id)
    (Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs [])

let next_eligible t ~now_ns =
  let eligible =
    List.filter
      (fun j -> j.state = Queued && j.not_before_ns <= now_ns)
      (jobs t)
  in
  match eligible with
  | [] -> None
  | _ ->
    (* least-recently-picked tenant first (ties break on tenant name,
       then lowest id): a tenant flooding the queue cannot starve the
       others *)
    let rank tenant =
      match Hashtbl.find_opt t.last_pick tenant with
      | Some seq -> seq
      | None -> 0
    in
    let best =
      List.fold_left
        (fun acc j ->
          match acc with
          | None -> Some j
          | Some b ->
            let cj = (rank j.tenant, j.tenant, j.id)
            and cb = (rank b.tenant, b.tenant, b.id) in
            if cj < cb then Some j else acc)
        None eligible
    in
    (match best with
    | Some j ->
      t.pick_seq <- t.pick_seq + 1;
      Hashtbl.replace t.last_pick j.tenant t.pick_seq
    | None -> ());
    best

let mark_start t job ~pid =
  job.attempts <- job.attempts + 1;
  append t
    (Json.Obj
       [
         ("type", Json.String "start");
         ("job", Json.Int job.id);
         ("attempt", Json.Int job.attempts);
       ]);
  job.state <- Running pid

let mark_requeue t ?(backoff_s = 0.) job ~reason ~not_before_ns =
  append t
    (Json.Obj
       [
         ("type", Json.String "requeue");
         ("job", Json.Int job.id);
         ("attempt", Json.Int job.attempts);
         ("reason", Json.String reason);
         ("backoff_s", Json.Float backoff_s);
       ]);
  job.state <- Queued;
  job.note <- reason;
  job.not_before_ns <- not_before_ns

let mark_done t job =
  append t (Json.Obj [ ("type", Json.String "done"); ("job", Json.Int job.id) ]);
  job.state <- Done

let mark_poisoned t job ~reason =
  append t
    (Json.Obj
       [
         ("type", Json.String "poisoned");
         ("job", Json.Int job.id);
         ("reason", Json.String reason);
       ]);
  job.state <- Poisoned reason;
  job.note <- reason

let mark_failed t job ~error =
  append t
    (Json.Obj
       [
         ("type", Json.String "failed");
         ("job", Json.Int job.id);
         ("error", Json.String error);
       ]);
  job.state <- Failed error;
  job.note <- error

let counts t =
  Hashtbl.fold
    (fun _ j (q, r, d, p, f) ->
      match j.state with
      | Queued -> (q + 1, r, d, p, f)
      | Running _ -> (q, r + 1, d, p, f)
      | Done -> (q, r, d + 1, p, f)
      | Poisoned _ -> (q, r, d, p + 1, f)
      | Failed _ -> (q, r, d, p, f + 1))
    t.jobs (0, 0, 0, 0, 0)

let tenant_queued t tenant =
  Hashtbl.fold
    (fun _ j acc ->
      match j.state with
      | (Queued | Running _) when j.tenant = tenant -> acc + 1
      | _ -> acc)
    t.jobs 0

let summary_json job =
  Json.Obj
    [
      ("job", Json.String ("j" ^ string_of_int job.id));
      ("tenant", Json.String job.tenant);
      ("workload", Json.String job.spec.Proto.workload);
      ("state", Json.String (state_name job.state));
      ("attempts", Json.Int job.attempts);
      ("note", Json.String job.note);
    ]
