(** Bounded admission and pressure-driven degradation: the daemon sheds
    load with typed [overloaded] responses and shrinks its worker pool
    under memory pressure rather than OOMing mid-campaign; a failing
    queue disk refuses new work outright because an un-journalable
    submission cannot be acknowledged durably. *)

type level = Normal | Shrink | Refuse

let level_name = function
  | Normal -> "normal"
  | Shrink -> "shrink"
  | Refuse -> "refuse"

let level_rank = function Normal -> 0 | Shrink -> 1 | Refuse -> 2

type config = {
  max_queued : int;
  max_per_tenant : int;
  retry_after_s : float;
  workers : int;
  shrink_workers : int;
  mem_soft_kb : int;
  mem_hard_kb : int;
}

let default ~workers =
  {
    max_queued = 64;
    max_per_tenant = 32;
    retry_after_s = 2.;
    workers;
    shrink_workers = max 1 (workers / 2);
    mem_soft_kb = 0;
    mem_hard_kb = 0;
  }

type decision = Admit | Overloaded of string

let decide cfg ~level ~queued ~tenant ~tenant_queued =
  match level with
  | Refuse ->
    Overloaded "daemon is refusing new work under resource pressure"
  | Normal | Shrink ->
    if queued >= cfg.max_queued then
      Overloaded
        (Printf.sprintf "queue is full (%d jobs queued or running, bound %d)"
           queued cfg.max_queued)
    else if tenant_queued >= cfg.max_per_tenant then
      Overloaded
        (Printf.sprintf
           "tenant %S is at its quota (%d jobs queued or running, bound %d)"
           tenant tenant_queued cfg.max_per_tenant)
    else Admit

(* VmRSS (current resident set) rather than Host.peak_rss_kb's VmHWM:
   pressure decisions need the live number, not the high-water mark. *)
let rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> 0
          | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
              let digits =
                String.to_seq line
                |> Seq.filter (fun c -> c >= '0' && c <= '9')
                |> String.of_seq
              in
              match int_of_string_opt digits with Some n -> n | None -> 0
            else go ()
        in
        go ())

let probe cfg ~rss_kb ~disk_failing =
  if disk_failing then Refuse
  else if cfg.mem_hard_kb > 0 && rss_kb >= cfg.mem_hard_kb then Refuse
  else if cfg.mem_soft_kb > 0 && rss_kb >= cfg.mem_soft_kb then Shrink
  else Normal

let workers_for cfg = function
  | Normal -> cfg.workers
  | Shrink | Refuse -> min cfg.workers cfg.shrink_workers
