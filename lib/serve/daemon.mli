(** The simulation daemon: a persistent multi-tenant job service over
    the loopback HTTP plane.

    [POST /jobs] submits a campaign spec ({!Proto.spec}); the fsync'd
    queue-journal record is the acknowledgement, so an accepted job
    survives a SIGKILL of the daemon and resumes byte-identically on
    restart.  Jobs run in forked worker processes (one campaign each,
    journaled under [dir/jobs/jN/]), under a per-job wall deadline and a
    watchdog; a crashed or stuck attempt is requeued with capped
    exponential backoff until the attempt budget poisons it.  Admission
    is bounded (global depth + per-tenant fairness) and pressure-aware:
    overload is a typed [overloaded] response with a retry-after hint,
    memory pressure shrinks the worker pool, and a failing queue disk
    refuses new work — while [/metrics], [/progress] and per-job status
    keep serving throughout.

    Routes: [POST /jobs], [GET /jobs], [GET /jobs/jN],
    [GET /jobs/jN/report], [POST /shutdown], plus the built-in
    [GET /metrics] / [/progress] / [/healthz]. *)

type config = {
  port : int;  (** 0 binds an ephemeral port (tests) *)
  dir : string;  (** queue root: journal + per-job artifacts *)
  admission : Admission.config;
  job_deadline_s : float;  (** default per-job wall budget *)
  max_attempts : int;  (** started attempts before a job is poisoned *)
  backoff_base_s : float;  (** requeue backoff: base * 2^(attempt-1) *)
  backoff_cap_s : float;  (** ... clamped here *)
  watchdog_grace_s : float;
      (** SIGKILL a worker this long after its deadline should have made
          it exit on its own *)
  poll_interval_s : float;
  read_timeout_s : float;  (** per-connection HTTP read timeout *)
  max_request : int;  (** HTTP request size bound *)
  log : (string -> unit) option;
}

val default : port:int -> dir:string -> config
(** 2 workers, 64-job queue, 32 per tenant, 300 s job deadline, 3
    attempts, 0.25 s–5 s backoff, 5 s watchdog grace. *)

type t

val start : config -> t
(** Open (replaying) the queue journal, bind the HTTP plane, and start
    the scheduler thread.  Raises a typed {!Hb_error.Hb_error} if the
    port is taken or the journal is corrupt. *)

val port : t -> int
val queue : t -> Queue.t

val stop : ?hard:bool -> t -> unit
(** Graceful by default: SIGKILL the worker children but journal their
    requeue (reason ["daemon stopping"]), close the queue and the HTTP
    plane.  [~hard:true] simulates a daemon crash for tests: children
    are killed and nothing else is journaled, so a reopened queue
    replays the same state a SIGKILLed daemon would leave behind. *)

val run : config -> unit
(** [start], then serve until a SIGTERM/SIGINT ({!Hb_recover.Interrupt})
    or a [POST /shutdown] finishes draining the running attempts; then
    stop gracefully.  Queued jobs stay journaled for the next start. *)
