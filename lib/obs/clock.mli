(** The one host clock: a monotonic nanosecond reader.

    All wall-clock measurement (span profiling, deadlines, ETAs) routes
    through here so the determinism grep-gate can confine the clock
    surface to a whitelist of host-side modules.  Readings are monotonic
    non-decreasing; none of them may leak into deterministic artifacts. *)

val now_ns : unit -> int64
(** Monotonic nanoseconds since an arbitrary origin; successive calls
    never decrease. *)

val ns_of_s : float -> int64
val s_of_ns : int64 -> float

val elapsed_s : t0:int64 -> float
(** Seconds since the [now_ns] reading [t0]; clamped at 0. *)
