(** Minimal JSON tree, printer and parser — the single serialization
    point for every machine-readable artifact the simulator emits
    (metrics snapshots, trace events, bench results).  The parser exists
    so tests and tooling can read those artifacts back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val escape_to : Buffer.t -> string -> unit
(** Append [s] as a JSON string literal — surrounding quotes included,
    with quote, backslash, newline and other control characters escaped.
    This is the single escaper every emitter in the tree routes through
    (the printer above, the Chrome-trace sinks in [Host] and [Fleet],
    the speedscope export in [Flame]); hand-rolled name emission is a
    bug. *)

val to_string : t -> string
(** Compact single-line rendering (JSONL-safe: no raw newlines). *)

val to_string_pretty : t -> string
(** Indented rendering for artifacts meant to be human-readable too. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document; raises {!Parse_error} on malformed
    input or trailing garbage. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any. *)

val to_int : t -> int option
val to_list : t -> t list option
