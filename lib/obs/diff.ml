(** Differential overhead reports: load two attribution dumps
    ({!Attr.to_json} files — e.g. the unbounded baseline vs. a HardBound
    encoding, or two encodings) and rank where the cycles went.

    PCs do not line up across instrumentation modes (setbound insertion
    shifts every subsequent index), so sites are aggregated by
    (function, source line) before subtracting.  Aggregation preserves
    sums, so the ranked table still adds up exactly to the global [Stats]
    deltas, and the report's aggregate decomposition reproduces the
    Figure-5 segments when side A is the unbounded baseline. *)

type site = {
  fn : string;
  line : int;
  instrs : int;
  uops : int;
  cycles : int;
  data_stalls : int;
  tag_stalls : int;
  bb_stalls : int;
  check_uops : int;
  metadata_uops : int;
  checked_derefs : int;
  setbounds : int;
}

type dump = { label : string; sites : site list }

let parse_fail fmt =
  Printf.ksprintf (fun m -> raise (Json.Parse_error ("attr dump: " ^ m))) fmt

let geti obj key =
  match Option.bind (Json.member key obj) Json.to_int with
  | Some v -> v
  | None -> parse_fail "missing int field %S" key

let site_of_json j =
  let fn =
    match Json.member "fn" j with
    | Some (Json.String s) -> s
    | _ -> parse_fail "site missing \"fn\""
  in
  {
    fn;
    line = geti j "line";
    instrs = geti j "instrs";
    uops = geti j "uops";
    cycles = geti j "cycles";
    data_stalls = geti j "data_stalls";
    tag_stalls = geti j "tag_stalls";
    bb_stalls = geti j "bb_stalls";
    check_uops = geti j "check_uops";
    metadata_uops = geti j "metadata_uops";
    checked_derefs = geti j "checked_derefs";
    setbounds = geti j "setbounds";
  }

let add_sites a b =
  {
    a with
    instrs = a.instrs + b.instrs;
    uops = a.uops + b.uops;
    cycles = a.cycles + b.cycles;
    data_stalls = a.data_stalls + b.data_stalls;
    tag_stalls = a.tag_stalls + b.tag_stalls;
    bb_stalls = a.bb_stalls + b.bb_stalls;
    check_uops = a.check_uops + b.check_uops;
    metadata_uops = a.metadata_uops + b.metadata_uops;
    checked_derefs = a.checked_derefs + b.checked_derefs;
    setbounds = a.setbounds + b.setbounds;
  }

(** Aggregate per-PC sites by (fn, line) — the key that survives
    re-compilation under a different mode. *)
let aggregate sites =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun s ->
      let key = (s.fn, s.line) in
      match Hashtbl.find_opt tbl key with
      | Some prev -> Hashtbl.replace tbl key (add_sites prev s)
      | None -> Hashtbl.replace tbl key s)
    sites;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun a b -> compare (a.fn, a.line) (b.fn, b.line))

let of_json j =
  let label =
    match Json.member "label" j with Some (Json.String s) -> s | _ -> "?"
  in
  let sites =
    match Option.bind (Json.member "sites" j) Json.to_list with
    | Some l -> List.map site_of_json l
    | None -> parse_fail "missing \"sites\" list"
  in
  { label; sites = aggregate sites }

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json (Json.of_string s)

(* ---- differencing --------------------------------------------------- *)

(** Per-(fn, line) delta, B minus A. *)
type delta = {
  d_fn : string;
  d_line : int;
  a_cycles : int;
  b_cycles : int;
  d_cycles : int;
  d_instrs : int;
  d_uops : int;
  d_data : int;
  d_tag : int;
  d_bb : int;
  d_check : int;
  d_meta : int;
  d_setbounds : int;
}

type report = {
  a_label : string;
  b_label : string;
  deltas : delta list;  (* largest cycle delta first *)
  total : delta;        (* sums exactly to the global Stats deltas *)
}

let zero_site fn line =
  {
    fn; line; instrs = 0; uops = 0; cycles = 0; data_stalls = 0;
    tag_stalls = 0; bb_stalls = 0; check_uops = 0; metadata_uops = 0;
    checked_derefs = 0; setbounds = 0;
  }

let delta_of a b =
  {
    d_fn = b.fn;
    d_line = b.line;
    a_cycles = a.cycles;
    b_cycles = b.cycles;
    d_cycles = b.cycles - a.cycles;
    d_instrs = b.instrs - a.instrs;
    d_uops = b.uops - a.uops;
    d_data = b.data_stalls - a.data_stalls;
    d_tag = b.tag_stalls - a.tag_stalls;
    d_bb = b.bb_stalls - a.bb_stalls;
    d_check = b.check_uops - a.check_uops;
    d_meta = b.metadata_uops - a.metadata_uops;
    d_setbounds = b.setbounds - a.setbounds;
  }

let diff (a : dump) (b : dump) : report =
  let tbl = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace tbl (s.fn, s.line) (Some s, None)) a.sites;
  List.iter
    (fun s ->
      match Hashtbl.find_opt tbl (s.fn, s.line) with
      | Some (sa, _) -> Hashtbl.replace tbl (s.fn, s.line) (sa, Some s)
      | None -> Hashtbl.replace tbl (s.fn, s.line) (None, Some s))
    b.sites;
  let deltas =
    Hashtbl.fold
      (fun (fn, line) (sa, sb) acc ->
        let za = Option.value sa ~default:(zero_site fn line) in
        let zb = Option.value sb ~default:(zero_site fn line) in
        delta_of za { zb with fn; line } :: acc)
      tbl []
    |> List.sort (fun x y ->
           compare (y.d_cycles, (x.d_fn, x.d_line))
             (x.d_cycles, (y.d_fn, y.d_line)))
  in
  let total =
    List.fold_left
      (fun t d ->
        {
          t with
          a_cycles = t.a_cycles + d.a_cycles;
          b_cycles = t.b_cycles + d.b_cycles;
          d_cycles = t.d_cycles + d.d_cycles;
          d_instrs = t.d_instrs + d.d_instrs;
          d_uops = t.d_uops + d.d_uops;
          d_data = t.d_data + d.d_data;
          d_tag = t.d_tag + d.d_tag;
          d_bb = t.d_bb + d.d_bb;
          d_check = t.d_check + d.d_check;
          d_meta = t.d_meta + d.d_meta;
          d_setbounds = t.d_setbounds + d.d_setbounds;
        })
      (delta_of (zero_site "TOTAL" 0) (zero_site "TOTAL" 0))
      deltas
  in
  { a_label = a.label; b_label = b.label; deltas; total }

let loc d =
  if d.d_line > 0 then Printf.sprintf "%s:%d" d.d_fn d.d_line
  else if d.d_line < 0 then Printf.sprintf "%s:rt.%d" d.d_fn (-d.d_line)
  else d.d_fn

(** Ranked overhead-delta table plus the Figure-5 aggregate decomposition
    of the delta as fractions of side A's cycles. *)
let to_table ?(top = 20) r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "overhead delta: %s -> %s (total %+d cycles, %+.1f%%)\n\n"
    r.a_label r.b_label r.total.d_cycles
    (if r.total.a_cycles = 0 then 0.0
     else
       100.0 *. float_of_int r.total.d_cycles
       /. float_of_int r.total.a_cycles);
  Printf.bprintf b "%-28s %10s %10s %8s %8s %8s %8s %6s %6s %5s\n" "location"
    "A-cycles" "B-cycles" "d-cyc" "d-data" "d-tag" "d-bb" "d-chk" "d-meta"
    "d-sb";
  let shown =
    if top > 0 then List.filteri (fun i _ -> i < top) r.deltas else r.deltas
  in
  List.iter
    (fun d ->
      Printf.bprintf b "%-28s %10d %10d %+8d %+8d %+8d %+8d %+6d %+6d %+5d\n"
        (loc d) d.a_cycles d.b_cycles d.d_cycles d.d_data d.d_tag d.d_bb
        d.d_check d.d_meta d.d_setbounds)
    shown;
  let omitted = List.length r.deltas - List.length shown in
  if omitted > 0 then Printf.bprintf b "... (%d more sites)\n" omitted;
  Printf.bprintf b "%-28s %10d %10d %+8d %+8d %+8d %+8d %+6d %+6d %+5d\n"
    "TOTAL" r.total.a_cycles r.total.b_cycles r.total.d_cycles r.total.d_data
    r.total.d_tag r.total.d_bb r.total.d_check r.total.d_meta
    r.total.d_setbounds;
  if r.total.a_cycles > 0 then begin
    let pct v = 100.0 *. float_of_int v /. float_of_int r.total.a_cycles in
    Buffer.add_string b "\nFigure-5 decomposition of the delta (% of A):\n";
    Printf.bprintf b "  setbound instrs   %+6.2f%%\n" (pct r.total.d_setbounds);
    Printf.bprintf b "  meta/check uops   %+6.2f%%\n"
      (pct (r.total.d_meta + r.total.d_check));
    Printf.bprintf b "  meta stalls       %+6.2f%%\n"
      (pct (r.total.d_tag + r.total.d_bb));
    Printf.bprintf b "  data pollution    %+6.2f%%\n" (pct r.total.d_data);
    Printf.bprintf b "  total overhead    %+6.2f%%\n" (pct r.total.d_cycles)
  end;
  Buffer.contents b

let delta_json d =
  Json.Obj
    [
      ("fn", Json.String d.d_fn);
      ("line", Json.Int d.d_line);
      ("a_cycles", Json.Int d.a_cycles);
      ("b_cycles", Json.Int d.b_cycles);
      ("d_cycles", Json.Int d.d_cycles);
      ("d_instrs", Json.Int d.d_instrs);
      ("d_uops", Json.Int d.d_uops);
      ("d_data_stalls", Json.Int d.d_data);
      ("d_tag_stalls", Json.Int d.d_tag);
      ("d_bb_stalls", Json.Int d.d_bb);
      ("d_check_uops", Json.Int d.d_check);
      ("d_metadata_uops", Json.Int d.d_meta);
      ("d_setbounds", Json.Int d.d_setbounds);
    ]

let to_json r =
  Json.Obj
    [
      ("a", Json.String r.a_label);
      ("b", Json.String r.b_label);
      ("total", delta_json r.total);
      ("deltas", Json.List (List.map delta_json r.deltas));
    ]
