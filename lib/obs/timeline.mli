(** Cycle-windowed flight recorder.

    Every [interval] simulated cycles the machine closes a *window*
    holding the delta of every cumulative counter it samples plus a
    point-in-time census of the shadow metadata (live bounded pointers,
    distinct objects, tag/shadow footprint, encoding distribution).
    Windows stream to optional JSONL/CSV sinks and accumulate in memory
    for the terminal phase report.

    Driven by the machine, like {!Profile} and {!Attr}: this module sees
    only flat counter lists and a census record.  Off by default; when no
    timeline is attached the simulator pays one [None] check per retired
    instruction. *)

(** Point-in-time census of memory-resident bounded pointers, computed by
    the machine from the tag space (registers are excluded). *)
type census = {
  live_ptrs : int;      (** tagged memory words decoding to a pointer *)
  live_objects : int;   (** distinct (base, bound) pairs among them *)
  tag_bytes : int;      (** non-zero tag-space bytes *)
  shadow_bytes : int;   (** base/bound shadow bytes in use (8 per full ptr) *)
  tag_pages : int;      (** tag-space pages materialized *)
  shadow_pages : int;   (** shadow-space pages materialized *)
  enc_ext4 : int;       (** inline under the external 4-bit tag scheme *)
  enc_int4 : int;       (** inline under the internal 4-bit scheme *)
  enc_int11 : int;      (** inline under the internal 11-bit scheme *)
  enc_full : int;       (** uncompressed: metadata in the shadow space *)
}

val empty_census : census

val census_fields : census -> (string * int) list
(** Flat association list, in the JSON/CSV column order. *)

type window = {
  index : int;
  start_cycle : int;
  end_cycle : int;
  deltas : (string * int) list;  (** counter increments inside the window *)
  census : census;               (** state at the window's close *)
}

type sink = { write : window -> unit; close : unit -> unit }

type t = {
  interval : int;
  mutable next_boundary : int;
      (** first cycle at or past which the machine must sample — read on
          the hot path, advanced by {!record}; treat as read-only *)
  mutable prev : (string * int) list;
  mutable prev_cycle : int;
  mutable windows_rev : window list;
  mutable n_windows : int;
  mutable sinks : sink list;
}

val create : interval:int -> t
(** Raises {!Hb_error.Hb_error} when [interval <= 0]. *)

val interval : t -> int

val add_sink : t -> sink -> unit

val close_sinks : t -> unit
(** Close (and drop) every attached sink; idempotent.  Callers wrap the
    run in [Fun.protect ~finally:close_sinks] so partial files are still
    flushed when the run dies with [Hb_error]. *)

val record : t -> cycle:int -> fields:(string * int) list -> census:census -> unit
(** Close a window at [cycle]: deltas are [fields] minus the previous
    window's cumulative snapshot.  Advances [next_boundary] to the next
    interval multiple strictly past [cycle]. *)

val flush : t -> cycle:int -> fields:(string * int) list -> census:census -> unit
(** Close the final partial window (no-op if nothing retired since the
    last close); runs shorter than one interval get their only window
    here. *)

val windows : t -> window list
(** Recorded windows, oldest first. *)

val sums : t -> (string * int) list
(** Per-key sums of every window's deltas. *)

val check : t -> expect:(string * int) list -> (unit, string) result
(** The accounting identity: {!sums} must equal the global cumulative
    counters on every shared key (call {!flush} first). *)

val window_json : window -> Json.t

val jsonl_sink : string -> sink
(** One compact JSON object per line per window. *)

val csv_sink : string -> sink
(** One row per window; the header comes from the first window's keys. *)

val export_census : census -> Metrics.t -> unit
(** Final-census gauges: [hb.shadow_bytes], [hb.live_bounded_objects],
    [hb.encoding_dist{kind=...}] (Prometheus: [hb_shadow_bytes], ...). *)

val report : ?width:int -> t -> string
(** Terminal phase report: per-counter sparklines, a windows × counters
    heatmap in Unicode blocks, and the census evolution. *)
