(** Cycle-windowed flight recorder: the time-resolved view every other
    observability surface (metrics, profiles, per-PC attribution) lacks.

    Every [interval] simulated cycles the machine closes a *window*: the
    delta of every cumulative counter it was given (the union of
    [Stats.fields] and [Hierarchy.fields]) plus a point-in-time *census*
    of the shadow metadata — live memory-resident bounded pointers, the
    distinct (base, bound) objects they name, tag/shadow-space footprint,
    and the live-pointer encoding distribution (Section 4's compression
    claim is exactly a claim about that distribution).

    The module is driven by the machine (like {!Profile} and {!Attr}): it
    never sees simulator types, only flat counter lists and a census
    record, so the dependency points obs-ward.  When no timeline is
    attached the machine's only cost is one [None] check per retired
    instruction; this module allocates only at window boundaries.

    Accounting identity: the per-key sum of window deltas equals the final
    cumulative counters ({!check}, mirroring [Attr.check]) — a leak means
    the sampler itself is lying and the CLI exits non-zero. *)

type census = {
  live_ptrs : int;      (** tagged memory words decoding to a pointer *)
  live_objects : int;   (** distinct (base, bound) pairs among them *)
  tag_bytes : int;      (** non-zero tag-space bytes *)
  shadow_bytes : int;   (** base/bound shadow bytes in use (8/full ptr) *)
  tag_pages : int;      (** tag-space pages materialized *)
  shadow_pages : int;   (** shadow-space pages materialized *)
  enc_ext4 : int;       (** inline under the external 4-bit tag scheme *)
  enc_int4 : int;       (** inline under the internal 4-bit scheme *)
  enc_int11 : int;      (** inline under the internal 11-bit scheme *)
  enc_full : int;       (** uncompressed: metadata in the shadow space *)
}

let empty_census =
  {
    live_ptrs = 0;
    live_objects = 0;
    tag_bytes = 0;
    shadow_bytes = 0;
    tag_pages = 0;
    shadow_pages = 0;
    enc_ext4 = 0;
    enc_int4 = 0;
    enc_int11 = 0;
    enc_full = 0;
  }

let census_fields c =
  [
    ("live_ptrs", c.live_ptrs);
    ("live_objects", c.live_objects);
    ("tag_bytes", c.tag_bytes);
    ("shadow_bytes", c.shadow_bytes);
    ("tag_pages", c.tag_pages);
    ("shadow_pages", c.shadow_pages);
    ("enc_ext4", c.enc_ext4);
    ("enc_int4", c.enc_int4);
    ("enc_int11", c.enc_int11);
    ("enc_full", c.enc_full);
  ]

type window = {
  index : int;
  start_cycle : int;
  end_cycle : int;
  deltas : (string * int) list;  (** counter increments inside the window *)
  census : census;               (** state at the window's close *)
}

type sink = { write : window -> unit; close : unit -> unit }

type t = {
  interval : int;
  mutable next_boundary : int;
      (* first cycle count at or past which the machine must sample; read
         on the hot path, advanced by [record] *)
  mutable prev : (string * int) list;  (* cumulative counters at last close *)
  mutable prev_cycle : int;
  mutable windows_rev : window list;
  mutable n_windows : int;
  mutable sinks : sink list;
}

let create ~interval =
  if interval <= 0 then
    Hb_error.fail ~component:"timeline"
      "sample interval must be positive (got %d)" interval;
  {
    interval;
    next_boundary = interval;
    prev = [];
    prev_cycle = 0;
    windows_rev = [];
    n_windows = 0;
    sinks = [];
  }

let interval t = t.interval

let add_sink t s = t.sinks <- t.sinks @ [ s ]

let close_sinks t =
  let sinks = t.sinks in
  t.sinks <- [];
  List.iter (fun s -> s.close ()) sinks

let record t ~cycle ~fields ~census =
  let prev = t.prev in
  let deltas =
    List.map
      (fun (k, v) ->
        match List.assoc_opt k prev with
        | Some p -> (k, v - p)
        | None -> (k, v))
      fields
  in
  let w =
    {
      index = t.n_windows;
      start_cycle = t.prev_cycle;
      end_cycle = cycle;
      deltas;
      census;
    }
  in
  t.prev <- fields;
  t.prev_cycle <- cycle;
  t.n_windows <- t.n_windows + 1;
  t.windows_rev <- w :: t.windows_rev;
  (* a single instruction can overshoot the boundary by a long stall: jump
     to the next multiple of the interval strictly past [cycle] *)
  t.next_boundary <- ((cycle / t.interval) + 1) * t.interval;
  List.iter (fun s -> s.write w) t.sinks

(** Close the final (partial) window.  Also the only window for runs
    shorter than one interval, so every enabled run records at least one. *)
let flush t ~cycle ~fields ~census =
  if t.n_windows = 0 || cycle > t.prev_cycle then
    record t ~cycle ~fields ~census

let windows t = List.rev t.windows_rev

(** Per-key sums of every window's deltas, in the key order of the first
    window (all windows carry the same key set). *)
let sums t =
  match windows t with
  | [] -> []
  | first :: _ as ws ->
    List.map
      (fun (k, _) ->
        ( k,
          List.fold_left
            (fun acc w ->
              match List.assoc_opt k w.deltas with
              | Some d -> acc + d
              | None -> acc)
            0 ws ))
      first.deltas

(** Compare {!sums} against the global cumulative counters; every key
    present on both sides must agree exactly (requires {!flush} first). *)
let check t ~expect =
  let bad =
    List.filter_map
      (fun (k, v) ->
        match List.assoc_opt k expect with
        | Some e when e <> v ->
          Some (Printf.sprintf "%s: windows %d <> global %d" k v e)
        | _ -> None)
      (sums t)
  in
  match bad with
  | [] -> Ok ()
  | msgs -> Error ("timeline window-sum leak: " ^ String.concat "; " msgs)

(* ---- file sinks ------------------------------------------------------ *)

let window_json w =
  Json.Obj
    [
      ("window", Json.Int w.index);
      ("start_cycle", Json.Int w.start_cycle);
      ("end_cycle", Json.Int w.end_cycle);
      ( "deltas",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) w.deltas) );
      ( "census",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (census_fields w.census))
      );
    ]

(** One JSON object per line per window (same idiom as [Trace.file_sink]). *)
let jsonl_sink path =
  let oc = open_out path in
  {
    write =
      (fun w ->
        output_string oc (Json.to_string (window_json w));
        output_char oc '\n');
    close = (fun () -> close_out_noerr oc);
  }

(** Flat CSV, one row per window.  The header is derived from the first
    window's delta keys plus the census fields, so the column set follows
    whatever counters the machine feeds the timeline. *)
let csv_sink path =
  let oc = open_out path in
  let header_done = ref false in
  let write w =
    if not !header_done then begin
      header_done := true;
      output_string oc
        (String.concat ","
           ([ "window"; "start_cycle"; "end_cycle" ]
           @ List.map fst w.deltas
           @ List.map fst (census_fields w.census)));
      output_char oc '\n'
    end;
    output_string oc
      (String.concat ","
         (List.map string_of_int
            ([ w.index; w.start_cycle; w.end_cycle ]
            @ List.map snd w.deltas
            @ List.map snd (census_fields w.census))));
    output_char oc '\n'
  in
  { write; close = (fun () -> close_out_noerr oc) }

(* ---- metrics gauges --------------------------------------------------- *)

(** Final-census gauges for the Prometheus exposition: [hb_shadow_bytes],
    [hb_live_bounded_objects], [hb_encoding_dist{kind=...}]. *)
let export_census (c : census) (reg : Metrics.t) =
  Metrics.set_counter reg "hb.shadow_bytes" c.shadow_bytes;
  Metrics.set_counter reg "hb.tag_bytes" c.tag_bytes;
  Metrics.set_counter reg "hb.live_pointers" c.live_ptrs;
  Metrics.set_counter reg "hb.live_bounded_objects" c.live_objects;
  List.iter
    (fun (kind, v) ->
      Metrics.set_counter reg ~labels:[ ("kind", kind) ] "hb.encoding_dist" v)
    [
      ("extern4", c.enc_ext4);
      ("intern4", c.enc_int4);
      ("intern11", c.enc_int11);
      ("full", c.enc_full);
    ]

(* ---- terminal phase report ------------------------------------------- *)

let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                      "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                      "\xe2\x96\x87"; "\xe2\x96\x88" |]
(* ▁▂▃▄▅▆▇█ *)

let shade_levels = [| " "; "\xe2\x96\x91"; "\xe2\x96\x92"; "\xe2\x96\x93";
                      "\xe2\x96\x88" |]
(* ░▒▓█ *)

let scale levels v vmax =
  if vmax <= 0 || v <= 0 then 0
  else
    let n = Array.length levels in
    min (n - 1) (1 + ((v * (n - 1) - 1) / vmax))

(* Compress a series to at most [width] buckets by summing; keeps the
   phase shape readable for long runs without per-window columns. *)
let downsample ~width xs =
  let n = Array.length xs in
  if n <= width then xs
  else
    Array.init width (fun b ->
        let lo = b * n / width and hi = ((b + 1) * n / width) - 1 in
        let acc = ref 0 in
        for i = lo to max lo hi do
          acc := !acc + xs.(i)
        done;
        !acc)

let sparkline ~width xs =
  let xs = downsample ~width xs in
  let vmax = Array.fold_left max 0 xs in
  String.concat ""
    (Array.to_list (Array.map (fun v -> spark_levels.(scale spark_levels v vmax)) xs))

(** Sparklines for the hottest counters, the census evolution, and a
    windows × counters heatmap (rows scaled to their own maximum). *)
let report ?(width = 48) t =
  let ws = windows t in
  let b = Buffer.create 2048 in
  (match ws with
   | [] -> Buffer.add_string b "timeline: no windows recorded\n"
   | first :: _ ->
     let n = List.length ws in
     Printf.bprintf b
       "timeline: %d window(s), sample interval %d cycles, %d cycles total\n"
       n t.interval (List.nth ws (n - 1)).end_cycle;
     let series key =
       Array.of_list
         (List.map
            (fun w ->
              match List.assoc_opt key w.deltas with Some d -> d | None -> 0)
            ws)
     in
     let keys = List.map fst first.deltas in
     let active =
       List.filter
         (fun k ->
           k <> "cycles" && Array.exists (fun v -> v <> 0) (series k))
         keys
     in
     (* per-counter sparklines, busiest first *)
     let total k = Array.fold_left ( + ) 0 (series k) in
     let ranked =
       List.sort (fun a b -> compare (total b, a) (total a, b)) active
     in
     Buffer.add_string b "\nper-window counter deltas:\n";
     List.iter
       (fun k ->
         Printf.bprintf b "  %-22s %12d  %s\n" k (total k)
           (sparkline ~width (series k)))
       ranked;
     (* windows x counters heatmap *)
     Buffer.add_string b "\nheatmap (rows scaled to their own max):\n";
     List.iter
       (fun k ->
         let xs = downsample ~width (series k) in
         let vmax = Array.fold_left max 0 xs in
         let row =
           String.concat ""
             (Array.to_list
                (Array.map
                   (fun v -> shade_levels.(scale shade_levels v vmax))
                   xs))
         in
         Printf.bprintf b "  %-22s |%s|\n" k row)
       ranked;
     (* shadow-census evolution *)
     Buffer.add_string b "\nshadow-metadata census (at window close):\n";
     let cseries f = Array.of_list (List.map (fun w -> f w.census) ws) in
     List.iter
       (fun (name, f) ->
         let xs = cseries f in
         Printf.bprintf b "  %-22s %12d  %s\n" name xs.(Array.length xs - 1)
           (sparkline ~width xs))
       [
         ("live_ptrs", fun c -> c.live_ptrs);
         ("live_objects", fun c -> c.live_objects);
         ("tag_bytes", fun c -> c.tag_bytes);
         ("shadow_bytes", fun c -> c.shadow_bytes);
       ];
     let last = (List.nth ws (n - 1)).census in
     Printf.bprintf b
       "  final encoding dist    ext4=%d int4=%d int11=%d full=%d\n"
       last.enc_ext4 last.enc_int4 last.enc_int11 last.enc_full);
  Buffer.contents b
