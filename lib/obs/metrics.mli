(** Metrics registry: named counters and histograms with labels.

    Components keep their existing mutable statistics on the hot paths and
    export into a registry at snapshot points — nothing here sits on the
    simulator's per-instruction path.  Snapshots are deterministic (series
    sorted by name then labels), so identical runs serialize identically. *)

type labels = (string * string) list

type counter
type histogram
type t

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
(** Find-or-create the series [(name, labels)]. *)

val inc : ?by:int -> counter -> unit
val set : counter -> int -> unit

val set_counter : t -> ?labels:labels -> string -> int -> unit
(** [set (counter t ?labels name) v] in one call — the idiom for
    export-at-snapshot components. *)

val histogram : t -> ?labels:labels -> string -> histogram

val observe : histogram -> int -> unit
(** Record one observation into power-of-two buckets, tracking
    count/sum/min/max.  Non-positive values land in bucket 0, which the
    text exposition reports as [le="1"]: zeros and negative artifacts are
    clamped into the smallest bucket rather than dropped, while
    [sum]/[min]/[max] still record the raw value. *)

val snapshot : t -> Json.t
(** [{"counters": [...], "histograms": [...]}], deterministically
    ordered. *)

val to_prometheus : t -> string
(** Prometheus/OpenMetrics text exposition of the registry: counters as
    gauges (set-at-snapshot absolutes), histograms as cumulative
    [_bucket{le=...}] series plus [_sum]/[_count]/[_min]/[_max] (min/max
    read 0 while the histogram is empty), terminated by [# EOF].
    Deterministically ordered like {!snapshot}; metric names are
    sanitized ([cpu.cycles] -> [cpu_cycles]). *)
