(** Live status endpoint: a tiny read-only HTTP server on a background
    thread serving [GET /metrics] (OpenMetrics exposition), [/progress]
    (live campaign JSON) and [/healthz].  Handlers only call the
    snapshot callbacks the front end provided; nothing flows back into
    the simulation, so deterministic artifacts are byte-identical with
    and without a server attached. *)

type t

val parse_port : string -> int
(** Parse and validate a [--serve] port.  Raises a typed
    {!Hb_error.Hb_error} with a usage hint for non-numeric input, 0,
    negatives, and ports above 65535. *)

val start :
  ?port:int ->
  metrics:(unit -> string) ->
  progress:(unit -> Json.t) ->
  unit ->
  t
(** Listen on loopback:[port] (default 0: an ephemeral port, for
    tests — the CLI validates user ports via {!parse_port} first) and
    serve on a background thread.  Raises a typed {!Hb_error.Hb_error}
    when the port is already bound or cannot be opened. *)

val port : t -> int
(** The actually bound port (resolves an ephemeral request). *)

val stop : t -> unit
(** Close the listener and join the serve thread. *)
