(** Live status endpoint: a tiny HTTP server on a background thread
    serving [GET /metrics] (OpenMetrics exposition), [/progress] (live
    campaign JSON) and [/healthz].  The built-in routes only call the
    snapshot callbacks the front end provided; nothing flows back into
    the simulation, so deterministic artifacts are byte-identical with
    and without a server attached.  A front end that wants extra routes
    (the hb_serve daemon) supplies a [handler] with first refusal on
    every request.

    Every connection reads under a per-connection timeout and a total
    request size bound, so a stalled or hostile client cannot wedge the
    accept loop: silent sockets get [408], oversized requests [413]. *)

type response = {
  status : string;  (** e.g. ["200 OK"] *)
  content_type : string;
  headers : (string * string) list;  (** extra headers, e.g. Retry-After *)
  body : string;
}

type handler = meth:string -> path:string -> body:string -> response option
(** Custom route hook: [Some response] claims the request, [None] falls
    through to the built-in [GET /metrics], [/progress], [/healthz]
    routes (and [404]/[405] otherwise). *)

val response :
  ?headers:(string * string) list ->
  ?content_type:string ->
  status:string ->
  string ->
  response
(** Build a {!response}; [content_type] defaults to [text/plain]. *)

type t

val parse_port : string -> int
(** Parse and validate a [--serve] port.  Raises a typed
    {!Hb_error.Hb_error} with a usage hint for non-numeric input, 0,
    negatives, and ports above 65535. *)

val start :
  ?port:int ->
  ?read_timeout_s:float ->
  ?max_request:int ->
  ?handler:handler ->
  metrics:(unit -> string) ->
  progress:(unit -> Json.t) ->
  unit ->
  t
(** Listen on loopback:[port] (default 0: an ephemeral port, for
    tests — the CLI validates user ports via {!parse_port} first) and
    serve on a background thread.  [read_timeout_s] (default 5 s) bounds
    each blocking read on a connection; [max_request] (default 64 KiB)
    bounds the request head and body sizes.  Raises a typed
    {!Hb_error.Hb_error} when the port is already bound or cannot be
    opened. *)

val port : t -> int
(** The actually bound port (resolves an ephemeral request). *)

val listen_fd : t -> Unix.file_descr
(** The listening socket — forked children must close their inherited
    copy or the port outlives the daemon. *)

val stop : t -> unit
(** Close the listener and join the serve thread. *)
