(** Host-side observability: hierarchical wall-clock span profiling with
    GC/RSS telemetry.

    A profile is a tree of spans measured against the monotonic {!Clock};
    each span carries the [Gc.quick_stat] delta it covered and optional
    simulated-progress annotations from which throughput gauges derive.
    In a well-formed profile the summed wall time of a span's children
    never exceeds the parent's ({!check}).  All data here is
    host-varying: it flows only to its own sinks (JSON / Chrome-trace),
    the [hb_host_*] gauges, and the live status endpoint — never into
    deterministic artifacts. *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_gcs : int;
  major_gcs : int;
  compactions : int;
}

type span = {
  sp_name : string;
  start_ns : int64;
  g0 : Gc.stat;
  mutable wall_ns : int64;  (** -1 while the span is open *)
  mutable gc : gc_delta;
  mutable counts : (string * int) list;
  mutable children_rev : span list;
}

type sample = {
  at_ns : int64;
  s_rss_kb : int;
  s_minor_words : float;
  s_major_words : float;
  s_minor_gcs : int;
  s_major_gcs : int;
  s_counts : (string * int) list;
}

type t = {
  t0 : int64;
  root : span;
  mutable stack : span list;
  mutable samples_rev : sample list;
}

val create : ?name:string -> unit -> t
(** A fresh profile whose root span is already open. *)

val open_span : t -> string -> unit
val close_span : t -> unit
(** Raises {!Hb_error.Hb_error} when no span is open (the root closes
    via {!finish}). *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Run [f] inside a child span; the span closes even when [f] raises
    ([Fun.protect]), recording the wall time it actually covered. *)

val annotate : t -> string -> int -> unit
(** Attach a simulated-progress counter (e.g. ["instrs"], ["cycles"]) to
    the innermost open span; throughput gauges derive from it. *)

val sample : ?counts:(string * int) list -> t -> unit
(** Record a telemetry checkpoint (RSS, cumulative GC counters). *)

val finish : t -> unit
(** Close every still-open span, root included; call before dumping. *)

type timing = { t_wall_ns : int; t_gc : gc_delta }

val timed : (unit -> 'a) -> 'a * timing
(** Measure one phase inline (wall ns + GC delta) without a profile
    tree; the harness uses it to cost each measured run.  Keeps the raw
    clock confined to [lib/obs]. *)

(** {2 The ambient profiler}

    One profiler per process is the common case; the ambient instance
    lets deep callees ({!Hb_harness.Run}, campaigns) open spans without
    threading a [t] through every signature.  When nothing is installed
    every hook costs one option check. *)

val install : ?name:string -> unit -> t
val uninstall : unit -> unit
val active : unit -> t option

val span : string -> (unit -> 'a) -> 'a
(** [with_span] against the ambient profiler; just [f ()] when none is
    installed. *)

val annotate_live : string -> int -> unit
val sample_live : ?counts:(string * int) list -> unit -> unit

(** {2 Accounting, serialization, export} *)

val check : t -> (unit, string) result
(** The span-tree accounting identity: every span's children must sum to
    at most the parent's wall time, recursively; open spans are an
    error.  Mirrors [Stats.check_invariants]. *)

val peak_rss_kb : unit -> int
(** VmHWM from /proc/self/status; 0 where unavailable. *)

val to_json : t -> Json.t

val chrome_events :
  ?pid:int -> ?tid:int -> ?shift_us:float -> t -> Json.t list
(** The profile's spans as Chrome trace_event complete events on the
    track keyed by [(pid, tid)] (default [(1, 1)]), timestamps in µs
    relative to the profile start plus [shift_us] — the building block
    the fleet merger uses to lay supervisor and worker profiles on one
    timeline. *)

val to_chrome : ?pid:int -> ?tid:int -> t -> Json.t
(** Chrome trace_event array (complete events, µs timestamps) for
    chrome://tracing / Perfetto. *)

val write_json : string -> t -> unit
val write_chrome : string -> t -> unit
(** File sinks; the channel is closed even when the write raises. *)

val export : t -> Metrics.t -> unit
(** [hb_host_*] gauges: per-phase wall time, derived sim_ips/sim_cps
    throughput, GC totals, peak RSS, checkpoint samples.  Live-safe —
    open spans export their elapsed-so-far reading. *)

val export_live : Metrics.t -> unit
(** {!export} of the ambient profiler, if any. *)
