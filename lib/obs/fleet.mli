(** Fleet-wide observability for sharded campaigns.

    The sharded engine ({!Hb_shard}) forks one worker per shard; every
    observability surface built so far (span profiles, the metrics
    registry, the live endpoints) is single-process, so the workers run
    dark.  This module is the cross-process telemetry plane: each worker
    periodically appends crash-tolerant snapshots (metrics registry
    dump, its open/closed span tree, GC quick-stat deltas, per-injection
    wall-latency observations) to a {e sidecar} file next to its journal
    shard; the supervisor tails the sidecars and serves an aggregated
    fleet view — worker-labeled [hb_fleet_*] series plus fleet-sum
    rollups on [/metrics], a per-worker block on [/progress] — and,
    post-run, merges everything into one unified Chrome trace with
    supervisor and worker tracks keyed by pid.

    Everything here is strictly read-only with respect to the
    deterministic artifacts: sidecars are separate files the {!Hb_shard}
    merge never reads, so campaign reports, journals, and the
    [BENCH_hardbound.json] gate are byte-identical with the fleet plane
    on or off. *)

type config = {
  sidecars : bool;  (** workers append telemetry sidecars *)
  chrome : string option;
      (** post-run unified Chrome trace path (implies sidecars) *)
}

val disabled : config

val active : config -> bool
(** Any part of the fleet plane requested. *)

val sidecar_path : string -> string
(** A shard journal's telemetry sidecar path (the journal path plus a
    [.fleet] suffix — a distinct extension, so the shard merge never
    mistakes telemetry for campaign records). *)

(** {2 Worker side}

    Lives inside {!Hb_shard.Worker.run_inline}: the forked child (or the
    parent adopting an exhausted shard) appends JSONL telemetry to its
    sidecar.  Writes are flushed but never fsync'd — losing a tail
    record to a crash costs telemetry, not correctness — and readers
    tolerate a torn tail the same way the journal reader does. *)

type worker

val worker_begin : path:string -> shard:int -> completed:int -> worker
(** Open (append) the sidecar for the shard journal at [path], start a
    fresh worker-local span profile, and write a first snapshot so the
    aggregator sees the shard as soon as it spawns.  [completed] is the
    journal-replayed prior count. *)

val run_start : worker -> idx:int -> unit
(** Open a per-run span and start the wall-latency clock. *)

val run_done :
  worker ->
  idx:int ->
  outcome:string ->
  latency:int option ->
  completed:int ->
  unit
(** Close the run span, record the run's wall latency (and detect
    latency, when the outcome carried one) into the worker-local
    registry, append an observation record, and snapshot periodically. *)

val worker_end : worker -> unit
(** Final snapshot (with the span tree closed) and sidecar close.
    Restores nothing global — the worker never touches the ambient
    profiler, so parent-side adoption is safe. *)

(** {2 Supervisor events}

    Process-lifecycle moments (spawns, respawns, watchdog SIGKILLs,
    shard adoptions) recorded in the parent, exported as
    [hb_fleet_events] counters and instant events on the unified
    trace. *)

type event = {
  e_at_ns : int64;  (** absolute monotonic, comparable across processes *)
  e_kind : string;  (** spawn | respawn | watchdog_kill | exhaust | adopt | kill *)
  e_shard : int;
  e_pid : int option;
  e_detail : string;
}

val install : sidecars:string list -> unit
(** Install the ambient parent-side collector: the sidecar paths to
    aggregate (index = shard) and an empty event log.  One per process,
    like {!Host.install}. *)

val uninstall : unit -> unit
val installed : unit -> bool

val event : kind:string -> shard:int -> ?pid:int -> string -> unit
(** Record a lifecycle event on the ambient collector; a no-op when none
    is installed (the supervisor calls this unconditionally). *)

val events : unit -> event list
(** Events recorded so far, oldest first; [[]] when not installed. *)

(** {2 Aggregation}

    The serving side re-reads the sidecars on every call — they are
    small JSONL files — so a mid-flight scrape sees each worker's
    latest snapshot.  Reads are fully tolerant: a torn tail or a
    half-written record is skipped, never raised. *)

val export_live : Metrics.t -> unit
(** Export the aggregated fleet view from the ambient collector into a
    registry: per-worker gauges ([hb_fleet.worker_*{worker="K"}]),
    per-injection wall-latency and detect-latency histograms labeled by
    outcome and worker plus unlabeled fleet-sum rollups, and
    [hb_fleet.events{kind,worker}] counters.  A no-op when no collector
    is installed. *)

val live_json : unit -> Json.t option
(** The per-worker fleet block for [/progress]: latest snapshot per
    shard (pid, completed, rss, GC, snapshot count) and the event log.
    [None] when no collector is installed. *)

(** {2 The unified Chrome trace} *)

val unified_chrome :
  ?host:Host.t ->
  events:event list ->
  sidecars:string list ->
  unit ->
  Json.t
(** One trace_event array laying the whole campaign on a single
    timeline: the supervisor's span profile on its own pid track, each
    worker incarnation's span tree on a track keyed by its real pid
    (a respawned shard gets a fresh track), and instant events for the
    supervisor's lifecycle moments.  All monotonic timestamps are
    shifted to the earliest one seen, so the trace starts at 0. *)

val write_chrome :
  ?host:Host.t ->
  events:event list ->
  sidecars:string list ->
  string ->
  unit
(** {!unified_chrome} to a file; the channel closes even on a failed
    write. *)
