(** Per-PC cost attribution: dense accumulators, one slot per linked code
    index, for micro-ops, check/metadata micro-ops and the Figure-5 stall
    decomposition (data / tag / base-bound), plus per-level cache-miss
    counts.  The arrays are exposed so the machine's attribution is plain
    array increments (the {!Profile} idiom); with attribution off the
    machine never touches this module. *)

type t = {
  fns : string array;   (** per-PC enclosing function *)
  lines : int array;
      (** per-PC source line of the translation unit: >0 user code, <0
          negated runtime-prelude line, 0 unknown *)
  instrs : int array;
  uops : int array;
  data_stalls : int array;
  tag_stalls : int array;
  bb_stalls : int array;
  check_uops : int array;
  metadata_uops : int array;
  checked_derefs : int array;
  setbounds : int array;
  tlb_misses : int array;
  l1_misses : int array;
  l2_misses : int array;
}

val create : fns:string array -> lines:int array -> t
(** One slot per code index; [fns] and [lines] must have equal length. *)

val size : t -> int

val loc_str : t -> int -> string
(** [fn:line] for user code, [fn:rt.line] for the runtime prelude, bare
    [fn] when no line is known. *)

type row = {
  pc : int;
  fn : string;
  line : int;
  loc : string;
  instrs : int;
  uops : int;
  cycles : int;
  data_stalls : int;
  tag_stalls : int;
  bb_stalls : int;
  check_uops : int;
  metadata_uops : int;
  checked_derefs : int;
  setbounds : int;
  tlb_misses : int;
  l1_misses : int;
  l2_misses : int;
}

val rows : t -> row list
(** Executed PCs, hottest first (deterministic: ties break on pc).
    [cycles = uops + data + tag + bb stalls] per site. *)

val totals : t -> (string * int) list
(** Whole-run sums keyed by the {!Stats} field each must equal
    ([instructions], [uops], [cycles], [charged_*_stalls], [check_uops],
    [metadata_uops], [checked_derefs], [setbound_instrs]). *)

val check : t -> expect:(string * int) list -> (unit, string) result
(** Verify {!totals} against the global counters; keys present on both
    sides must agree exactly. *)

val to_table : ?top:int -> t -> string
(** Ranked hotspot table ([top] sites, default 10; [top <= 0] = all). *)

val to_json : ?meta:(string * Json.t) list -> t -> Json.t
(** Deterministic dump ({!Diff} input): [meta] fields, totals, then every
    executed site in PC order. *)

val parse_top : string -> int
(** CLI adapter: parse and validate an [--attr-top] row count.  Zero and
    negative counts raise a typed {!Hb_error.Hb_error} with a usage
    hint (matching the [--sample-interval] semantics); both CLIs route
    the flag through here. *)
