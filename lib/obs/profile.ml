(** Per-function flat profile.

    Attributes cycles, the Figure-5 stall decomposition (data / tag /
    base-bound), and check/metadata micro-ops to the function executing
    them.  Functions are pre-interned to dense integer ids so the
    per-instruction cost when profiling is a handful of array stores;
    when profiling is off the machine skips this module entirely. *)

type t = {
  names : string array;
  instrs : int array;
  uops : int array;
  data_stalls : int array;
  tag_stalls : int array;
  bb_stalls : int array;
  check_uops : int array;
  metadata_uops : int array;
  checked_derefs : int array;
  setbounds : int array;
}

let create ~names =
  let n = Array.length names in
  {
    names;
    instrs = Array.make n 0;
    uops = Array.make n 0;
    data_stalls = Array.make n 0;
    tag_stalls = Array.make n 0;
    bb_stalls = Array.make n 0;
    check_uops = Array.make n 0;
    metadata_uops = Array.make n 0;
    checked_derefs = Array.make n 0;
    setbounds = Array.make n 0;
  }

type row = {
  fn : string;
  instrs : int;
  uops : int;
  cycles : int;
  data_stalls : int;
  tag_stalls : int;
  bb_stalls : int;
  check_uops : int;
  metadata_uops : int;
  checked_derefs : int;
  setbounds : int;
}

let cycles_of (t : t) i =
  t.uops.(i) + t.data_stalls.(i) + t.tag_stalls.(i) + t.bb_stalls.(i)

(** Sums over every function, keyed by the [Stats] field each column must
    reconcile with (same accounting identity as [Attr.totals]). *)
let totals (t : t) =
  let sum a = Array.fold_left ( + ) 0 a in
  let uops = sum t.uops in
  let stalls = sum t.data_stalls + sum t.tag_stalls + sum t.bb_stalls in
  [
    ("instructions", sum t.instrs);
    ("uops", uops);
    ("cycles", uops + stalls);
    ("charged_data_stalls", sum t.data_stalls);
    ("charged_tag_stalls", sum t.tag_stalls);
    ("charged_bb_stalls", sum t.bb_stalls);
    ("check_uops", sum t.check_uops);
    ("metadata_uops", sum t.metadata_uops);
    ("checked_derefs", sum t.checked_derefs);
    ("setbound_instrs", sum t.setbounds);
  ]

(** Compare {!totals} against the global counters (e.g. [Stats.fields]);
    every key present on both sides must agree exactly. *)
let check t ~expect =
  let bad =
    List.filter_map
      (fun (k, v) ->
        match List.assoc_opt k expect with
        | Some e when e <> v ->
          Some (Printf.sprintf "%s: attributed %d <> global %d" k v e)
        | _ -> None)
      (totals t)
  in
  match bad with
  | [] -> Ok ()
  | msgs -> Error ("per-function profile leak: " ^ String.concat "; " msgs)

(** Non-empty rows, hottest (most cycles) first. *)
let rows (t : t) =
  let out = ref [] in
  Array.iteri
    (fun i name ->
      if t.instrs.(i) > 0 then
        out :=
          {
            fn = name;
            instrs = t.instrs.(i);
            uops = t.uops.(i);
            cycles = cycles_of t i;
            data_stalls = t.data_stalls.(i);
            tag_stalls = t.tag_stalls.(i);
            bb_stalls = t.bb_stalls.(i);
            check_uops = t.check_uops.(i);
            metadata_uops = t.metadata_uops.(i);
            checked_derefs = t.checked_derefs.(i);
            setbounds = t.setbounds.(i);
          }
          :: !out)
    t.names;
  List.sort (fun a b -> compare (b.cycles, a.fn) (a.cycles, b.fn)) !out

let to_table t =
  let rs = rows t in
  let total = List.fold_left (fun a r -> a + r.cycles) 0 rs in
  let b = Buffer.create 1024 in
  Printf.bprintf b "%-20s %10s %6s %10s %9s %9s %9s %7s %7s\n" "function"
    "cycles" "cyc%" "instrs" "d-stall" "t-stall" "bb-stall" "chk-uop"
    "meta-uop";
  List.iter
    (fun r ->
      Printf.bprintf b "%-20s %10d %5.1f%% %10d %9d %9d %9d %7d %7d\n" r.fn
        r.cycles
        (if total = 0 then 0.0
         else 100.0 *. float_of_int r.cycles /. float_of_int total)
        r.instrs r.data_stalls r.tag_stalls r.bb_stalls r.check_uops
        r.metadata_uops)
    rs;
  Printf.bprintf b "%-20s %10d %5.1f%%\n" "TOTAL" total 100.0;
  Buffer.contents b

let row_json r =
  Json.Obj
    [
      ("fn", Json.String r.fn);
      ("cycles", Json.Int r.cycles);
      ("instrs", Json.Int r.instrs);
      ("uops", Json.Int r.uops);
      ("data_stalls", Json.Int r.data_stalls);
      ("tag_stalls", Json.Int r.tag_stalls);
      ("bb_stalls", Json.Int r.bb_stalls);
      ("check_uops", Json.Int r.check_uops);
      ("metadata_uops", Json.Int r.metadata_uops);
      ("checked_derefs", Json.Int r.checked_derefs);
      ("setbounds", Json.Int r.setbounds);
    ]

let to_json t = Json.List (List.map row_json (rows t))

(** Mirror the profile into a metrics registry as labeled series. *)
let export t (m : Metrics.t) =
  List.iter
    (fun r ->
      let labels = [ ("fn", r.fn) ] in
      Metrics.set_counter m ~labels "profile.cycles" r.cycles;
      Metrics.set_counter m ~labels "profile.instructions" r.instrs;
      Metrics.set_counter m ~labels "profile.check_uops" r.check_uops;
      Metrics.set_counter m ~labels "profile.metadata_uops" r.metadata_uops)
    (rows t)
