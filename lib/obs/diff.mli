(** Differential overhead reports over two {!Attr.to_json} dumps.

    Sites are aggregated by (function, source line) — the key that
    survives re-compilation under a different instrumentation mode — so
    the ranked delta table sums exactly to the global [Stats] deltas, and
    the aggregate decomposition reproduces the Figure-5 segments when
    side A is the unbounded baseline. *)

type site = {
  fn : string;
  line : int;
  instrs : int;
  uops : int;
  cycles : int;
  data_stalls : int;
  tag_stalls : int;
  bb_stalls : int;
  check_uops : int;
  metadata_uops : int;
  checked_derefs : int;
  setbounds : int;
}

type dump = { label : string; sites : site list }
(** Sites already aggregated by (fn, line), in (fn, line) order. *)

val of_json : Json.t -> dump
(** Raises {!Json.Parse_error} when the document is not an attribution
    dump. *)

val load : string -> dump
(** Read and parse a dump file ({!Sys_error} on unreadable paths). *)

type delta = {
  d_fn : string;
  d_line : int;
  a_cycles : int;
  b_cycles : int;
  d_cycles : int;
  d_instrs : int;
  d_uops : int;
  d_data : int;
  d_tag : int;
  d_bb : int;
  d_check : int;
  d_meta : int;
  d_setbounds : int;
}
(** Per-(fn, line) counters of B minus A. *)

type report = {
  a_label : string;
  b_label : string;
  deltas : delta list;  (** largest cycle delta first, deterministic *)
  total : delta;        (** sums of every delta row *)
}

val diff : dump -> dump -> report
(** [diff a b] ranks where B spends cycles A did not (sites missing on
    one side count as zero there). *)

val to_table : ?top:int -> report -> string
(** Ranked table ([top] rows, default 20; [top <= 0] = all) plus the
    Figure-5 decomposition of the total delta as fractions of A. *)

val to_json : report -> Json.t
