(** Live campaign progress: injection index, outcome tallies, throughput
    and ETA — read by the [/progress] endpoint and the [--progress]
    stderr ticker, written by the campaign runner.  Timing is monotonic
    ({!Clock}); attaching a tracker never perturbs the campaign's
    deterministic artifacts. *)

type worker = {
  shard : int;
  mutable pid : int option;
  mutable state : string;
  mutable done_runs : int;
  mutable total_runs : int;
  mutable restarts : int;
  mutable beat_age_s : float;
}
(** One row per shard worker of a sharded campaign, maintained by the
    {!Hb_shard} supervisor and surfaced on [/progress] and as
    [hb_shard_*] gauges. *)

type t = {
  mutable label : string;
  mutable total : int;
  mutable prior : int;
  mutable completed : int;
  mutable current : int option;
  mutable tally : (string * int) list;
  mutable journal : string option;
  mutable resume : string option;
  mutable started_ns : int64;
  mutable poll : (unit -> int * int) option;
  mutable finished : bool;
  mutable workers : worker list;
}

val create : unit -> t

val worker : shard:int -> total_runs:int -> worker
(** A fresh worker row in the ["starting"] state. *)

val set_workers : t -> worker list -> unit

val begin_campaign : t -> label:string -> total:int -> prior:int -> unit
(** Reset for a campaign of [total] runs, [prior] of which were
    recovered from a resumed journal (they do not count toward the
    throughput estimate). *)

val set_journal : t -> string -> unit
val set_resume : t -> string -> unit

val set_poll : t -> (unit -> int * int) -> unit
(** Provide a live (instructions, cycles) reader for the machine in
    flight; surfaced on [/progress]. *)

val start_run : t -> int -> unit
val finish_run : t -> outcome:string -> unit

val seed_outcome : t -> outcome:string -> unit
(** Tally a prior (journal-replayed) record without counting it toward
    this session's throughput. *)

val finish : t -> unit

val elapsed_s : t -> float
val rate : t -> float option
(** Completed-this-session runs per second; [None] until one finishes. *)

val eta_s : t -> float option
(** Estimated seconds to completion; clamped at 0, [None] until the
    rate is known. *)

val to_json : t -> Json.t
(** The [/progress] document: counts, tallies, ETA, journal/resume
    state, live instruction/cycle readings. *)

val export : t -> Metrics.t -> unit
(** [hb_host_progress_*] gauges for the metrics exposition, plus
    [hb_shard_*] worker gauges when a sharded campaign populated
    [workers]. *)

val render : t -> string
(** One-line human rendering for the stderr ticker. *)

val ticker : ?period_s:float -> t -> unit -> unit
(** Start a background stderr ticker; the returned thunk stops it (one
    final render) and joins the thread. *)
