(** Minimal JSON tree, printer and parser.

    The repository deliberately has no third-party JSON dependency; this
    module is the single serialization point for every machine-readable
    artifact the simulator emits (metrics snapshots, trace events, bench
    results), and the parser exists so tests and tooling can read those
    artifacts back without leaving OCaml. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ------------------------------------------------------- *)

let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null"  (* NaN is not representable in JSON *)
  else Printf.sprintf "%.17g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | String s -> escape_to b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b x)
      l;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_to b k;
        Buffer.add_char b ':';
        to_buffer b v)
      fields;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

(* Indented variant for files meant to be read by humans too. *)
let rec pretty_to_buffer b indent = function
  | List (_ :: _ as l) ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad';
        pretty_to_buffer b (indent + 2) x)
      l;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b ']'
  | Obj (_ :: _ as fields) ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad';
        escape_to b k;
        Buffer.add_string b ": ";
        pretty_to_buffer b (indent + 2) v)
      fields;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b '}'
  | j -> to_buffer b j

let to_string_pretty j =
  let b = Buffer.create 1024 in
  pretty_to_buffer b 0 j;
  Buffer.contents b

(* ---- parsing -------------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let parse_lit c lit v =
  if
    c.pos + String.length lit <= String.length c.s
    && String.sub c.s c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    v
  end
  else fail c ("expected " ^ lit)

let parse_string_raw c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char b '"'; advance c
       | Some '\\' -> Buffer.add_char b '\\'; advance c
       | Some '/' -> Buffer.add_char b '/'; advance c
       | Some 'n' -> Buffer.add_char b '\n'; advance c
       | Some 't' -> Buffer.add_char b '\t'; advance c
       | Some 'r' -> Buffer.add_char b '\r'; advance c
       | Some 'b' -> Buffer.add_char b '\b'; advance c
       | Some 'f' -> Buffer.add_char b '\012'; advance c
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
         let hex = String.sub c.s c.pos 4 in
         c.pos <- c.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> fail c "bad \\u escape"
         in
         (* Only BMP code points below 0x80 round-trip exactly; others are
            emitted as '?' — the simulator never produces them. *)
         if code < 0x80 then Buffer.add_char b (Char.chr code)
         else Buffer.add_char b '?'
       | _ -> fail c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char b ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let lit = String.sub c.s start (c.pos - start) in
  if lit = "" then fail c "expected number";
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') lit then
    match float_of_string_opt lit with
    | Some f -> Float f
    | None -> fail c "bad float literal"
  else
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail c "bad number literal")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string_raw c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elems (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected , or ] in array"
      in
      List (elems [])
    end
  | Some '"' -> String (parse_string_raw c)
  | Some 't' -> parse_lit c "true" (Bool true)
  | Some 'f' -> parse_lit c "false" (Bool false)
  | Some 'n' -> parse_lit c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ---- accessors (for tests and tooling) ------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | _ -> None

let to_list = function
  | List l -> Some l
  | _ -> None
