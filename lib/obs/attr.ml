(** Per-PC cost attribution: the hardware-performance-counter view.

    One dense accumulator slot per linked code index, charging the same
    deltas the per-function {!Profile} charges — micro-ops, check and
    metadata micro-ops, and the Figure-5 stall decomposition (data / tag /
    base-bound) — plus per-level miss counts expanded from the cache
    hierarchy's last-access miss mask.  The machine owns the increments
    (plain array stores, like {!Profile}); when attribution is off it
    skips this module entirely, so the retire path stays allocation-free.

    Each PC also carries its enclosing function and source line (from the
    linker's debug map), so reports and {!Diff} tables name source lines
    instead of raw code indices.  Line numbers are 1-based lines of the
    MiniC translation unit; the runtime prelude's lines are stored negated
    (rendered [fn:rt.N]) so workload lines match the user's source. *)

type t = {
  fns : string array;   (* per-PC enclosing function *)
  lines : int array;    (* >0 user line, <0 negated runtime line, 0 unknown *)
  instrs : int array;
  uops : int array;
  data_stalls : int array;
  tag_stalls : int array;
  bb_stalls : int array;
  check_uops : int array;
  metadata_uops : int array;
  checked_derefs : int array;
  setbounds : int array;
  tlb_misses : int array;
  l1_misses : int array;
  l2_misses : int array;
}

let create ~fns ~lines =
  let n = Array.length fns in
  if Array.length lines <> n then
    invalid_arg "Attr.create: fns/lines length mismatch";
  {
    fns;
    lines;
    instrs = Array.make n 0;
    uops = Array.make n 0;
    data_stalls = Array.make n 0;
    tag_stalls = Array.make n 0;
    bb_stalls = Array.make n 0;
    check_uops = Array.make n 0;
    metadata_uops = Array.make n 0;
    checked_derefs = Array.make n 0;
    setbounds = Array.make n 0;
    tlb_misses = Array.make n 0;
    l1_misses = Array.make n 0;
    l2_misses = Array.make n 0;
  }

let size t = Array.length t.instrs

(** Render a PC's location: [fn:line] for user code, [fn:rt.line] for the
    runtime prelude, bare [fn] when the compiler emitted no marker. *)
let loc_str (t : t) pc =
  let fn = t.fns.(pc) and line = t.lines.(pc) in
  if line > 0 then Printf.sprintf "%s:%d" fn line
  else if line < 0 then Printf.sprintf "%s:rt.%d" fn (-line)
  else fn

type row = {
  pc : int;
  fn : string;
  line : int;
  loc : string;
  instrs : int;
  uops : int;
  cycles : int;
  data_stalls : int;
  tag_stalls : int;
  bb_stalls : int;
  check_uops : int;
  metadata_uops : int;
  checked_derefs : int;
  setbounds : int;
  tlb_misses : int;
  l1_misses : int;
  l2_misses : int;
}

let cycles_of (t : t) pc =
  t.uops.(pc) + t.data_stalls.(pc) + t.tag_stalls.(pc) + t.bb_stalls.(pc)

let row_of (t : t) pc =
  {
    pc;
    fn = t.fns.(pc);
    line = t.lines.(pc);
    loc = loc_str t pc;
    instrs = t.instrs.(pc);
    uops = t.uops.(pc);
    cycles = cycles_of t pc;
    data_stalls = t.data_stalls.(pc);
    tag_stalls = t.tag_stalls.(pc);
    bb_stalls = t.bb_stalls.(pc);
    check_uops = t.check_uops.(pc);
    metadata_uops = t.metadata_uops.(pc);
    checked_derefs = t.checked_derefs.(pc);
    setbounds = t.setbounds.(pc);
    tlb_misses = t.tlb_misses.(pc);
    l1_misses = t.l1_misses.(pc);
    l2_misses = t.l2_misses.(pc);
  }

(** Executed PCs, hottest (most cycles) first; ties break on pc so the
    order is deterministic. *)
let rows t =
  let out = ref [] in
  for pc = size t - 1 downto 0 do
    if t.instrs.(pc) > 0 then out := row_of t pc :: !out
  done;
  List.sort (fun a b -> compare (b.cycles, a.pc) (a.cycles, b.pc)) !out

(** Sums over every PC, keyed by the {!Stats} field each column must
    reconcile with (the accounting identity the tests enforce). *)
let totals (t : t) =
  let sum a = Array.fold_left ( + ) 0 a in
  let uops = sum t.uops in
  let stalls = sum t.data_stalls + sum t.tag_stalls + sum t.bb_stalls in
  [
    ("instructions", sum t.instrs);
    ("uops", uops);
    ("cycles", uops + stalls);
    ("charged_data_stalls", sum t.data_stalls);
    ("charged_tag_stalls", sum t.tag_stalls);
    ("charged_bb_stalls", sum t.bb_stalls);
    ("check_uops", sum t.check_uops);
    ("metadata_uops", sum t.metadata_uops);
    ("checked_derefs", sum t.checked_derefs);
    ("setbound_instrs", sum t.setbounds);
  ]

(** Compare {!totals} against the global counters (e.g. [Stats.fields]);
    every key present on both sides must agree exactly. *)
let check t ~expect =
  let bad =
    List.filter_map
      (fun (k, v) ->
        match List.assoc_opt k expect with
        | Some e when e <> v ->
          Some (Printf.sprintf "%s: attributed %d <> global %d" k v e)
        | _ -> None)
      (totals t)
  in
  match bad with
  | [] -> Ok ()
  | msgs -> Error ("per-PC attribution leak: " ^ String.concat "; " msgs)

let to_table ?(top = 10) t =
  let rs = rows t in
  let total = List.fold_left (fun a (r : row) -> a + r.cycles) 0 rs in
  let shown = if top > 0 then List.filteri (fun i _ -> i < top) rs else rs in
  let b = Buffer.create 1024 in
  Printf.bprintf b "%6s %-28s %10s %6s %8s %8s %8s %8s %6s %6s %5s\n" "pc"
    "location" "cycles" "cyc%" "instrs" "d-stall" "t-stall" "bb-stall"
    "chk" "meta" "setb";
  List.iter
    (fun (r : row) ->
      Printf.bprintf b "%6d %-28s %10d %5.1f%% %8d %8d %8d %8d %6d %6d %5d\n"
        r.pc r.loc r.cycles
        (if total = 0 then 0.0
         else 100.0 *. float_of_int r.cycles /. float_of_int total)
        r.instrs r.data_stalls r.tag_stalls r.bb_stalls r.check_uops
        r.metadata_uops r.setbounds)
    shown;
  let omitted = List.length rs - List.length shown in
  if omitted > 0 then
    Printf.bprintf b "%6s %-28s\n" "..."
      (Printf.sprintf "(%d more sites)" omitted);
  Printf.bprintf b "%6s %-28s %10d %5.1f%%\n" "" "TOTAL" total 100.0;
  Buffer.contents b

let row_json (r : row) =
  Json.Obj
    [
      ("pc", Json.Int r.pc);
      ("fn", Json.String r.fn);
      ("line", Json.Int r.line);
      ("instrs", Json.Int r.instrs);
      ("uops", Json.Int r.uops);
      ("cycles", Json.Int r.cycles);
      ("data_stalls", Json.Int r.data_stalls);
      ("tag_stalls", Json.Int r.tag_stalls);
      ("bb_stalls", Json.Int r.bb_stalls);
      ("check_uops", Json.Int r.check_uops);
      ("metadata_uops", Json.Int r.metadata_uops);
      ("checked_derefs", Json.Int r.checked_derefs);
      ("setbounds", Json.Int r.setbounds);
      ("tlb_misses", Json.Int r.tlb_misses);
      ("l1_misses", Json.Int r.l1_misses);
      ("l2_misses", Json.Int r.l2_misses);
    ]

(** Deterministic dump: [meta] fields (workload/mode/scheme labels) first,
    then the totals, then every executed site in PC order. *)
let to_json ?(meta = []) t =
  let sites = ref [] in
  for pc = size t - 1 downto 0 do
    if t.instrs.(pc) > 0 then sites := row_json (row_of t pc) :: !sites
  done;
  Json.Obj
    (meta
    @ [
        ( "totals",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (totals t)) );
        ("sites", Json.List !sites);
      ])

(* ---- CLI adapter ----------------------------------------------------- *)

let top_usage_hint =
  "give a positive row count, e.g. --attr-top 20; pass a large count to \
   see every site"

(** Parse and validate an [--attr-top] row count — both CLIs route the
    flag through here so the validation (and its usage hint) cannot
    drift.  Zero and negative counts are rejected with a typed
    {!Hb_error}, matching the [--sample-interval] semantics. *)
let parse_top s =
  match int_of_string_opt (String.trim s) with
  | None ->
    Hb_error.fail ~component:"attr" "--attr-top %S is not a number (%s)" s
      top_usage_hint
  | Some n when n <= 0 ->
    Hb_error.fail ~component:"attr"
      "--attr-top %d is not a usable row count: the hotspot table needs at \
       least one row (%s)"
      n top_usage_hint
  | Some n -> n
