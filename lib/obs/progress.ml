(** Live campaign progress: injection index, outcome tallies, throughput
    and ETA.

    The campaign runner updates one of these as it executes its plan;
    the [/progress] endpoint ({!Serve}) and the [--progress] stderr
    ticker both read from it.  All timing goes through the monotonic
    {!Clock}, so an NTP step can neither make the ETA negative nor the
    rate infinite.  Nothing here feeds back into the campaign: the
    report, journal and plan stay byte-identical whether or not a
    progress tracker is attached. *)

type worker = {
  shard : int;
  mutable pid : int option;
  mutable state : string;       (* running | respawning | done | ... *)
  mutable done_runs : int;
  mutable total_runs : int;
  mutable restarts : int;
  mutable beat_age_s : float;   (* seconds since the shard journal grew *)
}

type t = {
  mutable label : string;
  mutable total : int;          (* planned runs *)
  mutable prior : int;          (* records recovered from a resumed journal *)
  mutable completed : int;      (* including prior *)
  mutable current : int option; (* injection index in flight *)
  mutable tally : (string * int) list;  (* outcome name -> count, sorted *)
  mutable journal : string option;
  mutable resume : string option;
  mutable started_ns : int64;
  mutable poll : (unit -> int * int) option;
      (* live (instructions, cycles) of the machine in flight, read by
         the scrape thread between runs *)
  mutable finished : bool;
  mutable workers : worker list;
      (* one row per shard when a sharded campaign's supervisor drives
         this tracker; empty on the serial path *)
}

let create () =
  {
    label = "";
    total = 0;
    prior = 0;
    completed = 0;
    current = None;
    tally = [];
    journal = None;
    resume = None;
    started_ns = Clock.now_ns ();
    poll = None;
    finished = false;
    workers = [];
  }

let worker ~shard ~total_runs =
  {
    shard;
    pid = None;
    state = "starting";
    done_runs = 0;
    total_runs;
    restarts = 0;
    beat_age_s = 0.;
  }

let set_workers t ws = t.workers <- ws

let worker_json (w : worker) =
  Json.Obj
    [
      ("shard", Json.Int w.shard);
      ("pid", match w.pid with None -> Json.Null | Some p -> Json.Int p);
      ("state", Json.String w.state);
      ("done", Json.Int w.done_runs);
      ("total", Json.Int w.total_runs);
      ("restarts", Json.Int w.restarts);
      ("beat_age_s", Json.Float w.beat_age_s);
    ]

let begin_campaign t ~label ~total ~prior =
  t.label <- label;
  t.total <- total;
  t.prior <- prior;
  t.completed <- prior;
  t.current <- None;
  t.tally <- [];
  t.started_ns <- Clock.now_ns ();
  t.finished <- false

let set_journal t path = t.journal <- Some path
let set_resume t path = t.resume <- Some path
let set_poll t f = t.poll <- Some f

let start_run t idx = t.current <- Some idx

let bump tally outcome =
  let rec go = function
    | [] -> [ (outcome, 1) ]
    | (o, n) :: rest when o = outcome -> (o, n + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  List.sort compare (go tally)

(* Prior (journal-replayed) records land in the tally but not in the
   throughput estimate: they cost no wall time this session. *)
let seed_outcome t ~outcome = t.tally <- bump t.tally outcome

let finish_run t ~outcome =
  t.completed <- t.completed + 1;
  t.current <- None;
  t.tally <- bump t.tally outcome

let finish t =
  t.current <- None;
  t.finished <- true

let elapsed_s t = Clock.elapsed_s ~t0:t.started_ns

(* Throughput counts only this session's work: records replayed from a
   journal were free, so folding them in would fake an optimistic ETA. *)
let rate t =
  let fresh = t.completed - t.prior in
  let dt = elapsed_s t in
  if fresh <= 0 || dt <= 0. then None
  else Some (float_of_int fresh /. dt)

let eta_s t =
  match rate t with
  | None -> None
  | Some r ->
    let remaining = t.total - t.completed in
    if remaining <= 0 then Some 0.
    else Some (max 0. (float_of_int remaining /. r))

let to_json t =
  let fopt = function None -> Json.Null | Some f -> Json.Float f in
  let sopt = function None -> Json.Null | Some s -> Json.String s in
  let instrs, cycles =
    match t.poll with
    | Some f -> ( try f () with _ -> (0, 0))
    | None -> (0, 0)
  in
  Json.Obj
    ([
       ("label", Json.String t.label);
       ("total", Json.Int t.total);
       ("completed", Json.Int t.completed);
       ("prior", Json.Int t.prior);
       ( "current",
         match t.current with None -> Json.Null | Some i -> Json.Int i );
       ("finished", Json.Bool t.finished);
       ( "outcomes",
         Json.Obj (List.map (fun (o, n) -> (o, Json.Int n)) t.tally) );
       ("elapsed_s", Json.Float (elapsed_s t));
       ("runs_per_s", fopt (rate t));
       ("eta_s", fopt (eta_s t));
       ("journal", sopt t.journal);
       ("resume", sopt t.resume);
       ("instrs", Json.Int instrs);
       ("cycles", Json.Int cycles);
     ]
    @
    match t.workers with
    | [] -> []
    | ws -> [ ("workers", Json.List (List.map worker_json ws)) ])

let export t reg =
  Metrics.set_counter reg "hb_host.progress_total" t.total;
  Metrics.set_counter reg "hb_host.progress_completed" t.completed;
  Metrics.set_counter reg "hb_host.progress_prior" t.prior;
  (match eta_s t with
  | Some eta -> Metrics.set_counter reg "hb_host.progress_eta_s"
                  (int_of_float (ceil eta))
  | None -> ());
  List.iter
    (fun (o, n) ->
      Metrics.set_counter reg ~labels:[ ("outcome", o) ]
        "hb_host.progress_outcomes" n)
    t.tally;
  match t.workers with
  | [] -> ()
  | ws ->
    Metrics.set_counter reg "hb_shard.jobs" (List.length ws);
    Metrics.set_counter reg "hb_shard.restarts"
      (List.fold_left (fun a w -> a + w.restarts) 0 ws);
    List.iter
      (fun w ->
        let l = [ ("shard", string_of_int w.shard) ] in
        Metrics.set_counter reg ~labels:l "hb_shard.worker_completed"
          w.done_runs;
        Metrics.set_counter reg ~labels:l "hb_shard.worker_total" w.total_runs;
        Metrics.set_counter reg ~labels:l "hb_shard.worker_restarts"
          w.restarts;
        Metrics.set_counter reg ~labels:l "hb_shard.worker_up"
          (if w.state = "running" then 1 else 0))
      ws

let render t =
  (* When no run has completed this session (e.g. every record was
     journal-replayed), there is no rate to extrapolate from — show a
     dash rather than a nonsense/∞ estimate. *)
  let eta =
    match eta_s t with
    | Some e when not t.finished -> Printf.sprintf ", eta %.0fs" e
    | None when (not t.finished) && t.completed < t.total -> ", eta -"
    | _ -> ""
  in
  let tally =
    match t.tally with
    | [] -> ""
    | kvs ->
      " ["
      ^ String.concat " "
          (List.map (fun (o, n) -> Printf.sprintf "%s:%d" o n) kvs)
      ^ "]"
  in
  Printf.sprintf "[%s] %d/%d runs%s%s%s" t.label t.completed t.total tally eta
    (if t.finished then " done" else "")

(* ---- stderr ticker ---------------------------------------------------- *)

(* A detached thread that re-renders the line every [period_s]; on a TTY
   it overwrites in place, otherwise it appends plain lines.  [stop]
   joins the thread after one final render. *)
let ticker ?(period_s = 1.0) t =
  let stop_flag = ref false in
  let tty = Unix.isatty Unix.stderr in
  let emit () =
    if tty then Printf.eprintf "\r\027[K%s%!" (render t)
    else Printf.eprintf "%s\n%!" (render t)
  in
  let th =
    Thread.create
      (fun () ->
        while not !stop_flag do
          emit ();
          Thread.delay period_s
        done)
      ()
  in
  fun () ->
    stop_flag := true;
    Thread.join th;
    emit ();
    if tty then prerr_newline ()
