(** Host-side observability: a hierarchical wall-clock span profiler with
    GC and RSS telemetry.

    The *simulated* machine has been deeply observable since PR 1
    (metrics, attr, timeline, traps); this module instruments the host
    simulator itself.  A profile is a tree of spans (compile → load →
    warmup → run → report, nested freely) measured against the monotonic
    {!Clock}; each span also records the [Gc.quick_stat] delta it
    covered, and may be annotated with simulated-progress counters
    (instructions, cycles, runs) so throughput gauges can be derived.

    The same accounting discipline the simulated side enjoys applies
    here: in a well-formed profile the summed wall time of any span's
    children never exceeds the parent's ({!check}, mirroring
    [Stats.check_invariants]).

    Everything here is host-varying by construction and must stay out of
    the deterministic artifacts; dumps go to their own sinks (JSON and
    Chrome-trace) and to [hb_host_*] gauges in the metrics registry.
    Profiling is off unless a profiler is {!install}ed, and the
    simulator's per-µop hot path is untouched: spans wrap whole phases,
    never single steps. *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_gcs : int;
  major_gcs : int;
  compactions : int;
}

let gc_zero =
  {
    minor_words = 0.;
    major_words = 0.;
    promoted_words = 0.;
    minor_gcs = 0;
    major_gcs = 0;
    compactions = 0;
  }

let gc_delta (a : Gc.stat) (b : Gc.stat) =
  {
    minor_words = b.Gc.minor_words -. a.Gc.minor_words;
    major_words = b.Gc.major_words -. a.Gc.major_words;
    promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
    minor_gcs = b.Gc.minor_collections - a.Gc.minor_collections;
    major_gcs = b.Gc.major_collections - a.Gc.major_collections;
    compactions = b.Gc.compactions - a.Gc.compactions;
  }

type span = {
  sp_name : string;
  start_ns : int64;  (* absolute monotonic *)
  g0 : Gc.stat;      (* quick_stat at entry *)
  mutable wall_ns : int64;  (* -1L while the span is open *)
  mutable gc : gc_delta;    (* filled at close *)
  mutable counts : (string * int) list;  (* annotations, newest first *)
  mutable children_rev : span list;
}

type sample = {
  at_ns : int64;  (* relative to profile start *)
  s_rss_kb : int;
  s_minor_words : float;
  s_major_words : float;
  s_minor_gcs : int;
  s_major_gcs : int;
  s_counts : (string * int) list;
}

type t = {
  t0 : int64;
  root : span;
  mutable stack : span list;  (* open spans, innermost first; [] once finished *)
  mutable samples_rev : sample list;
}

let open_ name =
  {
    sp_name = name;
    start_ns = Clock.now_ns ();
    g0 = Gc.quick_stat ();
    wall_ns = -1L;
    gc = gc_zero;
    counts = [];
    children_rev = [];
  }

let create ?(name = "session") () =
  let root = open_ name in
  { t0 = root.start_ns; root; stack = [ root ]; samples_rev = [] }

let is_open sp = Int64.equal sp.wall_ns (-1L)

let close_span_record sp =
  sp.wall_ns <- Int64.sub (Clock.now_ns ()) sp.start_ns;
  sp.gc <- gc_delta sp.g0 (Gc.quick_stat ())

let open_span t name =
  let sp = open_ name in
  (match t.stack with
  | parent :: _ -> parent.children_rev <- sp :: parent.children_rev
  | [] ->
    Hb_error.fail ~component:"host" "span %S opened on a finished profile" name);
  t.stack <- sp :: t.stack

let close_span t =
  match t.stack with
  | sp :: (_ :: _ as rest) ->
    close_span_record sp;
    t.stack <- rest
  | _ ->
    Hb_error.fail ~component:"host"
      "close_span with no open span (root closes via finish)"

(* The closing discipline is what makes [check] meaningful on error
   paths: a span abandoned by an exception still records the wall time
   it actually covered. *)
let with_span t name f =
  open_span t name;
  Fun.protect ~finally:(fun () -> close_span t) f

let annotate t key v =
  match t.stack with
  | sp :: _ -> sp.counts <- (key, v) :: sp.counts
  | [] -> t.root.counts <- (key, v) :: t.root.counts

let peak_rss_kb () =
  (* VmHWM ("high water mark") from the proc status file; 0 where /proc
     is unavailable — a gauge, never an error *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> 0
          | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              let digits =
                String.to_seq line
                |> Seq.filter (fun c -> c >= '0' && c <= '9')
                |> String.of_seq
              in
              match int_of_string_opt digits with Some n -> n | None -> 0
            else go ()
        in
        go ())

let sample ?(counts = []) t =
  let g = Gc.quick_stat () in
  t.samples_rev <-
    {
      at_ns = Int64.sub (Clock.now_ns ()) t.t0;
      s_rss_kb = peak_rss_kb ();
      s_minor_words = g.Gc.minor_words;
      s_major_words = g.Gc.major_words;
      s_minor_gcs = g.Gc.minor_collections;
      s_major_gcs = g.Gc.major_collections;
      s_counts = counts;
    }
    :: t.samples_rev

let finish t =
  List.iter close_span_record t.stack;
  t.stack <- []

(* ---- inline timing ---------------------------------------------------- *)

type timing = { t_wall_ns : int; t_gc : gc_delta }

(* One-shot phase measurement for callers that want the numbers in hand
   (the harness records wall cost per measured run) without owning a
   profile tree.  Keeps the raw clock confined to [lib/obs]. *)
let timed f =
  let g0 = Gc.quick_stat () in
  let t0 = Clock.now_ns () in
  let x = f () in
  let wall = Int64.to_int (Int64.sub (Clock.now_ns ()) t0) in
  (x, { t_wall_ns = wall; t_gc = gc_delta g0 (Gc.quick_stat ()) })

(* ---- the ambient profiler ------------------------------------------- *)

(* One profiler per process is the common case (a CLI run, a bench
   sweep); the ambient instance lets deep callees open spans without
   threading a [t] through every signature.  When nothing is installed,
   [span] costs exactly one option check. *)

let current : t option ref = ref None

let install ?name () =
  let t = create ?name () in
  current := Some t;
  t

let uninstall () = current := None

let active () = !current

let span name f =
  match !current with None -> f () | Some t -> with_span t name f

let annotate_live key v =
  match !current with None -> () | Some t -> annotate t key v

let sample_live ?counts () =
  match !current with None -> () | Some t -> sample ?counts t

(* ---- accounting identity --------------------------------------------- *)

(* Children run strictly inside their parent's window, so their summed
   wall time cannot exceed the parent's.  A violation means the profiler
   itself (or a doctored dump) is lying — reject it the way
   [Stats.check_invariants] rejects a leaking cycle account. *)
let check t =
  let rec walk sp =
    if is_open sp then
      Error (Printf.sprintf "span %S is still open" sp.sp_name)
    else
      let children = List.rev sp.children_rev in
      let child_sum =
        List.fold_left (fun acc c -> Int64.add acc (max 0L c.wall_ns)) 0L
          children
      in
      if Int64.compare child_sum sp.wall_ns > 0 then
        Error
          (Printf.sprintf
             "span %S: children sum to %Ldns, exceeding the parent's %Ldns"
             sp.sp_name child_sum sp.wall_ns)
      else
        List.fold_left
          (fun acc c -> match acc with Error _ -> acc | Ok () -> walk c)
          (Ok ()) children
  in
  walk t.root

(* ---- serialization --------------------------------------------------- *)

let gc_json g =
  Json.Obj
    [
      ("minor_words", Json.Float g.minor_words);
      ("major_words", Json.Float g.major_words);
      ("promoted_words", Json.Float g.promoted_words);
      ("minor_gcs", Json.Int g.minor_gcs);
      ("major_gcs", Json.Int g.major_gcs);
      ("compactions", Json.Int g.compactions);
    ]

let rec span_json t sp =
  Json.Obj
    ([
       ("name", Json.String sp.sp_name);
       ("start_ns", Json.Int (Int64.to_int (Int64.sub sp.start_ns t.t0)));
       ("wall_ns", Json.Int (Int64.to_int sp.wall_ns));
       ("gc", gc_json sp.gc);
     ]
    @ (match sp.counts with
      | [] -> []
      | counts ->
        [
          ( "counts",
            Json.Obj
              (List.rev_map (fun (k, v) -> (k, Json.Int v)) counts) );
        ])
    @
    match sp.children_rev with
    | [] -> []
    | children ->
      [
        ( "children",
          Json.List (List.rev_map (fun c -> span_json t c) children) );
      ])

let sample_json s =
  Json.Obj
    ([
       ("at_ns", Json.Int (Int64.to_int s.at_ns));
       ("rss_kb", Json.Int s.s_rss_kb);
       ("minor_words", Json.Float s.s_minor_words);
       ("major_words", Json.Float s.s_major_words);
       ("minor_gcs", Json.Int s.s_minor_gcs);
       ("major_gcs", Json.Int s.s_major_gcs);
     ]
    @ List.map (fun (k, v) -> (k, Json.Int v)) s.s_counts)

let to_json t =
  Json.Obj
    [
      ("host", Json.String "hb-span-profile");
      ("version", Json.Int 1);
      ("peak_rss_kb", Json.Int (peak_rss_kb ()));
      ("root", span_json t t.root);
      ("samples", Json.List (List.rev_map sample_json t.samples_rev));
    ]

(* Chrome trace_event complete events, timestamps in µs relative to the
   profile start — drop the file on chrome://tracing or Perfetto.  The
   (pid, tid) pair keys the track; the fleet merger gives each process
   its own so a sharded campaign reads as one multi-track timeline. *)
let chrome_events ?(pid = 1) ?(tid = 1) ?(shift_us = 0.) t =
  let events = ref [] in
  let rec walk depth sp =
    events :=
      Json.Obj
        [
          ("name", Json.String sp.sp_name);
          ("ph", Json.String "X");
          ( "ts",
            Json.Float
              ((Int64.to_float (Int64.sub sp.start_ns t.t0) /. 1e3)
              +. shift_us) );
          ("dur", Json.Float (Int64.to_float (max 0L sp.wall_ns) /. 1e3));
          ("pid", Json.Int pid);
          ("tid", Json.Int tid);
          ("args", Json.Obj [ ("depth", Json.Int depth) ]);
        ]
      :: !events;
    List.iter (walk (depth + 1)) (List.rev sp.children_rev)
  in
  walk 0 t.root;
  List.rev !events

let to_chrome ?pid ?tid t = Json.List (chrome_events ?pid ?tid t)

(* Sinks get the same closing guarantee as every other artifact writer:
   the descriptor comes back even when the write raises mid-file. *)
let write_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let write_json path t = write_file path (Json.to_string_pretty (to_json t) ^ "\n")
let write_chrome path t = write_file path (Json.to_string_pretty (to_chrome t) ^ "\n")

(* ---- metrics export -------------------------------------------------- *)

(* While a span is still open (a live scrape mid-campaign) its wall time
   is read as "so far". *)
let wall_so_far sp =
  if is_open sp then Int64.sub (Clock.now_ns ()) sp.start_ns else sp.wall_ns

let count_of sp key =
  match List.assoc_opt key sp.counts with Some v -> v | None -> 0

let per_sec count ns =
  if Int64.compare ns 0L <= 0 then 0
  else int_of_float (float_of_int count /. (Int64.to_float ns /. 1e9))

(** Export the profile as [hb_host_*] gauges: wall time and throughput
    for the root and each top-level phase, GC totals, and peak RSS.
    Live-safe — open spans export their elapsed-so-far reading. *)
let export t reg =
  let phase sp label =
    let ns = wall_so_far sp in
    let lbl = [ ("span", label) ] in
    Metrics.set_counter reg ~labels:lbl "hb_host.wall_ns" (Int64.to_int ns);
    Metrics.set_counter reg ~labels:lbl "hb_host.wall_ms"
      (Int64.to_int (Int64.div ns 1_000_000L));
    let instrs = count_of sp "instrs" and cycles = count_of sp "cycles" in
    if instrs > 0 then
      Metrics.set_counter reg ~labels:lbl "hb_host.sim_ips" (per_sec instrs ns);
    if cycles > 0 then
      Metrics.set_counter reg ~labels:lbl "hb_host.sim_cps" (per_sec cycles ns)
  in
  phase t.root "total";
  List.iter
    (fun sp -> phase sp sp.sp_name)
    (List.rev t.root.children_rev);
  let g = gc_delta t.root.g0 (Gc.quick_stat ()) in
  let gi f = int_of_float f in
  Metrics.set_counter reg "hb_host.gc_minor_words" (gi g.minor_words);
  Metrics.set_counter reg "hb_host.gc_major_words" (gi g.major_words);
  Metrics.set_counter reg "hb_host.gc_promoted_words" (gi g.promoted_words);
  Metrics.set_counter reg "hb_host.gc_minor_collections" g.minor_gcs;
  Metrics.set_counter reg "hb_host.gc_major_collections" g.major_gcs;
  Metrics.set_counter reg "hb_host.peak_rss_kb" (peak_rss_kb ());
  Metrics.set_counter reg "hb_host.checkpoint_samples"
    (List.length t.samples_rev);
  match t.samples_rev with
  | [] -> ()
  | samples ->
    let h = Metrics.histogram reg "hb_host.sample_rss_kb" in
    List.iter (fun s -> Metrics.observe h s.s_rss_kb) samples

let export_live reg =
  match !current with None -> () | Some t -> export t reg
