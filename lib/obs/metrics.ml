(** Metrics registry: named counters and histograms with labels.

    Components keep their existing hand-rolled mutable statistics for the
    hot paths and *export* into a registry at snapshot points; nothing in
    this module sits on the simulator's per-instruction path.  Snapshots
    are deterministic: series are sorted by (name, labels) so two
    identical runs serialize identically. *)

type labels = (string * string) list

type counter = {
  c_name : string;
  c_labels : labels;
  mutable value : int;
}

type histogram = {
  h_name : string;
  h_labels : labels;
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
  buckets : int array;
      (* buckets.(i) counts observations v with 2^(i-1) <= v < 2^i
         (bucket 0 holds v <= 0); the last bucket is unbounded above. *)
}

let num_buckets = 32

type t = {
  counters : (string * labels, counter) Hashtbl.t;
  histograms : (string * labels, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 64; histograms = Hashtbl.create 16 }

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let counter t ?(labels = []) name =
  let labels = norm_labels labels in
  match Hashtbl.find_opt t.counters (name, labels) with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_labels = labels; value = 0 } in
    Hashtbl.replace t.counters (name, labels) c;
    c

let inc ?(by = 1) c = c.value <- c.value + by

let set c v = c.value <- v

let set_counter t ?labels name v = set (counter t ?labels name) v

let histogram t ?(labels = []) name =
  let labels = norm_labels labels in
  match Hashtbl.find_opt t.histograms (name, labels) with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_labels = labels;
        count = 0;
        sum = 0;
        min = max_int;
        max = min_int;
        buckets = Array.make num_buckets 0;
      }
    in
    Hashtbl.replace t.histograms (name, labels) h;
    h

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go i n = if n = 0 || i = num_buckets - 1 then i else go (i + 1) (n lsr 1) in
    go 0 v

(* Non-positive observations land in bucket 0, exposed as [le="1"] in the
   text exposition: the histogram is a latency/size histogram, so zero (a
   sub-resolution measurement) is folded into the smallest bucket rather
   than dropped, and negative values (clock skew artifacts) are clamped
   the same way.  [sum]/[min]/[max] still see the raw value. *)
let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min then h.min <- v;
  if v > h.max then h.max <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

(* ---- snapshot ------------------------------------------------------- *)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let counter_json c =
  Json.Obj
    ([ ("name", Json.String c.c_name) ]
    @ (if c.c_labels = [] then [] else [ ("labels", labels_json c.c_labels) ])
    @ [ ("value", Json.Int c.value) ])

let histogram_json h =
  let nonzero =
    Array.to_list h.buckets
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (i, n) ->
           let upper = if i = 0 then 1 else 1 lsl i in
           Json.Obj [ ("lt", Json.Int upper); ("count", Json.Int n) ])
  in
  Json.Obj
    ([ ("name", Json.String h.h_name) ]
    @ (if h.h_labels = [] then [] else [ ("labels", labels_json h.h_labels) ])
    @ [
        ("count", Json.Int h.count);
        ("sum", Json.Int h.sum);
        ("min", Json.Int (if h.count = 0 then 0 else h.min));
        ("max", Json.Int (if h.count = 0 then 0 else h.max));
        ("buckets", Json.List nonzero);
      ])

let sorted_values tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
  |> List.map snd

let snapshot t =
  Json.Obj
    [
      ("counters", Json.List (List.map counter_json (sorted_values t.counters)));
      ( "histograms",
        Json.List (List.map histogram_json (sorted_values t.histograms)) );
    ]

(* ---- OpenMetrics / Prometheus text exposition ----------------------- *)

(* Metric names here use dots ("cpu.cycles"); Prometheus names admit only
   [a-zA-Z0-9_:]. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels ?extra labels =
  let labels =
    labels @ (match extra with Some kv -> [ kv ] | None -> [])
  in
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_label_value v))
           labels)
    ^ "}"

(** Render the registry in the Prometheus/OpenMetrics text format:
    counters become gauges (they are set-at-snapshot absolutes, not
    monotonic processes), histograms expose cumulative [_bucket{le=...}]
    series plus [_sum]/[_count]/[_min]/[_max].  Series order matches {!snapshot}, so
    identical runs produce byte-identical expositions. *)
let to_prometheus t =
  let b = Buffer.create 4096 in
  let typed = Hashtbl.create 64 in
  let declare name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Printf.bprintf b "# TYPE %s %s\n" name kind
    end
  in
  List.iter
    (fun c ->
      let name = prom_name c.c_name in
      declare name "gauge";
      Printf.bprintf b "%s%s %d\n" name (prom_labels c.c_labels) c.value)
    (sorted_values t.counters);
  List.iter
    (fun h ->
      let name = prom_name h.h_name in
      declare name "histogram";
      let cum = ref 0 in
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            cum := !cum + n;
            let upper =
              if i = 0 then "1" else string_of_int (1 lsl i)
            in
            Printf.bprintf b "%s_bucket%s %d\n" name
              (prom_labels ~extra:("le", upper) h.h_labels)
              !cum
          end)
        h.buckets;
      Printf.bprintf b "%s_bucket%s %d\n" name
        (prom_labels ~extra:("le", "+Inf") h.h_labels)
        h.count;
      Printf.bprintf b "%s_sum%s %d\n" name (prom_labels h.h_labels) h.sum;
      Printf.bprintf b "%s_count%s %d\n" name (prom_labels h.h_labels) h.count;
      Printf.bprintf b "%s_min%s %d\n" name (prom_labels h.h_labels)
        (if h.count = 0 then 0 else h.min);
      Printf.bprintf b "%s_max%s %d\n" name (prom_labels h.h_labels)
        (if h.count = 0 then 0 else h.max))
    (sorted_values t.histograms);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
