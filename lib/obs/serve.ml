(** Live status endpoint: a tiny HTTP server on a background thread.

    [--serve PORT] turns a run into a scrapeable process — the first
    concrete piece of the simulation-as-a-service direction:

    - [GET /metrics]: the Prometheus/OpenMetrics exposition of the
      session registry, host gauges included;
    - [GET /progress]: the live campaign document ({!Progress.to_json});
    - [GET /healthz]: liveness probe.

    The built-in routes are read-only and strictly off to the side:
    handlers call the snapshot callbacks the front end provided, and
    nothing they compute flows back into the simulation, so every
    deterministic artifact is byte-identical with and without [--serve].
    A front end that *wants* writable routes (the hb_serve daemon's
    [POST /jobs]) supplies a [handler] that gets first refusal on every
    request and falls through to the built-ins.

    Robustness contract: the accept loop can never be wedged by a
    stalled or hostile client.  Every connection reads under a
    [SO_RCVTIMEO] deadline ([read_timeout_s]) and a total size bound
    ([max_request]); a silent socket gets [408], an oversized request
    [413], garbage [400] — and the loop moves on.

    Malformed ports and bind failures surface as typed {!Hb_error}
    diagnostics with usage hints rather than raw [Unix.Unix_error]
    escapes. *)

type response = {
  status : string;
  content_type : string;
  headers : (string * string) list;
  body : string;
}

type handler = meth:string -> path:string -> body:string -> response option

type t = {
  sock : Unix.file_descr;
  port : int;
  thread : Thread.t;
  stop_flag : bool ref;
}

let usage_hint = "usage: --serve PORT with 1 <= PORT <= 65535, e.g. --serve 9090"

(** CLI adapter: parse and validate a [--serve] port.  Port 0 is
    rejected on purpose — a scrape endpoint on an ephemeral port is
    unreachable by the tooling that wants it. *)
let parse_port s =
  match int_of_string_opt (String.trim s) with
  | None ->
    Hb_error.fail ~component:"serve" "--serve port %S is not a number (%s)" s
      usage_hint
  | Some p when p <= 0 ->
    Hb_error.fail ~component:"serve"
      "--serve port %d is out of range: a listening port needs 1-65535 (%s)"
      p usage_hint
  | Some p when p > 65535 ->
    Hb_error.fail ~component:"serve"
      "--serve port %d is out of range: TCP ports end at 65535 (%s)" p
      usage_hint
  | Some p -> p

let response ?(headers = []) ?(content_type = "text/plain") ~status body =
  { status; content_type; headers; body }

let render { status; content_type; headers; body } =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\n%sContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type extra (String.length body) body

let http_response ~status ~content_type body =
  render { status; content_type; headers = []; body }

let openmetrics_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

(* ------------------------------------------------------------------ *)
(* Bounded request reader                                              *)

type read_result =
  | Req of { meth : string; path : string; body : string }
  | Timeout  (* client connected but went silent past [read_timeout_s] *)
  | Too_large  (* headers or declared body exceed [max_request] *)
  | Closed  (* client hung up before sending anything *)
  | Bad  (* unparsable request framing *)

(* Index of "\r\n\r\n" in [s] (the body starts 4 bytes later), or -1. *)
let header_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then -1
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then i
    else go (i + 1)
  in
  go 0

let content_length head =
  let lines = String.split_on_char '\n' head in
  List.fold_left
    (fun acc line ->
      let line = String.trim line in
      match String.index_opt line ':' with
      | Some i
        when String.lowercase_ascii (String.sub line 0 i) = "content-length"
        -> (
        let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        match int_of_string_opt v with Some n -> Some n | None -> Some (-1))
      | _ -> acc)
    (Some 0) lines

let request_line head =
  match String.split_on_char '\r' head with
  | line :: _ -> (
    match String.split_on_char ' ' line with
    | [ meth; path; _ ] -> Some (meth, path)
    | _ -> None)
  | [] -> None

(** Read one full request (headers + declared body) under the
    per-connection timeout and total size bound.  The timeout applies to
    each blocking read, so a client must keep bytes flowing; the size
    bound applies to headers and body independently. *)
let read_request ~read_timeout_s ~max_request fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout_s
   with Unix.Unix_error (_, _, _) -> ());
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 2048 in
  let rec fill need =
    (* the bound first: a request that arrives complete in one read must
       not dodge the cap *)
    if Buffer.length buf > max_request then Too_large
    else
      (* grow the buffer until [need buf] says we have a full request *)
      match need (Buffer.contents buf) with
      | Some r -> r
      | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then Closed else Bad
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          fill need
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          Timeout
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill need
        | exception _ -> Closed)
  in
  fill (fun raw ->
      let he = header_end raw in
      if he < 0 then None
      else
        let head = String.sub raw 0 he in
        match request_line head with
        | None -> Some Bad
        | Some (meth, path) -> (
          match content_length head with
          | Some clen when clen < 0 -> Some Bad
          | Some clen when clen > max_request -> Some Too_large
          | Some clen ->
            let have = String.length raw - (he + 4) in
            if have >= clen then
              Some (Req { meth; path; body = String.sub raw (he + 4) clen })
            else None (* keep reading the body *)
          | None -> Some Bad))

let handle ~read_timeout_s ~max_request ~handler ~metrics ~progress fd =
  let reply =
    match read_request ~read_timeout_s ~max_request fd with
    | Closed -> None
    | Timeout ->
      Some
        (http_response ~status:"408 Request Timeout" ~content_type:"text/plain"
           "request timed out: no bytes within the read timeout\n")
    | Too_large ->
      Some
        (http_response ~status:"413 Content Too Large"
           ~content_type:"text/plain" "request exceeds the size bound\n")
    | Bad ->
      Some
        (http_response ~status:"400 Bad Request" ~content_type:"text/plain"
           "bad request\n")
    | Req { meth; path; body } ->
      Some
        ((* a failing snapshot callback or handler must not kill the
            serve loop *)
         try
           match handler ~meth ~path ~body with
           | Some r -> render r
           | None -> (
             match (meth, path) with
             | "GET", "/metrics" ->
               http_response ~status:"200 OK" ~content_type:openmetrics_type
                 (metrics ())
             | "GET", "/progress" ->
               http_response ~status:"200 OK" ~content_type:"application/json"
                 (Json.to_string_pretty (progress ()) ^ "\n")
             | "GET", ("/healthz" | "/") ->
               http_response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
             | "GET", _ ->
               http_response ~status:"404 Not Found" ~content_type:"text/plain"
                 (path ^ " not found; have /metrics /progress /healthz\n")
             | _ ->
               http_response ~status:"405 Method Not Allowed"
                 ~content_type:"text/plain" "method not allowed\n")
         with e ->
           http_response ~status:"500 Internal Server Error"
             ~content_type:"text/plain"
             (Printexc.to_string e ^ "\n"))
  in
  (match reply with
  | Some reply -> (
    try ignore (Unix.write_substring fd reply 0 (String.length reply))
    with _ -> ())
  | None -> ());
  (* shutdown acts on the socket itself, not this descriptor: the client
     sees EOF even when a process forked mid-connection (the daemon's
     job workers) still holds an inherited dup of the fd *)
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
  try Unix.close fd with _ -> ()

let no_handler ~meth:_ ~path:_ ~body:_ = None

(** Start serving on loopback:[port] (port 0 binds an ephemeral port —
    tests use it; the CLI validates user ports first with
    {!parse_port}).  Raises a typed {!Hb_error} when the port is
    already bound or cannot be opened. *)
let start ?(port = 0) ?(read_timeout_s = 5.) ?(max_request = 65536)
    ?(handler = no_handler) ~metrics ~progress () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16
   with
  | Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
    (try Unix.close sock with _ -> ());
    Hb_error.fail ~component:"serve"
      "--serve port %d is already bound by another process: pick a free \
       port or stop the other listener (%s)"
      port usage_hint
  | Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with _ -> ());
    Hb_error.fail ~component:"serve" "--serve %d failed to listen: %s (%s)"
      port (Unix.error_message e) usage_hint);
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_flag = ref false in
  let thread =
    Thread.create
      (fun () ->
        while not !stop_flag do
          match Unix.accept sock with
          | fd, _ ->
            handle ~read_timeout_s ~max_request ~handler ~metrics ~progress fd
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
            (* listener closed by [stop] *)
            stop_flag := true
          | exception _ -> ()
        done)
      ()
  in
  { sock; port = actual_port; thread; stop_flag }

let port t = t.port

(* Forked children inherit the listening socket; a worker that keeps it
   open would hold the port after the daemon dies. *)
let listen_fd t = t.sock

(* Closing the listener bounces the blocked [accept], which sees the
   stop flag and exits; joining makes shutdown deterministic. *)
let stop t =
  t.stop_flag := true;
  (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with _ -> ());
  (try Unix.close t.sock with _ -> ());
  try Thread.join t.thread with _ -> ()
