(** Live status endpoint: a tiny HTTP server on a background thread.

    [--serve PORT] turns a run into a scrapeable process — the first
    concrete piece of the simulation-as-a-service direction:

    - [GET /metrics]: the Prometheus/OpenMetrics exposition of the
      session registry, host gauges included;
    - [GET /progress]: the live campaign document ({!Progress.to_json});
    - [GET /healthz]: liveness probe.

    The server is read-only and strictly off to the side: handlers call
    the snapshot callbacks the front end provided, and nothing they
    compute flows back into the simulation, so every deterministic
    artifact is byte-identical with and without [--serve].

    Malformed ports and bind failures surface as typed {!Hb_error}
    diagnostics with usage hints rather than raw [Unix.Unix_error]
    escapes. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  thread : Thread.t;
  stop_flag : bool ref;
}

let usage_hint = "usage: --serve PORT with 1 <= PORT <= 65535, e.g. --serve 9090"

(** CLI adapter: parse and validate a [--serve] port.  Port 0 is
    rejected on purpose — a scrape endpoint on an ephemeral port is
    unreachable by the tooling that wants it. *)
let parse_port s =
  match int_of_string_opt (String.trim s) with
  | None ->
    Hb_error.fail ~component:"serve" "--serve port %S is not a number (%s)" s
      usage_hint
  | Some p when p <= 0 ->
    Hb_error.fail ~component:"serve"
      "--serve port %d is out of range: a listening port needs 1-65535 (%s)"
      p usage_hint
  | Some p when p > 65535 ->
    Hb_error.fail ~component:"serve"
      "--serve port %d is out of range: TCP ports end at 65535 (%s)" p
      usage_hint
  | Some p -> p

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let openmetrics_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

(* First request line only; this server speaks exactly enough HTTP for
   curl and a Prometheus scraper. *)
let request_path fd =
  let buf = Bytes.create 2048 in
  let n = try Unix.read fd buf 0 (Bytes.length buf) with _ -> 0 in
  if n <= 0 then None
  else
    let s = Bytes.sub_string buf 0 n in
    match String.split_on_char '\r' s with
    | line :: _ -> (
      match String.split_on_char ' ' line with
      | [ "GET"; path; _ ] -> Some path
      | _ -> None)
    | [] -> None

let handle ~metrics ~progress fd =
  let reply =
    match request_path fd with
    | None -> http_response ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"
    | Some path -> (
      (* a failing snapshot callback must not kill the serve loop *)
      try
        match path with
        | "/metrics" ->
          http_response ~status:"200 OK" ~content_type:openmetrics_type
            (metrics ())
        | "/progress" ->
          http_response ~status:"200 OK" ~content_type:"application/json"
            (Json.to_string_pretty (progress ()) ^ "\n")
        | "/healthz" | "/" ->
          http_response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
        | _ ->
          http_response ~status:"404 Not Found" ~content_type:"text/plain"
            (path ^ " not found; have /metrics /progress /healthz\n")
      with e ->
        http_response ~status:"500 Internal Server Error"
          ~content_type:"text/plain"
          (Printexc.to_string e ^ "\n"))
  in
  (try ignore (Unix.write_substring fd reply 0 (String.length reply))
   with _ -> ());
  try Unix.close fd with _ -> ()

(** Start serving on loopback:[port] (port 0 binds an ephemeral port —
    tests use it; the CLI validates user ports first with
    {!parse_port}).  Raises a typed {!Hb_error} when the port is
    already bound or cannot be opened. *)
let start ?(port = 0) ~metrics ~progress () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16
   with
  | Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
    (try Unix.close sock with _ -> ());
    Hb_error.fail ~component:"serve"
      "--serve port %d is already bound by another process: pick a free \
       port or stop the other listener (%s)"
      port usage_hint
  | Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with _ -> ());
    Hb_error.fail ~component:"serve" "--serve %d failed to listen: %s (%s)"
      port (Unix.error_message e) usage_hint);
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_flag = ref false in
  let thread =
    Thread.create
      (fun () ->
        while not !stop_flag do
          match Unix.accept sock with
          | fd, _ -> handle ~metrics ~progress fd
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
            (* listener closed by [stop] *)
            stop_flag := true
          | exception _ -> ()
        done)
      ()
  in
  { sock; port = actual_port; thread; stop_flag }

let port t = t.port

(* Closing the listener bounces the blocked [accept], which sees the
   stop flag and exits; joining makes shutdown deterministic. *)
let stop t =
  t.stop_flag := true;
  (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with _ -> ());
  (try Unix.close t.sock with _ -> ());
  try Thread.join t.thread with _ -> ()
