(** Bounded ring-buffer event tracer with pluggable sinks.

    The machine emits structured events; the tracer retains the last
    [capacity] of them (for violation reports) and optionally streams
    every event to a sink.  When no tracer is attached, the simulator's
    only cost is a [None] check per emission site. *)

type kind =
  | Retire of { instr : string }
  | Setbound of { base : int; bound : int; unsafe : bool }
  | Checked_deref of {
      addr : int;
      width : int;
      is_store : bool;
      base : int;
      bound : int;
    }
  | Metadata_uop of { addr : int; is_store : bool }
  | Cache_miss of { cls : string; level : string; addr : int; penalty : int }
  | Violation of { what : string; addr : int; base : int; bound : int }
  | Fault_injected of {
      site : string;    (** "mem" | "tag" | "shadow" | "reg" | "regbounds" *)
      target : int;     (** byte address, or register number for reg sites *)
      bit : int;
      before : int;
      after : int;
    }  (** one injected corruption, emitted by the [hb_fault] injector *)
  | Trap of {
      what : string;    (** "bounds" | "non-pointer" *)
      policy : string;  (** recovery policy in force when the trap fired *)
      action : string;  (** "abort" | "retire-unchecked" | "squash" |
                            "rollback" *)
      addr : int;
      base : int;
      bound : int;
    }
      (** one precise violation trap dispatched by the [hb_recover]
          supervisor, emitted with the pc still at the faulting
          instruction *)

type event = { seq : int; cycle : int; pc : int; fn : string; kind : kind }

type t

val create : ?sink:(event -> unit) -> ?retires:bool -> capacity:int -> unit -> t
(** [retires] additionally emits one event per retired instruction
    (costly on big runs; off by default). *)

val trace_retires : t -> bool

val emit : t -> cycle:int -> pc:int -> fn:string -> kind -> unit

val emitted : t -> int
(** Total number of events ever emitted (not just retained). *)

val recent : t -> event list
(** The retained window, oldest first; at most [capacity] events. *)

val kind_name : kind -> string
val pretty : event -> string
val to_json : event -> Json.t

val to_chrome_json : event -> Json.t
(** One trace_event record in the Chrome/Perfetto JSON array format,
    with cycles standing in for microseconds. *)

type file_format = Jsonl | Chrome

type file_sink = { write : event -> unit; close : unit -> unit }

val file_sink : file_format -> string -> file_sink
(** Open [path] and return a streaming writer; call [close] to finish
    (the Chrome format needs its closing bracket). *)
