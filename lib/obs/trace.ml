(** Bounded ring-buffer event tracer with pluggable sinks.

    The machine emits structured events (instruction retire, setbound,
    checked dereference, metadata micro-op, cache/TLB miss, violation);
    the tracer keeps the last [capacity] of them in a ring so violation
    reports can dump recent history, and optionally streams every event
    to a sink (pretty-printer, JSONL file, Chrome trace_event file).

    Pay-for-use: when no tracer is attached the simulator's only cost is
    a [None] check per emission site. *)

type kind =
  | Retire of { instr : string }
  | Setbound of { base : int; bound : int; unsafe : bool }
  | Checked_deref of {
      addr : int;
      width : int;
      is_store : bool;
      base : int;
      bound : int;
    }
  | Metadata_uop of { addr : int; is_store : bool }
  | Cache_miss of { cls : string; level : string; addr : int; penalty : int }
  | Violation of { what : string; addr : int; base : int; bound : int }
  | Fault_injected of {
      site : string;    (* "mem" | "tag" | "shadow" | "reg" | "regbounds" *)
      target : int;     (* byte address, or register number for reg sites *)
      bit : int;
      before : int;
      after : int;
    }
  | Trap of {
      what : string;    (* "bounds" | "non-pointer" *)
      policy : string;  (* recovery policy in force when the trap fired *)
      action : string;  (* what the supervisor did with it *)
      addr : int;
      base : int;
      bound : int;
    }

type event = { seq : int; cycle : int; pc : int; fn : string; kind : kind }

type t = {
  capacity : int;
  ring : event array;
  mutable filled : int;   (* number of valid entries, <= capacity *)
  mutable next : int;     (* ring index of the next write *)
  mutable next_seq : int;
  mutable sink : (event -> unit) option;
  mutable retires : bool; (* emit per-retire events (sinks only) *)
}

let dummy_event =
  { seq = -1; cycle = 0; pc = 0; fn = ""; kind = Retire { instr = "" } }

let create ?sink ?(retires = false) ~capacity () =
  let capacity = max 1 capacity in
  {
    capacity;
    ring = Array.make capacity dummy_event;
    filled = 0;
    next = 0;
    next_seq = 0;
    sink;
    retires;
  }

let trace_retires t = t.retires

let emit t ~cycle ~pc ~fn kind =
  let e = { seq = t.next_seq; cycle; pc; fn; kind } in
  t.next_seq <- t.next_seq + 1;
  t.ring.(t.next) <- e;
  t.next <- (t.next + 1) mod t.capacity;
  if t.filled < t.capacity then t.filled <- t.filled + 1;
  match t.sink with None -> () | Some f -> f e

let emitted t = t.next_seq

(** The retained window, oldest first. *)
let recent t =
  let n = t.filled in
  let start = (t.next - n + t.capacity) mod t.capacity in
  List.init n (fun i -> t.ring.((start + i) mod t.capacity))

(* ---- rendering ------------------------------------------------------- *)

let kind_name = function
  | Retire _ -> "retire"
  | Setbound _ -> "setbound"
  | Checked_deref _ -> "checked_deref"
  | Metadata_uop _ -> "metadata_uop"
  | Cache_miss _ -> "cache_miss"
  | Violation _ -> "violation"
  | Fault_injected _ -> "fault_injected"
  | Trap _ -> "trap"

let pretty e =
  let details =
    match e.kind with
    | Retire { instr } -> instr
    | Setbound { base; bound; unsafe } ->
      Printf.sprintf "[0x%x, 0x%x)%s" base bound (if unsafe then " unsafe" else "")
    | Checked_deref { addr; width; is_store; base; bound } ->
      Printf.sprintf "%s %db @0x%x in [0x%x, 0x%x)"
        (if is_store then "store" else "load")
        width addr base bound
    | Metadata_uop { addr; is_store } ->
      Printf.sprintf "%s shadow @0x%x" (if is_store then "store" else "load") addr
    | Cache_miss { cls; level; addr; penalty } ->
      Printf.sprintf "%s %s @0x%x (+%d cyc)" level cls addr penalty
    | Violation { what; addr; base; bound } ->
      Printf.sprintf "%s @0x%x meta [0x%x, 0x%x)" what addr base bound
    | Fault_injected { site; target; bit; before; after } ->
      Printf.sprintf "%s @0x%x bit %d: 0x%x -> 0x%x" site target bit before
        after
    | Trap { what; policy; action; addr; base; bound } ->
      Printf.sprintf "%s @0x%x meta [0x%x, 0x%x) policy=%s -> %s" what addr
        base bound policy action
  in
  Printf.sprintf "%10d cyc=%-10d %-14s %-12s %s" e.seq e.cycle
    (kind_name e.kind) e.fn details

let kind_fields = function
  | Retire { instr } -> [ ("instr", Json.String instr) ]
  | Setbound { base; bound; unsafe } ->
    [ ("base", Json.Int base); ("bound", Json.Int bound);
      ("unsafe", Json.Bool unsafe) ]
  | Checked_deref { addr; width; is_store; base; bound } ->
    [
      ("addr", Json.Int addr);
      ("width", Json.Int width);
      ("is_store", Json.Bool is_store);
      ("base", Json.Int base);
      ("bound", Json.Int bound);
    ]
  | Metadata_uop { addr; is_store } ->
    [ ("addr", Json.Int addr); ("is_store", Json.Bool is_store) ]
  | Cache_miss { cls; level; addr; penalty } ->
    [
      ("class", Json.String cls);
      ("level", Json.String level);
      ("addr", Json.Int addr);
      ("penalty", Json.Int penalty);
    ]
  | Violation { what; addr; base; bound } ->
    [
      ("what", Json.String what);
      ("addr", Json.Int addr);
      ("base", Json.Int base);
      ("bound", Json.Int bound);
    ]
  | Fault_injected { site; target; bit; before; after } ->
    [
      ("site", Json.String site);
      ("target", Json.Int target);
      ("bit", Json.Int bit);
      ("before", Json.Int before);
      ("after", Json.Int after);
    ]
  | Trap { what; policy; action; addr; base; bound } ->
    [
      ("what", Json.String what);
      ("policy", Json.String policy);
      ("action", Json.String action);
      ("addr", Json.Int addr);
      ("base", Json.Int base);
      ("bound", Json.Int bound);
    ]

let to_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("cycle", Json.Int e.cycle);
       ("pc", Json.Int e.pc);
       ("fn", Json.String e.fn);
       ("event", Json.String (kind_name e.kind));
     ]
    @ kind_fields e.kind)

(** Chrome trace_event format (the JSON array flavour understood by
    chrome://tracing and Perfetto).  Cycles play the role of
    microseconds; stall-causing events get their penalty as a duration
    so metadata misses are visible as blocks on the timeline. *)
let to_chrome_json e =
  let dur = match e.kind with Cache_miss { penalty; _ } -> max penalty 1 | _ -> 1 in
  Json.Obj
    [
      ("name", Json.String (kind_name e.kind));
      ("cat", Json.String "hardbound");
      ("ph", Json.String "X");
      ("ts", Json.Int e.cycle);
      ("dur", Json.Int dur);
      ("pid", Json.Int 1);
      ("tid", Json.String e.fn);
      ("args", Json.Obj (("pc", Json.Int e.pc) :: kind_fields e.kind));
    ]

(* ---- file sinks ------------------------------------------------------ *)

type file_format = Jsonl | Chrome

type file_sink = { write : event -> unit; close : unit -> unit }

let file_sink format path =
  let oc = open_out path in
  match format with
  | Jsonl ->
    {
      write =
        (fun e ->
          output_string oc (Json.to_string (to_json e));
          output_char oc '\n');
      close = (fun () -> close_out oc);
    }
  | Chrome ->
    (* One streamed JSON array; trace viewers accept a trailing comma
       before the closing bracket, but we terminate it properly. *)
    output_string oc "[\n";
    let first = ref true in
    {
      write =
        (fun e ->
          if !first then first := false else output_string oc ",\n";
          output_string oc (Json.to_string (to_chrome_json e)));
      close =
        (fun () ->
          output_string oc "\n]\n";
          close_out oc);
    }
