(** Fleet-wide observability for sharded campaigns.

    Worker side: each forked shard worker appends crash-tolerant JSONL
    telemetry (periodic snapshots carrying a metrics registry dump, its
    open/closed span tree, GC quick-stat deltas and peak RSS, plus one
    observation record per executed injection) to a sidecar file next to
    its journal shard.  Supervisor side: an ambient collector records
    process-lifecycle events and tails the sidecars on demand, so the
    live endpoints serve an aggregated, worker-labeled fleet view while
    the campaign runs; post-run the same data merges into one unified
    Chrome trace with supervisor and worker tracks keyed by pid.

    The discipline that keeps this safe: sidecars have their own [.fleet]
    suffix (the shard merge never opens them), writes are flushed but
    never fsync'd (telemetry loss is harmless), and reads skip anything
    unparsable (a torn tail is expected, not an error).  Nothing here
    can perturb campaign reports, journals, or the perf gate. *)

type config = {
  sidecars : bool;
  chrome : string option;
}

let disabled = { sidecars = false; chrome = None }

let active c = c.sidecars || c.chrome <> None

(* A distinct extension on top of the shard journal path: [Merge] globs
   nothing and opens only [base.shardK], so telemetry can never be
   mistaken for campaign records. *)
let sidecar_path path = path ^ ".fleet"

(* ---- worker side ----------------------------------------------------- *)

type worker = {
  w_shard : int;
  w_pid : int;
  w_oc : out_channel;
  w_profile : Host.t;
      (* worker-local span tree (lifetime root + one span per run);
         deliberately NOT the ambient profiler, so the parent adopting an
         exhausted shard keeps its own profile intact *)
  w_reg : Metrics.t;
  mutable w_seq : int;
  mutable w_run_t0 : int64;
  mutable w_completed : int;
  mutable w_since_snap : int;
}

let snap_interval = 5

let append_line oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n';
  flush oc

let gc_json (g0 : Gc.stat) (g : Gc.stat) =
  Json.Obj
    [
      ("minor_words", Json.Float (g.Gc.minor_words -. g0.Gc.minor_words));
      ("major_words", Json.Float (g.Gc.major_words -. g0.Gc.major_words));
      ("minor_gcs", Json.Int (g.Gc.minor_collections - g0.Gc.minor_collections));
      ("major_gcs", Json.Int (g.Gc.major_collections - g0.Gc.major_collections));
    ]

let snapshot w =
  w.w_seq <- w.w_seq + 1;
  w.w_since_snap <- 0;
  append_line w.w_oc
    (Json.Obj
       [
         ("type", Json.String "snap");
         ("shard", Json.Int w.w_shard);
         ("pid", Json.Int w.w_pid);
         ("seq", Json.Int w.w_seq);
         ("t0_ns", Json.Int (Int64.to_int w.w_profile.Host.t0));
         ("at_ns", Json.Int (Int64.to_int (Clock.now_ns ())));
         ("completed", Json.Int w.w_completed);
         ("rss_kb", Json.Int (Host.peak_rss_kb ()));
         ("gc", gc_json w.w_profile.Host.root.Host.g0 (Gc.quick_stat ()));
         ("metrics", Metrics.snapshot w.w_reg);
         ("profile", Host.to_json w.w_profile);
       ])

let worker_begin ~path ~shard ~completed =
  let oc =
    open_out_gen
      [ Open_wronly; Open_creat; Open_append ]
      0o644 (sidecar_path path)
  in
  let w =
    {
      w_shard = shard;
      w_pid = Unix.getpid ();
      w_oc = oc;
      w_profile = Host.create ~name:(Printf.sprintf "worker-%d" shard) ();
      w_reg = Metrics.create ();
      w_seq = 0;
      w_run_t0 = 0L;
      w_completed = completed;
      w_since_snap = 0;
    }
  in
  snapshot w;
  w

let run_start w ~idx =
  w.w_run_t0 <- Clock.now_ns ();
  Host.open_span w.w_profile (Printf.sprintf "run %d" idx)

let run_done w ~idx ~outcome ~latency ~completed =
  Host.close_span w.w_profile;
  w.w_completed <- completed;
  let wall =
    let d = Int64.to_int (Int64.sub (Clock.now_ns ()) w.w_run_t0) in
    if d < 0 then 0 else d
  in
  Metrics.observe
    (Metrics.histogram w.w_reg
       ~labels:[ ("outcome", outcome) ]
       "hb_fleet.run_wall_ns")
    wall;
  (match latency with
  | Some l ->
    Metrics.observe
      (Metrics.histogram w.w_reg
         ~labels:[ ("outcome", outcome) ]
         "hb_fleet.detect_latency_instrs")
      l
  | None -> ());
  Metrics.inc
    (Metrics.counter w.w_reg ~labels:[ ("outcome", outcome) ] "hb_fleet.runs");
  append_line w.w_oc
    (Json.Obj
       [
         ("type", Json.String "obs");
         ("shard", Json.Int w.w_shard);
         ("pid", Json.Int w.w_pid);
         ("idx", Json.Int idx);
         ("outcome", Json.String outcome);
         ("wall_ns", Json.Int wall);
         ( "latency",
           match latency with None -> Json.Null | Some l -> Json.Int l );
       ]);
  w.w_since_snap <- w.w_since_snap + 1;
  if w.w_since_snap >= snap_interval then snapshot w

let worker_end w =
  Host.finish w.w_profile;
  (try snapshot w with Sys_error _ -> ());
  close_out_noerr w.w_oc

(* ---- supervisor events + ambient collector --------------------------- *)

type event = {
  e_at_ns : int64;
  e_kind : string;
  e_shard : int;
  e_pid : int option;
  e_detail : string;
}

type collector = {
  c_sidecars : string list;
  mutable c_events_rev : event list;
}

let current : collector option ref = ref None

let install ~sidecars = current := Some { c_sidecars = sidecars; c_events_rev = [] }
let uninstall () = current := None
let installed () = !current <> None

let event ~kind ~shard ?pid detail =
  match !current with
  | None -> ()
  | Some c ->
    c.c_events_rev <-
      {
        e_at_ns = Clock.now_ns ();
        e_kind = kind;
        e_shard = shard;
        e_pid = pid;
        e_detail = detail;
      }
      :: c.c_events_rev

let events () =
  match !current with None -> [] | Some c -> List.rev c.c_events_rev

(* ---- tolerant sidecar reader ----------------------------------------- *)

type snap = {
  n_pid : int;
  n_seq : int;
  n_t0_ns : int;
  n_at_ns : int;
  n_completed : int;
  n_rss_kb : int;
  n_gc_minor_words : float;
  n_gc_major_words : float;
  n_gc_minor : int;
  n_gc_major : int;
  n_profile : Json.t option;
}

type obs = {
  o_outcome : string;
  o_wall_ns : int;
  o_latency : int option;
}

type telemetry = { snaps : snap list; obs : obs list }

let jint ?(default = 0) k j =
  match Option.bind (Json.member k j) Json.to_int with
  | Some v -> v
  | None -> default

let jstr k j =
  match Json.member k j with Some (Json.String s) -> Some s | _ -> None

let jfloat k j =
  match Json.member k j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> 0.

(* A sidecar's writer may be SIGKILLed mid-line at any moment; the
   reader skips anything that does not parse (a torn tail, a truncated
   record) rather than raising — telemetry is advisory, and a parse
   failure here must never take down the serving thread. *)
let read_lines path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line -> go (line :: acc)
        in
        go [])

let read_sidecar path : telemetry =
  let records =
    List.filter_map
      (fun line ->
        match Json.of_string line with
        | j -> Some j
        | exception Json.Parse_error _ -> None)
      (read_lines path)
  in
  let snaps, obs =
    List.fold_left
      (fun (snaps, obs) j ->
        match jstr "type" j with
        | Some "snap" ->
          let gc = Json.member "gc" j in
          let gf k = match gc with Some g -> jfloat k g | None -> 0. in
          let gi k = match gc with Some g -> jint k g | None -> 0 in
          ( {
              n_pid = jint "pid" j;
              n_seq = jint "seq" j;
              n_t0_ns = jint "t0_ns" j;
              n_at_ns = jint "at_ns" j;
              n_completed = jint "completed" j;
              n_rss_kb = jint "rss_kb" j;
              n_gc_minor_words = gf "minor_words";
              n_gc_major_words = gf "major_words";
              n_gc_minor = gi "minor_gcs";
              n_gc_major = gi "major_gcs";
              n_profile = Json.member "profile" j;
            }
            :: snaps,
            obs )
        | Some "obs" -> (
          match jstr "outcome" j with
          | Some o ->
            ( snaps,
              {
                o_outcome = o;
                o_wall_ns = jint "wall_ns" j;
                o_latency = Option.bind (Json.member "latency" j) Json.to_int;
              }
              :: obs )
          | None -> (snaps, obs))
        | _ -> (snaps, obs))
      ([], []) records
  in
  { snaps = List.rev snaps; obs = List.rev obs }

let last_snap t =
  match List.rev t.snaps with [] -> None | s :: _ -> Some s

(* ---- aggregation ------------------------------------------------------ *)

let export_view reg c =
  let completed_sum = ref 0 and rss_sum = ref 0 and up = ref 0 in
  List.iteri
    (fun shard path ->
      let t = read_sidecar path in
      let wl = ("worker", string_of_int shard) in
      (match last_snap t with
      | None -> ()
      | Some s ->
        incr up;
        completed_sum := !completed_sum + s.n_completed;
        rss_sum := !rss_sum + s.n_rss_kb;
        let set name v = Metrics.set_counter reg ~labels:[ wl ] name v in
        set "hb_fleet.worker_completed" s.n_completed;
        set "hb_fleet.worker_pid" s.n_pid;
        set "hb_fleet.worker_seq" s.n_seq;
        set "hb_fleet.worker_rss_kb" s.n_rss_kb;
        set "hb_fleet.worker_snaps" (List.length t.snaps);
        set "hb_fleet.worker_gc_minor_words"
          (int_of_float s.n_gc_minor_words);
        set "hb_fleet.worker_gc_major_words"
          (int_of_float s.n_gc_major_words);
        set "hb_fleet.worker_gc_minor_collections" s.n_gc_minor;
        set "hb_fleet.worker_gc_major_collections" s.n_gc_major);
      List.iter
        (fun o ->
          let ol = ("outcome", o.o_outcome) in
          Metrics.observe
            (Metrics.histogram reg ~labels:[ ol; wl ] "hb_fleet.run_wall_ns")
            o.o_wall_ns;
          Metrics.observe
            (Metrics.histogram reg ~labels:[ ol ] "hb_fleet.run_wall_ns")
            o.o_wall_ns;
          match o.o_latency with
          | Some l ->
            Metrics.observe
              (Metrics.histogram reg ~labels:[ ol; wl ]
                 "hb_fleet.detect_latency_instrs")
              l;
            Metrics.observe
              (Metrics.histogram reg ~labels:[ ol ]
                 "hb_fleet.detect_latency_instrs")
              l
          | None -> ())
        t.obs)
    c.c_sidecars;
  Metrics.set_counter reg "hb_fleet.workers" !up;
  Metrics.set_counter reg "hb_fleet.completed" !completed_sum;
  Metrics.set_counter reg "hb_fleet.rss_kb" !rss_sum;
  (* event counters, per (kind, worker) and rolled up per kind *)
  let tally = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let bump k =
        Hashtbl.replace tally k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally k))
      in
      bump (e.e_kind, Some e.e_shard);
      bump (e.e_kind, None))
    (List.rev c.c_events_rev);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort compare
  |> List.iter (fun ((kind, shard), n) ->
         let labels =
           ("kind", kind)
           ::
           (match shard with
           | Some s -> [ ("worker", string_of_int s) ]
           | None -> [])
         in
         Metrics.set_counter reg ~labels "hb_fleet.events" n)

let export_live reg =
  match !current with None -> () | Some c -> export_view reg c

let event_json e =
  Json.Obj
    ([
       ("at_ns", Json.Int (Int64.to_int e.e_at_ns));
       ("kind", Json.String e.e_kind);
       ("shard", Json.Int e.e_shard);
     ]
    @ (match e.e_pid with Some p -> [ ("pid", Json.Int p) ] | None -> [])
    @ [ ("detail", Json.String e.e_detail) ])

let live_json () =
  match !current with
  | None -> None
  | Some c ->
    let workers =
      List.mapi
        (fun shard path ->
          let t = read_sidecar path in
          Json.Obj
            ([ ("shard", Json.Int shard) ]
            @ (match last_snap t with
              | None -> [ ("seen", Json.Bool false) ]
              | Some s ->
                [
                  ("seen", Json.Bool true);
                  ("pid", Json.Int s.n_pid);
                  ("completed", Json.Int s.n_completed);
                  ("rss_kb", Json.Int s.n_rss_kb);
                  ("gc_major_words", Json.Float s.n_gc_major_words);
                  ("snaps", Json.Int (List.length t.snaps));
                ])
            @ [ ("observations", Json.Int (List.length t.obs)) ]))
        c.c_sidecars
    in
    Some
      (Json.Obj
         [
           ("workers", Json.List workers);
           ( "events",
             Json.List (List.rev_map event_json c.c_events_rev) );
         ])

(* ---- the unified Chrome trace ----------------------------------------- *)

(* One incarnation per pid: a respawned shard gets a fresh track, so the
   timeline shows the dead worker's truncated track next to its
   successor's. *)
let incarnations t =
  List.fold_left
    (fun acc s ->
      if List.mem_assoc s.n_pid acc then
        List.map (fun (p, old) -> if p = s.n_pid then (p, s) else (p, old)) acc
      else acc @ [ (s.n_pid, s) ])
    [] t.snaps

(* A span-profile JSON tree ([Host.to_json]'s ["root"]) re-emitted as
   Chrome complete events on the track keyed by [pid], shifted onto the
   unified timebase.  An open span (wall_ns -1 in a mid-run snapshot)
   renders with zero duration. *)
let rec span_events ~pid ~shift_us depth j acc =
  let name = Option.value ~default:"?" (jstr "name" j) in
  let start_us = float_of_int (jint "start_ns" j) /. 1e3 in
  let wall = jint "wall_ns" j in
  let acc =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "X");
        ("ts", Json.Float (start_us +. shift_us));
        ("dur", Json.Float (float_of_int (max 0 wall) /. 1e3));
        ("pid", Json.Int pid);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("depth", Json.Int depth) ]);
      ]
    :: acc
  in
  match Option.bind (Json.member "children" j) Json.to_list with
  | None -> acc
  | Some children ->
    List.fold_left (fun acc c -> span_events ~pid ~shift_us (depth + 1) c acc)
      acc children

let meta_event ~pid name value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let unified_chrome ?host ~events ~sidecars () =
  let telems = List.mapi (fun shard p -> (shard, read_sidecar p)) sidecars in
  (* unified timebase: the monotonic clock is shared across processes on
     one machine, so the earliest absolute timestamp anywhere becomes 0 *)
  let t0_ref =
    let cands =
      (match host with Some h -> [ h.Host.t0 ] | None -> [])
      @ List.map (fun e -> e.e_at_ns) events
      @ List.concat_map
          (fun (_, t) ->
            List.map (fun s -> Int64.of_int s.n_t0_ns) t.snaps)
          telems
    in
    match cands with [] -> 0L | c -> List.fold_left min (List.hd c) c
  in
  let shift_of abs_ns = Int64.to_float (Int64.sub abs_ns t0_ref) /. 1e3 in
  let sup_pid = Unix.getpid () in
  let sup =
    meta_event ~pid:sup_pid "process_name"
      (Printf.sprintf "supervisor (pid %d)" sup_pid)
    ::
    (match host with
    | None -> []
    | Some h -> Host.chrome_events ~pid:sup_pid ~shift_us:(shift_of h.Host.t0) h)
  in
  let workers =
    List.concat_map
      (fun (shard, t) ->
        List.concat_map
          (fun (pid, (s : snap)) ->
            let track =
              meta_event ~pid "process_name"
                (Printf.sprintf "worker %d (pid %d)" shard pid)
            in
            match Option.bind s.n_profile (Json.member "root") with
            | None -> [ track ]
            | Some root ->
              track
              :: List.rev
                   (span_events ~pid
                      ~shift_us:(shift_of (Int64.of_int s.n_t0_ns))
                      0 root []))
          (incarnations t))
      telems
  in
  let instants =
    List.map
      (fun e ->
        Json.Obj
          [
            ( "name",
              Json.String (Printf.sprintf "%s worker %d" e.e_kind e.e_shard) );
            ("ph", Json.String "i");
            ("s", Json.String "g");
            ("ts", Json.Float (shift_of e.e_at_ns));
            ("pid", Json.Int sup_pid);
            ("tid", Json.Int 1);
            ( "args",
              Json.Obj
                ([
                   ("kind", Json.String e.e_kind);
                   ("shard", Json.Int e.e_shard);
                 ]
                @ (match e.e_pid with
                  | Some p -> [ ("worker_pid", Json.Int p) ]
                  | None -> [])
                @ [ ("detail", Json.String e.e_detail) ]) );
          ])
      events
  in
  Json.List (sup @ workers @ instants)

let write_chrome ?host ~events ~sidecars path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (Json.to_string_pretty (unified_chrome ?host ~events ~sidecars ())
        ^ "\n"))
