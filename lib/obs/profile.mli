(** Per-function flat profile: cycles, the Figure-5 stall decomposition
    (data / tag / base-bound), and check/metadata micro-ops attributed to
    the function executing them.  Functions are interned to dense ids;
    the arrays are exposed so the machine's attribution is plain array
    increments. *)

type t = {
  names : string array;
  instrs : int array;
  uops : int array;
  data_stalls : int array;
  tag_stalls : int array;
  bb_stalls : int array;
  check_uops : int array;
  metadata_uops : int array;
  checked_derefs : int array;
  setbounds : int array;
}

val create : names:string array -> t
(** [names.(i)] is the function with id [i]. *)

type row = {
  fn : string;
  instrs : int;
  uops : int;
  cycles : int;
  data_stalls : int;
  tag_stalls : int;
  bb_stalls : int;
  check_uops : int;
  metadata_uops : int;
  checked_derefs : int;
  setbounds : int;
}

val totals : t -> (string * int) list
(** Sums over every function, keyed by the [Stats] field each column must
    reconcile with ([instructions], [uops], [cycles], the charged stall
    decomposition, [check_uops], [metadata_uops], [checked_derefs],
    [setbound_instrs]). *)

val check : t -> expect:(string * int) list -> (unit, string) result
(** Compare {!totals} against the global counters (e.g. [Stats.fields]);
    [Error] names every key whose attributed sum disagrees. *)

val rows : t -> row list
(** Functions that executed at least one instruction, hottest first.
    [cycles = uops + data + tag + bb stalls] per function. *)

val to_table : t -> string
(** The [--profile] flat table. *)

val to_json : t -> Json.t

val export : t -> Metrics.t -> unit
(** Mirror into a metrics registry as [profile.*{fn=...}] series. *)
