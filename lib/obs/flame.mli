(** Calling-context profiler: a shadow call stack maintained by the
    machine at call/return sites feeds a calling-context tree whose
    per-context exclusive sums must reconcile exactly with the global
    [Stats] counters ({!check}), plus a per-page address-space heat map.
    Every exported artifact (folded stacks, speedscope JSON, heat-map
    JSON) is deterministic — byte-identical across identical runs. *)

type node = {
  id : int;            (** dense creation-order id; the root is 0 *)
  name : string;       (** frame name (enclosing function) *)
  parent : node option;(** [None] only for the root *)
  depth : int;         (** root = 0 *)
  mutable instrs : int;
  mutable uops : int;
  mutable data_stalls : int;
  mutable tag_stalls : int;
  mutable bb_stalls : int;
  mutable check_uops : int;
  mutable metadata_uops : int;
  mutable checked_derefs : int;
  mutable setbounds : int;
  mutable tlb_misses : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
}
(** One calling context.  The accumulators are exclusive (this context
    only) and machine-owned: the hot path stores into them directly,
    like [Attr]'s arrays.  Inclusive figures are derived at report
    time. *)

type t

val create : ?max_depth:int -> names:string array -> root:string -> unit -> t
(** [create ~names ~root ()] starts a tree whose root context is named
    [root]; [names] maps the machine's interned function ids to frame
    names.  [max_depth] (default 256) bounds the shadow stack: deeper
    pushes clamp to the cap context and count a truncation.  Raises
    [Hb_error.Error] if [max_depth < 1]. *)

val reset : t -> unit
(** Drop every context and heat counter (keeping names and
    configuration) — the campaign runner recycles one instance across
    injected runs. *)

(** {1 Shadow call stack (machine hot path)} *)

val enter : t -> int -> unit
(** Push the callee context for interned function id [fn]. *)

val leave : t -> unit
(** Pop one frame; clamped pushes unwind first, and the root is never
    popped (a restored machine may return more often than it calls). *)

val current : t -> node
(** Context charges should land on — the top of the shadow stack. *)

val depth : t -> int
(** Current stack depth including clamped pushes (root = 0). *)

val reset_stack : t -> unit
(** Reset the stack to the root without touching accumulated counts;
    called by [Snapshot.restore], whose target call context is unknown. *)

val heat_touch : t -> int -> unit
(** Count one cache-hierarchy access touching the given page index. *)

val heat_check : t -> int -> unit
(** Count one bounds check whose effective address falls in the page. *)

(** {1 Introspection} *)

val contexts : t -> int
val max_depth_seen : t -> int
val truncations : t -> int

val nodes : t -> node list
(** Creation order (deterministic); parents precede children. *)

val path : node -> string list
(** Frame names from the root down to the node. *)

val exclusive_cycles : node -> int

val inclusive : t -> int array
(** Inclusive cycles indexed by node id. *)

(** {1 Accounting identity} *)

val totals : t -> (string * int) list
(** Exclusive sums across every context, keyed by the [Stats] field each
    must reconcile with (the [Attr.totals] key set). *)

val check : t -> expect:(string * int) list -> (unit, string) result
(** Compare {!totals} against the global counters; any key present on
    both sides that disagrees is a leak. *)

(** {1 Exports (all deterministic)} *)

val folded_lines : t -> (string * int) list
(** [(stack, exclusive cycles)] per active context, sorted by stack;
    frame names are sanitized for the folded format (';' and
    whitespace replaced). *)

val folded : t -> string
(** FlameGraph folded-stacks text: one ["a;b;c cycles"] line per active
    context. *)

val speedscope : ?name:string -> t -> Json.t
(** Speedscope file-format document ("sampled" profile, weights =
    exclusive simulated cycles); hostile frame names are escaped by the
    {!Json} printer. *)

val report : ?top:int -> t -> string
(** Terminal table of the hottest contexts by exclusive cycles. *)

val export : t -> Metrics.t -> unit
(** Set the [hb_flame_contexts] / [hb_flame_max_depth] /
    [hb_flame_truncations] gauges. *)

(** {1 Address-space heat map} *)

val heat_pages : t -> (int * int * int) list
(** [(page, accesses, checks)] for every counted page, sorted by page
    index. *)

type heat_row = {
  h_page : int;
  h_addr : int;
  h_region : string;
  h_accesses : int;
  h_checks : int;
  h_resident : int;  (** non-zero bytes resident in the page *)
}
(** A resolved row: the machine supplies region names and residency (via
    the non-materializing [Physmem.peek_*] walkers), so this module
    never learns the memory layout. *)

val heatmap_json :
  ?meta:(string * Json.t) list -> page_size:int -> heat_row list -> Json.t

val heatmap_render : ?width:int -> heat_row list -> string
(** Per-region shade strips over each region's touched page span. *)
