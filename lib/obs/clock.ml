(** The one host clock.

    Every wall-clock reader in the tree — span profiling, campaign
    deadlines, progress ETAs — goes through this module, and this module
    reads only the OS monotonic clock (CLOCK_MONOTONIC via bechamel's
    stubs).  NTP steps therefore cannot fire deadlines early or push an
    ETA negative, and the determinism grep-gate in [test_hygiene] can
    police the entire clock surface by whitelisting the handful of
    host-side modules allowed to mention [Clock.].

    Nothing read from this clock may flow into a deterministic artifact
    (campaign reports, journals, timeline/attr dumps, the simulated-cycle
    bench baseline): wall time belongs in the explicitly host-varying
    channels only — span dumps, [hb_host_*] gauges, the /progress
    endpoint, and the advisory wall-time trajectory. *)

(* The raw source is monotonic already; the [max] fold makes the
   guarantee local and testable rather than inherited from the libc. *)
let last = ref 0L

let now_ns () =
  let t = Monotonic_clock.now () in
  if Int64.compare t !last > 0 then last := t;
  !last

let ns_of_s s = Int64.of_float (s *. 1e9)

let s_of_ns ns = Int64.to_float ns /. 1e9

(** Seconds elapsed since [t0] (a [now_ns] reading); never negative. *)
let elapsed_s ~t0 =
  let d = Int64.sub (now_ns ()) t0 in
  if Int64.compare d 0L < 0 then 0.0 else s_of_ns d
