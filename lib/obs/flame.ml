(** Calling-context profiler: the path-sensitive view the flat
    {!Profile} (per function) and {!Attr} (per PC) layers lack.

    The machine maintains a *shadow call stack* at its [Call] /
    [Call_reg] / [Ret] sites: {!enter} descends into (or creates) the
    child context for the callee, {!leave} pops — never below the root —
    and every retired instruction charges the same attributable deltas
    the profile and attribution layers charge ({!node} exposes the
    mutable accumulators, like [Attr]'s arrays) to the context that was
    current when the instruction started.  The contexts form a
    calling-context tree: one node per distinct call path, interned so a
    loop calling the same function a million times costs one node.

    Accounting identity: every instruction charges exactly one context,
    so the per-key *exclusive* sums across all contexts must equal the
    global [Stats] counters ({!check}, mirroring [Attr.check] /
    [Timeline.check]); a leak means the shadow stack itself is lying and
    the CLI exits non-zero.  Inclusive figures are derived at report
    time, never accumulated on the hot path.

    The stack is bounded: pushes past [max_depth] clamp to the deepest
    node and count a truncation (Olden's recursive workloads go deep);
    matching leaves unwind the clamp first, so the accounting stays
    exact — clamped instructions simply charge the cap context.

    The same module owns the address-space heat map: per-page access
    counts ({!heat_touch}, charged at the cache-hierarchy access point,
    so tag/shadow metadata traffic lands in its own pages) and bounds-
    check counts ({!heat_check}).  The module never sees simulator
    types: the machine passes page indices in and region/residency
    classifiers back at report time, so the dependency points obs-ward
    like {!Timeline}'s.

    Everything exported is deterministic: folded stacks are sorted,
    speedscope frames follow node-creation order (itself deterministic),
    heat pages are sorted by index — identical runs produce
    byte-identical artifacts. *)

type node = {
  id : int;                      (* dense creation-order id; root = 0 *)
  name : string;                 (* frame name (enclosing function) *)
  parent : node option;          (* [None] only for the root *)
  depth : int;                   (* root = 0 *)
  (* exclusive accumulators, machine-owned (plain stores, like [Attr]) *)
  mutable instrs : int;
  mutable uops : int;
  mutable data_stalls : int;
  mutable tag_stalls : int;
  mutable bb_stalls : int;
  mutable check_uops : int;
  mutable metadata_uops : int;
  mutable checked_derefs : int;
  mutable setbounds : int;
  mutable tlb_misses : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
}

type t = {
  names : string array;          (* frame name per interned function id *)
  children : (int * int, node) Hashtbl.t;  (* (parent id, fn id) -> node *)
  mutable nodes_rev : node list; (* newest first; parents precede children *)
  mutable n_nodes : int;
  mutable cur : node;            (* top of the shadow stack *)
  mutable clamped : int;         (* pushes currently beyond the depth cap *)
  max_depth : int;
  mutable max_depth_seen : int;
  mutable truncations : int;
  (* address-space heat: page index -> dynamic counts *)
  heat_access : (int, int) Hashtbl.t;
  heat_checks : (int, int) Hashtbl.t;
}

let mk_node ~id ~name ~parent ~depth =
  {
    id;
    name;
    parent;
    depth;
    instrs = 0;
    uops = 0;
    data_stalls = 0;
    tag_stalls = 0;
    bb_stalls = 0;
    check_uops = 0;
    metadata_uops = 0;
    checked_derefs = 0;
    setbounds = 0;
    tlb_misses = 0;
    l1_misses = 0;
    l2_misses = 0;
  }

let create ?(max_depth = 256) ~names ~root () =
  if max_depth < 1 then
    Hb_error.fail ~component:"flame" "max depth must be positive (got %d)"
      max_depth;
  let r = mk_node ~id:0 ~name:root ~parent:None ~depth:0 in
  {
    names;
    children = Hashtbl.create 256;
    nodes_rev = [ r ];
    n_nodes = 1;
    cur = r;
    clamped = 0;
    max_depth;
    max_depth_seen = 0;
    truncations = 0;
    heat_access = Hashtbl.create 256;
    heat_checks = Hashtbl.create 64;
  }

(** Restart the recording: drop every context and heat counter, keep the
    interned name table and configuration (the campaign runner reuses
    one instance across injected runs). *)
let reset t =
  let root = mk_node ~id:0 ~name:(List.nth t.nodes_rev (t.n_nodes - 1)).name
      ~parent:None ~depth:0 in
  Hashtbl.reset t.children;
  t.nodes_rev <- [ root ];
  t.n_nodes <- 1;
  t.cur <- root;
  t.clamped <- 0;
  t.max_depth_seen <- 0;
  t.truncations <- 0;
  Hashtbl.reset t.heat_access;
  Hashtbl.reset t.heat_checks

(* ---- shadow call stack ----------------------------------------------- *)

let current t = t.cur

let depth t = t.cur.depth + t.clamped

(** Descend into the callee context [fn] (an interned function id).
    Beyond the depth cap the stack clamps: charges keep landing on the
    cap context and a truncation is counted, so the exclusive-sum
    identity survives arbitrarily deep recursion. *)
let enter t fn =
  if t.cur.depth + t.clamped >= t.max_depth then begin
    t.clamped <- t.clamped + 1;
    t.truncations <- t.truncations + 1
  end
  else begin
    let key = (t.cur.id, fn) in
    let child =
      match Hashtbl.find_opt t.children key with
      | Some n -> n
      | None ->
        let n =
          mk_node ~id:t.n_nodes ~name:t.names.(fn) ~parent:(Some t.cur)
            ~depth:(t.cur.depth + 1)
        in
        Hashtbl.replace t.children key n;
        t.nodes_rev <- n :: t.nodes_rev;
        t.n_nodes <- t.n_nodes + 1;
        n
    in
    t.cur <- child;
    if child.depth > t.max_depth_seen then t.max_depth_seen <- child.depth
  end;
  if t.cur.depth + t.clamped > t.max_depth_seen then
    t.max_depth_seen <- t.cur.depth + t.clamped

(** Pop one frame; clamped pushes unwind first and the root is never
    popped (a restored machine may execute more returns than calls). *)
let leave t =
  if t.clamped > 0 then t.clamped <- t.clamped - 1
  else
    match t.cur.parent with None -> () | Some p -> t.cur <- p

(** Reset the shadow stack to the root *without* touching the
    accumulated contexts — [Snapshot.restore] calls this: the restored
    machine resumes in an unknown call context, and charging it to the
    root keeps the exclusive-sum identity exact. *)
let reset_stack t =
  t.cur <- (match t.nodes_rev with [] -> t.cur | _ ->
    List.nth t.nodes_rev (t.n_nodes - 1));
  t.clamped <- 0

let contexts t = t.n_nodes

let max_depth_seen t = t.max_depth_seen

let truncations t = t.truncations

(** Contexts in creation order (deterministic: execution is); a node's
    parent always precedes it. *)
let nodes t = List.rev t.nodes_rev

let exclusive_cycles n =
  n.uops + n.data_stalls + n.tag_stalls + n.bb_stalls

(** Frame names from the root down to [n], root first. *)
let path n =
  let rec go acc n =
    match n.parent with None -> n.name :: acc | Some p -> go (n.name :: acc) p
  in
  go [] n

(* ---- accounting identity --------------------------------------------- *)

(** Exclusive sums over every context, keyed by the {!Hb_cpu.Stats} field
    each must reconcile with (the [Attr.totals] key set). *)
let totals t =
  let sum f = List.fold_left (fun acc n -> acc + f n) 0 t.nodes_rev in
  let uops = sum (fun n -> n.uops) in
  let stalls =
    sum (fun n -> n.data_stalls + n.tag_stalls + n.bb_stalls)
  in
  [
    ("instructions", sum (fun n -> n.instrs));
    ("uops", uops);
    ("cycles", uops + stalls);
    ("charged_data_stalls", sum (fun n -> n.data_stalls));
    ("charged_tag_stalls", sum (fun n -> n.tag_stalls));
    ("charged_bb_stalls", sum (fun n -> n.bb_stalls));
    ("check_uops", sum (fun n -> n.check_uops));
    ("metadata_uops", sum (fun n -> n.metadata_uops));
    ("checked_derefs", sum (fun n -> n.checked_derefs));
    ("setbound_instrs", sum (fun n -> n.setbounds));
  ]

(** Compare {!totals} against the global counters (e.g. [Stats.fields]);
    every key present on both sides must agree exactly. *)
let check t ~expect =
  let bad =
    List.filter_map
      (fun (k, v) ->
        match List.assoc_opt k expect with
        | Some e when e <> v ->
          Some (Printf.sprintf "%s: contexts %d <> global %d" k v e)
        | _ -> None)
      (totals t)
  in
  match bad with
  | [] -> Ok ()
  | msgs ->
    Error ("calling-context exclusive-sum leak: " ^ String.concat "; " msgs)

(* ---- folded stacks (FlameGraph) -------------------------------------- *)

(* The folded format reserves ';' (frame separator) and ' ' (count
   separator): sanitize frame names so hostile function names cannot
   forge extra frames or counts. *)
let folded_frame name =
  String.map
    (fun c ->
      match c with
      | ';' -> ','
      | ' ' | '\n' | '\r' | '\t' -> '_'
      | c when Char.code c < 0x20 -> '?'
      | c -> c)
    name

let folded_key n = String.concat ";" (List.map folded_frame (path n))

(** (folded stack, exclusive cycles) for every context that retired at
    least one instruction, sorted by stack — the raw material both the
    file exporter and the campaign's per-outcome aggregation consume. *)
let folded_lines t =
  List.sort compare
    (List.filter_map
       (fun n ->
         if n.instrs > 0 then Some (folded_key n, exclusive_cycles n)
         else None)
       t.nodes_rev)

(** Brendan-Gregg folded-stacks text: one ["a;b;c cycles"] line per
    context, sorted, byte-identical across identical runs. *)
let folded t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (stack, cycles) -> Printf.bprintf b "%s %d\n" stack cycles)
    (folded_lines t);
  Buffer.contents b

(* ---- speedscope JSON -------------------------------------------------- *)

(** Speedscope file-format document (loads in speedscope.app and any
    Chrome-trace-adjacent viewer): one "sampled" profile whose samples
    are the calling contexts and whose weights are exclusive cycles.
    Frame indices are node ids — creation order — so the document is
    deterministic; hostile frame names are escaped by the {!Json}
    printer ({!Json.escape_to} is the single escaper). *)
let speedscope ?(name = "hardbound") t =
  let ns = nodes t in
  let frames =
    List.map (fun n -> Json.Obj [ ("name", Json.String n.name) ]) ns
  in
  let active = List.filter (fun n -> n.instrs > 0) ns in
  let sample n =
    let rec ids acc n =
      match n.parent with
      | None -> n.id :: acc
      | Some p -> ids (n.id :: acc) p
    in
    Json.List (List.map (fun i -> Json.Int i) (ids [] n))
  in
  let weights = List.map exclusive_cycles active in
  let total = List.fold_left ( + ) 0 weights in
  Json.Obj
    [
      ( "$schema",
        Json.String "https://www.speedscope.app/file-format-schema.json" );
      ("shared", Json.Obj [ ("frames", Json.List frames) ]);
      ( "profiles",
        Json.List
          [
            Json.Obj
              [
                ("type", Json.String "sampled");
                ("name", Json.String (name ^ " (simulated cycles)"));
                ("unit", Json.String "none");
                ("startValue", Json.Int 0);
                ("endValue", Json.Int total);
                ("samples", Json.List (List.map sample active));
                ("weights", Json.List (List.map (fun w -> Json.Int w) weights));
              ];
          ] );
      ("name", Json.String name);
      ("exporter", Json.String "hardbound");
      ("activeProfileIndex", Json.Int 0);
    ]

(* ---- terminal context report ----------------------------------------- *)

(* Inclusive cycles per node id: children are created after their
   parents, so folding newest-to-oldest sees every child before its
   parent. *)
let inclusive t =
  let incl = Array.make t.n_nodes 0 in
  List.iter
    (fun n ->
      incl.(n.id) <- incl.(n.id) + exclusive_cycles n;
      match n.parent with
      | None -> ()
      | Some p -> incl.(p.id) <- incl.(p.id) + incl.(n.id))
    t.nodes_rev;
  incl

(** Hottest calling contexts (by exclusive cycles), with the inclusive
    roll-up, check/metadata micro-ops, stall decomposition and hierarchy
    misses per context. *)
let report ?(top = 10) t =
  let incl = inclusive t in
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "flame: %d context(s), max depth %d (cap %d, %d truncation(s))\n"
    t.n_nodes t.max_depth_seen t.max_depth t.truncations;
  let active = List.filter (fun n -> n.instrs > 0) t.nodes_rev in
  let ranked =
    List.sort
      (fun a b -> compare (exclusive_cycles b, a.id) (exclusive_cycles a, b.id))
      active
  in
  let shown = List.filteri (fun i _ -> i < top) ranked in
  Printf.bprintf b "%-40s %10s %10s %8s %6s %6s %8s %6s\n" "context"
    "incl cyc" "excl cyc" "instrs" "chk" "meta" "stalls" "miss";
  List.iter
    (fun n ->
      let stack = folded_key n in
      let stack =
        if String.length stack <= 40 then stack
        else ".." ^ String.sub stack (String.length stack - 38) 38
      in
      Printf.bprintf b "%-40s %10d %10d %8d %6d %6d %8d %6d\n" stack
        incl.(n.id) (exclusive_cycles n) n.instrs n.check_uops
        n.metadata_uops
        (n.data_stalls + n.tag_stalls + n.bb_stalls)
        (n.tlb_misses + n.l1_misses + n.l2_misses))
    shown;
  let omitted = List.length ranked - List.length shown in
  if omitted > 0 then
    Printf.bprintf b "%-40s\n" (Printf.sprintf "... (%d more contexts)" omitted);
  let total =
    List.fold_left (fun acc n -> acc + exclusive_cycles n) 0 active
  in
  Printf.bprintf b "%-40s %10d %10d\n" "TOTAL" total total;
  Buffer.contents b

(* ---- metrics gauges --------------------------------------------------- *)

(** [hb_flame_contexts], [hb_flame_max_depth], [hb_flame_truncations]. *)
let export t (reg : Metrics.t) =
  Metrics.set_counter reg "hb.flame_contexts" t.n_nodes;
  Metrics.set_counter reg "hb.flame_max_depth" t.max_depth_seen;
  Metrics.set_counter reg "hb.flame_truncations" t.truncations

(* ---- address-space heat map ------------------------------------------ *)

let bump tbl page =
  match Hashtbl.find_opt tbl page with
  | Some n -> Hashtbl.replace tbl page (n + 1)
  | None -> Hashtbl.replace tbl page 1

(** Count one cache-hierarchy access touching [page]. *)
let heat_touch t page = bump t.heat_access page

(** Count one bounds check whose effective address falls in [page]. *)
let heat_check t page = bump t.heat_checks page

(** (page, accesses, checks) for every page either counter saw, sorted
    by page index. *)
let heat_pages t =
  let pages = Hashtbl.create 64 in
  Hashtbl.iter (fun p _ -> Hashtbl.replace pages p ()) t.heat_access;
  Hashtbl.iter (fun p _ -> Hashtbl.replace pages p ()) t.heat_checks;
  let get tbl p = match Hashtbl.find_opt tbl p with Some n -> n | None -> 0 in
  List.sort compare
    (Hashtbl.fold
       (fun p () acc ->
         (p, get t.heat_access p, get t.heat_checks p) :: acc)
       pages [])

(** One resolved heat-map row: the machine supplies region names and
    residency (via the non-materializing [Physmem.peek_*] walkers) so
    this module never learns the memory layout. *)
type heat_row = {
  h_page : int;
  h_addr : int;
  h_region : string;
  h_accesses : int;
  h_checks : int;
  h_resident : int;  (* non-zero bytes resident in the page *)
}

let heatmap_json ?(meta = []) ~page_size rows =
  let region_order = ref [] in
  let by_region = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt by_region r.h_region with
      | Some (pages, acc, chk, res) ->
        Hashtbl.replace by_region r.h_region
          (pages + 1, acc + r.h_accesses, chk + r.h_checks,
           res + r.h_resident)
      | None ->
        region_order := r.h_region :: !region_order;
        Hashtbl.replace by_region r.h_region
          (1, r.h_accesses, r.h_checks, r.h_resident))
    rows;
  Json.Obj
    (meta
    @ [
        ("heatmap", Json.String "hb-address-space");
        ("version", Json.Int 1);
        ("page_size", Json.Int page_size);
        ( "regions",
          Json.List
            (List.rev_map
               (fun name ->
                 let pages, acc, chk, res = Hashtbl.find by_region name in
                 Json.Obj
                   [
                     ("region", Json.String name);
                     ("pages", Json.Int pages);
                     ("accesses", Json.Int acc);
                     ("checks", Json.Int chk);
                     ("resident_bytes", Json.Int res);
                   ])
               !region_order) );
        ( "pages",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("page", Json.Int r.h_page);
                     ("addr", Json.Int r.h_addr);
                     ("region", Json.String r.h_region);
                     ("accesses", Json.Int r.h_accesses);
                     ("checks", Json.Int r.h_checks);
                     ("resident_bytes", Json.Int r.h_resident);
                   ])
               rows) );
      ])

let shade_levels = [| " "; "\xe2\x96\x91"; "\xe2\x96\x92"; "\xe2\x96\x93";
                      "\xe2\x96\x88" |]
(* ░▒▓█ *)

let shade v vmax =
  if vmax <= 0 || v <= 0 then shade_levels.(0)
  else
    let n = Array.length shade_levels in
    shade_levels.(min (n - 1) (1 + ((v * (n - 1) - 1) / vmax)))

(* Compress a page span to at most [width] buckets by summing. *)
let strip ~width lo hi value =
  let span = hi - lo + 1 in
  let w = min width span in
  let buckets = Array.make w 0 in
  for p = lo to hi do
    let b = (p - lo) * w / span in
    buckets.(b) <- buckets.(b) + value p
  done;
  let vmax = Array.fold_left max 0 buckets in
  String.concat ""
    (Array.to_list (Array.map (fun v -> shade v vmax) buckets))

(** Per-region shade strips over each region's touched page span:
    program pages vs tag/shadow metadata pages at a glance. *)
let heatmap_render ?(width = 48) rows =
  let b = Buffer.create 1024 in
  if rows = [] then
    Buffer.add_string b "heatmap: no pages touched\n"
  else begin
    Printf.bprintf b
      "address-space heat (%d page(s); rows scaled to their own max):\n"
      (List.length rows);
    let region_order = ref [] in
    let by_region = Hashtbl.create 8 in
    List.iter
      (fun r ->
        (match Hashtbl.find_opt by_region r.h_region with
         | Some rs -> Hashtbl.replace by_region r.h_region (r :: rs)
         | None ->
           region_order := r.h_region :: !region_order;
           Hashtbl.replace by_region r.h_region [ r ]))
      rows;
    List.iter
      (fun name ->
        let rs = List.rev (Hashtbl.find by_region name) in
        let lo = List.fold_left (fun a r -> min a r.h_page) max_int rs in
        let hi = List.fold_left (fun a r -> max a r.h_page) 0 rs in
        let tbl = Hashtbl.create 64 in
        List.iter (fun r -> Hashtbl.replace tbl r.h_page r) rs;
        let value f p =
          match Hashtbl.find_opt tbl p with Some r -> f r | None -> 0
        in
        let accesses = List.fold_left (fun a r -> a + r.h_accesses) 0 rs in
        let checks = List.fold_left (fun a r -> a + r.h_checks) 0 rs in
        Printf.bprintf b
          "  %-12s %4d page(s)  %10d access(es)  %8d check(s)\n" name
          (List.length rs) accesses checks;
        Printf.bprintf b "  %-12s |%s| accesses\n" ""
          (strip ~width lo hi (value (fun r -> r.h_accesses)));
        if checks > 0 then
          Printf.bprintf b "  %-12s |%s| checks\n" ""
            (strip ~width lo hi (value (fun r -> r.h_checks))))
      (List.rev !region_order)
  end;
  Buffer.contents b
