(** Deterministic fault-injection campaigns.

    A campaign answers the paper's robustness question — *what fraction
    of injected corruptions does the HardBound checker catch?* — by
    running N single-fault injections of a workload against a golden
    (uninjected) reference and classifying every run into exactly one
    {!Outcome} bucket.  Everything derives from one explicit seed: the
    same [config] and workload produce a byte-identical JSON report. *)

module Machine := Hb_cpu.Machine
module Metrics := Hb_obs.Metrics
module Json := Hb_obs.Json

type config = {
  label : string;  (** workload name, for reports *)
  runs : int;
  seed : int;
  sites : Injector.site list;
  checkpoints : int;
      (** intermediate golden-divergence checkpoints across the run
          (digest compares at [instrs / (checkpoints+1)] intervals) *)
  watchdog_factor : int;
      (** hang budget, as a multiple of the golden instruction count *)
  keep_run_records : bool;  (** include per-run records in the JSON *)
  window_interval : int;
      (** instruction width of the timeline windows each injection is
          binned into ([window = at / window_interval] in the per-run
          JSON) — aligns campaign records with [Hb_obs.Timeline] phase
          windows without perturbing the injection draws *)
  policy : Hb_recover.Policy.t;
      (** recovery policy each injected run executes under.  [Abort]
          (the default) is the historical stop-at-first-violation
          behavior; any other policy routes traps through the
          {!Hb_recover.Recover} supervisor, classifying a run as
          [Detected] as soon as one trap fires even if the policy then
          carries it to a clean exit *)
  violation_budget : int;
      (** traps a continuing policy may absorb per run before the
          supervisor forces an abort *)
}

val default : config
(** 100 runs, seed 1, all sites, 16 checkpoints, watchdog x3,
    10k-instruction report windows, abort policy, budget 64. *)

type record = {
  idx : int;
  run_seed : int;  (** reproduces this run's target/bit choices alone *)
  site : Injector.site;
  at_instr : int;  (** injected after this many retired instructions *)
  injection : Injector.injection;
  outcome : Outcome.t;
  status : string;  (** final machine status / hang / exception detail *)
  latency : int option;
      (** instructions from injection to trap ([Detected] only) *)
  diverged_at : int option;
      (** first checkpoint where the architectural digest left golden *)
}

type report = {
  config : config;
  golden_status : string;
  golden_instrs : int;
  golden_output_bytes : int;
  golden_digest : int64;
  checkpoint_interval : int;
  records : record list;  (** one per run, in plan order *)
  deadline_expired : bool;
      (** the wall-clock budget ran out first: [records] is the
          completed prefix, and the journal (if one was written) can
          resume the remainder *)
}

val run :
  ?journal:string ->
  ?resume:string ->
  ?deadline:Hb_recover.Deadline.t ->
  ?progress:Hb_obs.Progress.t ->
  ?observe:(record -> Machine.t -> unit) ->
  mk:(unit -> Machine.t) ->
  config ->
  report
(** Execute a campaign.  [mk] builds a fresh machine for the workload
    (the library deliberately does not know how to compile programs).
    Raises {!Hb_error.Hb_error} if the golden run does not exit cleanly
    or the config is vacuous.

    [observe] sees each freshly-executed record together with the
    machine that produced it, before the next run reuses that machine —
    the CLI's flame aggregator reads per-run calling-context trees this
    way.  It is strictly read-only with respect to the campaign: the
    report and journal are byte-identical with and without it.

    [journal] writes a crash-resilient JSONL journal: a header binding
    the config and golden reference, then one fsync'd record per
    completed run.  [resume] re-opens such a journal, re-derives the
    plan (a pure function of the config seed), executes only the runs
    the journal never recorded, and returns a report byte-identical to
    an uninterrupted campaign's; the config must match the journal's
    header and the same build/workload must reproduce its golden digest.
    The two are mutually exclusive — a resumed campaign appends to the
    journal it resumes from.  [deadline] bounds wall-clock time, checked
    between runs: on expiry the report covers the completed prefix and
    is flagged [deadline_expired].

    [progress] attaches a live {!Hb_obs.Progress} tracker (injection
    index, outcome tallies, ETA) for the [/progress] endpoint and the
    stderr ticker; it is read-only with respect to the campaign, whose
    report/journal stay byte-identical with or without it.  When an
    ambient {!Hb_obs.Host} profiler is installed, the golden reference
    and the injection sweep run under spans, and a GC/RSS telemetry
    sample is taken every 25 executed runs. *)

(** {2 Sharded execution hooks}

    Everything {!Hb_shard} needs to partition a campaign across forked
    worker processes and deterministically reassemble the serial report:
    the plan is a pure function of the config, each record is a pure
    function of its plan entry plus the golden reference, and the
    journal-record codecs below define the shard files' on-disk format.
    None of these entry points perturb the serial path — [run] is
    implemented on top of them. *)

type golden
(** The golden (uninjected) reference: status, output, instruction
    count, checkpoint digests.  Deterministic for a given workload and
    build. *)

val prepare : mk:(unit -> Machine.t) -> config -> golden
(** Validate the config and execute the golden reference (under a
    ["golden"] host span).  Raises {!Hb_error.Hb_error} if the config is
    vacuous or the golden run does not exit cleanly. *)

type plan_entry = {
  p_idx : int;
  p_seed : int;
  p_site : Injector.site;
  p_at : int;
}

val plan : config -> golden -> plan_entry list
(** The campaign's full injection plan, in index order.  A pure function
    of (config, golden): every process re-derives the identical list. *)

val execute_plan :
  mk:(unit -> Machine.t) ->
  cfg:config ->
  golden:golden ->
  ?select:(int -> bool) ->
  ?on_start:(plan_entry -> unit) ->
  ?on_record:(record -> unit) ->
  ?observe:(record -> Machine.t -> unit) ->
  ?writer:Hb_recover.Journal.writer ->
  ?deadline:Hb_recover.Deadline.t ->
  ?progress:Hb_obs.Progress.t ->
  prior:record list ->
  unit ->
  report
(** Execute the plan entries that [select] claims (all, by default) and
    that [prior] has not already recorded, journaling each fresh record
    to [writer].  [on_start] fires before each run (shard workers write
    their heartbeat here), [on_record] after its record is journaled;
    neither influences the records.  The returned report covers
    [prior] plus the fresh records of the selected slice only — its
    [deadline_expired] flag is set if the wall clock ran out first. *)

val header_json : config -> golden -> Hb_obs.Json.t
val check_header : string -> Hb_obs.Json.t -> config -> unit
val check_golden : string -> Hb_obs.Json.t -> golden -> unit

val run_record_json : window_interval:int -> record -> Hb_obs.Json.t
(** A record as journaled (the per-run report JSON plus
    [{"type":"run"}]). *)

val record_of_json : string -> Hb_obs.Json.t -> record
(** Decode a journaled run record; the string names the journal in
    errors. *)

val load_journal : string -> Hb_obs.Json.t * record list * bool
(** Read a campaign journal: (header, completed records deduplicated
    first-wins, saw-done-marker).  Raises on a missing header or a
    record that is neither run/ckpt/done. *)

val report_of_header :
  cfg:config ->
  ?deadline_expired:bool ->
  string ->
  Hb_obs.Json.t ->
  record list ->
  report
(** Assemble a report from a journal header and run records without
    executing anything — byte-identical to the serial runner's report
    for the same records. *)

val count : report -> Injector.site option -> Outcome.t -> int
(** Runs of [site] (all sites if [None]) that landed in the bucket. *)

val coverage_table : report -> string
(** Per-site outcome counts and detection coverage, as aligned text. *)

val to_json : report -> Json.t
(** Deterministic report: same seed in, byte-identical JSON out. *)

val export_metrics : report -> Metrics.t -> unit
(** Publish [fault.*] counters and the detection-latency histogram into
    an [hb_obs] metrics registry. *)

(** {2 Stochastic single-run mode}

    The CLI's [--inject SITES:RATE:SEED] without [--campaign]: one run,
    each retired instruction injecting with probability [rate]. *)

type stochastic = {
  injections : (int * Injector.injection) list;
      (** (instruction count, corruption), in program order *)
  s_outcome : Outcome.t;
  s_status : string;
  s_instrs : int;
}

val stochastic_run : mk:(unit -> Machine.t) -> Injector.spec -> stochastic
