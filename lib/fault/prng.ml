(** The one pseudo-random source of the fault-injection subsystem.

    SplitMix64 (Steele, Lea & Flood 2014): tiny state, excellent mixing,
    and — the property everything here depends on — fully deterministic
    from an explicit integer seed.  Nothing in the simulator may use
    [Random] or wall-clock entropy (enforced by [test_hygiene]); every
    randomized decision threads through a value of this type. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Non-negative 62-bit draw (an OCaml [int] on 64-bit systems). *)
let int t = Int64.to_int (Int64.shift_right_logical (next t) 2)

(** Uniform draw in [0, n).  The modulo bias is < 2^-30 for every [n] the
    injector uses (addresses, registers, bit positions). *)
let below t n =
  if n <= 0 then invalid_arg "Prng.below: bound must be positive";
  int t mod n

let bool t = Int64.logand (next t) 1L = 1L

(** Uniform in [0, 1): the top 53 bits scaled by 2^-53. *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

(** A fresh seed derived from this stream — used to give every campaign
    run its own independent, individually-reproducible generator. *)
let derive_seed t = int t
