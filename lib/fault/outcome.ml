(** The campaign taxonomy: every injected run lands in exactly one
    bucket.  Classification priority (applied by {!Campaign}):
    trap > crash > hang > wrong output > internal divergence > masked. *)

type t =
  | Detected  (** the checker trapped (bounds / non-pointer / temporal /
                  software abort) after the injection *)
  | Masked  (** ran to completion with output, exit code and final
                architectural state identical to the golden run *)
  | Silent_corruption  (** ran to completion, no trap, but output or exit
                           code differs from golden — the scary bucket *)
  | Divergence  (** output and exit identical, but architectural state
                    differed from golden at a checkpoint or at exit *)
  | Hang  (** still running when the watchdog budget expired *)
  | Crash  (** the simulator itself faulted (decode error, internal
               invariant, [Hb_error]) instead of trapping cleanly *)

let all = [ Detected; Masked; Silent_corruption; Divergence; Hang; Crash ]

let name = function
  | Detected -> "detected"
  | Masked -> "masked"
  | Silent_corruption -> "silent_corruption"
  | Divergence -> "divergence"
  | Hang -> "hang"
  | Crash -> "crash"

(** Inverse of {!name} — the campaign journal reader reconstructs
    persisted run records with it. *)
let of_name = function
  | "detected" -> Some Detected
  | "masked" -> Some Masked
  | "silent_corruption" -> Some Silent_corruption
  | "divergence" -> Some Divergence
  | "hang" -> Some Hang
  | "crash" -> Some Crash
  | _ -> None

let describe = function
  | Detected -> "checker trapped after the injection"
  | Masked -> "outcome identical to the golden run"
  | Silent_corruption -> "wrong output or exit code, no trap"
  | Divergence -> "same output, architectural state diverged"
  | Hang -> "watchdog budget expired"
  | Crash -> "simulator fault instead of a clean trap"
