(** Single-bit fault injection into a live {!Machine}.

    Five fault sites cover the HardBound data/metadata pipeline:

    - [Mem_word]: a bit in a touched program-data word (globals / heap /
      stack) — a classic SWIFI memory flip.  The word's tag is left
      alone, modelling a hardware upset in the data array only.
    - [Tag_bits]: a bit of a word's pointer tag (1 or 4 bits depending
      on the encoding scheme) — corrupts the "is this a pointer?"
      metadata itself.
    - [Shadow_entry]: a bit in the base/bound shadow entry of a word
      tagged as a pointer — corrupts a stored pointer's bounds.
    - [Reg_value]: a bit in a live register value.
    - [Reg_bounds]: a bit in the base or bound metadata of a register
      currently carrying bounds.

    Data/register-value targets are chosen uniformly over *touched*
    state so injections land where the workload actually lives; the two
    metadata-bounds sites prefer *live* metadata (a flip in a never-
    consulted shadow slot would tell us nothing about the checker).  All
    randomness comes from the caller's {!Prng}. *)

module Machine = Hb_cpu.Machine
module Physmem = Hb_mem.Physmem
module Layout = Hb_mem.Layout
module Encoding = Hardbound.Encoding
module Trace = Hb_obs.Trace

type site = Mem_word | Tag_bits | Shadow_entry | Reg_value | Reg_bounds

let all_sites = [ Mem_word; Tag_bits; Shadow_entry; Reg_value; Reg_bounds ]

let site_name = function
  | Mem_word -> "mem"
  | Tag_bits -> "tag"
  | Shadow_entry -> "shadow"
  | Reg_value -> "reg"
  | Reg_bounds -> "regbounds"

let site_of_name = function
  | "mem" -> Some Mem_word
  | "tag" -> Some Tag_bits
  | "shadow" -> Some Shadow_entry
  | "reg" -> Some Reg_value
  | "regbounds" -> Some Reg_bounds
  | _ -> None

(** One applied corruption.  [target] is a byte address for memory
    sites and a register number for register sites. *)
type injection = {
  site : site;
  target : int;
  bit : int;
  before : int;
  after : int;
}

let describe (i : injection) =
  match i.site with
  | Reg_value -> Printf.sprintf "reg r%d bit %d" i.target i.bit
  | Reg_bounds ->
    Printf.sprintf "r%d %s bit %d" i.target
      (if i.bit >= 32 then "bound" else "base")
      (i.bit mod 32)
  | s -> Printf.sprintf "%s[0x%x] bit %d" (site_name s) i.target i.bit

(* ---- target selection ------------------------------------------------ *)

let pages_in m ~keep =
  let idxs =
    Physmem.fold_pages m.Machine.mem ~init:[] ~f:(fun acc idx _ ->
        if keep (Layout.region_of (idx * Layout.page_size)) then idx :: acc
        else acc)
  in
  Array.of_list (List.rev idxs)

let is_data = function
  | Layout.Globals | Layout.Heap | Layout.Stack -> true
  | _ -> false

let words_per_page = Layout.page_size / Layout.word

(* A uniformly chosen 4-byte-aligned address inside a touched page of the
   given region class; [globals_base] when the workload touched nothing
   there yet (possible only for injections at cycle 0). *)
let random_word_addr rng m ~keep =
  let pages = pages_in m ~keep in
  if Array.length pages = 0 then Layout.globals_base
  else
    let page = pages.(Prng.below rng (Array.length pages)) in
    (page * Layout.page_size) + (Layout.word * Prng.below rng words_per_page)

let random_data_word rng m = random_word_addr rng m ~keep:is_data

(* Data-region words currently tagged as pointers — the words whose
   shadow entries the checker will actually consult.  Deterministic scan
   in page/offset order. *)
let tagged_data_words (m : Machine.t) =
  let words = ref [] in
  Physmem.fold_pages m.Machine.mem ~init:() ~f:(fun () idx _ ->
      let base = idx * Layout.page_size in
      if is_data (Layout.region_of base) then
        for w = words_per_page - 1 downto 0 do
          let addr = base + (w * Layout.word) in
          if Machine.read_tag m addr <> 0 then words := addr :: !words
        done);
  Array.of_list !words

(* Tagged words whose metadata actually lives in the shadow space.
   Compressed encodings reconstruct bounds from the tag (Extern4 sizes
   1..14) or from stolen pointer bits (Intern4/Intern11), so only
   [Dec_shadow] words ever cause a shadow read — flipping anyone else's
   shadow image could never reach the checker. *)
let shadow_backed_words (m : Machine.t) =
  let scheme = m.Machine.cfg.Machine.scheme in
  Array.of_list
    (List.filter
       (fun addr ->
         let tag = Machine.read_tag m addr in
         let word = Physmem.read_u32 m.Machine.mem addr in
         let aux =
           match Hashtbl.find_opt m.Machine.aux_bits addr with
           | Some a -> a
           | None -> 0
         in
         match Encoding.decode scheme ~word ~tag ~aux with
         | Encoding.Dec_shadow _ -> true
         | Encoding.Dec_inline _ | Encoding.Dec_non_pointer _ -> false)
       (Array.to_list (tagged_data_words m)))

(* Registers currently carrying non-trivial bounds metadata. *)
let live_bounded_regs (m : Machine.t) =
  let regs = ref [] in
  for r = Hb_isa.Types.num_regs - 1 downto 1 do
    if m.Machine.rbase.(r) <> 0 || m.Machine.rbound.(r) <> 0 then
      regs := r :: !regs
  done;
  Array.of_list !regs

let flip_u32 rng m addr =
  let bit = Prng.below rng 32 in
  let before = Physmem.read_u32 m.Machine.mem addr in
  let after = before lxor (1 lsl bit) in
  Physmem.write_u32 m.Machine.mem addr after;
  (bit, before, after)

(* ---- injection ------------------------------------------------------- *)

let inject rng (m : Machine.t) site : injection =
  let inj =
    match site with
    | Mem_word ->
      let addr = random_data_word rng m in
      let bit, before, after = flip_u32 rng m addr in
      { site; target = addr; bit; before; after }
    | Tag_bits ->
      let addr = random_data_word rng m in
      let bits = Encoding.tag_bits m.Machine.cfg.Machine.scheme in
      let bit = Prng.below rng bits in
      let before = Machine.read_tag m addr in
      let after = before lxor (1 lsl bit) in
      Machine.write_tag m addr after;
      { site; target = addr; bit; before; after }
    | Shadow_entry ->
      (* Corrupt metadata the checker will actually consult: the shadow
         entry (base or bound half) of a shadow-backed pointer word.
         Fall back to any tagged word's shadow image, then to an
         arbitrary data word's, when the encoding keeps every live
         pointer inline (e.g. Extern4 over small objects). *)
      let backed = shadow_backed_words m in
      let pool =
        if Array.length backed > 0 then backed else tagged_data_words m
      in
      let addr =
        if Array.length pool = 0 then
          Layout.shadow_addr (random_data_word rng m)
        else
          let word = pool.(Prng.below rng (Array.length pool)) in
          Layout.shadow_addr word + (if Prng.bool rng then Layout.word else 0)
      in
      let bit, before, after = flip_u32 rng m addr in
      { site; target = addr; bit; before; after }
    | Reg_value ->
      (* never r0: the zero register is architecturally immutable *)
      let r = 1 + Prng.below rng (Hb_isa.Types.num_regs - 1) in
      let bit = Prng.below rng 32 in
      let before = m.Machine.regs.(r) in
      let after = before lxor (1 lsl bit) in
      m.Machine.regs.(r) <- after;
      { site; target = r; bit; before; after }
    | Reg_bounds ->
      (* Prefer a register whose bounds are live; an idle register's
         [0,0) metadata is never consulted. *)
      let live = live_bounded_regs m in
      let r =
        if Array.length live = 0 then
          1 + Prng.below rng (Hb_isa.Types.num_regs - 1)
        else live.(Prng.below rng (Array.length live))
      in
      let arr, bit_off =
        if Prng.bool rng then (m.Machine.rbound, 32) else (m.Machine.rbase, 0)
      in
      let bit = Prng.below rng 32 in
      let before = arr.(r) in
      let after = before lxor (1 lsl bit) in
      arr.(r) <- after;
      { site; target = r; bit = bit + bit_off; before; after }
  in
  Machine.emit m
    (Trace.Fault_injected
       {
         site = site_name inj.site;
         target = inj.target;
         bit = inj.bit;
         before = inj.before;
         after = inj.after;
       });
  inj

(* ---- CLI spec -------------------------------------------------------- *)

(** Parsed form of the CLI's [--inject SITES:RATE:SEED].  [sites] is a
    name, a comma list, or ["all"]; [rate] is the per-instruction
    injection probability for stochastic single-run mode (campaigns
    inject exactly once per run and ignore it). *)
type spec = { sites : site list; rate : float; seed : int }

let known_sites () =
  String.concat ", " (List.map site_name all_sites) ^ ", all"

let parse_sites s =
  if s = "all" then Ok all_sites
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match site_of_name (String.trim p) with
        | Some site -> go (site :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown fault site %S (have: %s)" p
               (known_sites ())))
    in
    go [] parts

let parse_spec s : (spec, string) result =
  match String.split_on_char ':' s with
  | [ sites; rate; seed ] -> (
    match parse_sites sites with
    | Error _ as e -> e
    | Ok [] -> Error "empty fault-site list"
    | Ok sites -> (
      match (float_of_string_opt rate, int_of_string_opt seed) with
      | None, _ -> Error (Printf.sprintf "bad injection rate %S" rate)
      | _, None -> Error (Printf.sprintf "bad injection seed %S" seed)
      | Some rate, _ when not (rate >= 0. && rate <= 1.) ->
        Error (Printf.sprintf "rate %g out of range [0,1]" rate)
      | Some rate, Some seed -> Ok { sites; rate; seed }))
  | _ -> Error (Printf.sprintf "expected SITES:RATE:SEED, got %S" s)

(** [parse_spec] as a typed error: a malformed [--inject] argument
    raises {!Hb_error.Hb_error} carrying the reason and a usage hint
    instead of leaking a bare [Error] string to the caller. *)
let spec_of_string s : spec =
  match parse_spec s with
  | Ok spec -> spec
  | Error msg ->
    Hb_error.fail ~component:"inject"
      "%s (usage: --inject SITES:RATE:SEED — SITES is a comma list of %s; \
       RATE is a per-instruction probability in [0,1]; SEED is an integer)"
      msg (known_sites ())
