(** Deterministic fault-injection campaign runner.

    Strategy: run the workload once uninjected (the *golden* run) to
    learn its instruction count, output and checkpoint digests; then for
    each of the N planned injections, fast-forward to the injection
    point by restoring an architectural snapshot of the golden prefix
    (valid because execution is deterministic from architectural state),
    apply exactly one corruption, and run the suffix under a watchdog.

    Two optimizations keep thousand-run campaigns on multi-million
    instruction workloads tractable, neither affecting classification:

    - the golden prefix is never re-executed (runs are executed in
      injection-point order so one replay machine streams forward once);
    - a suffix whose digest matches golden's at a checkpoint has
      *converged*: the remainder is deterministic and identical, so the
      run is classified immediately ([Masked], or [Divergence] if it had
      strayed earlier).

    Both shortcuts are disabled when the machine runs the temporal or
    tripwire extensions, whose allocation maps live outside the
    architectural snapshot; those campaigns re-execute every prefix. *)

module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Snapshot = Hb_cpu.Snapshot
module Json = Hb_obs.Json
module Metrics = Hb_obs.Metrics
module Host = Hb_obs.Host
module Progress = Hb_obs.Progress
module Policy = Hb_recover.Policy
module Recover = Hb_recover.Recover
module Journal = Hb_recover.Journal
module Deadline = Hb_recover.Deadline
module Interrupt = Hb_recover.Interrupt

type config = {
  label : string;
  runs : int;
  seed : int;
  sites : Injector.site list;
  checkpoints : int;
  watchdog_factor : int;
  keep_run_records : bool;
  window_interval : int;
      (* instruction width of the timeline windows each injection is
         binned into in the JSON report; purely a reporting concern, so
         it cannot perturb the planned injection draws *)
  policy : Policy.t;
      (* recovery policy each injected run executes under; [Abort] is
         the historical stop-at-first-violation behavior *)
  violation_budget : int;
}

let default =
  {
    label = "campaign";
    runs = 100;
    seed = 1;
    sites = Injector.all_sites;
    checkpoints = 16;
    watchdog_factor = 3;
    keep_run_records = true;
    window_interval = 10_000;
    policy = Policy.Abort;
    violation_budget = 64;
  }

type record = {
  idx : int;
  run_seed : int;
  site : Injector.site;
  at_instr : int;
  injection : Injector.injection;
  outcome : Outcome.t;
  status : string;
  latency : int option;
  diverged_at : int option;
}

type report = {
  config : config;
  golden_status : string;
  golden_instrs : int;
  golden_output_bytes : int;
  golden_digest : int64;
  checkpoint_interval : int;
  records : record list;
  deadline_expired : bool;
      (* the wall-clock budget ran out before every planned run
         executed: [records] is the completed prefix and the journal (if
         any) can resume the remainder *)
}

(* ---- golden reference ------------------------------------------------ *)

type golden = {
  g_status : string;
  g_exit : int;
  g_output : string;
  g_instrs : int;
  g_interval : int;
  g_digests : (int, int64) Hashtbl.t;
  g_digest : int64;
}

let instrs_of m = m.Machine.stats.Stats.instructions

(* Two passes: the first learns the instruction count (needed to place
   checkpoints), the second records a digest at each checkpoint. *)
let golden_of ~(cfg : config) ~mk : golden =
  let m = mk () in
  let st = Machine.run m in
  let g_exit =
    match st with
    | Machine.Exited n -> n
    | st ->
      Hb_error.fail ~component:"campaign"
        "golden run of %s did not exit cleanly: %s" cfg.label
        (Machine.status_name st)
  in
  let g_instrs = instrs_of m in
  if g_instrs < 2 then
    Hb_error.fail ~component:"campaign" "golden run of %s too short (%d instrs)"
      cfg.label g_instrs;
  let g_interval = max 1 (g_instrs / (cfg.checkpoints + 1)) in
  let g_digests = Hashtbl.create 64 in
  let m2 = mk () in
  let record m =
    let n = instrs_of m in
    if n < g_instrs && n mod g_interval = 0 then
      Hashtbl.replace g_digests n (Snapshot.digest m)
  in
  (match Watchdog.run ~on_step:record ~limit:(g_instrs + 1) m2 with
  | Watchdog.Completed (Machine.Exited n) when n = g_exit -> ()
  | r ->
    Hb_error.fail ~component:"campaign" "golden replay of %s diverged: %s"
      cfg.label (Watchdog.result_name r));
  {
    g_status = Machine.status_name st;
    g_exit;
    g_output = Machine.output m;
    g_instrs;
    g_interval;
    g_digests;
    g_digest = Snapshot.digest m2;
  }

(* ---- per-run record JSON --------------------------------------------- *)

let record_json ~window_interval (rec_ : record) : Json.t =
  let opt = function None -> Json.Null | Some n -> Json.Int n in
  Json.Obj
    [
      ("run", Json.Int rec_.idx);
      ("seed", Json.Int rec_.run_seed);
      ("site", Json.String (Injector.site_name rec_.site));
      ("at", Json.Int rec_.at_instr);
      ("window", Json.Int (rec_.at_instr / window_interval));
      ("target", Json.Int rec_.injection.Injector.target);
      ("bit", Json.Int rec_.injection.Injector.bit);
      ("before", Json.Int rec_.injection.Injector.before);
      ("after", Json.Int rec_.injection.Injector.after);
      ("outcome", Json.String (Outcome.name rec_.outcome));
      ("status", Json.String rec_.status);
      ("latency", opt rec_.latency);
      ("diverged_at", opt rec_.diverged_at);
    ]

(* ---- write-ahead journal --------------------------------------------- *)

(* The journal is one JSONL file: a header record binding the campaign
   config and golden reference, then one fsync'd record per completed
   run (in execution = injection-point order), a "ckpt" marker every 25
   records, and a final "done" marker.  Resuming reads the intact
   records back, re-derives the plan from the config (it is a pure
   function of the seed), and executes only the missing indices — the
   merged report is byte-identical to an uninterrupted campaign's. *)

let jmem path j k =
  match Json.member k j with
  | Some v -> v
  | None ->
    Hb_error.fail ~component:"journal" "%s: journal record lacks field %S" path
      k

let jstr path j k =
  match jmem path j k with
  | Json.String s -> s
  | _ ->
    Hb_error.fail ~component:"journal" "%s: journal field %S is not a string"
      path k

let jint path j k =
  match Json.to_int (jmem path j k) with
  | Some n -> n
  | None ->
    Hb_error.fail ~component:"journal" "%s: journal field %S is not an integer"
      path k

let jint_opt path j k =
  match jmem path j k with
  | Json.Null -> None
  | v -> (
    match Json.to_int v with
    | Some n -> Some n
    | None ->
      Hb_error.fail ~component:"journal"
        "%s: journal field %S is not an integer" path k)

let run_record_json ~window_interval r =
  match record_json ~window_interval r with
  | Json.Obj fields -> Json.Obj (("type", Json.String "run") :: fields)
  | _ -> assert false

let record_of_json path j : record =
  let site =
    let s = jstr path j "site" in
    match Injector.site_of_name s with
    | Some site -> site
    | None ->
      Hb_error.fail ~component:"journal" "%s: unknown fault site %S" path s
  in
  let outcome =
    let s = jstr path j "outcome" in
    match Outcome.of_name s with
    | Some o -> o
    | None ->
      Hb_error.fail ~component:"journal" "%s: unknown outcome %S" path s
  in
  {
    idx = jint path j "run";
    run_seed = jint path j "seed";
    site;
    at_instr = jint path j "at";
    injection =
      {
        Injector.site;
        target = jint path j "target";
        bit = jint path j "bit";
        before = jint path j "before";
        after = jint path j "after";
      };
    outcome;
    status = jstr path j "status";
    latency = jint_opt path j "latency";
    diverged_at = jint_opt path j "diverged_at";
  }

let header_json (cfg : config) (g : golden) : Json.t =
  Json.Obj
    [
      ("type", Json.String "header");
      ("journal", Json.String "hb-campaign");
      ("version", Json.Int 1);
      ("label", Json.String cfg.label);
      ("runs", Json.Int cfg.runs);
      ("seed", Json.Int cfg.seed);
      ( "sites",
        Json.List
          (List.map (fun s -> Json.String (Injector.site_name s)) cfg.sites) );
      ("checkpoints", Json.Int cfg.checkpoints);
      ("watchdog_factor", Json.Int cfg.watchdog_factor);
      ("window_interval", Json.Int cfg.window_interval);
      ("policy", Json.String (Policy.name cfg.policy));
      ("violation_budget", Json.Int cfg.violation_budget);
      ("golden_status", Json.String g.g_status);
      ("golden_instrs", Json.Int g.g_instrs);
      ("golden_output_bytes", Json.Int (String.length g.g_output));
      ("golden_digest", Json.String (Snapshot.hex g.g_digest));
      ("checkpoint_interval", Json.Int g.g_interval);
    ]

(* Read a journal back: (header, completed records first-idx-wins in
   journal order, saw-done-marker). *)
let load_journal path =
  let entries = Journal.read path in
  match entries with
  | [] ->
    Hb_error.fail ~component:"campaign" "%s: empty journal, nothing to resume"
      path
  | header :: rest ->
    (match Json.member "journal" header with
    | Some (Json.String "hb-campaign") -> ()
    | _ ->
      Hb_error.fail ~component:"campaign" "%s: not an hb-campaign journal" path);
    (match jint path header "version" with
    | 1 -> ()
    | v ->
      Hb_error.fail ~component:"campaign"
        "%s: unsupported journal version %d (have 1)" path v);
    let prior = ref [] in
    let done_ = ref false in
    List.iter
      (fun j ->
        match Json.member "type" j with
        | Some (Json.String "run") -> prior := record_of_json path j :: !prior
        | Some (Json.String "ckpt") -> ()
        | Some (Json.String "done") -> done_ := true
        | _ ->
          Hb_error.fail ~component:"campaign"
            "%s: unrecognized journal record" path)
      rest;
    let seen = Hashtbl.create 64 in
    let prior =
      List.filter
        (fun r ->
          if Hashtbl.mem seen r.idx then false
          else begin
            Hashtbl.add seen r.idx ();
            true
          end)
        (List.rev !prior)
    in
    (header, prior, !done_)

(* Resuming under a different config would splice incompatible plans
   together; refuse rather than produce a quietly wrong report. *)
let check_header path header (cfg : config) =
  let mismatch : 'a. string -> 'a =
   fun what ->
    Hb_error.fail ~component:"campaign"
      "%s: journal %s does not match the requested campaign" path what
  in
  if jstr path header "label" <> cfg.label then mismatch "workload label";
  if jint path header "runs" <> cfg.runs then mismatch "run count";
  if jint path header "seed" <> cfg.seed then mismatch "seed";
  (match jmem path header "sites" with
  | Json.List l ->
    let names =
      List.map (function Json.String s -> s | _ -> mismatch "site list") l
    in
    if names <> List.map Injector.site_name cfg.sites then mismatch "site list"
  | _ -> mismatch "site list");
  if jint path header "checkpoints" <> cfg.checkpoints then
    mismatch "checkpoint count";
  if jint path header "watchdog_factor" <> cfg.watchdog_factor then
    mismatch "watchdog factor";
  if jint path header "window_interval" <> cfg.window_interval then
    mismatch "window interval";
  if jstr path header "policy" <> Policy.name cfg.policy then
    mismatch "recovery policy";
  if jint path header "violation_budget" <> cfg.violation_budget then
    mismatch "violation budget"

let check_golden path header (g : golden) =
  if
    jint path header "golden_instrs" <> g.g_instrs
    || jstr path header "golden_digest" <> Snapshot.hex g.g_digest
  then
    Hb_error.fail ~component:"campaign"
      "%s: journal was recorded against a different build or workload \
       (golden run mismatch)"
      path

(* A finished journal carries everything a report needs; nothing has to
   execute.  The shard merge step reuses this to assemble the campaign
   report from shard-journal records: every report field derives from
   the header + records, so the result is byte-identical to the serial
   runner's. *)
let report_of_header ~cfg ?(deadline_expired = false) path header
    (records : record list) : report =
  {
    config = cfg;
    golden_status = jstr path header "golden_status";
    golden_instrs = jint path header "golden_instrs";
    golden_output_bytes = jint path header "golden_output_bytes";
    golden_digest = Int64.of_string ("0x" ^ jstr path header "golden_digest");
    checkpoint_interval = jint path header "checkpoint_interval";
    records = List.sort (fun a b -> compare a.idx b.idx) records;
    deadline_expired;
  }

(* ---- campaign execution ---------------------------------------------- *)

exception Converged
(** Raised from the checkpoint hook when the suffix digest matches
    golden's: the remainder of the run is provably identical. *)

let validate (cfg : config) =
  if cfg.runs <= 0 then
    Hb_error.fail ~component:"campaign" "runs must be positive (got %d)"
      cfg.runs;
  if cfg.sites = [] then
    Hb_error.fail ~component:"campaign" "no fault sites selected";
  if cfg.window_interval <= 0 then
    Hb_error.fail ~component:"campaign"
      "window interval must be positive (got %d)" cfg.window_interval

let prepare ~mk (cfg : config) : golden =
  validate cfg;
  (* the golden reference is a wall-clock phase worth profiling; the span
     hook is a no-op unless a host profiler is installed *)
  Host.span "golden" (fun () ->
      let g = golden_of ~cfg ~mk in
      Host.annotate_live "instrs" g.g_instrs;
      g)

type plan_entry = {
  p_idx : int;
  p_seed : int;
  p_site : Injector.site;
  p_at : int;
}

(* Plan every injection up front from the master stream, so execution
   order (sorted by injection point) cannot influence the draws.  The
   plan is a pure function of (config, golden instruction count): any
   process — the serial runner, a resumed campaign, or a forked shard
   worker — re-derives the identical list.  The per-index draw order
   (seed, then site, then point) is part of the journal contract;
   changing it invalidates every journal and the CI coverage pin. *)
let plan (cfg : config) (golden : golden) : plan_entry list =
  let master = Prng.create ~seed:cfg.seed in
  let site_arr = Array.of_list cfg.sites in
  List.init cfg.runs (fun p_idx ->
      let p_seed = Prng.derive_seed master in
      let p_site = site_arr.(Prng.below master (Array.length site_arr)) in
      let p_at = 1 + Prng.below master (golden.g_instrs - 1) in
      { p_idx; p_seed; p_site; p_at })

(* Execute every planned run that [select] claims (all, for the serial
   runner) and whose index is not already in [prior] (records recovered
   from a journal), appending each fresh record to [writer] before
   moving on.  The plan is re-derived from the config seed, so a resumed
   campaign executes exactly the runs the interrupted one never
   recorded.  [on_start]/[on_record] bracket each run for shard workers
   (heartbeat before, acknowledgement after); both default off and
   nothing they do flows back into the records.  [observe] sees each
   fresh record together with the machine that produced it (before the
   next run restores over it) — the flame aggregator reads per-run
   calling-context trees this way; it is strictly read-only with respect
   to the report, which stays byte-identical with and without it. *)
let execute ~mk ~(cfg : config) ~(golden : golden) ~writer ~deadline
    ~progress ~select ~on_start ~on_record ~observe
    ~(prior : record list) : report =
  let done_idx = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace done_idx r.idx ()) prior;
  let mine p =
    (match select with None -> true | Some f -> f p.p_idx)
    && not (Hashtbl.mem done_idx p.p_idx)
  in
  let by_point =
    List.stable_sort
      (fun a b -> compare a.p_at b.p_at)
      (List.filter mine (plan cfg golden))
  in
  let replay = mk () in
  let fast =
    not (replay.Machine.cfg.Machine.temporal || replay.Machine.cfg.Machine.tripwire)
  in
  let scratch = if fast then mk () else replay in
  (* Live progress is strictly off to the side: it reads the plan and
     the in-flight machine, and nothing it computes flows back, so the
     report is byte-identical with and without a tracker attached. *)
  (match progress with
  | None -> ()
  | Some p ->
    Progress.begin_campaign p ~label:cfg.label ~total:cfg.runs
      ~prior:(List.length prior);
    List.iter
      (fun r -> Progress.seed_outcome p ~outcome:(Outcome.name r.outcome))
      prior);
  let use_recover = cfg.policy <> Policy.Abort in
  let pcfg =
    {
      Policy.default with
      Policy.policy = cfg.policy;
      violation_budget = cfg.violation_budget;
    }
  in
  let limit = (cfg.watchdog_factor * golden.g_instrs) + 4096 in
  (* digest-compare against golden at checkpoint boundaries; convergence
     early-exit must stay off under recovery policies, whose
     classification needs the traps to play out *)
  let checkpoint ~early_exit diverged m =
    let n = instrs_of m in
    if n < golden.g_instrs && n mod golden.g_interval = 0 then
      match Hashtbl.find_opt golden.g_digests n with
      | None -> ()
      | Some d ->
        if Snapshot.digest m = d then begin
          if early_exit then raise Converged
        end
        else if !diverged = None then diverged := Some n
  in
  let last_snap = ref None in
  let snapshot_at at =
    match !last_snap with
    | Some (a, s) when a = at -> s
    | _ ->
      while instrs_of replay < at && replay.Machine.halted = None do
        Machine.step replay
      done;
      let s = Snapshot.capture replay in
      last_snap := Some (at, s);
      s
  in
  let last_m = ref None in
  (match progress with
  | None -> ()
  | Some p ->
    Progress.set_poll p (fun () ->
        let m =
          if fast then scratch
          else match !last_m with Some m -> m | None -> replay
        in
        (instrs_of m, Stats.cycles m.Machine.stats)));
  let exec { p_idx = idx; p_seed = run_seed; p_site = site; p_at = at_instr } :
      record =
    let rng = Prng.create ~seed:run_seed in
    let diverged = ref None in
    let inj = ref None in
    let supervise m ~on_step =
      (* supervisor-level Hb_errors (e.g. a broken accounting identity
         after rollback) must surface, not classify as Crash *)
      try `O (Recover.run ~on_step ~limit ~config:pcfg m)
      with
      | Hb_error.Hb_error _ as e -> raise e
      | e -> `Crash (Printexc.to_string e)
    in
    let result, final_m =
      if fast then begin
        Snapshot.restore scratch (snapshot_at at_instr);
        scratch.Machine.stats.Stats.instructions <- at_instr;
        inj := Some (Injector.inject rng scratch site);
        let r =
          if use_recover then
            supervise scratch
              ~on_step:(checkpoint ~early_exit:false diverged)
          else
            try
              `R
                (Watchdog.run
                   ~on_step:(checkpoint ~early_exit:true diverged)
                   ~limit scratch)
            with
            | Converged -> `Converged
            | e -> `Crash (Printexc.to_string e)
        in
        (r, scratch)
      end
      else begin
        (* temporal/tripwire state is not snapshot-capturable: re-run
           the prefix and inject on the fly *)
        let m = mk () in
        let on_step m =
          let n = instrs_of m in
          if n = at_instr then inj := Some (Injector.inject rng m site)
          else if n > at_instr then checkpoint ~early_exit:false diverged m
        in
        let r =
          if use_recover then supervise m ~on_step
          else
            try `R (Watchdog.run ~on_step ~limit m)
            with e -> `Crash (Printexc.to_string e)
        in
        (r, m)
      end
    in
    last_m := Some final_m;
    let classify_status st =
      match st with
      | Machine.Bounds_violation _ | Machine.Non_pointer_violation _
      | Machine.Temporal_violation _ | Machine.Software_abort _ ->
        ( Outcome.Detected,
          Machine.status_name st,
          Some (instrs_of final_m - at_instr) )
      | Machine.Fault _ -> (Outcome.Crash, Machine.status_name st, None)
      | Machine.Out_of_fuel -> (Outcome.Hang, "out-of-fuel", None)
      | Machine.Exited n ->
        let visible_match =
          n = golden.g_exit && Machine.output final_m = golden.g_output
        in
        if not visible_match then
          (Outcome.Silent_corruption, Machine.status_name st, None)
        else if
          !diverged <> None || Snapshot.digest final_m <> golden.g_digest
        then (Outcome.Divergence, Machine.status_name st, None)
        else (Outcome.Masked, Machine.status_name st, None)
    in
    let outcome, status, latency =
      match result with
      | `Crash msg -> (Outcome.Crash, "exception: " ^ msg, None)
      | `Converged -> (
        match !diverged with
        | None -> (Outcome.Masked, "converged", None)
        | Some _ -> (Outcome.Divergence, "converged-after-divergence", None))
      | `R (Watchdog.Hang { instrs }) ->
        (Outcome.Hang, Printf.sprintf "hang(@%d instrs)" instrs, None)
      | `R (Watchdog.Completed st) -> classify_status st
      | `O (o : Recover.outcome) ->
        (* a trap fired and the policy handled it: the corruption was
           detected, whatever happened afterwards *)
        if o.Recover.hung then
          ( Outcome.Hang,
            Printf.sprintf "hang(@%d instrs)" (instrs_of final_m),
            None )
        else if o.Recover.traps <> [] then
          let first = List.hd o.Recover.traps in
          ( Outcome.Detected,
            Printf.sprintf "%s after %d trap(s)"
              (Machine.status_name o.Recover.status)
              (List.length o.Recover.traps),
            Some (first.Recover.trap.Hb_recover.Trap.at_instr - at_instr) )
        else classify_status o.Recover.status
    in
    let injection =
      match !inj with
      | Some i -> i
      | None ->
        Hb_error.fail ~component:"campaign"
          "run %d never reached injection point %d" idx at_instr
    in
    {
      idx;
      run_seed;
      site;
      at_instr;
      injection;
      outcome;
      status;
      latency;
      diverged_at = !diverged;
    }
  in
  let ddl = ref false in
  let journaled = ref (List.length prior) in
  let emit_record r =
    match writer with
    | None -> ()
    | Some w ->
      Journal.append w (run_record_json ~window_interval:cfg.window_interval r);
      incr journaled;
      if !journaled mod 25 = 0 then
        Journal.append w
          (Json.Obj
             [ ("type", Json.String "ckpt"); ("completed", Json.Int !journaled) ])
  in
  let executed = ref 0 in
  let fresh =
    List.filter_map
      (fun p ->
        if !ddl then None
        else if Deadline.expired deadline || Interrupt.requested () then begin
          (* an interrupt winds down through the deadline path: stop
             selecting runs, keep everything already journaled, and
             report a well-formed resumable partial *)
          ddl := true;
          None
        end
        else begin
          (match progress with
          | Some pr -> Progress.start_run pr p.p_idx
          | None -> ());
          (match on_start with Some f -> f p | None -> ());
          let r = exec p in
          emit_record r;
          (match observe with
          | Some f -> (
            match !last_m with Some m -> f r m | None -> ())
          | None -> ());
          (match on_record with Some f -> f r | None -> ());
          incr executed;
          (* host-telemetry checkpoint: GC/RSS census every 25 executed
             runs, mirroring the journal's ckpt cadence *)
          if !executed mod 25 = 0 then
            Host.sample_live ~counts:[ ("runs", !executed) ] ();
          (match progress with
          | Some pr ->
            Progress.finish_run pr ~outcome:(Outcome.name r.outcome)
          | None -> ());
          Some r
        end)
      by_point
  in
  let records =
    List.sort (fun a b -> compare a.idx b.idx) (prior @ fresh)
  in
  let complete = List.length records = cfg.runs in
  if complete then begin
    (match writer with
    | Some w -> Journal.append w (Json.Obj [ ("type", Json.String "done") ])
    | None -> ());
    match progress with Some p -> Progress.finish p | None -> ()
  end;
  (* after a recovery-policy or resumed campaign, re-check the timing
     model's accounting identities on the last machine that ran *)
  (match !last_m with
  | Some m when use_recover || prior <> [] -> (
    match Stats.check_invariants m.Machine.stats with
    | Ok () -> ()
    | Error msg ->
      Hb_error.fail ~component:"campaign"
        "accounting identity broken after campaign: %s" msg)
  | _ -> ());
  {
    config = cfg;
    golden_status = golden.g_status;
    golden_instrs = golden.g_instrs;
    golden_output_bytes = String.length golden.g_output;
    golden_digest = golden.g_digest;
    checkpoint_interval = golden.g_interval;
    records;
    deadline_expired = !ddl;
  }

(* Shard workers drive the same engine over a sub-plan: [select] claims
   the worker's indices, [on_start]/[on_record] bracket each run for the
   heartbeat/acknowledgement protocol, and [writer] is the worker's own
   shard journal. *)
let execute_plan ~mk ~(cfg : config) ~golden ?select ?on_start ?on_record
    ?observe ?writer ?(deadline = Deadline.none) ?progress ~prior () : report =
  execute ~mk ~cfg ~golden ~writer ~deadline ~progress ~select ~on_start
    ~on_record ~observe ~prior

let run ?journal ?resume ?(deadline = Deadline.none) ?progress ?observe ~mk
    (cfg : config) : report =
  validate cfg;
  (* the golden reference and the injection sweep are the two wall-clock
     phases worth profiling; span hooks are no-ops unless a host
     profiler is installed and never touch the report *)
  let golden_of ~cfg ~mk = prepare ~mk cfg in
  let execute ~writer ~prior ~golden =
    Host.span "runs" (fun () ->
        Host.annotate_live "runs" (cfg.runs - List.length prior);
        execute ~mk ~cfg ~golden ~writer ~deadline ~progress ~select:None
          ~on_start:None ~on_record:None ~observe ~prior)
  in
  match resume with
  | None -> (
    let golden = golden_of ~cfg ~mk in
    match journal with
    | None -> execute ~writer:None ~prior:[] ~golden
    | Some path ->
      (match progress with Some p -> Progress.set_journal p path | None -> ());
      let w = Journal.create path in
      Fun.protect
        ~finally:(fun () -> Journal.close w)
        (fun () ->
          Journal.append w (header_json cfg golden);
          execute ~writer:(Some w) ~prior:[] ~golden))
  | Some path ->
    if journal <> None then
      Hb_error.fail ~component:"campaign"
        "--journal and --resume are exclusive (a resumed campaign appends \
         to the journal it resumes from)";
    (match progress with Some p -> Progress.set_resume p path | None -> ());
    let header, prior, done_ = load_journal path in
    check_header path header cfg;
    if done_ then begin
      if List.length prior <> cfg.runs then
        Hb_error.fail ~component:"campaign"
          "%s: journal is marked done but holds %d of %d run records" path
          (List.length prior) cfg.runs;
      report_of_header ~cfg path header prior
    end
    else begin
      let golden = golden_of ~cfg ~mk in
      check_golden path header golden;
      let w = Journal.append_to path in
      Fun.protect
        ~finally:(fun () -> Journal.close w)
        (fun () -> execute ~writer:(Some w) ~prior ~golden)
    end

(* ---- reporting ------------------------------------------------------- *)

let count (r : report) site outcome =
  List.fold_left
    (fun acc rec_ ->
      if rec_.outcome = outcome
         && (match site with None -> true | Some s -> rec_.site = s)
      then acc + 1
      else acc)
    0 r.records

let site_total (r : report) site =
  List.fold_left
    (fun acc rec_ -> if rec_.site = site then acc + 1 else acc)
    0 r.records

let coverage site_runs detected =
  if site_runs = 0 then 0. else float_of_int detected /. float_of_int site_runs

let coverage_table (r : report) : string =
  let b = Buffer.create 512 in
  Printf.bprintf b "%-10s %6s" "site" "runs";
  List.iter
    (fun o -> Printf.bprintf b " %9s" (Outcome.name o))
    Outcome.all;
  Printf.bprintf b " %9s\n" "coverage";
  let row name total site =
    Printf.bprintf b "%-10s %6d" name total;
    List.iter (fun o -> Printf.bprintf b " %9d" (count r site o)) Outcome.all;
    Printf.bprintf b " %8.1f%%\n"
      (100. *. coverage total (count r site Outcome.Detected))
  in
  List.iter
    (fun s -> row (Injector.site_name s) (site_total r s) (Some s))
    r.config.sites;
  row "total" (List.length r.records) None;
  Buffer.contents b

let to_json (r : report) : Json.t =
  let cfg = r.config in
  let coverage_rows =
    List.map
      (fun site ->
        let total = site_total r site in
        Json.Obj
          (("site", Json.String (Injector.site_name site))
           :: ("runs", Json.Int total)
           :: List.map
                (fun o -> (Outcome.name o, Json.Int (count r (Some site) o)))
                Outcome.all
           @ [
               ( "coverage",
                 Json.Float (coverage total (count r (Some site) Outcome.Detected))
               );
             ]))
      cfg.sites
    @ [
        (let total = List.length r.records in
         Json.Obj
           (("site", Json.String "total")
            :: ("runs", Json.Int total)
            :: List.map
                 (fun o -> (Outcome.name o, Json.Int (count r None o)))
                 Outcome.all
            @ [
                ( "coverage",
                  Json.Float (coverage total (count r None Outcome.Detected)) );
              ]));
      ]
  in
  Json.Obj
    ([
       ( "campaign",
         Json.Obj
           [
             ("label", Json.String cfg.label);
             ("runs", Json.Int cfg.runs);
             ("seed", Json.Int cfg.seed);
             ( "sites",
               Json.List
                 (List.map
                    (fun s -> Json.String (Injector.site_name s))
                    cfg.sites) );
             ("checkpoints", Json.Int cfg.checkpoints);
             ("watchdog_factor", Json.Int cfg.watchdog_factor);
             ("window_interval", Json.Int cfg.window_interval);
             ("policy", Json.String (Policy.name cfg.policy));
             ("violation_budget", Json.Int cfg.violation_budget);
           ] );
       ( "golden",
         Json.Obj
           [
             ("status", Json.String r.golden_status);
             ("instrs", Json.Int r.golden_instrs);
             ("output_bytes", Json.Int r.golden_output_bytes);
             ("digest", Json.String (Snapshot.hex r.golden_digest));
             ("checkpoint_interval", Json.Int r.checkpoint_interval);
           ] );
       ("coverage", Json.List coverage_rows);
     ]
    @ (if r.deadline_expired then
         [
           ("deadline_expired", Json.Bool true);
           ("completed", Json.Int (List.length r.records));
         ]
       else [])
    @
    if cfg.keep_run_records then
      [ ("runs",
         Json.List
           (List.map
              (record_json ~window_interval:cfg.window_interval)
              r.records)) ]
    else [])

let export_metrics (r : report) (reg : Metrics.t) =
  let wl = ("workload", r.config.label) in
  Metrics.set_counter reg ~labels:[ wl ] "fault.golden_instrs" r.golden_instrs;
  List.iter
    (fun site ->
      List.iter
        (fun o ->
          Metrics.set_counter reg
            ~labels:
              [ wl; ("site", Injector.site_name site); ("outcome", Outcome.name o) ]
            "fault.runs"
            (count r (Some site) o))
        Outcome.all)
    r.config.sites;
  let h = Metrics.histogram reg ~labels:[ wl ] "fault.detect_latency" in
  List.iter
    (fun rec_ ->
      match rec_.latency with Some l -> Metrics.observe h l | None -> ())
    r.records

(* ---- stochastic single-run mode -------------------------------------- *)

type stochastic = {
  injections : (int * Injector.injection) list;
  s_outcome : Outcome.t;
  s_status : string;
  s_instrs : int;
}

let stochastic_run ~mk (spec : Injector.spec) : stochastic =
  let g = mk () in
  let g_exit =
    match Machine.run g with
    | Machine.Exited n -> n
    | st ->
      Hb_error.fail ~component:"campaign"
        "reference run did not exit cleanly: %s" (Machine.status_name st)
  in
  let g_instrs = instrs_of g in
  let g_output = Machine.output g in
  let g_digest = Snapshot.digest g in
  let rng = Prng.create ~seed:spec.Injector.seed in
  let sites = Array.of_list spec.Injector.sites in
  let m = mk () in
  let injections = ref [] in
  let on_step m =
    if Prng.float rng < spec.Injector.rate then begin
      let site = sites.(Prng.below rng (Array.length sites)) in
      let i = Injector.inject rng m site in
      injections := (instrs_of m, i) :: !injections
    end
  in
  let limit = (4 * g_instrs) + 4096 in
  let result =
    try `R (Watchdog.run ~on_step ~limit m)
    with e -> `Crash (Printexc.to_string e)
  in
  let s_outcome, s_status =
    match result with
    | `Crash msg -> (Outcome.Crash, "exception: " ^ msg)
    | `R (Watchdog.Hang { instrs }) ->
      (Outcome.Hang, Printf.sprintf "hang(@%d instrs)" instrs)
    | `R (Watchdog.Completed st) -> (
      match st with
      | Machine.Bounds_violation _ | Machine.Non_pointer_violation _
      | Machine.Temporal_violation _ | Machine.Software_abort _ ->
        (Outcome.Detected, Machine.status_name st)
      | Machine.Fault _ -> (Outcome.Crash, Machine.status_name st)
      | Machine.Out_of_fuel -> (Outcome.Hang, "out-of-fuel")
      | Machine.Exited n ->
        if n <> g_exit || Machine.output m <> g_output then
          (Outcome.Silent_corruption, Machine.status_name st)
        else if Snapshot.digest m <> g_digest then
          (Outcome.Divergence, Machine.status_name st)
        else (Outcome.Masked, Machine.status_name st))
  in
  {
    injections = List.rev !injections;
    s_outcome;
    s_status;
    s_instrs = instrs_of m;
  }
