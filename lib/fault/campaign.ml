(** Deterministic fault-injection campaign runner.

    Strategy: run the workload once uninjected (the *golden* run) to
    learn its instruction count, output and checkpoint digests; then for
    each of the N planned injections, fast-forward to the injection
    point by restoring an architectural snapshot of the golden prefix
    (valid because execution is deterministic from architectural state),
    apply exactly one corruption, and run the suffix under a watchdog.

    Two optimizations keep thousand-run campaigns on multi-million
    instruction workloads tractable, neither affecting classification:

    - the golden prefix is never re-executed (runs are executed in
      injection-point order so one replay machine streams forward once);
    - a suffix whose digest matches golden's at a checkpoint has
      *converged*: the remainder is deterministic and identical, so the
      run is classified immediately ([Masked], or [Divergence] if it had
      strayed earlier).

    Both shortcuts are disabled when the machine runs the temporal or
    tripwire extensions, whose allocation maps live outside the
    architectural snapshot; those campaigns re-execute every prefix. *)

module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Snapshot = Hb_cpu.Snapshot
module Json = Hb_obs.Json
module Metrics = Hb_obs.Metrics

type config = {
  label : string;
  runs : int;
  seed : int;
  sites : Injector.site list;
  checkpoints : int;
  watchdog_factor : int;
  keep_run_records : bool;
  window_interval : int;
      (* instruction width of the timeline windows each injection is
         binned into in the JSON report; purely a reporting concern, so
         it cannot perturb the planned injection draws *)
}

let default =
  {
    label = "campaign";
    runs = 100;
    seed = 1;
    sites = Injector.all_sites;
    checkpoints = 16;
    watchdog_factor = 3;
    keep_run_records = true;
    window_interval = 10_000;
  }

type record = {
  idx : int;
  run_seed : int;
  site : Injector.site;
  at_instr : int;
  injection : Injector.injection;
  outcome : Outcome.t;
  status : string;
  latency : int option;
  diverged_at : int option;
}

type report = {
  config : config;
  golden_status : string;
  golden_instrs : int;
  golden_output_bytes : int;
  golden_digest : int64;
  checkpoint_interval : int;
  records : record list;
}

(* ---- golden reference ------------------------------------------------ *)

type golden = {
  g_status : string;
  g_exit : int;
  g_output : string;
  g_instrs : int;
  g_interval : int;
  g_digests : (int, int64) Hashtbl.t;
  g_digest : int64;
}

let instrs_of m = m.Machine.stats.Stats.instructions

(* Two passes: the first learns the instruction count (needed to place
   checkpoints), the second records a digest at each checkpoint. *)
let golden_of ~(cfg : config) ~mk : golden =
  let m = mk () in
  let st = Machine.run m in
  let g_exit =
    match st with
    | Machine.Exited n -> n
    | st ->
      Hb_error.fail ~component:"campaign"
        "golden run of %s did not exit cleanly: %s" cfg.label
        (Machine.status_name st)
  in
  let g_instrs = instrs_of m in
  if g_instrs < 2 then
    Hb_error.fail ~component:"campaign" "golden run of %s too short (%d instrs)"
      cfg.label g_instrs;
  let g_interval = max 1 (g_instrs / (cfg.checkpoints + 1)) in
  let g_digests = Hashtbl.create 64 in
  let m2 = mk () in
  let record m =
    let n = instrs_of m in
    if n < g_instrs && n mod g_interval = 0 then
      Hashtbl.replace g_digests n (Snapshot.digest m)
  in
  (match Watchdog.run ~on_step:record ~limit:(g_instrs + 1) m2 with
  | Watchdog.Completed (Machine.Exited n) when n = g_exit -> ()
  | r ->
    Hb_error.fail ~component:"campaign" "golden replay of %s diverged: %s"
      cfg.label (Watchdog.result_name r));
  {
    g_status = Machine.status_name st;
    g_exit;
    g_output = Machine.output m;
    g_instrs;
    g_interval;
    g_digests;
    g_digest = Snapshot.digest m2;
  }

(* ---- campaign execution ---------------------------------------------- *)

exception Converged
(** Raised from the checkpoint hook when the suffix digest matches
    golden's: the remainder of the run is provably identical. *)

let run ~mk (cfg : config) : report =
  if cfg.runs <= 0 then
    Hb_error.fail ~component:"campaign" "runs must be positive (got %d)"
      cfg.runs;
  if cfg.sites = [] then
    Hb_error.fail ~component:"campaign" "no fault sites selected";
  if cfg.window_interval <= 0 then
    Hb_error.fail ~component:"campaign"
      "window interval must be positive (got %d)" cfg.window_interval;
  let golden = golden_of ~cfg ~mk in
  (* Plan every injection up front from the master stream, so execution
     order (sorted by injection point) cannot influence the draws. *)
  let master = Prng.create ~seed:cfg.seed in
  let site_arr = Array.of_list cfg.sites in
  let plan =
    List.init cfg.runs (fun idx ->
        let run_seed = Prng.derive_seed master in
        let site = site_arr.(Prng.below master (Array.length site_arr)) in
        let at_instr = 1 + Prng.below master (golden.g_instrs - 1) in
        (idx, run_seed, site, at_instr))
  in
  let by_point =
    List.stable_sort
      (fun (_, _, _, a) (_, _, _, b) -> compare a b)
      plan
  in
  let replay = mk () in
  let fast =
    not (replay.Machine.cfg.Machine.temporal || replay.Machine.cfg.Machine.tripwire)
  in
  let scratch = if fast then mk () else replay in
  let limit = (cfg.watchdog_factor * golden.g_instrs) + 4096 in
  (* digest-compare against golden at checkpoint boundaries *)
  let checkpoint ~early_exit diverged m =
    let n = instrs_of m in
    if n < golden.g_instrs && n mod golden.g_interval = 0 then
      match Hashtbl.find_opt golden.g_digests n with
      | None -> ()
      | Some d ->
        if Snapshot.digest m = d then begin
          if early_exit then raise Converged
        end
        else if !diverged = None then diverged := Some n
  in
  let last_snap = ref None in
  let snapshot_at at =
    match !last_snap with
    | Some (a, s) when a = at -> s
    | _ ->
      while instrs_of replay < at && replay.Machine.halted = None do
        Machine.step replay
      done;
      let s = Snapshot.capture replay in
      last_snap := Some (at, s);
      s
  in
  let exec (idx, run_seed, site, at_instr) : record =
    let rng = Prng.create ~seed:run_seed in
    let diverged = ref None in
    let inj = ref None in
    let result, final_m =
      if fast then begin
        Snapshot.restore scratch (snapshot_at at_instr);
        scratch.Machine.stats.Stats.instructions <- at_instr;
        inj := Some (Injector.inject rng scratch site);
        let r =
          try
            `R
              (Watchdog.run
                 ~on_step:(checkpoint ~early_exit:true diverged)
                 ~limit scratch)
          with
          | Converged -> `Converged
          | e -> `Crash (Printexc.to_string e)
        in
        (r, scratch)
      end
      else begin
        (* temporal/tripwire state is not snapshot-capturable: re-run
           the prefix and inject on the fly *)
        let m = mk () in
        let on_step m =
          let n = instrs_of m in
          if n = at_instr then inj := Some (Injector.inject rng m site)
          else if n > at_instr then checkpoint ~early_exit:false diverged m
        in
        let r =
          try `R (Watchdog.run ~on_step ~limit m)
          with e -> `Crash (Printexc.to_string e)
        in
        (r, m)
      end
    in
    let outcome, status, latency =
      match result with
      | `Crash msg -> (Outcome.Crash, "exception: " ^ msg, None)
      | `Converged -> (
        match !diverged with
        | None -> (Outcome.Masked, "converged", None)
        | Some _ -> (Outcome.Divergence, "converged-after-divergence", None))
      | `R (Watchdog.Hang { instrs }) ->
        (Outcome.Hang, Printf.sprintf "hang(@%d instrs)" instrs, None)
      | `R (Watchdog.Completed st) -> (
        match st with
        | Machine.Bounds_violation _ | Machine.Non_pointer_violation _
        | Machine.Temporal_violation _ | Machine.Software_abort _ ->
          ( Outcome.Detected,
            Machine.status_name st,
            Some (instrs_of final_m - at_instr) )
        | Machine.Fault _ -> (Outcome.Crash, Machine.status_name st, None)
        | Machine.Out_of_fuel -> (Outcome.Hang, "out-of-fuel", None)
        | Machine.Exited n ->
          let visible_match =
            n = golden.g_exit && Machine.output final_m = golden.g_output
          in
          if not visible_match then
            (Outcome.Silent_corruption, Machine.status_name st, None)
          else if
            !diverged <> None
            || Snapshot.digest final_m <> golden.g_digest
          then (Outcome.Divergence, Machine.status_name st, None)
          else (Outcome.Masked, Machine.status_name st, None))
    in
    let injection =
      match !inj with
      | Some i -> i
      | None ->
        Hb_error.fail ~component:"campaign"
          "run %d never reached injection point %d" idx at_instr
    in
    {
      idx;
      run_seed;
      site;
      at_instr;
      injection;
      outcome;
      status;
      latency;
      diverged_at = !diverged;
    }
  in
  let records =
    List.sort
      (fun a b -> compare a.idx b.idx)
      (List.map exec by_point)
  in
  {
    config = cfg;
    golden_status = golden.g_status;
    golden_instrs = golden.g_instrs;
    golden_output_bytes = String.length golden.g_output;
    golden_digest = golden.g_digest;
    checkpoint_interval = golden.g_interval;
    records;
  }

(* ---- reporting ------------------------------------------------------- *)

let count (r : report) site outcome =
  List.fold_left
    (fun acc rec_ ->
      if rec_.outcome = outcome
         && (match site with None -> true | Some s -> rec_.site = s)
      then acc + 1
      else acc)
    0 r.records

let site_total (r : report) site =
  List.fold_left
    (fun acc rec_ -> if rec_.site = site then acc + 1 else acc)
    0 r.records

let coverage site_runs detected =
  if site_runs = 0 then 0. else float_of_int detected /. float_of_int site_runs

let coverage_table (r : report) : string =
  let b = Buffer.create 512 in
  Printf.bprintf b "%-10s %6s" "site" "runs";
  List.iter
    (fun o -> Printf.bprintf b " %9s" (Outcome.name o))
    Outcome.all;
  Printf.bprintf b " %9s\n" "coverage";
  let row name total site =
    Printf.bprintf b "%-10s %6d" name total;
    List.iter (fun o -> Printf.bprintf b " %9d" (count r site o)) Outcome.all;
    Printf.bprintf b " %8.1f%%\n"
      (100. *. coverage total (count r site Outcome.Detected))
  in
  List.iter
    (fun s -> row (Injector.site_name s) (site_total r s) (Some s))
    r.config.sites;
  row "total" (List.length r.records) None;
  Buffer.contents b

let record_json ~window_interval (rec_ : record) : Json.t =
  let opt = function None -> Json.Null | Some n -> Json.Int n in
  Json.Obj
    [
      ("run", Json.Int rec_.idx);
      ("seed", Json.Int rec_.run_seed);
      ("site", Json.String (Injector.site_name rec_.site));
      ("at", Json.Int rec_.at_instr);
      ("window", Json.Int (rec_.at_instr / window_interval));
      ("target", Json.Int rec_.injection.Injector.target);
      ("bit", Json.Int rec_.injection.Injector.bit);
      ("before", Json.Int rec_.injection.Injector.before);
      ("after", Json.Int rec_.injection.Injector.after);
      ("outcome", Json.String (Outcome.name rec_.outcome));
      ("status", Json.String rec_.status);
      ("latency", opt rec_.latency);
      ("diverged_at", opt rec_.diverged_at);
    ]

let to_json (r : report) : Json.t =
  let cfg = r.config in
  let coverage_rows =
    List.map
      (fun site ->
        let total = site_total r site in
        Json.Obj
          (("site", Json.String (Injector.site_name site))
           :: ("runs", Json.Int total)
           :: List.map
                (fun o -> (Outcome.name o, Json.Int (count r (Some site) o)))
                Outcome.all
           @ [
               ( "coverage",
                 Json.Float (coverage total (count r (Some site) Outcome.Detected))
               );
             ]))
      cfg.sites
    @ [
        (let total = List.length r.records in
         Json.Obj
           (("site", Json.String "total")
            :: ("runs", Json.Int total)
            :: List.map
                 (fun o -> (Outcome.name o, Json.Int (count r None o)))
                 Outcome.all
            @ [
                ( "coverage",
                  Json.Float (coverage total (count r None Outcome.Detected)) );
              ]));
      ]
  in
  Json.Obj
    ([
       ( "campaign",
         Json.Obj
           [
             ("label", Json.String cfg.label);
             ("runs", Json.Int cfg.runs);
             ("seed", Json.Int cfg.seed);
             ( "sites",
               Json.List
                 (List.map
                    (fun s -> Json.String (Injector.site_name s))
                    cfg.sites) );
             ("checkpoints", Json.Int cfg.checkpoints);
             ("watchdog_factor", Json.Int cfg.watchdog_factor);
             ("window_interval", Json.Int cfg.window_interval);
           ] );
       ( "golden",
         Json.Obj
           [
             ("status", Json.String r.golden_status);
             ("instrs", Json.Int r.golden_instrs);
             ("output_bytes", Json.Int r.golden_output_bytes);
             ("digest", Json.String (Snapshot.hex r.golden_digest));
             ("checkpoint_interval", Json.Int r.checkpoint_interval);
           ] );
       ("coverage", Json.List coverage_rows);
     ]
    @
    if cfg.keep_run_records then
      [ ("runs",
         Json.List
           (List.map
              (record_json ~window_interval:cfg.window_interval)
              r.records)) ]
    else [])

let export_metrics (r : report) (reg : Metrics.t) =
  let wl = ("workload", r.config.label) in
  Metrics.set_counter reg ~labels:[ wl ] "fault.golden_instrs" r.golden_instrs;
  List.iter
    (fun site ->
      List.iter
        (fun o ->
          Metrics.set_counter reg
            ~labels:
              [ wl; ("site", Injector.site_name site); ("outcome", Outcome.name o) ]
            "fault.runs"
            (count r (Some site) o))
        Outcome.all)
    r.config.sites;
  let h = Metrics.histogram reg ~labels:[ wl ] "fault.detect_latency" in
  List.iter
    (fun rec_ ->
      match rec_.latency with Some l -> Metrics.observe h l | None -> ())
    r.records

(* ---- stochastic single-run mode -------------------------------------- *)

type stochastic = {
  injections : (int * Injector.injection) list;
  s_outcome : Outcome.t;
  s_status : string;
  s_instrs : int;
}

let stochastic_run ~mk (spec : Injector.spec) : stochastic =
  let g = mk () in
  let g_exit =
    match Machine.run g with
    | Machine.Exited n -> n
    | st ->
      Hb_error.fail ~component:"campaign"
        "reference run did not exit cleanly: %s" (Machine.status_name st)
  in
  let g_instrs = instrs_of g in
  let g_output = Machine.output g in
  let g_digest = Snapshot.digest g in
  let rng = Prng.create ~seed:spec.Injector.seed in
  let sites = Array.of_list spec.Injector.sites in
  let m = mk () in
  let injections = ref [] in
  let on_step m =
    if Prng.float rng < spec.Injector.rate then begin
      let site = sites.(Prng.below rng (Array.length sites)) in
      let i = Injector.inject rng m site in
      injections := (instrs_of m, i) :: !injections
    end
  in
  let limit = (4 * g_instrs) + 4096 in
  let result =
    try `R (Watchdog.run ~on_step ~limit m)
    with e -> `Crash (Printexc.to_string e)
  in
  let s_outcome, s_status =
    match result with
    | `Crash msg -> (Outcome.Crash, "exception: " ^ msg)
    | `R (Watchdog.Hang { instrs }) ->
      (Outcome.Hang, Printf.sprintf "hang(@%d instrs)" instrs)
    | `R (Watchdog.Completed st) -> (
      match st with
      | Machine.Bounds_violation _ | Machine.Non_pointer_violation _
      | Machine.Temporal_violation _ | Machine.Software_abort _ ->
        (Outcome.Detected, Machine.status_name st)
      | Machine.Fault _ -> (Outcome.Crash, Machine.status_name st)
      | Machine.Out_of_fuel -> (Outcome.Hang, "out-of-fuel")
      | Machine.Exited n ->
        if n <> g_exit || Machine.output m <> g_output then
          (Outcome.Silent_corruption, Machine.status_name st)
        else if Snapshot.digest m <> g_digest then
          (Outcome.Divergence, Machine.status_name st)
        else (Outcome.Masked, Machine.status_name st))
  in
  {
    injections = List.rev !injections;
    s_outcome;
    s_status;
    s_instrs = instrs_of m;
  }
