(** Seeded, fully deterministic PRNG (SplitMix64) — the one pseudo-random
    source of the fault-injection subsystem.  No module on the simulation
    path may use [Random] or wall-clock entropy (see [test_hygiene]). *)

type t

val create : seed:int -> t

val next : t -> int64
(** Next 64-bit draw. *)

val int : t -> int
(** Non-negative 62-bit draw. *)

val below : t -> int -> int
(** Uniform in [0, n); raises [Invalid_argument] if [n <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val derive_seed : t -> int
(** A fresh seed for an independent, individually-reproducible child
    generator. *)
