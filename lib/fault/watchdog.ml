(** Run a machine under an instruction-budget watchdog.

    Injected runs can easily corrupt a loop counter and spin forever;
    the watchdog converts those into a [Hang] verdict instead of wedging
    the campaign.  Checker exceptions are mapped to statuses exactly as
    {!Machine.run} maps them, so a watchdogged run and a plain run agree
    on every terminating program. *)

module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Checker = Hardbound.Checker
module Temporal = Hb_cpu.Temporal

type result =
  | Completed of Machine.status
  | Hang of { instrs : int }  (** instruction count at watchdog expiry *)

let result_name = function
  | Completed st -> Machine.status_name st
  | Hang { instrs } -> Printf.sprintf "hang(@%d instrs)" instrs

(** [run ~limit m] steps [m] until it halts or [m.stats.instructions]
    reaches [limit].  [on_step] fires after every retired instruction —
    the campaign's checkpoint hook; exceptions it raises propagate to
    the caller untouched. *)
let run ?(on_step = fun (_ : Machine.t) -> ()) ~limit (m : Machine.t) : result
    =
  let finish st =
    m.Machine.halted <- Some st;
    Completed st
  in
  let rec loop () =
    match m.Machine.halted with
    | Some st -> Completed st
    | None ->
      if m.Machine.stats.Stats.instructions >= limit then
        Hang { instrs = m.Machine.stats.Stats.instructions }
      else begin
        Machine.step m;
        on_step m;
        loop ()
      end
  in
  try loop () with
  | Checker.Bounds_violation v ->
    Machine.emit_violation m "bounds" v;
    finish (Machine.Bounds_violation v)
  | Checker.Non_pointer_deref v ->
    Machine.emit_violation m "non-pointer" v;
    finish (Machine.Non_pointer_violation v)
  | Machine.Software_abort_exn code -> finish (Machine.Software_abort code)
  | Temporal.Temporal_violation f -> finish (Machine.Temporal_violation f)
  | Machine.Machine_fault s -> finish (Machine.Fault s)
  | Hb_error.Hb_error (ctx, msg) ->
    finish (Machine.Fault (Hb_error.to_string (ctx, msg)))
