(** The trap supervisor: precise violation traps dispatched to a
    configurable recovery policy.

    {!run} steps a machine like {!Hb_cpu.Machine.run} does, but catches
    the checker's bounds / non-pointer exceptions with the pc still at
    the faulting instruction, materializes a precise {!Trap.t}, and then
    *continues* according to the configured {!Policy.t}:

    - [Abort] terminates with the violation status (bit-for-bit the
      behavior of [Machine.run] / [Watchdog.run]);
    - [Report] arms the machine's one-shot [Skip_check] override and
      re-issues the faulting instruction, retiring the access unchecked.
      An unchecked retire of a wild pointer may still die on the
      machine's own guards (null page, address wrap) — that surfaces as
      a [Fault] status after the trap, which is part of the documented
      taxonomy, not a supervisor bug;
    - [Null_guard] arms [Squash_access]: the re-issued load reads 0 (no
      metadata), the re-issued store is dropped;
    - [Rollback] restores the most recent snapshot from a bounded ring
      (captured every [checkpoint_interval] instructions), marks the
      faulting site suppressed, and replays; when the replay reaches the
      same (pc, addr) trap it is squashed.  A site that keeps re-trapping
      past [max_rollbacks] escalates the run to [Report]; the violation
      budget then provides the final report → abort stage, and the
      instruction-limit watchdog backstops any livelock the escalation
      ladder cannot see.

    Every continuing policy shares the [violation_budget]: once that
    many traps have been absorbed, the next one aborts.  Re-issuing a
    faulting instruction retires it a second time — instruction and
    micro-op counters include that trap-replay cost (the default abort
    path is untouched, so the BENCH cycle baseline does not move).

    After any run that absorbed a trap or rolled back, the supervisor
    re-checks the {!Hb_cpu.Stats.check_invariants} accounting identities
    and raises a typed {!Hb_error.Hb_error} on a leak: a recovery path
    that breaks [cycles = uops + stalls] is an instrumentation bug and
    must not report quietly. *)

module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Snapshot = Hb_cpu.Snapshot
module Temporal = Hb_cpu.Temporal
module Checker = Hardbound.Checker
module Trace = Hb_obs.Trace
module Metrics = Hb_obs.Metrics

type action = Aborted | Retired_unchecked | Squashed | Rolled_back

let action_name = function
  | Aborted -> "abort"
  | Retired_unchecked -> "retire-unchecked"
  | Squashed -> "squash"
  | Rolled_back -> "rollback"

(** One dispatched trap: what fired, what the supervisor did, and the
    policy in force at that moment (escalation can change it mid-run). *)
type handled = { trap : Trap.t; action : action; policy : Policy.t }

type outcome = {
  status : Machine.status;
  traps : handled list;  (** every dispatched trap, oldest first *)
  handled_count : int;   (** traps absorbed without aborting *)
  rollbacks : int;
  escalations : int;     (** rollback → report policy downgrades *)
  budget_exhausted : bool;
  hung : bool;           (** instruction limit expired (watchdog) *)
  deadline_expired : bool;
}

let describe_handled h =
  Printf.sprintf "%s -> %s [%s]" (Trap.describe h.trap)
    (action_name h.action) (Policy.name h.policy)

let summary (o : outcome) =
  Printf.sprintf
    "policy outcome: %s; %d trap(s), %d absorbed, %d rollback(s), %d \
     escalation(s)%s%s%s"
    (Machine.status_name o.status)
    (List.length o.traps) o.handled_count o.rollbacks o.escalations
    (if o.budget_exhausted then "; violation budget exhausted" else "")
    (if o.hung then "; watchdog limit hit" else "")
    (if o.deadline_expired then "; deadline expired" else "")

let run ?(on_step = fun (_ : Machine.t) -> ()) ?(limit = max_int)
    ?(deadline = Deadline.none) ?(line_base = 0) ~(config : Policy.config)
    (m : Machine.t) : outcome =
  let traps = ref [] in
  let handled = ref 0 in
  let rollbacks = ref 0 in
  let escalations = ref 0 in
  let budget_exhausted = ref false in
  let hung = ref false in
  let ddl = ref false in
  let effective = ref config.Policy.policy in
  (* Rollback state: a bounded ring of snapshots, per-site repeat counts,
     and the set of (pc, addr) sites whose next trap must be squashed
     because a rollback already decided to suppress that access. *)
  let want_ring = config.Policy.policy = Policy.Rollback in
  let ring_cap = max 1 config.Policy.ring_capacity in
  let ring = Array.make ring_cap None in
  let ring_n = ref 0 in
  let push s =
    ring.(!ring_n mod ring_cap) <- Some s;
    incr ring_n
  in
  let latest () =
    if !ring_n = 0 then None else ring.((!ring_n - 1) mod ring_cap)
  in
  let interval = max 1 config.Policy.checkpoint_interval in
  let next_capture = ref 0 in
  let repeat_counts : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  let suppress : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let finish st =
    m.Machine.halted <- Some st;
    st
  in
  let record t action =
    traps := { trap = t; action; policy = !effective } :: !traps;
    Machine.emit m
      (Trace.Trap
         {
           what = Trap.kind_name t.Trap.kind;
           policy = Policy.name !effective;
           action = action_name action;
           addr = t.Trap.addr;
           base = t.Trap.base;
           bound = t.Trap.bound;
         })
  in
  let absorb t action =
    incr handled;
    Checker.tally.Checker.handled_traps <-
      Checker.tally.Checker.handled_traps + 1;
    record t action
  in
  (* Decide what to do with one trap.  Returns [`Continue] after arming
     the machine (override / restore) or [`Terminal st]. *)
  let dispatch kind (v : Checker.violation) =
    let t = Trap.of_violation ~kind ~line_base m v in
    let terminal () =
      Machine.emit_violation m (Trap.kind_name kind) v;
      let st =
        match kind with
        | Trap.Bounds -> Machine.Bounds_violation v
        | Trap.Non_pointer -> Machine.Non_pointer_violation v
      in
      `Terminal (finish st)
    in
    (* Only a load/store can be retried or squashed; a forged function
       pointer (Call_reg's non-pointer trap) has no meaningful squash
       semantics and always terminates. *)
    let trappable =
      m.Machine.pc >= 0
      && m.Machine.pc < Array.length m.Machine.image.Hb_isa.Program.code
      && (match m.Machine.image.Hb_isa.Program.code.(m.Machine.pc) with
         | Hb_isa.Types.Load _ | Hb_isa.Types.Store _ -> true
         | _ -> false)
    in
    if !effective = Policy.Abort || not trappable then begin
      record t Aborted;
      terminal ()
    end
    else if !handled >= config.Policy.violation_budget then begin
      budget_exhausted := true;
      record t Aborted;
      terminal ()
    end
    else
      match !effective with
      | Policy.Abort -> assert false
      | Policy.Report ->
        m.Machine.override <- Machine.Skip_check;
        absorb t Retired_unchecked;
        `Continue
      | Policy.Null_guard ->
        m.Machine.override <- Machine.Squash_access;
        absorb t Squashed;
        `Continue
      | Policy.Rollback ->
        let key = (v.Checker.pc, v.Checker.addr) in
        if Hashtbl.mem suppress key then begin
          (* the replay reached the access a rollback suppressed:
             squash it and forget the suppression (a later dynamic
             recurrence of the same site earns a fresh rollback) *)
          Hashtbl.remove suppress key;
          m.Machine.override <- Machine.Squash_access;
          absorb t Squashed;
          `Continue
        end
        else begin
          let repeats =
            1 + (try Hashtbl.find repeat_counts key with Not_found -> 0)
          in
          Hashtbl.replace repeat_counts key repeats;
          let escalate () =
            incr escalations;
            effective := Policy.Report;
            m.Machine.override <- Machine.Skip_check;
            absorb t Retired_unchecked;
            `Continue
          in
          if repeats > config.Policy.max_rollbacks then escalate ()
          else
            match latest () with
            | None -> escalate ()
            | Some s ->
              Snapshot.restore m s;
              Hashtbl.replace suppress key ();
              incr rollbacks;
              absorb t Rolled_back;
              `Continue
        end
  in
  let rec loop () : Machine.status =
    match
      try
        let fin = ref None in
        while !fin = None do
          match m.Machine.halted with
          | Some st -> fin := Some (`Done st)
          | None ->
            let n = m.Machine.stats.Stats.instructions in
            if n >= limit then begin
              hung := true;
              fin := Some (`Stop Machine.Out_of_fuel)
            end
            else if n >= m.Machine.cfg.Machine.max_instrs then
              fin := Some (`Stop Machine.Out_of_fuel)
            else if n land 8191 = 0 && Deadline.expired deadline then begin
              ddl := true;
              fin := Some (`Stop Machine.Out_of_fuel)
            end
            else begin
              if want_ring && n >= !next_capture then begin
                push (Snapshot.capture m);
                next_capture := n + interval
              end;
              Machine.step m;
              on_step m
            end
        done;
        match !fin with
        | Some r -> (r :> [ `Done of Machine.status
                          | `Stop of Machine.status
                          | `Trap of Trap.kind * Checker.violation ])
        | None -> assert false
      with
      | Checker.Bounds_violation v -> `Trap (Trap.Bounds, v)
      | Checker.Non_pointer_deref v -> `Trap (Trap.Non_pointer, v)
      | Machine.Software_abort_exn code ->
        `Done (finish (Machine.Software_abort code))
      | Temporal.Temporal_violation f ->
        `Done (finish (Machine.Temporal_violation f))
      | Machine.Machine_fault s -> `Done (finish (Machine.Fault s))
      | Hb_error.Hb_error (ctx, msg) ->
        `Done (finish (Machine.Fault (Hb_error.to_string (ctx, msg))))
    with
    | `Done st -> st
    | `Stop st -> st  (* limit / fuel / deadline: machine left runnable *)
    | `Trap (kind, v) -> (
      match dispatch kind v with
      | `Continue -> loop ()
      | `Terminal st -> st)
  in
  let status = loop () in
  (* A recovery path must leave the timing model's books balanced. *)
  if !handled > 0 || !rollbacks > 0 then
    (match Stats.check_invariants m.Machine.stats with
     | Ok () -> ()
     | Error msg ->
       Hb_error.fail ~component:"recover"
         "accounting identity broken after recovery: %s" msg);
  {
    status;
    traps = List.rev !traps;
    handled_count = !handled;
    rollbacks = !rollbacks;
    escalations = !escalations;
    budget_exhausted = !budget_exhausted;
    hung = !hung;
    deadline_expired = !ddl;
  }

(* ---- reporting ------------------------------------------------------- *)

(** Publish [hb.traps_total{policy, outcome}] (plus rollback/escalation
    counters) into a metrics registry. *)
let export_metrics (o : outcome) (reg : Metrics.t) =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun h ->
      let key = (Policy.name h.policy, action_name h.action) in
      Hashtbl.replace counts key
        (1 + (try Hashtbl.find counts key with Not_found -> 0)))
    o.traps;
  List.iter
    (fun (pol, act) ->
      match Hashtbl.find_opt counts (pol, act) with
      | None -> ()
      | Some n ->
        Metrics.set_counter reg
          ~labels:[ ("policy", pol); ("outcome", act) ]
          "hb.traps_total" n)
    (List.concat_map
       (fun p ->
         List.map
           (fun a -> (Policy.name p, action_name a))
           [ Aborted; Retired_unchecked; Squashed; Rolled_back ])
       Policy.all);
  Metrics.set_counter reg "hb.rollbacks_total" o.rollbacks;
  Metrics.set_counter reg "hb.trap_escalations_total" o.escalations
