(** Cooperative shutdown requests: SIGTERM/SIGINT flip a flag that
    long-running loops poll at their natural yield points, winding down
    through the same partial-report path as a {!Deadline} expiry — the
    journal is fsync'd and closed, the report is well-formed, and the
    process exits with {!exit_code} plus a [--resume] hint. *)

val install : unit -> unit
(** Install SIGTERM/SIGINT handlers that record the signal.  Idempotent;
    safe to call from any mode. *)

val requested : unit -> bool
(** [true] once a shutdown signal has been delivered (or simulated). *)

val signal_name : unit -> string
(** ["SIGTERM"], ["SIGINT"], ["signal N"], or ["none"]. *)

val reset : unit -> unit
(** Clear the flag (tests). *)

val simulate : unit -> unit
(** Pretend a SIGTERM was delivered without involving the kernel
    (tests). *)

val exit_code : int
(** Process exit code for an interrupted-but-well-formed partial run:
    6 — distinct from ok/violation/usage and the shard worker
    protocol. *)
