(** Write-ahead JSONL journal.

    One JSON object per line, each line [fsync]'d before [append]
    returns: a record that [append] has acknowledged survives a SIGKILL
    of the writing process.  The reader tolerates a *torn tail* — a
    final line cut short by a crash mid-write — by dropping it; a
    malformed line anywhere else means real corruption and raises a
    typed {!Hb_error.Hb_error}. *)

module Json = Hb_obs.Json

type writer = { oc : out_channel; fd : Unix.file_descr; path : string }

let writer_of path oc =
  { oc; fd = Unix.descr_of_out_channel oc; path }

(* A signal delivered mid-[fsync] (the shard supervisor SIGKILLs
   siblings, SIGCHLD from a dying worker, ...) surfaces as [EINTR];
   the write is still wanted, so retry.  Any other failure is a real
   I/O error a user must act on — surface it as a typed error naming
   the journal, not a raw [Unix_error]/[Sys_error] backtrace. *)
let rec fsync_retrying path fd =
  match Unix.fsync fd with
  | () -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> fsync_retrying path fd
  | exception Unix.Unix_error (err, fn, _) ->
    Hb_error.fail ~component:"journal" "%s: %s failed: %s" path fn
      (Unix.error_message err)

let guarded path f =
  match f () with
  | v -> v
  | exception Sys_error msg ->
    Hb_error.fail ~component:"journal" "%s: journal I/O failed: %s" path msg
  | exception Unix.Unix_error (err, fn, _) ->
    Hb_error.fail ~component:"journal" "%s: %s failed: %s" path fn
      (Unix.error_message err)

(** Create (truncate) [path] for a fresh journal. *)
let create path =
  guarded path (fun () ->
      writer_of path
        (open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path))

(* Appending straight after a crash's torn tail would glue the next
   record onto the partial line, turning a tolerated tail into mid-file
   corruption.  Repair the tail to a record boundary first, mirroring
   [read]'s policy exactly: a final unterminated line that parses is a
   complete record missing only its newline (finish it), anything else
   is dropped. *)
let repair_tail path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    if len > 0 && contents.[len - 1] <> '\n' then begin
      let start =
        match String.rindex_opt contents '\n' with
        | Some i -> i + 1
        | None -> 0
      in
      let last = String.sub contents start (len - start) in
      match Json.of_string last with
      | _ ->
        let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
        output_char oc '\n';
        close_out oc
      | exception Json.Parse_error _ ->
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd start;
        Unix.close fd
    end
  end

(** Open [path] for appending — resuming a journal continues the same
    file, so an interrupted resume can itself be resumed.  A torn tail
    left by the previous writer's crash is repaired to a record boundary
    before the first append. *)
let append_to path =
  guarded path (fun () ->
      repair_tail path;
      writer_of path
        (open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path))

(* One record: compact JSON (newline-free) plus ['\n'], flushed to the
   kernel.  Durability is the caller's choice ([append] vs
   [append_nosync]). *)
let push w (j : Json.t) =
  guarded w.path (fun () ->
      output_string w.oc (Json.to_string j);
      output_char w.oc '\n';
      flush w.oc)

(** Append one record durably: when [append] returns, the record is on
    disk ([fsync]'d, with [EINTR] retried). *)
let append w (j : Json.t) =
  push w j;
  fsync_retrying w.path w.fd

(** Append one record without the [fsync] — for liveness signals
    (heartbeats) whose loss costs nothing.  Ordering is still safe: a
    later [append]'s fsync flushes these bytes too, so an un-synced
    record can only ever be the torn tail. *)
let append_nosync = push

let close w = guarded w.path (fun () -> close_out w.oc)

let path_of w = w.path

(** Read every intact record.  The last line is the torn-tail candidate:
    if it fails to parse (or the file does not end in a newline), it is
    dropped silently — that is the crash the journal exists to survive.
    An unparsable line before the tail raises, naming the exact 1-based
    line: the number is derived from the line's position up front, so no
    accumulator bookkeeping can skew it. *)
let read path : Json.t list =
  let contents =
    guarded path (fun () ->
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let contents = really_input_string ic len in
        close_in ic;
        contents)
  in
  (* a file ending in '\n' splits into lines @ [""] — that sentinel (or,
     without the newline, the final unterminated line) is the tail *)
  let numbered =
    List.mapi (fun i l -> (i + 1, l)) (String.split_on_char '\n' contents)
  in
  let rec go acc = function
    | [] | [ (_, "") ] -> List.rev acc
    | [ (_, last) ] -> (
      match Json.of_string last with
      | j -> List.rev (j :: acc)
      | exception Json.Parse_error _ -> List.rev acc)
    | (line_no, line) :: rest -> (
      match Json.of_string line with
      | j -> go (j :: acc) rest
      | exception Json.Parse_error msg ->
        Hb_error.fail ~component:"journal" "%s: corrupt record at line %d: %s"
          path line_no msg)
  in
  go [] numbered

(** [read] for files that may legitimately not exist yet (a worker
    killed between fork and its first write): missing or empty reads as
    no records. *)
let read_or_empty path : Json.t list =
  if Sys.file_exists path then read path else []

(* ---- shard records ----------------------------------------------------- *)

(* Record shapes the sharded campaign engine ([hb_shard]) journals
   per-worker: a shard header binding the worker's slice to the campaign
   it partitions, and heartbeat records the supervisor's watchdog reads
   for liveness.  They live here so the journal format has one home. *)

(** Shard journal header: wraps the campaign's own header record with
    the (shard, jobs) coordinates of this slice. *)
let shard_header_json ~campaign ~shard ~jobs : Json.t =
  Json.Obj
    [
      ("type", Json.String "shard-header");
      ("journal", Json.String "hb-campaign-shard");
      ("version", Json.Int 1);
      ("shard", Json.Int shard);
      ("jobs", Json.Int jobs);
      ("campaign", campaign);
    ]

(** Worker liveness beacon, appended (un-synced) before each run: the
    writing pid, a monotonically increasing sequence number, how many of
    the shard's runs are acknowledged, and the index about to execute. *)
let heartbeat_json ~pid ~seq ~completed ~next : Json.t =
  Json.Obj
    [
      ("type", Json.String "hb");
      ("pid", Json.Int pid);
      ("seq", Json.Int seq);
      ("completed", Json.Int completed);
      ("next", match next with Some i -> Json.Int i | None -> Json.Null);
    ]

let record_type j =
  match Json.member "type" j with Some (Json.String s) -> Some s | _ -> None

let is_heartbeat j = record_type j = Some "hb"
