(** Write-ahead JSONL journal.

    One JSON object per line, each line [fsync]'d before [append]
    returns: a record that [append] has acknowledged survives a SIGKILL
    of the writing process.  The reader tolerates a *torn tail* — a
    final line cut short by a crash mid-write — by dropping it; a
    malformed line anywhere else means real corruption and raises a
    typed {!Hb_error.Hb_error}. *)

module Json = Hb_obs.Json

type writer = { oc : out_channel; fd : Unix.file_descr }

let writer_of oc = { oc; fd = Unix.descr_of_out_channel oc }

(** Create (truncate) [path] for a fresh journal. *)
let create path = writer_of (open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path)

(** Open [path] for appending — resuming a journal continues the same
    file, so an interrupted resume can itself be resumed. *)
let append_to path =
  writer_of (open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path)

(** Append one record: compact JSON (newline-free), ['\n'], flush,
    fsync.  When [append] returns, the record is on disk. *)
let append w (j : Json.t) =
  output_string w.oc (Json.to_string j);
  output_char w.oc '\n';
  flush w.oc;
  Unix.fsync w.fd

let close w = close_out w.oc

(** Read every intact record.  The last line is the torn-tail candidate:
    if it fails to parse (or the file does not end in a newline), it is
    dropped silently — that is the crash the journal exists to survive.
    An unparsable line before the tail raises. *)
let read path : Json.t list =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let lines = String.split_on_char '\n' contents in
  (* a file ending in '\n' splits into lines @ [""] — drop the sentinel;
     otherwise the final element is an untermined (torn) line *)
  let rec go n acc = function
    | [] | [ "" ] -> List.rev acc
    | [ last ] -> (
      match Json.of_string last with
      | j -> List.rev (j :: acc)
      | exception Json.Parse_error _ -> List.rev acc)
    | line :: rest -> (
      match Json.of_string line with
      | j -> go (n + 1) (j :: acc) rest
      | exception Json.Parse_error msg ->
        Hb_error.fail ~component:"journal" "%s: corrupt record at line %d: %s"
          path n msg)
  in
  go 1 [] lines
