(** Precise architectural trap records.

    A trap is what a hardware bounds-violation exception would deliver
    to a software handler: the faulting pc resolved to [fn:line] through
    the image's debug map, the effective address and access shape, the
    offending pointer's value and base/bound metadata, the encoding
    scheme in force, and the instruction/cycle counts at the fault.  The
    machine leaves the pc at the faulting instruction when a checker
    exception unwinds, so the supervisor builds the record before
    deciding what to do with the access. *)

module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Checker = Hardbound.Checker
module Meta = Hardbound.Meta
module Encoding = Hardbound.Encoding
module Json = Hb_obs.Json

type kind = Bounds | Non_pointer

let kind_name = function Bounds -> "bounds" | Non_pointer -> "non-pointer"

type t = {
  kind : kind;
  pc : int;           (** linked code index of the faulting instruction *)
  fn : string;
  line : int;
      (** source line: positive = user line, negative = runtime-prelude
          line (rendered [rt.N]), 0 = unknown — same convention as
          [Machine.enable_attr] *)
  addr : int;         (** effective address of the access *)
  value : int;        (** the faulting pointer's register value *)
  width : int;
  is_store : bool;
  base : int;
  bound : int;
  scheme : string;    (** pointer-encoding scheme in force *)
  at_instr : int;     (** retired instructions when the trap fired *)
  cycle : int;
}

(* Map a raw debug-map unit line to the user's own numbering: lines at or
   below [line_base] belong to the runtime prelude (stored negated), the
   rest are offset so they match the user's source. *)
let resolve_line ~line_base raw =
  if raw = 0 then 0 else if raw > line_base then raw - line_base else -raw

let of_violation ~kind ?(line_base = 0) (m : Machine.t)
    (v : Checker.violation) : t =
  {
    kind;
    pc = v.Checker.pc;
    fn = Machine.fn_at m v.Checker.pc;
    line = resolve_line ~line_base (Machine.line_at m v.Checker.pc);
    addr = v.Checker.addr;
    value = v.Checker.value;
    width = v.Checker.width;
    is_store = v.Checker.is_store;
    base = v.Checker.meta.Meta.base;
    bound = v.Checker.meta.Meta.bound;
    scheme = Encoding.scheme_name m.Machine.cfg.Machine.scheme;
    at_instr = m.Machine.stats.Stats.instructions;
    cycle = Stats.cycles m.Machine.stats;
  }

(** ["fn:12"], ["fn:rt.3"] for runtime-prelude lines, ["fn"] when the
    debug map has no line for the pc. *)
let where t =
  if t.line > 0 then Printf.sprintf "%s:%d" t.fn t.line
  else if t.line < 0 then Printf.sprintf "%s:rt.%d" t.fn (-t.line)
  else t.fn

let describe t =
  Printf.sprintf
    "%s trap at %s (pc=%d): %s of %d byte(s) at 0x%x via 0x%x [0x%x, 0x%x) \
     %s @%d instrs"
    (kind_name t.kind) (where t) t.pc
    (if t.is_store then "store" else "load")
    t.width t.addr t.value t.base t.bound t.scheme t.at_instr

let to_json t =
  Json.Obj
    [
      ("kind", Json.String (kind_name t.kind));
      ("pc", Json.Int t.pc);
      ("fn", Json.String t.fn);
      ("line", Json.Int t.line);
      ("addr", Json.Int t.addr);
      ("value", Json.Int t.value);
      ("width", Json.Int t.width);
      ("is_store", Json.Bool t.is_store);
      ("base", Json.Int t.base);
      ("bound", Json.Int t.bound);
      ("scheme", Json.String t.scheme);
      ("at", Json.Int t.at_instr);
      ("cycle", Json.Int t.cycle);
    ]

(** Timeline window the trap falls in, for correlating trap records with
    [Hb_obs.Timeline] phase windows (cycle-based, like the sampler). *)
let window t ~interval = if interval <= 0 then 0 else t.cycle / interval
