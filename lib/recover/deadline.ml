(** Wall-clock budget for long runs.

    A deadline is an absolute expiry instant on the monotonic
    [Hb_obs.Clock]; [expired] is a cheap comparison against it.
    Campaigns check it between runs (and the trap supervisor every few
    thousand instructions) so a budgeted run ends with a well-formed
    partial report instead of a dead process.

    Monotonic on purpose: the campaign ETA and this deadline read the
    same clock, so an NTP step can neither fire a deadline early nor
    stretch it — only real elapsed time counts. *)

module Clock = Hb_obs.Clock

type t = int64 option  (* absolute expiry, monotonic nanoseconds *)

let none : t = None

(** [after secs]: a deadline [secs] from now. *)
let after secs : t = Some (Int64.add (Clock.now_ns ()) (Clock.ns_of_s secs))

(** CLI adapter: [--deadline SECS] as an option. *)
let of_secs = function None -> none | Some s -> after s

let expired = function
  | None -> false
  | Some t -> Int64.compare (Clock.now_ns ()) t >= 0
