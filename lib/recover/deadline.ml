(** Wall-clock budget for long runs.

    A deadline is an absolute expiry instant; [expired] is a cheap
    comparison against [Unix.gettimeofday].  Campaigns check it between
    runs (and the trap supervisor every few thousand instructions) so a
    budgeted run ends with a well-formed partial report instead of a
    dead process. *)

type t = float option  (* absolute expiry, seconds since the epoch *)

let none : t = None

(** [after secs]: a deadline [secs] from now. *)
let after secs : t = Some (Unix.gettimeofday () +. secs)

(** CLI adapter: [--deadline SECS] as an option. *)
let of_secs = function None -> none | Some s -> after s

let expired = function
  | None -> false
  | Some t -> Unix.gettimeofday () >= t
