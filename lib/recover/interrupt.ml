(** Cooperative shutdown requests: SIGTERM/SIGINT as data.

    Campaign mode must die well: on SIGTERM (orchestrator drains the
    node) or SIGINT (operator hits Ctrl-C) the process should stop
    accepting work, fsync and close its journal, emit a well-formed
    partial report with a [--resume] hint, and exit with a distinct
    code — not vanish mid-write and leave the journal's torn-tail
    repair to do the honours.

    The handler itself only flips a flag; every long-running loop
    (campaign runs, supervisor polls, the daemon scheduler) checks
    {!requested} at its natural yield point and winds down through the
    same partial-report path a {!Deadline} expiry takes, so the
    interrupted artifacts are exactly as well-formed as deadline ones.

    Nothing here touches the clock or entropy: an uninstalled or
    untripped handler leaves every deterministic artifact
    byte-identical. *)

let flag : int option ref = ref None
let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    let note signum =
      Sys.set_signal signum (Sys.Signal_handle (fun s -> flag := Some s))
    in
    note Sys.sigterm;
    note Sys.sigint
  end

let requested () = !flag <> None

let signal_name () =
  match !flag with
  | Some s when s = Sys.sigint -> "SIGINT"
  | Some s when s = Sys.sigterm -> "SIGTERM"
  | Some s -> Printf.sprintf "signal %d" s
  | None -> "none"

(* Tests fork-free simulate a delivery by resetting between cases. *)
let reset () = flag := None
let simulate () = flag := Some Sys.sigterm

(* Distinct from 0 (ok), 1 (violation found), 2 (usage), and the worker
   protocol codes 3/4/5: an interrupted-but-well-formed partial exit. *)
let exit_code = 6
