(** Recovery policies: what the trap supervisor does with a precise
    bounds-violation trap.

    The paper specifies *detection* (a bounds-violation exception on
    every out-of-bounds dereference) and deliberately leaves the handler
    policy to software.  This module enumerates the policy spectrum the
    CLIs expose through [--on-violation]:

    - [Abort]: terminate at the first violation (the historical
      behavior, and the only policy the paper's evaluation needs);
    - [Report]: log the trap, retire the faulting access *unchecked*,
      and keep running until the violation budget is spent — CGuard's
      report-and-continue mode;
    - [Null_guard]: squash the faulting access (loads read 0, stores are
      dropped) — CGuard's continue mode with well-defined blame at the
      faulting operation, as formalized for Checked C;
    - [Rollback]: restore the most recent checkpoint from a bounded
      snapshot ring and re-execute with the faulting access suppressed,
      escalating rollback → report → abort when the same trap repeats. *)

type t = Abort | Report | Null_guard | Rollback

let all = [ Abort; Report; Null_guard; Rollback ]

let name = function
  | Abort -> "abort"
  | Report -> "report"
  | Null_guard -> "null-guard"
  | Rollback -> "rollback"

let of_name = function
  | "abort" -> Some Abort
  | "report" -> Some Report
  | "null-guard" | "nullguard" | "null" -> Some Null_guard
  | "rollback" -> Some Rollback
  | _ -> None

let known = String.concat " | " (List.map name all)

let describe = function
  | Abort -> "terminate at the first violation"
  | Report -> "log the trap and retire the access unchecked"
  | Null_guard -> "squash the access: loads read 0, stores drop"
  | Rollback -> "restore the latest checkpoint, suppress the access"

(** Supervisor knobs.  [violation_budget] bounds the number of traps any
    continuing policy may absorb before the supervisor forces an abort;
    [checkpoint_interval]/[ring_capacity] size the rollback snapshot
    ring; [max_rollbacks] is the same-site repeat count after which
    rollback escalates to report (the budget then provides the final
    report → abort stage). *)
type config = {
  policy : t;
  violation_budget : int;
  checkpoint_interval : int;  (** instructions between ring captures *)
  ring_capacity : int;
  max_rollbacks : int;
}

let default =
  {
    policy = Abort;
    violation_budget = 64;
    checkpoint_interval = 10_000;
    ring_capacity = 4;
    max_rollbacks = 3;
  }

let with_policy policy = { default with policy }
