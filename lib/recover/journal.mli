(** Crash-resilient write-ahead JSONL journal.

    One JSON record per line.  [append] is the durability boundary:
    once it returns, that record survives SIGKILL of the writer.  A
    crash mid-write leaves a {e torn tail} — a final partial line —
    which [read] silently drops; malformed lines anywhere earlier are
    genuine corruption and raise a typed {!Hb_error.Hb_error} naming
    the journal path and the 1-based line number.  All I/O failures
    (including [EINTR]-interrupted [fsync], which is retried) surface
    as typed errors naming the path, never as raw [Unix_error]s. *)

type writer

val create : string -> writer
(** Truncate-and-open a fresh journal at the given path. *)

val append_to : string -> writer
(** Open an existing journal (or create it) for appending — used when
    resuming, so an interrupted resume can itself be resumed.  A torn
    tail left by the previous writer's crash is first repaired to a
    record boundary (matching {!read}'s policy: a parseable final line
    missing its newline is completed, a partial one is dropped), so new
    records never glue onto a torn line. *)

val append : writer -> Hb_obs.Json.t -> unit
(** Write one record and [fsync]: durable on return. *)

val append_nosync : writer -> Hb_obs.Json.t -> unit
(** Write one record flushed to the kernel but not [fsync]'d — for
    records whose loss is harmless (heartbeats).  A subsequent [append]
    makes it durable too (same fd, ordered bytes). *)

val close : writer -> unit

val path_of : writer -> string

val read : string -> Hb_obs.Json.t list
(** All intact records; drops a torn tail; raises a typed error on
    mid-file corruption, naming path and line. *)

val read_or_empty : string -> Hb_obs.Json.t list
(** [read], but a missing file yields [[]] — a worker killed between
    fork and first write leaves nothing, which is a valid journal. *)

(** {1 Shard records}

    Record shapes used by the sharded campaign engine ({!Hb_shard}):
    kept here so the on-disk journal format has a single home. *)

val shard_header_json :
  campaign:Hb_obs.Json.t -> shard:int -> jobs:int -> Hb_obs.Json.t
(** First record of a shard journal: wraps the campaign header with the
    (shard, jobs) coordinates of the slice this file covers. *)

val heartbeat_json :
  pid:int -> seq:int -> completed:int -> next:int option -> Hb_obs.Json.t
(** Worker liveness beacon ([append_nosync]'d before each run). *)

val record_type : Hb_obs.Json.t -> string option
(** The record's ["type"] field, when present and a string. *)

val is_heartbeat : Hb_obs.Json.t -> bool
