(** The HardBound processor model.

    An in-order core (at most one micro-operation per cycle, Section 5.1)
    extended with:
    - a base/bound shadow register file alongside the integer registers,
    - implicit bounds checks on every load/store (Figure 3),
    - hardware metadata propagation through pointer-manipulating ALU ops,
    - tag-space and shadow-space metadata accesses routed through the
      cache hierarchy of Figure 4,
    - opportunistic pointer compression per {!Hardbound.Encoding}. *)

open Hb_isa.Types
module Layout = Hb_mem.Layout
module Physmem = Hb_mem.Physmem
module Hierarchy = Hb_cache.Hierarchy
module Meta = Hardbound.Meta
module Encoding = Hardbound.Encoding
module Checker = Hardbound.Checker
module Propagate = Hardbound.Propagate
module Trace = Hb_obs.Trace
module Profile = Hb_obs.Profile
module Attr = Hb_obs.Attr
module Timeline = Hb_obs.Timeline
module Flame = Hb_obs.Flame

type config = {
  scheme : Encoding.scheme;
  mode : Checker.mode;
  checked_deref_uop : bool;
      (** Section 5.4 sensitivity: charge one extra micro-op per bounds
          check of an uncompressed pointer (modest implementation that
          shares ALUs instead of using the dedicated narrow adder). *)
  temporal : bool;  (** Section 6.2 extension. *)
  tripwire : bool;
      (** Section 2.1 red-zone baseline: fault on heap *writes* to words
          not marked allocated (Yong&Horwitz-style write checking with
          MemTracker-style hardware state).  Uses the allocator's red
          zones; contiguous overflows trip, large-stride ones jump over. *)
  max_instrs : int;
}

let default_config =
  {
    scheme = Encoding.Extern4;
    mode = Checker.Full;
    checked_deref_uop = false;
    temporal = false;
    tripwire = false;
    max_instrs = 400_000_000;
  }

let baseline_config =
  { default_config with mode = Checker.Off; scheme = Encoding.Uncompressed }

exception Machine_fault of string

exception Software_abort_exn of int
(** Raised by the [abort] syscall, which the software-only protection
    schemes (Softfat, Objtable) use to signal a failed explicit check. *)

type status =
  | Exited of int
  | Bounds_violation of Checker.violation
  | Non_pointer_violation of Checker.violation
  | Software_abort of int  (** software-only schemes' check failure *)
  | Temporal_violation of Temporal.fault
  | Fault of string        (** machine-level fault, e.g. null dereference *)
  | Out_of_fuel

(** One-shot override applied to the next load/store the machine issues,
    armed by a trap supervisor ({!Hb_recover.Recover}) after it catches a
    bounds trap with the pc still at the faulting instruction:

    - [Skip_check]: re-issue the access without the bounds check (the
      "report" recovery policy's unchecked retire);
    - [Squash_access]: annul the access — loads write 0 (non-pointer)
      into the destination, stores are dropped (the "null-guard" policy).

    Consumed by the first access that sees it; the default [No_override]
    costs one immediate comparison per load/store. *)
type override = No_override | Skip_check | Squash_access

let status_name = function
  | Exited n -> Printf.sprintf "exited(%d)" n
  | Bounds_violation v -> "bounds-violation: " ^ Checker.describe_violation v
  | Non_pointer_violation v ->
    "non-pointer-dereference: " ^ Checker.describe_violation v
  | Software_abort n -> Printf.sprintf "software-abort(%d)" n
  | Temporal_violation f ->
    Printf.sprintf "temporal-violation: %s at 0x%x" (Temporal.kind_name f.kind)
      f.addr
  | Fault s -> "machine-fault: " ^ s
  | Out_of_fuel -> "out-of-fuel"

type t = {
  cfg : config;
  image : Hb_isa.Program.image;
  mem : Physmem.t;
  hier : Hierarchy.t;
  regs : int array;
  rbase : int array;
  rbound : int array;
  aux_bits : (int, int) Hashtbl.t;
      (* Intern11 side store modelling stolen upper word bits. *)
  temporal : Temporal.t;
  stats : Stats.t;
  out : Buffer.t;
  mutable pc : int;
  mutable brk : int;
  mutable halted : status option;
  mutable override : override;
  (* Observability hooks: all default to off and cost a single [None] /
     [Off] check on their hot paths until attached. *)
  mutable tracer : Trace.t option;
  mutable profile : prof option;
  mutable attr : Attr.t option;
  mutable timeline : Timeline.t option;
  mutable flame : flame option;
}

(** Per-function profile plus the pc → function-id map driving it. *)
and prof = { prof : Profile.t; fn_ids : int array }

(** Calling-context tree plus the pc → function-id map its shadow call
    stack pushes with. *)
and flame = { cct : Flame.t; flame_ids : int array }

let fault m msg = raise (Machine_fault (Printf.sprintf "%s (pc=%d, fn=%s)" msg m.pc
  (if m.pc >= 0 && m.pc < Array.length m.image.fn_of_index then
     m.image.fn_of_index.(m.pc)
   else "?")))

(** Create a machine for a linked image.  [globals] is the initial byte
    image of the globals region.  In full-safety mode the stack and global
    pointers start life as bounded pointers covering their whole regions —
    the paper's compiler then *narrows* bounds for address-taken objects. *)
let create ?(config = default_config) ~globals (image : Hb_isa.Program.image) =
  let mem = Physmem.create () in
  (* Pages are zero-filled on demand: skip zero bytes so that large
     zero-initialized globals (e.g. the object-table node pool) do not
     touch pages the program never uses. *)
  String.iteri
    (fun i c ->
      if c <> '\000' then
        Physmem.write_u8 mem (Layout.globals_base + i) (Char.code c))
    globals;
  let tag_bits = Encoding.tag_bits config.scheme in
  let hier = Hierarchy.create (Hierarchy.default_params ~tag_bits) in
  let m =
    {
      cfg = config;
      image;
      mem;
      hier;
      regs = Array.make num_regs 0;
      rbase = Array.make num_regs 0;
      rbound = Array.make num_regs 0;
      aux_bits = Hashtbl.create 256;
      temporal = Temporal.create ();
      stats = Stats.create ();
      out = Buffer.create 256;
      pc = image.entry;
      brk = Layout.heap_base;
      halted = None;
      override = No_override;
      tracer = None;
      profile = None;
      attr = None;
      timeline = None;
      flame = None;
    }
  in
  m.regs.(sp) <- Layout.stack_top;
  m.regs.(fp) <- Layout.stack_top;
  m.regs.(gp) <- Layout.globals_base;
  (if config.mode = Checker.Full then begin
     m.rbase.(sp) <- Layout.stack_base;
     m.rbound.(sp) <- Layout.stack_top;
     m.rbase.(fp) <- Layout.stack_base;
     m.rbound.(fp) <- Layout.stack_top;
     m.rbase.(gp) <- Layout.globals_base;
     m.rbound.(gp) <- Layout.globals_base + String.length globals
   end);
  m

let reg_meta m r : Meta.t = { base = m.rbase.(r); bound = m.rbound.(r) }

let set_reg m r v (md : Meta.t) =
  if r <> zero then begin
    m.regs.(r) <- v;
    m.rbase.(r) <- md.base;
    m.rbound.(r) <- md.bound
  end

let hb_on m = m.cfg.mode <> Checker.Off

(* ---- Observability -------------------------------------------------- *)

let fn_at m pc =
  if pc >= 0 && pc < Array.length m.image.fn_of_index then
    m.image.fn_of_index.(pc)
  else "?"

(** Raw debug-map unit line of a code index (0 = unknown) — trap records
    resolve it to a user line with the runtime-prelude offset, exactly as
    {!enable_attr} does. *)
let line_at m pc =
  if pc >= 0 && pc < Array.length m.image.line_of_index then
    m.image.line_of_index.(pc)
  else 0

let attach_tracer m tr = m.tracer <- Some tr

(** Intern the image's function names to dense ids and start profiling.
    Idempotent; all counts restart from zero. *)
let enable_profile m =
  let ids = Hashtbl.create 64 in
  let names = ref [] in
  let intern name =
    match Hashtbl.find_opt ids name with
    | Some i -> i
    | None ->
      let i = Hashtbl.length ids in
      Hashtbl.replace ids name i;
      names := name :: !names;
      i
  in
  let fn_ids = Array.map intern m.image.fn_of_index in
  let names = Array.of_list (List.rev !names) in
  m.profile <- Some { prof = Profile.create ~names; fn_ids }

let profile m = Option.map (fun p -> p.prof) m.profile

(** Start per-PC cost attribution, one accumulator slot per linked code
    index.  [line_base] is the 1-based unit line where user source starts
    (the runtime prelude's line count plus one, see
    {!Hb_runtime.Build.runtime_lines}); raw debug-map lines at or below it
    are runtime-prelude lines and are stored negated so reports render
    them [fn:rt.N] while user lines match the user's own source.
    Idempotent; all counts restart from zero. *)
let enable_attr ?(line_base = 0) m =
  let lines =
    Array.map
      (fun raw ->
        if raw = 0 then 0
        else if raw > line_base then raw - line_base
        else -raw)
      m.image.line_of_index
  in
  m.attr <- Some (Attr.create ~fns:m.image.fn_of_index ~lines)

let attr m = m.attr

(** Start the calling-context profiler: intern the image's function names
    to dense ids (the {!enable_profile} interner) and root the tree at the
    current function.  The machine then maintains the shadow call stack at
    its call/return sites and charges every retired instruction's
    attributable deltas to the context on top.  [max_depth] bounds the
    stack (deeper recursion clamps and counts truncations).  Idempotent;
    the recording restarts from zero. *)
let enable_flame ?max_depth m =
  let ids = Hashtbl.create 64 in
  let names = ref [] in
  let intern name =
    match Hashtbl.find_opt ids name with
    | Some i -> i
    | None ->
      let i = Hashtbl.length ids in
      Hashtbl.replace ids name i;
      names := name :: !names;
      i
  in
  let flame_ids = Array.map intern m.image.fn_of_index in
  let names = Array.of_list (List.rev !names) in
  m.flame <-
    Some { cct = Flame.create ?max_depth ~names ~root:(fn_at m m.pc) (); flame_ids }

let flame m = Option.map (fun f -> f.cct) m.flame

(** Resolve the flame heat counters into rows: region names from the
    static {!Layout} map, residency via [Physmem.peek_u8] (absent pages
    read as zero and are never allocated, so the walk perturbs nothing). *)
let heat_rows m =
  match m.flame with
  | None -> []
  | Some f ->
    List.map
      (fun (page, accesses, checks) ->
        let addr = page * Layout.page_size in
        let resident = ref 0 in
        for i = 0 to Layout.page_size - 1 do
          if Physmem.peek_u8 m.mem (addr + i) <> 0 then incr resident
        done;
        {
          Flame.h_page = page;
          h_addr = addr;
          h_region = Layout.region_name (Layout.region_of addr);
          h_accesses = accesses;
          h_checks = checks;
          h_resident = !resident;
        })
      (Flame.heat_pages f.cct)

(* Point-in-time census of memory-resident bounded pointers, computed by
   scanning the materialized tag-space pages: each non-zero tag is decoded
   (with its word / side bits where the scheme needs them) and classified
   into the encoding distribution; distinct (base, bound) pairs are the
   live bounded objects.  Uses [Physmem.peek_*] exclusively — absent pages
   read as zero and are never allocated — so taking a census perturbs
   neither the Figure-6 touched-page counts nor the timing model. *)
let census m : Timeline.census =
  let scheme = m.cfg.scheme in
  let bits = Encoding.tag_bits scheme in
  let tag_mask = (1 lsl bits) - 1 in
  let words_per_byte = 8 / bits in
  let objects = Hashtbl.create 64 in
  let live = ref 0
  and ext4 = ref 0
  and int4 = ref 0
  and int11 = ref 0
  and full = ref 0
  and tag_bytes = ref 0 in
  Physmem.fold_pages m.mem ~init:() ~f:(fun () idx page ->
      let page_base = idx * Layout.page_size in
      if Layout.region_of page_base = Layout.Tag_space then
        Bytes.iteri
          (fun i c ->
            let byte = Char.code c in
            if byte <> 0 then begin
              incr tag_bytes;
              let first_widx =
                (page_base + i - Layout.tag_base) * words_per_byte
              in
              for slot = 0 to words_per_byte - 1 do
                let tag = (byte lsr (slot * bits)) land tag_mask in
                if tag <> 0 then begin
                  let word_addr = (first_widx + slot) * Layout.word in
                  let word = Physmem.peek_u32 m.mem word_addr in
                  let aux =
                    match Hashtbl.find_opt m.aux_bits word_addr with
                    | Some a -> a
                    | None -> 0
                  in
                  match Encoding.decode scheme ~word ~tag ~aux with
                  | Encoding.Dec_non_pointer _ -> ()
                  | Encoding.Dec_inline (_, md) ->
                    incr live;
                    (match scheme with
                     | Encoding.Extern4 -> incr ext4
                     | Encoding.Intern4 -> incr int4
                     | Encoding.Intern11 -> incr int11
                     | Encoding.Uncompressed -> ());
                    Hashtbl.replace objects (md.Meta.base, md.Meta.bound) ()
                  | Encoding.Dec_shadow _ ->
                    incr live;
                    incr full;
                    let sa = Layout.shadow_addr word_addr in
                    Hashtbl.replace objects
                      ( Physmem.peek_u32 m.mem sa,
                        Physmem.peek_u32 m.mem (sa + 4) )
                      ()
                end
              done
            end)
          page);
  {
    Timeline.live_ptrs = !live;
    live_objects = Hashtbl.length objects;
    tag_bytes = !tag_bytes;
    shadow_bytes = 8 * !full;
    tag_pages = Physmem.pages_touched_in m.mem Layout.Tag_space;
    shadow_pages = Physmem.pages_touched_in m.mem Layout.Shadow_space;
    enc_ext4 = !ext4;
    enc_int4 = !int4;
    enc_int11 = !int11;
    enc_full = !full;
  }

(** The cumulative counter set the timeline samples: every [Stats] field
    plus the hierarchy's miss counters — also the [expect] side of
    [Timeline.check]. *)
let timeline_fields m = Stats.fields m.stats @ Hierarchy.fields m.hier

(** Attach a cycle-windowed timeline sampling every [interval] cycles.
    Raises {!Hb_error.Hb_error} when [interval <= 0].  Idempotent; the
    recording restarts from zero. *)
let enable_timeline ?(interval = 10_000) m =
  m.timeline <- Some (Timeline.create ~interval)

let timeline m = m.timeline

(* Cold path of the per-step boundary check in [step]. *)
let[@inline never] timeline_sample m (tl : Timeline.t) =
  Timeline.record tl ~cycle:(Stats.cycles m.stats)
    ~fields:(timeline_fields m) ~census:(census m)

(** Close the final partial window (call after the run, before reading
    windows or checking the accounting identity). *)
let timeline_flush m =
  match m.timeline with
  | None -> ()
  | Some tl ->
    Timeline.flush tl ~cycle:(Stats.cycles m.stats)
      ~fields:(timeline_fields m) ~census:(census m)

let emit m kind =
  match m.tracer with
  | None -> ()
  | Some tr ->
    Trace.emit tr ~cycle:(Stats.cycles m.stats) ~pc:m.pc ~fn:(fn_at m m.pc)
      kind

(** Everything the machine knows, exported into one fresh registry:
    execution statistics, the cache hierarchy, the checker tally (a
    process-wide accumulator — see {!Hardbound.Checker.tally}) and, if
    profiling, the per-function profile. *)
let metrics m =
  let reg = Hb_obs.Metrics.create () in
  Stats.export m.stats reg;
  Hierarchy.export m.hier reg;
  Checker.export_tally reg;
  (* metadata-footprint gauges: the census is peek-based (side-effect
     free), so the exposition covers it whether or not a timeline ran *)
  Timeline.export_census (census m) reg;
  (match m.profile with
   | Some p -> Profile.export p.prof reg
   | None -> ());
  (match m.flame with
   | Some f -> Flame.export f.cct reg
   | None -> ());
  reg

(* ---- ALU ---------------------------------------------------------- *)

let alu_eval m op a b =
  let sa = to_signed a and sb = to_signed b in
  match op with
  | Add -> mask32 (a + b)
  | Sub -> mask32 (a - b)
  | Mul -> mask32 (sa * sb)
  | Div -> if b = 0 then fault m "division by zero" else mask32 (sa / sb)
  | Rem -> if b = 0 then fault m "remainder by zero" else mask32 (sa mod sb)
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> mask32 (a lsl (b land 31))
  | Shr -> a lsr (b land 31)
  | Sar -> mask32 (sa asr (b land 31))
  | Slt -> if sa < sb then 1 else 0
  | Sle -> if sa <= sb then 1 else 0
  | Seq -> if a = b then 1 else 0
  | Sne -> if a <> b then 1 else 0
  | Sgt -> if sa > sb then 1 else 0
  | Sge -> if sa >= sb then 1 else 0
  | Sltu -> if a < b then 1 else 0

let falu_eval op a b =
  let fa = float_of_bits a and fb = float_of_bits b in
  match op with
  | Fadd -> bits_of_float (fa +. fb)
  | Fsub -> bits_of_float (fa -. fb)
  | Fmul -> bits_of_float (fa *. fb)
  | Fdiv -> bits_of_float (fa /. fb)
  | Fslt -> if fa < fb then 1 else 0
  | Fsle -> if fa <= fb then 1 else 0
  | Feq -> if fa = fb then 1 else 0

(* ---- Memory access path ------------------------------------------- *)

let guard_ea m ea width =
  if ea < Layout.null_guard_limit then fault m
      (Printf.sprintf "null-page dereference at 0x%x" ea);
  if ea + width > 0x100000000 then fault m
      (Printf.sprintf "address wrap at 0x%x" ea)

let add_stall m n =
  if n > 0 then m.stats.stall_cycles <- m.stats.stall_cycles + n

let charge_data m n =
  add_stall m n;
  m.stats.charged_data_stalls <- m.stats.charged_data_stalls + n

let charge_tag m n =
  add_stall m n;
  m.stats.charged_tag_stalls <- m.stats.charged_tag_stalls + n

(* Tag cache accessed in parallel with L1 (Figure 4): the pipeline stalls
   for the longer of the two; only the excess of the tag access is
   attributed to metadata. *)
let charge_parallel m ~data ~tag =
  add_stall m (max data tag);
  m.stats.charged_data_stalls <- m.stats.charged_data_stalls + data;
  if tag > data then
    m.stats.charged_tag_stalls <- m.stats.charged_tag_stalls + (tag - data)

let charge_bb m n =
  add_stall m n;
  m.stats.charged_bb_stalls <- m.stats.charged_bb_stalls + n

(* Cold path of [hier_access]: expand the hierarchy's last-access miss
   mask into per-level trace events.  Kept out of line so the hot wrapper
   below stays small enough for the compiler to inline. *)
let[@inline never] trace_hier_misses m cls addr =
  let mask = m.hier.Hierarchy.last_mask in
  let p = m.hier.Hierarchy.params in
  let cls_str = Hierarchy.class_name cls in
  let miss level penalty =
    emit m (Trace.Cache_miss { cls = cls_str; level; addr; penalty })
  in
  if mask land Hierarchy.miss_tlb <> 0 then
    miss
      (match cls with Hierarchy.Tag_meta -> "TTLB" | _ -> "DTLB")
      p.Hierarchy.tlb_miss_penalty;
  if mask land Hierarchy.miss_l1 <> 0 then
    miss
      (match cls with Hierarchy.Tag_meta -> "TagC" | _ -> "L1D")
      p.Hierarchy.l1_miss_penalty;
  if mask land Hierarchy.miss_l2 <> 0 then
    miss "L2" p.Hierarchy.l2_miss_penalty

(* Cold path of [hier_access]: charge the last-access miss mask to the
   per-PC attribution slot of the instruction that issued the access
   ([m.pc] still points at it — [exec] updates the pc last). *)
let[@inline never] attr_hier_misses m (a : Attr.t) =
  let mask = m.hier.Hierarchy.last_mask in
  let pc = m.pc in
  if mask land Hierarchy.miss_tlb <> 0 then
    a.Attr.tlb_misses.(pc) <- a.Attr.tlb_misses.(pc) + 1;
  if mask land Hierarchy.miss_l1 <> 0 then
    a.Attr.l1_misses.(pc) <- a.Attr.l1_misses.(pc) + 1;
  if mask land Hierarchy.miss_l2 <> 0 then
    a.Attr.l2_misses.(pc) <- a.Attr.l2_misses.(pc) + 1

(* Cold path of [hier_access]: charge the last-access miss mask to the
   current calling context.  Safe to read the shadow stack here — call
   and return instructions never issue hierarchy accesses, so the
   context cannot be mid-transfer. *)
let[@inline never] flame_hier_misses m (f : flame) =
  let mask = m.hier.Hierarchy.last_mask in
  let n = Flame.current f.cct in
  if mask land Hierarchy.miss_tlb <> 0 then
    n.Flame.tlb_misses <- n.Flame.tlb_misses + 1;
  if mask land Hierarchy.miss_l1 <> 0 then
    n.Flame.l1_misses <- n.Flame.l1_misses + 1;
  if mask land Hierarchy.miss_l2 <> 0 then
    n.Flame.l2_misses <- n.Flame.l2_misses + 1

(* Shadow-call-stack maintenance — the flame plane's only transfer hooks,
   run behind the off-path [None] check at the [Call] / [Call_reg] / [Ret]
   sites in [exec].  Both run *after* the transfer commits (the pc already
   points at the callee / return target), so a faulting indirect call or
   return never unbalances the stack. *)
let[@inline never] flame_call m (f : flame) =
  Flame.enter f.cct f.flame_ids.(m.pc)

let[@inline never] flame_ret (f : flame) = Flame.leave f.cct

(* Route one access through the hierarchy; when a tracer is attached,
   expand any misses into per-level events using the hierarchy's
   last-access mask, and when attribution is on, charge the same mask to
   the issuing PC's miss counters.  The flame plane additionally counts
   the touched page (program and metadata traffic alike — [cls] routed
   tag/shadow addresses here too) and mirrors the miss charge onto the
   current calling context. *)
let[@inline] hier_access m cls addr =
  let stall = Hierarchy.access m.hier cls addr in
  (match m.tracer with
   | None -> ()
   | Some _ -> if stall > 0 then trace_hier_misses m cls addr);
  (match m.attr with
   | None -> ()
   | Some a -> if m.hier.Hierarchy.last_mask <> 0 then attr_hier_misses m a);
  (match m.flame with
   | None -> ()
   | Some f ->
     Flame.heat_touch f.cct (addr / Layout.page_size);
     if m.hier.Hierarchy.last_mask <> 0 then flame_hier_misses m f);
  stall

let tag_loc m word_addr =
  Layout.tag_location ~bits:(Encoding.tag_bits m.cfg.scheme) word_addr

let read_tag m word_addr =
  let addr, shift, mask = tag_loc m word_addr in
  Physmem.read_bits m.mem addr shift mask

let write_tag m word_addr v =
  let addr, shift, mask = tag_loc m word_addr in
  Physmem.write_bits m.mem addr shift mask v

(* Current encoding kind of the memory word an aligned store is about to
   overwrite — the "before" side of the enc_promotions / enc_demotions
   transition counters.  Reads only state the store itself is about to
   touch (its tag and its word), so it perturbs neither the touched-page
   counts nor the timing model; charges nothing. *)
let stored_kind m word_addr =
  let tag = read_tag m word_addr in
  if tag = 0 then Encoding.Non_pointer
  else
    let word = Physmem.read_u32 m.mem word_addr in
    let aux =
      match Hashtbl.find_opt m.aux_bits word_addr with
      | Some a -> a
      | None -> 0
    in
    match Encoding.decode m.cfg.scheme ~word ~tag ~aux with
    | Encoding.Dec_non_pointer _ -> Encoding.Non_pointer
    | Encoding.Dec_inline _ -> Encoding.Narrow
    | Encoding.Dec_shadow _ -> Encoding.Wide

(* Perform the bounds check for a memory operation through register [r]
   with effective address [ea].  Returns unit or raises.  A pending
   [Skip_check] override (armed by a trap supervisor re-issuing the
   faulting access) suppresses exactly this one check; the unchecked
   retire is not counted as a checked dereference. *)
let check_access m r ea width ~is_store =
  if m.override = Skip_check then m.override <- No_override
  else
  let meta = reg_meta m r in
  let checked =
    Checker.check m.cfg.mode meta ~pc:m.pc ~addr:ea ~value:m.regs.(r) ~width
      ~is_store
  in
  if checked then begin
    m.stats.checked_derefs <- m.stats.checked_derefs + 1;
    (match m.flame with
     | None -> ()
     | Some f -> Flame.heat_check f.cct (ea / Layout.page_size));
    (match m.tracer with
     | None -> ()
     | Some _ ->
       emit m
         (Trace.Checked_deref
            { addr = ea; width; is_store; base = meta.Meta.base;
              bound = meta.Meta.bound }));
    (* Section 5.4 knob: a modest implementation checks uncompressed
       pointers with shared ALUs (one extra micro-op).  The stack, frame
       and global pointers are exempt: their whole-region bounds are
       pinned once at startup, so even the modest design keeps dedicated
       comparators for them (every frame access uses these registers). *)
    if
      m.cfg.checked_deref_uop
      && r <> sp && r <> fp && r <> gp
      && Encoding.needs_shadow m.cfg.scheme ~value:m.regs.(r) meta
    then begin
      m.stats.check_uops <- m.stats.check_uops + 1;
      m.stats.uops <- m.stats.uops + 1
    end
  end

let raw_read m ea = function
  | W1 -> Physmem.read_u8 m.mem ea
  | W2 -> Physmem.read_u16 m.mem ea
  | W4 -> Physmem.read_u32 m.mem ea

let raw_write m ea v = function
  | W1 -> Physmem.write_u8 m.mem ea v
  | W2 -> Physmem.write_u16 m.mem ea v
  | W4 -> Physmem.write_u32 m.mem ea v

let do_load m ~dst ~basereg ~off ~width ~signed =
  m.stats.loads <- m.stats.loads + 1;
  if m.override = Squash_access then begin
    (* null-guard: the faulting load is annulled — the destination reads
       as 0 with no metadata, and no memory or cache state is touched *)
    m.override <- No_override;
    set_reg m dst 0 Meta.non_pointer
  end
  else begin
  let wbytes = bytes_of_width width in
  let ea = mask32 (m.regs.(basereg) + off) in
  check_access m basereg ea wbytes ~is_store:false;
  guard_ea m ea wbytes;
  if m.cfg.temporal then Temporal.check_load m.temporal ~addr:ea;
  if not (hb_on m) then begin
    charge_data m (hier_access m Hierarchy.Data ea);
    let v = raw_read m ea width in
    set_reg m dst (if signed then sign_extend width v else v) Meta.non_pointer
  end
  else begin
    let word_addr = ea land lnot 3 in
    let data_stall = hier_access m Hierarchy.Data ea in
    (* Tag metadata cache is accessed in parallel with the L1 (Figure 4). *)
    let tag_addr, _, _ = tag_loc m word_addr in
    let tag_stall = hier_access m Hierarchy.Tag_meta tag_addr in
    charge_parallel m ~data:data_stall ~tag:tag_stall;
    if width = W4 && ea land 3 = 0 then begin
      let tagv = read_tag m word_addr in
      let word = raw_read m ea W4 in
      let aux =
        match Hashtbl.find_opt m.aux_bits word_addr with
        | Some a -> a
        | None -> 0
      in
      match Encoding.decode m.cfg.scheme ~word ~tag:tagv ~aux with
      | Encoding.Dec_non_pointer v -> set_reg m dst v Meta.non_pointer
      | Encoding.Dec_inline (v, md) ->
        m.stats.ptr_loads <- m.stats.ptr_loads + 1;
        set_reg m dst v md
      | Encoding.Dec_shadow v ->
        m.stats.ptr_loads <- m.stats.ptr_loads + 1;
        m.stats.ptr_loads_shadow <- m.stats.ptr_loads_shadow + 1;
        (* Loading a non-compressed pointer inserts the metadata micro-op
           and a second (sequential) L1 data access for the interleaved
           base/bound double word. *)
        m.stats.metadata_uops <- m.stats.metadata_uops + 1;
        m.stats.uops <- m.stats.uops + 1;
        let sa = Layout.shadow_addr word_addr in
        (match m.tracer with
         | None -> ()
         | Some _ -> emit m (Trace.Metadata_uop { addr = sa; is_store = false }));
        charge_bb m (hier_access m Hierarchy.Base_bound sa);
        let b = Physmem.read_u32 m.mem sa in
        let bd = Physmem.read_u32 m.mem (sa + 4) in
        set_reg m dst v { base = b; bound = bd }
    end
    else begin
      let v = raw_read m ea width in
      set_reg m dst
        (if signed then sign_extend width v else v)
        Meta.non_pointer
    end
  end
  end

let do_store m ~src ~basereg ~off ~width =
  m.stats.stores <- m.stats.stores + 1;
  if m.override = Squash_access then
    (* null-guard: the faulting store is dropped entirely *)
    m.override <- No_override
  else begin
  let wbytes = bytes_of_width width in
  let ea = mask32 (m.regs.(basereg) + off) in
  check_access m basereg ea wbytes ~is_store:true;
  guard_ea m ea wbytes;
  if m.cfg.temporal then Temporal.check_store m.temporal ~addr:ea;
  if m.cfg.tripwire then begin
    (* the validity bit lives in a 1-bit-per-word structure: model its
       lookup like a tag-space access *)
    let taddr, _, _ = Layout.tag_location ~bits:1 (ea land lnot 3) in
    charge_tag m (hier_access m Hierarchy.Tag_meta taddr);
    Temporal.check_tripwire m.temporal ~addr:ea
  end;
  if not (hb_on m) then begin
    charge_data m (hier_access m Hierarchy.Data ea);
    raw_write m ea m.regs.(src) width
  end
  else begin
    let word_addr = ea land lnot 3 in
    let data_stall = hier_access m Hierarchy.Data ea in
    let tag_addr, _, _ = tag_loc m word_addr in
    let tag_stall = hier_access m Hierarchy.Tag_meta tag_addr in
    charge_parallel m ~data:data_stall ~tag:tag_stall;
    if width = W4 && ea land 3 = 0 then begin
      let meta = reg_meta m src in
      let old_kind = stored_kind m word_addr in
      match Encoding.encode m.cfg.scheme ~value:m.regs.(src) meta with
      | Encoding.Enc_non_pointer v ->
        raw_write m ea v W4;
        write_tag m word_addr 0;
        Hashtbl.remove m.aux_bits word_addr
      | Encoding.Enc_inline { word; tag; aux } ->
        m.stats.ptr_stores <- m.stats.ptr_stores + 1;
        if old_kind = Encoding.Wide then
          m.stats.enc_demotions <- m.stats.enc_demotions + 1;
        raw_write m ea word W4;
        write_tag m word_addr tag;
        if aux <> 0 then Hashtbl.replace m.aux_bits word_addr aux
        else Hashtbl.remove m.aux_bits word_addr
      | Encoding.Enc_shadow { word; tag } ->
        m.stats.ptr_stores <- m.stats.ptr_stores + 1;
        m.stats.ptr_stores_shadow <- m.stats.ptr_stores_shadow + 1;
        if old_kind = Encoding.Narrow then
          m.stats.enc_promotions <- m.stats.enc_promotions + 1;
        m.stats.metadata_uops <- m.stats.metadata_uops + 1;
        m.stats.uops <- m.stats.uops + 1;
        raw_write m ea word W4;
        write_tag m word_addr tag;
        Hashtbl.remove m.aux_bits word_addr;
        let sa = Layout.shadow_addr word_addr in
        (match m.tracer with
         | None -> ()
         | Some _ -> emit m (Trace.Metadata_uop { addr = sa; is_store = true }));
        charge_bb m (hier_access m Hierarchy.Base_bound sa);
        Physmem.write_u32 m.mem sa meta.base;
        Physmem.write_u32 m.mem (sa + 4) meta.bound
    end
    else begin
      (* A sub-word store cannot leave a valid bounded pointer in the
         containing word: materialize the decoded value (internal
         encodings keep metadata bits inside the word), then clear the
         tag. *)
      let tagv = read_tag m word_addr in
      if tagv <> 0 then begin
        let word = raw_read m word_addr W4 in
        let aux =
          match Hashtbl.find_opt m.aux_bits word_addr with
          | Some a -> a
          | None -> 0
        in
        (match Encoding.decode m.cfg.scheme ~word ~tag:tagv ~aux with
         | Encoding.Dec_inline (v, _) -> raw_write m word_addr v W4
         | Encoding.Dec_non_pointer _ | Encoding.Dec_shadow _ -> ());
        write_tag m word_addr 0;
        Hashtbl.remove m.aux_bits word_addr
      end;
      raw_write m ea m.regs.(src) width
    end
  end
  end

(* ---- Syscalls ------------------------------------------------------ *)

let do_syscall m s =
  let a0v = m.regs.(a0) in
  match s with
  | Sys_exit -> m.halted <- Some (Exited (to_signed a0v))
  | Sys_print_int -> Buffer.add_string m.out (string_of_int (to_signed a0v))
  | Sys_print_char -> Buffer.add_char m.out (Char.chr (a0v land 0xFF))
  | Sys_print_float ->
    Buffer.add_string m.out (Printf.sprintf "%.4f" (float_of_bits a0v))
  | Sys_sbrk ->
    let size = (a0v + 3) land lnot 3 in
    let old = m.brk in
    if m.brk + size > Layout.heap_limit then fault m "sbrk: out of heap";
    m.brk <- m.brk + size;
    set_reg m a0 old Meta.non_pointer
  | Sys_abort -> raise (Software_abort_exn (to_signed a0v))
  | Sys_mark_alloc ->
    if m.cfg.temporal || m.cfg.tripwire then
      Temporal.mark_alloc m.temporal ~addr:a0v ~size:m.regs.(a1)
  | Sys_mark_free ->
    if m.cfg.temporal || m.cfg.tripwire then
      Temporal.mark_free m.temporal ~addr:a0v ~size:m.regs.(a1)

(* ---- Instruction dispatch ------------------------------------------ *)

(* A pointer-propagating ALU op whose result no longer fits the scheme's
   inline encoding (e.g. [p + 4] under Extern4, where only [ptr = base]
   compresses) will force shadow traffic if it is ever stored — the
   timeline's ptr_arith_promotions counter.  Callers guard on the result
   being a pointer, so baseline modes never reach the classifier. *)
let count_arith_promotion m ~src v md =
  let scheme = m.cfg.scheme in
  if
    Encoding.classify scheme ~value:v md = Encoding.Wide
    && Encoding.classify scheme ~value:m.regs.(src) (reg_meta m src)
       = Encoding.Narrow
  then m.stats.ptr_arith_promotions <- m.stats.ptr_arith_promotions + 1

let count_setbound_compressible m v md =
  if Encoding.classify m.cfg.scheme ~value:v md = Encoding.Narrow then
    m.stats.setbound_compressible <- m.stats.setbound_compressible + 1

let exec m i next =
  (match i with
   | Alu (op, rd, rs, Imm imm) ->
     let v = alu_eval m op m.regs.(rs) (mask32 imm) in
     let md = Propagate.binop_imm op (reg_meta m rs) in
     if Meta.is_pointer md then count_arith_promotion m ~src:rs v md;
     set_reg m rd v md;
     m.pc <- next
   | Alu (op, rd, rs, Reg rs2) ->
     let v = alu_eval m op m.regs.(rs) m.regs.(rs2) in
     let md = Propagate.binop op (reg_meta m rs) (reg_meta m rs2) in
     (if Meta.is_pointer md then
        let src = if Meta.is_pointer (reg_meta m rs) then rs else rs2 in
        count_arith_promotion m ~src v md);
     set_reg m rd v md;
     m.pc <- next
   | Falu (op, rd, r1, r2) ->
     set_reg m rd (falu_eval op m.regs.(r1) m.regs.(r2)) Meta.non_pointer;
     m.pc <- next
   | Fneg (rd, rs) ->
     set_reg m rd (bits_of_float (-.float_of_bits m.regs.(rs)))
       Meta.non_pointer;
     m.pc <- next
   | Fsqrt (rd, rs) ->
     set_reg m rd (bits_of_float (sqrt (float_of_bits m.regs.(rs))))
       Meta.non_pointer;
     m.pc <- next
   | Cvt_f_of_i (rd, rs) ->
     set_reg m rd (bits_of_float (float_of_int (to_signed m.regs.(rs))))
       Meta.non_pointer;
     m.pc <- next
   | Cvt_i_of_f (rd, rs) ->
     let f = float_of_bits m.regs.(rs) in
     let t = if Float.is_nan f then 0 else int_of_float f in
     set_reg m rd (mask32 t) Meta.non_pointer;
     m.pc <- next
   | Li (rd, v) ->
     set_reg m rd (mask32 v) Meta.non_pointer;
     m.pc <- next
   | Mov (rd, rs) ->
     set_reg m rd m.regs.(rs) (reg_meta m rs);
     m.pc <- next
   | Load { dst; base; off; width; signed } ->
     do_load m ~dst ~basereg:base ~off ~width ~signed;
     m.pc <- next
   | Store { src; base; off; width } ->
     do_store m ~src ~basereg:base ~off ~width;
     m.pc <- next
   | Setbound { dst; src; size } ->
     m.stats.setbound_instrs <- m.stats.setbound_instrs + 1;
     let sz =
       match size with Reg r -> m.regs.(r) | Imm v -> mask32 v
     in
     let v = m.regs.(src) in
     let md = Propagate.setbound ~value:v ~size:sz in
     count_setbound_compressible m v md;
     set_reg m dst v md;
     (match m.tracer with
      | None -> ()
      | Some _ ->
        emit m
          (Trace.Setbound
             { base = md.Meta.base; bound = md.Meta.bound; unsafe = false }));
     m.pc <- next
   | Setbound_narrow { dst; src; size } ->
     m.stats.setbound_instrs <- m.stats.setbound_instrs + 1;
     let sz = match size with Reg r -> m.regs.(r) | Imm v -> mask32 v in
     let v = m.regs.(src) in
     let m0 = reg_meta m src in
     let md =
       if Meta.is_pointer m0 then
         (* narrowing intersects: it can never grant access the source
            pointer lacked (catches structs cast to larger types) *)
         { Meta.base = max m0.Meta.base v; bound = min m0.Meta.bound (v + sz) }
       else Meta.make ~base:v ~size:sz
     in
     count_setbound_compressible m v md;
     set_reg m dst v md;
     (match m.tracer with
      | None -> ()
      | Some _ ->
        emit m
          (Trace.Setbound
             { base = md.Meta.base; bound = md.Meta.bound; unsafe = false }));
     m.pc <- next
   | Setbound_unsafe (rd, rs) ->
     m.stats.setbound_instrs <- m.stats.setbound_instrs + 1;
     set_reg m rd m.regs.(rs) Meta.unsafe;
     (match m.tracer with
      | None -> ()
      | Some _ ->
        emit m
          (Trace.Setbound
             { base = Meta.unsafe.Meta.base; bound = Meta.unsafe.Meta.bound;
               unsafe = true }));
     m.pc <- next
   | Readbase (rd, rs) ->
     set_reg m rd m.rbase.(rs) Meta.non_pointer;
     m.pc <- next
   | Readbound (rd, rs) ->
     set_reg m rd m.rbound.(rs) Meta.non_pointer;
     m.pc <- next
   | Licode (rd, _) ->
     let entry = m.image.target.(m.pc) in
     set_reg m rd (Hb_isa.Program.addr_of_index entry) Meta.code_pointer;
     m.pc <- next
   | Branch (c, r1, r2, _) ->
     let a = to_signed m.regs.(r1) and b = to_signed m.regs.(r2) in
     let taken =
       match c with
       | Eq -> a = b | Ne -> a <> b | Lt -> a < b
       | Ge -> a >= b | Le -> a <= b | Gt -> a > b
     in
     m.pc <- (if taken then m.image.target.(m.pc) else next)
   | Jmp _ -> m.pc <- m.image.target.(m.pc)
   | Call _ ->
     set_reg m ra
       (Hb_isa.Program.addr_of_index next)
       Meta.non_pointer;
     m.pc <- m.image.target.(m.pc);
     (match m.flame with None -> () | Some f -> flame_call m f)
   | Call_reg r ->
     (* Section 6.1: code pointers carry base = bound = MAXINT; in full
        mode forged (non-pointer) function pointers are rejected. *)
     (if m.cfg.mode = Checker.Full
         && not (Meta.equal (reg_meta m r) Meta.code_pointer) then
        raise
          (Checker.Non_pointer_deref
             { pc = m.pc; addr = m.regs.(r); value = m.regs.(r); width = 4;
               meta = reg_meta m r; is_store = false }));
     (match Hb_isa.Program.index_of_addr m.regs.(r) with
      | Some idx when idx < Array.length m.image.code ->
        set_reg m ra
          (Hb_isa.Program.addr_of_index next)
          Meta.non_pointer;
        m.pc <- idx;
        (match m.flame with None -> () | Some f -> flame_call m f)
      | _ -> fault m (Printf.sprintf "indirect call to 0x%x" m.regs.(r)))
   | Ret ->
     (match Hb_isa.Program.index_of_addr m.regs.(ra) with
      | Some idx when idx <= Array.length m.image.code ->
        m.pc <- idx;
        (match m.flame with None -> () | Some f -> flame_ret f)
      | _ -> fault m (Printf.sprintf "return to 0x%x" m.regs.(ra)))
   | Syscall s ->
     do_syscall m s;
     m.pc <- next
   | Label _ -> fault m "unresolved label in code"
   | Line _ -> fault m "unstripped line marker in code"
   | Nop -> m.pc <- next)

let step m =
  if m.pc < 0 || m.pc >= Array.length m.image.code then
    fault m "pc out of code range";
  let i = m.image.code.(m.pc) in
  let next = m.pc + 1 in
  (match m.tracer with
   | Some tr when Trace.trace_retires tr ->
     emit m (Trace.Retire { instr = Hb_isa.Printer.instr_str i })
   | _ -> ());
  (match m.profile, m.attr, m.flame with
  | None, None, None ->
    m.stats.instructions <- m.stats.instructions + 1;
    m.stats.uops <- m.stats.uops + 1;
    exec m i next
  | prof, at, fl ->
    (* Snapshot the attributable counters, execute, charge the deltas to
       the function (profile), the PC (attribution) and/or the calling
       context (flame) the instruction belongs to.  The flame context is
       captured *before* [exec]: a call or return instruction's own cost
       belongs to the frame that issued it, not the one it transfers
       into. *)
    let pc0 = m.pc in
    let fnode =
      match fl with None -> None | Some f -> Some (Flame.current f.cct)
    in
    let s = m.stats in
    let uops0 = s.Stats.uops
    and data0 = s.Stats.charged_data_stalls
    and tag0 = s.Stats.charged_tag_stalls
    and bb0 = s.Stats.charged_bb_stalls
    and chk0 = s.Stats.check_uops
    and meta0 = s.Stats.metadata_uops
    and deref0 = s.Stats.checked_derefs
    and sb0 = s.Stats.setbound_instrs in
    s.Stats.instructions <- s.Stats.instructions + 1;
    s.Stats.uops <- s.Stats.uops + 1;
    (* [finally]: a faulting instruction's uops and stalls must still be
       attributed, or the totals drift from [Stats.cycles]. *)
    Fun.protect
      ~finally:(fun () ->
        let duops = s.Stats.uops - uops0
        and ddata = s.Stats.charged_data_stalls - data0
        and dtag = s.Stats.charged_tag_stalls - tag0
        and dbb = s.Stats.charged_bb_stalls - bb0
        and dchk = s.Stats.check_uops - chk0
        and dmeta = s.Stats.metadata_uops - meta0
        and dderef = s.Stats.checked_derefs - deref0
        and dsb = s.Stats.setbound_instrs - sb0 in
        (match prof with
         | None -> ()
         | Some { prof = p; fn_ids } ->
           let fid = fn_ids.(pc0) in
           let open Profile in
           let add (a : int array) d = if d <> 0 then a.(fid) <- a.(fid) + d in
           p.instrs.(fid) <- p.instrs.(fid) + 1;
           add p.uops duops;
           add p.data_stalls ddata;
           add p.tag_stalls dtag;
           add p.bb_stalls dbb;
           add p.check_uops dchk;
           add p.metadata_uops dmeta;
           add p.checked_derefs dderef;
           add p.setbounds dsb);
        (match at with
         | None -> ()
         | Some a ->
           let open Attr in
           let add (arr : int array) d =
             if d <> 0 then arr.(pc0) <- arr.(pc0) + d
           in
           a.instrs.(pc0) <- a.instrs.(pc0) + 1;
           add a.uops duops;
           add a.data_stalls ddata;
           add a.tag_stalls dtag;
           add a.bb_stalls dbb;
           add a.check_uops dchk;
           add a.metadata_uops dmeta;
           add a.checked_derefs dderef;
           add a.setbounds dsb);
        (match fnode with
         | None -> ()
         | Some n ->
           let open Flame in
           n.instrs <- n.instrs + 1;
           n.uops <- n.uops + duops;
           if ddata <> 0 then n.data_stalls <- n.data_stalls + ddata;
           if dtag <> 0 then n.tag_stalls <- n.tag_stalls + dtag;
           if dbb <> 0 then n.bb_stalls <- n.bb_stalls + dbb;
           if dchk <> 0 then n.check_uops <- n.check_uops + dchk;
           if dmeta <> 0 then n.metadata_uops <- n.metadata_uops + dmeta;
           if dderef <> 0 then n.checked_derefs <- n.checked_derefs + dderef;
           if dsb <> 0 then n.setbounds <- n.setbounds + dsb))
      (fun () -> exec m i next));
  (* Timeline boundary: one [None] check on the fast path; the sample
     itself (counter snapshot + shadow census) lives in the never-inlined
     cold path. *)
  match m.timeline with
  | None -> ()
  | Some tl ->
    if Stats.cycles m.stats >= tl.Timeline.next_boundary then
      timeline_sample m tl

(** One line of execution trace: pc, enclosing function, instruction, and
    the accumulator registers with their metadata (debugging aid for the
    [hardbound_run --trace] CLI). *)
let describe_state m =
  if m.pc < 0 || m.pc >= Array.length m.image.code then
    Printf.sprintf "%8d <pc out of range>" m.pc
  else
    let i = m.image.code.(m.pc) in
    let reg r =
      let md = reg_meta m r in
      if Meta.is_pointer md then
        Printf.sprintf "%s=0x%x%s" (reg_name r) m.regs.(r) (Meta.to_string md)
      else Printf.sprintf "%s=%d" (reg_name r) (to_signed m.regs.(r))
    in
    Printf.sprintf "%8d %-12s %-32s %s %s" m.pc
      m.image.fn_of_index.(m.pc)
      (Hb_isa.Printer.instr_str i)
      (reg t0) (reg t1)

(* Record a violation in the trace (so the report's "last events" window
   ends with the fault itself). *)
let emit_violation m what (v : Checker.violation) =
  match m.tracer with
  | None -> ()
  | Some _ ->
    emit m
      (Trace.Violation
         { what; addr = v.Checker.addr; base = v.Checker.meta.Meta.base;
           bound = v.Checker.meta.Meta.bound })

(** Run at most [n] instructions, reporting each to [out] before executing
    it.  Returns the status if the program finished within the budget. *)
let run_traced m ~n ~(out : string -> unit) : status option =
  let rec loop k =
    match m.halted with
    | Some st -> Some st
    | None ->
      if k = 0 then None
      else begin
        out (describe_state m);
        step m;
        loop (k - 1)
      end
  in
  try loop n with
  | Checker.Bounds_violation v ->
    emit_violation m "bounds" v;
    m.halted <- Some (Bounds_violation v);
    m.halted
  | Checker.Non_pointer_deref v ->
    emit_violation m "non-pointer" v;
    m.halted <- Some (Non_pointer_violation v);
    m.halted
  | Temporal.Temporal_violation f ->
    m.halted <- Some (Temporal_violation f);
    m.halted
  | Software_abort_exn code ->
    m.halted <- Some (Software_abort code);
    m.halted
  | Machine_fault s ->
    m.halted <- Some (Fault s);
    m.halted
  | Hb_error.Hb_error (ctx, msg) ->
    m.halted <- Some (Fault (Hb_error.to_string (ctx, msg)));
    m.halted

(** Run to completion.  Exceptions raised by checks become statuses. *)
let run m =
  let rec loop () =
    match m.halted with
    | Some st -> st
    | None ->
      if m.stats.instructions >= m.cfg.max_instrs then Out_of_fuel
      else begin
        step m;
        loop ()
      end
  in
  let st =
    try loop () with
    | Checker.Bounds_violation v ->
      emit_violation m "bounds" v;
      Bounds_violation v
    | Checker.Non_pointer_deref v ->
      emit_violation m "non-pointer" v;
      Non_pointer_violation v
    | Software_abort_exn n -> Software_abort n
    | Temporal.Temporal_violation f -> Temporal_violation f
    | Machine_fault s -> Fault s
    | Hb_error.Hb_error (ctx, msg) -> Fault (Hb_error.to_string (ctx, msg))
  in
  m.halted <- Some st;
  st

(** Enriched violation report: what a trap handler sees — the faulting
    pointer's [{value; base; bound}], the enclosing function, and (when a
    tracer is attached) the retained window of trace events leading up to
    the fault.  [None] unless the machine halted on a violation. *)
let violation_report m =
  let mk what (v : Checker.violation) =
    let b = Buffer.create 256 in
    Printf.bprintf b "%s violation in %s (pc=%d)\n" what (fn_at m v.Checker.pc)
      v.Checker.pc;
    Printf.bprintf b "  %s of %d byte(s) at 0x%x\n"
      (if v.Checker.is_store then "store" else "load")
      v.Checker.width v.Checker.addr;
    Printf.bprintf b "  pointer { value = 0x%x; base = 0x%x; bound = 0x%x }\n"
      v.Checker.value v.Checker.meta.Meta.base v.Checker.meta.Meta.bound;
    (match m.tracer with
     | None -> ()
     | Some tr ->
       (match Trace.recent tr with
        | [] -> ()
        | events ->
          Printf.bprintf b "  last %d trace events:\n" (List.length events);
          List.iter
            (fun e -> Printf.bprintf b "    %s\n" (Trace.pretty e))
            events));
    Buffer.contents b
  in
  match m.halted with
  | Some (Bounds_violation v) -> Some (mk "bounds" v)
  | Some (Non_pointer_violation v) -> Some (mk "non-pointer" v)
  | _ -> None

let output m = Buffer.contents m.out
