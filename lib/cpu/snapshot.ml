(** Lightweight architectural snapshot / compare for {!Machine}.

    A snapshot captures the state a program can observe: registers (with
    their base/bound metadata), pc, break, halt status, program output,
    the Intern11 side store and every materialized memory page.  It does
    NOT
    capture microarchitectural state (caches, TLBs, statistics, the
    temporal word map): restoring and re-stepping replays architectural
    results exactly, while timing counters keep accumulating.

    The fault-injection campaign runner uses {!digest} for cheap golden
    divergence checks at checkpoints, and {!capture}/{!restore} for
    replay-style tests. *)

module Physmem = Hb_mem.Physmem

type t = {
  pc : int;
  brk : int;
  halted : Machine.status option;
  regs : int array;
  rbase : int array;
  rbound : int array;
  aux : (int * int) list;         (* Intern11 side store, sorted by address *)
  pages : (int * Bytes.t) array;  (* non-zero pages, sorted by index *)
  output : string;
}

let is_zero_page (b : Bytes.t) =
  let n = Bytes.length b in
  let rec go i = i >= n || (Bytes.unsafe_get b i = '\000' && go (i + 1)) in
  go 0

(* Capture keeps EVERY materialized page, all-zero ones included: a
   restore must reproduce the capture-time touched-page set exactly, or
   the Figure-6 page counts (and the fault injector's touched-page target
   pools) would drift across a capture/restore round trip.  All-zero
   pages are instead ignored at *comparison* time ([equal]/[diff]/
   [digest]): a page materialized by reading fresh memory is
   architecturally indistinguishable from an untouched one, so two
   machines that probed different cold addresses still compare equal. *)
let capture (m : Machine.t) : t =
  {
    pc = m.Machine.pc;
    brk = m.Machine.brk;
    halted = m.Machine.halted;
    regs = Array.copy m.Machine.regs;
    rbase = Array.copy m.Machine.rbase;
    rbound = Array.copy m.Machine.rbound;
    aux =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.Machine.aux_bits []);
    pages = Physmem.export_pages m.Machine.mem;
    output = Buffer.contents m.Machine.out;
  }

let restore (m : Machine.t) (s : t) =
  m.Machine.pc <- s.pc;
  m.Machine.brk <- s.brk;
  m.Machine.halted <- s.halted;
  m.Machine.override <- Machine.No_override;
  Array.blit s.regs 0 m.Machine.regs 0 (Array.length s.regs);
  Array.blit s.rbase 0 m.Machine.rbase 0 (Array.length s.rbase);
  Array.blit s.rbound 0 m.Machine.rbound 0 (Array.length s.rbound);
  Hashtbl.reset m.Machine.aux_bits;
  List.iter (fun (k, v) -> Hashtbl.replace m.Machine.aux_bits k v) s.aux;
  Physmem.import_pages m.Machine.mem s.pages;
  Buffer.clear m.Machine.out;
  Buffer.add_string m.Machine.out s.output;
  (* The snapshot never materializes the flame plane's shadow call stack
     (it is not architectural state); the restored machine resumes in an
     unknown call context, so park the stack at the root — subsequent
     charges land there and the exclusive-sum identity stays exact. *)
  match m.Machine.flame with
  | None -> ()
  | Some f -> Hb_obs.Flame.reset_stack f.Machine.cct

let status_key = function
  | None -> "running"
  | Some st -> Machine.status_name st

let live_pages (s : t) =
  Array.of_seq
    (Seq.filter (fun (_, b) -> not (is_zero_page b)) (Array.to_seq s.pages))

let touched_pages (s : t) = Array.length s.pages

let equal (a : t) (b : t) =
  let ap = live_pages a and bp = live_pages b in
  a.pc = b.pc && a.brk = b.brk
  && status_key a.halted = status_key b.halted
  && a.regs = b.regs && a.rbase = b.rbase && a.rbound = b.rbound
  && a.aux = b.aux && a.output = b.output
  && Array.length ap = Array.length bp
  && Array.for_all2
       (fun (i, p) (j, q) -> i = j && Bytes.equal p q)
       ap bp

(** Human-readable divergence summary, one line per differing component. *)
let diff (a : t) (b : t) : string list =
  let out = ref [] in
  let note fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  if a.pc <> b.pc then note "pc: %d vs %d" a.pc b.pc;
  if a.brk <> b.brk then note "brk: 0x%x vs 0x%x" a.brk b.brk;
  if status_key a.halted <> status_key b.halted then
    note "status: %s vs %s" (status_key a.halted) (status_key b.halted);
  Array.iteri
    (fun r v ->
      if v <> b.regs.(r) then note "reg %d: 0x%x vs 0x%x" r v b.regs.(r);
      if a.rbase.(r) <> b.rbase.(r) || a.rbound.(r) <> b.rbound.(r) then
        note "reg %d meta: [0x%x,0x%x) vs [0x%x,0x%x)" r a.rbase.(r)
          a.rbound.(r) b.rbase.(r) b.rbound.(r))
    a.regs;
  if a.aux <> b.aux then note "intern11 side store differs";
  if a.output <> b.output then
    note "output: %d vs %d bytes" (String.length a.output)
      (String.length b.output);
  let ap = live_pages a and bp = live_pages b in
  let pageset p = Array.to_list (Array.map fst p) in
  if pageset ap <> pageset bp then
    note "page sets differ (%d vs %d non-zero pages)" (Array.length ap)
      (Array.length bp)
  else
    Array.iter2
      (fun (i, p) (_, q) ->
        if not (Bytes.equal p q) then note "page 0x%x contents differ" i)
      ap bp;
  List.rev !out

(* ---- Streaming digest ------------------------------------------------ *)

(* FNV-1a over the architectural state, computed without copying pages:
   cheap enough to run at campaign checkpoints. *)
let fnv_prime = 0x100000001B3L
let fnv_offset = 0xCBF29CE484222325L

let mix h byte =
  Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xFF))) fnv_prime

let mix_int h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := mix !h ((v lsr (shift * 8)) land 0xFF)
  done;
  !h

let mix_bytes h (b : Bytes.t) =
  let h = ref h in
  for i = 0 to Bytes.length b - 1 do
    h := mix !h (Char.code (Bytes.unsafe_get b i))
  done;
  !h

let mix_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

(** Digest of the machine's current architectural state.  Equal states
    hash equal; the campaign runner compares digests against the golden
    run's at checkpoints. *)
let digest (m : Machine.t) : int64 =
  let h = ref fnv_offset in
  h := mix_int !h m.Machine.pc;
  h := mix_int !h m.Machine.brk;
  h := mix_string !h (status_key m.Machine.halted);
  Array.iter (fun v -> h := mix_int !h v) m.Machine.regs;
  Array.iter (fun v -> h := mix_int !h v) m.Machine.rbase;
  Array.iter (fun v -> h := mix_int !h v) m.Machine.rbound;
  List.iter
    (fun (k, v) ->
      h := mix_int !h k;
      h := mix_int !h v)
    (List.sort compare
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.Machine.aux_bits []));
  h :=
    Physmem.fold_pages m.Machine.mem ~init:!h ~f:(fun h idx bytes ->
        if is_zero_page bytes then h else mix_bytes (mix_int h idx) bytes);
  h := mix_string !h (Buffer.contents m.Machine.out);
  !h

let hex d = Printf.sprintf "%016Lx" d
