(** Execution statistics.  The timing model follows Section 5.1 of the
    paper: in-order, at most one micro-operation per cycle;
    [cycles = uops + stall_cycles]. *)

type t = {
  mutable instructions : int;
  mutable uops : int;            (** 1/instruction + metadata/check uops *)
  mutable setbound_instrs : int;
  mutable metadata_uops : int;   (** uncompressed base/bound loads/stores *)
  mutable check_uops : int;      (** only under the Section 5.4 knob *)
  mutable loads : int;
  mutable stores : int;
  mutable checked_derefs : int;
  mutable ptr_loads : int;
  mutable ptr_loads_shadow : int;
  mutable ptr_stores : int;
  mutable ptr_stores_shadow : int;
  mutable stall_cycles : int;
  mutable charged_data_stalls : int;
      (** Charged-stall attribution: the tag cache is accessed in parallel
          with the L1 (Figure 4), so the pipeline is charged
          [max(data, tag)]; the data part lands here... *)
  mutable charged_tag_stalls : int;
      (** ...only the tag access's *excess* lands here... *)
  mutable charged_bb_stalls : int;
      (** ...and sequential base/bound accesses are fully charged here.
          The three sum exactly to [stall_cycles]. *)
  mutable enc_promotions : int;
      (** stores that widened a memory word's pointer encoding from the
          scheme's inline (narrow) form to the shadow-space (wide) form —
          bookkeeping for the timeline's transition telemetry; charges no
          cycles *)
  mutable enc_demotions : int;
      (** stores that narrowed a word's encoding back to the inline form *)
  mutable ptr_arith_promotions : int;
      (** pointer-propagating ALU ops whose result no longer fits the
          inline encoding (e.g. [p + 4] under Extern4, where only
          [ptr = base] compresses) *)
  mutable setbound_compressible : int;
      (** setbound results that fit the scheme's inline encoding
          (Section 4's common case) *)
}

val create : unit -> t

val cycles : t -> int
(** [uops + stall_cycles]. *)

val to_string : t -> string

val fields : t -> (string * int) list
(** Every field (plus derived [cycles]) as a flat association list — the
    [expect] side of [Hb_obs.Attr.check] / [Hb_obs.Profile.check]. *)

val to_json : t -> Hb_obs.Json.t
(** {!fields} as a flat JSON object. *)

val export : t -> Hb_obs.Metrics.t -> unit
(** Report every field into a metrics registry as [cpu.*] counters. *)

val check_invariants :
  ?window_sums:(string * int) list -> t -> (unit, string) result
(** The accounting identities the timing model promises:
    [charged_data + charged_tag + charged_bb = stall_cycles],
    [cycles = uops + stall_cycles], metadata/check micro-ops never
    exceed total micro-ops, and encoding transitions stay bounded by the
    stores/setbounds they ride on.  [window_sums] (the timeline's
    per-window delta sums) additionally must match {!fields} exactly on
    every shared key. *)
