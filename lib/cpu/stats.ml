(** Execution statistics.

    The timing model follows Section 5.1 of the paper: an in-order core
    executing at most one micro-operation per cycle; loads/stores of
    uncompressed bounded pointers insert an additional micro-operation for
    the base/bound access; cache/TLB misses stall the (blocking) pipeline.

    [cycles = uops + stall cycles], with stalls attributed per access class
    by {!Hb_cache.Hierarchy} so the harness can reconstruct Figure 5's
    segment decomposition. *)

type t = {
  mutable instructions : int;
  mutable uops : int;            (* 1 per instruction + metadata/check uops *)
  mutable setbound_instrs : int;
  mutable metadata_uops : int;   (* uncompressed base/bound loads/stores *)
  mutable check_uops : int;      (* only when checked_deref_uop is enabled *)
  mutable loads : int;
  mutable stores : int;
  mutable checked_derefs : int;
  mutable ptr_loads : int;       (* loads whose result is a pointer *)
  mutable ptr_loads_shadow : int;
  mutable ptr_stores : int;
  mutable ptr_stores_shadow : int;
  mutable stall_cycles : int;    (* total charged stall cycles *)
  (* Charged-stall attribution.  The tag cache is accessed in parallel
     with the L1 (Figure 4), so the pipeline is charged
     [max(data_stall, tag_stall)]: the data part is attributed to
     [charged_data_stalls] and only the *excess* of the tag access to
     [charged_tag_stalls].  Base/bound accesses are sequential and fully
     attributed.  These sum exactly to [stall_cycles]. *)
  mutable charged_data_stalls : int;
  mutable charged_tag_stalls : int;
  mutable charged_bb_stalls : int;
  (* Encoding-transition telemetry (Section 4's compression claim is a
     claim about these).  Bookkeeping only: none of them charges cycles. *)
  mutable enc_promotions : int;
      (* stores that widened a memory word's encoding (narrow -> shadow) *)
  mutable enc_demotions : int;
      (* stores that narrowed it back (shadow -> inline) *)
  mutable ptr_arith_promotions : int;
      (* ALU ops whose pointer result left the narrow encoding *)
  mutable setbound_compressible : int;
      (* setbounds whose result fits the scheme's inline encoding *)
}

let create () =
  {
    instructions = 0;
    uops = 0;
    setbound_instrs = 0;
    metadata_uops = 0;
    check_uops = 0;
    loads = 0;
    stores = 0;
    checked_derefs = 0;
    ptr_loads = 0;
    ptr_loads_shadow = 0;
    ptr_stores = 0;
    ptr_stores_shadow = 0;
    stall_cycles = 0;
    charged_data_stalls = 0;
    charged_tag_stalls = 0;
    charged_bb_stalls = 0;
    enc_promotions = 0;
    enc_demotions = 0;
    ptr_arith_promotions = 0;
    setbound_compressible = 0;
  }

let cycles s = s.uops + s.stall_cycles

let to_string s =
  Printf.sprintf
    "instrs=%d uops=%d cycles=%d setbound=%d meta_uops=%d loads=%d \
     stores=%d checked=%d ptr_loads=%d(%d shadow) ptr_stores=%d(%d shadow) \
     stalls=%d"
    s.instructions s.uops (cycles s) s.setbound_instrs s.metadata_uops
    s.loads s.stores s.checked_derefs s.ptr_loads s.ptr_loads_shadow
    s.ptr_stores s.ptr_stores_shadow s.stall_cycles

let fields s =
  [
    ("instructions", s.instructions);
    ("uops", s.uops);
    ("cycles", cycles s);
    ("setbound_instrs", s.setbound_instrs);
    ("metadata_uops", s.metadata_uops);
    ("check_uops", s.check_uops);
    ("loads", s.loads);
    ("stores", s.stores);
    ("checked_derefs", s.checked_derefs);
    ("ptr_loads", s.ptr_loads);
    ("ptr_loads_shadow", s.ptr_loads_shadow);
    ("ptr_stores", s.ptr_stores);
    ("ptr_stores_shadow", s.ptr_stores_shadow);
    ("stall_cycles", s.stall_cycles);
    ("charged_data_stalls", s.charged_data_stalls);
    ("charged_tag_stalls", s.charged_tag_stalls);
    ("charged_bb_stalls", s.charged_bb_stalls);
    ("enc_promotions", s.enc_promotions);
    ("enc_demotions", s.enc_demotions);
    ("ptr_arith_promotions", s.ptr_arith_promotions);
    ("setbound_compressible", s.setbound_compressible);
  ]

let to_json s =
  Hb_obs.Json.Obj (List.map (fun (k, v) -> (k, Hb_obs.Json.Int v)) (fields s))

(** Report every field into a metrics registry as [cpu.*] counters. *)
let export s (reg : Hb_obs.Metrics.t) =
  List.iter
    (fun (k, v) -> Hb_obs.Metrics.set_counter reg ("cpu." ^ k) v)
    (fields s)

(** The accounting identities the timing model promises (header comment
    and Section 5.1): charged-stall attribution partitions the stalls,
    cycles decompose into micro-ops plus stalls, and the transition
    telemetry stays bounded by the events it rides on.  When
    [window_sums] is given (the timeline's per-window delta sums), every
    key shared with {!fields} must match the global total exactly —
    the same accounting identity [Attr.check] enforces per PC. *)
let check_invariants ?window_sums s =
  if
    s.charged_data_stalls + s.charged_tag_stalls + s.charged_bb_stalls
    <> s.stall_cycles
  then
    Error
      (Printf.sprintf
         "stall attribution leak: data %d + tag %d + bb %d <> stalls %d"
         s.charged_data_stalls s.charged_tag_stalls s.charged_bb_stalls
         s.stall_cycles)
  else if cycles s <> s.uops + s.stall_cycles then
    Error
      (Printf.sprintf "cycle identity broken: cycles %d <> uops %d + stalls %d"
         (cycles s) s.uops s.stall_cycles)
  else if s.check_uops + s.metadata_uops > s.uops then
    Error
      (Printf.sprintf "more metadata/check uops (%d+%d) than uops (%d)"
         s.check_uops s.metadata_uops s.uops)
  else if s.enc_promotions + s.enc_demotions > s.stores then
    Error
      (Printf.sprintf
         "more encoding transitions (%d+%d) than stores (%d)"
         s.enc_promotions s.enc_demotions s.stores)
  else if s.setbound_compressible > s.setbound_instrs then
    Error
      (Printf.sprintf
         "more compressible setbounds (%d) than setbounds (%d)"
         s.setbound_compressible s.setbound_instrs)
  else
    match window_sums with
    | None -> Ok ()
    | Some sums -> (
      let expect = fields s in
      let bad =
        List.filter_map
          (fun (k, v) ->
            match List.assoc_opt k expect with
            | Some e when e <> v ->
              Some (Printf.sprintf "%s: windows %d <> global %d" k v e)
            | _ -> None)
          sums
      in
      match bad with
      | [] -> Ok ()
      | msgs -> Error ("window-sum leak: " ^ String.concat "; " msgs))
