(** Lightweight architectural snapshot / compare for {!Machine}.

    Captures program-observable state only (registers + metadata, pc, brk,
    halt status, output, Intern11 side store, non-zero memory pages) —
    not microarchitectural state (caches, TLBs, statistics, temporal
    map).  [restore] then [Machine.step] replays the same architectural
    results; timing counters keep accumulating. *)

type t

val capture : Machine.t -> t
(** Captures every materialized page, all-zero ones included, so a
    restore reproduces the capture-time touched-page counts exactly
    (Figure 6 must not drift across a capture/restore round trip). *)

val restore : Machine.t -> t -> unit
(** Overwrite the machine's architectural state with the snapshot's.
    Restoring never materializes a page the capture did not hold, and
    clears any pending trap-recovery override. *)

val touched_pages : t -> int
(** Number of materialized pages the capture holds — equals the
    machine's [Physmem.pages_touched] at capture (and after restore). *)

val equal : t -> t -> bool
(** Architectural equality.  All-zero pages are ignored, so machines that
    probed different cold addresses still compare equal. *)

val diff : t -> t -> string list
(** Human-readable divergence summary, one line per differing component;
    empty iff {!equal}. *)

val digest : Machine.t -> int64
(** Streaming FNV-1a digest of the machine's current architectural state
    (no copies) — the campaign runner's checkpoint comparison. *)

val hex : int64 -> string
(** Digest rendered as 16 hex digits. *)
