(** Compile MiniC programs against the runtime and execute them on the
    simulated HardBound machine. *)

val compile :
  mode:Hb_minic.Codegen.mode -> string -> Hb_isa.Program.image * string
(** Compile runtime + user source as one translation unit; returns the
    linked image and the globals byte image. *)

val runtime_lines : int
(** Translation-unit lines occupied by the runtime prelude: user-source
    line L sits at unit line [runtime_lines + L].  Pass as [line_base] to
    [Hb_cpu.Machine.enable_attr] so attribution reports show user line
    numbers (runtime lines render as [fn:rt.N]). *)

val default_fuel : int

val config_for :
  ?scheme:Hardbound.Encoding.scheme ->
  ?temporal:bool ->
  ?tripwire:bool ->
  ?checked_deref_uop:bool ->
  ?max_instrs:int ->
  Hb_minic.Codegen.mode ->
  Hb_cpu.Machine.config
(** Machine configuration matching a compilation mode. *)

val run :
  ?scheme:Hardbound.Encoding.scheme ->
  ?temporal:bool ->
  ?tripwire:bool ->
  ?checked_deref_uop:bool ->
  ?max_instrs:int ->
  mode:Hb_minic.Codegen.mode ->
  string ->
  Hb_cpu.Machine.status * Hb_cpu.Machine.t
(** Compile and run; the returned machine gives access to program output,
    statistics and page counts. *)
