(** Compile MiniC programs against the runtime and execute them on the
    simulated HardBound machine. *)

module Codegen = Hb_minic.Codegen
module Driver = Hb_minic.Driver
module Machine = Hb_cpu.Machine
module Encoding = Hardbound.Encoding

(** Compile runtime + user source (one translation unit). *)
let compile ~(mode : Codegen.mode) (user_source : string) =
  Driver.build ~mode (Runtime_src.source ^ "\n" ^ user_source)

(** Number of translation-unit lines occupied by the runtime prelude:
    user-source line L sits at unit line [runtime_lines + L].  Pass as
    [line_base] to [Machine.enable_attr] so attribution reports show the
    user's own line numbers. *)
let runtime_lines =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 1
    Runtime_src.source

let default_fuel = 400_000_000

let config_for ?(scheme = Encoding.Extern4) ?(temporal = false)
    ?(tripwire = false) ?(checked_deref_uop = false)
    ?(max_instrs = default_fuel) (mode : Codegen.mode) : Machine.config =
  {
    Machine.scheme;
    mode = Codegen.machine_mode mode;
    checked_deref_uop;
    temporal;
    tripwire;
    max_instrs;
  }

(** Compile and run; returns final status and the machine (for output,
    stats, page counts). *)
let run ?scheme ?temporal ?tripwire ?checked_deref_uop ?max_instrs ~mode
    user_source =
  let image, globals = compile ~mode user_source in
  let config =
    config_for ?scheme ?temporal ?tripwire ?checked_deref_uop ?max_instrs mode
  in
  let m = Machine.create ~config ~globals image in
  let status = Machine.run m in
  (status, m)
