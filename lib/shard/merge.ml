(** Deterministic reassembly of a campaign report from shard journals.

    Each worker journals its slice of the plan into its own file; this
    module reads every shard back (tolerating missing files, torn tails
    and duplicate acknowledgements from respawned workers) and rebuilds
    the exact record set the serial runner would have produced.  Every
    record is a pure function of its plan entry plus the golden
    reference, so once the union covers all indices the assembled report
    is byte-identical to the single-process one. *)

module Campaign = Hb_fault.Campaign
module Journal = Hb_recover.Journal
module Json = Hb_obs.Json

(* ---- shard terminator / error records --------------------------------- *)

let done_json ~shard ~completed : Json.t =
  Json.Obj
    [
      ("type", Json.String "shard-done");
      ("shard", Json.Int shard);
      ("completed", Json.Int completed);
    ]

let partial_json ~shard ~completed : Json.t =
  Json.Obj
    [
      ("type", Json.String "shard-partial");
      ("shard", Json.Int shard);
      ("completed", Json.Int completed);
    ]

let error_json ~shard ~msg : Json.t =
  Json.Obj
    [
      ("type", Json.String "shard-error");
      ("shard", Json.Int shard);
      ("error", Json.String msg);
    ]

(* ---- reading one shard back ------------------------------------------- *)

type closed = Open | Done | Partial | Error of string

type shard_read = {
  records : Campaign.record list;
      (* intact acknowledged runs, deduplicated first-wins *)
  beat : (int * int) option;  (* (pid, completed) of the last heartbeat *)
  closed : closed;
}

let fresh = { records = []; beat = None; closed = Open }

let jint k j = Option.bind (Json.member k j) Json.to_int

(* A worker killed between fork and its header write leaves a missing or
   empty (or torn-header-only) file: that is a valid shard holding zero
   acknowledged runs.  Anything with an intact first record must carry a
   matching shard header — resuming under different (shard, jobs)
   coordinates would splice incompatible partitions together. *)
let read_shard ~(cfg : Campaign.config) ?golden ~jobs ~shard path : shard_read =
  match Journal.read_or_empty path with
  | [] -> fresh
  | header :: rest ->
    (match Json.member "journal" header with
    | Some (Json.String "hb-campaign-shard") -> ()
    | _ ->
      Hb_error.fail ~component:"shard" "%s: not an hb-campaign shard journal"
        path);
    (match jint "version" header with
    | Some 1 -> ()
    | _ ->
      Hb_error.fail ~component:"shard" "%s: unsupported shard journal version"
        path);
    let want what k v =
      match jint k header with
      | Some n when n = v -> ()
      | _ ->
        Hb_error.fail ~component:"shard"
          "%s: shard journal %s does not match this campaign (want %d)" path
          what v
    in
    want "shard index" "shard" shard;
    want "job count" "jobs" jobs;
    let campaign =
      match Json.member "campaign" header with
      | Some c -> c
      | None ->
        Hb_error.fail ~component:"shard"
          "%s: shard header lacks the embedded campaign header" path
    in
    Campaign.check_header path campaign cfg;
    (match golden with
    | Some g -> Campaign.check_golden path campaign g
    | None -> ());
    let seen = Hashtbl.create 64 in
    let records = ref [] in
    let beat = ref None in
    let closed = ref Open in
    List.iter
      (fun j ->
        match Journal.record_type j with
        | Some "run" ->
          let r = Campaign.record_of_json path j in
          if r.Campaign.idx < 0 || r.Campaign.idx >= cfg.Campaign.runs then
            Hb_error.fail ~component:"shard"
              "%s: run record index %d outside campaign of %d runs" path
              r.Campaign.idx cfg.Campaign.runs;
          if r.Campaign.idx mod jobs <> shard then
            Hb_error.fail ~component:"shard"
              "%s: run record %d does not belong to shard %d of %d" path
              r.Campaign.idx shard jobs;
          if not (Hashtbl.mem seen r.Campaign.idx) then begin
            Hashtbl.add seen r.Campaign.idx ();
            records := r :: !records
          end
        | Some "hb" -> (
          match (jint "pid" j, jint "completed" j) with
          | Some pid, Some completed -> beat := Some (pid, completed)
          | _ -> ())
        | Some "ckpt" -> ()
        (* when a shard's slice is the whole campaign (jobs=1, or every
           other index already journaled), the serial runner's own "done"
           marker lands in the shard file; the shard terminator follows
           it, so it carries no extra information here *)
        | Some "done" -> ()
        | Some "shard-done" -> closed := Done
        | Some "shard-partial" -> closed := Partial
        | Some "shard-error" ->
          let msg =
            match Json.member "error" j with
            | Some (Json.String s) -> s
            | _ -> "unknown worker error"
          in
          closed := Error msg
        | _ ->
          Hb_error.fail ~component:"shard" "%s: unrecognized shard record" path)
      rest;
    { records = List.rev !records; beat = !beat; closed = !closed }

(* ---- assembling the campaign report ----------------------------------- *)

(* Union of every shard's acknowledged records plus [extra] (records a
   partial base journal already held), deduplicated first-wins by
   index.  Shards are disjoint by construction, so dedup only matters
   across the extra/shard boundary. *)
let gather ~(cfg : Campaign.config) ?golden ~jobs ~base ~(extra : Campaign.record list) () :
    Campaign.record list =
  let seen = Hashtbl.create 256 in
  let keep r =
    if Hashtbl.mem seen r.Campaign.idx then false
    else begin
      Hashtbl.add seen r.Campaign.idx ();
      true
    end
  in
  let shards =
    List.concat_map
      (fun shard ->
        (read_shard ~cfg ?golden ~jobs ~shard
           (Partition.shard_path ~base ~shard))
          .records)
      (List.init jobs (fun k -> k))
  in
  List.filter keep (extra @ shards)

let merged_report ~(cfg : Campaign.config) ~golden ~jobs ~base
    ~(extra : Campaign.record list) () : Campaign.report * bool =
  let records = gather ~cfg ~golden ~jobs ~base ~extra () in
  let complete = List.length records = cfg.Campaign.runs in
  let header = Campaign.header_json cfg golden in
  ( Campaign.report_of_header ~cfg ~deadline_expired:(not complete) base header
      records,
    complete )

(* A completed sharded campaign leaves its base journal indistinguishable
   from a serial run's: header, every run record in index order, done
   marker.  A later [--resume] of the base file then reconstructs with
   zero execution, sharded or not. *)
let write_merged ~(cfg : Campaign.config) ~golden ~base
    (report : Campaign.report) =
  let w = Journal.create base in
  Fun.protect
    ~finally:(fun () -> Journal.close w)
    (fun () ->
      Journal.append w (Campaign.header_json cfg golden);
      List.iter
        (fun r ->
          Journal.append w
            (Campaign.run_record_json
               ~window_interval:cfg.Campaign.window_interval r))
        report.Campaign.records;
      Journal.append w (Json.Obj [ ("type", Json.String "done") ]))
