(** Multi-process sharded campaign runner: the public face of [hb_shard].

    [run] partitions a campaign's seed-pure plan across [jobs] forked
    {!Worker} processes, supervises them ({!Supervisor}: heartbeat
    watchdog, bounded respawn, degradation, typed escalation), and
    {!Merge}s the shard journals back into a report byte-identical to
    {!Hb_fault.Campaign.run}'s for the same config.

    Journal semantics mirror the serial runner's: [~journal] writes one
    crash-resilient shard file per worker next to the base path
    ([base.shardK]) and, on completion, the merged serial-format journal
    at [base] itself; [~resume] picks all of them back up — killing any
    subset of workers (or the whole tree) at any byte still converges to
    the identical report.  A resume must use the same [jobs] (the shard
    headers pin the partition). *)

module Campaign = Hb_fault.Campaign
module Outcome = Hb_fault.Outcome
module Journal = Hb_recover.Journal
module Deadline = Hb_recover.Deadline
module Host = Hb_obs.Host
module Progress = Hb_obs.Progress
module Fleet = Hb_obs.Fleet

let remove_if_exists path = if Sys.file_exists path then Sys.remove path

let run ?journal ?resume ?(deadline = Deadline.none) ?progress
    ?(cfg = Supervisor.default) ?(fleet = Fleet.disabled) ~mk
    (ccfg : Campaign.config) : Campaign.report =
  Partition.validate ~jobs:cfg.Supervisor.jobs;
  let jobs = cfg.Supervisor.jobs in
  let cfg =
    if Fleet.active fleet then { cfg with Supervisor.fleet = true } else cfg
  in
  if journal <> None && resume <> None then
    Hb_error.fail ~component:"shard"
      "--journal and --resume are exclusive (a resumed campaign appends to \
       the journals it resumes from)";
  let base, temp =
    match (journal, resume) with
    | Some p, _ -> (p, false)
    | _, Some p -> (p, false)
    | None, None -> (Filename.temp_file "hb-shard" ".jsonl", true)
  in
  (match progress with
  | Some p -> (
    match (journal, resume) with
    | Some path, _ -> Progress.set_journal p path
    | _, Some path -> Progress.set_resume p path
    | _ -> ())
  | None -> ());
  (* a fresh --journal run must not silently resume stale shard files
     (or their telemetry sidecars) from an earlier campaign at the same
     path *)
  if resume = None then
    List.iter
      (fun shard ->
        let p = Partition.shard_path ~base ~shard in
        remove_if_exists p;
        remove_if_exists (Fleet.sidecar_path p))
      (List.init jobs (fun k -> k));
  let sidecars =
    List.init jobs (fun shard ->
        Fleet.sidecar_path (Partition.shard_path ~base ~shard))
  in
  (* the ambient fleet collector gives the supervisor's lifecycle hooks
     and the serving thread's aggregation callbacks a common home; it is
     torn down with the run so back-to-back in-process campaigns never
     see each other's events *)
  if Fleet.active fleet then Fleet.install ~sidecars;
  Fun.protect
    ~finally:(fun () -> if Fleet.active fleet then Fleet.uninstall ())
  @@ fun () ->
  (* prior records from a partial base journal (e.g. an interrupted
     serial run being resumed sharded); a complete base journal
     reconstructs with zero execution, exactly like the serial path *)
  let finished_base () =
    if resume = None then None
    else
      match Journal.read_or_empty base with
      | [] -> None
      | _ :: _ ->
        let header, prior, done_ = Campaign.load_journal base in
        Campaign.check_header base header ccfg;
        if done_ then begin
          if List.length prior <> ccfg.Campaign.runs then
            Hb_error.fail ~component:"campaign"
              "%s: journal is marked done but holds %d of %d run records"
              base (List.length prior) ccfg.Campaign.runs;
          Some (Campaign.report_of_header ~cfg:ccfg base header prior)
        end
        else None
  in
  match finished_base () with
  | Some report -> report
  | None ->
    let extra =
      if resume = None then []
      else
        match Journal.read_or_empty base with
        | [] -> []
        | _ :: _ ->
          let _, prior, _ = Campaign.load_journal base in
          prior
    in
    let golden = Campaign.prepare ~mk ccfg in
    (* everything already acknowledged anywhere (base + shard files)
       counts as prior: tallied now, never re-counted by the supervisor,
       excluded from the throughput estimate *)
    let initial =
      try Merge.gather ~cfg:ccfg ~golden ~jobs ~base ~extra ()
      with Hb_error.Hb_error _ -> extra
    in
    (match progress with
    | Some p ->
      Progress.begin_campaign p ~label:ccfg.Campaign.label
        ~total:ccfg.Campaign.runs ~prior:(List.length initial);
      List.iter
        (fun (r : Campaign.record) ->
          Progress.seed_outcome p ~outcome:(Outcome.name r.Campaign.outcome))
        initial
    | None -> ());
    Host.span "runs" (fun () ->
        Host.annotate_live "runs"
          (ccfg.Campaign.runs - List.length initial);
        Supervisor.run ~mk ~cfg:ccfg ~golden ~base ~extra:initial ~deadline
          ?progress cfg);
    let report, complete =
      Host.span "merge" (fun () ->
          Merge.merged_report ~cfg:ccfg ~golden ~jobs ~base ~extra ())
    in
    if complete then begin
      (* leave the base journal as a normal done campaign journal, so a
         later --resume (serial or sharded) reconstructs instantly *)
      if not temp then Merge.write_merged ~cfg:ccfg ~golden ~base report;
      match progress with Some p -> Progress.finish p | None -> ()
    end;
    (* the unified cross-process trace reads the sidecars back, so it
       must land before any temp cleanup; the ambient host profiler (if
       the CLI installed one) supplies the supervisor track *)
    (match fleet.Fleet.chrome with
    | Some path ->
      Fleet.write_chrome
        ?host:(Host.active ())
        ~events:(Fleet.events ()) ~sidecars path
    | None -> ());
    if temp then begin
      remove_if_exists base;
      List.iter
        (fun shard ->
          let p = Partition.shard_path ~base ~shard in
          remove_if_exists p;
          remove_if_exists (Fleet.sidecar_path p))
        (List.init jobs (fun k -> k))
    end;
    report
