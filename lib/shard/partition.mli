(** Static (index mod jobs) partitioning of a campaign plan: a pure
    function both sides of a fork evaluate identically, so a respawned
    worker re-derives its slice from (shard, jobs) alone. *)

val owner : jobs:int -> int -> int
(** The shard that owns a plan index. *)

val select : jobs:int -> shard:int -> int -> bool
(** Does [shard] own this index?  (The worker's [?select] predicate.) *)

val size : jobs:int -> shard:int -> runs:int -> int
(** How many of [runs] indices the shard owns. *)

val shard_path : base:string -> shard:int -> string
(** [base ^ ".shard" ^ k] — one journal file per worker. *)

val validate : jobs:int -> unit
(** Raises a typed error unless [1 <= jobs <= 256]. *)
