(** One shard worker: executes its slice of the campaign plan, journaling
    every acknowledged run into its own shard file.

    The worker is resumable at any byte: on (re)spawn it reads its shard
    journal back, treats the acknowledged prefix as prior records (never
    re-executing them), and picks up at the first missing index of its
    slice.  [run_inline] is also what the parent calls directly when a
    shard has exhausted its respawn budget — graceful degradation to
    fewer workers reuses the identical code path. *)

module Campaign = Hb_fault.Campaign
module Outcome = Hb_fault.Outcome
module Journal = Hb_recover.Journal
module Deadline = Hb_recover.Deadline
module Fleet = Hb_obs.Fleet

(* Exit-code protocol, read by the supervisor's [waitpid]. *)
let exit_ok = 0
let exit_partial = 4 (* wall-clock deadline expired; slice incomplete *)
let exit_error = 3 (* typed Hb_error; journaled as a shard-error record *)
let exit_crash = 5 (* anything else; respawn may help *)

let run_inline ~mk ~(cfg : Campaign.config) ~golden ~jobs ~shard ~path
    ?(fleet = false) ?(deadline = Deadline.none) () : Campaign.report =
  let prior, writer =
    match Journal.read_or_empty path with
    | [] ->
      (* fresh shard (or one killed before/inside its header write: the
         torn header was dropped, so rewrite from scratch) *)
      let w = Journal.create path in
      Journal.append w
        (Journal.shard_header_json
           ~campaign:(Campaign.header_json cfg golden)
           ~shard ~jobs);
      ([], w)
    | _ :: _ ->
      let sr = Merge.read_shard ~cfg ~golden ~jobs ~shard path in
      (sr.Merge.records, Journal.append_to path)
  in
  (* fleet telemetry is a side channel: the sidecar has its own file and
     its own (worker-local) span profile, so the shard journal and the
     merged report are byte-identical with it on or off *)
  let fl =
    if fleet then
      Some (Fleet.worker_begin ~path ~shard ~completed:(List.length prior))
    else None
  in
  Fun.protect
    ~finally:(fun () ->
      Journal.close writer;
      match fl with Some f -> Fleet.worker_end f | None -> ())
    (fun () ->
      let completed = ref (List.length prior) in
      let seq = ref 0 in
      let pid = Unix.getpid () in
      let on_start (p : Campaign.plan_entry) =
        incr seq;
        (* liveness only — unsynced, so a lost heartbeat costs nothing *)
        Journal.append_nosync writer
          (Journal.heartbeat_json ~pid ~seq:!seq ~completed:!completed
             ~next:(Some p.Campaign.p_idx));
        match fl with
        | Some f -> Fleet.run_start f ~idx:p.Campaign.p_idx
        | None -> ()
      in
      let on_record (r : Campaign.record) =
        incr completed;
        match fl with
        | Some f ->
          Fleet.run_done f ~idx:r.Campaign.idx
            ~outcome:(Outcome.name r.Campaign.outcome)
            ~latency:r.Campaign.latency ~completed:!completed
        | None -> ()
      in
      let report =
        Campaign.execute_plan ~mk ~cfg ~golden
          ~select:(Partition.select ~jobs ~shard)
          ~on_start ~on_record ~writer ~deadline ~prior ()
      in
      let expected = Partition.size ~jobs ~shard ~runs:cfg.Campaign.runs in
      let marker =
        if
          (not report.Campaign.deadline_expired)
          && List.length report.Campaign.records = expected
        then Merge.done_json ~shard ~completed:!completed
        else Merge.partial_json ~shard ~completed:!completed
      in
      Journal.append writer marker;
      report)

(* The forked child's whole life.  [Unix._exit] always: the child must
   not run the parent's [at_exit] hooks (host-span dumps, stdio flush of
   buffers it inherited) — its only output channel is the shard journal
   and its exit code. *)
let child ~mk ~cfg ~golden ~jobs ~shard ~path ?fleet ?deadline () : 'a =
  let code =
    match
      run_inline ~mk ~cfg ~golden ~jobs ~shard ~path ?fleet ?deadline ()
    with
    | report ->
      if report.Campaign.deadline_expired then exit_partial else exit_ok
    | exception Hb_error.Hb_error (ctx, msg) ->
      (* best effort: leave the typed error in the journal so the
         supervisor can surface it verbatim *)
      (try
         let w = Journal.append_to path in
         Journal.append w
           (Merge.error_json ~shard ~msg:(Hb_error.to_string (ctx, msg)));
         Journal.close w
       with _ -> ());
      exit_error
    | exception _ -> exit_crash
  in
  Unix._exit code
