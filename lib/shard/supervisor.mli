(** Worker supervision: fork one {!Worker.child} per shard, poll for
    exits, watch shard-journal growth for liveness, SIGKILL hung
    workers, respawn with exponential backoff, adopt exhausted shards
    inline (degradation), and escalate typed worker errors. *)

module Campaign := Hb_fault.Campaign

type config = {
  jobs : int;
  max_worker_restarts : int;
      (** respawns per shard before the parent adopts the slice inline *)
  heartbeat_timeout_s : float;
      (** shard-journal silence after which a worker counts as hung *)
  backoff_base_s : float;
  backoff_cap_s : float;
  poll_interval_s : float;
  log : (string -> unit) option;
      (** supervision event sink (spawn/kill/respawn/adopt lines) *)
  fleet : bool;
      (** workers append {!Hb_obs.Fleet} telemetry sidecars, and
          lifecycle moments (spawn/respawn/watchdog-kill/adopt) are
          recorded as fleet events; read-only w.r.t. journals and
          reports *)
}

val default : config
(** 2 jobs, 3 restarts, 60 s heartbeat timeout, 0.25 s–5 s backoff,
    50 ms poll, no log, fleet off. *)

val backoff_s : config -> restart:int -> float
(** Pure respawn backoff schedule: the delay before respawn attempt
    [restart] (1-based) — [backoff_base_s] doubled per attempt, clamped
    at [backoff_cap_s].  Deterministic, monotone non-decreasing, and
    bounded; [restart <= 0] is 0. *)

val backoff_schedule : config -> float list
(** The delays a shard walks through its whole respawn budget:
    [List.init max_worker_restarts (fun i -> backoff_s ~restart:(i+1))]. *)

val run :
  mk:(unit -> Hb_cpu.Machine.t) ->
  cfg:Campaign.config ->
  golden:Campaign.golden ->
  base:string ->
  extra:Campaign.record list ->
  ?deadline:Hb_recover.Deadline.t ->
  ?progress:Hb_obs.Progress.t ->
  config ->
  unit
(** Supervise the whole sharded execution to quiescence: returns once
    every shard is done or deadline-partial (their journals then hold
    the full acknowledged record set for {!Merge}).  [extra] is a
    partial base journal's prior records (counted as completed, never
    re-supervised).  Raises {!Hb_error.Hb_error} if a worker reports a
    typed error — the remaining workers are SIGKILLed first and the
    message carries a [--resume] hint. *)
