(** One shard worker: executes its slice of the plan, journaling every
    acknowledged run into its own shard file; resumable at any byte. *)

module Campaign := Hb_fault.Campaign

val exit_ok : int
val exit_partial : int
(** Wall-clock deadline expired with the slice incomplete. *)

val exit_error : int
(** Typed [Hb_error]; the message is journaled as a shard-error record
    and respawning is pointless. *)

val exit_crash : int
(** Untyped failure; a respawn may recover. *)

val run_inline :
  mk:(unit -> Hb_cpu.Machine.t) ->
  cfg:Campaign.config ->
  golden:Campaign.golden ->
  jobs:int ->
  shard:int ->
  path:string ->
  ?fleet:bool ->
  ?deadline:Hb_recover.Deadline.t ->
  unit ->
  Campaign.report
(** Execute (or resume) shard [shard]'s slice, appending to the shard
    journal at [path].  Replays the acknowledged prefix from the journal
    without re-executing it; terminates the file with a shard-done or
    shard-partial marker.  Also called directly by the supervisor's
    parent process when a worker's respawn budget is exhausted.
    [fleet] (default off) additionally appends crash-tolerant telemetry
    — per-run wall latencies and periodic snapshots — to the journal's
    {!Hb_obs.Fleet} sidecar; the journal and report stay byte-identical
    either way. *)

val child :
  mk:(unit -> Hb_cpu.Machine.t) ->
  cfg:Campaign.config ->
  golden:Campaign.golden ->
  jobs:int ->
  shard:int ->
  path:string ->
  ?fleet:bool ->
  ?deadline:Hb_recover.Deadline.t ->
  unit ->
  'a
(** The forked child's whole life: [run_inline], then [Unix._exit] with
    the protocol code above.  Never returns, never writes to stdio. *)
