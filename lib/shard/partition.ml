(** Static partitioning of a campaign plan across shards.

    Index [i] belongs to shard [i mod jobs]: a pure function both sides
    of a fork can evaluate, so a respawned worker re-derives its slice
    from (shard, jobs) alone — no work list ever has to be serialized.
    The modulo striping also balances the plan's injection points across
    shards (the plan is index-ordered, execution is point-sorted), so no
    worker inherits a contiguous run of the most expensive suffixes. *)

let owner ~jobs idx = idx mod jobs

let select ~jobs ~shard idx = owner ~jobs idx = shard

(** Runs shard [shard] owns out of a [runs]-run campaign. *)
let size ~jobs ~shard ~runs =
  if shard >= runs mod jobs then runs / jobs else (runs / jobs) + 1

(** Shard journal path: the base journal plus a [.shardK] suffix. *)
let shard_path ~base ~shard = Printf.sprintf "%s.shard%d" base shard

let validate ~jobs =
  if jobs < 1 then
    Hb_error.fail ~component:"shard" "--jobs must be at least 1 (got %d)" jobs;
  if jobs > 256 then
    Hb_error.fail ~component:"shard" "--jobs %d is absurd (max 256)" jobs
