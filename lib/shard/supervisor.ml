(** Worker supervision: fork, watch, kill, respawn, degrade.

    The parent forks one {!Worker.child} per shard, then polls: reaping
    exits ([waitpid WNOHANG]), watching liveness (a worker's shard
    journal must keep growing — every run appends, and heartbeats cover
    the gaps), SIGKILLing anything silent past the heartbeat timeout,
    and respawning dead workers with exponential backoff.  A respawned
    worker re-reads its own journal and replays the acknowledged prefix,
    so no run is ever executed twice.  When a shard exhausts its respawn
    budget the parent adopts the slice and runs it inline — graceful
    degradation to fewer workers.  A worker that dies with a *typed*
    error (exit code {!Worker.exit_error}) ends the campaign: retrying a
    config mismatch or corrupt journal cannot succeed, so the supervisor
    kills the remaining workers and escalates the journaled message as
    an [Hb_error] carrying a resume hint. *)

module Campaign = Hb_fault.Campaign
module Outcome = Hb_fault.Outcome
module Deadline = Hb_recover.Deadline
module Interrupt = Hb_recover.Interrupt
module Clock = Hb_obs.Clock
module Progress = Hb_obs.Progress
module Fleet = Hb_obs.Fleet

type config = {
  jobs : int;
  max_worker_restarts : int;
      (* respawns per shard before the parent adopts its slice *)
  heartbeat_timeout_s : float;
      (* shard-journal silence after which a worker counts as hung *)
  backoff_base_s : float;
  backoff_cap_s : float;
  poll_interval_s : float;
  log : (string -> unit) option;
      (* supervision events ("worker 2 pid 1234 spawned", ...); the CLI
         wires stderr, tests capture, default drops *)
  fleet : bool;
      (* workers append telemetry sidecars and lifecycle moments are
         recorded as fleet events; read-only w.r.t. journals/reports *)
}

let default =
  {
    jobs = 2;
    max_worker_restarts = 3;
    heartbeat_timeout_s = 60.;
    backoff_base_s = 0.25;
    backoff_cap_s = 5.;
    poll_interval_s = 0.05;
    log = None;
    fleet = false;
  }

(** The respawn backoff schedule as a pure function: delay before
    respawn attempt [restart] (1-based).  Exponential doubling from
    [backoff_base_s], clamped at [backoff_cap_s] — deterministic,
    monotone non-decreasing, and bounded, so a crash-looping worker can
    never stampede the host, and tests can pin the exact schedule. *)
let backoff_s (scfg : config) ~restart =
  if restart <= 0 then 0.
  else
    Float.min scfg.backoff_cap_s
      (scfg.backoff_base_s *. (2. ** float_of_int (restart - 1)))

(** The full schedule a shard walks before its respawn budget is spent:
    [[backoff_s ~restart:1; ...; backoff_s ~restart:max_worker_restarts]]. *)
let backoff_schedule (scfg : config) =
  List.init (max 0 scfg.max_worker_restarts) (fun i ->
      backoff_s scfg ~restart:(i + 1))

type state =
  | Running of {
      pid : int;
      mutable last_size : int;
      mutable last_beat_ns : int64;
    }
  | Waiting of { at_ns : int64 }  (* backoff before the next respawn *)
  | Done
  | Partial  (* deadline expired before the slice completed *)
  | Exhausted  (* respawn budget spent; parent will adopt the slice *)
  | Failed of string  (* typed worker error; campaign must escalate *)

type slot = {
  shard : int;
  path : string;
  mutable state : state;
  mutable restarts : int;
  row : Progress.worker option;
}

let terminal = function
  | Done | Partial | Exhausted | Failed _ -> true
  | Running _ | Waiting _ -> false

let shard_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error (_, _, _) -> 0

let logf scfg fmt =
  Printf.ksprintf
    (fun s -> match scfg.log with Some f -> f s | None -> ())
    fmt

let set_row_state slot s =
  match slot.row with None -> () | Some r -> r.Progress.state <- s

let spawn scfg ~mk ~cfg ~golden ~deadline slot =
  (* the child inherits the parent's stdio buffers but [_exit]s without
     flushing them; flushing here keeps buffered parent output from
     being lost to the fork entirely *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Worker.child ~mk ~cfg ~golden ~jobs:scfg.jobs ~shard:slot.shard
      ~path:slot.path ~fleet:scfg.fleet ~deadline ()
  | pid ->
    logf scfg "[shard] worker %d pid %d spawned (attempt %d)" slot.shard pid
      (slot.restarts + 1);
    Fleet.event
      ~kind:(if slot.restarts = 0 then "spawn" else "respawn")
      ~shard:slot.shard ~pid
      (Printf.sprintf "attempt %d" (slot.restarts + 1));
    slot.state <-
      Running
        {
          pid;
          last_size = shard_size slot.path;
          last_beat_ns = Clock.now_ns ();
        };
    set_row_state slot "running";
    (match slot.row with
    | Some r -> r.Progress.pid <- Some pid
    | None -> ())

let respawn_or_exhaust scfg ~deadline slot why =
  (match slot.row with
  | Some r -> r.Progress.pid <- None
  | None -> ());
  if Deadline.expired deadline then begin
    (* the worker would only exit [exit_partial] anyway *)
    logf scfg "[shard] worker %d %s after deadline; marking partial"
      slot.shard why;
    slot.state <- Partial;
    set_row_state slot "partial"
  end
  else if slot.restarts >= scfg.max_worker_restarts then begin
    logf scfg
      "[shard] worker %d %s; respawn budget (%d) exhausted, parent will \
       adopt the slice"
      slot.shard why scfg.max_worker_restarts;
    Fleet.event ~kind:"exhaust" ~shard:slot.shard why;
    slot.state <- Exhausted;
    set_row_state slot "exhausted"
  end
  else begin
    slot.restarts <- slot.restarts + 1;
    let backoff = backoff_s scfg ~restart:slot.restarts in
    logf scfg "[shard] worker %d %s; respawn %d/%d in %.2fs" slot.shard why
      slot.restarts scfg.max_worker_restarts backoff;
    slot.state <-
      Waiting { at_ns = Int64.add (Clock.now_ns ()) (Clock.ns_of_s backoff) };
    set_row_state slot "respawning";
    match slot.row with
    | Some r -> r.Progress.restarts <- slot.restarts
    | None -> ()
  end

(* Recover the journaled shard-error message for a worker that exited
   with the typed-error code; tolerate an unreadable journal (the error
   may have struck before anything was written). *)
let journaled_error ~(ccfg : Campaign.config) ~jobs slot =
  match
    Merge.read_shard ~cfg:ccfg ~jobs ~shard:slot.shard slot.path
  with
  | { Merge.closed = Merge.Error msg; _ } -> msg
  | _ | (exception Hb_error.Hb_error _) ->
    Printf.sprintf "worker %d failed with a typed error before it could be \
                    journaled" slot.shard

let sigkill pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
  let rec reap () =
    match Unix.waitpid [] pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  reap ()

let check scfg ~mk ~cfg ~golden ~deadline slot =
  match slot.state with
  | Done | Partial | Exhausted | Failed _ -> ()
  | Waiting { at_ns } ->
    if Deadline.expired deadline then begin
      slot.state <- Partial;
      set_row_state slot "partial"
    end
    else if Clock.now_ns () >= at_ns then
      spawn scfg ~mk ~cfg ~golden ~deadline slot
  | Running r -> (
    match Unix.waitpid [ Unix.WNOHANG ] r.pid with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | 0, _ ->
      (* alive: liveness = the shard journal keeps growing (every run
         record and heartbeat appends bytes) *)
      let size = shard_size slot.path in
      if size > r.last_size then begin
        r.last_size <- size;
        r.last_beat_ns <- Clock.now_ns ()
      end
      else begin
        let silent = Clock.elapsed_s ~t0:r.last_beat_ns in
        (match slot.row with
        | Some row -> row.Progress.beat_age_s <- silent
        | None -> ());
        if silent > scfg.heartbeat_timeout_s then begin
          logf scfg "[shard] worker %d pid %d silent for %.1fs; killing"
            slot.shard r.pid silent;
          Fleet.event ~kind:"watchdog_kill" ~shard:slot.shard ~pid:r.pid
            (Printf.sprintf "silent %.1fs" silent);
          sigkill r.pid;
          respawn_or_exhaust scfg ~deadline slot "hung (watchdog)"
        end
      end
    | _, Unix.WEXITED code when code = Worker.exit_ok ->
      logf scfg "[shard] worker %d pid %d done" slot.shard r.pid;
      slot.state <- Done;
      set_row_state slot "done";
      (match slot.row with None -> () | Some row -> row.Progress.pid <- None)
    | _, Unix.WEXITED code when code = Worker.exit_partial ->
      slot.state <- Partial;
      set_row_state slot "partial"
    | _, Unix.WEXITED code when code = Worker.exit_error ->
      slot.state <- Failed (journaled_error ~ccfg:cfg ~jobs:scfg.jobs slot);
      set_row_state slot "failed"
    | _, Unix.WEXITED code ->
      respawn_or_exhaust scfg ~deadline slot
        (Printf.sprintf "exited with code %d" code)
    | _, Unix.WSIGNALED sg ->
      respawn_or_exhaust scfg ~deadline slot
        (Printf.sprintf "killed by signal %d" sg)
    | _, Unix.WSTOPPED _ -> ())

(* Refresh the shared progress tracker from the shard journals: per-slot
   completion counts and the global outcome tally.  Read-only and
   throttled; a parse failure here must never kill the campaign.  [seen]
   is pre-seeded with the base journal's prior indices (already tallied
   by the caller), so it both deduplicates the tally and is the
   completed count. *)
let refresh_progress ~(ccfg : Campaign.config) ~jobs ~seen progress slots =
  match progress with
  | None -> ()
  | Some p ->
    List.iter
      (fun slot ->
        match
          Merge.read_shard ~cfg:ccfg ~jobs ~shard:slot.shard slot.path
        with
        | sr ->
          (match slot.row with
          | Some row -> row.Progress.done_runs <- List.length sr.Merge.records
          | None -> ());
          List.iter
            (fun (r : Campaign.record) ->
              if not (Hashtbl.mem seen r.Campaign.idx) then begin
                Hashtbl.add seen r.Campaign.idx ();
                Progress.seed_outcome p
                  ~outcome:(Outcome.name r.Campaign.outcome)
              end)
            sr.Merge.records
        | exception Hb_error.Hb_error _ -> ())
      slots;
    p.Progress.completed <- Hashtbl.length seen

let run ~mk ~(cfg : Campaign.config) ~golden ~base
    ~(extra : Campaign.record list) ?(deadline = Deadline.none) ?progress
    (scfg : config) : unit =
  let slots =
    List.init scfg.jobs (fun shard ->
        let row =
          match progress with
          | None -> None
          | Some _ ->
            Some
              (Progress.worker ~shard
                 ~total_runs:
                   (Partition.size ~jobs:scfg.jobs ~shard
                      ~runs:cfg.Campaign.runs))
        in
        {
          shard;
          path = Partition.shard_path ~base ~shard;
          state = Waiting { at_ns = 0L };
          restarts = 0;
          row;
        })
  in
  (match progress with
  | Some p ->
    Progress.set_workers p (List.filter_map (fun s -> s.row) slots)
  | None -> ());
  (* the base journal's prior records count as completed from the start;
     their outcomes were tallied by the caller *)
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (r : Campaign.record) -> Hashtbl.replace seen r.Campaign.idx ())
    extra;
  let polls = ref 0 in
  (* Graceful SIGTERM/SIGINT: kill the running workers (their journals
     keep the acknowledged prefix and stay resumable) and mark every
     live slot partial, exactly as a deadline expiry would. *)
  let interrupt_sweep () =
    List.iter
      (fun s ->
        match s.state with
        | Running r ->
          logf scfg "[shard] interrupt (%s): killing worker %d pid %d"
            (Interrupt.signal_name ()) s.shard r.pid;
          Fleet.event ~kind:"interrupt_kill" ~shard:s.shard ~pid:r.pid
            "shutdown requested";
          sigkill r.pid;
          s.state <- Partial;
          set_row_state s "partial"
        | Waiting _ | Exhausted ->
          s.state <- Partial;
          set_row_state s "partial"
        | Done | Partial | Failed _ -> ())
      slots
  in
  let rec loop () =
    if List.for_all (fun s -> terminal s.state) slots then ()
    else begin
      if Interrupt.requested () then interrupt_sweep ();
      List.iter (check scfg ~mk ~cfg ~golden ~deadline) slots;
      (* escalate a typed worker failure immediately: kill the survivors
         (their journals stay resumable) and surface the message *)
      (match
         List.find_opt
           (fun s -> match s.state with Failed _ -> true | _ -> false)
           slots
       with
      | Some failed ->
        let msg =
          match failed.state with Failed m -> m | _ -> assert false
        in
        List.iter
          (fun s ->
            match s.state with
            | Running r ->
              logf scfg "[shard] killing worker %d pid %d (campaign failed)"
                s.shard r.pid;
              Fleet.event ~kind:"kill" ~shard:s.shard ~pid:r.pid
                "campaign failed";
              sigkill r.pid
            | _ -> ())
          slots;
        Hb_error.fail ~component:"shard"
          "worker %d failed: %s — completed records are journaled in \
           %s.shard*; fix the cause and re-run with --resume %s"
          failed.shard msg base base
      | None -> ());
      incr polls;
      if !polls mod 20 = 0 then
        refresh_progress ~ccfg:cfg ~jobs:scfg.jobs ~seen progress slots;
      if not (List.for_all (fun s -> terminal s.state) slots) then begin
        Unix.sleepf scfg.poll_interval_s;
        loop ()
      end
    end
  in
  loop ();
  (* graceful degradation: adopt every exhausted shard in the parent,
     replaying its journaled prefix and finishing the slice inline *)
  List.iter
    (fun slot ->
      match slot.state with
      | Exhausted ->
        logf scfg "[shard] adopting shard %d inline" slot.shard;
        Fleet.event ~kind:"adopt" ~shard:slot.shard
          ~pid:(Unix.getpid ()) "parent runs the slice inline";
        set_row_state slot "adopted";
        let report =
          Worker.run_inline ~mk ~cfg ~golden ~jobs:scfg.jobs
            ~shard:slot.shard ~path:slot.path ~fleet:scfg.fleet ~deadline ()
        in
        slot.state <-
          (if report.Campaign.deadline_expired then Partial else Done);
        set_row_state slot
          (if report.Campaign.deadline_expired then "partial" else "done")
      | _ -> ())
    slots;
  refresh_progress ~ccfg:cfg ~jobs:scfg.jobs ~seen progress slots
