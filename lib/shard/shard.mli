(** Multi-process sharded campaign runner.

    Partitions a campaign's seed-pure plan across [cfg.jobs] forked
    workers, supervises them (heartbeat watchdog, SIGKILL of hung
    workers, bounded respawn with backoff, inline adoption of exhausted
    shards, typed escalation), and merges the per-worker journals into a
    report byte-identical to {!Hb_fault.Campaign.run}'s. *)

module Campaign := Hb_fault.Campaign

val run :
  ?journal:string ->
  ?resume:string ->
  ?deadline:Hb_recover.Deadline.t ->
  ?progress:Hb_obs.Progress.t ->
  ?cfg:Supervisor.config ->
  ?fleet:Hb_obs.Fleet.config ->
  mk:(unit -> Hb_cpu.Machine.t) ->
  Campaign.config ->
  Campaign.report
(** Execute the campaign across [cfg.jobs] worker processes (default
    {!Supervisor.default}).  [journal]/[resume] mirror the serial
    runner: shard files live at [base.shardK]; on completion the merged
    serial-format journal is written at [base], so any later [--resume]
    reconstructs with zero execution.  Killing any subset of workers (or
    the whole process tree) at any point, then resuming with the same
    [jobs], converges to the identical report; a jobs mismatch or other
    typed worker failure raises {!Hb_error.Hb_error} with a resume
    hint.  Without [journal]/[resume] the shard files are temporary and
    removed afterwards.  [deadline] yields a well-formed
    [deadline_expired] partial report.  [progress] gains a per-worker
    table ([/progress] and [hb_shard_*] gauges).

    [fleet] (default {!Hb_obs.Fleet.disabled}) attaches the fleet
    telemetry plane: workers append crash-tolerant sidecars next to
    their journal shards, an ambient {!Hb_obs.Fleet} collector records
    supervision lifecycle events and aggregates the sidecars for the
    live endpoints, and [fleet.chrome] writes a post-run unified Chrome
    trace (supervisor + worker tracks keyed by pid, lifecycle instant
    events).  Strictly read-only: the merged report and every journal
    are byte-identical with the fleet plane on or off.  A campaign that
    short-circuits on an already-complete base journal executes nothing
    and writes no fleet artifacts. *)
