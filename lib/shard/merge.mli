(** Deterministic reassembly of a campaign report from shard journals:
    reads every worker's file back (tolerant of missing files, torn
    tails and respawn duplicates) and rebuilds the exact record set the
    serial runner produces. *)

module Campaign := Hb_fault.Campaign
module Json := Hb_obs.Json

val done_json : shard:int -> completed:int -> Json.t
(** Terminator a worker appends when its whole slice is acknowledged. *)

val partial_json : shard:int -> completed:int -> Json.t
(** Terminator for a slice cut short by the wall-clock deadline. *)

val error_json : shard:int -> msg:string -> Json.t
(** A worker's typed failure, journaled for the supervisor to surface. *)

type closed = Open | Done | Partial | Error of string

type shard_read = {
  records : Campaign.record list;
  beat : (int * int) option;  (** (pid, completed) of the last heartbeat *)
  closed : closed;
}

val read_shard :
  cfg:Campaign.config ->
  ?golden:Campaign.golden ->
  jobs:int ->
  shard:int ->
  string ->
  shard_read
(** Read one shard journal.  A missing/empty/torn-header file is a valid
    fresh shard; an intact header must match (shard, jobs) and the
    campaign config (and golden, when given) or a typed error is
    raised, as are out-of-slice or malformed run records. *)

val gather :
  cfg:Campaign.config ->
  ?golden:Campaign.golden ->
  jobs:int ->
  base:string ->
  extra:Campaign.record list ->
  unit ->
  Campaign.record list
(** Union of all shards' records plus [extra] (a partial base journal's
    prior records), deduplicated first-wins by index. *)

val merged_report :
  cfg:Campaign.config ->
  golden:Campaign.golden ->
  jobs:int ->
  base:string ->
  extra:Campaign.record list ->
  unit ->
  Campaign.report * bool
(** The assembled report and whether every planned index is covered; an
    incomplete merge is flagged [deadline_expired]. *)

val write_merged :
  cfg:Campaign.config ->
  golden:Campaign.golden ->
  base:string ->
  Campaign.report ->
  unit
(** Write the merged report's records as a normal (serial-format) done
    campaign journal at [base], so a later [--resume] reconstructs with
    zero execution. *)
