(** Single-run measurement record: everything Figures 5, 6 and 7 need. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Encoding = Hardbound.Encoding
module Hierarchy = Hb_cache.Hierarchy
module Layout = Hb_mem.Layout
module Physmem = Hb_mem.Physmem

type record = {
  workload : string;
  mode : Codegen.mode;
  scheme : Encoding.scheme;
  output : string;
  instructions : int;
  uops : int;
  cycles : int;
  setbound_instrs : int;
  metadata_uops : int;
  check_uops : int;
  data_stalls : int;
  bb_stalls : int;      (* base/bound shadow-space stall cycles *)
  tag_stalls : int;     (* tag metadata cache stall cycles *)
  data_pages : int;     (* globals + heap + stack pages touched *)
  tag_pages : int;
  shadow_pages : int;
  ptr_loads_shadow : int;
  ptr_stores_shadow : int;
}

let measure ?(scheme = Encoding.Extern4) ?(checked_deref_uop = false)
    ~(mode : Codegen.mode) (w : Hb_workloads.Workloads.t) : record =
  let status, m = Build.run ~scheme ~checked_deref_uop ~mode w.source in
  (match status with
   | Machine.Exited 0 -> ()
   | st ->
     Hb_error.fail ~component:"harness" "%s [%s/%s]: %s" w.name
       (Codegen.mode_name mode) (Encoding.scheme_name scheme)
       (Machine.status_name st));
  let s = m.Machine.stats in
  let pages r = Physmem.pages_touched_in m.Machine.mem r in
  {
    workload = w.name;
    mode;
    scheme;
    output = Machine.output m;
    instructions = s.Stats.instructions;
    uops = s.Stats.uops;
    cycles = Stats.cycles s;
    setbound_instrs = s.Stats.setbound_instrs;
    metadata_uops = s.Stats.metadata_uops;
    check_uops = s.Stats.check_uops;
    data_stalls = s.Stats.charged_data_stalls;
    bb_stalls = s.Stats.charged_bb_stalls;
    tag_stalls = s.Stats.charged_tag_stalls;
    data_pages =
      pages Layout.Globals + pages Layout.Heap + pages Layout.Stack;
    tag_pages = pages Layout.Tag_space;
    shadow_pages = pages Layout.Shadow_space;
    ptr_loads_shadow = s.Stats.ptr_loads_shadow;
    ptr_stores_shadow = s.Stats.ptr_stores_shadow;
  }

let ratio a b = float_of_int a /. float_of_int b

(** Figure 5 decomposition of one HardBound run against its baseline, as
    fractions of baseline cycles. *)
type decomposition = {
  seg_setbound : float;
  seg_meta_uops : float;
  seg_meta_stalls : float;
  seg_pollution : float;  (* additional memory latency on ordinary data *)
  total_overhead : float;
}

let decompose ~(baseline : record) (hb : record) : decomposition =
  let b = float_of_int baseline.cycles in
  {
    seg_setbound = float_of_int hb.setbound_instrs /. b;
    seg_meta_uops = float_of_int (hb.metadata_uops + hb.check_uops) /. b;
    seg_meta_stalls = float_of_int (hb.bb_stalls + hb.tag_stalls) /. b;
    seg_pollution = float_of_int (hb.data_stalls - baseline.data_stalls) /. b;
    total_overhead = (float_of_int hb.cycles /. b) -. 1.0;
  }

module Json = Hb_obs.Json

let record_json (r : record) : Json.t =
  Json.Obj
    [
      ("workload", Json.String r.workload);
      ("mode", Json.String (Codegen.mode_name r.mode));
      ("scheme", Json.String (Encoding.scheme_name r.scheme));
      ("instructions", Json.Int r.instructions);
      ("uops", Json.Int r.uops);
      ("cycles", Json.Int r.cycles);
      ("setbound_instrs", Json.Int r.setbound_instrs);
      ("metadata_uops", Json.Int r.metadata_uops);
      ("check_uops", Json.Int r.check_uops);
      ("data_stalls", Json.Int r.data_stalls);
      ("bb_stalls", Json.Int r.bb_stalls);
      ("tag_stalls", Json.Int r.tag_stalls);
      ("data_pages", Json.Int r.data_pages);
      ("tag_pages", Json.Int r.tag_pages);
      ("shadow_pages", Json.Int r.shadow_pages);
      ("ptr_loads_shadow", Json.Int r.ptr_loads_shadow);
      ("ptr_stores_shadow", Json.Int r.ptr_stores_shadow);
    ]

let decomposition_json (d : decomposition) : Json.t =
  Json.Obj
    [
      ("setbound", Json.Float d.seg_setbound);
      ("meta_uops", Json.Float d.seg_meta_uops);
      ("meta_stalls", Json.Float d.seg_meta_stalls);
      ("pollution", Json.Float d.seg_pollution);
      ("total_overhead", Json.Float d.total_overhead);
    ]
