(** Single-run measurement record: everything Figures 5, 6 and 7 need. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats
module Encoding = Hardbound.Encoding
module Hierarchy = Hb_cache.Hierarchy
module Layout = Hb_mem.Layout
module Physmem = Hb_mem.Physmem
module Host = Hb_obs.Host

(** Host-side cost of producing one record (compile + simulate), in wall
    nanoseconds and GC work.  Host-varying by nature: it never enters
    {!record_json} or any byte-identical artifact — it feeds the
    [hb_host_*] gauges and the advisory wall-time trajectory only. *)
type host_cost = {
  wall_ns : int;
  gc_minor_words : int;
  gc_major_words : int;
  gc_minor_gcs : int;
  gc_major_gcs : int;
}

type record = {
  workload : string;
  mode : Codegen.mode;
  scheme : Encoding.scheme;
  output : string;
  instructions : int;
  uops : int;
  cycles : int;
  setbound_instrs : int;
  metadata_uops : int;
  check_uops : int;
  data_stalls : int;
  bb_stalls : int;      (* base/bound shadow-space stall cycles *)
  tag_stalls : int;     (* tag metadata cache stall cycles *)
  data_pages : int;     (* globals + heap + stack pages touched *)
  tag_pages : int;
  shadow_pages : int;
  ptr_loads_shadow : int;
  ptr_stores_shadow : int;
  host : host_cost;
}

let measure ?(scheme = Encoding.Extern4) ?(checked_deref_uop = false)
    ~(mode : Codegen.mode) (w : Hb_workloads.Workloads.t) : record =
  (* one ambient span per measured run (no-op without a profiler), plus
     an unconditional inline timing so the wall trajectory always has
     its numbers *)
  Host.span
    (Printf.sprintf "measure:%s/%s/%s" w.name (Codegen.mode_name mode)
       (Encoding.scheme_name scheme))
  @@ fun () ->
  let (status, m), timing =
    Host.timed (fun () ->
        Build.run ~scheme ~checked_deref_uop ~mode w.source)
  in
  (match status with
   | Machine.Exited 0 -> ()
   | st ->
     Hb_error.fail ~component:"harness" "%s [%s/%s]: %s" w.name
       (Codegen.mode_name mode) (Encoding.scheme_name scheme)
       (Machine.status_name st));
  let s = m.Machine.stats in
  Host.annotate_live "instrs" s.Stats.instructions;
  Host.annotate_live "cycles" (Stats.cycles s);
  let pages r = Physmem.pages_touched_in m.Machine.mem r in
  {
    workload = w.name;
    mode;
    scheme;
    output = Machine.output m;
    instructions = s.Stats.instructions;
    uops = s.Stats.uops;
    cycles = Stats.cycles s;
    setbound_instrs = s.Stats.setbound_instrs;
    metadata_uops = s.Stats.metadata_uops;
    check_uops = s.Stats.check_uops;
    data_stalls = s.Stats.charged_data_stalls;
    bb_stalls = s.Stats.charged_bb_stalls;
    tag_stalls = s.Stats.charged_tag_stalls;
    data_pages =
      pages Layout.Globals + pages Layout.Heap + pages Layout.Stack;
    tag_pages = pages Layout.Tag_space;
    shadow_pages = pages Layout.Shadow_space;
    ptr_loads_shadow = s.Stats.ptr_loads_shadow;
    ptr_stores_shadow = s.Stats.ptr_stores_shadow;
    host =
      {
        wall_ns = timing.Host.t_wall_ns;
        gc_minor_words = int_of_float timing.Host.t_gc.Host.minor_words;
        gc_major_words = int_of_float timing.Host.t_gc.Host.major_words;
        gc_minor_gcs = timing.Host.t_gc.Host.minor_gcs;
        gc_major_gcs = timing.Host.t_gc.Host.major_gcs;
      };
  }

let ratio a b = float_of_int a /. float_of_int b

(** Figure 5 decomposition of one HardBound run against its baseline, as
    fractions of baseline cycles. *)
type decomposition = {
  seg_setbound : float;
  seg_meta_uops : float;
  seg_meta_stalls : float;
  seg_pollution : float;  (* additional memory latency on ordinary data *)
  total_overhead : float;
}

let decompose ~(baseline : record) (hb : record) : decomposition =
  let b = float_of_int baseline.cycles in
  {
    seg_setbound = float_of_int hb.setbound_instrs /. b;
    seg_meta_uops = float_of_int (hb.metadata_uops + hb.check_uops) /. b;
    seg_meta_stalls = float_of_int (hb.bb_stalls + hb.tag_stalls) /. b;
    seg_pollution = float_of_int (hb.data_stalls - baseline.data_stalls) /. b;
    total_overhead = (float_of_int hb.cycles /. b) -. 1.0;
  }

module Json = Hb_obs.Json

let record_json (r : record) : Json.t =
  Json.Obj
    [
      ("workload", Json.String r.workload);
      ("mode", Json.String (Codegen.mode_name r.mode));
      ("scheme", Json.String (Encoding.scheme_name r.scheme));
      ("instructions", Json.Int r.instructions);
      ("uops", Json.Int r.uops);
      ("cycles", Json.Int r.cycles);
      ("setbound_instrs", Json.Int r.setbound_instrs);
      ("metadata_uops", Json.Int r.metadata_uops);
      ("check_uops", Json.Int r.check_uops);
      ("data_stalls", Json.Int r.data_stalls);
      ("bb_stalls", Json.Int r.bb_stalls);
      ("tag_stalls", Json.Int r.tag_stalls);
      ("data_pages", Json.Int r.data_pages);
      ("tag_pages", Json.Int r.tag_pages);
      ("shadow_pages", Json.Int r.shadow_pages);
      ("ptr_loads_shadow", Json.Int r.ptr_loads_shadow);
      ("ptr_stores_shadow", Json.Int r.ptr_stores_shadow);
    ]

(* Host-varying fields are serialized by their own function so they can
   never slip into [record_json], which byte-identical artifacts and the
   committed simulated-cycle baseline are built from. *)

let wall_ms (r : record) = float_of_int r.host.wall_ns /. 1e6

(** Simulated instructions retired per host wall-clock second. *)
let sim_ips (r : record) =
  if r.host.wall_ns <= 0 then 0.
  else float_of_int r.instructions /. (float_of_int r.host.wall_ns /. 1e9)

let sim_cps (r : record) =
  if r.host.wall_ns <= 0 then 0.
  else float_of_int r.cycles /. (float_of_int r.host.wall_ns /. 1e9)

let host_json (r : record) : Json.t =
  Json.Obj
    [
      ("wall_ms", Json.Float (wall_ms r));
      ("sim_ips", Json.Float (sim_ips r));
      ("sim_cps", Json.Float (sim_cps r));
      ("gc_minor_words", Json.Int r.host.gc_minor_words);
      ("gc_major_words", Json.Int r.host.gc_major_words);
      ("gc_minor_gcs", Json.Int r.host.gc_minor_gcs);
      ("gc_major_gcs", Json.Int r.host.gc_major_gcs);
    ]

let decomposition_json (d : decomposition) : Json.t =
  Json.Obj
    [
      ("setbound", Json.Float d.seg_setbound);
      ("meta_uops", Json.Float d.seg_meta_uops);
      ("meta_stalls", Json.Float d.seg_meta_stalls);
      ("pollution", Json.Float d.seg_pollution);
      ("total_overhead", Json.Float d.total_overhead);
    ]
