(** Recovery-policy matrix over the violation corpus.

    The corpus harness ({!Hb_violations.Runner}) answers the paper's
    Section 5.2 question for the abort policy only: does every bad
    program trap?  This module asks the stronger question the trap
    supervisor raises — under *every* recovery policy, is the violation
    still detected (at least one precise trap fires), and what does the
    program's termination look like once the policy has had its say?

    Outcome taxonomy for a supervised run (documented here because the
    report/null-guard satellites pin tests to it):

    - [Detected_abort]: the run terminated with the violation status —
      the abort policy always, or a continuing policy whose budget ran
      out / whose trap was not a load/store;
    - [Detected_survived]: trap(s) were absorbed and the program still
      exited cleanly (status 0) — null-guard's and report's best case;
    - [Detected_impaired]: trap(s) were absorbed but the program then
      misbehaved (non-zero exit, fault, software abort, fuel) — e.g. an
      unchecked retire under [report] corrupting later control flow;
    - [Missed]: no trap and a clean exit — a detection failure for a bad
      program, the expected verdict for a good one;
    - [Anomalous]: no trap, yet the run did not exit cleanly. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Encoding = Hardbound.Encoding
module Gen = Hb_violations.Gen
module Policy = Hb_recover.Policy
module Recover = Hb_recover.Recover
module Json = Hb_obs.Json

type outcome_class =
  | Detected_abort
  | Detected_survived
  | Detected_impaired
  | Missed
  | Anomalous of string

let class_name = function
  | Detected_abort -> "detected-abort"
  | Detected_survived -> "detected-survived"
  | Detected_impaired -> "detected-impaired"
  | Missed -> "missed"
  | Anomalous s -> "anomalous: " ^ s

(** Compile and run one source under the supervisor. *)
let supervised ?(scheme = Encoding.Extern4) ?(mode = Codegen.Hardbound)
    ?(max_instrs = 5_000_000) ~policy src : Recover.outcome =
  let image, globals = Build.compile ~mode src in
  let config = Build.config_for ~scheme ~max_instrs mode in
  let m = Machine.create ~config ~globals image in
  Recover.run ~line_base:Build.runtime_lines
    ~config:(Policy.with_policy policy) m

let classify (o : Recover.outcome) : outcome_class =
  let trapped = o.Recover.traps <> [] in
  match o.Recover.status with
  | Machine.Bounds_violation _ | Machine.Non_pointer_violation _ ->
    Detected_abort
  | Machine.Exited 0 -> if trapped then Detected_survived else Missed
  | st ->
    if trapped then Detected_impaired
    else Anomalous (Machine.status_name st)

(** One row of the matrix: the whole corpus under one policy. *)
type cell = {
  policy : Policy.t;
  total : int;
  detected : int;  (** bad versions that trapped, however they ended *)
  aborted : int;
  survived : int;
  impaired : int;
  missed : int;  (** bad versions that ran clean — detection failures *)
  false_positives : int;  (** good versions that trapped *)
  traps : int;  (** traps dispatched across all bad runs *)
  rollbacks : int;
  escalations : int;
  anomalies : (string * string) list;  (** case id, what went wrong *)
}

let matrix ?scheme ?mode ?max_instrs ?(cases = Gen.all_cases ())
    ?(policies = Policy.all) () : cell list =
  List.map
    (fun policy ->
      let aborted = ref 0 and survived = ref 0 in
      let impaired = ref 0 and missed = ref 0 in
      let fps = ref 0 and traps = ref 0 in
      let rbs = ref 0 and escs = ref 0 in
      let anomalies = ref [] in
      List.iter
        (fun (case : Gen.case) ->
          let bad = supervised ?scheme ?mode ?max_instrs ~policy case.Gen.bad in
          traps := !traps + List.length bad.Recover.traps;
          rbs := !rbs + bad.Recover.rollbacks;
          escs := !escs + bad.Recover.escalations;
          (match classify bad with
          | Detected_abort -> incr aborted
          | Detected_survived -> incr survived
          | Detected_impaired -> incr impaired
          | Missed ->
            incr missed;
            anomalies := (case.Gen.id, "bad version ran clean") :: !anomalies
          | Anomalous s ->
            anomalies := (case.Gen.id, "bad version: " ^ s) :: !anomalies);
          let good = supervised ?scheme ?mode ?max_instrs ~policy case.Gen.good in
          match classify good with
          | Missed -> ()  (* clean and trap-free: the expected verdict *)
          | Detected_abort | Detected_survived | Detected_impaired ->
            incr fps;
            anomalies := (case.Gen.id, "good version trapped") :: !anomalies
          | Anomalous s ->
            anomalies := (case.Gen.id, "good version: " ^ s) :: !anomalies)
        cases;
      {
        policy;
        total = List.length cases;
        detected = !aborted + !survived + !impaired;
        aborted = !aborted;
        survived = !survived;
        impaired = !impaired;
        missed = !missed;
        false_positives = !fps;
        traps = !traps;
        rollbacks = !rbs;
        escalations = !escs;
        anomalies = List.rev !anomalies;
      })
    policies

(** Every bad case detected, no good case flagged, under every policy. *)
let all_detected (cells : cell list) =
  List.for_all
    (fun c -> c.detected = c.total && c.missed = 0 && c.false_positives = 0)
    cells

let to_table (cells : cell list) : string =
  let b = Buffer.create 512 in
  Printf.bprintf b "%-10s %5s %8s %7s %8s %8s %6s %5s %5s %9s %10s\n" "policy"
    "cases" "detected" "aborted" "survived" "impaired" "missed" "fps" "traps"
    "rollbacks" "escalations";
  List.iter
    (fun c ->
      Printf.bprintf b "%-10s %5d %8d %7d %8d %8d %6d %5d %5d %9d %10d\n"
        (Policy.name c.policy) c.total c.detected c.aborted c.survived
        c.impaired c.missed c.false_positives c.traps c.rollbacks
        c.escalations)
    cells;
  Buffer.contents b

let to_json (cells : cell list) : Json.t =
  Json.List
    (List.map
       (fun c ->
         Json.Obj
           [
             ("policy", Json.String (Policy.name c.policy));
             ("cases", Json.Int c.total);
             ("detected", Json.Int c.detected);
             ("aborted", Json.Int c.aborted);
             ("survived", Json.Int c.survived);
             ("impaired", Json.Int c.impaired);
             ("missed", Json.Int c.missed);
             ("false_positives", Json.Int c.false_positives);
             ("traps", Json.Int c.traps);
             ("rollbacks", Json.Int c.rollbacks);
             ("escalations", Json.Int c.escalations);
             ( "anomalies",
               Json.List
                 (List.map
                    (fun (id, what) ->
                      Json.Obj
                        [
                          ("case", Json.String id); ("what", Json.String what);
                        ])
                    c.anomalies) );
           ])
       cells)
