(** Fault-campaign harness: glue between the workload registry and the
    [hb_fault] campaign runner.

    [hb_fault] deliberately takes an opaque machine factory; this module
    supplies one — compile a workload (or arbitrary MiniC source) once,
    then stamp out identical machines per run. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Campaign = Hb_fault.Campaign

(** Compile [source] once; the returned thunk stamps out fresh,
    identically-configured machines — the [mk] a campaign needs. *)
let machine_maker ?scheme ?temporal ?tripwire ?max_instrs
    ?(mode = Codegen.Hardbound) source =
  let image, globals = Build.compile ~mode source in
  let config =
    Build.config_for ?scheme ?temporal ?tripwire ?max_instrs mode
  in
  fun () -> Machine.create ~config ~globals image

(** Run a campaign over a named Olden workload.  [config.label] is
    overridden with the workload name.  [journal]/[resume]/[deadline]
    pass through to {!Campaign.run} for crash-resilient journaling and
    wall-clock budgeting. *)
let campaign ?scheme ?temporal ?tripwire ?max_instrs ?mode ?journal ?resume
    ?deadline (config : Campaign.config) name =
  let w = Hb_workloads.Workloads.find name in
  let mk =
    machine_maker ?scheme ?temporal ?tripwire ?max_instrs ?mode w.source
  in
  Campaign.run ?journal ?resume ?deadline ~mk
    { config with Campaign.label = name }

(** Sharded variant of {!campaign}: partition the plan across
    [shard_cfg.jobs] forked, supervised workers ({!Hb_shard.Shard}); the
    merged report is byte-identical to {!campaign}'s. *)
let sharded_campaign ?scheme ?temporal ?tripwire ?max_instrs ?mode ?journal
    ?resume ?deadline ?progress ?fleet
    ~(shard_cfg : Hb_shard.Supervisor.config) (config : Campaign.config) name
    =
  let w = Hb_workloads.Workloads.find name in
  let mk =
    machine_maker ?scheme ?temporal ?tripwire ?max_instrs ?mode w.source
  in
  Hb_shard.Shard.run ?journal ?resume ?deadline ?progress ?fleet
    ~cfg:shard_cfg ~mk
    { config with Campaign.label = name }
