(** Collects the full measurement matrix once (baseline + three HardBound
    encodings + the two software baselines per Olden benchmark); the
    figure printers read from it. *)

type per_workload = {
  name : string;
  baseline : Run.record;
  hb_extern4 : Run.record;
  hb_intern4 : Run.record;
  hb_intern11 : Run.record;
  softfat : Run.record option;
  objtable : Run.record option;
}

val hb_runs : per_workload -> (Hardbound.Encoding.scheme * Run.record) list

val snapshot_runs : per_workload -> (string * Run.record) list
(** The (config name, record) pairs the committed trajectories track:
    baseline plus the three HardBound encodings. *)

val collect :
  ?software:bool -> ?progress:(string -> unit) -> unit -> per_workload list
(** Runs every workload under every configuration; checks that every
    instrumented run reproduced the baseline's output (transparency). *)

val geo_mean : float list -> float
val mean : float list -> float

val snapshot_json : per_workload list -> Hb_obs.Json.t
(** Deterministic perf-trajectory snapshot (instructions / uops / cycles
    for the baseline and each HardBound encoding of every workload) — the
    document committed as [BENCH_hardbound.json]. *)

val check_baseline :
  ?tolerance:float ->
  baseline:Hb_obs.Json.t ->
  per_workload list ->
  (unit, string list) result
(** Compare a freshly measured suite against a committed {!snapshot_json}
    document.  [Error] lists every (workload, config) whose cycle count
    drifted by more than [tolerance] (fraction of the recorded value,
    default 0.02) and every pair the snapshot does not cover.  Raises
    [Hb_obs.Json.Parse_error] when [baseline] is not a snapshot. *)

val wall_point :
  ?extra:(string * Hb_obs.Json.t) list ->
  label:string ->
  per_workload list ->
  Hb_obs.Json.t
(** One host wall-clock trajectory point: wall_ms / sim_ips /
    gc_major_words for every (workload, tracked config) pair, tagged
    with a label (typically the PR).  [extra] fields (e.g. the sharded
    speedup table) are merged into the point.  Host-varying by
    nature. *)

val append_wall :
  ?extra:(string * Hb_obs.Json.t) list ->
  trajectory:Hb_obs.Json.t option ->
  label:string ->
  per_workload list ->
  Hb_obs.Json.t
(** The [BENCH_wall.json] document with a fresh {!wall_point} appended to
    [trajectory] (a previous document, or [None] to start a series).
    Raises [Hb_obs.Json.Parse_error] when [trajectory] is malformed. *)

val trend : ?band:float -> trajectory:Hb_obs.Json.t -> unit -> Hb_obs.Json.t
(** Deterministic point-to-point analysis of a committed wall-trajectory
    document ([BENCH_wall.json]): a pure function of the document, no
    fresh measurement.  The result
    ([{"bench":"hb-wall-trend","version":1,...}]) carries one step per
    consecutive pair of points with per-(workload, config) wall /
    sim_ips / gc_major_words deltas and a summary (geomean ratios,
    advisory-band breach count; [band] defaults to ±50%).  Advisory by
    construction — wall numbers are host-varying.  Raises
    [Hb_obs.Json.Parse_error] on a malformed trajectory. *)

val trend_table : ?band:float -> trajectory:Hb_obs.Json.t -> unit -> string
(** Human rendering of {!trend}: one summary line per step plus a
    per-entry table, band breaches flagged with [!]. *)

val wall_advisory :
  ?band:float ->
  trajectory:Hb_obs.Json.t ->
  per_workload list ->
  string list
(** Advisory notes comparing a fresh suite's wall times against the last
    recorded trajectory point; an empty list when everything sits inside
    the variance [band] (default ±50%).  Never a gate. *)
