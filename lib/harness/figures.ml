(** Regeneration of the paper's evaluation tables and figures as text
    tables (same rows/series as the paper; absolute values differ because
    the substrate is ours, the shape is what must match — see
    EXPERIMENTS.md). *)

module Encoding = Hardbound.Encoding
module Codegen = Hb_minic.Codegen
module Json = Hb_obs.Json

let pct f = Printf.sprintf "%5.1f%%" (100.0 *. f)

let bprintf = Printf.bprintf

(* Per-scheme averages used by several figures' summary rows. *)
let scheme_averages totals =
  List.filter_map
    (fun scheme ->
      match Hashtbl.find_opt totals scheme with
      | Some l -> Some (scheme, Suite.mean l)
      | None -> None)
    [ Encoding.Extern4; Encoding.Intern4; Encoding.Intern11 ]

(* ---- Figure 5: runtime overhead decomposition ------------------------ *)

let figure5 (suite : Suite.per_workload list) : string =
  let b = Buffer.create 4096 in
  bprintf b
    "Figure 5: runtime overhead of HardBound by pointer encoding\n\
     (segments are fractions of baseline cycles; paper averages: \
     extern-4 9%%, intern-4 7%%, intern-11 5%%)\n\n";
  bprintf b "%-10s %-10s %9s %9s %9s %9s %9s\n" "benchmark" "encoding"
    "setbound" "meta-uops" "meta-stall" "pollution" "TOTAL";
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (w : Suite.per_workload) ->
      List.iter
        (fun (scheme, r) ->
          let d = Run.decompose ~baseline:w.Suite.baseline r in
          bprintf b "%-10s %-10s %9s %9s %9s %9s %9s\n" w.Suite.name
            (Encoding.scheme_name scheme) (pct d.Run.seg_setbound)
            (pct d.Run.seg_meta_uops) (pct d.Run.seg_meta_stalls)
            (pct d.Run.seg_pollution) (pct d.Run.total_overhead);
          let cur =
            match Hashtbl.find_opt totals scheme with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace totals scheme (d.Run.total_overhead :: cur))
        (Suite.hb_runs w);
      bprintf b "\n")
    suite;
  List.iter
    (fun (scheme, avg) ->
      bprintf b "average overhead %-10s %s\n" (Encoding.scheme_name scheme)
        (pct avg))
    (scheme_averages totals);
  Buffer.contents b

let figure5_json (suite : Suite.per_workload list) : Json.t =
  let totals = Hashtbl.create 8 in
  let workloads =
    List.map
      (fun (w : Suite.per_workload) ->
        let encodings =
          List.map
            (fun (scheme, (r : Run.record)) ->
              let d = Run.decompose ~baseline:w.Suite.baseline r in
              (let cur =
                 match Hashtbl.find_opt totals scheme with
                 | Some l -> l
                 | None -> []
               in
               Hashtbl.replace totals scheme (d.Run.total_overhead :: cur));
              let segs =
                match Run.decomposition_json d with
                | Json.Obj kvs -> kvs
                | _ -> []
              in
              Json.Obj
                (("scheme", Json.String (Encoding.scheme_name scheme))
                 :: ("cycles", Json.Int r.Run.cycles)
                 :: ("baseline_cycles", Json.Int w.Suite.baseline.Run.cycles)
                 :: segs))
            (Suite.hb_runs w)
        in
        Json.Obj
          [
            ("name", Json.String w.Suite.name);
            ("encodings", Json.List encodings);
          ])
      suite
  in
  Json.Obj
    [
      ("experiment", Json.String "fig5");
      ("workloads", Json.List workloads);
      ( "average_overhead",
        Json.Obj
          (List.map
             (fun (s, avg) -> (Encoding.scheme_name s, Json.Float avg))
             (scheme_averages totals)) );
    ]

(* ---- Figure 6: memory overhead (distinct 4KB pages touched) ---------- *)

let figure6 (suite : Suite.per_workload list) : string =
  let b = Buffer.create 4096 in
  bprintf b
    "Figure 6: extra distinct user pages touched (fraction of baseline \
     data pages), split into tag and base/bound metadata\n\
     (paper averages: extern-4 55%%, intern-11 10%%)\n\n";
  bprintf b "%-10s %-10s %7s %9s %9s %9s\n" "benchmark" "encoding" "base-pg"
    "tag" "basebound" "TOTAL";
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (w : Suite.per_workload) ->
      let base_pages = w.Suite.baseline.Run.data_pages in
      List.iter
        (fun (scheme, (r : Run.record)) ->
          let fb = float_of_int base_pages in
          let tag = float_of_int r.Run.tag_pages /. fb in
          let bb = float_of_int r.Run.shadow_pages /. fb in
          let extra_data =
            float_of_int (r.Run.data_pages - base_pages) /. fb
          in
          let total = tag +. bb +. extra_data in
          bprintf b "%-10s %-10s %7d %9s %9s %9s\n" w.Suite.name
            (Encoding.scheme_name scheme) base_pages (pct tag) (pct bb)
            (pct total);
          let cur =
            match Hashtbl.find_opt totals scheme with Some l -> l | None -> []
          in
          Hashtbl.replace totals scheme (total :: cur))
        (Suite.hb_runs w);
      bprintf b "\n")
    suite;
  List.iter
    (fun (scheme, avg) ->
      bprintf b "average extra pages %-10s %s\n" (Encoding.scheme_name scheme)
        (pct avg))
    (scheme_averages totals);
  Buffer.contents b

let figure6_json (suite : Suite.per_workload list) : Json.t =
  let totals = Hashtbl.create 8 in
  let workloads =
    List.map
      (fun (w : Suite.per_workload) ->
        let base_pages = w.Suite.baseline.Run.data_pages in
        let fb = float_of_int base_pages in
        let encodings =
          List.map
            (fun (scheme, (r : Run.record)) ->
              let tag = float_of_int r.Run.tag_pages /. fb in
              let bb = float_of_int r.Run.shadow_pages /. fb in
              let extra_data =
                float_of_int (r.Run.data_pages - base_pages) /. fb
              in
              let total = tag +. bb +. extra_data in
              (let cur =
                 match Hashtbl.find_opt totals scheme with
                 | Some l -> l
                 | None -> []
               in
               Hashtbl.replace totals scheme (total :: cur));
              Json.Obj
                [
                  ("scheme", Json.String (Encoding.scheme_name scheme));
                  ("tag_pages", Json.Int r.Run.tag_pages);
                  ("shadow_pages", Json.Int r.Run.shadow_pages);
                  ("data_pages", Json.Int r.Run.data_pages);
                  ("tag_frac", Json.Float tag);
                  ("basebound_frac", Json.Float bb);
                  ("total_frac", Json.Float total);
                ])
            (Suite.hb_runs w)
        in
        Json.Obj
          [
            ("name", Json.String w.Suite.name);
            ("baseline_pages", Json.Int base_pages);
            ("encodings", Json.List encodings);
          ])
      suite
  in
  Json.Obj
    [
      ("experiment", Json.String "fig6");
      ("workloads", Json.List workloads);
      ( "average_extra_pages",
        Json.Obj
          (List.map
             (fun (s, avg) -> (Encoding.scheme_name s, Json.Float avg))
             (scheme_averages totals)) );
    ]

(* ---- Figure 7: comparison with software-only schemes ----------------- *)

let rel (r : Run.record) (baseline : Run.record) =
  float_of_int r.Run.cycles /. float_of_int baseline.Run.cycles

let figure7 (suite : Suite.per_workload list) : string =
  let b = Buffer.create 4096 in
  bprintf b
    "Figure 7: relative runtimes. 'paper:' columns are transcribed from \
     the publication (we cannot rerun their hardware or binaries); 'sim:' \
     columns are measured on our simulator with our reimplemented \
     baselines. Overheads over 20%% are the paper's bold cells.\n\n";
  bprintf b
    "%-10s | %9s %9s | %9s %9s | %9s %9s %9s | %9s %9s %9s\n" "benchmark"
    "paper:JK" "paper:CC" "sim:OT" "sim:SF" "paper:HB4e" "paper:HB4i"
    "paper:HB11" "sim:HB4e" "sim:HB4i" "sim:HB11";
  let acc = Hashtbl.create 16 in
  let note key v =
    let cur = match Hashtbl.find_opt acc key with Some l -> l | None -> [] in
    Hashtbl.replace acc key (v :: cur)
  in
  List.iter
    (fun (w : Suite.per_workload) ->
      let base = w.Suite.baseline in
      let sim_ot =
        match w.Suite.objtable with Some r -> rel r base | None -> nan
      in
      let sim_sf =
        match w.Suite.softfat with Some r -> rel r base | None -> nan
      in
      let h4e = rel w.Suite.hb_extern4 base in
      let h4i = rel w.Suite.hb_intern4 base in
      let h11 = rel w.Suite.hb_intern11 base in
      note "ot" sim_ot;
      note "sf" sim_sf;
      note "h4e" h4e;
      note "h4i" h4i;
      note "h11" h11;
      bprintf b
        "%-10s | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n"
        w.Suite.name
        (Paper_data.get Paper_data.jk_published w.Suite.name)
        (Paper_data.get Paper_data.ccured_published w.Suite.name)
        sim_ot sim_sf
        (Paper_data.get Paper_data.hardbound_extern4 w.Suite.name)
        (Paper_data.get Paper_data.hardbound_intern4 w.Suite.name)
        (Paper_data.get Paper_data.hardbound_intern11 w.Suite.name)
        h4e h4i h11)
    suite;
  let avg key = Suite.mean (Hashtbl.find acc key) in
  bprintf b
    "%-10s | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n"
    "Average" 1.13 1.26 (avg "ot") (avg "sf") 1.09 1.07 1.05 (avg "h4e")
    (avg "h4i") (avg "h11");
  bprintf b
    "\nShape check: HardBound average overhead < both software schemes: %b\n"
    (avg "h4e" < avg "ot" && avg "h4e" < avg "sf");
  Buffer.contents b

let figure7_json (suite : Suite.per_workload list) : Json.t =
  let acc = Hashtbl.create 16 in
  let note key v =
    if not (Float.is_nan v) then begin
      let cur =
        match Hashtbl.find_opt acc key with Some l -> l | None -> []
      in
      Hashtbl.replace acc key (v :: cur)
    end
  in
  let workloads =
    List.map
      (fun (w : Suite.per_workload) ->
        let base = w.Suite.baseline in
        let opt key = function
          | Some r ->
            let v = rel r base in
            note key v;
            Json.Float v
          | None -> Json.Null
        in
        let hb key r =
          let v = rel r base in
          note key v;
          Json.Float v
        in
        Json.Obj
          [
            ("name", Json.String w.Suite.name);
            ( "sim",
              Json.Obj
                [
                  ("objtable", opt "ot" w.Suite.objtable);
                  ("softfat", opt "sf" w.Suite.softfat);
                  ("hb_extern4", hb "h4e" w.Suite.hb_extern4);
                  ("hb_intern4", hb "h4i" w.Suite.hb_intern4);
                  ("hb_intern11", hb "h11" w.Suite.hb_intern11);
                ] );
            ( "paper",
              Json.Obj
                [
                  ( "jk",
                    Json.Float
                      (Paper_data.get Paper_data.jk_published w.Suite.name) );
                  ( "ccured",
                    Json.Float
                      (Paper_data.get Paper_data.ccured_published
                         w.Suite.name) );
                  ( "hb_extern4",
                    Json.Float
                      (Paper_data.get Paper_data.hardbound_extern4
                         w.Suite.name) );
                  ( "hb_intern4",
                    Json.Float
                      (Paper_data.get Paper_data.hardbound_intern4
                         w.Suite.name) );
                  ( "hb_intern11",
                    Json.Float
                      (Paper_data.get Paper_data.hardbound_intern11
                         w.Suite.name) );
                ] );
          ])
      suite
  in
  let avg key =
    match Hashtbl.find_opt acc key with
    | Some l -> Json.Float (Suite.mean l)
    | None -> Json.Null
  in
  Json.Obj
    [
      ("experiment", Json.String "fig7");
      ("workloads", Json.List workloads);
      ( "sim_averages",
        Json.Obj
          [
            ("objtable", avg "ot");
            ("softfat", avg "sf");
            ("hb_extern4", avg "h4e");
            ("hb_intern4", avg "h4i");
            ("hb_intern11", avg "h11");
          ] );
    ]

(* ---- Section 5.4 ablation: bounds-check micro-op ---------------------- *)

let uop_ablation_report () : string * Json.t =
  let rows =
    List.map
      (fun (w : Hb_workloads.Workloads.t) ->
        let base = Run.measure ~mode:Codegen.Nochecks w in
        let free = Run.measure ~mode:Codegen.Hardbound w in
        let charged =
          Run.measure ~checked_deref_uop:true ~mode:Codegen.Hardbound w
        in
        (w.name, rel free base -. 1.0, rel charged base -. 1.0))
      Hb_workloads.Workloads.all
  in
  let deltas = List.map (fun (_, o1, o2) -> o2 -. o1) rows in
  let b = Buffer.create 1024 in
  bprintf b
    "Section 5.4 ablation: charging one extra micro-op per bounds check of \
     an uncompressed pointer (paper: average +~3%%, max +10%% on tsp)\n\n";
  bprintf b "%-10s %12s %12s %9s\n" "benchmark" "parallel-chk" "uop-chk"
    "delta";
  List.iter
    (fun (name, o1, o2) ->
      bprintf b "%-10s %12s %12s %9s\n" name (pct o1) (pct o2)
        (pct (o2 -. o1)))
    rows;
  bprintf b "average delta %s\n" (pct (Suite.mean deltas));
  let json =
    Json.Obj
      [
        ("experiment", Json.String "uop");
        ( "workloads",
          Json.List
            (List.map
               (fun (name, o1, o2) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("parallel_check_overhead", Json.Float o1);
                     ("uop_check_overhead", Json.Float o2);
                     ("delta", Json.Float (o2 -. o1));
                   ])
               rows) );
        ("average_delta", Json.Float (Suite.mean deltas));
      ]
  in
  (Buffer.contents b, json)

let uop_ablation () = fst (uop_ablation_report ())

(* ---- Section 5.2: correctness sweep ----------------------------------- *)

let correctness_report () : string * Json.t =
  let b = Buffer.create 1024 in
  let open Hb_violations in
  let s = Runner.run_corpus () in
  bprintf b
    "Section 5.2: spatial-violation corpus under full HardBound\n\
     (paper: 286 pairs, all violations detected, no false positives)\n\n";
  bprintf b "cases:            %d\n" s.Runner.total;
  bprintf b "detected:         %d\n" s.Runner.detected;
  bprintf b "false positives:  %d\n" s.Runner.false_positives;
  if s.Runner.anomalies <> [] then begin
    bprintf b "ANOMALIES:\n";
    List.iter
      (fun (id, what) -> bprintf b "  %s: %s\n" id what)
      s.Runner.anomalies
  end
  else bprintf b "all violations detected, zero false positives\n";
  let json =
    Json.Obj
      [
        ("experiment", Json.String "correctness");
        ("cases", Json.Int s.Runner.total);
        ("detected", Json.Int s.Runner.detected);
        ("false_positives", Json.Int s.Runner.false_positives);
        ( "anomalies",
          Json.List
            (List.map
               (fun (id, what) ->
                 Json.Obj
                   [
                     ("id", Json.String id); ("what", Json.String what);
                   ])
               s.Runner.anomalies) );
      ]
  in
  (Buffer.contents b, json)

let correctness () = fst (correctness_report ())

(* ---- Section 3.2: malloc-only mode ------------------------------------ *)

let malloc_only_report () : string * Json.t =
  let b = Buffer.create 1024 in
  let open Hb_violations in
  let cases = Gen.all_cases () in
  let heap_non_sub =
    List.filter
      (fun c -> c.Gen.region = Gen.Heap && c.Gen.idiom <> Gen.Sub_object)
      cases
  in
  let non_heap =
    List.filter (fun c -> c.Gen.region <> Gen.Heap) cases
  in
  let sub_heap =
    List.filter
      (fun c -> c.Gen.region = Gen.Heap && c.Gen.idiom = Gen.Sub_object)
      cases
  in
  let count cases =
    let s = Runner.run_corpus ~mode:Codegen.Hardbound_malloc_only ~cases () in
    (s.Runner.detected, s.Runner.total, s.Runner.false_positives)
  in
  let d1, t1, f1 = count heap_non_sub in
  let d2, t2, f2 = count non_heap in
  let d3, t3, f3 = count sub_heap in
  bprintf b
    "Section 3.2: malloc-only instrumentation (legacy binaries, only the \
     allocator sets bounds)\n\n";
  bprintf b "heap violations (non-sub-object): %d/%d detected, %d FPs\n" d1 t1 f1;
  bprintf b "heap sub-object violations:       %d/%d detected (needs compiler), %d FPs\n"
    d3 t3 f3;
  bprintf b "stack/global violations:          %d/%d detected (out of scope), %d FPs\n"
    d2 t2 f2;
  let subset detected total fps =
    Json.Obj
      [
        ("detected", Json.Int detected);
        ("cases", Json.Int total);
        ("false_positives", Json.Int fps);
      ]
  in
  let json =
    Json.Obj
      [
        ("experiment", Json.String "malloc_only");
        ("heap_non_subobject", subset d1 t1 f1);
        ("heap_subobject", subset d3 t3 f3);
        ("stack_global", subset d2 t2 f2);
      ]
  in
  (Buffer.contents b, json)

let malloc_only () = fst (malloc_only_report ())

(* ---- Section 2.1: red-zone tripwire baseline --------------------------- *)

let redzone_report () : string * Json.t =
  let b = Buffer.create 1024 in
  let open Hb_violations in
  bprintf b
    "Section 2.1 baseline: red-zone tripwire (valid/invalid bit per word, \
     write checking).  The paper's point: 'large overflows may jump over \
     the tripwire ... these schemes cannot guarantee the detection of all \
     spatial violations.'\n\n";
  let heap_writes mag =
    List.filter
      (fun c ->
        c.Gen.region = Gen.Heap && c.Gen.access = Gen.Write
        && c.Gen.boundary = Gen.Upper && c.Gen.magnitude = mag
        && c.Gen.idiom <> Gen.Sub_object)
      (Gen.all_cases ())
  in
  let run_subset cases =
    let detected = ref 0 and missed = ref 0 and fps = ref 0 in
    List.iter
      (fun (c : Gen.case) ->
        let classify src =
          match
            Hb_runtime.Build.run ~tripwire:true ~mode:Codegen.Nochecks
              ~max_instrs:5_000_000 src
          with
          | Hb_cpu.Machine.Exited 0, _ -> `Clean
          | Hb_cpu.Machine.Temporal_violation _, _ -> `Detected
          | st, _ -> `Other (Hb_cpu.Machine.status_name st)
        in
        (match classify c.Gen.bad with
         | `Detected -> incr detected
         | `Clean -> incr missed
         | `Other _ -> incr missed);
        match classify c.Gen.good with
        | `Clean -> ()
        | _ -> incr fps)
      cases;
    (!detected, !missed, !fps)
  in
  let d1, m1, f1 = run_subset (heap_writes 1) in
  bprintf b
    "small-stride heap write overflows (1 element past): %d/%d detected, \
     %d false positives\n"
    d1 (d1 + m1) f1;
  let d2, m2, f2 = run_subset (heap_writes 16) in
  bprintf b
    "large-stride heap write overflows (16 elements past): %d/%d detected \
     (the rest jumped the red zone), %d false positives\n"
    d2 (d2 + m2) f2;
  (* overhead of the hardware-tracked validity bits on one benchmark *)
  let w = Hb_workloads.Workloads.find "treeadd" in
  let base = Run.measure ~mode:Codegen.Nochecks w in
  let status, m =
    Hb_runtime.Build.run ~tripwire:true ~mode:Codegen.Nochecks w.source
  in
  let overhead =
    match status with
    | Hb_cpu.Machine.Exited 0 ->
      let trip_cycles = Hb_cpu.Stats.cycles m.Hb_cpu.Machine.stats in
      let o = Run.ratio trip_cycles base.Run.cycles -. 1.0 in
      bprintf b
        "\nhardware-tracked validity bits on treeadd: %s overhead (write \
         checks only, MemTracker-style)\n"
        (pct o);
      Json.Float o
    | st ->
      bprintf b "treeadd under tripwire: %s\n"
        (Hb_cpu.Machine.status_name st);
      Json.Null
  in
  let subset detected total fps =
    Json.Obj
      [
        ("detected", Json.Int detected);
        ("cases", Json.Int total);
        ("false_positives", Json.Int fps);
      ]
  in
  let json =
    Json.Obj
      [
        ("experiment", Json.String "redzone");
        ("small_stride", subset d1 (d1 + m1) f1);
        ("large_stride", subset d2 (d2 + m2) f2);
        ("treeadd_overhead", overhead);
      ]
  in
  (Buffer.contents b, json)

let redzone () = fst (redzone_report ())

(* ---- Section 6.2: temporal extension ----------------------------------- *)

let temporal_report () : string * Json.t =
  let b = Buffer.create 1024 in
  let run src =
    let status, _ =
      Hb_runtime.Build.run ~temporal:true ~mode:Codegen.Hardbound src
    in
    Hb_cpu.Machine.status_name status
  in
  bprintf b
    "Section 6.2 extension: temporal tracking (per-word allocation state \
     piggybacked on HardBound's metadata)\n\n";
  let uaf = {|
int main() {
  int *p;
  p = (int*)malloc(16);
  p[0] = 1;
  free((char*)p);
  return p[0];
}
|}
  in
  let uninit = {|
int main() {
  int *p;
  p = (int*)malloc(16);
  return p[2];
}
|}
  in
  let ok = {|
int main() {
  int *p;
  p = (int*)malloc(16);
  p[0] = 41;
  p[0] = p[0] + 1;
  free((char*)p);
  p = (int*)malloc(16);
  p[1] = 1;
  return p[1] - 1;
}
|}
  in
  let s_uaf = run uaf and s_uninit = run uninit and s_ok = run ok in
  bprintf b "use-after-free:      %s\n" s_uaf;
  bprintf b "uninitialized read:  %s\n" s_uninit;
  bprintf b "correct program:     %s\n" s_ok;
  let json =
    Json.Obj
      [
        ("experiment", Json.String "temporal");
        ("use_after_free", Json.String s_uaf);
        ("uninitialized_read", Json.String s_uninit);
        ("correct_program", Json.String s_ok);
      ]
  in
  (Buffer.contents b, json)

let temporal () = fst (temporal_report ())
