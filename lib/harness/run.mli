(** Single-run measurement record: everything Figures 5, 6 and 7 need. *)

(** Host-side cost of producing one record (compile + simulate): wall
    nanoseconds and GC work.  Host-varying — kept out of {!record_json}
    and every byte-identical artifact; feeds the [hb_host_*] gauges and
    the advisory wall-time trajectory only. *)
type host_cost = {
  wall_ns : int;
  gc_minor_words : int;
  gc_major_words : int;
  gc_minor_gcs : int;
  gc_major_gcs : int;
}

type record = {
  workload : string;
  mode : Hb_minic.Codegen.mode;
  scheme : Hardbound.Encoding.scheme;
  output : string;
  instructions : int;
  uops : int;
  cycles : int;
  setbound_instrs : int;
  metadata_uops : int;
  check_uops : int;
  data_stalls : int;
  bb_stalls : int;
  tag_stalls : int;
  data_pages : int;   (** globals + heap + stack pages touched *)
  tag_pages : int;
  shadow_pages : int;
  ptr_loads_shadow : int;
  ptr_stores_shadow : int;
  host : host_cost;
}

val measure :
  ?scheme:Hardbound.Encoding.scheme ->
  ?checked_deref_uop:bool ->
  mode:Hb_minic.Codegen.mode ->
  Hb_workloads.Workloads.t ->
  record
(** Run one workload to completion under one configuration.  Fails if the
    program does not exit cleanly. *)

val ratio : int -> int -> float

(** Figure 5's decomposition of a HardBound run against its baseline, as
    fractions of baseline cycles.  The four segments sum exactly to
    [total_overhead]. *)
type decomposition = {
  seg_setbound : float;
  seg_meta_uops : float;
  seg_meta_stalls : float;
  seg_pollution : float;
  total_overhead : float;
}

val decompose : baseline:record -> record -> decomposition

val record_json : record -> Hb_obs.Json.t
(** Every measured *simulated* counter of one run as a flat JSON
    object.  Deliberately excludes {!host_cost} so the documents built
    from it stay byte-identical across runs. *)

val wall_ms : record -> float
val sim_ips : record -> float
(** Simulated instructions retired per host wall-clock second. *)

val sim_cps : record -> float
(** Simulated cycles per host wall-clock second. *)

val host_json : record -> Hb_obs.Json.t
(** The host-varying channel: wall_ms, sim_ips/sim_cps, GC work. *)

val decomposition_json : decomposition -> Hb_obs.Json.t
