(** Single-run measurement record: everything Figures 5, 6 and 7 need. *)

type record = {
  workload : string;
  mode : Hb_minic.Codegen.mode;
  scheme : Hardbound.Encoding.scheme;
  output : string;
  instructions : int;
  uops : int;
  cycles : int;
  setbound_instrs : int;
  metadata_uops : int;
  check_uops : int;
  data_stalls : int;
  bb_stalls : int;
  tag_stalls : int;
  data_pages : int;   (** globals + heap + stack pages touched *)
  tag_pages : int;
  shadow_pages : int;
  ptr_loads_shadow : int;
  ptr_stores_shadow : int;
}

val measure :
  ?scheme:Hardbound.Encoding.scheme ->
  ?checked_deref_uop:bool ->
  mode:Hb_minic.Codegen.mode ->
  Hb_workloads.Workloads.t ->
  record
(** Run one workload to completion under one configuration.  Fails if the
    program does not exit cleanly. *)

val ratio : int -> int -> float

(** Figure 5's decomposition of a HardBound run against its baseline, as
    fractions of baseline cycles.  The four segments sum exactly to
    [total_overhead]. *)
type decomposition = {
  seg_setbound : float;
  seg_meta_uops : float;
  seg_meta_stalls : float;
  seg_pollution : float;
  total_overhead : float;
}

val decompose : baseline:record -> record -> decomposition

val record_json : record -> Hb_obs.Json.t
(** Every measured counter of one run as a flat JSON object. *)

val decomposition_json : decomposition -> Hb_obs.Json.t
