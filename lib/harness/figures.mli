(** Regeneration of the paper's evaluation tables and figures as text
    tables and structured JSON (EXPERIMENTS.md tracks paper-vs-measured).

    The suite-driven figures take the shared {!Suite.collect} result and
    offer both renderings; the self-contained experiments come as
    [*_report] functions returning the text table together with its JSON
    form from a single measurement pass. *)

val figure5 : Suite.per_workload list -> string
(** Runtime overhead of HardBound by pointer encoding, decomposed into
    the paper's four segments. *)

val figure5_json : Suite.per_workload list -> Hb_obs.Json.t
(** Per-benchmark, per-encoding cycles and overhead decomposition. *)

val figure6 : Suite.per_workload list -> string
(** Extra distinct 4KB pages touched, split into tag and base/bound
    metadata. *)

val figure6_json : Suite.per_workload list -> Hb_obs.Json.t

val figure7 : Suite.per_workload list -> string
(** Comparison against the software-only schemes (published columns
    transcribed, simulated columns measured). *)

val figure7_json : Suite.per_workload list -> Hb_obs.Json.t

val uop_ablation : unit -> string
(** Section 5.4: charge one extra micro-op per bounds check of an
    uncompressed pointer. *)

val uop_ablation_report : unit -> string * Hb_obs.Json.t

val correctness : unit -> string
(** Section 5.2: full violation-corpus sweep. *)

val correctness_report : unit -> string * Hb_obs.Json.t

val malloc_only : unit -> string
(** Section 3.2: detection scope of the legacy-binary mode. *)

val malloc_only_report : unit -> string * Hb_obs.Json.t

val redzone : unit -> string
(** Section 2.1: red-zone tripwire baseline — detection and its gap. *)

val redzone_report : unit -> string * Hb_obs.Json.t

val temporal : unit -> string
(** Section 6.2: the temporal-tracking extension on micro-tests. *)

val temporal_report : unit -> string * Hb_obs.Json.t
