(** Recovery-policy matrix over the violation corpus: does every bad
    program still trap under every {!Hb_recover.Policy.t}, and how does
    each run terminate once the policy has handled the trap? *)

module Codegen := Hb_minic.Codegen
module Encoding := Hardbound.Encoding
module Gen := Hb_violations.Gen
module Policy := Hb_recover.Policy
module Recover := Hb_recover.Recover
module Json := Hb_obs.Json

(** Termination taxonomy for a supervised run (see the implementation
    notes for the full definitions). *)
type outcome_class =
  | Detected_abort  (** terminated with the violation status *)
  | Detected_survived  (** trap(s) absorbed, clean exit *)
  | Detected_impaired  (** trap(s) absorbed, then misbehaved *)
  | Missed  (** clean exit, no trap *)
  | Anomalous of string  (** no trap, yet did not exit cleanly *)

val class_name : outcome_class -> string

val supervised :
  ?scheme:Encoding.scheme ->
  ?mode:Codegen.mode ->
  ?max_instrs:int ->
  policy:Policy.t ->
  string ->
  Recover.outcome
(** Compile one MiniC source against the runtime and run it under the
    trap supervisor with the given policy (default knobs otherwise). *)

val classify : Recover.outcome -> outcome_class

type cell = {
  policy : Policy.t;
  total : int;
  detected : int;
  aborted : int;
  survived : int;
  impaired : int;
  missed : int;
  false_positives : int;
  traps : int;
  rollbacks : int;
  escalations : int;
  anomalies : (string * string) list;
}

val matrix :
  ?scheme:Encoding.scheme ->
  ?mode:Codegen.mode ->
  ?max_instrs:int ->
  ?cases:Gen.case list ->
  ?policies:Policy.t list ->
  unit ->
  cell list
(** Run every case's good and bad version under every policy; one cell
    per policy. *)

val all_detected : cell list -> bool
(** Every bad case trapped and no good case flagged, in every cell. *)

val to_table : cell list -> string
val to_json : cell list -> Json.t
