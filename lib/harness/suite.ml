(** Collects the full measurement matrix once; the figure printers read
    from it.  One baseline + three HardBound encodings + the two software
    baselines per Olden benchmark. *)

module Codegen = Hb_minic.Codegen
module Encoding = Hardbound.Encoding

type per_workload = {
  name : string;
  baseline : Run.record;
  hb_extern4 : Run.record;
  hb_intern4 : Run.record;
  hb_intern11 : Run.record;
  softfat : Run.record option;
  objtable : Run.record option;
}

let hb_runs w =
  List.map (fun r -> (r.Run.scheme, r))
    [ w.hb_extern4; w.hb_intern4; w.hb_intern11 ]

let collect ?(software = true) ?(progress = fun _ -> ()) () :
    per_workload list =
  List.map
    (fun (w : Hb_workloads.Workloads.t) ->
      progress w.name;
      let baseline = Run.measure ~mode:Codegen.Nochecks w in
      let hb scheme = Run.measure ~scheme ~mode:Codegen.Hardbound w in
      let sw mode = if software then Some (Run.measure ~mode w) else None in
      let r =
        {
          name = w.name;
          baseline;
          hb_extern4 = hb Encoding.Extern4;
          hb_intern4 = hb Encoding.Intern4;
          hb_intern11 = hb Encoding.Intern11;
          softfat = sw Codegen.Softfat;
          objtable = sw Codegen.Objtable;
        }
      in
      (* protection transparency: every instrumented run reproduced the
         baseline's output *)
      List.iter
        (fun (r' : Run.record) ->
          if r'.Run.output <> baseline.Run.output then
            Hb_error.fail ~component:"harness"
              "%s: output diverged under instrumentation" w.name)
        ([ r.hb_extern4; r.hb_intern4; r.hb_intern11 ]
        @ (match r.softfat with Some x -> [ x ] | None -> [])
        @ (match r.objtable with Some x -> [ x ] | None -> []));
      r)
    Hb_workloads.Workloads.all

let geo_mean xs =
  exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
