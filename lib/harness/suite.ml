(** Collects the full measurement matrix once; the figure printers read
    from it.  One baseline + three HardBound encodings + the two software
    baselines per Olden benchmark. *)

module Codegen = Hb_minic.Codegen
module Encoding = Hardbound.Encoding
module Host = Hb_obs.Host

type per_workload = {
  name : string;
  baseline : Run.record;
  hb_extern4 : Run.record;
  hb_intern4 : Run.record;
  hb_intern11 : Run.record;
  softfat : Run.record option;
  objtable : Run.record option;
}

let hb_runs w =
  List.map (fun r -> (r.Run.scheme, r))
    [ w.hb_extern4; w.hb_intern4; w.hb_intern11 ]

let collect ?(software = true) ?(progress = fun _ -> ()) () :
    per_workload list =
  List.map
    (fun (w : Hb_workloads.Workloads.t) ->
      progress w.name;
      Host.span (Printf.sprintf "workload:%s" w.name) @@ fun () ->
      let baseline = Run.measure ~mode:Codegen.Nochecks w in
      let hb scheme = Run.measure ~scheme ~mode:Codegen.Hardbound w in
      let sw mode = if software then Some (Run.measure ~mode w) else None in
      let r =
        {
          name = w.name;
          baseline;
          hb_extern4 = hb Encoding.Extern4;
          hb_intern4 = hb Encoding.Intern4;
          hb_intern11 = hb Encoding.Intern11;
          softfat = sw Codegen.Softfat;
          objtable = sw Codegen.Objtable;
        }
      in
      (* protection transparency: every instrumented run reproduced the
         baseline's output *)
      List.iter
        (fun (r' : Run.record) ->
          if r'.Run.output <> baseline.Run.output then
            Hb_error.fail ~component:"harness"
              "%s: output diverged under instrumentation" w.name)
        ([ r.hb_extern4; r.hb_intern4; r.hb_intern11 ]
        @ (match r.softfat with Some x -> [ x ] | None -> [])
        @ (match r.objtable with Some x -> [ x ] | None -> []));
      r)
    Hb_workloads.Workloads.all

let geo_mean xs =
  exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ---- performance-trajectory snapshot -------------------------------- *)

module Json = Hb_obs.Json

(* The configurations the committed baseline tracks.  Software baselines
   are excluded on purpose: they are comparison points, not the simulator
   surface this gate protects. *)
let snapshot_runs w =
  [
    ("baseline", w.baseline);
    ("hb-extern-4", w.hb_extern4);
    ("hb-intern-4", w.hb_intern4);
    ("hb-intern-11", w.hb_intern11);
  ]

(** Deterministic perf-trajectory snapshot of the suite: instructions,
    micro-ops and cycles for the baseline and each HardBound encoding of
    every workload.  Committed as [BENCH_hardbound.json] and compared by
    {!check_baseline} in CI. *)
let snapshot_json (suite : per_workload list) =
  Json.Obj
    [
      ( "workloads",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("name", Json.String w.name);
                   ( "runs",
                     Json.List
                       (List.map
                          (fun (config, (r : Run.record)) ->
                            Json.Obj
                              [
                                ("config", Json.String config);
                                ("instructions", Json.Int r.Run.instructions);
                                ("uops", Json.Int r.Run.uops);
                                ("cycles", Json.Int r.Run.cycles);
                              ])
                          (snapshot_runs w)) );
                 ])
             suite) );
    ]

let snap_fail fmt =
  Printf.ksprintf (fun m -> raise (Json.Parse_error ("baseline: " ^ m))) fmt

(* (workload, config) -> cycles of a parsed snapshot document. *)
let snapshot_cycles json =
  let tbl = Hashtbl.create 64 in
  let geti obj key =
    match Option.bind (Json.member key obj) Json.to_int with
    | Some v -> v
    | None -> snap_fail "missing int field %S" key
  in
  let gets obj key =
    match Json.member key obj with
    | Some (Json.String s) -> s
    | _ -> snap_fail "missing string field %S" key
  in
  let workloads =
    match Option.bind (Json.member "workloads" json) Json.to_list with
    | Some l -> l
    | None -> snap_fail "missing \"workloads\" list"
  in
  List.iter
    (fun w ->
      let name = gets w "name" in
      let runs =
        match Option.bind (Json.member "runs" w) Json.to_list with
        | Some l -> l
        | None -> snap_fail "%s: missing \"runs\" list" name
      in
      List.iter
        (fun r -> Hashtbl.replace tbl (name, gets r "config") (geti r "cycles"))
        runs)
    workloads;
  tbl

(** Compare a freshly measured suite against a committed snapshot
    document.  [Error] lists every (workload, config) whose cycle count
    drifted by more than [tolerance] (a fraction, default 2%) from the
    recorded value, and every pair the snapshot does not cover — an
    unexplained perf regression *or* an unrecorded improvement both fail,
    forcing the baseline update into the same change.  Raises
    {!Hb_obs.Json.Parse_error} when [baseline] is not a snapshot. *)
let check_baseline ?(tolerance = 0.02) ~baseline (suite : per_workload list) =
  let recorded = snapshot_cycles baseline in
  let drifts =
    List.concat_map
      (fun w ->
        List.filter_map
          (fun (config, (r : Run.record)) ->
            match Hashtbl.find_opt recorded (w.name, config) with
            | None ->
              Some
                (Printf.sprintf "%s/%s: not in the committed baseline" w.name
                   config)
            | Some expect ->
              let drift =
                if expect = 0 then (if r.Run.cycles = 0 then 0.0 else infinity)
                else
                  abs_float (float_of_int (r.Run.cycles - expect))
                  /. float_of_int expect
              in
              if drift > tolerance then
                Some
                  (Printf.sprintf
                     "%s/%s: cycles %d drifted %.2f%% from baseline %d \
                      (tolerance %.1f%%)"
                     w.name config r.Run.cycles (100.0 *. drift) expect
                     (100.0 *. tolerance))
              else None)
          (snapshot_runs w))
      suite
  in
  match drifts with [] -> Ok () | msgs -> Error msgs

(* ---- host wall-clock trajectory (advisory) -------------------------- *)

(* BENCH_wall.json is the host-varying sibling of BENCH_hardbound.json:
   an append-per-PR series of wall-clock / throughput points.  It is
   deliberately NOT a gate — wall time depends on the machine that ran
   it — so comparisons only ever produce advisory notes. *)

let wall_point ?(extra = []) ~label (suite : per_workload list) =
  Json.Obj
    ([
       ("label", Json.String label);
       ( "entries",
         Json.List
           (List.concat_map
              (fun w ->
                List.map
                  (fun (config, (r : Run.record)) ->
                    Json.Obj
                      [
                        ("workload", Json.String w.name);
                        ("config", Json.String config);
                        ("wall_ms", Json.Float (Run.wall_ms r));
                        ("sim_ips", Json.Float (Run.sim_ips r));
                        ( "gc_major_words",
                          Json.Int r.Run.host.Run.gc_major_words );
                      ])
                  (snapshot_runs w))
              suite) );
     ]
    @ extra)

let wall_points json =
  match Option.bind (Json.member "points" json) Json.to_list with
  | Some l -> l
  | None -> snap_fail "missing \"points\" list in wall trajectory"

let append_wall ?extra ~trajectory ~label (suite : per_workload list) =
  let prior = match trajectory with Some j -> wall_points j | None -> [] in
  Json.Obj
    [
      ("bench", Json.String "hb-wall-trajectory");
      ("version", Json.Int 1);
      ("points", Json.List (prior @ [ wall_point ?extra ~label suite ]));
    ]

let point_label p =
  match Json.member "label" p with
  | Some (Json.String s) -> s
  | _ -> snap_fail "wall point: missing \"label\""

let point_entries p =
  match Option.bind (Json.member "entries" p) Json.to_list with
  | Some l -> l
  | None -> snap_fail "wall point %S: missing \"entries\" list" (point_label p)

let jnum = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

(* ---- wall-trend analysis (advisory, point-to-point) ------------------ *)

(* One (workload, config) entry compared across two consecutive
   trajectory points. *)
type trend_row = {
  t_workload : string;
  t_config : string;
  t_wall0 : float;
  t_wall1 : float;
  t_wall_ratio : float;
  t_ips0 : float;
  t_ips1 : float;
  t_ips_ratio : float;
  t_gc0 : int;
  t_gc1 : int;
  t_breach : bool;
}

(* (workload, config) -> (wall_ms, sim_ips, gc_major_words) of a point;
   malformed entries are skipped (old points may predate a field). *)
let entry_map p =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match (Json.member "workload" e, Json.member "config" e) with
      | Some (Json.String w), Some (Json.String c) -> (
        match
          ( jnum (Json.member "wall_ms" e),
            jnum (Json.member "sim_ips" e),
            Option.bind (Json.member "gc_major_words" e) Json.to_int )
        with
        | Some wall, Some ips, Some gc -> Hashtbl.replace tbl (w, c) (wall, ips, gc)
        | _ -> ())
      | _ -> ())
    (point_entries p);
  tbl

(* (from point, to point) -> (from label, to label, rows in the "to"
   point's entry order, restricted to pairs present in both). *)
let trend_step ~band (a, b) =
  let prior = entry_map a in
  let rows =
    List.filter_map
      (fun e ->
        match (Json.member "workload" e, Json.member "config" e) with
        | Some (Json.String w), Some (Json.String c) -> (
          match
            ( Hashtbl.find_opt prior (w, c),
              jnum (Json.member "wall_ms" e),
              jnum (Json.member "sim_ips" e),
              Option.bind (Json.member "gc_major_words" e) Json.to_int )
          with
          | Some (wall0, ips0, gc0), Some wall1, Some ips1, Some gc1
            when wall0 > 0.0 ->
            let wall_ratio = wall1 /. wall0 in
            Some
              {
                t_workload = w;
                t_config = c;
                t_wall0 = wall0;
                t_wall1 = wall1;
                t_wall_ratio = wall_ratio;
                t_ips0 = ips0;
                t_ips1 = ips1;
                t_ips_ratio = (if ips0 > 0.0 then ips1 /. ips0 else 0.0);
                t_gc0 = gc0;
                t_gc1 = gc1;
                t_breach =
                  wall_ratio > 1.0 +. band || wall_ratio < 1.0 -. band;
              }
          | _ -> None)
        | _ -> None)
      (point_entries b)
  in
  (point_label a, point_label b, rows)

let rec consecutive = function
  | a :: (b :: _ as rest) -> (a, b) :: consecutive rest
  | _ -> []

let trend_steps ~band trajectory =
  List.map (trend_step ~band) (consecutive (wall_points trajectory))

let geo_or_one = function [] -> 1.0 | xs -> geo_mean xs

let step_summary rows =
  let breaches = List.length (List.filter (fun r -> r.t_breach) rows) in
  (* a zero-wall point (clock too coarse, or a hand-edited trajectory)
     would drive the geomean's log to -inf: ratios that are not positive
     contribute nothing, exactly like the ips filter below *)
  let wall_g =
    geo_or_one
      (List.filter_map
         (fun r -> if r.t_wall_ratio > 0.0 then Some r.t_wall_ratio else None)
         rows)
  in
  let ips_g =
    geo_or_one
      (List.filter_map
         (fun r -> if r.t_ips_ratio > 0.0 then Some r.t_ips_ratio else None)
         rows)
  in
  let gc_delta = List.fold_left (fun a r -> a + (r.t_gc1 - r.t_gc0)) 0 rows in
  (breaches, wall_g, ips_g, gc_delta)

(** Deterministic point-to-point analysis of a committed wall trajectory
    (a pure function of the document: no fresh measurement).  One step
    per consecutive pair of points; each step carries the per-
    (workload, config) wall / throughput / GC deltas and a summary with
    geomean ratios and the count of advisory-band breaches.  Advisory by
    construction — the underlying numbers are host-varying. *)
let trend ?(band = 0.5) ~trajectory () =
  let steps = trend_steps ~band trajectory in
  Json.Obj
    [
      ("bench", Json.String "hb-wall-trend");
      ("version", Json.Int 1);
      ("band", Json.Float band);
      ("points", Json.Int (List.length (wall_points trajectory)));
      ( "steps",
        Json.List
          (List.map
             (fun (from_l, to_l, rows) ->
               let breaches, wall_g, ips_g, gc_delta = step_summary rows in
               Json.Obj
                 [
                   ("from", Json.String from_l);
                   ("to", Json.String to_l);
                   ( "entries",
                     Json.List
                       (List.map
                          (fun r ->
                            Json.Obj
                              [
                                ("workload", Json.String r.t_workload);
                                ("config", Json.String r.t_config);
                                ("wall_ms_from", Json.Float r.t_wall0);
                                ("wall_ms_to", Json.Float r.t_wall1);
                                ("wall_ratio", Json.Float r.t_wall_ratio);
                                ("sim_ips_from", Json.Float r.t_ips0);
                                ("sim_ips_to", Json.Float r.t_ips1);
                                ("ips_ratio", Json.Float r.t_ips_ratio);
                                ("gc_major_words_from", Json.Int r.t_gc0);
                                ("gc_major_words_to", Json.Int r.t_gc1);
                                ( "gc_major_words_delta",
                                  Json.Int (r.t_gc1 - r.t_gc0) );
                                ("breach", Json.Bool r.t_breach);
                              ])
                          rows) );
                   ( "summary",
                     Json.Obj
                       [
                         ("entries", Json.Int (List.length rows));
                         ("breaches", Json.Int breaches);
                         ("wall_ratio_geomean", Json.Float wall_g);
                         ("ips_ratio_geomean", Json.Float ips_g);
                         ("gc_major_words_delta", Json.Int gc_delta);
                       ] );
                 ])
             steps) );
    ]

(** Human rendering of the same analysis: one summary line per step plus
    a per-entry table (band breaches flagged with [!]). *)
let trend_table ?(band = 0.5) ~trajectory () =
  let b = Buffer.create 1024 in
  let points = wall_points trajectory in
  Printf.bprintf b
    "wall trend: %d point%s, %d step%s, band \xc2\xb1%.0f%%  (advisory \
     \xe2\x80\x94 wall times are host-varying)\n"
    (List.length points)
    (if List.length points = 1 then "" else "s")
    (max 0 (List.length points - 1))
    (if List.length points = 2 then "" else "s")
    (100.0 *. band);
  let steps = trend_steps ~band trajectory in
  if steps = [] then
    Buffer.add_string b "  (fewer than two points: nothing to compare)\n"
  else
    List.iter
      (fun (from_l, to_l, rows) ->
        let breaches, wall_g, ips_g, gc_delta = step_summary rows in
        Printf.bprintf b
          "\n%s -> %s   entries %d   breaches %d   wall x%.2f (geomean)   \
           ips x%.2f   gc \xce\x94%+d words\n"
          from_l to_l (List.length rows) breaches wall_g ips_g gc_delta;
        Printf.bprintf b "  %-24s %22s %7s %7s %12s\n" "workload/config"
          "wall ms (from -> to)" "ratio" "ips x" "gc \xce\x94words";
        List.iter
          (fun r ->
            Printf.bprintf b "  %-24s %10.2f -> %-8.2f %7.2f %7.2f %+12d%s\n"
              (r.t_workload ^ "/" ^ r.t_config)
              r.t_wall0 r.t_wall1 r.t_wall_ratio r.t_ips_ratio
              (r.t_gc1 - r.t_gc0)
              (if r.t_breach then "  !" else ""))
          rows)
      steps;
  Buffer.contents b

(** Advisory comparison of a fresh suite against the last recorded
    trajectory point: per-config wall-time ratios outside the variance
    [band] (default ±50% — hosts differ) come back as human-readable
    notes.  Never an error: this trajectory is informational. *)
let wall_advisory ?(band = 0.5) ~trajectory (suite : per_workload list) =
  match List.rev (wall_points trajectory) with
  | [] -> []
  | last :: _ ->
    let prior = Hashtbl.create 64 in
    let entries =
      match Option.bind (Json.member "entries" last) Json.to_list with
      | Some l -> l
      | None -> snap_fail "wall point: missing \"entries\" list"
    in
    List.iter
      (fun e ->
        match
          ( Json.member "workload" e,
            Json.member "config" e,
            Json.member "wall_ms" e )
        with
        | Some (Json.String w), Some (Json.String c), Some (Json.Float ms)
          ->
          Hashtbl.replace prior (w, c) ms
        | _ -> ())
      entries;
    List.concat_map
      (fun w ->
        List.filter_map
          (fun (config, (r : Run.record)) ->
            match Hashtbl.find_opt prior (w.name, config) with
            | Some was when was > 0.0 ->
              let now = Run.wall_ms r in
              let ratio = now /. was in
              if ratio > 1.0 +. band || ratio < 1.0 -. band then
                Some
                  (Printf.sprintf
                     "%s/%s: wall %.2fms vs %.2fms last point (%.0f%%) — \
                      advisory only"
                     w.name config now was (100.0 *. ratio))
              else None
            | _ -> None)
          (snapshot_runs w))
      suite
