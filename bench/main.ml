(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) and runs Bechamel micro-benchmarks of the
   simulator's own hot paths.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --exp fig5   # one experiment
     dune exec bench/main.exe -- --list       # experiment index

   One Bechamel Test.make group corresponds to each paper table/figure:
   the group exercises the simulator paths that the experiment stresses. *)

module Figures = Hb_harness.Figures
module Suite = Hb_harness.Suite
module Run = Hb_harness.Run
module Codegen = Hb_minic.Codegen
module Encoding = Hardbound.Encoding
module Meta = Hardbound.Meta

let experiments =
  [
    ("fig5", "Figure 5: HardBound runtime overhead by encoding");
    ("fig6", "Figure 6: memory (pages) overhead by encoding");
    ("fig7", "Figure 7: comparison vs software-only schemes");
    ("correctness", "Section 5.2: violation corpus sweep");
    ("uop", "Section 5.4: bounds-check micro-op ablation");
    ("malloc_only", "Section 3.2: malloc-only legacy mode");
    ("redzone", "Section 2.1: red-zone tripwire baseline");
    ("temporal", "Section 6.2: temporal-tracking extension");
    ("fault", "Fault-injection campaigns: checker detection coverage");
    ("recover", "Recovery policies: corpus detection matrix + clean overhead");
    ("attr", "Per-PC attribution: top hotspots + differential overhead");
    ("timeline", "Timeline: windowed phase samples + shadow census");
    ("flame", "Calling-context profiles: exclusive-sum identity per encoding");
    ("host", "Host profiling: wall time / sim throughput / GC per config");
    ("shard", "Sharded campaign engine: speedup vs worker count, \
               byte-identical merge");
    ("serve", "Simulation daemon: job round-trip latency, service \
               overhead vs direct campaign, byte-identical reports");
    ("bechamel", "Micro-benchmarks of the simulator itself");
  ]

let banner title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title
    (String.make 72 '=')

module Json = Hb_obs.Json

(* The suite (36+ simulated runs) is collected once and shared by the
   figures that read it. *)
let suite =
  lazy
    (Suite.collect
       ~progress:(fun name -> Printf.eprintf "[suite] running %s...\n%!" name)
       ())

(* Structured results accumulated for --json FILE, one entry per
   experiment run. *)
let json_results : (string * Json.t) list ref = ref []

let note_json name j = json_results := (name, j) :: !json_results

(* The shard experiment's speedup block, merged into the wall-trajectory
   point when --wall-append runs in the same invocation (wall-clock
   numbers belong on the host-varying channel, never in the gated
   simulated-cycle artifacts). *)
let shard_extra : (string * Json.t) list ref = ref []

let rec run_experiment name =
  match name with
  | "fig5" ->
    banner "Figure 5";
    print_string (Figures.figure5 (Lazy.force suite));
    note_json name (Figures.figure5_json (Lazy.force suite))
  | "fig6" ->
    banner "Figure 6";
    print_string (Figures.figure6 (Lazy.force suite));
    note_json name (Figures.figure6_json (Lazy.force suite))
  | "fig7" ->
    banner "Figure 7";
    print_string (Figures.figure7 (Lazy.force suite));
    note_json name (Figures.figure7_json (Lazy.force suite))
  | "correctness" ->
    banner "Section 5.2 correctness";
    let text, j = Figures.correctness_report () in
    print_string text;
    note_json name j
  | "uop" ->
    banner "Section 5.4 uop ablation";
    let text, j = Figures.uop_ablation_report () in
    print_string text;
    note_json name j
  | "malloc_only" ->
    banner "Section 3.2 malloc-only";
    let text, j = Figures.malloc_only_report () in
    print_string text;
    note_json name j
  | "redzone" ->
    banner "Section 2.1 red-zone tripwire";
    let text, j = Figures.redzone_report () in
    print_string text;
    note_json name j
  | "temporal" ->
    banner "Section 6.2 temporal extension";
    let text, j = Figures.temporal_report () in
    print_string text;
    note_json name j
  | "fault" ->
    banner "Fault-injection campaigns (hb_fault)";
    let module Campaign = Hb_fault.Campaign in
    let cfg =
      { Campaign.default with
        Campaign.runs = 150;
        seed = 2008;
        keep_run_records = false }
    in
    let reports =
      List.map
        (fun wl ->
          Printf.eprintf "[fault] campaign on %s...\n%!" wl;
          let r = Hb_harness.Resilience.campaign cfg wl in
          Printf.printf "%s: golden %s, %d instrs, %d runs\n%s\n" wl
            r.Campaign.golden_status r.Campaign.golden_instrs
            (List.length r.Campaign.records)
            (Campaign.coverage_table r);
          (wl, Campaign.to_json r))
        [ "power"; "perimeter" ]
    in
    note_json name (Json.Obj reports)
  | "recover" ->
    banner "Recovery policies (hb_recover)";
    let module Policy = Hb_recover.Policy in
    let module Recover = Hb_recover.Recover in
    let module Recovery = Hb_harness.Recovery in
    let module Machine = Hb_cpu.Machine in
    (* Detection matrix on a corpus sample: every 3rd case keeps the
       experiment under a minute while still crossing every idiom. *)
    let all = Hb_violations.Gen.all_cases () in
    let cases = List.filteri (fun i _ -> i mod 3 = 0) all in
    Printf.eprintf "[recover] matrix on %d of %d corpus cases x %d policies...\n%!"
      (List.length cases) (List.length all) (List.length Policy.all);
    let cells = Recovery.matrix ~cases () in
    print_string (Recovery.to_table cells);
    if not (Recovery.all_detected cells) then
      Hb_error.fail ~component:"bench"
        "recovery matrix: a bad case went undetected or a good case trapped";
    (* Clean-run overhead: a trap-free workload must cost exactly the
       same cycles under every policy — the supervisor only acts when a
       trap fires, so the default abort path's baseline is untouched. *)
    let treeadd = Hb_workloads.Workloads.find "treeadd" in
    let mode = Codegen.Hardbound in
    let image, globals = Hb_runtime.Build.compile ~mode treeadd.source in
    let clean_cycles policy =
      let config = Hb_runtime.Build.config_for ~scheme:Encoding.Extern4 mode in
      let m = Machine.create ~config ~globals image in
      let o =
        Recover.run ~line_base:Hb_runtime.Build.runtime_lines
          ~config:(Policy.with_policy policy) m
      in
      (match o.Recover.status with
       | Machine.Exited 0 when o.Recover.traps = [] -> ()
       | _ ->
         Hb_error.fail ~component:"bench" "treeadd not clean under %s: %s"
           (Policy.name policy) (Recover.summary o));
      Hb_cpu.Stats.cycles m.Machine.stats
    in
    let overhead = List.map (fun p -> (p, clean_cycles p)) Policy.all in
    Printf.printf "\nclean-run cycles (treeadd, extern-4) by policy:\n";
    List.iter
      (fun (p, c) -> Printf.printf "  %-10s %d\n" (Policy.name p) c)
      overhead;
    (match overhead with
     | (_, c0) :: rest ->
       if not (List.for_all (fun (_, c) -> c = c0) rest) then
         Hb_error.fail ~component:"bench"
           "recovery policies perturbed a trap-free run's cycle count"
     | [] -> ());
    note_json name
      (Json.Obj
         [
           ("matrix", Recovery.to_json cells);
           ( "clean_cycles",
             Json.Obj
               (List.map
                  (fun (p, c) -> (Policy.name p, Json.Int c))
                  overhead) );
         ])
  | "attr" ->
    banner "Per-PC attribution: hotspots and differential overhead";
    let module Machine = Hb_cpu.Machine in
    let module Attr = Hb_obs.Attr in
    let module Diff = Hb_obs.Diff in
    (* One attributed run; the attribution must reconcile with the global
       counters or the experiment itself is untrustworthy. *)
    let run_attr ~mode ~scheme (wl : Hb_workloads.Workloads.t) =
      let image, globals = Hb_runtime.Build.compile ~mode wl.source in
      let config = Hb_runtime.Build.config_for ~scheme mode in
      let m = Machine.create ~config ~globals image in
      Machine.enable_attr ~line_base:Hb_runtime.Build.runtime_lines m;
      (match Machine.run m with
       | Machine.Exited 0 -> ()
       | st ->
         Hb_error.fail ~component:"bench" "%s did not exit cleanly: %s"
           wl.name (Machine.status_name st));
      let a = Option.get (Machine.attr m) in
      (match Attr.check a ~expect:(Hb_cpu.Stats.fields m.Machine.stats) with
       | Ok () -> ()
       | Error msg -> Hb_error.fail ~component:"bench" "%s: %s" wl.name msg);
      a
    in
    let label wl cfg = Printf.sprintf "%s/%s" wl cfg in
    let dump lbl a =
      Diff.of_json (Attr.to_json ~meta:[ ("label", Json.String lbl) ] a)
    in
    let reports =
      List.map
        (fun (wl : Hb_workloads.Workloads.t) ->
          Printf.eprintf "[attr] attributing %s...\n%!" wl.name;
          let base =
            run_attr ~mode:Codegen.Nochecks ~scheme:Encoding.Uncompressed wl
          in
          let hb =
            run_attr ~mode:Codegen.Hardbound ~scheme:Encoding.Intern4 wl
          in
          let report =
            Diff.diff
              (dump (label wl.name "baseline") base)
              (dump (label wl.name "hb-intern-4") hb)
          in
          Printf.printf "---- %s: top sites under hardbound/intern-4 ----\n"
            wl.name;
          print_string (Attr.to_table ~top:10 hb);
          print_newline ();
          print_string (Diff.to_table ~top:10 report);
          print_newline ();
          (wl.name, Diff.to_json report))
        Hb_workloads.Workloads.all
    in
    note_json name (Json.Obj reports)
  | "timeline" ->
    banner "Timeline: windowed phase samples + shadow-metadata census";
    let module Machine = Hb_cpu.Machine in
    let module Timeline = Hb_obs.Timeline in
    (* One sampled run per workload; each must satisfy the window-sum
       identity (deltas reconcile with the global counters) or the
       telemetry itself is untrustworthy. *)
    let run_timeline (wl : Hb_workloads.Workloads.t) =
      let mode = Codegen.Hardbound in
      let image, globals = Hb_runtime.Build.compile ~mode wl.source in
      let config = Hb_runtime.Build.config_for ~scheme:Encoding.Extern4 mode in
      let m = Machine.create ~config ~globals image in
      Machine.enable_timeline ~interval:10_000 m;
      (match Machine.run m with
       | Machine.Exited 0 -> ()
       | st ->
         Hb_error.fail ~component:"bench" "%s did not exit cleanly: %s"
           wl.name (Machine.status_name st));
      Machine.timeline_flush m;
      let tl = Option.get (Machine.timeline m) in
      (match Timeline.check tl ~expect:(Machine.timeline_fields m) with
       | Ok () -> ()
       | Error msg -> Hb_error.fail ~component:"bench" "%s: %s" wl.name msg);
      tl
    in
    let reports =
      List.map
        (fun (wl : Hb_workloads.Workloads.t) ->
          Printf.eprintf "[timeline] sampling %s...\n%!" wl.name;
          let tl = run_timeline wl in
          let windows = Timeline.windows tl in
          Printf.printf "%s: %d windows of %d cycles\n" wl.name
            (List.length windows) (Timeline.interval tl);
          if wl.name = "treeadd" then print_string (Timeline.report tl);
          ( wl.name,
            Json.Obj
              [
                ("windows", Json.Int (List.length windows));
                ("sums", Json.Obj
                   (List.map
                      (fun (k, v) -> (k, Json.Int v))
                      (Timeline.sums tl)));
              ] ))
        Hb_workloads.Workloads.all
    in
    note_json name (Json.Obj reports)
  | "flame" ->
    banner "Calling-context profiles: exclusive-sum identity";
    let module Machine = Hb_cpu.Machine in
    let module Flame = Hb_obs.Flame in
    (* Every workload under every encoding: the calling-context tree's
       exclusive sums must reconcile with the global counters exactly, or
       the profiler's attribution is untrustworthy.  Compile once per
       workload; the image is encoding-independent. *)
    let mode = Codegen.Hardbound in
    let reports =
      List.map
        (fun (wl : Hb_workloads.Workloads.t) ->
          Printf.eprintf "[flame] profiling %s...\n%!" wl.name;
          let image, globals = Hb_runtime.Build.compile ~mode wl.source in
          let per_scheme =
            List.map
              (fun scheme ->
                let config = Hb_runtime.Build.config_for ~scheme mode in
                let m = Hb_cpu.Machine.create ~config ~globals image in
                Machine.enable_flame m;
                (match Machine.run m with
                 | Machine.Exited 0 -> ()
                 | st ->
                   Hb_error.fail ~component:"bench"
                     "%s did not exit cleanly: %s" wl.name
                     (Machine.status_name st));
                let cct = Option.get (Machine.flame m) in
                (match
                   Flame.check cct
                     ~expect:(Hb_cpu.Stats.fields m.Hb_cpu.Machine.stats)
                 with
                 | Ok () -> ()
                 | Error msg ->
                   Hb_error.fail ~component:"bench" "%s/%s: %s" wl.name
                     (Encoding.scheme_name scheme) msg);
                ( Encoding.scheme_name scheme,
                  Json.Obj
                    [
                      ("contexts", Json.Int (Flame.contexts cct));
                      ("max_depth", Json.Int (Flame.max_depth_seen cct));
                      ("truncations", Json.Int (Flame.truncations cct));
                    ] ))
              Encoding.all_schemes
          in
          Printf.printf "%-12s identity holds under %d encoding(s)\n" wl.name
            (List.length per_scheme);
          (wl.name, Json.Obj per_scheme))
        Hb_workloads.Workloads.all
    in
    note_json name (Json.Obj reports)
  | "host" ->
    banner "Host profiling: wall-clock cost of the measurement matrix";
    (* Host-varying numbers by nature — printed and reported through the
       host channel (Run.host_json / the wall trajectory), never through
       the simulated-cycle artifacts. *)
    let s = Lazy.force suite in
    Printf.printf "%-12s %-14s %10s %14s %14s %12s\n" "workload" "config"
      "wall ms" "sim instrs/s" "sim cycles/s" "gc major w";
    List.iter
      (fun (w : Suite.per_workload) ->
        List.iter
          (fun (config, (r : Run.record)) ->
            Printf.printf "%-12s %-14s %10.2f %14.0f %14.0f %12d\n"
              w.Suite.name config (Run.wall_ms r) (Run.sim_ips r)
              (Run.sim_cps r) r.Run.host.Run.gc_major_words)
          (Suite.snapshot_runs w))
      s;
    let wall ms = List.fold_left ( +. ) 0.0 ms in
    let total =
      wall
        (List.concat_map
           (fun w ->
             List.map (fun (_, r) -> Run.wall_ms r) (Suite.snapshot_runs w))
           s)
    in
    Printf.printf "\ntotal measured wall time: %.1f ms across %d runs\n"
      total
      (List.length s * 4);
    note_json name (Suite.wall_point ~label:"bench" s)
  | "shard" ->
    banner "Sharded campaign engine: speedup by worker count";
    (* Wall-clock speedup of the forked supervised engine over the serial
       runner, plus the property the engine is really about: the merged
       report must be byte-identical to the serial one at every worker
       count.  Speedup tracks physical cores — on a single-core host the
       honest answer is ~1x — and the numbers go to the advisory wall
       trajectory, never a gate. *)
    let module Campaign = Hb_fault.Campaign in
    let module Clock = Hb_obs.Clock in
    let wl = "power" in
    let cfg = { Campaign.default with Campaign.runs = 40; seed = 7 } in
    let cores = Domain.recommended_domain_count () in
    let time f =
      let t0 = Clock.now_ns () in
      let r = f () in
      (r, Clock.elapsed_s ~t0)
    in
    Printf.eprintf "[shard] serial reference (%d runs on %s)...\n%!"
      cfg.Campaign.runs wl;
    let serial, serial_s =
      time (fun () -> Hb_harness.Resilience.campaign cfg wl)
    in
    let serial_doc = Json.to_string (Campaign.to_json serial) in
    Printf.printf "workload %s, %d runs, seed %d (host: %d core(s))\n\n" wl
      cfg.Campaign.runs cfg.Campaign.seed cores;
    Printf.printf "%-6s %10s %10s %10s\n" "jobs" "wall s" "speedup"
      "identical";
    Printf.printf "%-6s %10.2f %10s %10s\n" "serial" serial_s "-" "-";
    let rows =
      List.map
        (fun jobs ->
          Printf.eprintf "[shard] --jobs %d...\n%!" jobs;
          let shard_cfg =
            { Hb_shard.Supervisor.default with Hb_shard.Supervisor.jobs }
          in
          let report, secs =
            time (fun () ->
                Hb_harness.Resilience.sharded_campaign ~shard_cfg cfg wl)
          in
          if Json.to_string (Campaign.to_json report) <> serial_doc then
            Hb_error.fail ~component:"bench"
              "sharded report diverged from serial at --jobs %d" jobs;
          let speedup = if secs > 0.0 then serial_s /. secs else 0.0 in
          Printf.printf "%-6d %10.2f %9.2fx %10s\n" jobs secs speedup "yes";
          (jobs, secs, speedup))
        [ 1; 2; 4; 8 ]
    in
    let shard_json =
      Json.Obj
        [
          ("workload", Json.String wl);
          ("runs", Json.Int cfg.Campaign.runs);
          ("seed", Json.Int cfg.Campaign.seed);
          ("cores", Json.Int cores);
          ("serial_wall_s", Json.Float serial_s);
          ( "points",
            Json.List
              (List.map
                 (fun (jobs, secs, speedup) ->
                   Json.Obj
                     [
                       ("jobs", Json.Int jobs);
                       ("wall_s", Json.Float secs);
                       ("speedup", Json.Float speedup);
                       ("identical", Json.Bool true);
                     ])
                 rows) );
        ]
    in
    note_json name shard_json;
    shard_extra := [ ("shard", shard_json) ]
  | "serve" ->
    banner "Simulation daemon: service overhead over direct campaigns";
    (* The daemon's whole deal is that serving a job costs bytes-wise
       nothing: the report a worker journals must equal the direct
       in-process campaign's byte for byte (a divergence fails the
       experiment).  The wall numbers — queue round-trip latency vs the
       direct run — are host-varying and advisory. *)
    let module Campaign = Hb_fault.Campaign in
    let module Clock = Hb_obs.Clock in
    let module Proto = Hb_serve.Proto in
    let module Queue = Hb_serve.Queue in
    let module Daemon = Hb_serve.Daemon in
    let specs =
      List.map
        (fun (wl, seed) ->
          { Proto.default with Proto.workload = wl; runs = 2; seed })
        [ ("power", 1); ("power", 2); ("perimeter", 3) ]
    in
    let time f =
      let t0 = Clock.now_ns () in
      let r = f () in
      (r, Clock.elapsed_s ~t0)
    in
    let direct spec =
      let image, globals =
        Hb_runtime.Build.compile ~mode:spec.Proto.mode (Proto.source spec)
      in
      let config =
        Hb_runtime.Build.config_for ~scheme:spec.Proto.scheme ~temporal:false
          ~max_instrs:Hb_runtime.Build.default_fuel spec.Proto.mode
      in
      Hardbound.Checker.reset_tally ();
      let mk () = Hb_cpu.Machine.create ~config ~globals image in
      Campaign.run ~mk (Proto.campaign_config spec)
    in
    Printf.eprintf "[serve] direct reference campaigns...\n%!";
    let directs =
      List.map
        (fun spec ->
          let report, secs = time (fun () -> direct spec) in
          (Json.to_string_pretty (Campaign.to_json report) ^ "\n", secs))
        specs
    in
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hb_bench_serve_%d" (Unix.getpid ()))
    in
    let rec rm p =
      if Sys.file_exists p then
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
    in
    rm dir;
    Printf.eprintf "[serve] daemon round trips...\n%!";
    let d = Daemon.start (Daemon.default ~port:0 ~dir) in
    let lat, total_s =
      Fun.protect
        ~finally:(fun () -> Daemon.stop d)
        (fun () ->
          time (fun () ->
              List.map
                (fun spec ->
                  let job, secs =
                    time (fun () ->
                        let job =
                          Queue.submit (Daemon.queue d) ~spec
                        in
                        let rec wait () =
                          match job.Queue.state with
                          | Queue.Done -> job
                          | Queue.Poisoned r | Queue.Failed r ->
                            Hb_error.fail ~component:"bench"
                              "daemon job died: %s" r
                          | _ ->
                            Unix.sleepf 0.02;
                            wait ()
                        in
                        wait ())
                  in
                  let got =
                    let path =
                      Filename.concat
                        (Queue.job_dir (Daemon.queue d) job.Queue.id)
                        "report.json"
                    in
                    let ic = open_in_bin path in
                    let n = in_channel_length ic in
                    let s = really_input_string ic n in
                    close_in ic;
                    s
                  in
                  (job.Queue.id, secs, got))
                specs))
    in
    rm dir;
    Printf.printf "%-6s %-10s %10s %10s %10s\n" "job" "workload" "direct s"
      "daemon s" "identical";
    let rows =
      List.map2
        (fun ((id, daemon_s, got), spec) (expect, direct_s) ->
          if got <> expect then
            Hb_error.fail ~component:"bench"
              "daemon report diverged from the direct campaign for job j%d"
              id;
          Printf.printf "%-6s %-10s %10.2f %10.2f %10s\n"
            (Printf.sprintf "j%d" id)
            spec.Proto.workload direct_s daemon_s "yes";
          (id, spec.Proto.workload, direct_s, daemon_s))
        (List.map2 (fun a b -> (a, b)) lat specs)
        directs
    in
    Printf.printf "\n%d jobs through the daemon in %.2f s wall\n"
      (List.length specs) total_s;
    note_json name
      (Json.Obj
         [
           ("experiment", Json.String "serve");
           ("jobs", Json.Int (List.length specs));
           ("total_wall_s", Json.Float total_s);
           ( "points",
             Json.List
               (List.map
                  (fun (id, wl, direct_s, daemon_s) ->
                    Json.Obj
                      [
                        ("job", Json.Int id);
                        ("workload", Json.String wl);
                        ("direct_wall_s", Json.Float direct_s);
                        ("daemon_wall_s", Json.Float daemon_s);
                        ("identical", Json.Bool true);
                      ])
                  rows) );
         ])
  | "bechamel" -> bechamel ()
  | other ->
    Printf.eprintf "unknown experiment %s; use --list\n" other;
    exit 1

(* ---- Bechamel micro-benchmarks ---------------------------------------- *)

and bechamel () =
  banner "Bechamel micro-benchmarks (simulator hot paths)";
  let open Bechamel in
  let open Toolkit in
  (* Figure 5's machinery: encode/decode and a full HardBound step loop *)
  let meta = Meta.make ~base:0x100000 ~size:16 in
  let enc_test scheme =
    Test.make
      ~name:("encode+decode " ^ Encoding.scheme_name scheme)
      (Staged.stage (fun () ->
           match Encoding.encode scheme ~value:0x100000 meta with
           | Encoding.Enc_inline { word; tag; aux } ->
             ignore (Encoding.decode scheme ~word ~tag ~aux)
           | Encoding.Enc_shadow { word; tag } ->
             ignore (Encoding.decode scheme ~word ~tag ~aux:0)
           | Encoding.Enc_non_pointer w ->
             ignore (Encoding.decode scheme ~word:w ~tag:0 ~aux:0)))
  in
  (* Figure 4's tag cache: hierarchy accesses *)
  let hier =
    Hb_cache.Hierarchy.create (Hb_cache.Hierarchy.default_params ~tag_bits:1)
  in
  let counter = ref 0 in
  let cache_test =
    Test.make ~name:"hierarchy access (data+tag)"
      (Staged.stage (fun () ->
           incr counter;
           let a = 0x100000 + (!counter * 4 land 0xFFFF) in
           ignore (Hb_cache.Hierarchy.access hier Hb_cache.Hierarchy.Data a);
           ignore
             (Hb_cache.Hierarchy.access hier Hb_cache.Hierarchy.Tag_meta a)))
  in
  (* whole-machine throughput on treeadd, baseline vs hardbound *)
  let treeadd = Hb_workloads.Workloads.find "treeadd" in
  let mk_machine ?(attr = false) ?(timeline = false) mode =
    let image, globals = Hb_runtime.Build.compile ~mode treeadd.source in
    fun () ->
      let config = Hb_runtime.Build.config_for mode in
      let m = Hb_cpu.Machine.create ~config ~globals image in
      if attr then
        Hb_cpu.Machine.enable_attr ~line_base:Hb_runtime.Build.runtime_lines m;
      if timeline then Hb_cpu.Machine.enable_timeline ~interval:10_000 m;
      (* run a slice: enough to measure steady-state step cost *)
      (try
         for _ = 1 to 200_000 do
           Hb_cpu.Machine.step m
         done
       with _ -> ());
      ()
  in
  let machine_tests =
    [
      Test.make ~name:"machine 200k steps (baseline)"
        (Staged.stage (mk_machine Codegen.Nochecks));
      Test.make ~name:"machine 200k steps (hardbound)"
        (Staged.stage (mk_machine Codegen.Hardbound));
      (* the attribution-off guarantee's counterpart: how much turning it
         ON costs relative to the row above *)
      Test.make ~name:"machine 200k steps (hardbound+attr)"
        (Staged.stage (mk_machine ~attr:true Codegen.Hardbound));
      (* ditto for sampling: the cost of the per-window census *)
      Test.make ~name:"machine 200k steps (hardbound+timeline)"
        (Staged.stage (mk_machine ~timeline:true Codegen.Hardbound));
    ]
  in
  let compile_test =
    Test.make ~name:"compile treeadd (full pipeline)"
      (Staged.stage (fun () ->
           ignore (Hb_runtime.Build.compile ~mode:Codegen.Hardbound
                     treeadd.source)))
  in
  let grouped =
    Test.make_grouped ~name:"hardbound"
      ([ enc_test Encoding.Uncompressed; enc_test Encoding.Extern4;
         enc_test Encoding.Intern4; enc_test Encoding.Intern11; cache_test;
         compile_test ]
      @ machine_tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort compare rows in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "%-48s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-48s %12s\n" name "n/a")
    rows;
  note_json "bechamel"
    (Json.Obj
       [
         ("experiment", Json.String "bechamel");
         ( "ns_per_run",
           Json.Obj
             (List.map
                (fun (name, ols_result) ->
                  ( name,
                    match Analyze.OLS.estimates ols_result with
                    | Some (est :: _) -> Json.Float est
                    | _ -> Json.Null ))
                rows) );
       ])

let write_json path =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (Json.Obj (List.rev !json_results)));
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "[bench] wrote %s\n%!" path

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.of_string s

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* peel off a `KEY FILE` option pair anywhere in the args *)
  let split_opt key args =
    let rec go acc = function
      | k :: path :: rest when k = key -> (Some path, List.rev_append acc rest)
      | x :: rest -> go (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let json_path, args = split_opt "--json" args in
  let baseline_write, args = split_opt "--baseline-write" args in
  let baseline_path, args = split_opt "--baseline" args in
  let wall_append, args = split_opt "--wall-append" args in
  let wall_label, args = split_opt "--wall-label" args in
  let trend_path, args = split_opt "--trend" args in
  let trend_json, args = split_opt "--trend-json" args in
  let gating =
    baseline_write <> None || baseline_path <> None || wall_append <> None
    || trend_path <> None
  in
  (match args with
   | [ "--list" ] ->
     List.iter (fun (k, d) -> Printf.printf "%-12s %s\n" k d) experiments
   | [ "--exp"; name ] -> run_experiment name
   | [] when gating -> ()
   | [] -> List.iter (fun (k, _) -> run_experiment k) experiments
   | _ ->
     prerr_endline
       "usage: main.exe [--list | --exp <name>] [--json FILE] \
        [--baseline FILE] [--baseline-write FILE] [--wall-append FILE] \
        [--wall-label LABEL] [--trend FILE [--trend-json OUT]]";
     exit 1);
  (* Wall-trend analysis of a committed trajectory: a pure function of
     the document (no suite collection), so it runs standalone in CI as
     a cheap advisory artifact. *)
  (match trend_path with
   | None ->
     if trend_json <> None then begin
       prerr_endline "error: --trend-json needs --trend FILE";
       exit 1
     end
   | Some path ->
     let trajectory = read_json path in
     print_string (Suite.trend_table ~trajectory ());
     (match trend_json with
      | None -> ()
      | Some out ->
        let oc = open_out out in
        output_string oc
          (Json.to_string_pretty (Suite.trend ~trajectory ()));
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "[bench] wrote wall-trend analysis %s\n%!" out));
  (* Perf-trajectory gate: record / compare the committed
     BENCH_hardbound.json snapshot (cycle drift > 2% fails). *)
  (match baseline_write with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc
       (Json.to_string_pretty (Suite.snapshot_json (Lazy.force suite)));
     output_char oc '\n';
     close_out oc;
     Printf.eprintf "[bench] wrote baseline %s\n%!" path);
  (match baseline_path with
   | None -> ()
   | Some path ->
     (match
        Suite.check_baseline ~baseline:(read_json path) (Lazy.force suite)
      with
      | Ok () -> Printf.printf "[bench] baseline %s: all within 2%%\n" path
      | Error msgs ->
        List.iter (fun m -> Printf.eprintf "[bench] DRIFT %s\n" m) msgs;
        Printf.eprintf
          "[bench] cycle counts drifted from %s; if intentional, \
           regenerate it with --baseline-write in the same change\n"
          path;
        exit 1));
  (* Host wall-clock trajectory: append a point per PR to BENCH_wall.json.
     Advisory by design — wall time depends on the machine that ran it,
     so out-of-band drift prints notes instead of failing. *)
  (match wall_append with
   | None -> ()
   | Some path ->
     let label = Option.value wall_label ~default:"local" in
     let prior =
       if Sys.file_exists path then Some (read_json path) else None
     in
     (match prior with
      | Some t ->
        List.iter
          (fun m -> Printf.eprintf "[bench] WALL %s\n" m)
          (Suite.wall_advisory ~trajectory:t (Lazy.force suite))
      | None -> ());
     let doc =
       Suite.append_wall ~extra:!shard_extra ~trajectory:prior ~label
         (Lazy.force suite)
     in
     let oc = open_out path in
     output_string oc (Json.to_string_pretty doc);
     output_char oc '\n';
     close_out oc;
     Printf.eprintf
       "[bench] appended wall point %S to %s (advisory trajectory, not a \
        gate)\n%!"
       label path);
  match json_path with None -> () | Some path -> write_json path
