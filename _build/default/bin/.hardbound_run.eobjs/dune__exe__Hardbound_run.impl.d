bin/hardbound_run.ml: Arg Cmd Cmdliner Format Hardbound Hb_cpu Hb_isa Hb_minic Hb_runtime Printf Term
