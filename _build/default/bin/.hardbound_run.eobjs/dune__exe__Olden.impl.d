bin/olden.ml: Array Hardbound Hb_cpu Hb_harness Hb_minic Hb_workloads List Printf Sys
