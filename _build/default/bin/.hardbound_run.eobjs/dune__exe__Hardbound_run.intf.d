bin/hardbound_run.mli:
