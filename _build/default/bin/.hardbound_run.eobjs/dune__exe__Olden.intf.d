bin/olden.mli:
