(* Command-line driver: compile a MiniC source file (or assemble a .s
   file) and execute it on the simulated HardBound machine.

     dune exec bin/hardbound_run.exe -- prog.c
     dune exec bin/hardbound_run.exe -- prog.c --mode softfat --stats
     dune exec bin/hardbound_run.exe -- prog.s --asm --mode malloc-only
     dune exec bin/hardbound_run.exe -- prog.c --emit-asm   # print assembly *)

open Cmdliner

module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Encoding = Hardbound.Encoding
module Stats = Hb_cpu.Stats

let mode_conv =
  let parse s =
    match s with
    | "nochecks" | "none" -> Ok Codegen.Nochecks
    | "hardbound" | "full" -> Ok Codegen.Hardbound
    | "malloc-only" -> Ok Codegen.Hardbound_malloc_only
    | "softfat" | "ccured" -> Ok Codegen.Softfat
    | "objtable" | "jk" -> Ok Codegen.Objtable
    | _ -> Error (`Msg ("unknown mode: " ^ s))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Codegen.mode_name m))

let scheme_conv =
  let parse s =
    match Encoding.scheme_of_name s with
    | Some x -> Ok x
    | None -> Error (`Msg ("unknown encoding: " ^ s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Encoding.scheme_name s))

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"MiniC source file (or assembly with --asm)")

let mode =
  Arg.(value & opt mode_conv Codegen.Hardbound
       & info [ "mode" ] ~docv:"MODE"
           ~doc:"Protection scheme: nochecks | hardbound | malloc-only | \
                 softfat | objtable")

let scheme =
  Arg.(value & opt scheme_conv Encoding.Extern4
       & info [ "scheme" ] ~docv:"ENC"
           ~doc:"Pointer encoding: uncompressed | extern-4 | intern-4 | \
                 intern-11")

let temporal =
  Arg.(value & flag
       & info [ "temporal" ] ~doc:"Enable the Section 6.2 temporal extension")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print execution statistics")

let asm =
  Arg.(value & flag
       & info [ "asm" ] ~doc:"Input is textual assembly, not MiniC")

let emit_asm =
  Arg.(value & flag
       & info [ "emit-asm" ] ~doc:"Print generated assembly instead of running")

let fuel =
  Arg.(value & opt int 400_000_000
       & info [ "fuel" ] ~docv:"N" ~doc:"Maximum instructions to execute")

let trace =
  Arg.(value & opt int 0
       & info [ "trace" ] ~docv:"N"
           ~doc:"Print an execution trace of the first N instructions")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run file mode scheme temporal stats asm emit_asm fuel trace =
  let source = read_file file in
  try
    if asm then begin
      let program = Hb_isa.Parser.parse_program source in
      if emit_asm then (print_string (Hb_isa.Printer.program_str program); 0)
      else begin
        let image = Hb_isa.Program.link program in
        let config =
          { Machine.scheme; mode = Codegen.machine_mode mode;
            checked_deref_uop = false; temporal; tripwire = false;
            max_instrs = fuel }
        in
        let m = Machine.create ~config ~globals:"" image in
        let status = Machine.run m in
        print_string (Machine.output m);
        Printf.printf "\n[%s]\n" (Machine.status_name status);
        if stats then print_endline (Stats.to_string m.Machine.stats);
        match status with Machine.Exited n -> n | _ -> 42
      end
    end
    else if emit_asm then begin
      let compiled = Hb_minic.Driver.compile_source ~mode source in
      print_string (Hb_isa.Printer.program_str compiled.Codegen.program);
      0
    end
    else begin
      let status, m =
        if trace > 0 then begin
          let image, globals = Hb_runtime.Build.compile ~mode source in
          let config =
            Hb_runtime.Build.config_for ~scheme ~temporal ~max_instrs:fuel mode
          in
          let m = Machine.create ~config ~globals image in
          let status =
            match Machine.run_traced m ~n:trace ~out:print_endline with
            | Some st -> st
            | None -> Machine.run m
          in
          (status, m)
        end
        else Hb_runtime.Build.run ~scheme ~temporal ~max_instrs:fuel ~mode source
      in
      print_string (Machine.output m);
      Printf.printf "\n[%s] (mode=%s, encoding=%s)\n"
        (Machine.status_name status) (Codegen.mode_name mode)
        (Encoding.scheme_name scheme);
      if stats then print_endline (Stats.to_string m.Machine.stats);
      match status with Machine.Exited n -> n | _ -> 42
    end
  with
  | Hb_minic.Driver.Compile_error msg ->
    Printf.eprintf "compile error: %s\n" msg;
    1
  | Hb_isa.Parser.Parse_error (line, msg) ->
    Printf.eprintf "assembly parse error at line %d: %s\n" line msg;
    1

let cmd =
  let doc = "compile and run a program on the simulated HardBound machine" in
  Cmd.v
    (Cmd.info "hardbound_run" ~doc)
    Term.(const run $ file $ mode $ scheme $ temporal $ stats $ asm $ emit_asm
          $ fuel $ trace)

let () = exit (Cmd.eval' cmd)
