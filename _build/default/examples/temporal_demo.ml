(* Section 6.2's suggested extension: HardBound already tracks a metadata
   bit per memory word, so Purify/MemTracker-style allocation-state
   tracking is "a natural extension".  This build implements it for the
   heap: the runtime's malloc/free mark per-word allocation state, and the
   machine (with [temporal = true]) faults on use-after-free and
   uninitialized heap reads — on top of the spatial checks.

   Run with: dune exec examples/temporal_demo.exe *)

module Machine = Hb_cpu.Machine
module Codegen = Hb_minic.Codegen

let cases =
  [
    ( "use-after-free",
      {|
struct node { int v; struct node *next; };
int main() {
  struct node *n;
  int v;
  n = (struct node*)malloc(sizeof(struct node));
  n->v = 7;
  free((char*)n);
  v = n->v;           /* spatially fine, temporally dead */
  return v - 7;
}
|} );
    ( "uninitialized read",
      {|
int main() {
  int *p;
  p = (int*)malloc(40);
  p[0] = 1;
  return p[5];        /* never written */
}
|} );
    ( "write through freed pointer",
      {|
int main() {
  char *a;
  a = malloc(24);
  a[0] = 'x';
  free(a);
  a[0] = 'z';         /* spatially in bounds, temporally dead */
  return 0;
}
|} );
    ( "well-behaved program",
      {|
int main() {
  int *p;
  int i;
  int s;
  p = (int*)malloc(10 * sizeof(int));
  for (i = 0; i < 10; i++) { p[i] = i; }
  s = 0;
  for (i = 0; i < 10; i++) { s = s + p[i]; }
  free((char*)p);
  return s - 45;
}
|} );
  ]

let () =
  print_endline
    "temporal extension (spatial checks stay on; temporal state per heap \
     word):\n";
  List.iter
    (fun (name, src) ->
      let status, _ =
        Hb_runtime.Build.run ~temporal:true ~mode:Codegen.Hardbound src
      in
      Printf.printf "%-28s -> %s\n" name (Machine.status_name status))
    cases;
  print_endline
    "\nNote the third case: spatial bounds CANNOT catch it — the stale\n\
     pointer's bounds still cover the freed block — but the per-word\n\
     allocation state can.  (Stale writes after the block is REUSED still\n\
     escape this scheme; full temporal safety needs lock-and-key\n\
     identifiers, which the paper defers to CCured-style collectors.)"
