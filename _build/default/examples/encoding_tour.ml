(* A tour of the compressed bounded-pointer encodings (Section 4.3).

   For a gallery of pointers, show how each encoding stores the metadata:
   inline in a few tag/pointer bits (free), or spilled to the base/bound
   shadow space (one extra micro-op and cache access per load/store).
   Then demonstrate at machine level that compression changes *cost*, not
   *behaviour*.

   Run with: dune exec examples/encoding_tour.exe *)

module Meta = Hardbound.Meta
module Encoding = Hardbound.Encoding
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Stats = Hb_cpu.Stats

let gallery =
  [
    ("non-pointer (int 42)", 42, Meta.non_pointer);
    ("16-byte object, ptr = base", 0x1000000, Meta.make ~base:0x1000000 ~size:16);
    ("56-byte object (last 4-bit code)", 0x1000040,
     Meta.make ~base:0x1000040 ~size:56);
    ("60-byte object (too big for 4-bit)", 0x1000080,
     Meta.make ~base:0x1000080 ~size:60);
    ("interior pointer (ptr != base)", 0x1000004,
     Meta.make ~base:0x1000000 ~size:16);
    ("odd-sized object (6 bytes)", 0x10000c0, Meta.make ~base:0x10000c0 ~size:6);
    ("4KB object (intern-11 range)", 0x1001000,
     Meta.make ~base:0x1001000 ~size:4096);
    ("pointer above 128MB", 0x0a000000, Meta.make ~base:0x0a000000 ~size:16);
    ("the unsafe escape hatch", 0x1000000, Meta.unsafe);
  ]

let describe scheme ~value m =
  match Encoding.encode scheme ~value m with
  | Encoding.Enc_non_pointer _ -> "non-ptr"
  | Encoding.Enc_inline { tag; aux; _ } ->
    if aux <> 0 then Printf.sprintf "inline(aux=%d)" aux
    else Printf.sprintf "inline(tag=%d)" tag
  | Encoding.Enc_shadow _ -> "SHADOW"

let () =
  Printf.printf "%-36s %-12s %-14s %-14s %-14s\n" "pointer" "uncompressed"
    "extern-4" "intern-4" "intern-11";
  List.iter
    (fun (name, value, m) ->
      Printf.printf "%-36s %-12s %-14s %-14s %-14s\n" name
        (describe Encoding.Uncompressed ~value m)
        (describe Encoding.Extern4 ~value m)
        (describe Encoding.Intern4 ~value m)
        (describe Encoding.Intern11 ~value m))
    gallery;
  (* machine-level: same program, same answer, different metadata traffic *)
  let program = {|
struct big { int payload[32]; };   /* 128 bytes: defeats the 4-bit codes */
struct small { int a; int b; };
int main() {
  struct big *bigs[50];
  struct small *smalls[50];
  int i;
  int s;
  for (i = 0; i < 50; i++) {
    bigs[i] = (struct big*)malloc(sizeof(struct big));
    smalls[i] = (struct small*)malloc(sizeof(struct small));
    bigs[i]->payload[0] = i;
    smalls[i]->a = i;
  }
  s = 0;
  for (i = 0; i < 50; i++) { s = s + bigs[i]->payload[0] + smalls[i]->a; }
  print_int(s);
  return 0;
}
|}
  in
  Printf.printf
    "\nsame program under each encoding (uncompressed-pointer memory \
     traffic):\n\n%-14s %10s %12s %10s\n" "encoding" "output"
    "shadow-ops" "cycles";
  List.iter
    (fun scheme ->
      let status, m =
        Hb_runtime.Build.run ~scheme ~mode:Codegen.Hardbound program
      in
      assert (status = Machine.Exited 0);
      let st = m.Machine.stats in
      Printf.printf "%-14s %10s %12d %10d\n" (Encoding.scheme_name scheme)
        (Machine.output m)
        (st.Stats.ptr_loads_shadow + st.Stats.ptr_stores_shadow)
        (Stats.cycles st))
    Encoding.all_schemes;
  print_endline
    "\nThe 128-byte objects force shadow traffic under the 4-bit codes but\n\
     compress under intern-11; behaviour is identical throughout — the\n\
     encodings are invisible to software (Section 4.4)."
