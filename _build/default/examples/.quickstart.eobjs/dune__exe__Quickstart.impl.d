examples/quickstart.ml: Hb_cpu Hb_isa Hb_mem Hb_minic Hb_runtime List Printf
