examples/malloc_only.mli:
