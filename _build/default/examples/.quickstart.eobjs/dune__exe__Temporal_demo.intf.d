examples/temporal_demo.mli:
