examples/encoding_tour.mli:
