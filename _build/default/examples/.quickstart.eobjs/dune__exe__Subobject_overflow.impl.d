examples/subobject_overflow.ml: Hb_cpu Hb_minic Hb_runtime List Printf String
