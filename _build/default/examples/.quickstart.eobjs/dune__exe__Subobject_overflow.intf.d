examples/subobject_overflow.mli:
