examples/quickstart.mli:
