examples/temporal_demo.ml: Hb_cpu Hb_minic Hb_runtime List Printf
