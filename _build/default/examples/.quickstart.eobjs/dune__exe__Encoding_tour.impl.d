examples/encoding_tour.ml: Hardbound Hb_cpu Hb_minic Hb_runtime List Printf
