examples/malloc_only.ml: Hb_cpu Hb_minic Hb_runtime List Printf
