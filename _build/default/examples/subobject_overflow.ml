(* The paper's motivating example (Sections 2.2 and 3.2): strcpy through a
   pointer to an array *inside* a struct silently overwrites the
   neighbouring field under object-granularity schemes, because the
   pointer to the struct and the pointer to its first member are the same
   address.  HardBound's compiler narrows the bounds at pointer-creation
   time (sub-object narrowing), so the overflow is caught inside strcpy.

   Run with: dune exec examples/subobject_overflow.exe *)

module Machine = Hb_cpu.Machine
module Codegen = Hb_minic.Codegen

(* Verbatim shape of the paper's fragment:
     1 struct {char str[5]; int x;} node;
     2 char *ptr = node.str;
     3 strcpy(ptr, "overflow");   // overwrites node.x *)
let program = {|
struct host { char str[5]; int x; };

int main() {
  struct host node;
  char *ptr;
  node.x = 7;               /* could have been a function pointer... */
  ptr = node.str;           /* compiler emits setbound(node.str, 5) */
  strcpy(ptr, "overflow");
  print_str("node.x = ");
  print_int(node.x);
  print_nl();
  return 0;
}
|}

let () =
  print_endline "strcpy(node.str, \"overflow\") where str is char[5]:\n";
  List.iter
    (fun mode ->
      let status, m = Hb_runtime.Build.run ~mode program in
      let out = String.trim (Machine.output m) in
      Printf.printf "%-12s -> %s%s\n" (Codegen.mode_name mode)
        (Machine.status_name status)
        (if out = "" then "" else Printf.sprintf "  (program printed %S)" out))
    [ Codegen.Nochecks; Codegen.Objtable; Codegen.Hardbound; Codegen.Softfat ];
  print_endline
    "\n- nochecks: node.x is silently corrupted (7 became part of \"overflow\").\n\
     - objtable: undetected, exactly as Section 2.2 predicts — node and\n\
     \  node.str map to a single table entry, so the copy stays 'in bounds'.\n\
     - hardbound / softfat: the narrowed bounds on ptr catch the overflow\n\
     \  inside strcpy, even though strcpy itself has no idea about node."
