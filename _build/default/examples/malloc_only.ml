(* Section 3.2's "one mode of use requires instrumenting only malloc":
   a legacy binary — compiled with NO compiler instrumentation — still
   gets per-allocation spatial safety for heap objects, because the
   (instrumented) allocator seeds bounds and the hardware propagates and
   checks them from there.  Stack and global objects are out of scope in
   this mode: their accesses never carry bounds information and the
   hardware leaves them unchecked.

   Run with: dune exec examples/malloc_only.exe *)

module Machine = Hb_cpu.Machine
module Codegen = Hb_minic.Codegen

let heap_overflow = {|
int main() {
  char *p;
  int i;
  p = malloc(16);
  for (i = 0; i < 32; i++) { p[i] = (char)i; }  /* runs 16 past the end */
  return 0;
}
|}

let heap_via_struct = {|
struct node { int a; int b; };
int main() {
  struct node *n;
  int *q;
  n = (struct node*)malloc(sizeof(struct node));
  q = &n->b;
  q[1] = 5;       /* one int past the allocation */
  return 0;
}
|}

let stack_overflow = {|
int main() {
  int a[4];
  int i;
  for (i = 0; i <= 5; i++) { a[i] = i; }
  return 0;
}
|}

let report title src =
  Printf.printf "%s:\n" title;
  List.iter
    (fun mode ->
      let status, _ = Hb_runtime.Build.run ~mode src in
      Printf.printf "  %-12s -> %s\n" (Codegen.mode_name mode)
        (Machine.status_name status))
    [ Codegen.Hardbound_malloc_only; Codegen.Hardbound ];
  print_newline ()

let () =
  print_endline
    "malloc-only mode vs full compiler instrumentation\n\
     (the malloc-only binary is what you would get from an UNMODIFIED\n\
     legacy executable running with an instrumented allocator)\n";
  report "heap buffer overflow" heap_overflow;
  report "heap overflow through an interior struct pointer" heap_via_struct;
  report "stack array overflow" stack_overflow;
  print_endline
    "Heap violations are caught even without recompiling; protecting the\n\
     stack array needs the compiler to insert setbound for locals, which\n\
     is exactly the split the paper describes."
