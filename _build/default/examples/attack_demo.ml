(* The security motivation from the paper's introduction: "C's unchecked
   array operations lead to buffer overflows ... erroneous executions,
   silent data corruption, and security vulnerabilities."

   A classic privilege-escalation shape: a network-ish request writes an
   attacker-controlled name into a fixed buffer that sits next to an
   authorization flag.  On the baseline machine the overflow silently
   flips the flag; the paper's point is that targeted defenses (canaries,
   taint tracking, pointer encryption) each stop *some* exploit of this
   bug, while bounds checking removes the bug itself.

   Run with: dune exec examples/attack_demo.exe *)

module Machine = Hb_cpu.Machine
module Codegen = Hb_minic.Codegen

let program = {|
struct session {
  char username[12];
  int is_admin;        /* in real life: a function pointer, a vtable... */
};

struct session *login(char *name) {
  struct session *s;
  s = (struct session*)malloc(sizeof(struct session));
  s->is_admin = 0;
  strcpy(s->username, name);   /* no length check: CWE-787 */
  return s;
}

void serve(struct session *s) {
  print_str("user '");
  print_str(s->username);
  print_str("' admin=");
  print_int(s->is_admin);
  print_nl();
  if (s->is_admin) {
    print_str("  !!! privileged operation executed\n");
  }
}

int main() {
  /* a benign request, then a hostile one: 12 name bytes followed by a
     non-zero byte that lands exactly on is_admin */
  serve(login("alice"));
  serve(login("AAAAAAAAAAAAx"));
  return 0;
}
|}

let () =
  print_endline
    "request with a 13-byte name against a char[12] buffer next to an\n\
     authorization flag:\n";
  List.iter
    (fun mode ->
      Printf.printf "--- %s ---\n" (Codegen.mode_name mode);
      let status, m = Hb_runtime.Build.run ~mode program in
      print_string (Machine.output m);
      (match status with
       | Machine.Exited 0 -> ()
       | st -> Printf.printf "=> %s\n" (Machine.status_name st));
      print_newline ())
    [ Codegen.Nochecks; Codegen.Hardbound_malloc_only; Codegen.Hardbound ];
  print_endline
    "The baseline executes the privileged operation for the attacker —\n\
     and so does the malloc-only mode, because the overflow never leaves\n\
     the 16-byte allocation (the same blind spot object-granularity\n\
     schemes have, Section 2.2).  Full HardBound narrows the strcpy\n\
     destination to username[12] and traps the very first overflowing\n\
     byte, before is_admin can change."
