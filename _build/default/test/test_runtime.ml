(* Runtime-library tests: the MiniC allocator, string functions, and the
   splay-tree object table are exercised by MiniC programs running on the
   simulator (the library itself is simulated code). *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine

let run_expect name ?(mode = Codegen.Hardbound) ~expect src =
  let status, m = Build.run ~mode src in
  (match status with
   | Machine.Exited 0 -> ()
   | st -> Alcotest.failf "%s: %s (output %S)" name (Machine.status_name st)
             (Machine.output m));
  Alcotest.(check string) name expect (Machine.output m)

(* ---- allocator --------------------------------------------------------- *)

let test_malloc_min_size () =
  (* size 0/1 requests still produce distinct, usable objects *)
  run_expect "tiny allocations" ~expect:"1 1 ok"
    {|
int main() {
  char *a;
  char *b;
  a = malloc(0);
  b = malloc(1);
  a[0] = 'x';
  b[0] = 'y';
  print_int(a != b); print_char(32);
  print_int(a[0] == 'x' && b[0] == 'y'); print_char(32);
  print_str("ok");
  return 0;
}
|}

let test_malloc_distinct () =
  run_expect "allocations do not overlap" ~expect:"ok"
    {|
int main() {
  int *blocks[20];
  int i;
  int j;
  for (i = 0; i < 20; i++) {
    blocks[i] = (int*)malloc(12);
    blocks[i][0] = i;
    blocks[i][1] = i * 2;
    blocks[i][2] = i * 3;
  }
  for (i = 0; i < 20; i++) {
    if (blocks[i][0] != i) { __abort(9); }
    if (blocks[i][2] != i * 3) { __abort(9); }
  }
  j = 1;
  print_str("ok");
  return 0;
}
|}

let test_free_list_cycling () =
  run_expect "alloc/free cycles reuse memory" ~expect:"1"
    {|
int main() {
  char *p;
  char *first;
  int i;
  first = malloc(40);
  free(first);
  for (i = 0; i < 100; i++) {
    p = malloc(40);
    p[39] = (char)i;
    free(p);
  }
  /* every round reused the same block: the heap did not grow */
  p = malloc(40);
  print_int(p == first);
  return 0;
}
|}

let test_free_fit () =
  run_expect "first fit skips too-small blocks" ~expect:"1 1"
    {|
int main() {
  char *small;
  char *big;
  char *r;
  small = malloc(8);
  big = malloc(100);
  free(small);
  free(big);
  /* list is [big, small] after LIFO frees... request 50 must take big */
  r = malloc(50);
  print_int(r == big); print_char(32);
  r = malloc(4);
  print_int(r == small);
  return 0;
}
|}

let test_calloc_zeroed () =
  run_expect "calloc zeroes reused memory" ~expect:"0"
    {|
int main() {
  char *p;
  int i;
  int s;
  p = malloc(32);
  for (i = 0; i < 32; i++) { p[i] = 'x'; }
  free(p);
  p = calloc(32);
  s = 0;
  for (i = 0; i < 32; i++) { s = s + (int)p[i]; }
  print_int(s);
  return 0;
}
|}

let test_free_null () =
  run_expect "free(NULL) is a no-op" ~expect:"ok"
    {|
int main() {
  free((char*)0);
  print_str("ok");
  return 0;
}
|}

(* ---- strings ------------------------------------------------------------ *)

let test_string_functions () =
  run_expect "string functions" ~expect:"5 0 1 1 abXde 3"
    {|
int main() {
  char a[16];
  char b[16];
  strcpy(a, "hello");
  print_int(strlen(a)); print_char(32);
  print_int(strcmp(a, "hello")); print_char(32);
  print_int(strcmp(a, "hellp") < 0); print_char(32);
  print_int(strcmp("b", "a") > 0); print_char(32);
  strcpy(b, "abcde");
  b[2] = 'X';
  print_str(b); print_char(32);
  strncpy(a, "xyz123", 3);
  a[3] = 0;
  print_int(strlen(a));
  return 0;
}
|}

let test_memcpy_memset () =
  run_expect "memcpy/memset" ~expect:"7 7 0"
    {|
int main() {
  char src[8];
  char dst[8];
  int i;
  for (i = 0; i < 8; i++) { src[i] = (char)(i + 1); }
  memcpy(dst, src, 8);
  print_int((int)dst[6]); print_char(32);
  print_int((int)src[6]); print_char(32);
  memset(dst, 0, 8);
  print_int((int)dst[6]);
  return 0;
}
|}

(* ---- rand ---------------------------------------------------------------- *)

let test_rand_range () =
  run_expect "rand stays in [0, 32768)" ~expect:"ok"
    {|
int main() {
  int i;
  int r;
  srand(7);
  for (i = 0; i < 500; i++) {
    r = rand();
    if (r < 0 || r >= 32768) { __abort(5); }
  }
  print_str("ok");
  return 0;
}
|}

(* ---- object table (splay tree), driven directly -------------------------- *)

let test_object_table_ops () =
  (* exercise insert/find/remove including splay rotations, from MiniC *)
  run_expect "splay-tree object table" ~mode:Codegen.Nochecks
    ~expect:"in:1 1 1 edge:0 0 mid:1 removed:0 1 rest:1"
    {|
int check(int addr) {
  struct __ot_node *n;
  n = __ot_find(addr);
  if (n == 0) { return 0; }
  return 1;
}
int main() {
  int i;
  /* register 50 disjoint objects [1000*i, 1000*i + 100) */
  for (i = 1; i <= 50; i++) {
    __ot_insert((char*)(i * 1000), 100);
  }
  print_str("in:");
  print_int(check(1000)); print_char(32);
  print_int(check(25050)); print_char(32);
  print_int(check(50099));
  print_str(" edge:");
  print_int(check(50100)); print_char(32);
  print_int(check(999));
  print_str(" mid:");
  print_int(check(7000));
  __ot_remove((char*)7000, 100);
  print_str(" removed:");
  print_int(check(7050)); print_char(32);
  print_int(check(8050));
  /* re-insert over the hole and verify neighbours survived splaying */
  __ot_insert((char*)7000, 100);
  print_str(" rest:");
  print_int(check(7001) && check(6000) && check(50000));
  return 0;
}
|}

let test_object_table_arith_check () =
  run_expect "check_arith verdicts" ~mode:Codegen.Nochecks
    ~expect:"1 1 1"
    {|
int main() {
  char *p;
  char *q;
  __ot_insert((char*)5000, 40);
  p = (char*)5000;
  /* within: ok */
  q = __ot_check_arith(p, p + 39);
  print_int((int)q == 5039); print_char(32);
  /* one past the end: tolerated */
  q = __ot_check_arith(p, p + 40);
  print_int((int)q == 5040); print_char(32);
  /* unregistered source: unchecked */
  q = __ot_check_arith((char*)99999, (char*)123456);
  print_int((int)q == 123456);
  return 0;
}
|}

let test_object_table_abort () =
  let status, _ =
    Build.run ~mode:Codegen.Nochecks
      {|
int main() {
  char *p;
  __ot_insert((char*)5000, 40);
  p = (char*)5000;
  p = __ot_check_arith(p, p + 41);
  return 0;
}
|}
  in
  match status with
  | Machine.Software_abort 2 -> ()
  | st -> Alcotest.failf "expected abort(2), got %s" (Machine.status_name st)

(* allocator invariants hold under the strictest machine mode: the runtime
   itself is spatially safe *)
let test_runtime_self_safety () =
  run_expect "allocator churn under full hardbound" ~expect:"done"
    {|
int main() {
  char *live[32];
  int i;
  int round;
  for (i = 0; i < 32; i++) { live[i] = (char*)0; }
  srand(3);
  for (round = 0; round < 400; round++) {
    i = rand() % 32;
    if (live[i] != 0) { free(live[i]); live[i] = (char*)0; }
    else {
      int sz;
      sz = 1 + rand() % 100;
      live[i] = malloc(sz);
      live[i][0] = 'a';
      live[i][sz - 1] = 'z';
    }
  }
  print_str("done");
  return 0;
}
|}

(* ---- red-zone tripwire baseline (Section 2.1) ---------------------------- *)

let run_tripwire src = Build.run ~tripwire:true ~mode:Codegen.Nochecks src

let test_tripwire_catches_small_stride () =
  let status, _ =
    run_tripwire
      {|
int main() {
  char *p;
  int i;
  p = malloc(10);
  for (i = 0; i < 20; i++) { p[i] = 1; }   /* walks into the red zone */
  return 0;
}
|}
  in
  match status with
  | Machine.Temporal_violation _ -> ()
  | st -> Alcotest.failf "tripwire should catch: %s" (Machine.status_name st)

let test_tripwire_misses_large_stride () =
  (* the paper's completeness gap: a large jump lands in the NEXT object *)
  let status, _ =
    run_tripwire
      {|
int main() {
  char *a;
  char *b;
  a = malloc(32);
  b = malloc(32);
  b[0] = 'b';
  a[(int)(b - a)] = 'x';   /* writes b[0] through a: jumped the zone */
  return 0;
}
|}
  in
  match status with
  | Machine.Exited 0 -> ()
  | st -> Alcotest.failf "tripwire should miss: %s" (Machine.status_name st)

let test_tripwire_transparent () =
  let status, m =
    run_tripwire
      {|
int main() {
  char *p;
  int i;
  p = malloc(64);
  for (i = 0; i < 64; i++) { p[i] = (char)i; }
  free(p);
  p = malloc(16);
  p[15] = 'x';
  print_str("ok");
  return 0;
}
|}
  in
  (match status with
   | Machine.Exited 0 -> ()
   | st -> Alcotest.failf "tripwire fp: %s" (Machine.status_name st));
  Alcotest.(check string) "output" "ok" (Machine.output m)

let test_tripwire_write_after_free () =
  let status, _ =
    run_tripwire
      {|
int main() {
  char *p;
  p = malloc(16);
  p[0] = 'x';
  free(p);
  p[0] = 'y';
  return 0;
}
|}
  in
  match status with
  | Machine.Temporal_violation _ -> ()
  | st -> Alcotest.failf "freed write: %s" (Machine.status_name st)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "runtime"
    [
      ( "allocator",
        [
          tc "minimum sizes" test_malloc_min_size;
          tc "distinct blocks" test_malloc_distinct;
          tc "free-list cycling" test_free_list_cycling;
          tc "first-fit selection" test_free_fit;
          tc "calloc zeroes" test_calloc_zeroed;
          tc "free(NULL)" test_free_null;
          tc "self-safety under full checks" test_runtime_self_safety;
        ] );
      ( "strings",
        [
          tc "string functions" test_string_functions;
          tc "memcpy/memset" test_memcpy_memset;
        ] );
      ("rand", [ tc "range" test_rand_range ]);
      ( "object-table",
        [
          tc "splay ops" test_object_table_ops;
          tc "arith check verdicts" test_object_table_arith_check;
          tc "arith check abort" test_object_table_abort;
        ] );
      ( "tripwire",
        [
          tc "small strides trip" test_tripwire_catches_small_stride;
          tc "large strides jump over (2.1)" test_tripwire_misses_large_stride;
          tc "transparent for correct code" test_tripwire_transparent;
          tc "write after free" test_tripwire_write_after_free;
        ] );
    ]
