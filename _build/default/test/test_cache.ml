(* Tests for the cache substrate: set-associative LRU behaviour, TLB
   paging, and the paper's hierarchy parameters / stall accounting. *)

module Sa_cache = Hb_cache.Sa_cache
module Tlb = Hb_cache.Tlb
module Hierarchy = Hb_cache.Hierarchy

let test_cache_hit_miss () =
  let c = Sa_cache.create ~name:"t" ~size_bytes:1024 ~assoc:2 ~block_bytes:32 in
  Alcotest.(check bool) "cold miss" false (Sa_cache.access c 0x1000);
  Alcotest.(check bool) "hit" true (Sa_cache.access c 0x1000);
  Alcotest.(check bool) "same block hit" true (Sa_cache.access c 0x101F);
  Alcotest.(check bool) "next block miss" false (Sa_cache.access c 0x1020);
  Alcotest.(check int) "accesses" 4 c.Sa_cache.accesses;
  Alcotest.(check int) "misses" 2 c.Sa_cache.misses

let test_cache_lru () =
  (* 2-way, 16 sets of 32B: addresses 0x0, 0x200, 0x400 map to set 0 *)
  let c = Sa_cache.create ~name:"t" ~size_bytes:1024 ~assoc:2 ~block_bytes:32 in
  ignore (Sa_cache.access c 0x000);
  ignore (Sa_cache.access c 0x200);
  (* touch 0x000 to make 0x200 the LRU way *)
  Alcotest.(check bool) "0x000 still resident" true (Sa_cache.access c 0x000);
  ignore (Sa_cache.access c 0x400);
  Alcotest.(check bool) "LRU way evicted" false (Sa_cache.probe c 0x200);
  Alcotest.(check bool) "MRU way kept" true (Sa_cache.probe c 0x000)

let test_cache_conflict_vs_capacity () =
  let c = Sa_cache.create ~name:"t" ~size_bytes:1024 ~assoc:2 ~block_bytes:32 in
  (* 3 blocks in one set thrash a 2-way cache *)
  for _ = 1 to 10 do
    ignore (Sa_cache.access c 0x000);
    ignore (Sa_cache.access c 0x200);
    ignore (Sa_cache.access c 0x400)
  done;
  Alcotest.(check int) "all misses" 30 c.Sa_cache.misses

let test_cache_validation () =
  (match
     Sa_cache.create ~name:"t" ~size_bytes:100 ~assoc:2 ~block_bytes:32
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "non-power-of-two should fail");
  let c = Sa_cache.create ~name:"t" ~size_bytes:256 ~assoc:4 ~block_bytes:32 in
  Alcotest.(check int) "sets" 2 (Sa_cache.num_sets c)

let test_cache_flush_reset () =
  let c = Sa_cache.create ~name:"t" ~size_bytes:1024 ~assoc:2 ~block_bytes:32 in
  ignore (Sa_cache.access c 0x1000);
  Sa_cache.reset_stats c;
  Alcotest.(check int) "stats reset" 0 c.Sa_cache.accesses;
  Alcotest.(check bool) "contents kept" true (Sa_cache.probe c 0x1000);
  Sa_cache.flush c;
  Alcotest.(check bool) "flushed" false (Sa_cache.probe c 0x1000)

let test_tlb () =
  let t = Tlb.create ~name:"t" ~entries:4 ~assoc:2 ~page_bytes:4096 in
  Alcotest.(check bool) "cold" false (Tlb.access t 0x100000);
  Alcotest.(check bool) "same page" true (Tlb.access t 0x100FFF);
  Alcotest.(check bool) "next page" false (Tlb.access t 0x101000);
  Alcotest.(check int) "misses" 2 (Tlb.misses t)

let test_hierarchy_params () =
  (* paper parameters: 8KB tag cache for the 4-bit external encoding,
     2KB for 1-bit encodings *)
  let p4 = Hierarchy.default_params ~tag_bits:4 in
  let p1 = Hierarchy.default_params ~tag_bits:1 in
  Alcotest.(check int) "tagc 8KB" (8 * 1024) p4.Hierarchy.tagc_size;
  Alcotest.(check int) "tagc 2KB" (2 * 1024) p1.Hierarchy.tagc_size;
  Alcotest.(check int) "L1 32KB" (32 * 1024) p1.Hierarchy.l1_size;
  Alcotest.(check int) "L2 4MB" (4 * 1024 * 1024) p1.Hierarchy.l2_size;
  Alcotest.(check int) "L1 penalty" 12 p1.Hierarchy.l1_miss_penalty;
  Alcotest.(check int) "L2 penalty" 200 p1.Hierarchy.l2_miss_penalty

let test_hierarchy_stalls () =
  let h = Hierarchy.create (Hierarchy.default_params ~tag_bits:1) in
  (* cold access: TLB miss (12) + L1 miss (12) + L2 miss (200) *)
  let s1 = Hierarchy.access h Hierarchy.Data 0x100000 in
  Alcotest.(check int) "cold stall" (12 + 12 + 200) s1;
  (* immediate re-access: all hits *)
  let s2 = Hierarchy.access h Hierarchy.Data 0x100000 in
  Alcotest.(check int) "warm stall" 0 s2;
  (* L2 keeps blocks after L1 eviction: walk far past L1 capacity *)
  for i = 0 to 4095 do
    ignore (Hierarchy.access h Hierarchy.Data (0x100000 + (i * 32)))
  done;
  (* 4096 blocks = 128KB = 32 pages: evicts the L1 block but neither the
     L2 block nor the 256-entry TLB entry *)
  let s3 = Hierarchy.access h Hierarchy.Data 0x100000 in
  Alcotest.(check int) "L1 miss, L2 hit, TLB hit" 12 s3

let test_hierarchy_classes () =
  let h = Hierarchy.create (Hierarchy.default_params ~tag_bits:1) in
  ignore (Hierarchy.access h Hierarchy.Data 0x100000);
  ignore (Hierarchy.access h Hierarchy.Tag_meta 0x70000000);
  ignore (Hierarchy.access h Hierarchy.Base_bound 0x80000000);
  Alcotest.(check int) "data accesses" 1 h.Hierarchy.data_stats.accesses;
  Alcotest.(check int) "tag accesses" 1 h.Hierarchy.tag_stats.accesses;
  Alcotest.(check int) "bb accesses" 1 h.Hierarchy.bb_stats.accesses;
  Alcotest.(check bool) "stall totals add up" true
    (Hierarchy.total_stalls h
    = h.Hierarchy.data_stats.stall_cycles
      + h.Hierarchy.bb_stats.stall_cycles
      + h.Hierarchy.tag_stats.stall_cycles);
  (* tag and data use separate first-level caches: data access does not
     warm the tag cache *)
  let s = Hierarchy.access h Hierarchy.Tag_meta 0x100000 in
  Alcotest.(check bool) "tag cold for data-warm block (L2 hit though)" true
    (s > 0)

(* property: stalls are always one of the composable penalty sums *)
let prop_stall_values =
  QCheck.Test.make ~name:"stall values well-formed" ~count:1000
    QCheck.(int_bound 0xFFFFF)
    (fun off ->
      let h = Hierarchy.create (Hierarchy.default_params ~tag_bits:1) in
      let s = Hierarchy.access h Hierarchy.Data (0x100000 + (off * 4)) in
      List.mem s [ 0; 12; 24; 212; 224 ])

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cache"
    [
      ( "sa-cache",
        [
          tc "hit/miss" test_cache_hit_miss;
          tc "LRU replacement" test_cache_lru;
          tc "conflict thrash" test_cache_conflict_vs_capacity;
          tc "validation" test_cache_validation;
          tc "flush/reset" test_cache_flush_reset;
        ] );
      ("tlb", [ tc "paging" test_tlb ]);
      ( "hierarchy",
        [
          tc "paper parameters" test_hierarchy_params;
          tc "stall composition" test_hierarchy_stalls;
          tc "access classes" test_hierarchy_classes;
          QCheck_alcotest.to_alcotest prop_stall_values;
        ] );
    ]
