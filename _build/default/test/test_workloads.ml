(* Workload integration tests: every Olden program must run to completion
   in every instrumentation mode with *identical* output (the protection
   schemes are transparent for correct programs — no false positives), and
   under every HardBound encoding. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Encoding = Hardbound.Encoding
module Stats = Hb_cpu.Stats

let run_ok name ?scheme ~mode src =
  let status, m = Build.run ?scheme ~mode src in
  (match status with
   | Machine.Exited 0 -> ()
   | st ->
     Alcotest.failf "%s [%s]: %s\npartial output: %s" name
       (Codegen.mode_name mode) (Machine.status_name st) (Machine.output m));
  m

let test_workload (w : Hb_workloads.Workloads.t) () =
  let baseline = run_ok w.name ~mode:Codegen.Nochecks w.source in
  let expect = Machine.output baseline in
  Alcotest.(check bool)
    (w.name ^ " produces output") true
    (String.length expect > 0);
  (* all modes agree with the baseline *)
  List.iter
    (fun mode ->
      let m = run_ok w.name ~mode w.source in
      Alcotest.(check string)
        (w.name ^ " [" ^ Codegen.mode_name mode ^ "]")
        expect (Machine.output m))
    [ Codegen.Hardbound; Codegen.Hardbound_malloc_only; Codegen.Softfat;
      Codegen.Objtable ];
  (* all encodings agree too, and compressed encodings reduce (or at least
     never increase) shadow metadata traffic vs Uncompressed *)
  let shadow_traffic scheme =
    let m = run_ok w.name ~scheme ~mode:Codegen.Hardbound w.source in
    Alcotest.(check string)
      (w.name ^ " [" ^ Encoding.scheme_name scheme ^ "]")
      expect (Machine.output m);
    m.Machine.stats.Stats.ptr_loads_shadow
    + m.Machine.stats.Stats.ptr_stores_shadow
  in
  let unc = shadow_traffic Encoding.Uncompressed in
  List.iter
    (fun scheme ->
      let t = shadow_traffic scheme in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s shadow traffic (%d) <= uncompressed (%d)"
           w.name (Encoding.scheme_name scheme) t unc)
        true (t <= unc))
    [ Encoding.Extern4; Encoding.Intern4; Encoding.Intern11 ]

(* instrumentation overhead sanity: hardbound executes no fewer
   instructions than baseline, and its extra *instructions* are exactly the
   setbounds *)
let test_overhead_accounting () =
  let w = Hb_workloads.Workloads.find "treeadd" in
  let base = run_ok w.name ~mode:Codegen.Nochecks w.source in
  let hb = run_ok w.name ~mode:Codegen.Hardbound w.source in
  let bstats = base.Machine.stats and hstats = hb.Machine.stats in
  Alcotest.(check int) "extra instructions = setbound count"
    hstats.Stats.instructions
    (bstats.Stats.instructions + hstats.Stats.setbound_instrs);
  Alcotest.(check bool) "baseline runs no metadata uops" true
    (bstats.Stats.metadata_uops = 0);
  Alcotest.(check bool) "hardbound checked some derefs" true
    (hstats.Stats.checked_derefs > 0)

let () =
  Alcotest.run "workloads"
    (List.map
       (fun (w : Hb_workloads.Workloads.t) ->
         (w.name, [ Alcotest.test_case w.description `Slow (test_workload w) ]))
       Hb_workloads.Workloads.all
    @ [
        ( "accounting",
          [ Alcotest.test_case "overhead accounting" `Quick
              test_overhead_accounting ] );
      ])
