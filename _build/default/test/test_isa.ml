(* ISA tests: printer/parser round-trip (property-based), linker behaviour,
   validation, and word-level helpers. *)

open Hb_isa.Types
module Printer = Hb_isa.Printer
module Parser = Hb_isa.Parser
module Program = Hb_isa.Program

(* ---- word helpers --------------------------------------------------- *)

let test_sign_extend () =
  Alcotest.(check int) "byte positive" 0x7F (sign_extend W1 0x7F);
  Alcotest.(check int) "byte negative" 0xFFFFFF80 (sign_extend W1 0x80);
  Alcotest.(check int) "half negative" 0xFFFF8000 (sign_extend W2 0x8000);
  Alcotest.(check int) "word unchanged" 0x80000000 (sign_extend W4 0x80000000)

let test_signed_view () =
  Alcotest.(check int) "positive" 5 (to_signed 5);
  Alcotest.(check int) "minus one" (-1) (to_signed 0xFFFFFFFF);
  Alcotest.(check int) "int32 min" (-0x80000000) (to_signed 0x80000000)

let test_float_bits () =
  let f = 3.25 in
  Alcotest.(check (float 1e-6)) "roundtrip" f (float_of_bits (bits_of_float f));
  Alcotest.(check (float 1e-6)) "negative" (-0.5)
    (float_of_bits (bits_of_float (-0.5)))

(* ---- printer/parser round trip -------------------------------------- *)

let sample_instrs =
  [
    Alu (Add, 10, 11, Reg 12);
    Alu (Sub, 10, 11, Imm (-4));
    Alu (Sltu, 5, 6, Imm 3);
    Falu (Fmul, 10, 11, 12);
    Fneg (10, 11);
    Fsqrt (10, 11);
    Cvt_f_of_i (10, 11);
    Cvt_i_of_f (10, 11);
    Li (5, 123456);
    Li (5, -7);
    Mov (6, 7);
    Load { dst = 10; base = 2; off = -8; width = W4; signed = true };
    Load { dst = 10; base = 2; off = 0; width = W1; signed = false };
    Load { dst = 10; base = 2; off = 4; width = W1; signed = true };
    Load { dst = 10; base = 2; off = 4; width = W2; signed = false };
    Store { src = 10; base = 2; off = 12; width = W4 };
    Store { src = 10; base = 2; off = 1; width = W1 };
    Setbound { dst = 10; src = 11; size = Imm 16 };
    Setbound { dst = 10; src = 11; size = Reg 12 };
    Setbound_narrow { dst = 10; src = 11; size = Imm 16 };
    Setbound_narrow { dst = 10; src = 11; size = Reg 12 };
    Setbound_unsafe (10, 11);
    Readbase (10, 11);
    Readbound (10, 11);
    Licode (10, "callee");
    Branch (Lt, 10, 11, "loop");
    Jmp "done";
    Call "callee";
    Call_reg 10;
    Ret;
    Syscall Sys_print_int;
    Syscall Sys_mark_alloc;
    Nop;
  ]

let test_roundtrip_samples () =
  let p =
    {
      funcs =
        [
          {
            name = "main";
            body =
              [ Label "loop" ] @ sample_instrs @ [ Label "done"; Ret ];
          };
          { name = "callee"; body = [ Ret ] };
        ];
      entry = "main";
    }
  in
  let text = Printer.program_str p in
  let p' = Parser.parse_program text in
  Alcotest.(check string) "round trip" text (Printer.program_str p')

(* qcheck: random ALU/branch/memory instructions survive the round trip *)
let gen_reg = QCheck.Gen.int_range 1 (num_regs - 1)

let gen_instr =
  QCheck.Gen.(
    oneof
      [
        (let* op =
           oneofl
             [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sar;
               Slt; Sle; Seq; Sne; Sgt; Sge; Sltu ]
         in
         let* rd = gen_reg and* rs = gen_reg in
         let* o =
           oneof
             [ map (fun r -> Reg r) gen_reg;
               map (fun i -> Imm i) (int_range (-100000) 100000) ]
         in
         return (Alu (op, rd, rs, o)));
        (let* rd = gen_reg and* rs = gen_reg in
         let* off = int_range (-4096) 4096 in
         let* width = oneofl [ W1; W2; W4 ] in
         let signed = width = W4 in
         return (Load { dst = rd; base = rs; off; width; signed }));
        (let* rd = gen_reg and* rs = gen_reg in
         let* off = int_range (-4096) 4096 in
         let* width = oneofl [ W1; W2; W4 ] in
         return (Store { src = rd; base = rs; off; width }));
        (let* rd = gen_reg and* rs = gen_reg in
         let* sz = int_range 1 100000 in
         return (Setbound { dst = rd; src = rs; size = Imm sz }));
        (let* c = oneofl [ Eq; Ne; Lt; Ge; Le; Gt ] in
         let* r1 = gen_reg and* r2 = gen_reg in
         return (Branch (c, r1, r2, "l")));
      ])

let prop_instr_roundtrip =
  QCheck.Test.make ~name:"random instruction round-trip" ~count:2000
    (QCheck.make ~print:Printer.instr_str gen_instr)
    (fun i ->
      let p =
        { funcs = [ { name = "f"; body = [ Label "l"; i ] } ]; entry = "f" }
      in
      Parser.parse_program (Printer.program_str p) = p)

(* ---- parser diagnostics --------------------------------------------- *)

let expect_parse_error src =
  match Parser.parse_program src with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_parse_errors () =
  expect_parse_error ".func f\n  bogus a0, a1\n.end\n";
  expect_parse_error ".func f\n  add a0\n.end\n";
  expect_parse_error ".func f\n  lw a0, a1\n.end\n";
  expect_parse_error "  add a0, a1, a2\n";
  expect_parse_error ".func f\n  add a0, a1, a2\n";
  expect_parse_error ".func f\n  add q9, a1, a2\n.end\n"

let test_parse_comments () =
  let p =
    Parser.parse_program
      ".entry main\n.func main # function\n  li a0, 1 ; set\n  ret\n.end\n"
  in
  Alcotest.(check int) "one function" 1 (List.length p.funcs);
  Alcotest.(check bool) "body" true
    ((List.hd p.funcs).body = [ Li (5, 1); Ret ])

(* ---- linker ---------------------------------------------------------- *)

let test_link_targets () =
  let p =
    {
      funcs =
        [
          {
            name = "main";
            body =
              [
                Li (5, 0);
                Label "loop";
                Alu (Add, 5, 5, Imm 1);
                Branch (Lt, 5, 6, "loop");
                Call "helper";
                Jmp "end";
                Label "end";
                Ret;
              ];
          };
          { name = "helper"; body = [ Ret ] };
        ];
      entry = "main";
    }
  in
  let img = Program.link p in
  Alcotest.(check int) "code length (labels removed)" 7
    (Array.length img.Program.code);
  Alcotest.(check int) "entry" 0 img.Program.entry;
  (* branch at index 2 targets the loop label = index 1 *)
  Alcotest.(check int) "branch target" 1 img.Program.target.(2);
  (* call at index 3 targets helper = index 6 *)
  Alcotest.(check int) "call target" 6 img.Program.target.(3);
  Alcotest.(check string) "fn attribution" "helper" img.Program.fn_of_index.(6)

let test_link_errors () =
  let expect_invalid p =
    match Program.link p with
    | exception Invalid_program _ -> ()
    | _ -> Alcotest.fail "expected Invalid_program"
  in
  expect_invalid
    { funcs = [ { name = "f"; body = [ Jmp "nowhere" ] } ]; entry = "f" };
  expect_invalid
    { funcs = [ { name = "f"; body = [ Call "missing" ] } ]; entry = "f" };
  expect_invalid { funcs = [ { name = "f"; body = [ Ret ] } ]; entry = "g" };
  expect_invalid
    {
      funcs = [ { name = "f"; body = [ Ret ] }; { name = "f"; body = [ Ret ] } ];
      entry = "f";
    };
  expect_invalid
    {
      funcs =
        [ { name = "f"; body = [ Label "l"; Label "l"; Ret ] } ];
      entry = "f";
    }

let test_code_addresses () =
  Alcotest.(check (option int)) "roundtrip" (Some 7)
    (Program.index_of_addr (Program.addr_of_index 7));
  Alcotest.(check (option int)) "misaligned" None
    (Program.index_of_addr (Program.code_base + 2));
  Alcotest.(check (option int)) "below base" None (Program.index_of_addr 0)

let test_validate () =
  let bad_prog body =
    { funcs = [ { name = "f"; body } ]; entry = "f" }
  in
  (match Program.validate (bad_prog [ Li (0, 1) ]) with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "write to zero should fail");
  (match Program.validate (bad_prog [ Alu (Add, 5, 40, Imm 0) ]) with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "register out of range should fail");
  match Program.validate (bad_prog [ Alu (Add, 5, 6, Reg 7); Ret ]) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("valid program rejected: " ^ e)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "isa"
    [
      ( "words",
        [
          tc "sign extension" test_sign_extend;
          tc "signed view" test_signed_view;
          tc "float bits" test_float_bits;
        ] );
      ( "asm",
        [
          tc "sample round-trip" test_roundtrip_samples;
          QCheck_alcotest.to_alcotest prop_instr_roundtrip;
          tc "parse errors" test_parse_errors;
          tc "comments" test_parse_comments;
        ] );
      ( "linker",
        [
          tc "targets" test_link_targets;
          tc "errors" test_link_errors;
          tc "code addresses" test_code_addresses;
          tc "validation" test_validate;
        ] );
    ]
