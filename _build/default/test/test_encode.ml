(* Binary encoding tests: word-level round trips (property-based over the
   whole instruction space), image serialization, and the Section 4.5
   forward-compatibility story (setbound degrades to a move on legacy
   cores, so annotated binaries still *run* — just unprotected). *)

open Hb_isa.Types
module Encode = Hb_isa.Encode
module Program = Hb_isa.Program
module Machine = Hb_cpu.Machine
module Codegen = Hb_minic.Codegen

let roundtrip_instr ?(target = 0) i =
  let ws = Encode.encode_instr ~target i in
  let arr = Array.of_list ws in
  let d = Encode.decode_at ~read:(fun p -> arr.(p)) 0 in
  (d, List.length ws)

let test_simple_roundtrips () =
  let cases =
    [
      Nop;
      Alu (Add, 5, 6, Reg 7);
      Alu (Sar, 10, 11, Imm (-3));
      Falu (Fmul, 12, 13, 14);
      Fneg (5, 6);
      Fsqrt (5, 6);
      Cvt_f_of_i (5, 6);
      Cvt_i_of_f (5, 6);
      Li (8, 123456789);
      Li (8, -42);
      Mov (9, 10);
      Load { dst = 5; base = 2; off = -16; width = W2; signed = true };
      Store { src = 5; base = 2; off = 1024; width = W1 };
      Setbound { dst = 5; src = 6; size = Imm 56 };
      Setbound { dst = 5; src = 6; size = Reg 7 };
      Setbound_narrow { dst = 5; src = 6; size = Imm 56 };
      Setbound_narrow { dst = 5; src = 6; size = Reg 7 };
      Setbound_unsafe (5, 6);
      Readbase (5, 6);
      Readbound (5, 6);
      Call_reg 11;
      Ret;
      Syscall Sys_mark_alloc;
    ]
  in
  List.iter
    (fun i ->
      let d, _ = roundtrip_instr i in
      Alcotest.(check bool)
        (Hb_isa.Printer.instr_str i)
        true (d.Encode.instr = i))
    cases

let test_control_flow_targets () =
  let d, _ = roundtrip_instr ~target:77 (Jmp "whatever") in
  Alcotest.(check int) "jmp target" 77 d.Encode.target;
  let d, _ = roundtrip_instr ~target:5 (Branch (Lt, 3, 4, "l")) in
  Alcotest.(check int) "branch target" 5 d.Encode.target;
  (match d.Encode.instr with
   | Branch (Lt, 3, 4, _) -> ()
   | _ -> Alcotest.fail "branch fields");
  let d, _ = roundtrip_instr ~target:9 (Call "f") in
  Alcotest.(check int) "call target" 9 d.Encode.target

(* property: random ALU/memory instructions survive the binary round trip *)
let gen_reg = QCheck.Gen.int_range 0 (num_regs - 1)

let gen_instr =
  QCheck.Gen.(
    oneof
      [
        (let* op =
           oneofl
             [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sar; Slt;
               Sle; Seq; Sne; Sgt; Sge; Sltu ]
         in
         let* rd = gen_reg and* rs = gen_reg in
         oneof
           [
             map (fun r -> Alu (op, rd, rs, Reg r)) gen_reg;
             map (fun v -> Alu (op, rd, rs, Imm v))
               (int_range (-0x40000000) 0x3FFFFFFF);
           ]);
        (let* rd = gen_reg and* rs = gen_reg in
         let* off = int_range (-100000) 100000 in
         let* width = oneofl [ W1; W2; W4 ] in
         let* signed = bool in
         return (Load { dst = rd; base = rs; off; width; signed }));
        (let* rd = gen_reg and* rs = gen_reg in
         let* sz = int_range 0 0x7FFFFFFF in
         return (Setbound { dst = rd; src = rs; size = Imm sz }));
      ])

let prop_binary_roundtrip =
  QCheck.Test.make ~name:"binary instruction round-trip" ~count:3000
    (QCheck.make ~print:Hb_isa.Printer.instr_str gen_instr)
    (fun i ->
      let d, _ = roundtrip_instr i in
      (* W4 loads ignore the signed flag distinction on decode only if
         semantically identical; compare via re-encoding *)
      Encode.encode_instr ~target:0 d.Encode.instr
      = Encode.encode_instr ~target:0 i)

let test_image_roundtrip () =
  let prog =
    {
      funcs =
        [
          {
            name = "main";
            body =
              [
                Li (t0, 5);
                Label "loop";
                Alu (Sub, t0, t0, Imm 1);
                Branch (Gt, t0, zero, "loop");
                Call "leaf";
                Mov (a0, t0);
                Syscall Sys_exit;
              ];
          };
          { name = "leaf"; body = [ Ret ] };
        ];
      entry = "main";
    }
  in
  let img = Program.link prog in
  let bin = Encode.encode_image img in
  let img2 = Encode.decode_image bin in
  Alcotest.(check int) "entry" img.Program.entry img2.Program.entry;
  (* decoded labels are synthetic ("@n"); compare modulo labels by
     re-encoding *)
  Alcotest.(check bool) "stable re-encoding" true
    (Encode.encode_image img2 = bin);
  Alcotest.(check bool) "targets" true
    (img.Program.target = img2.Program.target);
  (* and the decoded image still runs *)
  let m = Machine.create ~config:Machine.baseline_config ~globals:"" img2 in
  match Machine.run m with
  | Machine.Exited 0 -> ()
  | st -> Alcotest.failf "decoded image: %s" (Machine.status_name st)

let test_decode_errors () =
  (match Encode.decode_image "garbage!" with
   | exception Encode.Decode_error _ -> ()
   | _ -> Alcotest.fail "bad magic accepted");
  match Encode.decode_image "" with
  | exception Encode.Decode_error _ -> ()
  | _ -> Alcotest.fail "empty image accepted"

(* Section 4.5: a compiled-with-hardbound binary, stripped the way a
   legacy core would execute it, runs to completion with identical output
   — and no longer detects the violation. *)
let test_forward_compatibility () =
  let good = {|
int main() {
  int *a;
  int i;
  int s;
  a = (int*)malloc(8 * sizeof(int));
  for (i = 0; i < 8; i++) { a[i] = i; }
  s = 0;
  for (i = 0; i < 8; i++) { s = s + a[i]; }
  print_int(s);
  return 0;
}
|}
  in
  let bad = {|
int main() {
  int *a;
  a = (int*)malloc(8 * sizeof(int));
  a[8] = 1;
  print_str("corrupted silently");
  return 0;
}
|}
  in
  let run_stripped src =
    let image, globals = Hb_runtime.Build.compile ~mode:Codegen.Hardbound src in
    let legacy = Encode.strip_hardbound image in
    let m = Machine.create ~config:Machine.baseline_config ~globals legacy in
    let status = Machine.run m in
    (status, Machine.output m)
  in
  (match run_stripped good with
   | Machine.Exited 0, out -> Alcotest.(check string) "output intact" "28" out
   | st, _ -> Alcotest.failf "stripped good: %s" (Machine.status_name st));
  (* on new hardware the bad program traps; on legacy it sails through *)
  (match Hb_runtime.Build.run ~mode:Codegen.Hardbound bad with
   | Machine.Bounds_violation _, _ -> ()
   | st, _ -> Alcotest.failf "hardbound should trap: %s" (Machine.status_name st));
  match run_stripped bad with
  | Machine.Exited 0, out ->
    Alcotest.(check string) "legacy runs unprotected" "corrupted silently" out
  | st, _ -> Alcotest.failf "stripped bad: %s" (Machine.status_name st)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "encode"
    [
      ( "words",
        [
          tc "simple round-trips" test_simple_roundtrips;
          tc "control-flow targets" test_control_flow_targets;
          QCheck_alcotest.to_alcotest prop_binary_roundtrip;
        ] );
      ( "images",
        [
          tc "image round-trip + execution" test_image_roundtrip;
          tc "decode errors" test_decode_errors;
          tc "forward compatibility (4.5)" test_forward_compatibility;
        ] );
    ]
