(* End-to-end MiniC compiler tests: programs are compiled against the
   runtime and executed on the simulated machine in each instrumentation
   mode.  Checks cover language semantics (same output in every mode) and
   the protection behaviours the paper specifies. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Encoding = Hardbound.Encoding

let modes : Codegen.mode list =
  [ Codegen.Nochecks; Codegen.Hardbound; Codegen.Hardbound_malloc_only;
    Codegen.Softfat; Codegen.Objtable ]

let run ?scheme ~mode src = Build.run ?scheme ~mode src

let check_output name ~expect ~mode src =
  let status, m = run ~mode src in
  (match status with
   | Machine.Exited 0 -> ()
   | st ->
     Alcotest.failf "%s [%s]: %s\noutput: %s" name (Codegen.mode_name mode)
       (Machine.status_name st) (Machine.output m));
  Alcotest.(check string)
    (Printf.sprintf "%s [%s]" name (Codegen.mode_name mode))
    expect (Machine.output m)

(* Same program must produce identical output in every mode. *)
let check_all_modes name ~expect src =
  List.iter (fun mode -> check_output name ~expect ~mode src) modes

let detected name st =
  match st with
  | Machine.Bounds_violation _ | Machine.Non_pointer_violation _
  | Machine.Software_abort _ -> ()
  | st -> Alcotest.failf "%s: expected detection, got %s" name
            (Machine.status_name st)

(* ---- language basics -------------------------------------------------- *)

let test_hello () =
  check_all_modes "hello" ~expect:"hello, world\n"
    {|
int main() {
  print_str("hello, world");
  print_nl();
  return 0;
}
|}

let test_arith () =
  check_all_modes "arith" ~expect:"42 -3 7 1 20 3 -24"
    {|
int main() {
  int a; int b;
  a = 6; b = 7;
  print_int(a * b); print_char(32);
  print_int(-17 / 5); print_char(32);
  print_int(a | 1); print_char(32);
  print_int(a < b); print_char(32);
  print_int(5 << 2); print_char(32);
  print_int(a >> 1); print_char(32);
  print_int(~23);
  return 0;
}
|}

let test_control_flow () =
  check_all_modes "control flow" ~expect:"0 1 2 3 4 |10|55|6"
    {|
int main() {
  int i; int sum; int n;
  for (i = 0; i < 5; i++) { print_int(i); print_char(32); }
  print_char(124);
  i = 0;
  while (1) {
    i = i + 2;
    if (i >= 10) { break; }
  }
  print_int(i);
  print_char(124);
  sum = 0;
  for (i = 1; i <= 10; i++) {
    sum += i;
  }
  print_int(sum);
  print_char(124);
  n = 0;
  do { n = n + 3; } while (n < 5);
  print_int(n);
  return 0;
}
|}

let test_functions () =
  check_all_modes "functions" ~expect:"13 21 720"
    {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int fact(int n) {
  int r;
  r = 1;
  while (n > 1) { r = r * n; n--; }
  return r;
}
int main() {
  print_int(fib(7)); print_char(32);
  print_int(fib(8)); print_char(32);
  print_int(fact(6));
  return 0;
}
|}

let test_pointers_and_arrays () =
  check_all_modes "pointers" ~expect:"5 7 12 3"
    {|
void bump(int *p) { *p = *p + 2; }
int main() {
  int x; int a[4]; int *p; int i;
  x = 5;
  print_int(x); print_char(32);
  bump(&x);
  print_int(x); print_char(32);
  for (i = 0; i < 4; i++) { a[i] = i * i; }
  p = a;
  print_int(p[2] + p[0] + a[1] + 7); print_char(32);
  p = p + 3;
  print_int(*p - 6);
  return 0;
}
|}

let test_structs () =
  check_all_modes "structs" ~expect:"30 7 99"
    {|
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; int tag; };
int area(struct rect *r) {
  return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y);
}
int main() {
  struct rect r;
  struct point *p;
  r.lo.x = 1; r.lo.y = 2;
  r.hi.x = 6; r.hi.y = 8;
  r.tag = 7;
  print_int(area(&r)); print_char(32);
  print_int(r.tag); print_char(32);
  p = &r.hi;
  p->x = 99;
  print_int(r.hi.x);
  return 0;
}
|}

let test_heap () =
  check_all_modes "heap" ~expect:"10 45 ok"
    {|
struct node { int v; struct node *next; };
int main() {
  struct node *head; struct node *n; int i; int count; int sum;
  head = (struct node*)0;
  for (i = 0; i < 10; i++) {
    n = (struct node*)malloc(sizeof(struct node));
    n->v = i;
    n->next = head;
    head = n;
  }
  count = 0; sum = 0;
  n = head;
  while (n != 0) {
    count++;
    sum += n->v;
    n = n->next;
  }
  print_int(count); print_char(32);
  print_int(sum); print_char(32);
  while (head != 0) { n = head->next; free((char*)head); head = n; }
  print_str("ok");
  return 0;
}
|}

let test_strings () =
  check_all_modes "strings" ~expect:"11 0 -1 abcdef"
    {|
int main() {
  char buf[32];
  char buf2[8];
  print_int(strlen("hello world")); print_char(32);
  strcpy(buf, "same");
  print_int(strcmp(buf, "same")); print_char(32);
  print_int(strcmp("abc", "abd") < 0 ? -1 : 1); print_char(32);
  strcpy(buf, "abc");
  strcpy(buf2, "def");
  print_str(buf); print_str(buf2);
  return 0;
}
|}

let test_floats () =
  check_all_modes "floats" ~expect:"3.5000 1 3 2.0000"
    {|
float half(float x) { return x / 2.0; }
int main() {
  float a; float b;
  a = 3.0;
  b = a + 0.5;
  print_float(b); print_char(32);
  print_int(b > a); print_char(32);
  print_int((int)b); print_char(32);
  print_float(sqrtf(4.0));
  return 0;
}
|}

let test_globals () =
  check_all_modes "globals" ~expect:"7 1 2 3 hi 104"
    {|
int counter = 7;
int table[3] = {1, 2, 3};
char msg[] = "hi";
char *gp_str = "hello";
int main() {
  int i;
  print_int(counter); print_char(32);
  for (i = 0; i < 3; i++) { print_int(table[i]); print_char(32); }
  print_str(msg); print_char(32);
  print_int((int)gp_str[0]);
  return 0;
}
|}

let test_malloc_reuse () =
  check_all_modes "allocator reuse" ~expect:"1"
    {|
int main() {
  char *a; char *b;
  a = malloc(24);
  free(a);
  b = malloc(24);
  /* freed block is reused */
  print_int(a == b);
  return 0;
}
|}

let test_rand_deterministic () =
  check_all_modes "rand" ~expect:"ok"
    {|
int main() {
  int a; int b;
  srand(42);
  a = rand();
  srand(42);
  b = rand();
  if (a == b && a >= 0 && a < 32768) { print_str("ok"); }
  return 0;
}
|}

(* ---- protection behaviour --------------------------------------------- *)

(* Heap overflow: detected by Hardbound (both modes) and Softfat; the
   object-table scheme misses it (no arithmetic past the object: direct
   index IS arithmetic, so it catches it too). *)
let overflow_src = {|
int main() {
  char *p;
  int i;
  p = malloc(10);
  for (i = 0; i <= 10; i++) { p[i] = (char)i; }
  return 0;
}
|}

let test_heap_overflow_detection () =
  List.iter
    (fun mode ->
      let status, _ = run ~mode overflow_src in
      detected (Codegen.mode_name mode) status)
    [ Codegen.Hardbound; Codegen.Hardbound_malloc_only; Codegen.Softfat ];
  (* the object table tolerates one-past-the-end pointers (as Jones&Kelly
     must, for legal C); it catches the overflow one element later *)
  (match run ~mode:Codegen.Objtable overflow_src with
   | Machine.Exited 0, _ -> ()
   | st, _ -> Alcotest.failf "objtable one-past: %s" (Machine.status_name st));
  let far_src = {|
int main() {
  char *p;
  int i;
  p = malloc(10);
  for (i = 0; i <= 12; i++) { p[i] = (char)i; }
  return 0;
}
|}
  in
  let status, _ = run ~mode:Codegen.Objtable far_src in
  detected "objtable beyond one-past" status;
  (* baseline lets it through silently *)
  match run ~mode:Codegen.Nochecks overflow_src with
  | Machine.Exited 0, _ -> ()
  | st, _ -> Alcotest.failf "nochecks: %s" (Machine.status_name st)

(* The paper's Section 2.2 example: strcpy through a pointer to an array
   inside a struct overwrites the neighbouring field.  HardBound's
   sub-object narrowing catches it; the object-table scheme cannot (both
   pointers map to one table entry). *)
let subobject_src = {|
struct host { char str[5]; int x; };
int main() {
  struct host node;
  char *ptr;
  node.x = 7;
  ptr = node.str;
  strcpy(ptr, "overflow");
  print_int(node.x);
  return 0;
}
|}

let test_subobject_overflow () =
  let status, _ = run ~mode:Codegen.Hardbound subobject_src in
  detected "hardbound sub-object" status;
  let status, _ = run ~mode:Codegen.Softfat subobject_src in
  detected "softfat sub-object" status;
  (* object table: undetected, node.x is silently corrupted *)
  (match run ~mode:Codegen.Objtable subobject_src with
   | Machine.Exited 0, m ->
     Alcotest.(check bool) "objtable misses sub-object overflow" true
       (Machine.output m <> "7")
   | st, _ -> Alcotest.failf "objtable: %s" (Machine.status_name st));
  match run ~mode:Codegen.Nochecks subobject_src with
  | Machine.Exited 0, _ -> ()
  | st, _ -> Alcotest.failf "nochecks: %s" (Machine.status_name st)

(* Stack array overflow via a loop: needs compiler instrumentation, so the
   malloc-only mode does NOT catch it (paper: malloc-only protects heap
   objects only). *)
let stack_overflow_src = {|
int main() {
  int a[4];
  int i;
  int canary;
  canary = 7;
  for (i = 0; i <= 4; i++) { a[i] = 9; }
  return canary - 7;
}
|}

let test_stack_overflow () =
  let status, _ = run ~mode:Codegen.Hardbound stack_overflow_src in
  detected "hardbound stack" status;
  let status, _ = run ~mode:Codegen.Softfat stack_overflow_src in
  detected "softfat stack" status;
  match run ~mode:Codegen.Hardbound_malloc_only stack_overflow_src with
  | Machine.Exited 0, _ -> ()
  | st, _ ->
    Alcotest.failf "malloc-only should not detect stack overflow: %s"
      (Machine.status_name st)

(* Section 6.1 cast fragment: casting pointers through int works under
   HardBound (metadata propagates through movs); manufacturing a pointer
   from a constant fails on dereference. *)
let test_cast_semantics () =
  let src = {|
int main() {
  int x;
  char *z;
  int a;
  x = 17;
  z = (char*)&x;
  a = (int)z;
  *((int*)a) = 42;   /* legal: a inherits z's bounds */
  print_int(x);
  return 0;
}
|}
  in
  check_output "cast roundtrip" ~expect:"42" ~mode:Codegen.Hardbound src;
  let forged = {|
int main() {
  int *w;
  w = (int*)4096;
  *w = 42;
  return 0;
}
|}
  in
  let status, _ = run ~mode:Codegen.Hardbound forged in
  (match status with
   | Machine.Non_pointer_violation _ -> ()
   | st -> Alcotest.failf "forged pointer: %s" (Machine.status_name st))

(* global buffer overflow *)
let test_global_overflow () =
  let src = {|
int garr[4];
int main() {
  int i;
  for (i = 0; i <= 4; i++) { garr[i] = 1; }
  return 0;
}
|}
  in
  let status, _ = run ~mode:Codegen.Hardbound src in
  detected "global overflow" status

(* lower-bound violation *)
let test_underflow () =
  let src = {|
int main() {
  char *p;
  p = malloc(8);
  p[-1] = 1;
  return 0;
}
|}
  in
  List.iter
    (fun mode ->
      let status, _ = run ~mode src in
      detected ("underflow " ^ Codegen.mode_name mode) status)
    [ Codegen.Hardbound; Codegen.Hardbound_malloc_only; Codegen.Softfat ]

(* setbound escape hatch usable from source *)
let test_unsafe_builtin () =
  let src = {|
int main() {
  char *p;
  char *q;
  p = malloc(8);
  q = __setbound_unsafe(p);
  q[100] = 1;  /* out of p's bounds but q is unsafe */
  print_str("ok");
  return 0;
}
|}
  in
  check_output "unsafe builtin" ~expect:"ok" ~mode:Codegen.Hardbound src

(* compile errors are reported, not crashes *)
let test_compile_errors () =
  let expect_error src =
    match Build.compile ~mode:Codegen.Nochecks src with
    | exception Hb_minic.Driver.Compile_error _ -> ()
    | _ -> Alcotest.fail "expected compile error"
  in
  expect_error "int main() { undeclared = 1; return 0; }";
  expect_error "int main() { int x; x = \"str\" * 2; return 0; }";
  expect_error "int main() { return; }";
  expect_error "int f(; int main() { return 0; }";
  expect_error "struct s { int x; }; int main() { struct s v; v = v; return 0; }";
  expect_error "int main() { int a[4]; a[0] = missing(); return 0; }"

(* encodings do not change program results, only performance *)
let test_encoding_transparency () =
  let src = {|
struct n { int v; struct n *next; };
int main() {
  struct n *h; int i; int s;
  h = (struct n*)0;
  for (i = 0; i < 50; i++) {
    struct n *e;
    e = (struct n*)malloc(sizeof(struct n));
    e->v = i; e->next = h; h = e;
  }
  s = 0;
  while (h != 0) { s += h->v; h = h->next; }
  print_int(s);
  return 0;
}
|}
  in
  List.iter
    (fun scheme ->
      let status, m = run ~scheme ~mode:Codegen.Hardbound src in
      (match status with
       | Machine.Exited 0 -> ()
       | st ->
         Alcotest.failf "%s: %s" (Encoding.scheme_name scheme)
           (Machine.status_name st));
      Alcotest.(check string) (Encoding.scheme_name scheme) "1225"
        (Machine.output m))
    Encoding.all_schemes

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "minic"
    [
      ( "language",
        [
          tc "hello world" test_hello;
          tc "arithmetic" test_arith;
          tc "control flow" test_control_flow;
          tc "functions and recursion" test_functions;
          tc "pointers and arrays" test_pointers_and_arrays;
          tc "structs" test_structs;
          tc "heap lists" test_heap;
          tc "strings" test_strings;
          tc "floats" test_floats;
          tc "globals" test_globals;
          tc "allocator reuse" test_malloc_reuse;
          tc "deterministic rand" test_rand_deterministic;
        ] );
      ( "protection",
        [
          tc "heap overflow detection" test_heap_overflow_detection;
          tc "sub-object overflow (2.2 example)" test_subobject_overflow;
          tc "stack overflow" test_stack_overflow;
          tc "cast semantics (6.1)" test_cast_semantics;
          tc "global overflow" test_global_overflow;
          tc "lower bound" test_underflow;
          tc "unsafe escape hatch" test_unsafe_builtin;
          tc "compile errors" test_compile_errors;
          tc "encoding transparency" test_encoding_transparency;
        ] );
    ]
