test/test_cache.ml: Alcotest Hb_cache List QCheck QCheck_alcotest
