test/test_cpu.ml: Alcotest Hardbound Hb_cpu Hb_isa Hb_mem List Printf QCheck QCheck_alcotest String
