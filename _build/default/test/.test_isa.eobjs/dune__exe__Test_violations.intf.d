test/test_violations.mli:
