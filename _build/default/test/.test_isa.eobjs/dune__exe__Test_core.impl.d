test/test_core.ml: Alcotest Format Hardbound Hb_isa List Printf QCheck QCheck_alcotest
