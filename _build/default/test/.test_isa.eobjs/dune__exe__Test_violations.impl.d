test/test_violations.ml: Alcotest Hardbound Hb_minic Hb_violations List Printf
