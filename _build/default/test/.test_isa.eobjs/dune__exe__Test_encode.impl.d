test/test_encode.ml: Alcotest Array Hb_cpu Hb_isa Hb_minic Hb_runtime List QCheck QCheck_alcotest
