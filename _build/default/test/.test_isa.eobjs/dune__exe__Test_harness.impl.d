test/test_harness.ml: Alcotest Float Hardbound Hb_harness Hb_minic Hb_workloads List Printf String
