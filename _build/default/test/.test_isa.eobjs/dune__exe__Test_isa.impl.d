test/test_isa.ml: Alcotest Array Hb_isa List QCheck QCheck_alcotest
