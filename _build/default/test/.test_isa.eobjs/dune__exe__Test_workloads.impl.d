test/test_workloads.ml: Alcotest Hardbound Hb_cpu Hb_minic Hb_runtime Hb_workloads List Printf String
