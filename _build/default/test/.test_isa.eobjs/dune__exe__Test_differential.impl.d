test/test_differential.ml: Alcotest Hardbound Hb_cpu Hb_minic Hb_runtime List Printf QCheck QCheck_alcotest String
