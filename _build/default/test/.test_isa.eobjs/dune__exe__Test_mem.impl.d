test/test_mem.ml: Alcotest Hb_mem QCheck QCheck_alcotest
