test/test_runtime.ml: Alcotest Hb_cpu Hb_minic Hb_runtime
