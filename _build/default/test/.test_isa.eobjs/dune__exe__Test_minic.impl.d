test/test_minic.ml: Alcotest Hardbound Hb_cpu Hb_minic Hb_runtime List Printf
