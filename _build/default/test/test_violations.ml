(* Section 5.2: HardBound must detect every spatial violation in the
   corpus with zero false positives.  A sampled subset runs per-case
   checks across encodings; the full-corpus sweep lives in the bench
   harness (bench/main.exe --exp correctness). *)

module Gen = Hb_violations.Gen
module Runner = Hb_violations.Runner
module Codegen = Hb_minic.Codegen
module Encoding = Hardbound.Encoding

let cases = Gen.all_cases ()

let test_corpus_size () =
  (* the paper's corpus has 291 cases; ours enumerates a comparable matrix
     plus four extra idiom families (strings, interprocedural returns,
     computed indices, multi-dimensional arrays) *)
  Alcotest.(check bool)
    (Printf.sprintf "corpus has %d cases (expect ~430)" (List.length cases))
    true
    (List.length cases >= 400 && List.length cases <= 460);
  (* ids are unique *)
  let ids = List.map (fun c -> c.Gen.id) cases in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* every n-th case, full check under the default encoding *)
let test_sampled_cases () =
  let sampled = List.filteri (fun i _ -> i mod 7 = 0) cases in
  List.iter
    (fun case ->
      let r = Runner.run_case case in
      (match r.Runner.bad_verdict with
       | Runner.Detected -> ()
       | Runner.Clean -> Alcotest.failf "%s: bad version ran clean" case.Gen.id
       | Runner.Wrong s -> Alcotest.failf "%s: bad version %s" case.Gen.id s);
      match r.Runner.good_verdict with
      | Runner.Clean -> ()
      | Runner.Detected -> Alcotest.failf "%s: false positive" case.Gen.id
      | Runner.Wrong s -> Alcotest.failf "%s: good version %s" case.Gen.id s)
    sampled

(* detection is encoding-independent *)
let test_encodings_agree () =
  let sampled = List.filteri (fun i _ -> i mod 37 = 0) cases in
  List.iter
    (fun case ->
      List.iter
        (fun scheme ->
          let r = Runner.run_case ~scheme case in
          Alcotest.(check bool)
            (case.Gen.id ^ " under " ^ Encoding.scheme_name scheme)
            true
            (r.Runner.bad_verdict = Runner.Detected
            && r.Runner.good_verdict = Runner.Clean))
        Encoding.all_schemes)
    sampled

(* malloc-only mode: heap violations (except sub-object narrowing, which
   needs the compiler) are caught; stack/global ones are not *)
let test_malloc_only_scope () =
  let heap_simple =
    List.filter
      (fun c ->
        c.Gen.region = Gen.Heap
        && (c.Gen.idiom = Gen.Direct_index || c.Gen.idiom = Gen.Ptr_arith
           || c.Gen.idiom = Gen.Cast_struct))
      cases
  in
  let stack_cases =
    List.filter
      (fun c -> c.Gen.region = Gen.Stack && c.Gen.idiom = Gen.Direct_index)
      cases
  in
  List.iter
    (fun case ->
      let r = Runner.run_case ~mode:Codegen.Hardbound_malloc_only case in
      Alcotest.(check bool)
        ("malloc-only detects heap " ^ case.Gen.id)
        true
        (r.Runner.bad_verdict = Runner.Detected
        && r.Runner.good_verdict = Runner.Clean))
    (List.filteri (fun i _ -> i mod 5 = 0) heap_simple);
  List.iter
    (fun case ->
      let r = Runner.run_case ~mode:Codegen.Hardbound_malloc_only case in
      Alcotest.(check bool)
        ("malloc-only misses stack " ^ case.Gen.id)
        true
        (r.Runner.bad_verdict = Runner.Clean))
    (List.filteri (fun i _ -> i mod 5 = 0) stack_cases)

(* sub-object cases are exactly the ones the object-table scheme cannot
   catch (paper Section 2.2) but HardBound can *)
let test_subobject_discrimination () =
  let sub =
    List.filter
      (fun c -> c.Gen.idiom = Gen.Sub_object && c.Gen.magnitude = 1)
      cases
  in
  List.iter
    (fun case ->
      let hb = Runner.run_case ~mode:Codegen.Hardbound case in
      Alcotest.(check bool)
        ("hardbound catches " ^ case.Gen.id)
        true
        (hb.Runner.bad_verdict = Runner.Detected);
      let ot = Runner.run_case ~mode:Codegen.Objtable case in
      Alcotest.(check bool)
        ("objtable misses " ^ case.Gen.id)
        true
        (ot.Runner.bad_verdict = Runner.Clean))
    (List.filteri (fun i _ -> i mod 3 = 0) sub)

let () =
  let tc name f = Alcotest.test_case name `Slow f in
  Alcotest.run "violations"
    [
      ( "corpus",
        [
          Alcotest.test_case "corpus shape" `Quick test_corpus_size;
          tc "sampled cases detect / no false positives" test_sampled_cases;
          tc "encodings agree" test_encodings_agree;
          tc "malloc-only scope" test_malloc_only_scope;
          tc "sub-object discrimination" test_subobject_discrimination;
        ] );
    ]
