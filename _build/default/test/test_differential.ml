(* Differential testing: qcheck generates random (well-defined) MiniC
   programs; every instrumentation mode and every pointer encoding must
   produce exactly the baseline's output.  This is the strongest
   "transparency" property the paper relies on: for correct programs the
   protection machinery is invisible. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Encoding = Hardbound.Encoding

(* -- random program generator ------------------------------------------- *)

(* Programs operate on: int locals x0..x3, a heap int array a[8] (always
   indexed mod 8), and a global int array g[8].  All arithmetic avoids
   division by zero by construction. *)

open QCheck.Gen

let gen_expr =
  sized (fun n ->
      fix
        (fun self n ->
          let leaf =
            oneof
              [
                map (fun i -> string_of_int i) (int_range (-100) 100);
                map (fun i -> Printf.sprintf "x%d" i) (int_range 0 3);
                map (fun i -> Printf.sprintf "a[%d]" i) (int_range 0 7);
                map (fun i -> Printf.sprintf "g[%d]" i) (int_range 0 7);
                return "*p";
              ]
          in
          if n <= 1 then leaf
          else
            oneof
              [
                leaf;
                (let* op = oneofl [ "+"; "-"; "*" ] in
                 let* l = self (n / 2) in
                 let* r = self (n / 2) in
                 return (Printf.sprintf "(%s %s %s)" l op r));
                (let* l = self (n / 2) in
                 let* r = self (n / 2) in
                 return (Printf.sprintf "(%s < %s ? %s : %s)" l r r l));
                (let* l = self (n / 2) in
                 return (Printf.sprintf "(%s & 255)" l));
              ])
        n)

let gen_stmt =
  let* kind = int_range 0 5 in
  match kind with
  | 0 ->
    let* v = int_range 0 3 in
    let* e = gen_expr in
    return (Printf.sprintf "x%d = %s;" v e)
  | 1 ->
    let* i = int_range 0 7 in
    let* e = gen_expr in
    return (Printf.sprintf "a[%d] = %s;" i e)
  | 2 ->
    let* i = int_range 0 7 in
    let* e = gen_expr in
    return (Printf.sprintf "g[%d] = %s;" i e)
  | 3 ->
    let* c = gen_expr in
    let* v = int_range 0 3 in
    let* e = gen_expr in
    return (Printf.sprintf "if (%s) { x%d = %s; }" c v e)
  | 4 ->
    let* v = int_range 0 3 in
    let* e = gen_expr in
    (* bounded loop *)
    return
      (Printf.sprintf "for (it = 0; it < 5; it++) { x%d = x%d + (%s); }" v v e)
  | _ ->
    let* i = int_range 0 7 in
    return (Printf.sprintf "p = &a[0] + %d; *p = *p + 1; p = &a[%d];" i i)

let gen_program =
  let* stmts = list_size (int_range 3 12) gen_stmt in
  return
    (Printf.sprintf
       {|
int g[8];
int main() {
  int x0; int x1; int x2; int x3;
  int it;
  int *a;
  int *p;
  int i;
  a = (int*)malloc(8 * sizeof(int));
  for (i = 0; i < 8; i++) { a[i] = i * 3; g[i] = i - 4; }
  x0 = 1; x1 = 2; x2 = 3; x3 = 4;
  p = a;
  %s
  print_int(x0 + x1 + x2 + x3);
  print_char(32);
  for (i = 0; i < 8; i++) { print_int(a[i] + g[i]); print_char(32); }
  return 0;
}
|}
       (String.concat "\n  " stmts))

let arb_program = QCheck.make ~print:(fun s -> s) gen_program

let baseline_output src =
  match Build.run ~mode:Codegen.Nochecks src with
  | Machine.Exited 0, m -> Machine.output m
  | st, _ ->
    QCheck.Test.fail_reportf "baseline failed: %s" (Machine.status_name st)

let agrees src mode scheme =
  match Build.run ~scheme ~mode src with
  | Machine.Exited 0, m -> Machine.output m = baseline_output src
  | st, _ ->
    QCheck.Test.fail_reportf "%s/%s: %s" (Codegen.mode_name mode)
      (Encoding.scheme_name scheme) (Machine.status_name st)

let prop_modes_agree =
  QCheck.Test.make ~name:"all modes reproduce baseline output" ~count:60
    arb_program (fun src ->
      List.for_all
        (fun mode -> agrees src mode Encoding.Extern4)
        [ Codegen.Hardbound; Codegen.Hardbound_malloc_only; Codegen.Softfat;
          Codegen.Objtable ])

let prop_encodings_agree =
  QCheck.Test.make ~name:"all encodings reproduce baseline output" ~count:40
    arb_program (fun src ->
      List.for_all
        (fun scheme -> agrees src Codegen.Hardbound scheme)
        Encoding.all_schemes)

(* pointer round-trips through memory survive every mode: regression net
   for the store/load metadata path *)
let prop_pointer_roundtrip =
  QCheck.Test.make ~name:"pointer store/load transparency" ~count:40
    QCheck.(pair (int_bound 6) (int_bound 30))
    (fun (idx, size) ->
      let size = size + 2 in
      let src =
        Printf.sprintf
          {|
int main() {
  char **slots;
  char *obj;
  char *back;
  slots = (char**)malloc(8 * 4);
  obj = malloc(%d);
  obj[%d] = 'q';
  slots[%d] = obj;
  back = slots[%d];
  print_int(back == obj);
  print_int((int)back[%d] == 'q');
  return 0;
}
|}
          size (min idx (size - 1)) idx idx
          (min idx (size - 1))
      in
      List.for_all
        (fun scheme ->
          match Build.run ~scheme ~mode:Codegen.Hardbound src with
          | Machine.Exited 0, m -> Machine.output m = "11"
          | _ -> false)
        Encoding.all_schemes)

let () =
  Alcotest.run "differential"
    [
      ( "random-programs",
        [
          QCheck_alcotest.to_alcotest prop_modes_agree;
          QCheck_alcotest.to_alcotest prop_encodings_agree;
          QCheck_alcotest.to_alcotest prop_pointer_roundtrip;
        ] );
    ]
