lib/cache/tlb.mli: Sa_cache
