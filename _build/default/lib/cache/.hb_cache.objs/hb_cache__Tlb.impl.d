lib/cache/tlb.ml: Sa_cache
