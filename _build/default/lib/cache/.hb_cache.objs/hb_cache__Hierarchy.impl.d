lib/cache/hierarchy.ml: List Sa_cache Tlb
