(** Recursive-descent parser for MiniC. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_tunit : string -> Ast.tunit
(** Parse a translation unit (struct definitions, globals with optional
    initializers, function definitions).  Raises {!Parse_error} or
    {!Lexer.Lex_error}. *)
