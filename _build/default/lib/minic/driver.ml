(** Front-to-back compilation pipeline: source text -> linked image. *)

exception Compile_error of string

let compile_source ~(mode : Codegen.mode) (source : string) : Codegen.compiled =
  let tunit =
    try Parser.parse_tunit source with
    | Parser.Parse_error (line, msg) ->
      raise (Compile_error (Printf.sprintf "parse error at line %d: %s" line msg))
    | Lexer.Lex_error (line, msg) ->
      raise (Compile_error (Printf.sprintf "lex error at line %d: %s" line msg))
  in
  let typed =
    try Typecheck.check_tunit tunit
    with Typecheck.Type_error msg ->
      raise (Compile_error ("type error: " ^ msg))
  in
  try Codegen.compile ~mode typed
  with Codegen.Codegen_error msg ->
    raise (Compile_error ("codegen error: " ^ msg))

(** Compile and link to an executable image. *)
let build ~mode source =
  let compiled = compile_source ~mode source in
  (match Hb_isa.Program.validate compiled.Codegen.program with
   | Ok () -> ()
   | Error e -> raise (Compile_error ("invalid generated code: " ^ e)));
  let image = Hb_isa.Program.link compiled.Codegen.program in
  (image, compiled.Codegen.globals_image)
