lib/minic/codegen.mli: Hardbound Hb_isa Tast
