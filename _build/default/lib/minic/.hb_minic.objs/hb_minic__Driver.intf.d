lib/minic/driver.mli: Codegen Hb_isa
