lib/minic/lexer.mli:
