lib/minic/typecheck.ml: Ast Bytes Char Hashtbl Hb_isa List Option Printf String Tast
