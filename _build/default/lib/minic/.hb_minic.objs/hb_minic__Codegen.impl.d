lib/minic/codegen.ml: Ast Bytes Hardbound Hashtbl Hb_isa Hb_mem List Option Printf String Tast
