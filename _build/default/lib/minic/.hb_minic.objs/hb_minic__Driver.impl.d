lib/minic/driver.ml: Codegen Hb_isa Lexer Parser Printf Typecheck
