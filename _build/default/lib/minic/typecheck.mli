(** Type checker and lowering to {!Tast}.

    Besides C-subset checking, this pass decides where bounded pointers
    are *created* — the paper's instrumentation points (Section 3.2) —
    and marks them with [Bound] nodes: array decay, address-taken
    locals/globals, sub-object (struct field) narrowing, string
    literals.  [&p[i]] and [&*p] deliberately keep the source pointer's
    bounds (the paper's conservative treatment of [&q[3]]). *)

exception Type_error of string

val is_builtin : string -> bool
(** Compiler intrinsics ([__setbound], [print_int], [sbrk], ...). *)

val check_tunit : Ast.tunit -> Tast.tprogram
(** Check a whole translation unit (must define [main]).  Raises
    {!Type_error}. *)
