(** Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | STR_LIT of string
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

exception Lex_error of int * string
(** Line number (1-based) and message. *)

val keywords : string list

type t

val create : string -> t
(** Start lexing a source string; the first token is ready immediately. *)

val token : t -> token
(** Current lookahead token. *)

val token_line : t -> int
(** Line where the current token starts. *)

val junk : t -> unit
(** Advance to the next token. *)

val token_str : token -> string
