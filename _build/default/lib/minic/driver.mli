(** Front-to-back compilation pipeline: source text -> linked image. *)

exception Compile_error of string
(** Lex, parse, type and codegen errors, uniformly reported. *)

val compile_source : mode:Codegen.mode -> string -> Codegen.compiled
(** Parse, typecheck and generate code for one translation unit. *)

val build : mode:Codegen.mode -> string -> Hb_isa.Program.image * string
(** {!compile_source}, then validate and link.  Returns the executable
    image and the initial globals byte image. *)
