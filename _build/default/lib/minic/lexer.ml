(** Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | STR_LIT of string
  | IDENT of string
  | KW of string       (* int char float void struct if else while for do
                          return break continue sizeof *)
  | PUNCT of string    (* operators and delimiters *)
  | EOF

exception Lex_error of int * string

let keywords =
  [ "int"; "char"; "float"; "void"; "struct"; "if"; "else"; "while";
    "for"; "do"; "return"; "break"; "continue"; "sizeof" ]

(* Longest-match punctuation, ordered by length. *)
let puncts3 = [ "<<="; ">>=" ]
let puncts2 =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "++"; "--";
    "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "->" ]
let puncts1 =
  [ "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "~"; "&"; "|"; "^";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "."; "?"; ":" ]

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable tok : token;
  mutable tok_line : int;
}

let error lx msg = raise (Lex_error (lx.line, msg))

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2_char lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (if lx.pos < String.length lx.src && lx.src.[lx.pos] = '\n' then
     lx.line <- lx.line + 1);
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some '/' when peek2_char lx = Some '/' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | Some '/' when peek2_char lx = Some '*' ->
    advance lx;
    advance lx;
    let rec go () =
      match peek_char lx with
      | None -> error lx "unterminated comment"
      | Some '*' when peek2_char lx = Some '/' ->
        advance lx;
        advance lx
      | Some _ ->
        advance lx;
        go ()
    in
    go ();
    skip_ws lx
  | _ -> ()

let escape lx c =
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> error lx (Printf.sprintf "unknown escape \\%c" c)

let lex_number lx =
  let start = lx.pos in
  if
    peek_char lx = Some '0'
    && (peek2_char lx = Some 'x' || peek2_char lx = Some 'X')
  then begin
    advance lx;
    advance lx;
    while (match peek_char lx with Some c -> is_hex c | None -> false) do
      advance lx
    done;
    INT_LIT (int_of_string (String.sub lx.src start (lx.pos - start)))
  end
  else begin
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
    let is_float =
      peek_char lx = Some '.'
      && (match peek2_char lx with Some c -> is_digit c | None -> false)
    in
    if is_float then begin
      advance lx;
      while (match peek_char lx with Some c -> is_digit c | None -> false) do
        advance lx
      done;
      (match peek_char lx with
       | Some ('e' | 'E') ->
         advance lx;
         (match peek_char lx with
          | Some ('+' | '-') -> advance lx
          | _ -> ());
         while (match peek_char lx with Some c -> is_digit c | None -> false) do
           advance lx
         done
       | _ -> ());
      FLOAT_LIT (float_of_string (String.sub lx.src start (lx.pos - start)))
    end
    else INT_LIT (int_of_string (String.sub lx.src start (lx.pos - start)))
  end

let next_token lx =
  skip_ws lx;
  lx.tok_line <- lx.line;
  match peek_char lx with
  | None -> EOF
  | Some c when is_digit c -> lex_number lx
  | Some c when is_ident_start c ->
    let start = lx.pos in
    while (match peek_char lx with Some c -> is_ident c | None -> false) do
      advance lx
    done;
    let s = String.sub lx.src start (lx.pos - start) in
    if List.mem s keywords then KW s else IDENT s
  | Some '\'' ->
    advance lx;
    let c =
      match peek_char lx with
      | Some '\\' ->
        advance lx;
        let e =
          match peek_char lx with
          | Some e -> e
          | None -> error lx "unterminated char"
        in
        advance lx;
        escape lx e
      | Some c ->
        advance lx;
        c
      | None -> error lx "unterminated char"
    in
    if peek_char lx <> Some '\'' then error lx "expected closing quote";
    advance lx;
    INT_LIT (Char.code c)
  | Some '"' ->
    advance lx;
    let b = Buffer.create 16 in
    let rec go () =
      match peek_char lx with
      | None -> error lx "unterminated string"
      | Some '"' -> advance lx
      | Some '\\' ->
        advance lx;
        (match peek_char lx with
         | Some e ->
           advance lx;
           Buffer.add_char b (escape lx e);
           go ()
         | None -> error lx "unterminated string")
      | Some c ->
        advance lx;
        Buffer.add_char b c;
        go ()
    in
    go ();
    STR_LIT (Buffer.contents b)
  | Some _ ->
    let try_punct lst n =
      if lx.pos + n <= String.length lx.src then
        let s = String.sub lx.src lx.pos n in
        if List.mem s lst then Some s else None
      else None
    in
    (match try_punct puncts3 3 with
     | Some s ->
       lx.pos <- lx.pos + 3;
       PUNCT s
     | None ->
       (match try_punct puncts2 2 with
        | Some s ->
          lx.pos <- lx.pos + 2;
          PUNCT s
        | None ->
          (match try_punct puncts1 1 with
           | Some s ->
             advance lx;
             PUNCT s
           | None ->
             error lx
               (Printf.sprintf "unexpected character %C" lx.src.[lx.pos]))))

let create src =
  let lx = { src; pos = 0; line = 1; tok = EOF; tok_line = 1 } in
  lx.tok <- next_token lx;
  lx

let token lx = lx.tok
let token_line lx = lx.tok_line

let junk lx = lx.tok <- next_token lx

let token_str = function
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT f -> Printf.sprintf "%g" f
  | STR_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
