(** Code generation from {!Tast} to the HardBound ISA, parameterized by
    the protection scheme under evaluation.  All modes share one
    generator, so relative overheads between them are meaningful. *)

type mode =
  | Nochecks
      (** Uninstrumented baseline binary. *)
  | Hardbound
      (** The paper's full-safety compilation: the only extra code is
          [setbound.narrow] at pointer-creation points; checking and
          propagation are done by the hardware. *)
  | Hardbound_malloc_only
      (** Only explicit [__setbound] (i.e. the instrumented allocator)
          lowers to hardware setbound: Section 3.2's legacy-binary mode. *)
  | Softfat
      (** CCured/SEQ-style software fat pointers: value/base/bound triples
          in registers, split metadata in a software shadow space,
          explicit compare-and-branch checks. *)
  | Objtable
      (** Jones&Kelly-style object table (a splay tree in the MiniC
          runtime) consulted on dynamic pointer arithmetic; constant
          (struct-field) offsets statically elided, as in Dhurjati/Adve. *)

val mode_name : mode -> string

val machine_mode : mode -> Hardbound.Checker.mode
(** The hardware enforcement mode matching a compilation mode (software
    schemes run with the HardBound hardware off). *)

exception Codegen_error of string

type compiled = {
  program : Hb_isa.Types.program;
  globals_image : string;  (** initial bytes of the globals region *)
}

val compile : mode:mode -> Tast.tprogram -> compiled
(** Generate the whole program, including the synthesized [_start]
    (startup initializers, object-table registration of globals, call to
    [main], exit). *)

val trusted_for_objtable : string -> bool
(** Runtime internals ([__ot_*], the allocator) that the object-table
    scheme must not instrument. *)
