(** The implicit bounds check performed by every load and store
    (Figure 3 (C)/(D) of the paper). *)

(** Enforcement mode of the HardBound hardware. *)
type mode =
  | Off          (** Hardware disabled: the baseline machine. *)
  | Malloc_only
      (** Section 3.2's legacy-binary mode: only accesses carrying bounds
          information (seeded by the instrumented allocator) are checked;
          non-pointer dereferences pass. *)
  | Full
      (** Complete spatial safety: dereferencing a value without bounds
          metadata raises a non-pointer exception. *)

val mode_name : mode -> string

(** Everything a trap handler would want to know about a violation. *)
type violation = {
  pc : int;
  addr : int;
  width : int;
  meta : Meta.t;
  is_store : bool;
}

exception Bounds_violation of violation
exception Non_pointer_deref of violation

val describe_violation : violation -> string

val check :
  mode -> Meta.t -> pc:int -> addr:int -> width:int -> is_store:bool -> bool
(** Perform the check; raises on violation.  Returns [true] iff the
    access was actually checked (used for statistics). *)
