(** Bounded-pointer metadata: the sidecar {base; bound} of Section 3.1.

    The base is the first valid address of the region; the bound is the
    first address *after* the region.  [base = bound = 0] is the canonical
    non-pointer encoding — such a value raises a non-pointer exception if
    dereferenced under full-safety mode, and is never bounds-checked. *)

type t = { base : int; bound : int }

let non_pointer = { base = 0; bound = 0 }

let is_pointer m = m.base <> 0 || m.bound <> 0

(** Size in bytes of the referent region (meaningless for non-pointers). *)
let size m = m.bound - m.base

let make ~base ~size = { base; bound = base + size }

(** The paper's escape hatch (Section 3.2): a pointer that passes every
    bounds check.  Plays the role of unmanaged code in C#. *)
let unsafe = { base = 0; bound = Hb_isa.Types.max_int32u }

(** Code pointers get base = bound = MAXINT (Section 6.1): they are
    distinguishable from non-pointers but fail every data bounds check, so
    arbitrary function pointers cannot be forged into data pointers. *)
let code_pointer =
  { base = Hb_isa.Types.max_int32u; bound = Hb_isa.Types.max_int32u }

let equal a b = a.base = b.base && a.bound = b.bound

let to_string m =
  if not (is_pointer m) then "<non-pointer>"
  else Printf.sprintf "[0x%x, 0x%x)" m.base m.bound

(** Width-aware spatial check: the access [addr, addr+width) must fall
    inside [base, bound).  Figure 3 of the paper checks the pointer value
    only; we check the full accessed extent, which is strictly stronger and
    matches the intent (an m-byte access at bound-1 overflows). *)
let in_bounds m ~addr ~width =
  addr >= m.base && addr + width <= m.bound
