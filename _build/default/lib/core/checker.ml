(** Implicit bounds checking (Figure 3 (C)/(D) of the paper).

    Every load and store consults the metadata of the register being
    dereferenced.  Under full safety, dereferencing a non-pointer raises a
    non-pointer exception; under the malloc-only mode of Section 3.2,
    accesses without bounds information are simply not checked (legacy
    binaries only get heap-object protection). *)

(** Enforcement mode. *)
type mode =
  | Off          (** HardBound hardware disabled (baseline machine). *)
  | Malloc_only  (** Check only accesses that carry bounds information. *)
  | Full         (** Complete spatial safety: non-pointer deref is fatal. *)

let mode_name = function
  | Off -> "off"
  | Malloc_only -> "malloc-only"
  | Full -> "full"

type violation = {
  pc : int;           (* linked code index of the faulting instruction *)
  addr : int;         (* effective address of the access *)
  width : int;
  meta : Meta.t;
  is_store : bool;
}

exception Bounds_violation of violation
exception Non_pointer_deref of violation

let describe_violation v =
  Printf.sprintf "%s of %d byte(s) at 0x%x via %s (pc=%d)"
    (if v.is_store then "store" else "load")
    v.width v.addr (Meta.to_string v.meta) v.pc

(** Raises on violation; returns [true] iff the access was actually
    checked (used to count checked dereferences in statistics). *)
let check mode (m : Meta.t) ~pc ~addr ~width ~is_store =
  match mode with
  | Off -> false
  | Malloc_only ->
    if Meta.is_pointer m then begin
      if not (Meta.in_bounds m ~addr ~width) then
        raise (Bounds_violation { pc; addr; width; meta = m; is_store });
      true
    end
    else false
  | Full ->
    if not (Meta.is_pointer m) then
      raise (Non_pointer_deref { pc; addr; width; meta = m; is_store });
    if not (Meta.in_bounds m ~addr ~width) then
      raise (Bounds_violation { pc; addr; width; meta = m; is_store });
    true
