lib/core/meta.mli:
