lib/core/checker.mli: Meta
