lib/core/encoding.ml: Hb_mem Meta
