lib/core/propagate.mli: Hb_isa Meta
