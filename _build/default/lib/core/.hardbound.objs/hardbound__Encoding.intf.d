lib/core/encoding.mli: Meta
