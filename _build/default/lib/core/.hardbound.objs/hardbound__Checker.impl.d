lib/core/checker.ml: Meta Printf
