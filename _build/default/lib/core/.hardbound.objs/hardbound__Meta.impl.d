lib/core/meta.ml: Hb_isa Printf
