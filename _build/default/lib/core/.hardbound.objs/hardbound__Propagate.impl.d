lib/core/propagate.ml: Hb_isa Meta
