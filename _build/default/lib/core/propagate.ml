(** Hardware metadata propagation through register-to-register operations
    (Figure 3 (A)/(B) and Section 3.1 of the paper):

    - [add]/[sub] with an immediate or non-pointer operand propagate the
      pointer operand's bounds;
    - register-register [add]/[sub] take the first operand's bounds if it
      is a pointer, else the second's;
    - [mov] copies bounds;
    - multiply, divide, shift, rotate and logical operations do not
      propagate bounds (the paper notes they safely could, but opts not to);
    - [setbound] overwrites bounds; [readbase]/[readbound] produce
      non-pointer values. *)

open Hb_isa.Types

let propagates = function
  | Add | Sub -> true
  | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar
  | Slt | Sle | Seq | Sne | Sgt | Sge | Sltu -> false

(** Metadata for [rd <- rs OP (reg rs2)]. *)
let binop op (m1 : Meta.t) (m2 : Meta.t) =
  if propagates op then if Meta.is_pointer m1 then m1 else m2
  else Meta.non_pointer

(** Metadata for [rd <- rs OP imm]. *)
let binop_imm op (m1 : Meta.t) =
  if propagates op then m1 else Meta.non_pointer

(** Metadata written by setbound. *)
let setbound ~value ~size = Meta.make ~base:value ~size
