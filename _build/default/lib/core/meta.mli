(** Bounded-pointer metadata: the sidecar [{base; bound}] that HardBound
    (conceptually) attaches to every register and memory word
    (Section 3.1 of the paper). *)

type t = { base : int; bound : int }
(** [base] is the first valid address of the referent; [bound] the first
    address after it.  [{0; 0}] is the canonical non-pointer. *)

val non_pointer : t
(** Metadata of a non-pointer value: base = bound = 0. *)

val is_pointer : t -> bool
(** [true] unless both fields are zero. *)

val size : t -> int
(** Referent size in bytes ([bound - base]); meaningless for
    non-pointers. *)

val make : base:int -> size:int -> t
(** Bounds covering [size] bytes starting at [base]. *)

val unsafe : t
(** The paper's escape hatch (Section 3.2): base 0, bound MAXINT — passes
    every check.  For trusted low-level code only. *)

val code_pointer : t
(** Code pointers carry base = bound = MAXINT (Section 6.1): valid as
    indirect-call targets, but failing every data bounds check so that
    function pointers cannot be forged into data pointers. *)

val equal : t -> t -> bool

val to_string : t -> string

val in_bounds : t -> addr:int -> width:int -> bool
(** Width-aware spatial check: does the access [addr, addr+width) fall
    inside [base, bound)? *)
