(** Hardware metadata propagation through register-to-register operations
    (Figure 3 (A)/(B) of the paper). *)

val propagates : Hb_isa.Types.alu_op -> bool
(** [add]/[sub] propagate pointer bounds; multiply, divide, shifts and
    logical operations do not (the paper notes they safely could, but
    opts not to). *)

val binop : Hb_isa.Types.alu_op -> Meta.t -> Meta.t -> Meta.t
(** Metadata for [rd <- rs1 OP rs2]: the first operand's bounds if it is
    a pointer, else the second's (Figure 3 (B)). *)

val binop_imm : Hb_isa.Types.alu_op -> Meta.t -> Meta.t
(** Metadata for [rd <- rs OP imm]: copied from [rs] (Figure 3 (A)). *)

val setbound : value:int -> size:int -> Meta.t
(** Metadata written by the raw [setbound] instruction. *)
