(** Published numbers transcribed from the paper, for side-by-side
    comparison in the regenerated Figure 7 (columns we cannot reproduce —
    real Pentium4/Core2/Opteron hardware and the original JK/RL/DA and
    CCured implementations — are reported from the paper verbatim). *)

let benchmarks =
  [ "bh"; "bisort"; "em3d"; "health"; "mst"; "perimeter"; "power";
    "treeadd"; "tsp" ]

(* Figure 7, column 1: JK/RL/DA as published in Dhurjati&Adve (relative
   runtime, pool-allocation baseline). *)
let jk_published =
  [ ("bh", 1.00); ("bisort", 1.00); ("em3d", 1.68); ("health", 1.44);
    ("mst", 1.26); ("perimeter", 0.99); ("power", 1.00); ("treeadd", 0.98);
    ("tsp", 1.03) ]

(* Figure 7, column 2: CCured as published (includes temporal overheads). *)
let ccured_published =
  [ ("bh", 1.44); ("bisort", 1.09); ("em3d", 1.45); ("health", 1.07);
    ("mst", 1.87); ("perimeter", 1.10); ("power", 1.29); ("treeadd", 1.15);
    ("tsp", 1.06) ]

(* Figure 7, columns 3-5: the authors' own CCured (spatial-only) runs on
   real hardware. *)
let ccured_pentium4 =
  [ ("bh", 1.33); ("bisort", 1.09); ("em3d", 1.51); ("health", 0.99);
    ("mst", 1.12); ("perimeter", 1.22); ("power", 1.21); ("treeadd", 1.19);
    ("tsp", 0.96) ]

let ccured_core2 =
  [ ("bh", 1.18); ("bisort", 1.07); ("em3d", 1.39); ("health", 1.01);
    ("mst", 1.05); ("perimeter", 1.25); ("power", 1.02); ("treeadd", 1.18);
    ("tsp", 1.00) ]

let ccured_opteron =
  [ ("bh", 1.29); ("bisort", 1.09); ("em3d", 1.36); ("health", 1.01);
    ("mst", 1.09); ("perimeter", 1.32); ("power", 1.10); ("treeadd", 1.03);
    ("tsp", 1.00) ]

(* Figure 7, columns 6-7: CCured binaries under the authors' simulator
   (micro-op ratio, simulated runtime ratio). *)
let ccured_sim_uops =
  [ ("bh", 1.74); ("bisort", 1.22); ("em3d", 1.64); ("health", 1.23);
    ("mst", 1.39); ("perimeter", 1.58); ("power", 1.80); ("treeadd", 1.16);
    ("tsp", 1.09) ]

let ccured_sim_runtime =
  [ ("bh", 1.72); ("bisort", 1.20); ("em3d", 1.31); ("health", 1.11);
    ("mst", 1.06); ("perimeter", 1.51); ("power", 1.79); ("treeadd", 1.09);
    ("tsp", 1.07) ]

(* Figure 7, columns 8-10 (= Figure 5 totals): HardBound published. *)
let hardbound_extern4 =
  [ ("bh", 1.22); ("bisort", 1.01); ("em3d", 1.18); ("health", 1.17);
    ("mst", 1.16); ("perimeter", 1.02); ("power", 1.05); ("treeadd", 1.03);
    ("tsp", 1.02) ]

let hardbound_intern4 =
  [ ("bh", 1.22); ("bisort", 1.02); ("em3d", 1.04); ("health", 1.20);
    ("mst", 1.07); ("perimeter", 1.01); ("power", 1.05); ("treeadd", 1.03);
    ("tsp", 1.01) ]

let hardbound_intern11 =
  [ ("bh", 1.14); ("bisort", 1.02); ("em3d", 1.02); ("health", 1.15);
    ("mst", 1.05); ("perimeter", 1.01); ("power", 1.05); ("treeadd", 1.03);
    ("tsp", 1.01) ]

(* Figure 6: average extra distinct pages touched (fraction of baseline)
   reported in the text. *)
let fig6_avg_extern4 = 0.55
let fig6_avg_intern11 = 0.10

let get table name =
  match List.assoc_opt name table with
  | Some v -> v
  | None -> nan
