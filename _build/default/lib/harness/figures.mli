(** Regeneration of the paper's evaluation tables and figures as text
    tables (EXPERIMENTS.md tracks paper-vs-measured). *)

val figure5 : Suite.per_workload list -> string
(** Runtime overhead of HardBound by pointer encoding, decomposed into
    the paper's four segments. *)

val figure6 : Suite.per_workload list -> string
(** Extra distinct 4KB pages touched, split into tag and base/bound
    metadata. *)

val figure7 : Suite.per_workload list -> string
(** Comparison against the software-only schemes (published columns
    transcribed, simulated columns measured). *)

val uop_ablation : unit -> string
(** Section 5.4: charge one extra micro-op per bounds check of an
    uncompressed pointer. *)

val correctness : unit -> string
(** Section 5.2: full violation-corpus sweep. *)

val malloc_only : unit -> string
(** Section 3.2: detection scope of the legacy-binary mode. *)

val redzone : unit -> string
(** Section 2.1: red-zone tripwire baseline — detection and its gap. *)

val temporal : unit -> string
(** Section 6.2: the temporal-tracking extension on micro-tests. *)
