lib/harness/suite.ml: Hardbound Hb_minic Hb_workloads List Run
