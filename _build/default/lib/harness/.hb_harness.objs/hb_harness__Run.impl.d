lib/harness/run.ml: Hardbound Hb_cache Hb_cpu Hb_mem Hb_minic Hb_runtime Hb_workloads Printf
