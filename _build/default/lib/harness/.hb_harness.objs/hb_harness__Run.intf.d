lib/harness/run.mli: Hardbound Hb_minic Hb_workloads
