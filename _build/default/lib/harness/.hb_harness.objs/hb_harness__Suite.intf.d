lib/harness/suite.mli: Hardbound Run
