lib/harness/figures.ml: Buffer Gen Hardbound Hashtbl Hb_cpu Hb_minic Hb_runtime Hb_violations Hb_workloads List Paper_data Printf Run Runner Suite
