lib/harness/figures.mli: Suite
