(** Collects the full measurement matrix once (baseline + three HardBound
    encodings + the two software baselines per Olden benchmark); the
    figure printers read from it. *)

type per_workload = {
  name : string;
  baseline : Run.record;
  hb_extern4 : Run.record;
  hb_intern4 : Run.record;
  hb_intern11 : Run.record;
  softfat : Run.record option;
  objtable : Run.record option;
}

val hb_runs : per_workload -> (Hardbound.Encoding.scheme * Run.record) list

val collect :
  ?software:bool -> ?progress:(string -> unit) -> unit -> per_workload list
(** Runs every workload under every configuration; checks that every
    instrumented run reproduced the baseline's output (transparency). *)

val geo_mean : float list -> float
val mean : float list -> float
