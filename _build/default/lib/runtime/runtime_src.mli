(** The C runtime library, written in MiniC and compiled together with
    every program: the paper's instrumented allocator (Section 3.2),
    string/memory functions, a deterministic LCG, and the Jones&Kelly
    splay-tree object table used by the [Objtable] baseline. *)

val allocator : string
val strings : string
val util : string
val objtable : string

val ot_pool_nodes : int
(** Maximum live objects the object table can track. *)

val source : string
(** The full runtime, ready to prepend to a user program. *)
