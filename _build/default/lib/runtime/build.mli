(** Compile MiniC programs against the runtime and execute them on the
    simulated HardBound machine. *)

val compile :
  mode:Hb_minic.Codegen.mode -> string -> Hb_isa.Program.image * string
(** Compile runtime + user source as one translation unit; returns the
    linked image and the globals byte image. *)

val default_fuel : int

val config_for :
  ?scheme:Hardbound.Encoding.scheme ->
  ?temporal:bool ->
  ?tripwire:bool ->
  ?checked_deref_uop:bool ->
  ?max_instrs:int ->
  Hb_minic.Codegen.mode ->
  Hb_cpu.Machine.config
(** Machine configuration matching a compilation mode. *)

val run :
  ?scheme:Hardbound.Encoding.scheme ->
  ?temporal:bool ->
  ?tripwire:bool ->
  ?checked_deref_uop:bool ->
  ?max_instrs:int ->
  mode:Hb_minic.Codegen.mode ->
  string ->
  Hb_cpu.Machine.status * Hb_cpu.Machine.t
(** Compile and run; the returned machine gives access to program output,
    statistics and page counts. *)
