(** The C runtime library, written in MiniC and compiled together with
    every program (single translation unit; there is no linker).

    The allocator is the paper's instrumented [malloc] (Section 3.2): it
    communicates object extents to whichever protection scheme is active
    through three builtins the compiler lowers per mode —
    [__setbound] (HardBound hardware / software fat pointers),
    [__register_object]/[__unregister_object] (object-table baseline), and
    [__mark_alloc]/[__mark_free] (the temporal-tracking extension).

    The object table itself — a Sleator-Tarjan top-down splay tree, as in
    Jones&Kelly — is also MiniC code, so its cost is measured by the same
    simulator as everything else. *)

let allocator = {src|
/* ---- allocator ------------------------------------------------------ */

struct __hdr { int size; struct __hdr *next; };

struct __hdr *__free_list;

char *malloc(int n) {
  struct __hdr *h;
  struct __hdr *prev;
  char *raw;
  char *user;
  int total;
  if (n < 1) { n = 1; }
  /* capacity is word-rounded, but bounds cover the REQUESTED size: an
     access into the padding is still a spatial violation.  The extra 16
     bytes are a red zone left unmarked in the allocation-state map, so
     the Section 2.1 tripwire baseline has something to trip on. */
  total = ((n + 3) & ~3) + 8 + 16;
  /* first-fit reuse from the free list */
  prev = (struct __hdr*)0;
  h = __free_list;
  while (h != 0) {
    if (h->size >= n) {
      if (prev == 0) { __free_list = h->next; }
      else { prev->next = h->next; }
      h->size = n;
      user = (char*)h + 8;
      user = __setbound(user, n);
      __register_object(user, n);
      __mark_alloc(user, n);
      return user;
    }
    prev = h;
    h = h->next;
  }
  raw = sbrk(total);
  __mark_alloc(raw, 8);  /* header only: the red zone stays unmarked */
  h = (struct __hdr*)__setbound(raw, total);
  h->size = n;
  h->next = (struct __hdr*)0;
  user = (char*)h + 8;
  user = __setbound(user, n);
  __register_object(user, n);
  __mark_alloc(user, n);
  return user;
}

void free(char *p) {
  struct __hdr *h;
  int n;
  if (p == 0) { return; }
  /* the runtime is trusted: re-derive header bounds with setbound, the
     paper's custom-allocator escape hatch */
  h = (struct __hdr*)__setbound(p - 8, 8);
  n = h->size;
  __unregister_object(p, n);
  __mark_free(p, n);
  h = (struct __hdr*)__setbound(p - 8, ((n + 3) & ~3) + 8 + 16);
  h->next = __free_list;
  __free_list = h;
}

char *calloc(int n) {
  char *p;
  p = malloc(n);
  memset(p, 0, n);
  return p;
}
|src}

let strings = {src|
/* ---- strings and memory --------------------------------------------- */

int strlen(char *s) {
  int n;
  n = 0;
  while (s[n] != 0) { n = n + 1; }
  return n;
}

char *strcpy(char *d, char *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    d[i] = s[i];
    i = i + 1;
  }
  d[i] = 0;
  return d;
}

char *strncpy(char *d, char *s, int n) {
  int i;
  i = 0;
  while (i < n && s[i] != 0) {
    d[i] = s[i];
    i = i + 1;
  }
  while (i < n) { d[i] = 0; i = i + 1; }
  return d;
}

int strcmp(char *a, char *b) {
  int i;
  i = 0;
  while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return (int)a[i] - (int)b[i];
}

char *memset(char *p, int v, int n) {
  int i;
  for (i = 0; i < n; i++) { p[i] = (char)v; }
  return p;
}

char *memcpy(char *d, char *s, int n) {
  int i;
  for (i = 0; i < n; i++) { d[i] = s[i]; }
  return d;
}

void print_str(char *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    print_char((int)s[i]);
    i = i + 1;
  }
}

void print_nl() { print_char(10); }
|src}

let util = {src|
/* ---- misc ------------------------------------------------------------ */

int __rand_seed = 1;

void srand(int s) { __rand_seed = s; }

/* glibc-style LCG; 32-bit wraparound is intended */
int rand() {
  __rand_seed = __rand_seed * 1103515245 + 12345;
  return (__rand_seed >> 16) & 32767;
}

int abs(int x) {
  if (x < 0) { return -x; }
  return x;
}

int imin(int a, int b) { if (a < b) { return a; } return b; }
int imax(int a, int b) { if (a > b) { return a; } return b; }
|src}

(* Maximum live objects the object-table baseline can track. *)
let ot_pool_nodes = 65536

let objtable = Printf.sprintf {src|
/* ---- object table (Jones&Kelly-style splay tree) --------------------- */

struct __ot_node {
  int start;
  int end;
  struct __ot_node *left;
  struct __ot_node *right;
};

struct __ot_node __ot_pool[%d];
int __ot_pool_next;
struct __ot_node *__ot_freelist;
struct __ot_node *__ot_root;

struct __ot_node *__ot_alloc_node() {
  struct __ot_node *n;
  if (__ot_freelist != 0) {
    n = __ot_freelist;
    __ot_freelist = n->right;
    return n;
  }
  if (__ot_pool_next >= %d) { __abort(3); }
  n = &__ot_pool[__ot_pool_next];
  __ot_pool_next = __ot_pool_next + 1;
  return n;
}

void __ot_free_node(struct __ot_node *n) {
  n->right = __ot_freelist;
  __ot_freelist = n;
}

/* top-down splay around key */
struct __ot_node *__ot_splay(struct __ot_node *t, int key) {
  struct __ot_node hdr;
  struct __ot_node *l;
  struct __ot_node *r;
  struct __ot_node *y;
  if (t == 0) { return t; }
  hdr.left = (struct __ot_node*)0;
  hdr.right = (struct __ot_node*)0;
  l = &hdr;
  r = &hdr;
  while (1) {
    if (key < t->start) {
      if (t->left == 0) { break; }
      if (key < t->left->start) {
        y = t->left;
        t->left = y->right;
        y->right = t;
        t = y;
        if (t->left == 0) { break; }
      }
      r->left = t;
      r = t;
      t = t->left;
    } else if (key > t->start) {
      if (t->right == 0) { break; }
      if (key > t->right->start) {
        y = t->right;
        t->right = y->left;
        y->left = t;
        t = y;
        if (t->right == 0) { break; }
      }
      l->right = t;
      l = t;
      t = t->right;
    } else {
      break;
    }
  }
  l->right = t->left;
  r->left = t->right;
  t->left = hdr.right;
  t->right = hdr.left;
  return t;
}

void __ot_insert(char *p, int size) {
  struct __ot_node *n;
  int key;
  key = (int)p;
  if (__ot_root == 0) {
    n = __ot_alloc_node();
    n->start = key;
    n->end = key + size;
    n->left = (struct __ot_node*)0;
    n->right = (struct __ot_node*)0;
    __ot_root = n;
    return;
  }
  __ot_root = __ot_splay(__ot_root, key);
  if (key == __ot_root->start) {
    __ot_root->end = key + size;
    return;
  }
  n = __ot_alloc_node();
  n->start = key;
  n->end = key + size;
  if (key < __ot_root->start) {
    n->left = __ot_root->left;
    n->right = __ot_root;
    __ot_root->left = (struct __ot_node*)0;
  } else {
    n->right = __ot_root->right;
    n->left = __ot_root;
    __ot_root->right = (struct __ot_node*)0;
  }
  __ot_root = n;
}

void __ot_remove(char *p, int size) {
  struct __ot_node *t;
  int key;
  key = (int)p;
  size = size; /* extent is keyed by start address */
  if (__ot_root == 0) { return; }
  __ot_root = __ot_splay(__ot_root, key);
  if (__ot_root->start != key) { return; }
  t = __ot_root;
  if (t->left == 0) {
    __ot_root = t->right;
  } else {
    __ot_root = __ot_splay(t->left, key);
    __ot_root->right = t->right;
  }
  __ot_free_node(t);
}

/* node containing key, or null */
struct __ot_node *__ot_find(int key) {
  struct __ot_node *t;
  if (__ot_root == 0) { return (struct __ot_node*)0; }
  __ot_root = __ot_splay(__ot_root, key);
  t = __ot_root;
  if (t->start <= key && key < t->end) { return t; }
  if (key < t->start) {
    t = t->left;
    while (t != 0) {
      if (t->start <= key && key < t->end) { return t; }
      t = t->right;
    }
  }
  return (struct __ot_node*)0;
}

/* Check that pointer arithmetic stays within the source object.  Returns
   the new pointer.  Pointers into unregistered objects pass unchecked and
   one-past-the-end results are tolerated (the scheme's documented
   incompletenesses). */
char *__ot_check_arith(char *old, char *nw) {
  struct __ot_node *n;
  int k;
  n = __ot_find((int)old);
  if (n == 0) { return nw; }
  k = (int)nw;
  if (k >= n->start && k <= n->end) { return nw; }
  __abort(2);
  return nw;
}
|src} ot_pool_nodes ot_pool_nodes

let source = String.concat "\n" [ allocator; strings; util; objtable ]
