lib/runtime/build.mli: Hardbound Hb_cpu Hb_isa Hb_minic
