lib/runtime/runtime_src.ml: Printf String
