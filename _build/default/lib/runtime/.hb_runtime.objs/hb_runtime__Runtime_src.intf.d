lib/runtime/runtime_src.mli:
