lib/runtime/build.ml: Hardbound Hb_cpu Hb_minic Runtime_src
