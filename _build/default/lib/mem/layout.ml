(** Virtual address-space layout.

    All program data lives below [2^27] (128MB) so that the paper's 4-bit
    *internal* compressed encoding — which requires pointers into the lowest
    (or highest) 128MB of the address space — applies to every program
    pointer, matching the paper's evaluation setup.

    The two metadata regions follow Section 4.1 of the paper:
    - the base/bound shadow space at [shadow_base + addr*2] (base and bound
      interleaved so both are one double-word access), and
    - a tag space holding 1 or 4 bits per 32-bit word. *)

let page_size = 4096
let word = 4

let null_guard_limit = 0x1000
(** Page zero is never mapped; dereferencing a null-ish address is a bug in
    generated code (distinct from a HardBound bounds violation). *)

let globals_base = 0x00100000
let globals_limit = 0x00400000

let heap_base = 0x01000000
let heap_limit = 0x05000000

let stack_top = 0x07000000
let stack_size = 0x00400000 (* 4MB *)
let stack_base = stack_top - stack_size

let internal_region_limit = 0x08000000
(** Below this, the top 5 address bits are zero: eligible for the internal
    compressed encodings. *)

let tag_base = 0x70000000
let shadow_base = 0x80000000

(** Address of the interleaved {base,bound} double word for data word
    [addr] (which must be 4-byte aligned). *)
let shadow_addr addr = shadow_base + (addr * 2)

(** Tag-space byte address and intra-byte bit shift for [addr] under a tag
    of [bits] bits per word (1 or 4). *)
let tag_location ~bits addr =
  let widx = addr / word in
  match bits with
  | 1 -> (tag_base + (widx / 8), widx mod 8, 0x1)
  | 4 -> (tag_base + (widx / 2), (widx mod 2) * 4, 0xF)
  | _ -> invalid_arg "tag_location: bits must be 1 or 4"

type region = Code | Globals | Heap | Stack | Tag_space | Shadow_space | Other

let region_of addr =
  if addr >= shadow_base then Shadow_space
  else if addr >= tag_base then Tag_space
  else if addr >= stack_base && addr < stack_top then Stack
  else if addr >= heap_base && addr < heap_limit then Heap
  else if addr >= globals_base && addr < globals_limit then Globals
  else if addr >= 0x00010000 && addr < globals_base then Code
  else Other

let region_name = function
  | Code -> "code"
  | Globals -> "globals"
  | Heap -> "heap"
  | Stack -> "stack"
  | Tag_space -> "tag"
  | Shadow_space -> "shadow"
  | Other -> "other"
