lib/mem/layout.ml:
