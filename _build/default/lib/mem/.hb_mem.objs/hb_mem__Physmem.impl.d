lib/mem/physmem.ml: Bytes Char Hashtbl Layout List Printf String
