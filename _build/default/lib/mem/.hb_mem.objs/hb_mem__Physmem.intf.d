lib/mem/physmem.mli: Layout
