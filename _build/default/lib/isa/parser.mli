(** Assembler: parses the textual format emitted by {!Printer}.  Used by
    tests (round-trip property) and by the [hardbound_run --asm] CLI. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_program : string -> Types.program
(** Parse a complete assembly file ([.entry] directive, [.func]/[.end]
    blocks, [;] or [#] comments).  Raises {!Parse_error}. *)
