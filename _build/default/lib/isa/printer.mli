(** Textual assembly printer.  The format round-trips through {!Parser}. *)

val alu_name : Types.alu_op -> string
val falu_name : Types.falu_op -> string
val cond_name : Types.cond -> string
val width_suffix : Types.width -> string
val syscall_name : Types.syscall -> string
val operand_str : Types.operand -> string

val instr_str : Types.instr -> string
(** One instruction, without indentation or newline. *)

val func_str : Types.func -> string
(** A [.func name ... .end] block. *)

val program_str : Types.program -> string
(** Whole program, starting with the [.entry] directive. *)

val pp_instr : Format.formatter -> Types.instr -> unit
