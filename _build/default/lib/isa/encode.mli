(** Binary instruction encoding: 32-bit little-endian words (two for
    instructions carrying an immediate or target), plus image
    serialization and the Section 4.5 forward-compatibility transform. *)

exception Encode_error of string
exception Decode_error of int * string

val encode_instr : ?target:int -> Types.instr -> int list
(** One or two 32-bit words.  Control transfers need [target] (the
    resolved code index, as in a linked {!Program.image}). *)

type decoded = { instr : Types.instr; target : int; words : int }
(** [target] is -1 for non-control-flow; decoded labels are synthetic
    (["@<index>"]). *)

val decode_at : read:(int -> int) -> int -> decoded
(** Decode the instruction at word position [pos], fetching words through
    [read]. *)

val magic : int

val encode_image : Program.image -> string
(** Serialize a linked image (magic, entry, count, instruction words). *)

val decode_image : string -> Program.image
(** Inverse of {!encode_image}; raises {!Decode_error} on malformed
    input. *)

val strip_hardbound : Program.image -> Program.image
(** Execute the binary the way a legacy core would (Section 4.5):
    [setbound]/[setbound.narrow]/[setbound.unsafe] become plain moves,
    [readbase]/[readbound] read zero.  Annotated binaries keep running —
    unprotected. *)
