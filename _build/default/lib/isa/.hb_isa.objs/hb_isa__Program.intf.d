lib/isa/program.mli: Hashtbl Types
