lib/isa/encode.ml: Array Buffer Char Hashtbl List Printf Program String Types
