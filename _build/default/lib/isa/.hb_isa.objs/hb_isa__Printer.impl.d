lib/isa/printer.ml: Buffer Format List Printf Types
