lib/isa/parser.mli: Types
