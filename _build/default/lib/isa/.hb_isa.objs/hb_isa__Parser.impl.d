lib/isa/parser.ml: List String Types
