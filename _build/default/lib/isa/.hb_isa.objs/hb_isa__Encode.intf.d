lib/isa/encode.mli: Program Types
