lib/isa/printer.mli: Format Types
