lib/isa/program.ml: Array Hashtbl List Printf Types
