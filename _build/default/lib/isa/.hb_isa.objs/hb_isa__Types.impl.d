lib/isa/types.ml: Int32
