(** Olden [bisort]: bitonic sort of values stored in a perfect binary tree
    (tree in-order plus one spare value is the sequence).

    Deviation from Olden noted in DESIGN.md: our bitonic merge walks the
    two subtrees in lockstep (O(n) per merge) instead of Olden's
    subtree-pointer-swap shortcut; the data structure, recursion pattern
    and result are the same. *)

let name = "bisort"

(* 2^11 = 2048 elements, sorted twice (forward then backward), as Olden does *)
let source = {|
struct bnode {
  int value;
  struct bnode *left;
  struct bnode *right;
};

struct bnode *bbuild(int level) {
  struct bnode *t;
  t = (struct bnode*)malloc(sizeof(struct bnode));
  t->value = rand();
  if (level <= 1) {
    t->left = (struct bnode*)0;
    t->right = (struct bnode*)0;
    return t;
  }
  t->left = bbuild(level - 1);
  t->right = bbuild(level - 1);
  return t;
}

/* lockstep compare-exchange of corresponding in-order positions */
void pairwise(struct bnode *a, struct bnode *b, int dir) {
  int t;
  if (a == 0) { return; }
  if ((a->value > b->value) == dir) {
    t = a->value;
    a->value = b->value;
    b->value = t;
  }
  pairwise(a->left, b->left, dir);
  pairwise(a->right, b->right, dir);
}

int bimerge(struct bnode *root, int spr, int dir) {
  int t;
  if ((root->value > spr) == dir) {
    t = root->value;
    root->value = spr;
    spr = t;
  }
  if (root->left != 0) {
    pairwise(root->left, root->right, dir);
    root->value = bimerge(root->left, root->value, dir);
    spr = bimerge(root->right, spr, dir);
  }
  return spr;
}

int bisort(struct bnode *root, int spr, int dir) {
  int t;
  if (root->left == 0) {
    if ((root->value > spr) == dir) {
      t = root->value;
      root->value = spr;
      spr = t;
    }
    return spr;
  }
  root->value = bisort(root->left, root->value, dir);
  spr = bisort(root->right, spr, 1 - dir);
  return bimerge(root, spr, dir);
}

/* verify in-order monotonicity and accumulate a checksum */
int prev;
int sorted_ok;
int checksum;

void scan(struct bnode *t, int dir) {
  if (t == 0) { return; }
  scan(t->left, dir);
  if (dir == 1) {
    if (t->value < prev) { sorted_ok = 0; }
  } else {
    if (t->value > prev) { sorted_ok = 0; }
  }
  prev = t->value;
  checksum = checksum + t->value;
  scan(t->right, dir);
}

int main() {
  struct bnode *root;
  int spare;
  srand(12345);
  root = bbuild(11);
  spare = rand();
  spare = bisort(root, spare, 1);
  prev = -1;
  sorted_ok = 1;
  checksum = 0;
  scan(root, 1);
  if (spare < prev) { sorted_ok = 0; }
  print_str("bisort: forward ");
  print_int(sorted_ok);
  spare = bisort(root, spare, 0);
  prev = 99999999;
  sorted_ok = 1;
  scan(root, 0);
  if (spare > prev) { sorted_ok = 0; }
  print_str(" backward ");
  print_int(sorted_ok);
  print_str(" sum ");
  print_int(checksum);
  print_nl();
  return 0;
}
|}
