(** Olden [perimeter]: perimeter of a region stored as a quadtree (Samet's
    algorithm), with parent pointers and greater-or-equal adjacent
    neighbour finding.  The image is the same synthetic disk Olden uses. *)

let name = "perimeter"

(* 2^8 x 2^8 image, disk of radius 96 centered at (128, 128) *)
let source = {|
/* colors */
int WHITE; /* 0 */
int BLACK; /* 1 */
int GREY;  /* 2 */

/* child types / directions share the quadrant encoding */
int NW; /* 0 */
int NE; /* 1 */
int SW; /* 2 */
int SE; /* 3 */
/* sides */
int NORTH; /* 0 */
int EAST;  /* 1 */
int SOUTH; /* 2 */
int WEST;  /* 3 */

struct quad {
  int color;
  int childtype;
  struct quad *parent;
  struct quad *nw;
  struct quad *ne;
  struct quad *sw;
  struct quad *se;
};

int adj_table[16];     /* adj(side, quadrant): is quadrant adjacent to side */
int reflect_table[16]; /* reflect(side, quadrant) */

void init_tables() {
  GREY = 2; BLACK = 1; WHITE = 0;
  NW = 0; NE = 1; SW = 2; SE = 3;
  NORTH = 0; EAST = 1; SOUTH = 2; WEST = 3;
  /* a quadrant is adjacent to a side if it touches it */
  adj_table[0*4 + 0] = 1; adj_table[0*4 + 1] = 1; /* north: nw ne */
  adj_table[0*4 + 2] = 0; adj_table[0*4 + 3] = 0;
  adj_table[1*4 + 0] = 0; adj_table[1*4 + 1] = 1; /* east: ne se */
  adj_table[1*4 + 2] = 0; adj_table[1*4 + 3] = 1;
  adj_table[2*4 + 0] = 0; adj_table[2*4 + 1] = 0; /* south: sw se */
  adj_table[2*4 + 2] = 1; adj_table[2*4 + 3] = 1;
  adj_table[3*4 + 0] = 1; adj_table[3*4 + 1] = 0; /* west: nw sw */
  adj_table[3*4 + 2] = 1; adj_table[3*4 + 3] = 0;
  /* mirror a quadrant across a side */
  reflect_table[0*4 + 0] = 2; reflect_table[0*4 + 1] = 3; /* north <-> south */
  reflect_table[0*4 + 2] = 0; reflect_table[0*4 + 3] = 1;
  reflect_table[2*4 + 0] = 2; reflect_table[2*4 + 1] = 3;
  reflect_table[2*4 + 2] = 0; reflect_table[2*4 + 3] = 1;
  reflect_table[1*4 + 0] = 1; reflect_table[1*4 + 1] = 0; /* east <-> west */
  reflect_table[1*4 + 2] = 3; reflect_table[1*4 + 3] = 2;
  reflect_table[3*4 + 0] = 1; reflect_table[3*4 + 1] = 0;
  reflect_table[3*4 + 2] = 3; reflect_table[3*4 + 3] = 2;
}

struct quad *child(struct quad *q, int which) {
  if (which == 0) { return q->nw; }
  if (which == 1) { return q->ne; }
  if (which == 2) { return q->sw; }
  return q->se;
}

/* disk membership of the square (x, y, size): 0 outside, 1 inside, 2 mixed */
int classify(int x, int y, int size) {
  int cx; int cy; int r2;
  int dx; int dy;
  int corners_in;
  int i;
  int px; int py;
  cx = 128; cy = 128; r2 = 96 * 96;
  corners_in = 0;
  for (i = 0; i < 4; i++) {
    px = x; py = y;
    if (i == 1 || i == 3) { px = x + size; }
    if (i == 2 || i == 3) { py = y + size; }
    dx = px - cx; dy = py - cy;
    if (dx * dx + dy * dy <= r2) { corners_in = corners_in + 1; }
  }
  if (corners_in == 4) { return 1; }
  if (corners_in == 0) {
    /* square may still clip the disk when corners are all outside */
    if (x <= cx && cx <= x + size && y <= cy && cy <= y + size) { return 2; }
    dx = cx - imax(x, imin(cx, x + size));
    dy = cy - imax(y, imin(cy, y + size));
    if (dx * dx + dy * dy <= r2) { return 2; }
    return 0;
  }
  return 2;
}

struct quad *build(int x, int y, int size, int level, int ct, struct quad *parent) {
  struct quad *q;
  int c;
  q = (struct quad*)malloc(sizeof(struct quad));
  q->parent = parent;
  q->childtype = ct;
  q->nw = (struct quad*)0;
  q->ne = (struct quad*)0;
  q->sw = (struct quad*)0;
  q->se = (struct quad*)0;
  c = classify(x, y, size);
  if (c == 2 && level > 0) {
    int half;
    half = size / 2;
    q->color = GREY;
    q->nw = build(x, y, half, level - 1, 0, q);
    q->ne = build(x + half, y, half, level - 1, 1, q);
    q->sw = build(x, y + half, half, level - 1, 2, q);
    q->se = build(x + half, y + half, half, level - 1, 3, q);
    return q;
  }
  if (c == 1) { q->color = BLACK; }
  else if (c == 0) { q->color = WHITE; }
  else { q->color = BLACK; } /* mixed at max depth: round to black */
  return q;
}

/* Samet: greater-or-equal-size neighbour of q on side [side] */
struct quad *gtequal_adj_neighbor(struct quad *q, int side) {
  struct quad *p;
  if (q->parent != 0 && adj_table[side * 4 + q->childtype] == 1) {
    p = gtequal_adj_neighbor(q->parent, side);
  } else {
    p = q->parent;
  }
  if (p != 0 && p->color == GREY) {
    return child(p, reflect_table[side * 4 + q->childtype]);
  }
  return p;
}

/* total side length of WHITE leaves of q adjacent to side [side] */
int sum_adjacent(struct quad *q, int q1, int q2, int size) {
  if (q->color == GREY) {
    return sum_adjacent(child(q, q1), q1, q2, size / 2)
         + sum_adjacent(child(q, q2), q1, q2, size / 2);
  }
  if (q->color == WHITE) { return size; }
  return 0;
}

int count_black(struct quad *q) {
  if (q == 0) { return 0; }
  if (q->color == GREY) {
    return count_black(q->nw) + count_black(q->ne)
         + count_black(q->sw) + count_black(q->se);
  }
  if (q->color == BLACK) { return 1; }
  return 0;
}

int perimeter(struct quad *q, int size) {
  int retval;
  struct quad *neighbor;
  if (q->color == GREY) {
    int half;
    half = size / 2;
    return perimeter(q->nw, half) + perimeter(q->ne, half)
         + perimeter(q->sw, half) + perimeter(q->se, half);
  }
  if (q->color == WHITE) { return 0; }
  retval = 0;
  /* north neighbour: its adjacent side is our north edge */
  neighbor = gtequal_adj_neighbor(q, NORTH);
  if (neighbor == 0) { retval = retval + size; }
  else if (neighbor->color == WHITE) { retval = retval + size; }
  else if (neighbor->color == GREY) {
    retval = retval + sum_adjacent(neighbor, SW, SE, size);
  }
  neighbor = gtequal_adj_neighbor(q, EAST);
  if (neighbor == 0) { retval = retval + size; }
  else if (neighbor->color == WHITE) { retval = retval + size; }
  else if (neighbor->color == GREY) {
    retval = retval + sum_adjacent(neighbor, NW, SW, size);
  }
  neighbor = gtequal_adj_neighbor(q, SOUTH);
  if (neighbor == 0) { retval = retval + size; }
  else if (neighbor->color == WHITE) { retval = retval + size; }
  else if (neighbor->color == GREY) {
    retval = retval + sum_adjacent(neighbor, NW, NE, size);
  }
  neighbor = gtequal_adj_neighbor(q, WEST);
  if (neighbor == 0) { retval = retval + size; }
  else if (neighbor->color == WHITE) { retval = retval + size; }
  else if (neighbor->color == GREY) {
    retval = retval + sum_adjacent(neighbor, NE, SE, size);
  }
  return retval;
}

int main() {
  struct quad *root;
  int iter;
  int per;
  init_tables();
  root = build(0, 0, 256, 8, 0, (struct quad*)0);
  per = 0;
  for (iter = 0; iter < 3; iter++) {
    per = perimeter(root, 256);
  }
  print_str("perimeter: ");
  print_int(per);
  print_str(" black ");
  print_int(count_black(root));
  print_nl();
  return 0;
}
|}
