(** Olden [mst]: Bentley's minimum-spanning-tree on a dense random graph
    whose per-vertex edge weights live in chained hash tables, exactly as
    in the Olden source (hash of neighbour id -> weight).

    This is the benchmark for which the paper's authors added explicit
    [setbound] narrowing in three places where a pointer into the middle
    of an array denotes a single element (Section 5.3); the same idiom
    appears here in the hash-bucket initialization. *)

let name = "mst"

(* 160 vertices, complete graph *)
let source = {|
struct hash_entry {
  int key;
  int val;
  struct hash_entry *next;
};

struct hash {
  struct hash_entry **bucket;
  int size;
};

struct vertex {
  int mindist;
  struct vertex *next;
  struct hash *edges;
  int id;
};

struct hash *hash_new(int size) {
  struct hash *h;
  int i;
  h = (struct hash*)malloc(sizeof(struct hash));
  h->size = size;
  h->bucket = (struct hash_entry**)malloc(size * 4);
  for (i = 0; i < size; i++) {
    /* pointer to a single bucket slot: the mst narrowing idiom */
    struct hash_entry **slot;
    slot = __setbound(&h->bucket[i], 4);
    *slot = (struct hash_entry*)0;
  }
  return h;
}

void hash_insert(struct hash *h, int key, int val) {
  struct hash_entry *e;
  int b;
  e = (struct hash_entry*)malloc(sizeof(struct hash_entry));
  b = key % h->size;
  e->key = key;
  e->val = val;
  e->next = h->bucket[b];
  h->bucket[b] = e;
}

int hash_lookup(struct hash *h, int key) {
  struct hash_entry *e;
  e = h->bucket[key % h->size];
  while (e != 0) {
    if (e->key == key) { return e->val; }
    e = e->next;
  }
  return -1;
}

/* Olden's synthetic edge weight */
int edge_weight(int i, int j) {
  return ((i * 19 + j * 7) % 1000) + 1;
}

struct vertex *make_graph(int n) {
  struct vertex *head;
  struct vertex *v;
  struct vertex *u;
  int i;
  int j;
  head = (struct vertex*)0;
  for (i = n - 1; i >= 0; i--) {
    v = (struct vertex*)malloc(sizeof(struct vertex));
    v->id = i;
    v->mindist = 9999999;
    v->edges = hash_new(n / 4 + 1);
    v->next = head;
    head = v;
  }
  /* complete graph: weight of (i, j) stored in both hash tables */
  v = head;
  while (v != 0) {
    u = head;
    while (u != 0) {
      if (u->id != v->id) {
        hash_insert(v->edges, u->id, edge_weight(imin(v->id, u->id), imax(v->id, u->id)));
      }
      u = u->next;
    }
    v = v->next;
  }
  return head;
}

/* Prim's algorithm over the vertex list (Olden's BlueRule) */
int mst(struct vertex *graph) {
  struct vertex *inserted;
  struct vertex *v;
  struct vertex *best;
  int total;
  int dist;
  inserted = graph;
  graph = graph->next;
  inserted->mindist = 0;
  total = 0;
  while (graph != 0) {
    struct vertex *prev;
    struct vertex *bestprev;
    /* update tentative distances from the vertex just inserted */
    v = graph;
    while (v != 0) {
      dist = hash_lookup(v->edges, inserted->id);
      if (dist >= 0 && dist < v->mindist) { v->mindist = dist; }
      v = v->next;
    }
    /* extract the closest remaining vertex */
    best = graph;
    bestprev = (struct vertex*)0;
    prev = graph;
    v = graph->next;
    while (v != 0) {
      if (v->mindist < best->mindist) {
        best = v;
        bestprev = prev;
      }
      prev = v;
      v = v->next;
    }
    if (bestprev == 0) { graph = best->next; }
    else { bestprev->next = best->next; }
    total = total + best->mindist;
    inserted = best;
  }
  return total;
}

int main() {
  struct vertex *graph;
  graph = make_graph(160);
  print_str("mst: ");
  print_int(mst(graph));
  print_nl();
  return 0;
}
|}
