(** Olden [power]: price-directed optimization of a power network — a
    fixed-fanout tree (root -> feeders -> laterals -> branches -> leaves)
    walked bottom-up (demand aggregation) and top-down (price update) with
    floating-point local optimization at the leaves.

    Scaled down from Olden's 10x20x5x10 network; the per-node math is the
    same shape (impedance drop, quadratic demand response). *)

let name = "power"

let source = {|
struct leaf {
  float pi_r;      /* real power demand */
  float pi_i;      /* reactive */
  struct leaf *next;
};

struct branch {
  float r;         /* resistance */
  float x;         /* reactance */
  float p_in;
  float q_in;
  struct leaf *leaves;
  struct branch *next;
};

struct lateral {
  float r;
  float x;
  float p_in;
  float q_in;
  struct branch *branches;
  struct lateral *next;
};

struct feeder {
  struct lateral *laterals;
  struct feeder *next;
};

struct root {
  float price_r;
  float price_i;
  float total_p;
  float total_q;
  struct feeder *feeders;
};

struct leaf *build_leaves(int n) {
  struct leaf *head;
  struct leaf *l;
  int i;
  head = (struct leaf*)0;
  for (i = 0; i < n; i++) {
    l = (struct leaf*)malloc(sizeof(struct leaf));
    l->pi_r = 1.0;
    l->pi_i = 1.0;
    l->next = head;
    head = l;
  }
  return head;
}

struct branch *build_branches(int n, int leaves_per) {
  struct branch *head;
  struct branch *b;
  int i;
  head = (struct branch*)0;
  for (i = 0; i < n; i++) {
    b = (struct branch*)malloc(sizeof(struct branch));
    b->r = 0.0001;
    b->x = 0.00002;
    b->p_in = 0.0;
    b->q_in = 0.0;
    b->leaves = build_leaves(leaves_per);
    b->next = head;
    head = b;
  }
  return head;
}

struct lateral *build_laterals(int n, int branches_per, int leaves_per) {
  struct lateral *head;
  struct lateral *l;
  int i;
  head = (struct lateral*)0;
  for (i = 0; i < n; i++) {
    l = (struct lateral*)malloc(sizeof(struct lateral));
    l->r = 0.000083;
    l->x = 0.00003;
    l->p_in = 0.0;
    l->q_in = 0.0;
    l->branches = build_branches(branches_per, leaves_per);
    l->next = head;
    head = l;
  }
  return head;
}

struct feeder *build_feeders(int n, int laterals_per, int branches_per, int leaves_per) {
  struct feeder *head;
  struct feeder *f;
  int i;
  head = (struct feeder*)0;
  for (i = 0; i < n; i++) {
    f = (struct feeder*)malloc(sizeof(struct feeder));
    f->laterals = build_laterals(laterals_per, branches_per, leaves_per);
    f->next = head;
    head = f;
  }
  return head;
}

/* leaf demand responds to price (Olden's optimize_node, simplified to one
   Newton step of the same quadratic form) */
void compute_leaf(struct leaf *l, float pr, float pi) {
  float a;
  float b;
  a = 2.0 / (1.0 + pr);
  b = 1.0 / (1.0 + pi);
  l->pi_r = a;
  l->pi_i = b * 0.5;
}

void compute_branch(struct branch *b, float pr, float pi) {
  struct leaf *l;
  float p;
  float q;
  float drop;
  p = 0.0;
  q = 0.0;
  l = b->leaves;
  while (l != 0) {
    compute_leaf(l, pr, pi);
    p = p + l->pi_r;
    q = q + l->pi_i;
    l = l->next;
  }
  /* impedance drop along the branch */
  drop = b->r * (p * p + q * q);
  b->p_in = p + drop;
  b->q_in = q + b->x * (p * p + q * q);
}

void compute_lateral(struct lateral *lat, float pr, float pi) {
  struct branch *b;
  float p;
  float q;
  p = 0.0;
  q = 0.0;
  b = lat->branches;
  while (b != 0) {
    compute_branch(b, pr, pi);
    p = p + b->p_in;
    q = q + b->q_in;
    b = b->next;
  }
  lat->p_in = p + lat->r * (p * p + q * q);
  lat->q_in = q + lat->x * (p * p + q * q);
}

void compute_root(struct root *r) {
  struct feeder *f;
  struct lateral *lat;
  float p;
  float q;
  p = 0.0;
  q = 0.0;
  f = r->feeders;
  while (f != 0) {
    lat = f->laterals;
    while (lat != 0) {
      compute_lateral(lat, r->price_r, r->price_i);
      p = p + lat->p_in;
      q = q + lat->q_in;
      lat = lat->next;
    }
    f = f->next;
  }
  r->total_p = p;
  r->total_q = q;
  /* price update pushes demand toward the target capacity */
  r->price_r = r->price_r + 0.05 * (p / 1200.0 - 1.0);
  r->price_i = r->price_i + 0.05 * (q / 600.0 - 1.0);
}

int main() {
  struct root *r;
  int iter;
  r = (struct root*)malloc(sizeof(struct root));
  r->price_r = 1.0;
  r->price_i = 1.0;
  r->feeders = build_feeders(10, 12, 4, 8);
  for (iter = 0; iter < 8; iter++) {
    compute_root(r);
  }
  print_str("power: P ");
  print_float(r->total_p);
  print_str(" Q ");
  print_float(r->total_q);
  print_nl();
  return 0;
}
|}
