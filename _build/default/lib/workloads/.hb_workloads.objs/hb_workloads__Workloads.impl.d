lib/workloads/workloads.ml: Bh Bisort Em3d Health List Mst Perimeter Power Treeadd Tsp
