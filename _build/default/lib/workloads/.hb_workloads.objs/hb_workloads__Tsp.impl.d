lib/workloads/tsp.ml:
