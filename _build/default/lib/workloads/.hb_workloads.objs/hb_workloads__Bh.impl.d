lib/workloads/bh.ml:
