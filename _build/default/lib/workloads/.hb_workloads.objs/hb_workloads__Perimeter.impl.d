lib/workloads/perimeter.ml:
