lib/workloads/bisort.ml:
