lib/workloads/em3d.ml:
