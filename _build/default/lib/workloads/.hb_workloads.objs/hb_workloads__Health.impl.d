lib/workloads/health.ml:
