lib/workloads/treeadd.ml:
