lib/workloads/power.ml:
