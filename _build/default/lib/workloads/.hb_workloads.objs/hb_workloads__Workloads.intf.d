lib/workloads/workloads.mli:
