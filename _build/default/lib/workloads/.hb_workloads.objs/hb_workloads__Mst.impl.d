lib/workloads/mst.ml:
