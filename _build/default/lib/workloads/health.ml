(** Olden [health]: discrete-event simulation of the Colombian health-care
    system — a 4-ary tree of villages, each with waiting/assess/inside
    patient lists; patients that a village cannot treat are referred up the
    tree.  List surgery on heap nodes dominates. *)

let name = "health"

(* 5 levels (341 villages), 100 time steps *)
let source = {|
struct patient {
  int hosps_visited;
  int time;         /* total time in system */
  int time_left;    /* remaining time in current stage */
  struct patient *next;
};

struct village {
  struct village *child0;
  struct village *child1;
  struct village *child2;
  struct village *child3;
  struct patient *waiting;
  struct patient *assess;
  struct patient *inside;
  struct patient *up;       /* referred to parent this step */
  int free_personnel;
  int label;
  int seed;
  int treated;
  int total_time;
  int visits;       /* padding to Olden's village size: the struct must */
  int referrals;    /* exceed 56 bytes, i.e. not fit the 4-bit codes */
};

int vrand(struct village *v) {
  v->seed = v->seed * 1103515245 + 12345;
  return (v->seed >> 16) & 32767;
}

struct village *build(int level, int label) {
  struct village *v;
  v = (struct village*)malloc(sizeof(struct village));
  v->waiting = (struct patient*)0;
  v->assess = (struct patient*)0;
  v->inside = (struct patient*)0;
  v->up = (struct patient*)0;
  v->free_personnel = 2;
  v->label = label;
  v->seed = label * 123 + 1;
  v->treated = 0;
  v->total_time = 0;
  v->visits = 0;
  v->referrals = 0;
  if (level <= 1) {
    v->child0 = (struct village*)0;
    v->child1 = (struct village*)0;
    v->child2 = (struct village*)0;
    v->child3 = (struct village*)0;
    return v;
  }
  v->child0 = build(level - 1, label * 4 + 1);
  v->child1 = build(level - 1, label * 4 + 2);
  v->child2 = build(level - 1, label * 4 + 3);
  v->child3 = build(level - 1, label * 4 + 4);
  return v;
}

struct patient *list_append(struct patient *list, struct patient *p) {
  struct patient *cur;
  p->next = (struct patient*)0;
  if (list == 0) { return p; }
  cur = list;
  while (cur->next != 0) { cur = cur->next; }
  cur->next = p;
  return list;
}

/* treated patients leave; others age */
void check_inside(struct village *v) {
  struct patient *p;
  struct patient *prev;
  p = v->inside;
  prev = (struct patient*)0;
  while (p != 0) {
    p->time_left = p->time_left - 1;
    p->time = p->time + 1;
    if (p->time_left == 0) {
      v->treated = v->treated + 1;
      v->total_time = v->total_time + p->time;
      v->free_personnel = v->free_personnel + 1;
      if (prev == 0) { v->inside = p->next; }
      else { prev->next = p->next; }
      free((char*)p);
      if (prev == 0) { p = v->inside; } else { p = prev->next; }
    } else {
      prev = p;
      p = p->next;
    }
  }
}

/* assessment: after 3 steps decide local treatment or referral */
void check_assess(struct village *v) {
  struct patient *p;
  struct patient *prev;
  int decision;
  p = v->assess;
  prev = (struct patient*)0;
  while (p != 0) {
    struct patient *nxt;
    p->time_left = p->time_left - 1;
    p->time = p->time + 1;
    nxt = p->next;
    if (p->time_left == 0) {
      decision = vrand(v);
      if (prev == 0) { v->assess = nxt; } else { prev->next = nxt; }
      if (decision % 10 < 9 || v->child0 == 0) {
        /* treat here */
        p->time_left = 10;
        v->inside = list_append(v->inside, p);
      } else {
        /* refer up: frees local personnel */
        v->free_personnel = v->free_personnel + 1;
        p->hosps_visited = p->hosps_visited + 1;
        v->up = list_append(v->up, p);
      }
      p = nxt;
    } else {
      prev = p;
      p = nxt;
    }
  }
}

void check_waiting(struct village *v) {
  struct patient *p;
  struct patient *prev;
  p = v->waiting;
  prev = (struct patient*)0;
  while (p != 0 && v->free_personnel > 0) {
    v->free_personnel = v->free_personnel - 1;
    p->time_left = 3;
    if (prev == 0) { v->waiting = p->next; } else { prev->next = p->next; }
    v->assess = list_append(v->assess, p);
    if (prev == 0) { p = v->waiting; } else { p = prev->next; }
  }
  /* everyone still waiting ages */
  while (p != 0) {
    p->time = p->time + 1;
    p = p->next;
  }
}

void generate_patient(struct village *v) {
  struct patient *p;
  if (vrand(v) % 10 < 3) {
    p = (struct patient*)malloc(sizeof(struct patient));
    p->hosps_visited = 1;
    p->time = 0;
    p->time_left = 0;
    v->waiting = list_append(v->waiting, p);
  }
}

/* one simulation step; returns the list of patients referred upward */
struct patient *sim(struct village *v) {
  struct patient *moved;
  struct patient *p;
  if (v == 0) { return (struct patient*)0; }
  /* children first; their referrals join our waiting list */
  moved = sim(v->child0);
  while (moved != 0) { p = moved->next; v->waiting = list_append(v->waiting, moved); moved = p; }
  moved = sim(v->child1);
  while (moved != 0) { p = moved->next; v->waiting = list_append(v->waiting, moved); moved = p; }
  moved = sim(v->child2);
  while (moved != 0) { p = moved->next; v->waiting = list_append(v->waiting, moved); moved = p; }
  moved = sim(v->child3);
  while (moved != 0) { p = moved->next; v->waiting = list_append(v->waiting, moved); moved = p; }
  check_inside(v);
  check_assess(v);
  check_waiting(v);
  generate_patient(v);
  moved = v->up;
  v->up = (struct patient*)0;
  return moved;
}

int sum_treated(struct village *v) {
  if (v == 0) { return 0; }
  return v->treated + sum_treated(v->child0) + sum_treated(v->child1)
       + sum_treated(v->child2) + sum_treated(v->child3);
}

int sum_time(struct village *v) {
  if (v == 0) { return 0; }
  return v->total_time + sum_time(v->child0) + sum_time(v->child1)
       + sum_time(v->child2) + sum_time(v->child3);
}

int main() {
  struct village *top;
  struct patient *left_over;
  struct patient *p;
  int step;
  int treated;
  top = build(5, 0);
  for (step = 0; step < 100; step++) {
    left_over = sim(top);
    /* referrals from the root have nowhere to go: treat as returned */
    while (left_over != 0) {
      p = left_over->next;
      top->waiting = list_append(top->waiting, left_over);
      left_over = p;
    }
  }
  treated = sum_treated(top);
  print_str("health: treated ");
  print_int(treated);
  print_str(" time ");
  print_int(sum_time(top));
  print_nl();
  return 0;
}
|}
