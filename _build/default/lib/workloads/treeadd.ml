(** Olden [treeadd]: build a balanced binary tree on the heap, then sum it
    with a recursive walk.  The simplest of the Olden kernels; almost all
    work is heap-pointer chasing. *)

let name = "treeadd"

(* depth 15 = 32767 nodes (~1MB of heap) *)
let source = {|
struct tree {
  int val;
  struct tree *left;
  struct tree *right;
};

struct tree *build(int level) {
  struct tree *t;
  t = (struct tree*)malloc(sizeof(struct tree));
  t->val = 1;
  if (level <= 1) {
    t->left = (struct tree*)0;
    t->right = (struct tree*)0;
    return t;
  }
  t->left = build(level - 1);
  t->right = build(level - 1);
  return t;
}

int treeadd(struct tree *t) {
  if (t == 0) { return 0; }
  return t->val + treeadd(t->left) + treeadd(t->right);
}

int main() {
  struct tree *root;
  int total;
  int pass;
  root = build(15);
  total = 0;
  for (pass = 0; pass < 4; pass++) {
    total = total + treeadd(root);
  }
  print_str("treeadd: ");
  print_int(total);
  print_nl();
  return 0;
}
|}
