(** Registry of the Olden benchmark suite — the nine pointer-intensive
    programs the paper evaluates on (Section 5.1), re-implemented in
    MiniC with scaled inputs. *)

type t = {
  name : string;
  source : string;       (** complete MiniC program *)
  description : string;
}

val all : t list
(** bh, bisort, em3d, health, mst, perimeter, power, treeadd, tsp. *)

val find : string -> t
(** Raises [Invalid_argument] for unknown names. *)

val names : string list
