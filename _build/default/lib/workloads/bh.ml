(** Olden [bh]: Barnes-Hut hierarchical N-body simulation.  Bodies are
    inserted into an octree each step; a centre-of-mass pass and a
    theta-criterion force walk follow, then leapfrog integration.
    Float-heavy with deep tree recursion — the costliest Olden kernel in
    the paper's Figure 5, which is why it is also the one the authors
    hand-tuned (Section 5.3). *)

let name = "bh"

(* 128 bodies, 4 time steps *)
let source = {|
struct bnode {
  int is_body;
  float mass;
  float px; float py; float pz;
  struct bnode *child[8];
  float vx; float vy; float vz;
  float ax; float ay; float az;
};

int nbodies;
struct bnode *bodies[128];

float frand2() {
  return (float)(rand()) / 32768.0 - 0.5;
}

struct bnode *new_cell() {
  struct bnode *c;
  int i;
  c = (struct bnode*)malloc(sizeof(struct bnode));
  c->is_body = 0;
  c->mass = 0.0;
  for (i = 0; i < 8; i++) { c->child[i] = (struct bnode*)0; }
  return c;
}

int octant(struct bnode *b, float cx, float cy, float cz) {
  int o;
  o = 0;
  if (b->px > cx) { o = o + 1; }
  if (b->py > cy) { o = o + 2; }
  if (b->pz > cz) { o = o + 4; }
  return o;
}

float sub_center(float c, float s, int bit) {
  if (bit) { return c + s / 4.0; }
  return c - s / 4.0;
}

void insert(struct bnode *cell, struct bnode *b, float cx, float cy, float cz, float s) {
  int o;
  struct bnode *old;
  o = octant(b, cx, cy, cz);
  if (cell->child[o] == 0) {
    cell->child[o] = b;
    return;
  }
  if (cell->child[o]->is_body == 1) {
    /* split: replace the body with a cell holding both */
    old = cell->child[o];
    cell->child[o] = new_cell();
    insert(cell->child[o], old,
           sub_center(cx, s, o & 1), sub_center(cy, s, o & 2),
           sub_center(cz, s, o & 4), s / 2.0);
  }
  insert(cell->child[o], b,
         sub_center(cx, s, o & 1), sub_center(cy, s, o & 2),
         sub_center(cz, s, o & 4), s / 2.0);
}

/* centre-of-mass reduction */
void com(struct bnode *n) {
  int i;
  float m;
  float sx; float sy; float sz;
  struct bnode *c;
  if (n->is_body == 1) { return; }
  m = 0.0; sx = 0.0; sy = 0.0; sz = 0.0;
  for (i = 0; i < 8; i++) {
    c = n->child[i];
    if (c != 0) {
      com(c);
      m = m + c->mass;
      sx = sx + c->mass * c->px;
      sy = sy + c->mass * c->py;
      sz = sz + c->mass * c->pz;
    }
  }
  n->mass = m;
  n->px = sx / m;
  n->py = sy / m;
  n->pz = sz / m;
}

void add_force(struct bnode *b, struct bnode *n) {
  float dx; float dy; float dz;
  float d2;
  float d;
  float f;
  dx = n->px - b->px;
  dy = n->py - b->py;
  dz = n->pz - b->pz;
  d2 = dx * dx + dy * dy + dz * dz + 0.0001;
  d = sqrtf(d2);
  f = n->mass / (d2 * d);
  b->ax = b->ax + f * dx;
  b->ay = b->ay + f * dy;
  b->az = b->az + f * dz;
}

void walk(struct bnode *b, struct bnode *n, float s) {
  float dx; float dy; float dz;
  float d2;
  int i;
  if (n == 0) { return; }
  if (n->is_body == 1) {
    if (n != b) { add_force(b, n); }
    return;
  }
  dx = n->px - b->px;
  dy = n->py - b->py;
  dz = n->pz - b->pz;
  d2 = dx * dx + dy * dy + dz * dz;
  /* opening criterion: s/d < theta (theta = 0.5) */
  if (s * s < 0.25 * d2) {
    add_force(b, n);
    return;
  }
  for (i = 0; i < 8; i++) {
    walk(b, n->child[i], s / 2.0);
  }
}

int main() {
  struct bnode *b;
  struct bnode *root;
  int i;
  int step;
  float dt;
  float ke;
  nbodies = 128;
  dt = 0.025;
  srand(4321);
  for (i = 0; i < nbodies; i++) {
    b = (struct bnode*)malloc(sizeof(struct bnode));
    b->is_body = 1;
    b->mass = 1.0 / 128.0;
    b->px = frand2();
    b->py = frand2();
    b->pz = frand2();
    b->vx = frand2() / 10.0;
    b->vy = frand2() / 10.0;
    b->vz = frand2() / 10.0;
    bodies[i] = b;
  }
  for (step = 0; step < 4; step++) {
    root = new_cell();
    for (i = 0; i < nbodies; i++) {
      insert(root, bodies[i], 0.0, 0.0, 0.0, 4.0);
    }
    com(root);
    for (i = 0; i < nbodies; i++) {
      b = bodies[i];
      b->ax = 0.0; b->ay = 0.0; b->az = 0.0;
      walk(b, root, 4.0);
    }
    for (i = 0; i < nbodies; i++) {
      b = bodies[i];
      b->vx = b->vx + b->ax * dt;
      b->vy = b->vy + b->ay * dt;
      b->vz = b->vz + b->az * dt;
      b->px = b->px + b->vx * dt;
      b->py = b->py + b->vy * dt;
      b->pz = b->pz + b->vz * dt;
    }
  }
  ke = 0.0;
  for (i = 0; i < nbodies; i++) {
    b = bodies[i];
    ke = ke + b->mass * (b->vx * b->vx + b->vy * b->vy + b->vz * b->vz);
  }
  print_str("bh: ke ");
  print_float(ke * 1000.0);
  print_nl();
  return 0;
}
|}
