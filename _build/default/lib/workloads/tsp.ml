(** Olden [tsp]: Karp-style divide and conquer for the Euclidean travelling
    salesman problem.  Random points in the unit square are stored in a
    spatially-subdivided binary tree; subtree tours (circular doubly-linked
    lists threaded through the tree nodes) are merged bottom-up by
    cheapest-insertion of one tour into the other. *)

let name = "tsp"

(* 511 cities *)
let source = {|
struct city {
  float x;
  float y;
  struct city *left;
  struct city *right;
  struct city *next;   /* tour links (circular, doubly linked) */
  struct city *prev;
};

float frand() {
  return (float)(rand()) / 32768.0;
}

/* build a spatial subdivision tree: split the rectangle alternately */
struct city *build(int n, int dir, float lx, float hx, float ly, float hy) {
  struct city *t;
  float mx;
  float my;
  if (n == 0) { return (struct city*)0; }
  t = (struct city*)malloc(sizeof(struct city));
  if (dir == 0) {
    mx = (lx + hx) / 2.0;
    t->x = mx;
    t->y = ly + frand() * (hy - ly);
    t->left = build(n / 2, 1, lx, mx, ly, hy);
    t->right = build(n / 2, 1, mx, hx, ly, hy);
  } else {
    my = (ly + hy) / 2.0;
    t->y = my;
    t->x = lx + frand() * (hx - lx);
    t->left = build(n / 2, 0, lx, hx, ly, my);
    t->right = build(n / 2, 0, lx, hx, my, hy);
  }
  t->next = t;
  t->prev = t;
  return t;
}

float dist(struct city *a, struct city *b) {
  float dx;
  float dy;
  dx = a->x - b->x;
  dy = a->y - b->y;
  return sqrtf(dx * dx + dy * dy);
}

/* splice city c into tour after position p */
void splice(struct city *p, struct city *c) {
  c->next = p->next;
  c->prev = p;
  p->next->prev = c;
  p->next = c;
}

/* merge tour b into tour a by cheapest insertion of each b-city */
struct city *merge_tours(struct city *a, struct city *b) {
  struct city *c;
  struct city *stop;
  struct city *p;
  struct city *bestp;
  float bestcost;
  float cost;
  if (a == 0) { return b; }
  if (b == 0) { return a; }
  /* detach cities of b one at a time */
  while (1) {
    c = b;
    if (b->next == b) { b = (struct city*)0; }
    else {
      b = b->next;
      c->prev->next = c->next;
      c->next->prev = c->prev;
    }
    /* cheapest insertion point in a */
    bestp = a;
    bestcost = 1000000.0;
    p = a;
    stop = a;
    do {
      cost = dist(p, c) + dist(p->next, c) - dist(p, p->next);
      if (cost < bestcost) { bestcost = cost; bestp = p; }
      p = p->next;
    } while (p != stop);
    splice(bestp, c);
    if (b == 0) { break; }
  }
  return a;
}

struct city *tsp(struct city *t) {
  struct city *a;
  struct city *b;
  if (t == 0) { return (struct city*)0; }
  a = tsp(t->left);
  b = tsp(t->right);
  t->next = t;
  t->prev = t;
  a = merge_tours(a, t);
  return merge_tours(a, b);
}

float tour_length(struct city *tour) {
  float len;
  struct city *p;
  len = 0.0;
  p = tour;
  do {
    len = len + dist(p, p->next);
    p = p->next;
  } while (p != tour);
  return len;
}

int count_cities(struct city *tour) {
  int n;
  struct city *p;
  n = 0;
  p = tour;
  do {
    n = n + 1;
    p = p->next;
  } while (p != tour);
  return n;
}

int main() {
  struct city *tree;
  struct city *tour;
  srand(99);
  tree = build(511, 0, 0.0, 1.0, 0.0, 1.0);
  tour = tsp(tree);
  print_str("tsp: cities ");
  print_int(count_cities(tour));
  print_str(" length ");
  print_float(tour_length(tour));
  print_nl();
  return 0;
}
|}
