(** Olden [em3d]: electromagnetic wave propagation on a random bipartite
    graph.  E-field nodes depend on H-field nodes and vice versa; each
    iteration updates every node from its [from] list with per-edge
    coefficients.  Pointer-array chasing plus float arithmetic. *)

let name = "em3d"

(* 1800 nodes per side, degree 8, 8 iterations (Olden defaults scaled);
   the working set (~300KB of nodes plus edge arrays) deliberately
   exceeds the L1 and tag caches, as in the paper's runs *)
let source = {|
struct enode {
  float value;
  int from_count;
  struct enode **from_nodes;
  float *coeffs;
  struct enode *next;
};

struct enode *make_list(int n) {
  struct enode *head;
  struct enode *e;
  int i;
  head = (struct enode*)0;
  for (i = 0; i < n; i++) {
    e = (struct enode*)malloc(sizeof(struct enode));
    e->value = (float)(rand() & 255) / 16.0;
    e->from_count = 0;
    e->from_nodes = (struct enode**)0;
    e->coeffs = (float*)0;
    e->next = head;
    head = e;
  }
  return head;
}

/* index the list once so wiring picks sources in O(1) */
struct enode **make_table(struct enode *list, int n) {
  struct enode **tab;
  int i;
  tab = (struct enode**)malloc(n * 4);
  for (i = 0; i < n; i++) {
    tab[i] = list;
    list = list->next;
  }
  return tab;
}

void wire(struct enode *dests, struct enode **srcs, int n, int degree) {
  struct enode *e;
  int i;
  e = dests;
  while (e != 0) {
    e->from_count = degree;
    e->from_nodes = (struct enode**)malloc(degree * 4);
    e->coeffs = (float*)malloc(degree * 4);
    for (i = 0; i < degree; i++) {
      e->from_nodes[i] = srcs[rand() % n];
      e->coeffs[i] = (float)(rand() & 127) / 256.0;
    }
    e = e->next;
  }
}

void compute(struct enode *list) {
  struct enode *e;
  int i;
  float v;
  e = list;
  while (e != 0) {
    v = e->value;
    for (i = 0; i < e->from_count; i++) {
      v = v - e->coeffs[i] * e->from_nodes[i]->value;
    }
    e->value = v;
    e = e->next;
  }
}

float fchecksum(struct enode *list) {
  float s;
  s = 0.0;
  while (list != 0) {
    s = s + list->value / 64.0;
    list = list->next;
  }
  return s;
}

int main() {
  struct enode *e_nodes;
  struct enode *h_nodes;
  struct enode **e_tab;
  struct enode **h_tab;
  int iter;
  int n;
  int degree;
  n = 1800;
  degree = 8;
  srand(783);
  e_nodes = make_list(n);
  h_nodes = make_list(n);
  e_tab = make_table(e_nodes, n);
  h_tab = make_table(h_nodes, n);
  wire(e_nodes, h_tab, n, degree);
  wire(h_nodes, e_tab, n, degree);
  for (iter = 0; iter < 8; iter++) {
    compute(e_nodes);
    compute(h_nodes);
  }
  print_str("em3d: ");
  print_float(fchecksum(e_nodes) + fchecksum(h_nodes));
  print_nl();
  return 0;
}
|}
