(** Spatial-violation test-case generator, standing in for the
    Kratkiewicz/Lippmann corpus the paper uses in Section 5.2.

    The paper describes the suite as covering "various combinations of:
    reads and writes; upper and lower bounds; stack, heap, and global data
    segments; and various addressing schemes and aliasing situations",
    each case in two versions — one with the violation and one without
    (for false-positive testing).  This generator enumerates exactly that
    matrix.  Each case is a complete MiniC program. *)

type region = Heap | Stack | Global
type access = Read | Write
type boundary = Upper | Lower

(** Addressing schemes / aliasing situations. *)
type idiom =
  | Direct_index   (* a[i] *)
  | Ptr_arith      (* q = p + i; *q *)
  | Loop_walk      (* small-stride walk past the boundary *)
  | Fn_arg         (* pointer passed to a function, accessed there *)
  | Sub_object     (* array inside a struct: needs sub-object narrowing *)
  | Cast_struct    (* allocation cast to a larger struct *)
  | Cond_alias     (* pointer aliases one of two objects, data dependent *)
  | Str_func       (* overflow via strcpy / unterminated strlen *)
  | Interproc_ret  (* pointer obtained from a function return *)
  | Computed_idx   (* index produced by an arithmetic chain *)
  | Multi_dim      (* row overflow inside a 2D array (row narrowing) *)

type width = Byte | Word

type case = {
  id : string;
  region : region;
  access : access;
  boundary : boundary;
  idiom : idiom;
  magnitude : int;  (* elements past the boundary in the bad version *)
  width : width;
  good : string;    (* program without the violation *)
  bad : string;     (* program with the violation *)
}

let region_name = function Heap -> "heap" | Stack -> "stack" | Global -> "global"
let access_name = function Read -> "read" | Write -> "write"
let boundary_name = function Upper -> "upper" | Lower -> "lower"

let idiom_name = function
  | Direct_index -> "index"
  | Ptr_arith -> "arith"
  | Loop_walk -> "loop"
  | Fn_arg -> "fnarg"
  | Sub_object -> "subobj"
  | Cast_struct -> "cast"
  | Cond_alias -> "alias"
  | Str_func -> "strfn"
  | Interproc_ret -> "ipret"
  | Computed_idx -> "computed"
  | Multi_dim -> "multidim"

let width_name = function Byte -> "byte" | Word -> "word"

let n_elems = 8

let elem_ty = function Byte -> "char" | Word -> "int"

(* the access statement for a checked element expression *)
let access_stmt access expr =
  match access with
  | Write -> Printf.sprintf "%s = 1;" expr
  | Read ->
    Printf.sprintf "sink = (int)%s;\n  if (sink == 123456789) { print_int(sink); }" expr

(* declaration + initialization of the target object, yielding pointer
   variable [p] of elem type, plus anything global needed *)
let setup region w =
  let t = elem_ty w in
  match region with
  | Heap ->
    ("",
     Printf.sprintf "  p = (%s*)malloc(%d * sizeof(%s));\n  \
                     for (si = 0; si < %d; si++) { p[si] = (%s)si; }\n"
       t n_elems t n_elems t)
  | Stack ->
    ("",
     Printf.sprintf "  p = arr;\n  for (si = 0; si < %d; si++) { p[si] = (%s)si; }\n"
       n_elems t)
  | Global ->
    (Printf.sprintf "%s g_arr[%d];\n" t n_elems,
     Printf.sprintf "  p = g_arr;\n  for (si = 0; si < %d; si++) { p[si] = (%s)si; }\n"
       n_elems t)

let stack_decl region w =
  if region = Stack then Printf.sprintf "  %s arr[%d];\n" (elem_ty w) n_elems
  else ""

(* index used by the good and bad versions *)
let indices boundary magnitude =
  match boundary with
  | Upper -> (n_elems - 1, n_elems - 1 + magnitude)
  | Lower -> (0, -magnitude)

let prog ~globals ~body =
  Printf.sprintf "%s\nint main() {\n%s  print_str(\"done\");\n  return 0;\n}\n"
    globals body

let gen_simple region access boundary idiom magnitude w =
  let t = elem_ty w in
  let good_i, bad_i = indices boundary magnitude in
  let globals, init = setup region w in
  let make idx =
    let decls =
      Printf.sprintf "  %s *p;\n  %s *q;\n  int si;\n  int sink;\n%s" t t
        (stack_decl region w)
    in
    let access_code =
      match idiom with
      | Direct_index -> access_stmt access (Printf.sprintf "p[%d]" idx)
      | Ptr_arith ->
        Printf.sprintf "q = p + %d;\n  %s" idx (access_stmt access "(*q)")
      | Loop_walk ->
        (* a small-stride walk that runs up (or down) to the index *)
        let header =
          match boundary with
          | Upper -> Printf.sprintf "for (si = 0; si <= %d; si++)" idx
          | Lower -> Printf.sprintf "for (si = %d; si >= %d; si--)" (n_elems - 1) idx
        in
        (match access with
         | Write -> Printf.sprintf "%s { p[si] = 2; }" header
         | Read ->
           Printf.sprintf
             "sink = 0;\n  %s { sink = sink + (int)p[si]; }\n  \
              if (sink == 123456789) { print_int(sink); }"
             header)
      | Fn_arg -> Printf.sprintf "helper(p, %d);" idx
      | _ -> assert false
    in
    let helper =
      if idiom = Fn_arg then
        match access with
        | Write ->
          Printf.sprintf "void helper(%s *hp, int hidx) { hp[hidx] = 1; }\n" t
        | Read ->
          Printf.sprintf
            "int helper(%s *hp, int hidx) { return (int)hp[hidx]; }\n" t
      else ""
    in
    prog ~globals:(globals ^ helper)
      ~body:(decls ^ init ^ "  " ^ access_code ^ "\n")
  in
  (make good_i, make bad_i)

(* array embedded in a struct; the bad index stays inside the struct so
   only sub-object narrowing can catch it *)
let gen_sub_object region access boundary magnitude w =
  let t = elem_ty w in
  let magnitude = min magnitude 3 in
  let good_i, bad_i = indices boundary magnitude in
  let sdef =
    Printf.sprintf
      "struct wrap { %s pre[4]; %s arr[%d]; %s post[4]; };\n" t t n_elems t
  in
  let globals, obtain =
    match region with
    | Heap ->
      ("", "  sp = (struct wrap*)malloc(sizeof(struct wrap));\n  p = sp->arr;\n")
    | Stack -> ("", "  sp = &s;\n  p = sp->arr;\n")
    | Global -> ("struct wrap g_s;\n", "  sp = &g_s;\n  p = sp->arr;\n")
  in
  let make idx =
    let decls =
      Printf.sprintf "  %s *p;\n  struct wrap *sp;\n  int si;\n  int sink;\n%s" t
        (if region = Stack then "  struct wrap s;\n" else "")
    in
    let init =
      Printf.sprintf "  for (si = 0; si < %d; si++) { p[si] = (%s)si; }\n"
        n_elems t
    in
    prog ~globals:(sdef ^ globals)
      ~body:
        (decls ^ obtain ^ init ^ "  "
        ^ access_stmt access (Printf.sprintf "p[%d]" idx)
        ^ "\n")
  in
  (make good_i, make bad_i)

(* malloc'd too small, cast to a larger struct *)
let gen_cast_struct access magnitude w =
  let t = elem_ty w in
  let sdef =
    Printf.sprintf
      "struct small { int a; };\nstruct big { int a; %s b[%d]; };\n" t n_elems
  in
  let idx = min (magnitude - 1) (n_elems - 1) in
  let make alloc =
    prog ~globals:sdef
      ~body:
        (Printf.sprintf
           "  struct big *q;\n  int sink;\n  q = (struct big*)malloc(%s);\n  \
            q->a = 1;\n  %s\n"
           alloc
           (access_stmt access (Printf.sprintf "q->b[%d]" idx)))
  in
  (make "sizeof(struct big)", make "sizeof(struct small)")

(* pointer aliases one of two objects depending on data *)
let gen_cond_alias region access boundary magnitude w =
  let t = elem_ty w in
  let good_i, bad_i = indices boundary magnitude in
  let globals, obtain =
    match region with
    | Heap ->
      ("int flag = 1;\n",
       Printf.sprintf
         "  a = (%s*)malloc(%d * sizeof(%s));\n  b = (%s*)malloc(%d * sizeof(%s));\n"
         t n_elems t t (4 * n_elems) t)
    | Stack -> ("int flag = 1;\n", "  a = arr_a;\n  b = arr_b;\n")
    | Global ->
      (Printf.sprintf "int flag = 1;\n%s g_a[%d];\n%s g_b[%d];\n" t n_elems t
         (4 * n_elems),
       "  a = g_a;\n  b = g_b;\n")
  in
  let make idx =
    let decls =
      Printf.sprintf "  %s *a;\n  %s *b;\n  %s *p;\n  int si;\n  int sink;\n%s" t
        t t
        (if region = Stack then
           Printf.sprintf "  %s arr_a[%d];\n  %s arr_b[%d];\n" t n_elems t
             (4 * n_elems)
         else "")
    in
    let init =
      Printf.sprintf
        "  for (si = 0; si < %d; si++) { a[si] = (%s)si; }\n  \
         for (si = 0; si < %d; si++) { b[si] = (%s)si; }\n"
        n_elems t (4 * n_elems) t
    in
    (* the index is fine for b, out of bounds for a; flag selects a *)
    prog ~globals
      ~body:
        (decls ^ obtain ^ init
        ^ "  if (flag) { p = a; } else { p = b; }\n  "
        ^ access_stmt access (Printf.sprintf "p[%d]" idx)
        ^ "\n")
  in
  (make good_i, make bad_i)

(* overflow driven through the (instrumented) string functions: the
   destination buffer holds n_elems bytes; the copied string has
   n_elems-1 chars (fits) or n_elems-1+magnitude chars (overflows) *)
let gen_str_func region access magnitude =
  let globals, decl, obtain =
    match region with
    | Heap -> ("", "", "  p = malloc(8);\n")
    | Stack -> ("", "  char buf[8];\n", "  p = buf;\n")
    | Global -> ("char g_buf[8];\n", "", "  p = g_buf;\n")
  in
  let make len =
    let payload = String.make len 'A' in
    let body =
      match access with
      | Write ->
        Printf.sprintf
          "  char *p;\n  int sink;\n%s%s  strcpy(p, \"%s\");\n  \
           sink = (int)p[0];\n"
          decl obtain payload
      | Read ->
        (* read overflow: strlen scans past an unterminated buffer *)
        Printf.sprintf
          "  char *p;\n  int i;\n  int sink;\n%s%s  \
           for (i = 0; i < %d; i++) { p[i] = 'A'; }\n%s  \
           sink = strlen(p);\n  if (sink == 123456789) { print_int(sink); }\n"
          decl obtain n_elems
          (if len < n_elems then
             Printf.sprintf "  p[%d] = 0;\n" (n_elems - 1)
           else "" (* no terminator: strlen walks off the end *))
    in
    prog ~globals ~body
  in
  match access with
  | Write -> (make (n_elems - 1), make (n_elems - 1 + magnitude))
  | Read -> (make 0, make n_elems)

(* the pointer reaches the access through a function return *)
let gen_interproc_ret region access boundary magnitude w =
  let t = elem_ty w in
  let good_i, bad_i = indices boundary magnitude in
  let globals, provider =
    match region with
    | Heap ->
      ("",
       Printf.sprintf
         "%s *provide() {\n  %s *q;\n  q = (%s*)malloc(%d * sizeof(%s));\n  \
          return q;\n}\n"
         t t t n_elems t)
    | Stack ->
      (* a stack object must outlive the access: allocate in main, pass
         through an identity function *)
      ("",
       Printf.sprintf "%s *provide(%s *q) {\n  return q + 0;\n}\n" t t)
    | Global ->
      (Printf.sprintf "%s g_ip[%d];\n" t n_elems,
       Printf.sprintf "%s *provide() {\n  return g_ip;\n}\n" t)
  in
  let make idx =
    let decls =
      Printf.sprintf "  %s *p;\n  int si;\n  int sink;\n%s" t
        (if region = Stack then Printf.sprintf "  %s arr[%d];\n" t n_elems
         else "")
    in
    let obtain =
      if region = Stack then "  p = provide(arr);\n" else "  p = provide();\n"
    in
    let init =
      Printf.sprintf "  for (si = 0; si < %d; si++) { p[si] = (%s)si; }\n"
        n_elems t
    in
    prog ~globals:(globals ^ provider)
      ~body:
        (decls ^ obtain ^ init ^ "  "
        ^ access_stmt access (Printf.sprintf "p[%d]" idx)
        ^ "\n")
  in
  (make good_i, make bad_i)

(* the index arrives through an arithmetic chain no constant folder sees *)
let gen_computed_idx region access boundary magnitude w =
  let t = elem_ty w in
  let good_i, bad_i = indices boundary magnitude in
  let globals, init = setup region w in
  let make idx =
    let decls =
      Printf.sprintf "  %s *p;\n  int si;\n  int sink;\n  int k;\n%s" t
        (stack_decl region w)
    in
    (* k = idx, computed as ((idx+3)*2 - 6) / 2 *)
    let compute =
      Printf.sprintf "  k = ((%d + 3) * 2 - 6) / 2;\n" idx
    in
    prog ~globals
      ~body:
        (decls ^ init ^ compute ^ "  "
        ^ access_stmt access "p[k]"
        ^ "\n")
  in
  (make good_i, make bad_i)

(* 2D array: overflowing a row lands inside the enclosing array, so only
   row-granularity narrowing catches the near case *)
let gen_multi_dim region access boundary magnitude w =
  let t = elem_ty w in
  let rows = 4 in
  let magnitude = min magnitude (2 * n_elems) in
  let good_j, bad_j = indices boundary magnitude in
  let globals, decl, name =
    match region with
    | Global -> (Printf.sprintf "%s g_m[%d][%d];\n" t rows n_elems, "", "g_m")
    | Stack | Heap ->
      ("", Printf.sprintf "  %s m[%d][%d];\n" t rows n_elems, "m")
  in
  let row = 2 in (* a middle row: both directions stay inside the array *)
  let make j =
    let decls =
      Printf.sprintf "  int si;\n  int sj;\n  int sink;\n%s" decl
    in
    let init =
      Printf.sprintf
        "  for (si = 0; si < %d; si++) { for (sj = 0; sj < %d; sj++) { \
         %s[si][sj] = (%s)(si + sj); } }\n"
        rows n_elems name t
    in
    (* dynamic row index so the access goes through the bounded pointer *)
    let body =
      decls ^ init
      ^ Printf.sprintf "  si = %d;\n  " row
      ^ access_stmt access (Printf.sprintf "%s[si][%d]" name j)
      ^ "\n"
    in
    prog ~globals ~body
  in
  (make good_j, make bad_j)

let all_cases () : case list =
  let regions = [ Heap; Stack; Global ] in
  let accesses = [ Read; Write ] in
  let boundaries = [ Upper; Lower ] in
  let widths = [ Byte; Word ] in
  let magnitudes = [ 1; 16 ] in
  let cases = ref [] in
  let add region access boundary idiom magnitude width (good, bad) =
    let id =
      Printf.sprintf "%s-%s-%s-%s-m%d-%s" (idiom_name idiom)
        (region_name region) (access_name access) (boundary_name boundary)
        magnitude (width_name width)
    in
    cases :=
      { id; region; access; boundary; idiom; magnitude; width; good; bad }
      :: !cases
  in
  List.iter
    (fun region ->
      List.iter
        (fun access ->
          List.iter
            (fun boundary ->
              List.iter
                (fun magnitude ->
                  List.iter
                    (fun width ->
                      List.iter
                        (fun idiom ->
                          match idiom with
                          | Direct_index | Ptr_arith | Loop_walk | Fn_arg ->
                            add region access boundary idiom magnitude width
                              (gen_simple region access boundary idiom
                                 magnitude width)
                          | Sub_object ->
                            add region access boundary idiom magnitude width
                              (gen_sub_object region access boundary magnitude
                                 width)
                          | Cond_alias ->
                            add region access boundary idiom magnitude width
                              (gen_cond_alias region access boundary magnitude
                                 width)
                          | Cast_struct ->
                            (* only meaningful for heap allocations and the
                               upper bound *)
                            if region = Heap && boundary = Upper then
                              add region access boundary idiom magnitude width
                                (gen_cast_struct access magnitude width)
                          | Str_func ->
                            (* strings are bytes and overflow upward *)
                            if boundary = Upper && width = Byte then
                              add region access boundary idiom magnitude width
                                (gen_str_func region access magnitude)
                          | Interproc_ret ->
                            add region access boundary idiom magnitude width
                              (gen_interproc_ret region access boundary
                                 magnitude width)
                          | Computed_idx ->
                            add region access boundary idiom magnitude width
                              (gen_computed_idx region access boundary
                                 magnitude width)
                          | Multi_dim ->
                            (* the aggregate lives in a frame or the globals *)
                            if region <> Heap then
                              add region access boundary idiom magnitude width
                                (gen_multi_dim region access boundary
                                   magnitude width))
                        [ Direct_index; Ptr_arith; Loop_walk; Fn_arg;
                          Sub_object; Cond_alias; Cast_struct; Str_func;
                          Interproc_ret; Computed_idx; Multi_dim ])
                    widths)
                magnitudes)
            boundaries)
        accesses)
    regions;
  List.rev !cases
