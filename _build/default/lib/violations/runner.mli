(** Correctness harness for the violation corpus (Section 5.2): every bad
    program must trigger a spatial-safety exception, every good program
    must run clean. *)

type verdict = Detected | Clean | Wrong of string

type result = {
  case : Gen.case;
  good_verdict : verdict;
  bad_verdict : verdict;
}

val classify : Hb_cpu.Machine.status -> verdict

val run_case :
  ?scheme:Hardbound.Encoding.scheme ->
  ?mode:Hb_minic.Codegen.mode ->
  Gen.case ->
  result

type summary = {
  total : int;
  detected : int;
  false_positives : int;
  anomalies : (string * string) list;
}

val run_corpus :
  ?scheme:Hardbound.Encoding.scheme ->
  ?mode:Hb_minic.Codegen.mode ->
  ?cases:Gen.case list ->
  unit ->
  summary
