(** Spatial-violation test-case generator, standing in for the
    Kratkiewicz/Lippmann corpus of Section 5.2: "various combinations of:
    reads and writes; upper and lower bounds; stack, heap, and global
    data segments; and various addressing schemes and aliasing
    situations", each case in a with-violation and without-violation
    version. *)

type region = Heap | Stack | Global
type access = Read | Write
type boundary = Upper | Lower

type idiom =
  | Direct_index   (** a[i] *)
  | Ptr_arith      (** q = p + i; *q *)
  | Loop_walk      (** small-stride walk past the boundary *)
  | Fn_arg         (** pointer passed to a function, accessed there *)
  | Sub_object     (** array inside a struct: needs sub-object narrowing *)
  | Cast_struct    (** allocation cast to a larger struct *)
  | Cond_alias     (** pointer aliases one of two objects, data dependent *)
  | Str_func       (** overflow via strcpy / unterminated strlen *)
  | Interproc_ret  (** pointer obtained from a function return *)
  | Computed_idx   (** index produced by an arithmetic chain *)
  | Multi_dim      (** row overflow inside a 2D array *)

type width = Byte | Word

type case = {
  id : string;
  region : region;
  access : access;
  boundary : boundary;
  idiom : idiom;
  magnitude : int;  (** elements past the boundary in the bad version *)
  width : width;
  good : string;    (** program without the violation *)
  bad : string;     (** program with the violation *)
}

val region_name : region -> string
val access_name : access -> string
val boundary_name : boundary -> string
val idiom_name : idiom -> string
val width_name : width -> string

val n_elems : int
(** Elements in every target object. *)

val all_cases : unit -> case list
(** The full enumerated matrix (436 cases). *)
