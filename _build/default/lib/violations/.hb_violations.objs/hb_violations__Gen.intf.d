lib/violations/gen.mli:
