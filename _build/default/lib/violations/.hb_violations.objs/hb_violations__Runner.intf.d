lib/violations/runner.mli: Gen Hardbound Hb_cpu Hb_minic
