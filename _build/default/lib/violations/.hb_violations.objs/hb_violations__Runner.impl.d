lib/violations/runner.ml: Gen Hardbound Hb_cpu Hb_minic Hb_runtime List
