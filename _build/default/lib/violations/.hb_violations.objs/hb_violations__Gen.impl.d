lib/violations/gen.ml: List Printf String
