(** Correctness harness for the violation corpus (the paper's Section 5.2
    experiment): every *bad* program must trigger a spatial-safety
    exception under full HardBound, and every *good* program must run to
    completion — no false positives. *)

module Build = Hb_runtime.Build
module Codegen = Hb_minic.Codegen
module Machine = Hb_cpu.Machine
module Encoding = Hardbound.Encoding

type verdict = Detected | Clean | Wrong of string

type result = {
  case : Gen.case;
  good_verdict : verdict;
  bad_verdict : verdict;
}

let classify (status : Machine.status) : verdict =
  match status with
  | Machine.Exited 0 -> Clean
  | Machine.Bounds_violation _ | Machine.Non_pointer_violation _
  | Machine.Software_abort _ ->
    Detected
  | st -> Wrong (Machine.status_name st)

let run_case ?(scheme = Encoding.Extern4) ?(mode = Codegen.Hardbound)
    (case : Gen.case) : result =
  let run src =
    let status, _ = Build.run ~scheme ~mode ~max_instrs:5_000_000 src in
    classify status
  in
  { case; good_verdict = run case.Gen.good; bad_verdict = run case.Gen.bad }

type summary = {
  total : int;
  detected : int;          (* bad version caught *)
  false_positives : int;   (* good version flagged *)
  anomalies : (string * string) list;  (* case id, what went wrong *)
}

(** Run the corpus.  [expect_miss] marks case ids the scheme under test is
    *known* not to catch (e.g. sub-object cases under malloc-only). *)
let run_corpus ?scheme ?mode ?(cases = Gen.all_cases ()) () : summary =
  let detected = ref 0 in
  let false_positives = ref 0 in
  let anomalies = ref [] in
  List.iter
    (fun case ->
      let r = run_case ?scheme ?mode case in
      (match r.bad_verdict with
       | Detected -> incr detected
       | Clean -> anomalies := (case.Gen.id, "bad version ran clean") :: !anomalies
       | Wrong s ->
         anomalies := (case.Gen.id, "bad version: " ^ s) :: !anomalies);
      match r.good_verdict with
      | Clean -> ()
      | Detected ->
        incr false_positives;
        anomalies := (case.Gen.id, "good version flagged") :: !anomalies
      | Wrong s -> anomalies := (case.Gen.id, "good version: " ^ s) :: !anomalies)
    cases;
  {
    total = List.length cases;
    detected = !detected;
    false_positives = !false_positives;
    anomalies = List.rev !anomalies;
  }
