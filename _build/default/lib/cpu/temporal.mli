(** Temporal-safety tracking (the Section 6.2 extension): per-word heap
    allocation state driven by the runtime's [mark_alloc]/[mark_free]
    syscalls.  Detects use-after-free and uninitialized reads in full
    mode, and doubles as the validity map of the Section 2.1 red-zone
    tripwire baseline. *)

type word_state = Unallocated | Allocated_uninit | Allocated_init

type kind = Use_after_free | Uninitialized_read | Unallocated_access

type fault = { kind : kind; addr : int; is_store : bool }

exception Temporal_violation of fault

val kind_name : kind -> string

type t

val create : unit -> t

val in_heap : int -> bool

val mark_alloc : t -> addr:int -> size:int -> unit
(** Words become [Allocated_uninit]. *)

val mark_free : t -> addr:int -> size:int -> unit

val state_of : t -> int -> word_state

val check_load : t -> addr:int -> unit
(** Full temporal check: faults on unallocated, freed, or uninitialized
    heap words.  Non-heap addresses are never checked. *)

val check_store : t -> addr:int -> unit
(** As {!check_load}, but a store to an uninitialized word initializes it. *)

val check_tripwire : t -> addr:int -> unit
(** Red-zone check: faults only on unallocated/freed words (uninitialized
    data passes — the tripwire schemes' completeness gap). *)
