(** Temporal-safety tracking extension (Section 6.2 of the paper).

    The paper notes that, since HardBound already tracks one metadata bit
    per word, adding Purify/MemTracker-style allocated/initialized tracking
    "would be a natural extension".  This module implements that extension
    for the heap region: per-word allocation state driven by the runtime's
    [mark_alloc]/[mark_free] syscalls, detecting use-after-free and
    uninitialized heap reads. *)

type word_state = Unallocated | Allocated_uninit | Allocated_init

type kind = Use_after_free | Uninitialized_read | Unallocated_access

type fault = { kind : kind; addr : int; is_store : bool }

exception Temporal_violation of fault

let kind_name = function
  | Use_after_free -> "use-after-free"
  | Uninitialized_read -> "uninitialized-read"
  | Unallocated_access -> "unallocated-access"

type t = {
  state : (int, word_state) Hashtbl.t; (* word index -> state *)
  mutable ever_allocated : (int, unit) Hashtbl.t;
}

let create () = { state = Hashtbl.create 1024; ever_allocated = Hashtbl.create 1024 }

let word_of addr = addr lsr 2

let in_heap addr =
  addr >= Hb_mem.Layout.heap_base && addr < Hb_mem.Layout.heap_limit

let mark_alloc t ~addr ~size =
  let w0 = word_of addr and w1 = word_of (addr + size - 1) in
  for w = w0 to w1 do
    Hashtbl.replace t.state w Allocated_uninit;
    Hashtbl.replace t.ever_allocated w ()
  done

let mark_free t ~addr ~size =
  let w0 = word_of addr and w1 = word_of (addr + size - 1) in
  for w = w0 to w1 do
    Hashtbl.replace t.state w Unallocated
  done

let state_of t addr =
  match Hashtbl.find_opt t.state (word_of addr) with
  | Some s -> s
  | None -> Unallocated

(** Check a heap access.  Non-heap addresses are never temporal-checked
    (stack/global lifetimes need the compiler support the paper defers to
    CCured-style heapification). *)
let check_load t ~addr =
  if in_heap addr then
    match state_of t addr with
    | Allocated_init -> ()
    | Allocated_uninit ->
      raise
        (Temporal_violation
           { kind = Uninitialized_read; addr; is_store = false })
    | Unallocated ->
      let kind =
        if Hashtbl.mem t.ever_allocated (word_of addr) then Use_after_free
        else Unallocated_access
      in
      raise (Temporal_violation { kind; addr; is_store = false })

(** Red-zone tripwire check (Section 2.1 baseline): fault only when the
    word was never (or is no longer) allocated — uninitialized data is
    fine, that is the completeness gap of tripwire schemes. *)
let check_tripwire t ~addr =
  if in_heap addr then
    match state_of t addr with
    | Allocated_init | Allocated_uninit -> ()
    | Unallocated ->
      let kind =
        if Hashtbl.mem t.ever_allocated (word_of addr) then Use_after_free
        else Unallocated_access
      in
      raise (Temporal_violation { kind; addr; is_store = true })

let check_store t ~addr =
  if in_heap addr then
    match state_of t addr with
    | Allocated_init -> ()
    | Allocated_uninit ->
      Hashtbl.replace t.state (word_of addr) Allocated_init
    | Unallocated ->
      let kind =
        if Hashtbl.mem t.ever_allocated (word_of addr) then Use_after_free
        else Unallocated_access
      in
      raise (Temporal_violation { kind; addr; is_store = true })
