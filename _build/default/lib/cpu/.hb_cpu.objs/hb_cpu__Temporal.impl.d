lib/cpu/temporal.ml: Hashtbl Hb_mem
