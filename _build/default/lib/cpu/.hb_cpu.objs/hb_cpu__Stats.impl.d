lib/cpu/stats.ml: Printf
