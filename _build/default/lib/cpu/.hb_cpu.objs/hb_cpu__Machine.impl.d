lib/cpu/machine.ml: Array Buffer Char Float Hardbound Hashtbl Hb_cache Hb_isa Hb_mem Printf Stats String Temporal
