lib/cpu/temporal.mli:
