lib/cpu/stats.mli:
